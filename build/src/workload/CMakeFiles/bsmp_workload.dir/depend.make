# Empty dependencies file for bsmp_workload.
# This may be replaced when dependencies are built.
