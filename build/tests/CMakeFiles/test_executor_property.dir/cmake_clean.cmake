file(REMOVE_RECURSE
  "CMakeFiles/test_executor_property.dir/test_executor_property.cpp.o"
  "CMakeFiles/test_executor_property.dir/test_executor_property.cpp.o.d"
  "test_executor_property"
  "test_executor_property.pdb"
  "test_executor_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
