// Shared helpers for the reproduction benches: every bench prints its
// paper-artifact table(s) first, then runs the registered
// google-benchmark kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/table.hpp"
#include "machine/spec.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

namespace bsmp::bench {

inline machine::MachineSpec spec(int d, std::int64_t n, std::int64_t p,
                                 std::int64_t m) {
  machine::MachineSpec s;
  s.d = d;
  s.n = n;
  s.p = p;
  s.m = m;
  return s;
}

/// Abort loudly if a simulation diverged from the guest — a bench must
/// never report costs of a wrong computation.
template <int D>
void require_equivalent(const sim::SimResult<D>& res,
                        const sim::SimResult<D>& ref, const char* what) {
  if (!sim::same_values<D>(res.final_values, ref.final_values)) {
    std::cerr << "FATAL: " << what
              << " produced wrong guest values; cost data is meaningless\n";
    std::abort();
  }
}

inline int run_bench_main(int argc, char** argv, void (*emit_tables)()) {
  emit_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bsmp::bench

#define BSMP_BENCH_MAIN(emit_tables_fn)                              \
  int main(int argc, char** argv) {                                  \
    return ::bsmp::bench::run_bench_main(argc, argv, emit_tables_fn); \
  }
