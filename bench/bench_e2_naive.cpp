// E2 — Proposition 1: the naive simulation. Md(n,1,m) simulates
// Md(n,n,m) with slowdown Θ(n^(1+1/d)), independent of m; with p
// processors the slowdown is Θ((n/p)^(1+1/d)). Tables come from
// tables::e2_tables via the engine harness.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void BM_naive_d1(benchmark::State& state) {
  std::int64_t n = state.range(0);
  auto g = workload::make_mix_guest<1>({n}, 8, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_naive<1>(g, spec(1, n, 1, 1)));
}
BENCHMARK(BM_naive_d1)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BSMP_BENCH_MAIN("e2")
