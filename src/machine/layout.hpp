// Strip layouts: where the guest's data physically rests in the host.
//
// The guest's n columns are grouped into q strips of `strip_words`
// words. A StripLayout maps each strip to its slot (and thus base
// address and owning processor) under either the identity layout or
// the Section-4.2 rearrangement π2∘π1. Its distance queries quantify
// the claim the multiprocessor simulator's Regime-1 charges rest on:
// transfers between initially-consecutive strips travel at most q/p
// slots in the rearranged layout — a factor-p reduction for wide
// domains relative to identity.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/rearrange.hpp"

namespace bsmp::machine {

class StripLayout {
 public:
  static StripLayout identity(std::int64_t q, std::int64_t p,
                              std::int64_t strip_words);

  /// The π2∘π1 rearranged layout of Section 4.2.
  static StripLayout rearranged(std::int64_t q, std::int64_t p,
                                std::int64_t strip_words);

  std::int64_t num_strips() const { return q_; }
  std::int64_t num_procs() const { return p_; }
  std::int64_t strip_words() const { return w_; }

  /// Slot of a strip (0..q-1), left to right in physical space.
  std::int64_t slot(std::int64_t strip) const;

  /// First address of the strip's data in the flat memory of the
  /// machine (slot * strip_words).
  std::int64_t base_addr(std::int64_t strip) const;

  /// Which processor's private memory holds the strip (slot / (q/p)).
  std::int64_t owner(std::int64_t strip) const;

  /// Physical distance between two strips' resting places, in slots.
  std::int64_t distance(std::int64_t a, std::int64_t b) const;

  /// Max distance between initially-consecutive strips — q-1 for the
  /// identity layout of a reversed access, q/p for the rearrangement.
  std::int64_t max_adjacent_distance() const;

  /// The Regime-1 transfer distance, properly measured: for a window of
  /// `span` consecutive strips (a domain of that width), each processor
  /// relocates the share of the window resting in *its own* memory.
  /// This returns the worst per-processor diameter of that share, over
  /// all windows and processors. Identity layout: the whole window sits
  /// with one processor — diameter ~span. Rearranged: every processor
  /// holds an interleaved ~span/p-wide cluster of the window — the
  /// factor-p reduction Section 4.2 claims.
  std::int64_t per_proc_window_diameter(std::int64_t span) const;

  /// Global diameter of a window's resting places (worst over
  /// windows): the distance a relocation pays when the data is *not*
  /// already spread to its consumers — the identity layout's cost.
  std::int64_t global_window_diameter(std::int64_t span) const;

 private:
  StripLayout(std::int64_t q, std::int64_t p, std::int64_t w,
              std::vector<std::int64_t> slot_of);

  std::int64_t q_, p_, w_;
  std::vector<std::int64_t> slot_;
};

}  // namespace bsmp::machine
