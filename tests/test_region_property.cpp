// Property tests on randomized Region boxes: every structural claim
// the separator machinery relies on, checked against brute force over
// the explicit dag on random instances.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "dag/explicit_dag.hpp"
#include "geom/region.hpp"

using namespace bsmp;
using geom::Point;
using geom::Region;
using geom::Stencil;

namespace {

/// A random box over a small stencil, biased to interesting shapes
/// (clipped by space/time about half the time).
template <int D>
Region<D> random_region(core::SplitMix64& rng, const Stencil<D>* st) {
  constexpr int K = geom::kMono<D>;
  std::array<int64_t, K> lo, hi;
  for (int i = 0; i < D; ++i) {
    int64_t umax = st->horizon + st->extent[i] - 2;
    int64_t u0 = static_cast<int64_t>(rng.next_below(umax + 4)) - 2;
    int64_t ulen = 1 + static_cast<int64_t>(rng.next_below(umax + 2));
    lo[2 * i] = u0;
    hi[2 * i] = u0 + ulen;
    int64_t w0 = static_cast<int64_t>(rng.next_below(
                     st->horizon + st->extent[i] + 2)) -
                 st->extent[i] - 1;
    int64_t wlen = 1 + static_cast<int64_t>(rng.next_below(umax + 2));
    lo[2 * i + 1] = w0;
    hi[2 * i + 1] = w0 + wlen;
  }
  return Region<D>(st, lo, hi);
}

template <int D>
dag::PointSet<D> to_set(const Region<D>& r) {
  dag::PointSet<D> s;
  r.for_each([&](const Point<D>& p) { s.insert(p); });
  return s;
}

template <int D>
void check_region_invariants(const Stencil<D>& st, const Region<D>& r) {
  dag::ExplicitDag<D> g(st);

  // count() == enumeration == membership scan.
  auto set = to_set(r);
  EXPECT_EQ(r.count(), static_cast<int64_t>(set.size()));
  int64_t members = 0;
  g.for_each_vertex([&](const Point<D>& p) {
    if (r.contains(p)) {
      ++members;
      EXPECT_TRUE(set.contains(p));
    }
  });
  EXPECT_EQ(members, r.count());

  if (r.empty()) {
    EXPECT_EQ(r.count(), 0);
    return;
  }
  EXPECT_TRUE(r.contains(*r.first_point()));

  // Preboundary == brute force.
  auto fast_pre = r.preboundary();
  dag::PointSet<D> fast_pre_set(fast_pre.begin(), fast_pre.end());
  EXPECT_EQ(fast_pre_set.size(), fast_pre.size()) << "duplicate preboundary";
  EXPECT_EQ(fast_pre_set, g.preboundary(set));

  // Outset == brute force.
  dag::PointSet<D> brute_out;
  std::array<Point<D>, geom::kMono<D> + 1> buf;
  for (const auto& p : set) {
    int k = st.succ_positions(p, buf);
    for (int i = 0; i < k; ++i)
      if (!r.contains(buf[i])) {
        brute_out.insert(p);
        break;
      }
  }
  auto fast_out = r.outset();
  dag::PointSet<D> fast_out_set(fast_out.begin(), fast_out.end());
  EXPECT_EQ(fast_out_set.size(), fast_out.size()) << "duplicate outset";
  EXPECT_EQ(fast_out_set, brute_out);

  // The allocation-free counting forms agree exactly with the
  // materializing forms (the executor's count-based charging depends
  // on this equality being bit-for-bit, not approximate).
  EXPECT_EQ(r.preboundary_count(), static_cast<int64_t>(fast_pre.size()));
  EXPECT_EQ(r.outset_count(), static_cast<int64_t>(fast_out.size()));

  // The visitors enumerate the same sequences as the vectors.
  std::vector<Point<D>> visited_pre, visited_out;
  r.preboundary_visit([&](const Point<D>& q) { visited_pre.push_back(q); });
  r.outset_visit([&](const Point<D>& q) { visited_out.push_back(q); });
  EXPECT_EQ(visited_pre, fast_pre);
  EXPECT_EQ(visited_out, fast_out);

  // in_outset is a pointwise oracle for outset membership: true on
  // exactly the out-set, false on interior points and non-members.
  for (const auto& p : set)
    EXPECT_EQ(r.in_outset(p), brute_out.contains(p)) << p.t;
  for (const auto& q : fast_pre)
    EXPECT_FALSE(r.in_outset(q)) << "preboundary point claimed in out-set";

  // Convexity (Definition 5).
  EXPECT_TRUE(g.is_convex(set));

  // split(): disjoint cover in topological order (Definition 4), with
  // convex children.
  if (r.width() >= 2) {
    auto kids = r.split();
    std::vector<dag::PointSet<D>> psets;
    int64_t total = 0;
    for (const auto& k : kids) {
      EXPECT_FALSE(k.empty());
      psets.push_back(to_set(k));
      total += static_cast<int64_t>(psets.back().size());
      EXPECT_TRUE(g.is_convex(psets.back()));
    }
    EXPECT_EQ(total, r.count());
    EXPECT_TRUE(g.is_topological_partition(set, psets));
  }
}

}  // namespace

class RegionFuzz1D : public ::testing::TestWithParam<int> {};

TEST_P(RegionFuzz1D, InvariantsHold) {
  core::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  for (int64_t m : {1, 2, 3}) {
    Stencil<1> st{{7 + GetParam() % 4}, 9, m};
    for (int iter = 0; iter < 6; ++iter)
      check_region_invariants<1>(st, random_region<1>(rng, &st));
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, RegionFuzz1D, ::testing::Range(0, 12));

class RegionFuzz2D : public ::testing::TestWithParam<int> {};

TEST_P(RegionFuzz2D, InvariantsHold) {
  core::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  for (int64_t m : {1, 2}) {
    Stencil<2> st{{5, 4 + GetParam() % 3}, 6, m};
    for (int iter = 0; iter < 3; ++iter)
      check_region_invariants<2>(st, random_region<2>(rng, &st));
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, RegionFuzz2D, ::testing::Range(0, 8));

class RegionFuzz3D : public ::testing::TestWithParam<int> {};

TEST_P(RegionFuzz3D, InvariantsHold) {
  core::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  Stencil<3> st{{3, 3, 3}, 4, 1 + GetParam() % 2};
  for (int iter = 0; iter < 2; ++iter)
    check_region_invariants<3>(st, random_region<3>(rng, &st));
}
INSTANTIATE_TEST_SUITE_P(Seeds, RegionFuzz3D, ::testing::Range(0, 6));

TEST(RegionEdge, SinglePointBox) {
  Stencil<1> st{{8}, 8, 1};
  // u=5, w=1 -> t=3, x=2.
  Region<1> r(&st, {5, 1}, {6, 2});
  ASSERT_EQ(r.count(), 1);
  auto p = *r.first_point();
  EXPECT_EQ(p.t, 3);
  EXPECT_EQ(p.x[0], 2);
  auto pre = r.preboundary();
  EXPECT_EQ(pre.size(), 3u);  // three preds of an interior m=1 vertex
  EXPECT_THROW(r.split(), bsmp::precondition_error);
}

TEST(RegionEdge, ParityEmptyBox) {
  // u and w fixed with odd sum: no lattice point (t would be half-odd).
  Stencil<1> st{{8}, 8, 1};
  Region<1> r(&st, {5, 2}, {6, 3});
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.count(), 0);
  EXPECT_TRUE(r.preboundary().empty());
  EXPECT_TRUE(r.outset().empty());
  EXPECT_EQ(r.preboundary_count(), 0);
  EXPECT_EQ(r.outset_count(), 0);
}

TEST(RegionEdge, BoxOutsideSpaceIsEmpty) {
  Stencil<1> st{{4}, 4, 1};
  Region<1> below(&st, {-8, -8}, {-4, -4});
  EXPECT_TRUE(below.empty());
  Region<1> beyond(&st, {100, 100}, {104, 104});
  EXPECT_TRUE(beyond.empty());
}

TEST(RegionEdge, FullVolumeOutsetIsTopRows) {
  // A box covering all of V: the outset must include every node's last
  // row (their self-lane successors are past the horizon).
  Stencil<1> st{{6}, 6, 2};
  Region<1> v(&st, {0, -5}, {11, 6});
  EXPECT_EQ(v.count(), 36);
  auto out = v.outset();
  dag::PointSet<1> outset(out.begin(), out.end());
  for (int64_t x = 0; x < 6; ++x) {
    EXPECT_TRUE(outset.contains(Point<1>{{x}, 5}));
    EXPECT_TRUE(outset.contains(Point<1>{{x}, 4}));  // t >= T - m
  }
  // And its preboundary is empty (nothing precedes V).
  EXPECT_TRUE(v.preboundary().empty());
}

TEST(RegionEdge, WidthAndTimeRange) {
  Stencil<1> st{{16}, 16, 1};
  Region<1> r(&st, {2, -5}, {10, 1});
  EXPECT_EQ(r.width(), 8);
  auto [tmin, tmax] = r.time_range();
  EXPECT_EQ(tmin, 0);  // clipped at 0 even though the box dips below
  EXPECT_LE(tmax, 15);
  EXPECT_GE(tmax, tmin);
}
