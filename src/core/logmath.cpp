#include "core/logmath.hpp"

#include <cmath>

#include "core/expect.hpp"

namespace bsmp::core {

double logbar(double a) {
  if (a < 0.0) a = 0.0;
  return std::log2(a + 2.0);
}

int ilog2_floor(std::uint64_t x) {
  BSMP_REQUIRE(x >= 1);
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

int ilog2_ceil(std::uint64_t x) {
  BSMP_REQUIRE(x >= 1);
  int f = ilog2_floor(x);
  return is_pow2(x) ? f : f + 1;
}

bool is_pow2(std::uint64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

std::uint64_t ceil_pow2(std::uint64_t x) {
  BSMP_REQUIRE(x >= 1);
  return std::uint64_t{1} << ilog2_ceil(x);
}

std::uint64_t floor_pow2(std::uint64_t x) {
  BSMP_REQUIRE(x >= 1);
  return std::uint64_t{1} << ilog2_floor(x);
}

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  // std::sqrt rounding can be off by one in either direction for large x.
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

bool is_square(std::uint64_t x) {
  std::uint64_t r = isqrt(x);
  return r * r == x;
}

std::int64_t div_ceil(std::int64_t a, std::int64_t b) {
  BSMP_REQUIRE(b > 0);
  return div_floor(a + b - 1, b);
}

std::int64_t div_floor(std::int64_t a, std::int64_t b) {
  BSMP_REQUIRE(b > 0);
  std::int64_t q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

std::int64_t mod_floor(std::int64_t a, std::int64_t b) {
  BSMP_REQUIRE(b > 0);
  std::int64_t r = a % b;
  if (r < 0) r += b;
  return r;
}

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp--) r *= base;
  return r;
}

}  // namespace bsmp::core
