// PlanCache: a thread-safe memo for the immutable artifacts sweep
// points rebuild over and over — separator-tree / Prop-2 plans
// (sched::Planner output), guest computations (sep::Executor input),
// and reference runs. Entries are shared across threads as
// shared_ptr-to-const: once built, an artifact is immutable, so any
// number of sweep points may read it concurrently.
//
// Keys carry the paper's plan identity — (d, domain family, width,
// horizon, m, access-fn tag) — plus an `aux` word folding whatever
// else the family needs (tile/leaf widths, space constants, seeds).
// Build-once semantics: if two threads miss on the same key at once,
// one builds while the other blocks on the entry and then shares the
// result — the builder runs exactly once per key.
//
// Residency (BSMP_PLAN_CACHE_BYTES; 0 = unbounded): the cache is an
// LRU over its byte budget. Every built artifact is charged its
// plan_bytes() estimate; when the total exceeds the budget, entries
// are evicted least-recently-used first — skipping any entry whose
// artifact is still referenced outside the cache, and never an entry
// whose build is still in flight. An evicted entry keeps its value
// alive for lookups that already held it, so eviction can never
// invalidate a reader; a later request for the key simply rebuilds.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <typeinfo>
#include <unordered_map>

#include "core/expect.hpp"
#include "engine/trace.hpp"

namespace bsmp::engine {

/// Resident-byte estimate of a cached artifact, used for the cache's
/// byte budget. ADL customization point: overload plan_bytes(const A&)
/// in A's own namespace to account heap payloads (a Schedule's op
/// vector, a reference run's value map); this fallback charges the
/// object header alone.
template <typename A>
inline std::size_t plan_bytes(const A& a) {
  return sizeof(a);
}

/// Discriminates what kind of artifact a key names (and thereby the
/// stored type); families never share entries.
enum class PlanFamily : int {
  kSchedule = 0,   ///< sched::Schedule<D> — Planner output, Prop-2 plan
  kGuest,          ///< sep::Guest<D> — Executor input
  kReference,      ///< sim::SimResult<D> of the direct guest run
  kUser,           ///< caller-defined artifacts
};

struct PlanKey {
  int d = 0;                     ///< lattice dimension D
  PlanFamily family = PlanFamily::kSchedule;
  std::int64_t width = 0;        ///< domain width / spatial extent
  std::int64_t horizon = 0;      ///< time extent T
  std::int64_t m = 0;            ///< memory density
  std::uint64_t access_tag = 0;  ///< identity of the access function
  std::uint64_t aux = 0;         ///< folded extras (widths, consts, seed)

  bool operator==(const PlanKey&) const = default;
};

/// Fold a value into an accumulating key word (FNV-1a step); use to
/// build PlanKey::aux from several parameters.
inline std::uint64_t key_fold(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Bit-exact key word for a double-valued parameter.
std::uint64_t key_of_double(double v);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = key_fold(h, static_cast<std::uint64_t>(k.d));
    h = key_fold(h, static_cast<std::uint64_t>(k.family));
    h = key_fold(h, static_cast<std::uint64_t>(k.width));
    h = key_fold(h, static_cast<std::uint64_t>(k.horizon));
    h = key_fold(h, static_cast<std::uint64_t>(k.m));
    h = key_fold(h, k.access_tag);
    h = key_fold(h, k.aux);
    return static_cast<std::size_t>(h);
  }
};

class PlanCache {
 public:
  /// The byte budget defaults from BSMP_PLAN_CACHE_BYTES at process
  /// start (0 = unbounded).
  PlanCache();

  /// Lookup/build accounting, snapshot by stats(). `hits`/`misses`
  /// count lookups; `builds` counts builder invocations that actually
  /// ran (at most one per key unless a build threw and was retried);
  /// `evictions` counts LRU evictions and `bytes` is the resident
  /// plan_bytes total right now — the metrics layer serializes all of
  /// them per pass.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t builds = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t lookups() const { return hits + misses; }
    double hit_rate() const {
      return lookups() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups());
    }
  };

  /// Return the artifact for `key`, building it with `build()` (which
  /// must return a value convertible to std::shared_ptr<const T> or a
  /// plain T) if absent. Concurrent requests for the same key share
  /// one build. A lookup that creates the entry counts as a miss; any
  /// other lookup — including one that waits on an in-flight build —
  /// counts as a hit.
  template <typename T, typename Build>
  std::shared_ptr<const T> get_or_build(const PlanKey& key, Build&& build) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        it = map_.emplace(key, std::make_shared<Entry>()).first;
        it->second->type = &typeid(T);
        ++misses_;
      } else {
        ++hits_;
        touch_locked(*it->second);
      }
      entry = it->second;
    }
    BSMP_REQUIRE_MSG(*entry->type == typeid(T),
                     "PlanCache key reused with a different artifact type");
    std::shared_ptr<const T> result;
    {
      std::lock_guard<std::mutex> lk(entry->mu);
      // Null also when a previous build threw: retry it here so a
      // failed build never poisons the key.
      if (entry->value == nullptr) {
        builds_.fetch_add(1, std::memory_order_relaxed);
        trace::Span span(trace::Cat::kSweepPoint, "plan-build", key.width,
                         static_cast<std::int64_t>(key.family));
        entry->value = to_shared(build());
      }
      BSMP_ASSERT(entry->value != nullptr);
      result = std::static_pointer_cast<const T>(entry->value);
    }
    // Charge the artifact into the LRU after releasing the entry lock
    // (mu_ and entry->mu are never held together). plan_bytes is found
    // by ADL in T's namespace, sizeof(T) otherwise.
    account(key, entry, plan_bytes(*result));
    return result;
  }

  /// Lookup without building; null when absent. Counts as hit/miss.
  template <typename T>
  std::shared_ptr<const T> lookup(const PlanKey& key) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        ++misses_;
        return nullptr;
      }
      ++hits_;
      touch_locked(*it->second);
      entry = it->second;
    }
    BSMP_REQUIRE_MSG(*entry->type == typeid(T),
                     "PlanCache key reused with a different artifact type");
    std::lock_guard<std::mutex> lk(entry->mu);
    return std::static_pointer_cast<const T>(entry->value);
  }

  Stats stats() const;
  std::size_t size() const;
  void clear();

  /// Change the byte budget (0 = unbounded) and evict down to it.
  void set_max_bytes(std::size_t bytes);
  std::size_t max_bytes() const;

 private:
  struct Entry {
    std::mutex mu;
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
    // LRU state, guarded by the cache's mu_ (never entry->mu):
    // accounted entries sit in lru_ (front = most recent) and are
    // charged `bytes` against the budget.
    std::size_t bytes = 0;
    bool accounted = false;
    std::list<PlanKey>::iterator lru_it;
  };

  /// Move an accounted entry to the front of the LRU (under mu_).
  void touch_locked(Entry& e) {
    if (e.accounted) lru_.splice(lru_.begin(), lru_, e.lru_it);
  }

  /// First-time byte accounting for a built artifact, then eviction
  /// down to the budget. No-op if the entry was evicted (or the cache
  /// cleared) while the build ran — its value simply dies with its
  /// last reader.
  void account(const PlanKey& key, const std::shared_ptr<Entry>& entry,
               std::size_t bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!entry->accounted) {
      auto it = map_.find(key);
      if (it == map_.end() || it->second != entry) return;
      entry->bytes = bytes;
      entry->accounted = true;
      lru_.push_front(key);
      entry->lru_it = lru_.begin();
      bytes_ += bytes;
    }
    evict_locked();
  }

  /// Evict least-recently-used entries until the budget holds. An
  /// entry whose artifact is still referenced outside the cache
  /// (use_count > 1) is skipped; the erased entry keeps its value, so
  /// holders of the Entry from an in-flight get_or_build still read it.
  void evict_locked() {
    if (max_bytes_ == 0 || bytes_ <= max_bytes_) return;
    auto it = lru_.end();
    while (bytes_ > max_bytes_ && it != lru_.begin()) {
      --it;
      auto mit = map_.find(*it);
      BSMP_ASSERT(mit != map_.end());
      Entry& e = *mit->second;
      if (e.value.use_count() > 1) continue;  // in use outside the cache
      bytes_ -= e.bytes;
      ++evictions_;
      it = lru_.erase(it);
      map_.erase(mit);
    }
  }

  template <typename T>
  static std::shared_ptr<const void> to_shared(std::shared_ptr<const T> p) {
    return p;
  }
  template <typename T>
  static std::shared_ptr<const void> to_shared(std::shared_ptr<T> p) {
    return std::shared_ptr<const T>(std::move(p));
  }
  template <typename T>
  static std::shared_ptr<const void> to_shared(T&& value) {
    using V = std::decay_t<T>;
    return std::make_shared<const V>(std::forward<T>(value));
  }

  mutable std::mutex mu_;
  std::unordered_map<PlanKey, std::shared_ptr<Entry>, PlanKeyHash> map_;
  std::list<PlanKey> lru_;  // front = most recently used, accounted only
  std::size_t bytes_ = 0;
  std::size_t max_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  // Incremented under the *entry* mutex, not mu_, hence atomic.
  std::atomic<std::uint64_t> builds_{0};
};

}  // namespace bsmp::engine
