// "hot" — the executor hot-path artifact: dense flat-staging executor
// vs the retained hash-map baseline over the same full volumes. The
// emitted table carries only run-to-run deterministic fields (and is
// therefore under the tier-2 byte-identity check like every other
// emitter); wall-clock throughput goes to EngineCtx::metrics, which
// bench_exec_hotpath serializes as metrics_hot.json.
#include <string>
#include <utility>

#include "sim/observe.hpp"
#include "tables/detail.hpp"
#include "tables/emitters.hpp"
#include "tables/hotpath.hpp"
#include "workload/rules.hpp"

namespace bsmp::tables {

namespace {

template <int D>
void hot_config(EngineCtx& ctx, core::Table& t, const std::string& label,
                std::array<std::int64_t, D> extent, std::int64_t horizon,
                std::int64_t m) {
  auto guest = workload::make_mix_guest<D>(extent, horizon, m, 7);

  sep::StagingStore<D> dense_staging(&guest.stencil);
  hotpath::ExecStats dense = hotpath::run_dense<D>(guest, dense_staging);
  sep::ValueMap<D> hash_staging;
  hotpath::ExecStats hash = hotpath::run_hashmap<D>(guest, hash_staging);

  // The whole point of the flat-staging rewrite: everything but the
  // wall clock is identical to the hash-map implementation.
  BSMP_REQUIRE_MSG(dense.vertices == hash.vertices,
                   label << ": dense and hashmap executed different "
                            "vertex counts");
  BSMP_REQUIRE_MSG(dense.total_cost == hash.total_cost,
                   label << ": dense and hashmap charged different totals "
                            "— charge batching is not bit-exact");
  BSMP_REQUIRE_MSG(dense.peak_staging_words == hash.peak_staging_words,
                   label << ": dense and hashmap disagree on peak staging");
  BSMP_REQUIRE_MSG(
      sim::same_values<D>(sim::extract_final<D>(guest.stencil, dense_staging),
                          sim::extract_final<D>(guest.stencil, hash_staging)),
      label << ": dense and hashmap computed different guest values");

  for (const auto* run : {&dense, &hash}) {
    const bool is_dense = run == &dense;
    t.add_row({label, std::string(is_dense ? "dense" : "hashmap"),
               static_cast<long long>(run->vertices),
               static_cast<long long>(run->peak_staging_words),
               static_cast<long long>(run->staging_allocs), run->total_cost});
    if (ctx.metrics != nullptr) {
      engine::HotPathMetric h;
      h.label = label + (is_dense ? "/dense" : "/hashmap");
      h.vertices = run->vertices;
      h.seconds = run->seconds;
      h.peak_staging_words = run->peak_staging_words;
      h.staging_allocs = run->staging_allocs;
      ctx.metrics->record_hot(std::move(h));
    }
  }
}

}  // namespace

std::vector<Emitted> hot_tables(EngineCtx& ctx) {
  core::Table t("HOT: executor hot path, dense flat staging vs hash-map "
                "baseline (same run)",
                {"config", "store", "vertices", "peak staging", "slab allocs",
                 "cost total"});
  hot_config<1>(ctx, t, "exec_d1_w512", {512}, 512, 8);
  hot_config<2>(ctx, t, "exec_d2_w48", {48, 48}, 48, 4);
  return {{std::move(t),
           "# Both stores must agree on every deterministic field above\n"
           "# (asserted): only throughput may differ. Wall-clock numbers\n"
           "# are recorded via engine::Metrics — see metrics_hot.json\n"
           "# (\"hot\" array) and BENCH_exec_hotpath.json.\n"}};
}

}  // namespace bsmp::tables
