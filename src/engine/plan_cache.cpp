#include "engine/plan_cache.hpp"

#include <bit>

namespace bsmp::engine {

std::uint64_t key_of_double(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.builds = builds_.load(std::memory_order_relaxed);
  return s;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
  builds_.store(0, std::memory_order_relaxed);
}

}  // namespace bsmp::engine
