// Advisor calibration through the sweep engine (see calibration.hpp),
// plus its table emitter ("cal" in the registry).
#include "tables/calibration.hpp"

#include <cmath>
#include <sstream>

#include "core/cost.hpp"
#include "engine/metrics.hpp"
#include "sim/multiproc.hpp"
#include "tables/detail.hpp"

namespace bsmp::tables {

using detail::require_equivalent;
using detail::spec;
using detail::sweep_values;

namespace {

// Guest seed for every calibration measurement; folded into the
// PlanCache keys, so calibration artifacts never collide with the
// E-table guests of the same shape.
constexpr std::uint64_t kCalSeed = 21;

// The simulator takes an integer strip width; the model evaluates the
// real-valued feasible_s_star. Floor to the feasible integer — the
// constant the fit absorbs is the same for model and measurement.
std::int64_t measured_strip(const CalibrationPoint& pt) {
  double s = analytic::feasible_s_star((double)pt.n, (double)pt.m,
                                       (double)pt.p);
  return std::max<std::int64_t>(1, (std::int64_t)s);
}

}  // namespace

std::vector<CalibrationPoint> default_calibration_grid() {
  // n sweep at (m=4, p=4), m variations, and p variations at n=128:
  // varying p moves the communication term n/(p s) and the relocation
  // term (m/p)logbar(n/(p s)) independently of the execution term, so
  // all three mechanism columns are exercised. The {384, 4, 4} point
  // extends the n sweep past the former top (the n=256 holdout now
  // sits *inside* the training range, which is what moved its ratio —
  // see EXPERIMENTS.md); {128, 4, 16} stretches the p axis to the
  // regime where a strip holds only a few nodes and communication
  // dominates.
  return {{64, 4, 4},  {96, 4, 4},  {128, 4, 4}, {192, 4, 4},
          {384, 4, 4}, {128, 2, 4}, {128, 8, 4}, {128, 4, 2},
          {128, 4, 8}, {128, 4, 16}};
}

std::vector<double> measure_calibration_points(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts) {
  auto meas = measure_calibration_breakdown(ctx, pts);
  std::vector<double> slows;
  slows.reserve(meas.size());
  for (const auto& m : meas) slows.push_back(m.slowdown);
  return slows;
}

std::vector<CalibrationMeasurement> measure_calibration_breakdown(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts) {
  return sweep_values<CalibrationMeasurement>(
      ctx, pts,
      [&](const CalibrationPoint& pt,
          engine::SweepContext& c) -> CalibrationMeasurement {
        auto ref = cached_reference<1>(*c.plans, {pt.n}, pt.n, pt.m, kCalSeed);
        auto g = cached_mix_guest<1>(*c.plans, {pt.n}, pt.n, pt.m, kCalSeed);
        sim::MultiprocConfig cfg;
        cfg.s = measured_strip(pt);
        auto res = sim::simulate_multiproc<1>(*g, spec(1, pt.n, pt.p, pt.m),
                                              cfg);
        require_equivalent<1>(res, *ref, "advisor calibration");
        CalibrationMeasurement out;
        out.slowdown = res.slowdown();
        // Proportional split of the slowdown by the ledger's mechanism
        // costs; kRearrange is the amortized one-time preprocess and
        // stays out of the denominator, matching slowdown() itself.
        double reloc = res.ledger.cost(core::CostKind::kBlockMove);
        double exec = res.ledger.cost(core::CostKind::kCompute) +
                      res.ledger.cost(core::CostKind::kLocalAccess);
        double comm = res.ledger.cost(core::CostKind::kComm);
        double denom = reloc + exec + comm;
        if (denom > 0) {
          out.slow_reloc = out.slowdown * reloc / denom;
          out.slow_exec = out.slowdown * exec / denom;
          out.slow_comm = out.slowdown * comm / denom;
        }
        return out;
      },
      "calibration grid");
}

analytic::Calibration run_calibration(EngineCtx& ctx,
                                      const std::vector<CalibrationPoint>& pts) {
  auto slows = measure_calibration_points(ctx, pts);
  analytic::Calibration cal;
  for (std::size_t i = 0; i < pts.size(); ++i)
    cal.add_measurement((double)pts[i].n, (double)pts[i].m, (double)pts[i].p,
                        slows[i]);
  cal.fit();
  return cal;
}

analytic::MechanismCalibration run_mechanism_calibration(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts) {
  auto meas = measure_calibration_breakdown(ctx, pts);
  analytic::MechanismCalibration cal;
  for (std::size_t i = 0; i < pts.size(); ++i)
    cal.add_measurement((double)pts[i].n, (double)pts[i].m, (double)pts[i].p,
                        meas[i].slowdown, meas[i].slow_reloc,
                        meas[i].slow_exec, meas[i].slow_comm);
  cal.fit();
  return cal;
}

namespace {

// One metrics-v3 calibration sample (attribution.calibration_points)
// per grid point, recorded from the emitter thread *after* the sweep,
// in point order, so the serialized array is deterministic however the
// pool scheduled the measurements.
void record_calibration_samples(EngineCtx& ctx,
                                const std::vector<CalibrationPoint>& pts,
                                const std::vector<CalibrationMeasurement>& meas,
                                bool holdout) {
  if (ctx.metrics == nullptr) return;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto& pt = pts[i];
    engine::CalibrationSample s;
    s.n = (int)pt.n;
    s.m = (int)pt.m;
    s.p = (int)pt.p;
    s.s = (double)measured_strip(pt);
    s.range = analytic::to_string(analytic::classify_range(
        1, (double)pt.n, (double)pt.m, (double)pt.p));
    s.holdout = holdout;
    s.slowdown = meas[i].slowdown;
    s.slow_reloc = meas[i].slow_reloc;
    s.slow_exec = meas[i].slow_exec;
    s.slow_comm = meas[i].slow_comm;
    auto t = analytic::calibration_terms((double)pt.n, (double)pt.m,
                                         (double)pt.p);
    s.term_reloc = t[0];
    s.term_exec = t[1];
    s.term_comm = t[2];
    ctx.metrics->record_calibration(std::move(s));
  }
}

}  // namespace

std::vector<Emitted> calibration_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  auto grid = default_calibration_grid();
  auto meas = measure_calibration_breakdown(ctx, grid);
  record_calibration_samples(ctx, grid, meas, /*holdout=*/false);
  std::vector<double> slows;
  for (const auto& m : meas) slows.push_back(m.slowdown);

  analytic::Calibration cal;
  analytic::MechanismCalibration mcal;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    cal.add_measurement((double)grid[i].n, (double)grid[i].m,
                        (double)grid[i].p, slows[i]);
    mcal.add_measurement((double)grid[i].n, (double)grid[i].m,
                         (double)grid[i].p, meas[i].slowdown,
                         meas[i].slow_reloc, meas[i].slow_exec,
                         meas[i].slow_comm);
  }
  cal.fit();
  mcal.fit();

  {
    core::Table t("CAL-a: advisor calibration — training measurements "
                  "(Theorem-4 scheme at s = s*)",
                  {"n", "m", "p", "range", "s", "Tp/Tn measured", "fitted",
                   "rel err"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& pt = grid[i];
      double pred = cal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      t.add_row({(long long)pt.n, (long long)pt.m, (long long)pt.p,
                 std::string(analytic::to_string(analytic::classify_range(
                     1, (double)pt.n, (double)pt.m, (double)pt.p))),
                 (long long)measured_strip(pt), slows[i], pred,
                 std::fabs(pred - slows[i]) / slows[i]});
    }
    out.push_back(
        {std::move(t),
         "# every measurement produced by engine::Sweep with the guest\n"
         "# and reference run memoized in the PlanCache — the same\n"
         "# harness as the E-tables, byte-identical at any thread "
         "count.\n"});
  }
  {
    core::Table t("CAL-b: fitted mechanism constants",
                  {"c_relocation", "c_execution", "c_communication",
                   "training MRE"});
    t.add_row({cal.c_relocation(), cal.c_execution(), cal.c_communication(),
               cal.training_error()});
    out.push_back({std::move(t), ""});
  }
  // Holdout: predict a size excluded from the training grid (inside
  // its n range since {384,4,4} joined), measured through the same
  // engine path.
  std::vector<CalibrationPoint> holdout{{256, 4, 4}};
  auto holdout_meas = measure_calibration_breakdown(ctx, holdout);
  record_calibration_samples(ctx, holdout, holdout_meas, /*holdout=*/true);
  {
    core::Table t("CAL-c: holdout prediction (n held out of the training grid)",
                  {"n", "m", "p", "Tp/Tn measured", "predicted",
                   "predicted/measured"});
    for (std::size_t i = 0; i < holdout.size(); ++i) {
      const auto& pt = holdout[i];
      double pred = cal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      t.add_row({(long long)pt.n, (long long)pt.m, (long long)pt.p,
                 holdout_meas[i].slowdown, pred,
                 pred / holdout_meas[i].slowdown});
    }
    out.push_back(
        {std::move(t),
         "# Expected: prediction within a small factor of measured — the\n"
         "# three-mechanism model interpolates a held-out n once its\n"
         "# constants are calibrated.\n"});
  }
  {
    // Per-mechanism decomposition of the training measurements: the
    // ledger shares the per-mechanism fit trains on.
    core::Table t("CAL-d: per-mechanism slowdown decomposition and "
                  "per-range constants (ledger shares)",
                  {"n", "m", "p", "range", "slow_reloc", "slow_exec",
                   "slow_comm", "mech fitted", "rel err"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& pt = grid[i];
      double pred = mcal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      t.add_row({(long long)pt.n, (long long)pt.m, (long long)pt.p,
                 std::string(analytic::to_string(analytic::classify_range(
                     1, (double)pt.n, (double)pt.m, (double)pt.p))),
                 meas[i].slow_reloc, meas[i].slow_exec, meas[i].slow_comm,
                 pred, std::fabs(pred - slows[i]) / slows[i]});
    }
    out.push_back(
        {std::move(t),
         "# shares come from the simulator's virtual-time cost ledger\n"
         "# (relocation = block moves, execution = compute + local\n"
         "# access, communication = word x distance transfers), so the\n"
         "# decomposition is deterministic like the slowdowns.\n"});
  }
  {
    core::Table t("CAL-e: per-mechanism constants (pooled and per-range) "
                  "and the holdout under both fits",
                  {"range", "points", "c_relocation", "c_execution",
                   "c_communication"});
    auto count_in = [&](analytic::Range r) {
      long long k = 0;
      for (const auto& pt : grid)
        if (analytic::classify_range(1, (double)pt.n, (double)pt.m,
                                     (double)pt.p) == r)
          ++k;
      return k;
    };
    t.add_row({std::string("pooled"), (long long)grid.size(),
               mcal.c_relocation(), mcal.c_execution(),
               mcal.c_communication()});
    for (int r = 0; r < 4; ++r) {
      auto range = static_cast<analytic::Range>(r);
      long long k = count_in(range);
      if (k == 0) continue;
      t.add_row({std::string(analytic::to_string(range)), k,
                 mcal.c_relocation(range), mcal.c_execution(range),
                 mcal.c_communication(range)});
    }
    std::ostringstream note;
    note << "# training MRE: aggregate fit " << cal.training_error()
         << ", per-mechanism fit " << mcal.training_error() << "\n";
    for (std::size_t i = 0; i < holdout.size(); ++i) {
      const auto& pt = holdout[i];
      double agg = cal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      double mech = mcal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      note << "# holdout n=" << pt.n << ": measured "
           << holdout_meas[i].slowdown << ", aggregate fit " << agg
           << " (ratio " << agg / holdout_meas[i].slowdown
           << "), per-mechanism fit " << mech << " (ratio "
           << mech / holdout_meas[i].slowdown << ")\n";
    }
    out.push_back({std::move(t), note.str()});
  }
  return out;
}

}  // namespace bsmp::tables
