// Parallel schedule IR: the Theorem-4 two-regime simulation as data.
//
// A ParallelSchedule is an op stream in stage order: per-processor ops
// (copy, comm, leaf) carry their processor id; kRelocate ops are
// executed by all processors cooperatively (Regime 1); kBarrier ops
// mark stage boundaries. The stream's *program order* is a valid
// sequentialization (the runner replays it for value validation);
// makespan_under() evaluates it with per-processor clocks, reproducing
// the multiprocessor simulator's virtual time exactly when given the
// same machine (pinned by a test).
#pragma once

#include <vector>

#include "core/expect.hpp"
#include "machine/clocks.hpp"
#include "sched/schedule.hpp"

namespace bsmp::sched {

template <int D>
class ParallelSchedule {
 public:
  explicit ParallelSchedule(std::int64_t p = 1) : p_(p) {
    BSMP_REQUIRE(p >= 1);
  }

  std::int64_t num_procs() const { return p_; }

  void push(Op<D> op) {
    BSMP_REQUIRE(op.proc >= 0 && op.proc < p_);
    ops_.push_back(op);
  }

  const std::vector<Op<D>>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  std::int64_t count(OpKind k) const {
    std::int64_t c = 0;
    for (const auto& op : ops_)
      if (op.kind == k) ++c;
    return c;
  }

  /// Evaluate the schedule's makespan under an access function and
  /// link-distance model, with synchronous stage semantics.
  core::Cost makespan_under(const geom::Stencil<D>& st,
                            const hram::AccessFn& f) const {
    machine::ProcClocks clocks(p_);
    for (const auto& op : ops_) {
      switch (op.kind) {
        case OpKind::kCopyIn:
        case OpKind::kCopyOut:
          clocks.advance(op.proc, 2.0 * f.block(static_cast<std::uint64_t>(
                                                    op.addr_scale),
                                                op.words));
          break;
        case OpKind::kLeaf:
          clocks.advance(op.proc, leaf_cost_under<D>(st, op, f));
          break;
        case OpKind::kComm:
          clocks.advance(op.proc,
                         static_cast<core::Cost>(op.words) * op.distance);
          break;
        case OpKind::kRelocate: {
          // Cooperative: the total work spreads over all processors,
          // followed by an implicit barrier (Regime-1 stage).
          core::Cost share = static_cast<core::Cost>(op.words) *
                             op.distance /
                             static_cast<core::Cost>(p_);
          for (std::int64_t pr = 0; pr < p_; ++pr) clocks.advance(pr, share);
          clocks.barrier();
          break;
        }
        case OpKind::kBarrier:
          clocks.barrier();
          break;
        case OpKind::kKindCount:
          break;
      }
    }
    return clocks.makespan();
  }

  /// Per-stage profile: for each barrier-delimited stage, the stage's
  /// makespan contribution and the processors' mean utilization within
  /// it — the load-balance picture of the two-regime schedule.
  struct Stage {
    core::Cost makespan = 0;     ///< slowest processor's work this stage
    double utilization = 0;      ///< busy / (p * makespan); 1 = balanced
    std::int64_t ops = 0;
  };
  std::vector<Stage> stage_profile(const geom::Stencil<D>& st,
                                   const hram::AccessFn& f) const {
    std::vector<Stage> stages;
    std::vector<core::Cost> busy(static_cast<std::size_t>(p_), 0.0);
    std::int64_t ops = 0;
    auto flush = [&] {
      Stage s;
      s.ops = ops;
      for (core::Cost b : busy) s.makespan = std::max(s.makespan, b);
      if (s.makespan > 0) {
        core::Cost total = 0;
        for (core::Cost b : busy) total += b;
        s.utilization = total / (static_cast<double>(p_) * s.makespan);
        stages.push_back(s);
      }
      std::fill(busy.begin(), busy.end(), 0.0);
      ops = 0;
    };
    for (const auto& op : ops_) {
      ++ops;
      switch (op.kind) {
        case OpKind::kCopyIn:
        case OpKind::kCopyOut:
          busy[op.proc] += 2.0 * f.block(
                                     static_cast<std::uint64_t>(op.addr_scale),
                                     op.words);
          break;
        case OpKind::kLeaf:
          busy[op.proc] += leaf_cost_under<D>(st, op, f);
          break;
        case OpKind::kComm:
          busy[op.proc] += static_cast<core::Cost>(op.words) * op.distance;
          break;
        case OpKind::kRelocate: {
          core::Cost share = static_cast<core::Cost>(op.words) *
                             op.distance / static_cast<core::Cost>(p_);
          for (auto& b : busy) b += share;
          flush();
          break;
        }
        case OpKind::kBarrier:
          flush();
          break;
        case OpKind::kKindCount:
          break;
      }
    }
    flush();
    return stages;
  }

  std::string summary() const {
    std::string s = "p=" + std::to_string(p_);
    s += " ops=" + std::to_string(ops_.size());
    s += " leaves=" + std::to_string(count(OpKind::kLeaf));
    s += " comm=" + std::to_string(count(OpKind::kComm));
    s += " relocate=" + std::to_string(count(OpKind::kRelocate));
    s += " barriers=" + std::to_string(count(OpKind::kBarrier));
    return s;
  }

 private:
  std::int64_t p_;
  std::vector<Op<D>> ops_;
};

}  // namespace bsmp::sched
