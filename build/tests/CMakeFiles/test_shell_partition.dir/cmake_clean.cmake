file(REMOVE_RECURSE
  "CMakeFiles/test_shell_partition.dir/test_shell_partition.cpp.o"
  "CMakeFiles/test_shell_partition.dir/test_shell_partition.cpp.o.d"
  "test_shell_partition"
  "test_shell_partition.pdb"
  "test_shell_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
