// Advisor calibration through the sweep engine (see calibration.hpp),
// plus its table emitter ("cal" in the registry).
#include "tables/calibration.hpp"

#include <cmath>
#include <sstream>

#include "sim/multiproc.hpp"
#include "tables/detail.hpp"

namespace bsmp::tables {

using detail::require_equivalent;
using detail::spec;
using detail::sweep_values;

namespace {

// Guest seed for every calibration measurement; folded into the
// PlanCache keys, so calibration artifacts never collide with the
// E-table guests of the same shape.
constexpr std::uint64_t kCalSeed = 21;

// The simulator takes an integer strip width; the model evaluates the
// real-valued feasible_s_star. Floor to the feasible integer — the
// constant the fit absorbs is the same for model and measurement.
std::int64_t measured_strip(const CalibrationPoint& pt) {
  double s = analytic::feasible_s_star((double)pt.n, (double)pt.m,
                                       (double)pt.p);
  return std::max<std::int64_t>(1, (std::int64_t)s);
}

}  // namespace

std::vector<CalibrationPoint> default_calibration_grid() {
  // n sweep at (m=4, p=4), m variations, and p variations at n=128:
  // varying p moves the communication term n/(p s) and the relocation
  // term (m/p)logbar(n/(p s)) independently of the execution term, so
  // all three mechanism columns are exercised. The {384, 4, 4} point
  // extends the n sweep past the former top (the n=256 holdout now
  // sits *inside* the training range, which is what moved its ratio —
  // see EXPERIMENTS.md); {128, 4, 16} stretches the p axis to the
  // regime where a strip holds only a few nodes and communication
  // dominates.
  return {{64, 4, 4},  {96, 4, 4},  {128, 4, 4}, {192, 4, 4},
          {384, 4, 4}, {128, 2, 4}, {128, 8, 4}, {128, 4, 2},
          {128, 4, 8}, {128, 4, 16}};
}

std::vector<double> measure_calibration_points(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts) {
  return sweep_values<double>(
      ctx, pts,
      [&](const CalibrationPoint& pt, engine::SweepContext& c) -> double {
        auto ref = cached_reference<1>(*c.plans, {pt.n}, pt.n, pt.m, kCalSeed);
        auto g = cached_mix_guest<1>(*c.plans, {pt.n}, pt.n, pt.m, kCalSeed);
        sim::MultiprocConfig cfg;
        cfg.s = measured_strip(pt);
        auto res = sim::simulate_multiproc<1>(*g, spec(1, pt.n, pt.p, pt.m),
                                              cfg);
        require_equivalent<1>(res, *ref, "advisor calibration");
        return res.slowdown();
      },
      "calibration grid");
}

analytic::Calibration run_calibration(EngineCtx& ctx,
                                      const std::vector<CalibrationPoint>& pts) {
  auto slows = measure_calibration_points(ctx, pts);
  analytic::Calibration cal;
  for (std::size_t i = 0; i < pts.size(); ++i)
    cal.add_measurement((double)pts[i].n, (double)pts[i].m, (double)pts[i].p,
                        slows[i]);
  cal.fit();
  return cal;
}

std::vector<Emitted> calibration_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  auto grid = default_calibration_grid();
  auto slows = measure_calibration_points(ctx, grid);

  analytic::Calibration cal;
  for (std::size_t i = 0; i < grid.size(); ++i)
    cal.add_measurement((double)grid[i].n, (double)grid[i].m,
                        (double)grid[i].p, slows[i]);
  cal.fit();

  {
    core::Table t("CAL-a: advisor calibration — training measurements "
                  "(Theorem-4 scheme at s = s*)",
                  {"n", "m", "p", "range", "s", "Tp/Tn measured", "fitted",
                   "rel err"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& pt = grid[i];
      double pred = cal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      t.add_row({(long long)pt.n, (long long)pt.m, (long long)pt.p,
                 std::string(analytic::to_string(analytic::classify_range(
                     1, (double)pt.n, (double)pt.m, (double)pt.p))),
                 (long long)measured_strip(pt), slows[i], pred,
                 std::fabs(pred - slows[i]) / slows[i]});
    }
    out.push_back(
        {std::move(t),
         "# every measurement produced by engine::Sweep with the guest\n"
         "# and reference run memoized in the PlanCache — the same\n"
         "# harness as the E-tables, byte-identical at any thread "
         "count.\n"});
  }
  {
    core::Table t("CAL-b: fitted mechanism constants",
                  {"c_relocation", "c_execution", "c_communication",
                   "training MRE"});
    t.add_row({cal.c_relocation(), cal.c_execution(), cal.c_communication(),
               cal.training_error()});
    out.push_back({std::move(t), ""});
  }
  {
    // Holdout: predict a size excluded from the training grid (inside
    // its n range since {384,4,4} joined), measured through the same
    // engine path.
    std::vector<CalibrationPoint> holdout{{256, 4, 4}};
    auto measured = measure_calibration_points(ctx, holdout);
    core::Table t("CAL-c: holdout prediction (n held out of the training grid)",
                  {"n", "m", "p", "Tp/Tn measured", "predicted",
                   "predicted/measured"});
    for (std::size_t i = 0; i < holdout.size(); ++i) {
      const auto& pt = holdout[i];
      double pred = cal.predict((double)pt.n, (double)pt.m, (double)pt.p);
      t.add_row({(long long)pt.n, (long long)pt.m, (long long)pt.p,
                 measured[i], pred, pred / measured[i]});
    }
    out.push_back(
        {std::move(t),
         "# Expected: prediction within a small factor of measured — the\n"
         "# three-mechanism model interpolates a held-out n once its\n"
         "# constants are calibrated.\n"});
  }
  return out;
}

}  // namespace bsmp::tables
