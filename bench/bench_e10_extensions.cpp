// E10 — the comparison baselines and Section-6 extensions (Brent
// baseline, pipelined memory, the d=3 conjecture, heterogeneous
// memory), plus the cached-plan re-costing table. Tables come from
// tables::e10_tables via the engine harness.
#include "bench_common.hpp"

using namespace bsmp;

namespace {

void BM_dc_d3(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto g = workload::make_mix_guest<3>({side, side, side}, side, 1, 15);
  machine::MachineSpec host;
  host.d = 3;
  host.n = side * side * side;
  host.p = 1;
  host.m = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_dc_uniproc<3>(g, host));
}
BENCHMARK(BM_dc_d3)->Arg(4)->Arg(8);

}  // namespace

BSMP_BENCH_MAIN("e10")
