// Property tests for the sweep engine: pool/task-count matrices,
// degenerate sweeps, exception propagation, and PlanCache semantics
// (hit/miss accounting, build-once under contention, failed builds
// never poisoning a key).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "engine/plan_cache.hpp"
#include "engine/plans.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"

using namespace bsmp;
using engine::PlanCache;
using engine::PlanFamily;
using engine::PlanKey;
using engine::Pool;

namespace {

PlanKey key_of(int width, PlanFamily family = PlanFamily::kUser) {
  PlanKey k;
  k.d = 1;
  k.family = family;
  k.width = width;
  return k;
}

}  // namespace

// ---------------------------------------------------------------------
// Pool: every index runs exactly once, for every (pool size, n) pair —
// including n = 0, n = 1, n < threads, and n >> threads.
// ---------------------------------------------------------------------

TEST(PoolProperty, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    Pool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 301u}) {
      std::vector<std::atomic<int>> counts(n);
      for (auto& c : counts) c = 0;
      pool.parallel_for(n, [&](std::size_t i) { counts[i]++; });
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
    }
  }
}

TEST(PoolProperty, PoolIsReusableAcrossManyJobs) {
  Pool pool(4);
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(10, [&](std::size_t i) {
      total += static_cast<long long>(i);
    });
  EXPECT_EQ(total.load(), 50 * 45);
}

TEST(PoolProperty, ZeroAndDefaultThreadCounts) {
  Pool defaulted(0);  // 0 -> hardware_threads()
  EXPECT_EQ(defaulted.size(), Pool::hardware_threads());
  EXPECT_GE(Pool::hardware_threads(), 1);
}

// ---------------------------------------------------------------------
// Exception propagation: every point still runs, and the exception of
// the lowest-index failing point is the one rethrown — deterministic
// at every pool size.
// ---------------------------------------------------------------------

TEST(PoolProperty, LowestIndexExceptionWinsAndAllPointsRun) {
  for (int threads : {1, 4}) {
    Pool pool(threads);
    std::vector<std::atomic<int>> ran(16);
    for (auto& r : ran) r = 0;
    try {
      pool.parallel_for(16, [&](std::size_t i) {
        ran[i]++;
        if (i == 11 || i == 5 || i == 13)
          throw std::runtime_error("boom at " + std::to_string(i));
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 5") << "threads=" << threads;
    }
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_EQ(ran[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(SweepProperty, ThrowingPointPropagatesFromSweep) {
  Pool pool(4);
  std::vector<int> points{0, 1, 2, 3, 4, 5};
  EXPECT_THROW(engine::sweep_map<int>(
                   pool, points,
                   [](int p, engine::SweepContext&) {
                     if (p == 2) throw std::invalid_argument("bad point");
                     return p;
                   }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Sweep: degenerate sizes, ordering, and oversubscription.
// ---------------------------------------------------------------------

TEST(SweepProperty, EmptyAndSinglePointSweeps) {
  Pool pool(4);
  std::vector<int> none;
  auto empty = engine::sweep_map<int>(
      pool, none, [](int p, engine::SweepContext&) { return p; });
  EXPECT_TRUE(empty.empty());

  std::vector<int> one{7};
  auto single = engine::sweep_map<int>(
      pool, one, [](int p, engine::SweepContext&) { return p * p; });
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 49);
}

TEST(SweepProperty, RowsMergeInPointOrderUnderOversubscription) {
  // Many more points than threads; rows must come back in point order
  // regardless of which worker finished which point.
  Pool pool(3);
  std::vector<int> points(500);
  std::iota(points.begin(), points.end(), 0);
  auto rows = engine::sweep_map<int>(
      pool, points, [](int p, engine::SweepContext& ctx) {
        // Unbalance the work so completion order scrambles.
        volatile int sink = 0;
        for (int k = 0; k < (p % 7) * 1000; ++k) sink = sink + k;
        EXPECT_EQ(ctx.index, static_cast<std::size_t>(p));
        return p * 3;
      });
  ASSERT_EQ(rows.size(), points.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i], static_cast<int>(i) * 3);
}

// ---------------------------------------------------------------------
// PlanCache: accounting, build-once, immutability via shared_ptr.
// ---------------------------------------------------------------------

TEST(PlanCacheProperty, HitMissAccounting) {
  PlanCache cache;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return 41;
  };
  auto a = cache.get_or_build<int>(key_of(1), build);
  auto b = cache.get_or_build<int>(key_of(1), build);
  EXPECT_EQ(*a, 41);
  EXPECT_EQ(a.get(), b.get());  // the same immutable object is shared
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);

  // A different family is a different entry even at the same width.
  auto c = cache.get_or_build<int>(key_of(1, PlanFamily::kGuest),
                                   [&] { return 17; });
  EXPECT_EQ(*c, 17);
  EXPECT_EQ(cache.stats().misses, 2u);

  EXPECT_EQ(cache.lookup<int>(key_of(99)), nullptr);
  EXPECT_EQ(cache.stats().misses, 3u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(PlanCacheProperty, ConcurrentMissesShareOneBuild) {
  PlanCache cache;
  Pool pool(8);
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const int>> got(64);
  pool.parallel_for(64, [&](std::size_t i) {
    got[i] = cache.get_or_build<int>(key_of(5), [&] {
      ++builds;
      return 123;
    });
  });
  EXPECT_EQ(builds.load(), 1);
  for (const auto& p : got) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 123);
    EXPECT_EQ(p.get(), got[0].get());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 63u);
}

TEST(PlanCacheProperty, FailedBuildDoesNotPoisonTheKey) {
  PlanCache cache;
  EXPECT_THROW(cache.get_or_build<int>(
                   key_of(2), []() -> int { throw std::runtime_error("x"); }),
               std::runtime_error);
  auto v = cache.get_or_build<int>(key_of(2), [] { return 9; });
  EXPECT_EQ(*v, 9);
}

TEST(PlanCacheProperty, TypeMismatchOnAKeyIsAPreconditionError) {
  PlanCache cache;
  (void)cache.get_or_build<int>(key_of(3), [] { return 1; });
  EXPECT_THROW(cache.get_or_build<double>(key_of(3), [] { return 1.0; }),
               precondition_error);
}

// ---------------------------------------------------------------------
// The kSchedule family end to end: cached_plan builds the Prop-2 plan
// once and every consumer shares the identical immutable schedule.
// ---------------------------------------------------------------------

TEST(PlanCacheProperty, CachedPlanIsBuiltOnceAndShared) {
  PlanCache cache;
  geom::Stencil<1> st{{16}, 16, 1};
  sched::PlannerConfig<1> cfg;
  cfg.tile_width = 4;
  cfg.leaf_width = 2;
  auto a = engine::cached_plan<1>(cache, st, cfg);
  auto b = engine::cached_plan<1>(cache, st, cfg);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GT(a->size(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different planner config is a different plan.
  sched::PlannerConfig<1> cfg2 = cfg;
  cfg2.leaf_width = 4;
  auto c = engine::cached_plan<1>(cache, st, cfg2);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 2u);
}
