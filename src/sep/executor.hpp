// The topological-separator executor: the concrete realization of
// Proposition 2 and Proposition 3.
//
// execute(U, staging) runs every vertex of the convex domain U under
// the contract:
//   * on entry, `staging` holds the values of Γin(U) (the topological-
//     partition property of Definition 4; asserted per point when
//     validation mode is on, and caught by the leaf operand check
//     otherwise);
//   * on return, `staging` additionally holds the values of the
//     out-set of U, and U's interior values have been removed.
//
// Cost model (charged into a CostLedger):
//   * recursion level on domain U: copying the preboundary of each
//     child in and its out-set back out costs 2 f(S(U)) per word
//     (Prop. 2 steps 1 and 3), where S(U) is the space bound of the
//     recurrence S(U) <= max_i S(Ui) + P(U);
//   * leaf (width <= leaf_width): each vertex is executed naively —
//     one unit of compute plus one access per operand and one for the
//     result, each charged f(S(leaf)).
// Setting leaf_width = m realizes Theorem 3's "executable diamonds"
// D(m) executed by naive simulation at cost Θ(m^3); leaf_width = 1 is
// the pure divide-and-conquer of Theorems 2 and 5.
//
// Hot path (see doc/ENGINE.md "Hot path" and doc/PERF.md): recursion
// levels charge from Region::preboundary_count()/outset_count()
// without materializing point vectors; leaves run in a dense window
// (sep/staging.hpp LeafWindow: per-time-level prefix offset + row-
// major x offset) instead of a hash map, with per-leaf batched
// kCompute and a bit-exact kLocalAccess charge stream; staging is any
// store providing the accessors of sep/staging.hpp — StagingStore<D>
// for O(1) dense addressing, or the original ValueMap<D>. All charged
// totals are bit-identical to the materializing implementation;
// ExecutorConfig::validate re-enables the per-level materialization
// and asserts it changes nothing.
//
// SIMD leaves (see doc/ENGINE.md "SIMD kernels"): when the rule
// passed to execute_with_rule advertises a row kernel (sep/simd.hpp
// RowKernel) and simd::enabled(), each leaf row's interior span —
// the consecutive cells whose operands all sit in the dense window —
// is evaluated by one kernel call over contiguous structure-of-arrays
// operand rows; edge cells (mesh boundary, staging operands) run the
// scalar per-vertex path. Charging stays count-based and ordered
// exactly as the scalar loop charges, and kernels are pure integer
// programs, so values, the CostLedger stream, charged totals, peak
// staging and every emitted table are byte-identical with SIMD on,
// off, or unavailable.
//
// Parallel recursion (see doc/ENGINE.md "Task layer"): when
// ExecutorConfig::parallel_grain > 0 and an engine::TaskScheduler with
// more than one slot is ambient on the calling thread, recursion nodes
// of monotone width above the grain fork their *equal-uppers* runs of
// children — Region::split() stable-sorts children by how many of
// their monotone coordinates take the upper half, and within one such
// run no child can feed another (each has a coordinate where it is
// upper and the sibling lower, and monotone arcs only decrease
// coordinates), so the run is an antichain of the recursion and its
// order is semantically irrelevant. Each forked child runs against a
// private StagingShard (reads fall through to the parent store) and a
// core::ChargeLog; the join merges shards and replays logs in
// canonical child order, so every charged double, the peak-staging
// high-water mark, slab-allocation counts, and all final values are
// bit-identical to the serial execution at any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/cost.hpp"
#include "core/expect.hpp"
#include "engine/arena.hpp"
#include "engine/task.hpp"
#include "engine/trace.hpp"
#include "geom/region.hpp"
#include "hram/access_fn.hpp"
#include "sep/guest.hpp"
#include "sep/simd.hpp"
#include "sep/staging.hpp"

namespace bsmp::sep {

struct ExecutorConfig {
  /// Domains of monotone width <= leaf_width are executed naively.
  int64_t leaf_width = 1;
  /// Access function of the executing node's H-RAM.
  hram::AccessFn f = hram::AccessFn::unit();
  /// Constant of the space bound S(width) = space_const * min(reach,
  /// width) * width^D + 8; tests verify the executor's live footprint
  /// stays within it. Measured peak footprints converge to ~4x
  /// reach*width^D; the paper's own recurrence constant σ0 =
  /// q c δ^γ / (1 - δ^γ) evaluates to ~11 for the d=1 diamond.
  double space_const = 6.0;
  /// Constant of the *leaf* working-set bound. A leaf ("executable
  /// diamond", Theorem 3) holds only its own points and preboundary —
  /// no recursion-path staging — so its accesses are charged at a
  /// tighter address scale than the recursion levels'.
  double leaf_space_const = 2.0;
  /// Re-materialize preboundary / out-set vectors at every recursion
  /// level and assert the topological-partition property and the
  /// count == size equalities. Defaults from sep::validation_mode()
  /// (the BSMP_VALIDATE environment variable).
  bool validate = validation_mode();
  /// Monotone width above which recursion nodes fork their equal-uppers
  /// child runs into the ambient engine::TaskScheduler (see the header
  /// comment). 0 disables forking; domains at or below the grain — and
  /// all leaves — run serially on the calling thread. Execution is
  /// bit-identical either way. Defaults from
  /// sep::default_parallel_grain() (BSMP_PARALLEL_GRAIN).
  int64_t parallel_grain = default_parallel_grain();
  /// Which mechanism this executor's forks are attributed to in the
  /// per-phase task counters (metrics-v2 `tasks.phases`). Standalone
  /// executors are "executor-leaf"; the multiproc simulator retags its
  /// embedded executor as regime2-subtile.
  engine::ForkPhase fork_phase = engine::ForkPhase::kExecutorLeaf;
};

template <int D, class V = Word>
class Executor {
 public:
  using value_type = V;

  Executor(const BasicGuest<D, V>* guest, ExecutorConfig cfg)
      : guest_(guest), cfg_(cfg) {
    BSMP_REQUIRE(guest != nullptr);
    guest_->validate();
    BSMP_REQUIRE(cfg_.leaf_width >= 1);
  }

  /// Vertex and staging-footprint deltas of one execution, relative to
  /// the staging store's state on entry: `net` is the change in live
  /// values, `peak` the high-water mark of that change. Returned by
  /// execute_delta() for the caller to absorb() after a parallel join.
  struct ExecDelta {
    std::int64_t vertices = 0;
    std::int64_t net = 0;
    std::int64_t peak = 0;
  };

  /// Rebind the ledger charges are recorded into (per-processor ledgers
  /// in the multiprocessor simulators).
  void set_ledger(core::CostLedger* ledger) { ledger_ = ledger; }

  /// Space bound S for a domain of the given monotone width, in words:
  /// S(w) = space_const * min(reach, w) * w^D + 64. The min matters when
  /// the domain is shorter than the memory depth m: then every vertex's
  /// self-lane predecessor lies below the domain, the preboundary is
  /// Θ(w^(D+1)) and so is the working set — not Θ(m * w^D).
  double space_bound(int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Working-set bound of a naively-executed leaf of the given width:
  /// its points plus preboundary, with no recursion-path staging.
  double leaf_space_bound(int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.leaf_space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Execute domain U (see the contract above): afterwards the out-set
  /// values of U are in `staging` (enumerable via U.outset() /
  /// U.outset_visit()). `Store` is ValueMap<D> or StagingStore<D>.
  template <class Store>
  void execute(const geom::Region<D>& U, Store& staging) {
    execute_with_rule(U, staging, guest_->rule);
  }

  /// Fast path: identical to execute(), with the leaf loop specialized
  /// for a concrete `rule` callable (no std::function dispatch per
  /// vertex). `rule` must compute the same function as guest->rule.
  template <class Store, class RuleFn>
  void execute_with_rule(const geom::Region<D>& U, Store& staging,
                         const RuleFn& rule) {
    BSMP_REQUIRE(ledger_ != nullptr);
    const std::size_t base = staging.size();
    Ctx<Store, core::CostLedger> cx;
    cx.staging = &staging;
    cx.ledger = ledger_;
    // Hand the executor's persistent leaf scratch to the root context
    // so steady-state serial execution stays allocation-free.
    cx.vals.swap(leaf_vals_);
    cx.off.swap(leaf_off_);
    cx.self_row.swap(leaf_self_);
    exec_rec(U, cx, rule);
    cx.vals.swap(leaf_vals_);
    cx.off.swap(leaf_off_);
    cx.self_row.swap(leaf_self_);
    absorb(ExecDelta{cx.vertices, cx.cur, cx.peak}, base);
  }

  /// Concurrency-safe execution for forked callers: run U with charges
  /// recorded into `log` (instead of the bound ledger) and return the
  /// deltas for the caller to absorb() after joining. Mutates only
  /// `staging` and `log` — never the executor — so concurrent calls on
  /// one Executor are safe provided their stores are disjoint (e.g.
  /// per-fork StagingShards over a common base).
  template <class Store, class RuleFn>
  ExecDelta execute_delta(const geom::Region<D>& U, Store& staging,
                          core::ChargeLog& log, const RuleFn& rule) const {
    // Leaf scratch from the calling thread's pool: forked callers
    // (subtile bodies, executor child runs) land here once per fork,
    // and the checkout makes their steady state allocation-free too.
    engine::Scratch<LeafScratch> scratch;
    Ctx<Store, core::ChargeLog> cx;
    cx.staging = &staging;
    cx.ledger = &log;
    cx.vals.swap(scratch->vals);
    cx.off.swap(scratch->off);
    cx.self_row.swap(scratch->self_row);
    exec_rec(U, cx, rule);
    cx.vals.swap(scratch->vals);
    cx.off.swap(scratch->off);
    cx.self_row.swap(scratch->self_row);
    return ExecDelta{cx.vertices, cx.cur, cx.peak};
  }

  template <class Store>
  ExecDelta execute_delta(const geom::Region<D>& U, Store& staging,
                          core::ChargeLog& log) const {
    return execute_delta(U, staging, log, guest_->rule);
  }

  /// Fold an execute_delta() result into the executor's counters.
  /// `base` is the live size the delta's execution started from (in
  /// serial-equivalent order), so base + peak is the absolute
  /// high-water mark the serial execution would have observed.
  void absorb(const ExecDelta& d, std::size_t base) {
    vertices_ += d.vertices;
    const std::size_t abs_peak = base + static_cast<std::size_t>(d.peak);
    if (abs_peak > peak_staging_) peak_staging_ = abs_peak;
  }

  /// Total dag vertices executed so far.
  std::int64_t vertices_executed() const { return vertices_; }

  /// High-water mark of the staging store (live values), in words — the
  /// concrete footprint compared against space_bound in tests.
  std::size_t peak_staging() const { return peak_staging_; }

 private:
  /// The leaf scratch triple (dense window values + per-level prefix
  /// offsets + the SIMD self-operand row) as one engine::Scratch<T>
  /// pool unit, checked out per forked execution. clear() keeps
  /// everything: LeafWindow sizes the vectors and fully writes the
  /// live prefix before any read, so stale contents are unreachable
  /// and dropping capacity is the only thing reset could cost.
  struct LeafScratch {
    std::vector<V> vals;
    std::vector<std::size_t> off;
    std::vector<V> self_row;

    void clear() {}
  };

  /// Per-execution mutable state. The recursion never touches executor
  /// members directly; everything it mutates lives here, so forked
  /// subtrees get private contexts and the executor itself stays
  /// read-only during execution. Staging-footprint accounting is
  /// *relative* (cur = net live delta since context entry, peak = its
  /// high-water mark at the serial code's sample points), which makes
  /// it exact under sharding: a join adds the parent's cur to the
  /// child's peak, reproducing the absolute sizes a serial execution
  /// would have sampled.
  template <class Store, class Ledger>
  struct Ctx {
    Store* staging = nullptr;
    Ledger* ledger = nullptr;
    std::int64_t vertices = 0;
    std::int64_t cur = 0;
    std::int64_t peak = 0;
    // Recursion depth below the execute() root, carried into forked
    // sub-contexts so the sep-region trace spans label levels
    // identically at any thread count.
    int depth = 0;
    // Leaf scratch (dense window values + per-level prefix offsets +
    // the SIMD path's self-operand row), reused across this context's
    // leaves.
    std::vector<V> vals;
    std::vector<std::size_t> off;
    std::vector<V> self_row;
    // Out-set size of the most recently executed leaf: the staging
    // pass at the end of execute_leaf walks exactly the set
    // outset_count() would re-derive, so exec_child reuses its tally
    // for the step-3 charge instead of a second boundary pass.
    std::int64_t leaf_out = 0;

    void note() {
      if (cur > peak) peak = cur;
    }
    void insert(const geom::Point<D>& q, const V& v) {
      if (store_insert(*staging, q, v)) ++cur;
    }
    void insert_span(const geom::Point<D>& q, const V* src, std::size_t n) {
      cur += store_insert_span(*staging, q, src, n);
    }
    void erase(const geom::Point<D>& q) {
      if (store_erase(*staging, q)) --cur;
    }
  };

  template <class Store, class Ledger, class RuleFn>
  void exec_rec(const geom::Region<D>& U, Ctx<Store, Ledger>& cx,
                const RuleFn& rule) const {
    if (U.width() <= cfg_.leaf_width) {
      engine::trace::Span leaf_span(engine::trace::Cat::kSepRegion,
                                    "sep-leaf", U.width(), cx.depth);
      execute_leaf(U, cx, rule);
      cx.note();
      return;
    }

    engine::trace::Span region_span(engine::trace::Cat::kSepRegion,
                                    "sep-region", U.width(), cx.depth);
    const core::Cost fS =
        cfg_.f(static_cast<std::uint64_t>(space_bound(U.width())));
    std::vector<geom::Region<D>> children = U.split();
    ++cx.depth;
    if (should_fork(U)) {
      exec_children_forked(U, children, fS, cx, rule);
    } else {
      for (const geom::Region<D>& child : children)
        exec_child(U, child, fS, cx, rule);
    }
    --cx.depth;

    // Retain only U's out-set; everything else produced inside U is
    // dead (its successors are all inside U and already executed).
    // The produced set is exactly the union of the children's
    // out-sets; outset_visit_minus subtracts U's out-set predicate
    // per row as intervals, so the filter costs O(rows), not a
    // successor scan per staged point.
    for (const geom::Region<D>& child : children) {
      child.outset_visit_minus(U, [&](const geom::Point<D>& q) {
        cx.erase(q);
      });
    }
    if (cfg_.validate) validate_outset(U, *cx.staging);
    cx.note();
  }

  /// One child of a recursion node: Proposition 2's three steps.
  template <class Store, class Ledger, class RuleFn>
  void exec_child(const geom::Region<D>& U, const geom::Region<D>& child,
                  core::Cost fS, Ctx<Store, Ledger>& cx,
                  const RuleFn& rule) const {
    // Step 1: bring the child's preboundary into the child's working
    // space. Presence in staging is exactly the topological-partition
    // property.
    const std::int64_t gin = child.preboundary_count();
    if (cfg_.validate)
      validate_preboundary(child, *cx.staging, U.width(), gin);
    cx.ledger->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(gin),
                      static_cast<std::uint64_t>(gin));

    // Step 2: execute the child.
    exec_rec(child, cx, rule);

    // Step 3: save the child's out-set for later children / parent.
    // Leaf children just walked their out-set to stage results;
    // their tally is the same value outset_count() recomputes.
    const std::int64_t child_out = child.width() <= cfg_.leaf_width
                                       ? cx.leaf_out
                                       : child.outset_count();
    if (cfg_.validate) validate_child_outset(child, child_out);
    cx.ledger->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(child_out),
                      static_cast<std::uint64_t>(child_out));
  }

  /// Fork when this node is above the grain and a multi-slot scheduler
  /// is ambient on this thread (a worker or a bound caller of
  /// engine::Pool). Without one, forks would run inline anyway — so
  /// skipping the shard machinery entirely is pure savings.
  bool should_fork(const geom::Region<D>& U) const {
    if (cfg_.parallel_grain <= 0 || U.width() <= cfg_.parallel_grain)
      return false;
    engine::TaskScheduler* s = engine::TaskScheduler::current();
    return s != nullptr && s->parallel();
  }

  /// Execute the children of one recursion node, forking runs of
  /// consecutive equal-uppers children. split() orders children by the
  /// number of monotone coordinates taking the upper half ("uppers",
  /// recomputed here from the lo corners); within an equal-uppers run,
  /// any two children have a coordinate where one is upper and the
  /// other lower, and monotone arcs only decrease coordinates — so
  /// neither can feed the other and the run is an antichain. Each fork
  /// gets a StagingShard over cx's store and a private ChargeLog; the
  /// join then merges in canonical child order, reproducing the serial
  /// store state and charge sequence bit for bit.
  template <class Store, class Ledger, class RuleFn>
  void exec_children_forked(const geom::Region<D>& U,
                            const std::vector<geom::Region<D>>& children,
                            core::Cost fS, Ctx<Store, Ledger>& cx,
                            const RuleFn& rule) const {
    using Shard = typename ShardOf<D, Store>::type;
    // The fork's bookkeeping comes from the forking thread's scratch
    // pools: the ChargeLog checkout here, the shard's local store via
    // detail::shard_local, the leaf scratch inside the fork body.
    struct Forked {
      engine::Scratch<core::ChargeLog> log;
      ExecDelta delta;
      std::optional<Shard> shard;
    };
    auto uppers = [&U](const geom::Region<D>& child) {
      int u = 0;
      for (int k = 0; k < geom::Region<D>::K; ++k)
        if (child.lo()[k] != U.lo()[k]) ++u;
      return u;
    };
    std::size_t i = 0;
    while (i < children.size()) {
      std::size_t j = i + 1;
      while (j < children.size() &&
             uppers(children[j]) == uppers(children[i]))
        ++j;
      if (j - i == 1) {
        // Singleton run: possibly a predecessor of later children —
        // execute in place so they see its out-set in cx's store.
        exec_child(U, children[i], fS, cx, rule);
      } else {
        std::vector<Forked> forks(j - i);
        for (Forked& fk : forks) fk.shard.emplace(overlay, *cx.staging);
        const int child_depth = cx.depth;
        engine::TaskScope scope(cfg_.fork_phase);
        for (std::size_t k = i; k < j; ++k) {
          Forked& fk = forks[k - i];
          const geom::Region<D>& child = children[k];
          scope.fork([this, &fk, &U, &child, fS, child_depth, &rule] {
            engine::Scratch<LeafScratch> scratch;  // worker-thread pool
            Ctx<Shard, core::ChargeLog> sub;
            sub.staging = &*fk.shard;
            sub.ledger = &*fk.log;
            sub.depth = child_depth;
            sub.vals.swap(scratch->vals);
            sub.off.swap(scratch->off);
            sub.self_row.swap(scratch->self_row);
            exec_child(U, child, fS, sub, rule);
            sub.vals.swap(scratch->vals);
            sub.off.swap(scratch->off);
            sub.self_row.swap(scratch->self_row);
            fk.delta = ExecDelta{sub.vertices, sub.cur, sub.peak};
          });
        }
        scope.join();
        engine::trace::Span merge_span(engine::trace::Cat::kTask,
                                       "shard-merge",
                                       static_cast<std::int64_t>(j - i));
        for (Forked& fk : forks) {
          fk.log->replay_into(*cx.ledger);
          fk.shard->merge_into(*cx.staging);
          if (cx.cur + fk.delta.peak > cx.peak)
            cx.peak = cx.cur + fk.delta.peak;
          cx.cur += fk.delta.net;
          cx.vertices += fk.delta.vertices;
        }
      }
      i = j;
    }
  }

  template <class Store>
  void validate_preboundary(const geom::Region<D>& child,
                            const Store& staging, std::int64_t width,
                            std::int64_t count) const {
    std::vector<geom::Point<D>> gin = child.preboundary();
    BSMP_ASSERT_MSG(static_cast<std::int64_t>(gin.size()) == count,
                    "preboundary_count != |preboundary()|");
    for (const auto& q : gin) {
      BSMP_ASSERT_MSG(store_find(staging, q) != nullptr,
                      "preboundary value missing: topological partition "
                      "violated at width "
                          << width);
    }
  }

  void validate_child_outset(const geom::Region<D>& child,
                             std::int64_t count) const {
    BSMP_ASSERT_MSG(
        static_cast<std::int64_t>(child.outset().size()) == count,
        "outset_count != |outset()|");
  }

  template <class Store>
  void validate_outset(const geom::Region<D>& U, const Store& staging) const {
    std::vector<geom::Point<D>> out = U.outset();
    for (const auto& q : out) {
      BSMP_ASSERT_MSG(U.in_outset(q), "in_outset rejects an outset() point");
      BSMP_ASSERT_MSG(store_find(staging, q) != nullptr,
                      "out-set value missing");
    }
  }

  /// Interior spans shorter than this run through the scalar edge path
  /// — a kernel call (plus possible self-row staging) is not worth two
  /// cells of work.
  static constexpr std::int64_t kMinSpan = 2;

  template <class Store, class Ledger, class RuleFn>
  void execute_leaf(const geom::Region<D>& U, Ctx<Store, Ledger>& cx,
                    const RuleFn& rule) const {
    const geom::Stencil<D>& st = guest_->stencil;
    const core::Cost f_leaf =
        cfg_.f(static_cast<std::uint64_t>(leaf_space_bound(U.width())));
    LeafWindow<D, V> win(U, cx.vals, cx.off);
    const std::int64_t tmin = win.tmin();

    auto lookup = [&](const geom::Point<D>& q) -> const V& {
      // q is a vertex; inside the leaf box it was already executed
      // (topological order), so its value sits in the dense window.
      if (q.t >= tmin && U.in_box(q)) return win[win.slot(q)];
      const V* v = store_find(*cx.staging, q);
      BSMP_ASSERT_MSG(v != nullptr,
                      "operand missing at leaf: topological partition or "
                      "out-set computation is wrong");
      return *v;
    };

    // One cell's value and operand count — the naive per-vertex
    // execution (Definition 3), shared verbatim by the scalar loop and
    // the SIMD path's edge cells.
    auto cell = [&](const geom::Point<D>& p, int& operands) -> V {
      if (p.t == 0) {
        operands = 1;
        return guest_->input(p.x, 0);  // input vertex (Definition 3)
      }
      V self_prev;
      if (p.t >= st.m) {
        geom::Point<D> q = p;
        q.t = p.t - st.m;
        self_prev = lookup(q);
      } else {
        self_prev = guest_->input(p.x, p.t % st.m);
      }
      BasicNeighbors<D, V> nbrs{};
      operands = 0;
      for (int i = 0; i < D; ++i) {
        for (int s = 0; s < 2; ++s) {
          geom::Point<D> q = p;
          q.x[i] += (s == 0 ? -1 : 1);
          q.t = p.t - 1;
          if (st.in_space(q.x)) {
            nbrs[2 * i + s] = lookup(q);
            ++operands;
          }
        }
      }
      ++operands;  // self operand
      return rule(p, self_prev, nbrs);
    };

    auto la = cx.ledger->stream(core::CostKind::kLocalAccess);
    std::uint64_t la_events = 0;
    std::int64_t executed = 0;

    bool vectored = false;
    if constexpr (simd::has_row_kernel<RuleFn, D, V> && (D == 1 || D == 2)) {
      if (simd::enabled()) {
        execute_leaf_rows(U, win, cx, rule, f_leaf, la, la_events, executed,
                          cell, lookup);
        vectored = true;
      }
    }
    if (!vectored) {
      std::size_t w = 0;
      U.for_each([&](const geom::Point<D>& p) {
        int operands = 0;
        V value = cell(p, operands);
        win[w++] = value;
        ++executed;
        // One read per operand plus one result write, each f(S(leaf)):
        // streamed so the per-vertex addition order (and hence the
        // floating-point total) matches a charge() call per vertex.
        la.add_cost(static_cast<core::Cost>(operands + 1) * f_leaf);
        la_events += static_cast<std::uint64_t>(operands + 1);
      });
    }
    la.add_events(la_events);
    // Unit compute per vertex: integer-valued, so one batched charge is
    // bit-identical to `executed` unit charges.
    cx.ledger->charge(core::CostKind::kCompute,
                      static_cast<core::Cost>(executed),
                      static_cast<std::uint64_t>(executed));
    cx.vertices += executed;

    std::int64_t nout = 0;
    U.outset_spans([&](const geom::Point<D>& q, std::int64_t hi) {
      const std::int64_t len = hi - q.x[D - 1] + 1;
      cx.insert_span(q, &win[win.slot(q)], static_cast<std::size_t>(len));
      nout += len;
    });
    cx.leaf_out = nout;
    if (cfg_.validate) validate_outset(U, *cx.staging);
  }

  /// The SIMD leaf: level by level, row by row, each innermost row is
  /// split into the *interior span* — the consecutive cells whose
  /// 2D+1 operands all sit in the dense window — and scalar edges.
  /// The span's operand rows are contiguous SoA slices of the window
  /// (or, for the self operand, of a scratch row staged through the
  /// same lookup the scalar path uses), so one RowKernel call computes
  /// the whole span. Charges are emitted per cell, in exactly the
  /// scalar loop's visit order and amounts: interior cells always have
  /// 2D+1 operands, so the kLocalAccess stream is bit-identical.
  template <class Store, class Ledger, class RuleFn, class Stream,
            class Cell, class Lookup>
  void execute_leaf_rows(const geom::Region<D>& U, LeafWindow<D, V>& win,
                         Ctx<Store, Ledger>& cx, const RuleFn& rule,
                         core::Cost f_leaf, Stream& la,
                         std::uint64_t& la_events, std::int64_t& executed,
                         const Cell& cell, const Lookup& lookup) const {
    const geom::Stencil<D>& st = guest_->stencil;
    const std::int64_t tmin = win.tmin();
    // Cost of one edge cell, charged as the scalar loop charges it.
    auto scalar_cell = [&](geom::Point<D> p, V* dst) {
      int operands = 0;
      *dst = cell(p, operands);
      ++executed;
      la.add_cost(static_cast<core::Cost>(operands + 1) * f_leaf);
      la_events += static_cast<std::uint64_t>(operands + 1);
    };
    // Interior cells always carry 2D+1 operands plus the result write.
    const core::Cost span_cost =
        static_cast<core::Cost>(2 * D + 2) * f_leaf;
    // Stage the self operand of span [vlo, vhi] at level t into a
    // contiguous scratch row — unless it already is one in the window,
    // or the staging store can serve the whole span as a dense row
    // (the common case when the leaf sits m levels above its staged
    // preboundary: zero copies, the kernel reads the slab in place).
    auto stage_self = [&](std::int64_t t, std::int64_t vlo, std::int64_t vhi,
                          geom::Point<D> q) -> const V* {
      const std::size_t n = static_cast<std::size_t>(vhi - vlo + 1);
      q.t = t - st.m;
      if (t >= st.m) {
        if (t - st.m < win.tmin()) {
          q.x[D - 1] = vlo;
          if (const V* r = store_row_span(*cx.staging, q, n)) return r;
        }
        if (cx.self_row.size() < n) cx.self_row.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          q.x[D - 1] = vlo + static_cast<std::int64_t>(i);
          cx.self_row[i] = lookup(q);
        }
      } else {
        if (cx.self_row.size() < n) cx.self_row.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          q.x[D - 1] = vlo + static_cast<std::int64_t>(i);
          cx.self_row[i] = guest_->input(q.x, t % st.m);
        }
      }
      return cx.self_row.data();
    };

    for (std::int64_t t = tmin; t <= win.tmax(); ++t) {
      if constexpr (D == 1) {
        const auto [a, b] = U.x_range(0, t);
        if (a > b) continue;
        V* out_row = win.row(t);
        geom::Point<1> p;
        p.t = t;
        // Interior span: both (x±1, t-1) neighbors inside the window
        // row below (which also puts them in space).
        std::int64_t pa = 0, pb = -1;
        std::int64_t vlo = a, vhi = a - 1;
        if (t > tmin) {
          std::tie(pa, pb) = U.x_range(0, t - 1);
          vlo = std::max(a, pa + 1);
          vhi = std::min(b, pb - 1);
        }
        if (vhi - vlo + 1 < kMinSpan) {
          vlo = a;
          vhi = a - 1;  // whole row through the scalar path
        }
        for (std::int64_t x = a; x < vlo; ++x) {
          p.x[0] = x;
          scalar_cell(p, out_row + (x - a));
        }
        if (vlo <= vhi) {
          const std::size_t n = static_cast<std::size_t>(vhi - vlo + 1);
          const V* prev = win.row(t - 1);
          const V* self;
          bool self_in_window = false;
          if (t >= st.m && t - st.m >= tmin) {
            const auto [sa, sb] = U.x_range(0, t - st.m);
            self_in_window = vlo >= sa && vhi <= sb;
            if (self_in_window) self = win.row(t - st.m) + (vlo - sa);
          }
          if (!self_in_window) self = stage_self(t, vlo, vhi, p);
          const V* nbrs[2] = {prev + (vlo - 1 - pa), prev + (vlo + 1 - pa)};
          p.x[0] = vlo;
          rule.row(out_row + (vlo - a), self, nbrs, n, p, 1);
          executed += static_cast<std::int64_t>(n);
          la_events += static_cast<std::uint64_t>(2 * D + 2) * n;
          for (std::size_t i = 0; i < n; ++i) la.add_cost(span_cost);
        }
        for (std::int64_t x = vhi + 1; x <= b; ++x) {
          p.x[0] = x;
          scalar_cell(p, out_row + (x - a));
        }
      } else {
        static_assert(D == 2);
        const auto [a0, b0] = U.x_range(0, t);
        const auto [a1, b1] = U.x_range(1, t);
        if (a0 > b0 || a1 > b1) continue;
        std::int64_t p0a = 0, p0b = -1, p1a = 0, p1b = -1;
        if (t > tmin) {
          std::tie(p0a, p0b) = U.x_range(0, t - 1);
          std::tie(p1a, p1b) = U.x_range(1, t - 1);
        }
        geom::Point<2> p;
        p.t = t;
        for (std::int64_t x0 = a0; x0 <= b0; ++x0) {
          p.x[0] = x0;
          V* out_row = win.row(t, x0);
          // Interior span: all four (t-1) neighbor rows inside the
          // window (rows x0-1, x0, x0+1 of the level below).
          std::int64_t vlo = a1, vhi = a1 - 1;
          if (t > tmin && x0 - 1 >= p0a && x0 + 1 <= p0b) {
            vlo = std::max(a1, p1a + 1);
            vhi = std::min(b1, p1b - 1);
          }
          if (vhi - vlo + 1 < kMinSpan) {
            vlo = a1;
            vhi = a1 - 1;
          }
          for (std::int64_t x1 = a1; x1 < vlo; ++x1) {
            p.x[1] = x1;
            scalar_cell(p, out_row + (x1 - a1));
          }
          if (vlo <= vhi) {
            const std::size_t n = static_cast<std::size_t>(vhi - vlo + 1);
            const V* r_lo = win.row(t - 1, x0 - 1);
            const V* r_md = win.row(t - 1, x0);
            const V* r_hi = win.row(t - 1, x0 + 1);
            const V* self;
            bool self_in_window = false;
            if (t >= st.m && t - st.m >= tmin) {
              const auto [sa0, sb0] = U.x_range(0, t - st.m);
              if (x0 >= sa0 && x0 <= sb0) {
                const auto [sa1, sb1] = U.x_range(1, t - st.m);
                self_in_window = vlo >= sa1 && vhi <= sb1;
                if (self_in_window)
                  self = win.row(t - st.m, x0) + (vlo - sa1);
              }
            }
            if (!self_in_window) self = stage_self(t, vlo, vhi, p);
            const V* nbrs[4] = {r_lo + (vlo - p1a), r_hi + (vlo - p1a),
                                r_md + (vlo - 1 - p1a),
                                r_md + (vlo + 1 - p1a)};
            p.x[1] = vlo;
            rule.row(out_row + (vlo - a1), self, nbrs, n, p, 1);
            executed += static_cast<std::int64_t>(n);
            la_events += static_cast<std::uint64_t>(2 * D + 2) * n;
            for (std::size_t i = 0; i < n; ++i) la.add_cost(span_cost);
          }
          for (std::int64_t x1 = vhi + 1; x1 <= b1; ++x1) {
            p.x[1] = x1;
            scalar_cell(p, out_row + (x1 - a1));
          }
        }
      }
    }
  }

  const BasicGuest<D, V>* guest_;
  ExecutorConfig cfg_;
  core::CostLedger* ledger_ = nullptr;
  std::int64_t vertices_ = 0;
  std::size_t peak_staging_ = 0;
  // Leaf scratch, lent to the root context of each execute() call so a
  // steady-state serial execution performs no per-leaf allocation.
  std::vector<V> leaf_vals_;
  std::vector<std::size_t> leaf_off_;
  std::vector<V> leaf_self_;
};

}  // namespace bsmp::sep
