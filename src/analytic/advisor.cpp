#include "analytic/advisor.hpp"

#include <cmath>

#include "analytic/fit.hpp"
#include "core/expect.hpp"

namespace bsmp::analytic {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kNaive: return "naive";
    case Scheme::kDcUniproc: return "dc_uniproc";
    case Scheme::kMultiproc: return "multiproc";
  }
  return "?";
}

Recommendation recommend(int d, double n, double m, double p) {
  BSMP_REQUIRE(d >= 1 && d <= 3);
  Recommendation rec;
  rec.range = classify_range(d, n, m, p);
  double thm1 = slowdown_bound(d, n, m, p);
  double naive = naive_bound(d, n, m, p);
  // Range 4 *is* naive (s* = n/p, one strip per processor) — see the
  // header; rec.s_star stays 0 because there is no separate multiproc
  // schedule to parameterize.
  if (rec.range == Range::k4 || naive <= thm1) {
    rec.scheme = Scheme::kNaive;
    rec.predicted_slowdown = naive;
    return rec;
  }
  rec.predicted_slowdown = thm1;
  if (p <= 1.0) {
    rec.scheme = Scheme::kDcUniproc;
  } else {
    rec.scheme = Scheme::kMultiproc;
    if (d == 1) rec.s_star = s_star(n, m, p);
  }
  return rec;
}

std::array<double, 3> Calibration::terms(double n, double m, double p) {
  double s = feasible_s_star(n, m, p);
  ATerms t = A_terms(n, m, p, s);
  double brent = n / p;
  return {brent * t.relocation, brent * t.execution, brent * t.communication};
}

void Calibration::add_measurement(double n, double m, double p,
                                  double slowdown) {
  BSMP_REQUIRE(slowdown > 0);
  x_.push_back(terms(n, m, p));
  y_.push_back(slowdown);
  fitted_ = false;
}

void Calibration::fit() {
  BSMP_REQUIRE_MSG(x_.size() >= 3, "need at least 3 measurements");
  // Relative-error weighting: scale each row by 1/y.
  std::vector<std::array<double, 3>> xr = x_;
  std::vector<double> yr(y_.size(), 1.0);
  for (std::size_t i = 0; i < y_.size(); ++i)
    for (double& v : xr[i]) v /= y_[i];
  c_ = fit_least_squares<3>(xr, yr);
  fitted_ = true;
}

double Calibration::predict(double n, double m, double p) const {
  BSMP_REQUIRE_MSG(fitted_, "call fit() first");
  auto t = terms(n, m, p);
  return c_[0] * t[0] + c_[1] * t[1] + c_[2] * t[2];
}

double Calibration::training_error() const {
  BSMP_REQUIRE(fitted_);
  double mre = 0;
  for (std::size_t i = 0; i < y_.size(); ++i) {
    double pred = c_[0] * x_[i][0] + c_[1] * x_[i][1] + c_[2] * x_[i][2];
    mre += std::fabs(pred - y_[i]) / y_[i];
  }
  return mre / static_cast<double>(y_.size());
}

}  // namespace bsmp::analytic
