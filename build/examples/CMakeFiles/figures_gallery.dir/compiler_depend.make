# Empty compiler generated dependencies file for figures_gallery.
# This may be replaced when dependencies are built.
