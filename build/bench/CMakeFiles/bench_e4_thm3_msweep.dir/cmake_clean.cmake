file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_thm3_msweep.dir/bench_e4_thm3_msweep.cpp.o"
  "CMakeFiles/bench_e4_thm3_msweep.dir/bench_e4_thm3_msweep.cpp.o.d"
  "bench_e4_thm3_msweep"
  "bench_e4_thm3_msweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_thm3_msweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
