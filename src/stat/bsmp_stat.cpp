#include "stat/bsmp_stat.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "analytic/advisor.hpp"
#include "analytic/tradeoff.hpp"

namespace bsmp::stat {

namespace json = core::json;

namespace {

std::string basename_of(const std::string& path) {
  std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_ns(double ns) {
  char buf[48];
  if (ns >= 1e9)
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  else if (ns >= 1e6)
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  else if (ns >= 1e3)
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  return buf;
}

/// google-benchmark entry lookup with aggregate fallback: a
/// repetitions>1 baseline holds only _mean/_median/... rows while a
/// fresh single-rep run holds the bare name; gates written against the
/// bare name must read both.
const json::Value& find_benchmark(const json::Value& root,
                                  const std::string& name) {
  static const json::Value kNull;
  for (const char* suffix : {"", "_median", "_mean"}) {
    std::string want = name + suffix;
    for (const auto& b : root["benchmarks"].items())
      if (b["name"].as_string() == want) return b;
  }
  return kNull;
}

struct Failure {
  std::string what;
};

/// The diff accumulates its report here so --report can tee it to a
/// file verbatim.
struct DiffState {
  std::ostringstream report;
  std::vector<Failure> failures;
  bool refused_drift = false;

  void fail(const std::string& what) {
    failures.push_back({what});
    report << "FAIL: " << what << "\n";
  }
};

// ---- tolerance spec -------------------------------------------------

struct RatioGate {
  std::string label;
  std::string num, den;            ///< benchmark names
  std::string num_metric, den_metric;
  double min = 0;
  double min_cpus = 0;    ///< gate applies only when cpus >= this
  double den_floor = 0;   ///< clamp denominator up (warm-up gates)
};

struct DriftSpec {
  std::string metric;
  double rel_tol = 0;
  bool lower_is_better = false;
};

struct FileSpec {
  std::vector<RatioGate> ratio_gates;
  std::vector<DriftSpec> drift;
};

bool load_spec_for(const std::string& tolerances_path,
                   const std::string& file_key, FileSpec& out,
                   std::string& error) {
  json::Parsed p = json::parse_file(tolerances_path);
  if (!p.ok) {
    error = p.error;
    return false;
  }
  const json::Value& files = p.value["files"];
  const json::Value& spec = files[file_key];
  if (spec.is_null()) return true;  // no gates declared for this file
  for (const auto& g : spec["ratio_gates"].items()) {
    RatioGate rg;
    rg.label = g["label"].as_string();
    rg.num = g["num"].as_string();
    rg.den = g["den"].as_string();
    std::string metric = g["metric"].as_string();
    rg.num_metric = g.has("num_metric") ? g["num_metric"].as_string() : metric;
    rg.den_metric = g.has("den_metric") ? g["den_metric"].as_string() : metric;
    rg.min = g["min"].as_number();
    rg.min_cpus = g["min_cpus"].as_number(0);
    rg.den_floor = g["den_floor"].as_number(0);
    out.ratio_gates.push_back(std::move(rg));
  }
  for (const auto& d : spec["drift"].items()) {
    DriftSpec ds;
    ds.metric = d["metric"].as_string();
    ds.rel_tol = d["rel_tol"].as_number();
    ds.lower_is_better = d["lower_is_better"].as_bool(false);
    out.drift.push_back(std::move(ds));
  }
  return true;
}

// ---- metrics-artifact helpers --------------------------------------

std::uint64_t attribution_dropped(const json::Value& pass) {
  return static_cast<std::uint64_t>(
      pass["attribution"]["dropped"].as_number(0));
}

bool attribution_trusted(const json::Value& pass) {
  const json::Value& at = pass["attribution"];
  if (at.is_null()) return true;  // nothing to distrust
  return at["trusted"].as_number(1) != 0;
}

std::uint64_t total_dropped(const Artifact& a) {
  std::uint64_t n = static_cast<std::uint64_t>(
      a.root["manifest"]["trace_dropped"].as_number(0));
  for (const auto& pass : a.root["passes"].items())
    n = std::max(n, attribution_dropped(pass));
  return n;
}

void show_attribution(const json::Value& at, std::ostream& os) {
  double total = at["total_self_ns"].as_number();
  os << "    attribution: " << fmt(at["spans"].as_number()) << " spans, "
     << "self-time " << fmt_ns(total) << ", critical path "
     << fmt_ns(at["critical_path_ns"].as_number());
  if (at["trusted"].as_number(1) == 0)
    os << "  [UNTRUSTED: " << fmt(at["dropped"].as_number())
       << " dropped]";
  os << "\n";
  for (const auto& [mech, slice] : at["mechanisms"].members()) {
    double self = slice["self_ns"].as_number();
    char pct[16];
    std::snprintf(pct, sizeof pct, "%5.1f%%",
                  total > 0 ? 100.0 * self / total : 0.0);
    os << "      " << pct << "  " << mech << "  " << fmt_ns(self) << "  ("
       << fmt(slice["spans"].as_number()) << " spans)\n";
  }
  const json::Value& phases = at["phases"];
  if (!phases.members().empty()) {
    os << "      by phase:\n";
    for (const auto& [phase, row] : phases.members()) {
      os << "        " << phase << ":";
      for (const auto& [mech, ns] : row.members())
        os << " " << mech << "=" << fmt_ns(ns.as_number());
      os << "\n";
    }
  }
}

}  // namespace

LoadResult load_artifact(const std::string& path) {
  LoadResult out;
  json::Parsed p = json::parse_file(path);
  if (!p.ok) {
    out.error = p.error;
    return out;
  }
  Artifact& a = out.artifact;
  a.root = std::move(p.value);
  a.path = path;
  const std::string& schema = a.root["schema"].as_string();
  if (schema.rfind("bsmp-metrics-", 0) == 0) {
    a.kind = ArtifactKind::kMetrics;
    a.schema = schema;
    a.name = a.root["name"].as_string();
    a.hostname = a.root["manifest"]["hostname"].as_string();
    a.num_cpus = static_cast<int>(a.root["manifest"]["num_cpus"].as_number(0));
  } else if (a.root.has("context") && a.root.has("benchmarks")) {
    a.kind = ArtifactKind::kGoogleBenchmark;
    a.schema = "google-benchmark";
    a.name = a.root["context"]["executable"].as_string();
    a.hostname = a.root["context"]["host_name"].as_string();
    a.num_cpus =
        static_cast<int>(a.root["context"]["num_cpus"].as_number(0));
  }
  out.ok = true;
  return out;
}

bool comparable_hardware(const Artifact& a, const Artifact& b) {
  if (a.hostname.empty() || b.hostname.empty()) return false;
  if (a.num_cpus <= 0 || b.num_cpus <= 0) return false;
  return a.hostname == b.hostname && a.num_cpus == b.num_cpus;
}

int run_show(const Artifact& a, std::ostream& os) {
  os << basename_of(a.path) << ": " << a.schema;
  if (!a.name.empty()) os << " '" << a.name << "'";
  os << "\n";
  if (a.kind == ArtifactKind::kGoogleBenchmark) {
    const json::Value& ctx = a.root["context"];
    os << "  host " << a.hostname << ", " << a.num_cpus << " cpus, "
       << ctx["library_build_type"].as_string() << " build\n";
    for (const auto& b : a.root["benchmarks"].items()) {
      os << "  " << b["name"].as_string() << ": "
         << fmt(b["real_time"].as_number()) << " "
         << b["time_unit"].as_string();
      for (const char* extra :
           {"vertices_per_sec", "scenarios_per_sec", "points_per_sec"})
        if (b.has(extra))
          os << ", " << extra << " " << fmt(b[extra].as_number());
      os << "\n";
    }
    return kExitOk;
  }
  if (a.kind != ArtifactKind::kMetrics) {
    os << "  (unrecognized artifact; no report)\n";
    return kExitOk;
  }

  const json::Value& man = a.root["manifest"];
  os << "  host " << (a.hostname.empty() ? "?" : a.hostname) << ", "
     << a.num_cpus << " cpus, " << man["build_type"].as_string()
     << " build, git " << man["git_sha"].as_string() << ", simd "
     << man["simd_isa"].as_string() << "\n";

  std::uint64_t drops = total_dropped(a);
  if (drops > 0) {
    os << "\n"
       << "  ********************************************************\n"
       << "  *  WARNING: " << drops << " trace events DROPPED (ring buffer "
       << "full).\n"
       << "  *  Attribution below UNDER-COUNTS and must not be used\n"
       << "  *  to gate regressions. Re-run with a larger\n"
       << "  *  BSMP_TRACE_BUFFER for trustworthy numbers.\n"
       << "  ********************************************************\n\n";
  }

  os << "  speedup " << fmt(a.root["speedup"].as_number()) << "\n";
  for (const auto& pass : a.root["passes"].items()) {
    os << "  pass threads=" << fmt(pass["threads"].as_number()) << "  "
       << fmt(pass["seconds"].as_number()) << " s, "
       << fmt(pass["sweeps"].items().size()) << " sweeps\n";
    const json::Value& at = pass["attribution"];
    if (!at.is_null()) {
      show_attribution(at, os);
      const json::Value& cal = at["calibration_points"];
      if (!cal.items().empty()) {
        os << "    calibration points (" << cal.items().size() << "):\n";
        for (const auto& c : cal.items()) {
          os << "      n=" << fmt(c["n"].as_number())
             << " m=" << fmt(c["m"].as_number())
             << " p=" << fmt(c["p"].as_number()) << " range "
             << c["range"].as_string()
             << (c["holdout"].as_number() != 0 ? " [holdout]" : "")
             << ": slowdown " << fmt(c["slowdown"].as_number())
             << " = reloc " << fmt(c["slow_reloc"].as_number()) << " + exec "
             << fmt(c["slow_exec"].as_number()) << " + comm "
             << fmt(c["slow_comm"].as_number()) << "\n";
        }
      }
    }
  }
  return kExitOk;
}

namespace {

void diff_gbench(const Artifact& baseline, const Artifact& candidate,
                 const FileSpec& spec, bool comparable, DiffState& st) {
  std::ostream& os = st.report;
  // Ratio gates: candidate-only, hardware-independent.
  for (const RatioGate& g : spec.ratio_gates) {
    if (g.min_cpus > 0 && candidate.num_cpus < g.min_cpus) {
      os << "skip (needs >= " << g.min_cpus << " cpus, have "
         << candidate.num_cpus << "): " << g.label << "\n";
      continue;
    }
    const json::Value& nb = find_benchmark(candidate.root, g.num);
    const json::Value& db = find_benchmark(candidate.root, g.den);
    if (nb.is_null() || db.is_null() || !nb.has(g.num_metric) ||
        !db.has(g.den_metric)) {
      st.fail(g.label + ": benchmark or metric missing from candidate");
      continue;
    }
    double num = nb[g.num_metric].as_number();
    double den = std::max(db[g.den_metric].as_number(), g.den_floor);
    double ratio = den > 0 ? num / den : 0.0;
    os << (ratio >= g.min ? "ok  " : "FAIL") << "  " << g.label << ": "
       << fmt(ratio) << "x (bar " << fmt(g.min) << "x)\n";
    if (ratio < g.min)
      st.failures.push_back({g.label + ": " + fmt(ratio) + "x under " +
                             fmt(g.min) + "x"});
  }
  // Drift vs the baseline: same hardware only.
  if (spec.drift.empty()) return;
  if (!comparable) {
    st.refused_drift = true;
    os << "REFUSED drift comparison: baseline host '" << baseline.hostname
       << "' (" << baseline.num_cpus << " cpus) vs candidate host '"
       << candidate.hostname << "' (" << candidate.num_cpus
       << " cpus) — cross-hardware numbers would gate the machines, not "
          "the code\n";
    return;
  }
  for (const DriftSpec& d : spec.drift) {
    for (const auto& bb : baseline.root["benchmarks"].items()) {
      if (!bb.has(d.metric)) continue;
      const std::string& bname = bb["name"].as_string();
      const json::Value& cb = find_benchmark(candidate.root, bname);
      if (cb.is_null() || !cb.has(d.metric)) continue;
      double base = bb[d.metric].as_number();
      double cand = cb[d.metric].as_number();
      if (base <= 0) continue;
      bool regressed = d.lower_is_better
                           ? cand > base * (1.0 + d.rel_tol)
                           : cand < base * (1.0 - d.rel_tol);
      os << (regressed ? "FAIL" : "ok  ") << "  " << bname << " "
         << d.metric << ": " << fmt(base) << " -> " << fmt(cand) << " ("
         << fmt(cand / base) << "x, tol " << fmt(d.rel_tol) << ")\n";
      if (regressed)
        st.failures.push_back({bname + " " + d.metric + " drifted " +
                               fmt(cand / base) + "x beyond tolerance"});
    }
  }
}

void diff_metrics(const Artifact& baseline, const Artifact& candidate,
                  const FileSpec& spec, bool comparable, DiffState& st) {
  std::ostream& os = st.report;
  const auto& bp = baseline.root["passes"].items();
  const auto& cp = candidate.root["passes"].items();
  if (baseline.name != candidate.name)
    st.fail("report names differ: '" + baseline.name + "' vs '" +
            candidate.name + "'");
  if (bp.size() != cp.size()) {
    st.fail("pass count differs: " + fmt((double)bp.size()) + " vs " +
            fmt((double)cp.size()));
    return;
  }
  for (std::size_t i = 0; i < bp.size(); ++i) {
    // Structural identity: the sweep layout is deterministic, so any
    // difference is a real change, not noise.
    const auto& bs = bp[i]["sweeps"].items();
    const auto& cs = cp[i]["sweeps"].items();
    if (bs.size() != cs.size()) {
      st.fail("pass " + fmt((double)i) + " sweep count differs");
      continue;
    }
    for (std::size_t j = 0; j < bs.size(); ++j) {
      if (bs[j]["label"].as_string() != cs[j]["label"].as_string() ||
          bs[j]["points"].as_number() != cs[j]["points"].as_number())
        st.fail("pass " + fmt((double)i) + " sweep " + fmt((double)j) +
                " label/points differ");
    }
    // Attribution: keys are a pure function of the span multiset —
    // compare them when both sides are trusted.
    const json::Value& ba = bp[i]["attribution"];
    const json::Value& ca = cp[i]["attribution"];
    if (!ba.is_null() && !ca.is_null()) {
      if (!attribution_trusted(bp[i]) || !attribution_trusted(cp[i])) {
        os << "skip attribution of pass " << i
           << ": one side has trace drops (untrusted)\n";
      } else {
        auto keys = [](const json::Value& at) {
          std::vector<std::string> k;
          for (const auto& [name, v] : at["mechanisms"].members()) {
            (void)v;
            k.push_back(name);
          }
          std::sort(k.begin(), k.end());
          return k;
        };
        if (keys(ba) != keys(ca))
          st.fail("pass " + fmt((double)i) +
                  " attribution mechanism keys differ");
        else
          os << "ok    pass " << i << " attribution keys match\n";
      }
    }
    // Calibration points: ledger-deterministic, so values must agree
    // exactly (tiny epsilon for serialization rounding).
    const auto& bc = ba["calibration_points"].items();
    const auto& cc = ca["calibration_points"].items();
    if (!bc.empty() || !cc.empty()) {
      if (bc.size() != cc.size()) {
        st.fail("pass " + fmt((double)i) + " calibration point count differs");
      } else {
        for (std::size_t j = 0; j < bc.size(); ++j) {
          double b = bc[j]["slowdown"].as_number();
          double c = cc[j]["slowdown"].as_number();
          if (bc[j]["n"].as_number() != cc[j]["n"].as_number() ||
              bc[j]["m"].as_number() != cc[j]["m"].as_number() ||
              bc[j]["p"].as_number() != cc[j]["p"].as_number() ||
              std::fabs(b - c) > 1e-6 * std::max(std::fabs(b), 1.0))
            st.fail("pass " + fmt((double)i) + " calibration point " +
                    fmt((double)j) + " differs (deterministic value!)");
        }
      }
    }
  }
  // Timing drift: same hardware only.
  if (spec.drift.empty()) return;
  if (!comparable) {
    st.refused_drift = true;
    os << "REFUSED drift comparison: baseline host '" << baseline.hostname
       << "' (" << baseline.num_cpus << " cpus) vs candidate host '"
       << candidate.hostname << "' (" << candidate.num_cpus << " cpus)\n";
    return;
  }
  for (const DriftSpec& d : spec.drift) {
    if (d.metric == "speedup") {
      double base = baseline.root["speedup"].as_number();
      double cand = candidate.root["speedup"].as_number();
      if (base <= 0) continue;
      bool regressed = cand < base * (1.0 - d.rel_tol);
      os << (regressed ? "FAIL" : "ok  ") << "  speedup: " << fmt(base)
         << " -> " << fmt(cand) << "\n";
      if (regressed) st.failures.push_back({"speedup drifted down"});
    } else if (d.metric == "seconds") {
      for (std::size_t i = 0; i < bp.size(); ++i) {
        double base = bp[i]["seconds"].as_number();
        double cand = cp[i]["seconds"].as_number();
        if (base <= 0) continue;
        bool regressed = cand > base * (1.0 + d.rel_tol);
        os << (regressed ? "FAIL" : "ok  ") << "  pass " << i
           << " seconds: " << fmt(base) << " -> " << fmt(cand) << "\n";
        if (regressed)
          st.failures.push_back({"pass " + fmt((double)i) +
                                 " wall clock drifted up"});
      }
    }
  }
}

}  // namespace

int run_diff(const Artifact& baseline, const Artifact& candidate,
             const DiffOptions& opt, std::ostream& os) {
  DiffState st;
  st.report << "bsmp-stat diff\n  baseline:  " << baseline.path << " ("
            << baseline.schema << ", host "
            << (baseline.hostname.empty() ? "?" : baseline.hostname) << ", "
            << baseline.num_cpus << " cpus)\n  candidate: " << candidate.path
            << " (" << candidate.schema << ", host "
            << (candidate.hostname.empty() ? "?" : candidate.hostname) << ", "
            << candidate.num_cpus << " cpus)\n";

  int code = kExitOk;
  if (baseline.kind != candidate.kind ||
      baseline.kind == ArtifactKind::kUnknown) {
    os << st.report.str();
    os << "error: artifacts are of different (or unknown) kinds\n";
    return kExitUsage;
  }

  FileSpec spec;
  if (!opt.tolerances_path.empty()) {
    std::string err;
    if (!load_spec_for(opt.tolerances_path, basename_of(baseline.path), spec,
                       err)) {
      os << st.report.str() << "error: " << err << "\n";
      return kExitUsage;
    }
  }

  bool comparable = comparable_hardware(baseline, candidate);
  if (baseline.kind == ArtifactKind::kGoogleBenchmark)
    diff_gbench(baseline, candidate, spec, comparable, st);
  else
    diff_metrics(baseline, candidate, spec, comparable, st);

  if (!st.failures.empty()) {
    st.report << "\n" << st.failures.size() << " regression(s)\n";
    code = kExitRegression;
  } else if (st.refused_drift && opt.require_comparable) {
    st.report << "\nrefused: --require-comparable and hardware differs\n";
    code = kExitRefused;
  } else {
    st.report << "\n0 regressions\n";
  }

  os << st.report.str();
  if (!opt.report_path.empty()) {
    std::ofstream f(opt.report_path);
    if (f) f << st.report.str();
  }
  return code;
}

int run_fit(const Artifact& a, std::ostream& os) {
  if (a.kind != ArtifactKind::kMetrics) {
    os << "error: fit needs a bsmp-metrics artifact\n";
    return kExitUsage;
  }
  // Use the last pass that recorded calibration points (passes record
  // the same deterministic samples; the last is the parallel pass).
  const json::Value* cal = nullptr;
  for (const auto& pass : a.root["passes"].items()) {
    const json::Value& c = pass["attribution"]["calibration_points"];
    if (!c.items().empty()) cal = &c;
  }
  if (cal == nullptr) {
    os << "error: no attribution.calibration_points in " << a.path
       << " (run the `cal` emitter with metrics enabled)\n";
    return kExitUsage;
  }

  analytic::Calibration agg;
  analytic::MechanismCalibration mech;
  struct Holdout {
    double n, m, p, measured;
  };
  std::vector<Holdout> holdouts;
  for (const auto& c : cal->items()) {
    double n = c["n"].as_number(), m = c["m"].as_number(),
           p = c["p"].as_number();
    double slow = c["slowdown"].as_number();
    if (c["holdout"].as_number() != 0) {
      holdouts.push_back({n, m, p, slow});
      continue;
    }
    agg.add_measurement(n, m, p, slow);
    mech.add_measurement(n, m, p, slow, c["slow_reloc"].as_number(),
                         c["slow_exec"].as_number(),
                         c["slow_comm"].as_number());
  }
  if (mech.num_measurements() < 3) {
    os << "error: fewer than 3 training points\n";
    return kExitUsage;
  }
  agg.fit();
  mech.fit();

  os << "per-mechanism fit over " << mech.num_measurements()
     << " training points (" << holdouts.size() << " holdout)\n";
  os << "  aggregate fit:  c_reloc " << fmt(agg.c_relocation())
     << ", c_exec " << fmt(agg.c_execution()) << ", c_comm "
     << fmt(agg.c_communication()) << "  (MRE "
     << fmt(agg.training_error()) << ")\n";
  os << "  mechanism fit (pooled): c_reloc " << fmt(mech.c_relocation())
     << ", c_exec " << fmt(mech.c_execution()) << ", c_comm "
     << fmt(mech.c_communication()) << "  (MRE "
     << fmt(mech.training_error()) << ")\n";
  for (int r = 0; r < 4; ++r) {
    auto range = static_cast<analytic::Range>(r);
    os << "    range " << analytic::to_string(range) << ": c_reloc "
       << fmt(mech.c_relocation(range)) << ", c_exec "
       << fmt(mech.c_execution(range)) << ", c_comm "
       << fmt(mech.c_communication(range)) << "\n";
  }
  for (const Holdout& h : holdouts) {
    double pa = agg.predict(h.n, h.m, h.p);
    double pm = mech.predict(h.n, h.m, h.p);
    os << "  holdout n=" << fmt(h.n) << " m=" << fmt(h.m) << " p="
       << fmt(h.p) << ": measured " << fmt(h.measured) << ", aggregate "
       << fmt(pa) << " (ratio " << fmt(pa / h.measured)
       << "), mechanism " << fmt(pm) << " (ratio " << fmt(pm / h.measured)
       << ")\n";
  }
  return kExitOk;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  auto usage = [&]() {
    err << "usage: bsmp-stat show <artifact.json>\n"
        << "       bsmp-stat diff [--tolerances <spec.json>] "
           "[--report <out.txt>]\n"
        << "                      [--require-comparable] <baseline.json> "
           "<candidate.json>\n"
        << "       bsmp-stat fit <metrics.json>\n"
        << "artifacts: bsmp-metrics-v1..v3 reports and google-benchmark\n"
        << "--benchmark_out files are auto-detected.\n"
        << "exit codes: 0 ok/cleanly-skipped, 1 regression, 2 usage or\n"
        << "file error, 3 incomparable hardware under "
           "--require-comparable.\n";
    return kExitUsage;
  };
  if (argc < 2) return usage();
  std::string cmd = argv[1];

  auto load = [&](const std::string& path, Artifact& a) {
    LoadResult r = load_artifact(path);
    if (!r.ok) {
      err << "error: " << r.error << "\n";
      return false;
    }
    a = std::move(r.artifact);
    return true;
  };

  if (cmd == "show") {
    if (argc != 3) return usage();
    Artifact a;
    if (!load(argv[2], a)) return kExitUsage;
    return run_show(a, out);
  }
  if (cmd == "fit") {
    if (argc != 3) return usage();
    Artifact a;
    if (!load(argv[2], a)) return kExitUsage;
    return run_fit(a, out);
  }
  if (cmd == "diff") {
    DiffOptions opt;
    std::vector<std::string> files;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--tolerances" && i + 1 < argc) {
        opt.tolerances_path = argv[++i];
      } else if (arg == "--report" && i + 1 < argc) {
        opt.report_path = argv[++i];
      } else if (arg == "--require-comparable") {
        opt.require_comparable = true;
      } else if (!arg.empty() && arg[0] == '-') {
        return usage();
      } else {
        files.push_back(arg);
      }
    }
    if (files.size() != 2) return usage();
    Artifact baseline, candidate;
    if (!load(files[0], baseline) || !load(files[1], candidate))
      return kExitUsage;
    return run_diff(baseline, candidate, opt, out);
  }
  return usage();
}

}  // namespace bsmp::stat
