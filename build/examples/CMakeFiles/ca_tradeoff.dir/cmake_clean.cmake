file(REMOVE_RECURSE
  "CMakeFiles/ca_tradeoff.dir/ca_tradeoff.cpp.o"
  "CMakeFiles/ca_tradeoff.dir/ca_tradeoff.cpp.o.d"
  "ca_tradeoff"
  "ca_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
