# Empty compiler generated dependencies file for test_advisor_io.
# This may be replaced when dependencies are built.
