// SWPT — the arena sweep-throughput bench. No table emitter (custom
// main, like PARX): the subject is the steady-state allocation path of
// a repeated-point sweep — the pattern every E-series emitter runs —
// not a paper table.
//
// One "point" is a full dense-store execution of a fixed d=1 volume
// with forks on (tables::hotpath::run_dense_kernel under a
// hardware-concurrency pool): each point materializes level slabs as
// its wavefront advances, retires them at every prune, and each fork
// checks out shard-local stores, charge logs and leaf scratch. With
// the arena on (BSMP_ARENA default) all of that traffic is served from
// pools after the first point; off, every slab is a cold fully-zeroed
// allocation and every fork constructs its scratch from nothing — the
// seed behavior.
//
// What it does, in order:
//
//   1. conformance gate: runs one point arena-on and arena-off, serial
//      and pool-bound, and aborts unless vertices, charged total, peak
//      staging, level-slab allocs and every final staging value are
//      identical across all four — the byte-identity contract the
//      arena is built on;
//   2. serializes the gate passes (wall clock + "mem" arena deltas) as
//      metrics_sweep_throughput.json;
//   3. runs google-benchmark kernels: sweep_point_arena_on and
//      sweep_point_arena_off, each reporting points_per_sec and
//      allocs_per_point (arena cold slab allocations per point;
//      scratch_cold_per_point counts cold scratch constructions). The
//      arena-on kernel additionally reports cold_allocs_first_point —
//      the same point's allocation bill on empty pools — so the
//      steady-state reuse win (first/warm >= 10x) is a recorded,
//      CI-gated fact, as is the throughput win (on/off >= 1.3x). A
//      Release run's --benchmark_out is committed as
//      bench/BENCH_sweep_throughput.json.
#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "engine/arena.hpp"
#include "tables/hotpath.hpp"

using namespace bsmp;

namespace {

// Tall-and-narrow on purpose: 64 nodes x 2048 levels keeps each slab
// small and the wavefront pruning busy, so slab materialization and
// fork scratch — not the leaf arithmetic (concrete MixKernel, SIMD
// rows) — dominate the per-point cost. m=8 diamonds, forks above
// 16-wide regions.
constexpr std::int64_t kWidth = 64;
constexpr std::int64_t kHorizon = 2048;
constexpr std::int64_t kM = 8;
constexpr std::int64_t kGrain = 16;

int pool_threads() {
  return std::max(2, engine::Pool::hardware_threads());
}

sep::Guest<1> sweep_guest() {
  return workload::make_mix_guest<1>({kWidth}, kHorizon, kM, 11);
}

struct PointOut {
  tables::hotpath::ExecStats stats;
  std::vector<std::pair<geom::Point<1>, sep::Word>> fin;
};

/// One sweep point: a fresh dense store, the full volume, the sorted
/// final values (the byte-identity witness).
PointOut run_point(const sep::Guest<1>& g) {
  sep::StagingStore<1> staging(&g.stencil);
  PointOut out;
  out.stats = tables::hotpath::run_dense_kernel<1>(g, staging,
                                                   workload::MixKernel<1>{});
  sep::store_for_each(staging, [&](const geom::Point<1>& q, sep::Word v) {
    out.fin.emplace_back(q, v);
  });
  std::sort(out.fin.begin(), out.fin.end(),
            [](const auto& a, const auto& b) {
              if (a.first.t != b.first.t) return a.first.t < b.first.t;
              return a.first.x < b.first.x;
            });
  return out;
}

void check_identical(const char* what, const PointOut& a, const PointOut& b) {
  if (a.stats.vertices != b.stats.vertices ||
      a.stats.total_cost != b.stats.total_cost ||
      a.stats.peak_staging_words != b.stats.peak_staging_words ||
      a.stats.staging_allocs != b.stats.staging_allocs || a.fin != b.fin) {
    std::cerr << "FATAL: " << what
              << " differs from the arena-off serial reference — arena "
                 "byte-identity broken\n";
    std::abort();
  }
}

/// The arena-matrix gate + metrics_sweep_throughput.json: the same
/// point, {arena off, arena on} x {serial, pool-bound}, all four
/// byte-identical.
void conformance_gate(int threads) {
  engine::MetricsReport report;
  report.name = "sweep_throughput";
  auto g = sweep_guest();

  const bool arena_saved = engine::arena_enabled();
  PointOut ref;
  auto pass = [&](bool arena, bool forked, const char* what) {
    engine::set_arena_enabled(arena);
    sep::set_default_parallel_grain(forked ? kGrain : 0);
    engine::MetricsPass p;
    p.threads = forked ? threads : 1;
    const engine::ArenaStats mem0 = engine::Arena::instance().stats();
    auto t0 = std::chrono::steady_clock::now();
    PointOut out;
    if (forked) {
      engine::Pool pool(threads);
      auto bind = pool.bind_caller();
      out = run_point(g);
      p.tasks = pool.task_stats();
    } else {
      out = run_point(g);
    }
    p.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    p.mem = engine::Arena::instance().stats() - mem0;
    if (ref.fin.empty())
      ref = std::move(out);
    else
      check_identical(what, out, ref);
    std::printf("# %s: %.3fs (%lld vertices, %llu cold slabs, "
                "%llu reused)\n",
                what, p.seconds,
                static_cast<long long>(ref.stats.vertices),
                static_cast<unsigned long long>(p.mem.cold_allocs),
                static_cast<unsigned long long>(p.mem.slab_reuses));
    report.passes.push_back(std::move(p));
  };

  pass(false, false, "arena_off_serial");  // the seed-faithful reference
  pass(false, true, "arena_off_forked");
  pass(true, false, "arena_on_serial");
  pass(true, true, "arena_on_forked");

  engine::set_arena_enabled(arena_saved);
  sep::set_default_parallel_grain(0);

  report.manifest = engine::trace::make_run_manifest(report.name);
  const auto path = engine::metrics_output_path(report.name);
  if (report.write_json_file(path))
    std::printf("# metrics: %s\n\n", path.c_str());
  else
    std::printf("# metrics: could not write %s\n\n", path.c_str());
}

// --- google-benchmark kernels -------------------------------------

void bm_sweep_point(benchmark::State& state, bool arena) {
  engine::set_arena_enabled(arena);
  sep::set_default_parallel_grain(kGrain);
  auto g = sweep_guest();
  engine::Pool pool(pool_threads());
  engine::Arena& a = engine::Arena::instance();

  // The allocation bill of one point on empty pools (fresh pool
  // workers, trimmed arena): what every point pays with the arena off,
  // and only the first pays with it on.
  a.trim();
  const engine::ArenaStats s_cold = a.stats();
  {
    auto bind = pool.bind_caller();
    auto out = run_point(g);
    benchmark::DoNotOptimize(out.stats.total_cost);
  }
  const engine::ArenaStats s_warm = a.stats();
  const double first_point_allocs =
      static_cast<double>(s_warm.cold_allocs - s_cold.cold_allocs);

  {
    auto bind = pool.bind_caller();
    for (auto _ : state) {
      auto out = run_point(g);
      benchmark::DoNotOptimize(out.stats.total_cost);
    }
  }
  const engine::ArenaStats s_end = a.stats();

  const double points = std::max<double>(1.0, state.iterations());
  state.counters["points_per_sec"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["allocs_per_point"] =
      static_cast<double>(s_end.cold_allocs - s_warm.cold_allocs) / points;
  state.counters["scratch_cold_per_point"] =
      static_cast<double>(s_end.scratch_cold - s_warm.scratch_cold) / points;
  state.counters["cold_allocs_first_point"] = first_point_allocs;

  sep::set_default_parallel_grain(0);
  engine::set_arena_enabled(true);
}

void BM_sweep_point_arena_on(benchmark::State& state) {
  bm_sweep_point(state, true);
}
void BM_sweep_point_arena_off(benchmark::State& state) {
  bm_sweep_point(state, false);
}

BENCHMARK(BM_sweep_point_arena_on)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_sweep_point_arena_off)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  conformance_gate(pool_threads());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
