#include <gtest/gtest.h>

#include <cmath>

#include "core/expect.hpp"
#include "hram/access_fn.hpp"
#include "hram/hram.hpp"

using bsmp::hram::AccessFn;
using bsmp::hram::HRam;
namespace core = bsmp::core;

TEST(AccessFn, UnitIsAlwaysOne) {
  AccessFn f = AccessFn::unit();
  EXPECT_DOUBLE_EQ(f(0), 1.0);
  EXPECT_DOUBLE_EQ(f(1u << 20), 1.0);
}

TEST(AccessFn, HierarchicalD1) {
  // d=1, m=4: f(x) = max(1, x/4).
  AccessFn f = AccessFn::hierarchical(1, 4.0);
  EXPECT_DOUBLE_EQ(f(0), 1.0);
  EXPECT_DOUBLE_EQ(f(4), 1.0);
  EXPECT_DOUBLE_EQ(f(8), 2.0);
  EXPECT_DOUBLE_EQ(f(400), 100.0);
}

TEST(AccessFn, HierarchicalD2) {
  // d=2, m=1: f(x) = max(1, sqrt(x)).
  AccessFn f = AccessFn::hierarchical(2, 1.0);
  EXPECT_DOUBLE_EQ(f(100), 10.0);
  EXPECT_DOUBLE_EQ(f(0), 1.0);
}

TEST(AccessFn, HierarchicalD3) {
  AccessFn f = AccessFn::hierarchical(3, 1.0);
  EXPECT_DOUBLE_EQ(f(1000), 10.0);
}

TEST(AccessFn, PowerLaw) {
  AccessFn f = AccessFn::power(2.0, 0.5);
  EXPECT_DOUBLE_EQ(f(100), 20.0);
  EXPECT_DOUBLE_EQ(f(0), 1.0);  // clamped from below
}

TEST(AccessFn, RejectsBadParameters) {
  EXPECT_THROW(AccessFn::hierarchical(0, 1.0), bsmp::precondition_error);
  EXPECT_THROW(AccessFn::hierarchical(4, 1.0), bsmp::precondition_error);
  EXPECT_THROW(AccessFn::hierarchical(1, 0.5), bsmp::precondition_error);
  EXPECT_THROW(AccessFn::power(-1.0, 0.5), bsmp::precondition_error);
}

TEST(AccessFn, BlockVsPipelined) {
  AccessFn f = AccessFn::hierarchical(1, 1.0);  // f(x) = max(1, x)
  // 10 words ending at address 100: per-word latency vs pipelined.
  EXPECT_DOUBLE_EQ(f.block(100, 10), 1000.0);
  EXPECT_DOUBLE_EQ(f.block_pipelined(100, 10), 109.0);
  EXPECT_DOUBLE_EQ(f.block_pipelined(100, 0), 0.0);
}

TEST(HRam, ReadWriteChargesAccessCost) {
  HRam ram(128, AccessFn::hierarchical(1, 1.0));
  ram.write(10, 7);
  EXPECT_EQ(ram.read(10), 7u);
  // write cost f(10)=10, read cost 10.
  EXPECT_DOUBLE_EQ(ram.ledger().cost(core::CostKind::kLocalAccess), 20.0);
  EXPECT_EQ(ram.peak_addr(), 10u);
}

TEST(HRam, OutOfRangeThrows) {
  HRam ram(16, AccessFn::unit());
  EXPECT_THROW(ram.read(16), bsmp::precondition_error);
  EXPECT_THROW(ram.write(99, 1), bsmp::precondition_error);
}

TEST(HRam, BlockCopyMovesDataAndCharges) {
  HRam ram(256, AccessFn::unit());
  for (std::size_t i = 0; i < 8; ++i) ram.write(i, i + 1);
  double before = ram.ledger().total();
  ram.block_copy(0, 100, 8);
  EXPECT_GT(ram.ledger().total(), before);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(ram.read(100 + i), i + 1);
}

TEST(HRam, PipelinedBlockCheaper) {
  HRam plain(1 << 12, AccessFn::hierarchical(1, 1.0), false);
  HRam piped(1 << 12, AccessFn::hierarchical(1, 1.0), true);
  plain.touch_block(1000, 100);
  piped.touch_block(1000, 100);
  EXPECT_GT(plain.ledger().total(), piped.ledger().total());
}

TEST(HRam, TouchReturnsCharge) {
  HRam ram(64, AccessFn::hierarchical(1, 2.0));
  EXPECT_DOUBLE_EQ(ram.touch(32), 16.0);
  EXPECT_DOUBLE_EQ(ram.ledger().total(), 16.0);
}
