# Empty compiler generated dependencies file for ca_tradeoff.
# This may be replaced when dependencies are built.
