// E9 — the paper's decomposition geometry (Figures 1-4) and the
// Section-4.2 rearrangement, regenerated as tables:
//   Fig. 1: the 5-piece ordered partition of the d=1 volume V;
//   Fig. 3a: P -> 6 octahedra + 8 tetrahedra (14 pieces);
//   Fig. 3b: W -> 1 octahedron + 4 tetrahedra (5 pieces);
//   Fig. 4: the full/truncated octahedra/tetrahedra covering the d=2
//           volume (our regular-tiling equivalent);
//   Fig. 2: the zig-zag bands, via the strip-to-processor assignment
//           statistics of the rearrangement pi2*pi1.
#include "bench_common.hpp"
#include "geom/figures.hpp"
#include "geom/tiling.hpp"
#include "machine/layout.hpp"
#include "machine/rearrange.hpp"

using namespace bsmp;

namespace {

void emit() {
  {
    geom::Stencil<1> st{{32}, 32, 1};
    auto parts = geom::fig1_partition(&st);
    core::Table t("E9/Fig1: ordered partition of V = [0,32) x [0,32), d=1",
                  {"piece", "|Ui|", "|Γin(Ui)|", "width"});
    std::int64_t total = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      total += parts[i].count();
      t.add_row({std::string("U") + std::to_string(i + 1),
                 (long long)parts[i].count(),
                 (long long)parts[i].preboundary().size(),
                 (long long)parts[i].width()});
    }
    t.print(std::cout);
    std::cout << "# pieces: " << parts.size() << ", total |V| = " << total
              << " (= 32*32 = 1024): U3 is the full diamond D(n).\n\n";
  }
  {
    geom::Stencil<2> st{{32, 32}, 32, 1};
    auto p = geom::make_octahedron(&st, 8, -8, 8, -8, 16);
    auto kids = p.split();
    core::Table t("E9/Fig3a: recursive decomposition of the octahedron P",
                  {"child", "class", "|Ui|", "|Ui|/|P|"});
    for (std::size_t i = 0; i < kids.size(); ++i)
      t.add_row({(long long)(i + 1),
                 geom::to_string(geom::classify_d2(kids[i])),
                 (long long)kids[i].count(),
                 (double)kids[i].count() / (double)p.count()});
    t.print(std::cout);
    std::cout << "# " << kids.size()
              << " children (paper: 14 = 6 P + 8 W; |P/2|/|P| ~ 1/8, "
                 "|W/2|/|P| ~ 1/32)\n\n";

    auto w = geom::make_tetrahedron(&st, 16, -8, 8, -16, 16);
    auto wkids = w.split();
    core::Table t2("E9/Fig3b: recursive decomposition of the tetrahedron W",
                   {"child", "class", "|Ui|", "|Ui|/|W|"});
    for (std::size_t i = 0; i < wkids.size(); ++i)
      t2.add_row({(long long)(i + 1),
                  geom::to_string(geom::classify_d2(wkids[i])),
                  (long long)wkids[i].count(),
                  (double)wkids[i].count() / (double)w.count()});
    t2.print(std::cout);
    std::cout << "# " << wkids.size()
              << " children (paper: 5 = 1 P + 4 W; ratios 1/2 and 1/8)\n\n";
  }
  {
    geom::Stencil<2> st{{16, 16}, 16, 1};
    geom::TileGrid<2> grid(&st, 16);
    auto waves = grid.wavefronts();
    core::Table t("E9/Fig4: cover of the d=2 volume V by width-sqrt(n) "
                  "octahedra/tetrahedra (regular-tiling equivalent)",
                  {"wavefront", "tiles", "points"});
    std::int64_t total = 0, tiles = 0;
    for (std::size_t k = 0; k < waves.size(); ++k) {
      std::int64_t pts = 0;
      for (const auto& tile : waves[k]) pts += tile.count();
      total += pts;
      tiles += (std::int64_t)waves[k].size();
      t.add_row({(long long)k, (long long)waves[k].size(), (long long)pts});
    }
    t.print(std::cout);
    std::cout << "# " << tiles << " full/truncated pieces covering |V| = "
              << total << " (= 16*16*16 = 4096)\n\n";
  }
  {
    std::int64_t q = 32, p = 4;
    auto pos = machine::rearrangement(q, p);
    core::Table t("E9/Fig2: rearranged strip layout (q=32 strips, p=4)",
                  {"original strip", "rearranged position", "owner proc"});
    for (std::int64_t g = 0; g < q; g += 4)
      t.add_row({(long long)g, (long long)pos[g],
                 (long long)(pos[g] / (q / p))});
    t.print(std::cout);
    std::cout << "# consecutive strips land consecutive or q/p apart — the\n"
                 "# zig-zag bands of Figure 2.\n\n";
  }
  {
    // Section 4.2's distance claim, measured on the address map: the
    // per-processor transfer distance for a width-span window under
    // the rearrangement vs the identity layout's global diameter.
    std::int64_t q = 64, p = 8;
    auto ident = machine::StripLayout::identity(q, p, 1);
    auto rear = machine::StripLayout::rearranged(q, p, 1);
    core::Table t("E9/Fig2b: transfer distances, identity vs rearranged "
                  "(q=64 strips, p=8)",
                  {"window span", "identity (global)",
                   "rearranged (per-proc)", "reduction"});
    for (std::int64_t span : {8, 16, 32, 64}) {
      std::int64_t di = ident.global_window_diameter(span);
      std::int64_t dr = rear.per_proc_window_diameter(span);
      t.add_row({(long long)span, (long long)di, (long long)dr,
                 (double)di / (double)std::max<std::int64_t>(1, dr)});
    }
    t.print(std::cout);
    std::cout << "# \"the distances at which transfers occur are reduced\n"
                 "# by a factor p\" — measured ~p for every window span.\n\n";
  }
}

void BM_split_octahedron(benchmark::State& state) {
  geom::Stencil<2> st{{64, 64}, 64, 1};
  auto p = geom::make_octahedron(&st, 16, -16, 16, -16, 32);
  for (auto _ : state) benchmark::DoNotOptimize(p.split());
}
BENCHMARK(BM_split_octahedron);

void BM_preboundary(benchmark::State& state) {
  geom::Stencil<2> st{{64, 64}, 64, 1};
  auto p = geom::make_octahedron(&st, 16, -16, 16, -16, 32);
  for (auto _ : state) benchmark::DoNotOptimize(p.preboundary());
}
BENCHMARK(BM_preboundary);

}  // namespace

BSMP_BENCH_MAIN(emit)
