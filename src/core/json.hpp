// Minimal JSON DOM for the observability toolchain.
//
// The repo's artifacts — bsmp-metrics-v1..v3 reports, Chrome trace
// JSON, google-benchmark --benchmark_out files, and the declared
// tolerance specs of the CI regression sentinel — are all JSON, and
// `bsmp-stat` (tools/bsmp_stat.cpp) must read them without pulling a
// third-party dependency into the build. This is a strict, small
// recursive-descent parser into an immutable DOM:
//
//   * full JSON: objects, arrays, strings (with \uXXXX escapes),
//     numbers, true/false/null; rejects trailing garbage;
//   * numbers are held as double (the artifacts' integers are counters
//     far below 2^53, where double is exact);
//   * object member order is preserved (objects are vectors of pairs,
//     with linear find — artifact objects are small);
//   * parse errors carry line/column, never throw past parse(): the
//     result is checked via Parsed::ok.
//
// This is a *reader*. Serialization stays where it is today
// (engine/metrics.cpp, engine/trace.cpp write their schemas directly).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bsmp::core::json {

class Value;

/// Object members in source order. Linear lookup: artifact objects
/// have tens of keys, not thousands.
using Members = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// One JSON value. Copyable; arrays/objects share nothing.
class Value {
 public:
  Value() = default;  // null
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Members m)
      : type_(Type::kObject), obj_(std::make_shared<Members>(std::move(m))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads with caller-supplied fallbacks — the artifact readers
  /// treat a missing or differently-typed field as "not recorded".
  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }

  /// Empty for non-arrays / non-objects: readers can chain lookups
  /// without checking every level.
  const Array& items() const {
    static const Array kEmpty;
    return is_array() && arr_ ? *arr_ : kEmpty;
  }
  const Members& members() const {
    static const Members kEmpty;
    return is_object() && obj_ ? *obj_ : kEmpty;
  }

  /// Member lookup (first match); a shared static null when absent, so
  /// `v["a"]["b"].as_number()` walks missing paths safely.
  const Value& operator[](std::string_view key) const;

  /// has("a") distinguishes a present null from an absent member.
  bool has(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Members> obj_;
};

/// parse() result: `ok` gates `value`; on failure `error` carries a
/// human-readable message with 1-based line:column.
struct Parsed {
  bool ok = false;
  Value value;
  std::string error;
};

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing tokens are an error).
Parsed parse(std::string_view text);

/// Read and parse a file; IO failure reports in Parsed::error.
Parsed parse_file(const std::string& path);

}  // namespace bsmp::core::json
