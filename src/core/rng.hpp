// Deterministic pseudo-random generator (SplitMix64) for workload
// inputs and randomized property tests. We avoid <random> engines so
// that sequences are reproducible across standard libraries.
#pragma once

#include <cstdint>

namespace bsmp::core {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) for bound >= 1 (slight modulo bias is fine
  /// for workload generation).
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace bsmp::core
