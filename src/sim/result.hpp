// Common result type of every simulator: charged virtual time, its
// breakdown, and the guest-visible output values for equivalence
// checking.
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "machine/spec.hpp"
#include "sep/executor.hpp"

namespace bsmp::sim {

template <int D, class V = sep::Word>
struct SimResult {
  core::CostLedger ledger;      ///< aggregate charges across processors
  core::Cost time = 0;          ///< host virtual time (makespan if p > 1)
  core::Cost guest_time = 0;    ///< Tn: steps of the simulated guest
  core::Cost preprocess = 0;    ///< one-time cost (memory rearrangement),
                                ///< excluded from `time` as the paper
                                ///< amortizes it over repeated cycles
  std::int64_t vertices = 0;    ///< dag vertices executed
  double utilization = 1.0;     ///< busy / (p * makespan)

  /// The guest-visible outputs: the last-written value of every memory
  /// cell (one point per node per cell).
  sep::BasicValueMap<D, V> final_values;

  double slowdown() const { return time / guest_time; }
};

}  // namespace bsmp::sim
