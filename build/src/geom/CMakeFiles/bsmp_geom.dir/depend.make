# Empty dependencies file for bsmp_geom.
# This may be replaced when dependencies are built.
