// engine::trace property tests.
//
// The central contract: the *set* of spans in the deterministic
// categories (everything except Cat::kTask) is a pure function of the
// executed work — identical names, labels, args, and counts at every
// pool size and fork grain. Timestamps and thread assignment are
// scheduling noise; identity is compared through sorted signatures and
// the order-independent digest, never through timing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"
#include "engine/trace.hpp"
#include "sep/executor.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
namespace trace = bsmp::engine::trace;

namespace {

machine::MachineSpec spec(int d, int64_t n, int64_t p, int64_t m) {
  return machine::MachineSpec{d, n, p, m};
}

/// One span's scheduling-independent identity.
using Sig = std::tuple<int, std::string, char, std::int64_t, std::int64_t,
                       std::string>;

/// Sorted signature multiset of the deterministic categories.
std::vector<Sig> deterministic_signature() {
  std::vector<Sig> sig;
  for (const trace::SpanRec& e : trace::snapshot()) {
    if (e.cat == trace::Cat::kTask) continue;
    sig.emplace_back(static_cast<int>(e.cat), e.name, e.ph, e.a0, e.a1,
                     e.detail);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

bool has_span(const std::vector<Sig>& sig, const char* name) {
  return std::any_of(sig.begin(), sig.end(), [&](const Sig& s) {
    return std::get<1>(s) == name;
  });
}

/// The traced workload: a two-point sweep over a shared PlanCache
/// (sweep / sweep-point / plan-build spans), one point running the
/// divide-and-conquer uniprocessor (dc-tile, sep-region, sep-leaf,
/// staging-prune), the other the multiprocessor driver (machine-tile,
/// regime2-*). Everything it computes is deterministic, so the
/// recorded deterministic span set must be too.
void run_workload(int threads) {
  engine::Pool pool(threads);
  engine::PlanCache plans;
  engine::SweepOptions opt;
  opt.plans = &plans;
  opt.label = "trace workload";
  engine::PlanKey key;
  key.d = 1;
  key.family = engine::PlanFamily::kGuest;
  key.width = 32;
  key.horizon = 32;
  key.m = 2;
  auto rows = engine::sweep_map<int>(
      pool, std::vector<int>{0, 1},
      [&](int point, engine::SweepContext& c) {
        auto g = c.plans->get_or_build<sep::Guest<1>>(key, [] {
          return workload::make_mix_guest<1>({32}, 32, 2, 9);
        });
        if (point == 0) {
          auto res = sim::simulate_dc_uniproc<1>(*g, spec(1, 32, 1, 2));
          return static_cast<int>(res.vertices & 0x7fffffff);
        }
        sim::MultiprocConfig cfg;
        cfg.s = 4;
        auto res = sim::simulate_multiproc<1>(*g, spec(1, 32, 4, 2), cfg);
        return static_cast<int>(res.vertices & 0x7fffffff);
      },
      opt);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], rows[1]) << "both points execute the same guest";
}

/// Run the workload under one (threads, grain) config with a clean
/// recorder and return the deterministic signature.
std::vector<Sig> traced_signature(int threads, std::int64_t grain) {
  const std::int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(grain);
  trace::clear();
  trace::set_enabled(true);
  run_workload(threads);
  trace::set_enabled(false);
  sep::set_default_parallel_grain(saved);
  return deterministic_signature();
}

}  // namespace

TEST(TraceUnits, DurationBuckets) {
  if (!trace::compiled()) GTEST_SKIP() << "BSMP_TRACE compiled out";
  EXPECT_EQ(trace::duration_bucket(0), 0);
  EXPECT_EQ(trace::duration_bucket(1), 1);
  EXPECT_EQ(trace::duration_bucket(2), 2);
  EXPECT_EQ(trace::duration_bucket(3), 2);
  EXPECT_EQ(trace::duration_bucket(4), 3);
  EXPECT_EQ(trace::duration_bucket(1023), 10);
  EXPECT_EQ(trace::duration_bucket(1024), 11);
  EXPECT_EQ(trace::duration_bucket(~std::uint64_t{0}), 63);
}

TEST(TraceUnits, DisabledRecorderRecordsNothing) {
  if (!trace::compiled()) GTEST_SKIP() << "BSMP_TRACE compiled out";
  trace::clear();
  trace::set_enabled(false);
  {
    trace::Span s(trace::Cat::kSim, "should-not-appear", 1, 2);
    trace::instant(trace::Cat::kSim, "nor-this");
  }
  EXPECT_EQ(trace::events_recorded(), 0u);
  EXPECT_TRUE(trace::snapshot().empty());
  EXPECT_TRUE(trace::hist_snapshot().empty());
}

TEST(TraceDeterminism, SpanSetIdenticalAcrossPoolAndGrain) {
  if (!trace::compiled()) GTEST_SKIP() << "BSMP_TRACE compiled out";
  const std::vector<Sig> ref = traced_signature(1, 0);
  ASSERT_FALSE(ref.empty());

  // Every execution layer shows up in the reference signature.
  for (const char* name :
       {"sweep", "sweep-point", "plan-build", "sep-region", "sep-leaf",
        "staging-prune", "dc-tile", "machine-tile", "regime1-relocate",
        "regime2-macro", "regime2-wave", "regime2-subtile"}) {
    EXPECT_TRUE(has_span(ref, name)) << "missing span: " << name;
  }

  for (int threads : {1, 2, 4}) {
    for (std::int64_t grain : {std::int64_t{0}, std::int64_t{4}}) {
      if (threads == 1 && grain == 0) continue;  // the reference itself
      EXPECT_EQ(traced_signature(threads, grain), ref)
          << "deterministic span set moved at threads=" << threads
          << " grain=" << grain;
    }
  }
  trace::clear();
}

TEST(TraceDeterminism, DigestStableAcrossIdenticalRuns) {
  if (!trace::compiled()) GTEST_SKIP() << "BSMP_TRACE compiled out";
  // Warm the arena first: cold slab acquisitions emit Cat::kTask
  // instants ("arena-cold") that only the first run of a process
  // records. The digest covers every event, so the two compared runs
  // must be identically warm.
  run_workload(1);
  trace::clear();
  trace::set_enabled(true);
  run_workload(1);
  trace::set_enabled(false);
  const std::uint64_t d1 = trace::digest();
  const std::uint64_t events = trace::events_recorded();
  EXPECT_GT(events, 0u);

  trace::clear();
  trace::set_enabled(true);
  run_workload(1);
  trace::set_enabled(false);
  EXPECT_EQ(trace::digest(), d1);
  EXPECT_EQ(trace::events_recorded(), events);
  trace::clear();
}

TEST(TraceDeterminism, HistogramsCountEveryCompleteSpan) {
  if (!trace::compiled()) GTEST_SKIP() << "BSMP_TRACE compiled out";
  trace::clear();
  trace::set_enabled(true);
  run_workload(2);
  trace::set_enabled(false);
  ASSERT_EQ(trace::dropped(), 0u) << "buffer too small for the workload";

  // With no drops, each category's histogram total equals its complete
  // ('X') event count.
  std::uint64_t span_events[trace::kNumCats] = {};
  for (const trace::SpanRec& e : trace::snapshot())
    if (e.ph == 'X') ++span_events[static_cast<int>(e.cat)];
  const trace::HistSnapshot h = trace::hist_snapshot();
  for (int c = 0; c < trace::kNumCats; ++c) {
    std::uint64_t total = 0;
    for (std::uint64_t n : h.span_ns[static_cast<std::size_t>(c)]) total += n;
    EXPECT_EQ(total, span_events[c])
        << "category " << trace::cat_name(static_cast<trace::Cat>(c));
  }
  trace::clear();
}

TEST(TraceFlush, ChromeJsonIsBalancedAndCarriesManifest) {
  if (!trace::compiled()) GTEST_SKIP() << "BSMP_TRACE compiled out";
  const std::int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(4);  // kTask spans need real forks
  trace::clear();
  trace::set_enabled(true);
  run_workload(4);
  trace::set_enabled(false);
  sep::set_default_parallel_grain(saved);

  trace::RunManifest manifest = trace::make_run_manifest("trace_test");
  const std::string path = "trace_test_flush.json";
  manifest.trace_file = path;
  ASSERT_TRUE(trace::write_chrome_json(path, manifest));
  trace::clear();

  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string body = ss.str();

  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = body.find(needle); pos != std::string::npos;
         pos = body.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"otherData\""), std::string::npos);
  EXPECT_NE(body.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(body.find("thread_name"), std::string::npos);
  const std::size_t begins = count("\"ph\": \"B\"");
  const std::size_t ends = count("\"ph\": \"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends) << "unbalanced B/E events";
  // At least the four span categories the hot-path bench gate expects.
  for (const char* cat : {"task", "sep-region", "staging", "sweep-point"})
    EXPECT_NE(body.find(std::string("\"cat\": \"") + cat + "\""),
              std::string::npos)
        << "category missing from flushed trace: " << cat;
  std::remove(path.c_str());
}
