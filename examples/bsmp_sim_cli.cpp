// bsmp_sim: command-line front end to every simulator in the library.
//
// Usage:
//   bsmp_sim --scheme <reference|naive|brent|pipelined|dc|multiproc>
//            [--d 1|2|3] [--n <volume>] [--p <procs>] [--m <cells>]
//            [--T <steps>] [--s <strip>] [--tile <width>] [--leaf <width>]
//            [--workload mix|parity|rule110|sort|max|diffusion]
//            [--guest-m <m'>] [--seed <u64>] [--csv] [--verify]
//            [--compare]   # run every scheme and tabulate agreement
//
// Examples:
//   bsmp_sim --scheme dc --n 256 --m 4                # Theorem 3
//   bsmp_sim --scheme multiproc --n 256 --p 8 --m 2   # Theorem 4
//   bsmp_sim --scheme naive --d 2 --n 1024            # Proposition 1
//   bsmp_sim --scheme multiproc --n 128 --p 4 --verify
#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/args.hpp"
#include "core/table.hpp"
#include "sim/compare.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

int usage() {
  std::cerr <<
      "usage: bsmp_sim --scheme reference|naive|brent|pipelined|dc|multiproc\n"
      "               [--d 1|2|3] [--n volume] [--p procs] [--m cells]\n"
      "               [--T steps] [--s strip] [--tile width] [--leaf width]\n"
      "               [--workload mix|parity|rule110|sort|max|diffusion]\n"
      "               [--guest-m m'] [--seed u64] [--csv] [--verify]\n"
      "               [--compare]  run every scheme, check agreement\n";
  return 2;
}

template <int D>
sep::Guest<D> build_guest(const std::string& workload,
                          std::array<int64_t, D> extent, int64_t T,
                          int64_t m, std::uint64_t seed) {
  sep::Guest<D> g;
  g.stencil.extent = extent;
  g.stencil.horizon = T;
  g.stencil.m = m;
  g.input = workload::random_input<D>(seed);
  if (workload == "mix") {
    g.rule = workload::mix_rule<D>();
  } else if (workload == "parity") {
    g.rule = workload::parity_rule<D>();
  } else if (workload == "max") {
    g.rule = workload::max_rule<D>();
  } else if (workload == "diffusion") {
    g.rule = workload::diffusion_rule<D>();
  } else if (workload == "rule110") {
    if constexpr (D == 1) {
      g.rule = workload::rule110();
    } else {
      throw bsmp::precondition_error("rule110 requires --d 1");
    }
  } else if (workload == "sort") {
    if constexpr (D == 1) {
      g.rule = workload::sort_rule(extent[0]);
      if (m != 1)
        throw bsmp::precondition_error("sort requires --guest-m 1");
    } else {
      throw bsmp::precondition_error("sort requires --d 1");
    }
  } else {
    throw bsmp::precondition_error("unknown workload: " + workload);
  }
  return g;
}

template <int D>
int run(const core::Args& args) {
  const std::string scheme = args.get_string("scheme", "dc");
  const std::string workload = args.get_string("workload", "mix");
  const int64_t n = args.get_int("n", 64);
  const int64_t p = args.get_int("p", 1);
  const int64_t m = args.get_int("m", 1);
  const int64_t guest_m = args.get_int("guest-m", m);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool csv = args.get_flag("csv");
  const bool verify = args.get_flag("verify");

  machine::MachineSpec host{D, n, p, m};
  host.validate();
  std::array<int64_t, D> extent;
  extent.fill(host.node_side());
  if constexpr (D == 3) {
    int64_t side = 1;
    while ((side + 1) * (side + 1) * (side + 1) <= n) ++side;
    BSMP_REQUIRE_MSG(side * side * side == n, "--d 3 requires a cube n");
    extent.fill(side);
  }
  const int64_t T = args.get_int("T", extent[0]);

  sep::Guest<D> guest = build_guest<D>(workload, extent, T, guest_m, seed);

  if (args.get_flag("compare")) {
    auto cmp = sim::compare_schemes<D>(guest, host, args.get_int("s", 0));
    core::Table t("scheme comparison: d=" + std::to_string(D) + " n=" +
                      std::to_string(n) + " p=" + std::to_string(p) +
                      " m'=" + std::to_string(guest_m),
                  {"scheme", "Tp/Tn", "utilization", "output"});
    for (const auto& run : cmp.runs)
      t.add_row({run.name, run.slowdown, run.utilization,
                 std::string(run.matches_guest ? "matches guest" : "WRONG")});
    t.print(std::cout);
    std::cout << "Theorem-1 bound (n/p)A = " << cmp.bound
              << ", Prop.-1 naive bound = " << cmp.naive_bound << "\n";
    return cmp.all_match ? 0 : 1;
  }

  sim::SimResult<D> res;
  if (scheme == "reference") {
    res = sim::reference_run<D>(guest);
  } else if (scheme == "naive" || scheme == "brent" ||
             scheme == "pipelined") {
    sim::NaiveConfig cfg;
    cfg.instantaneous = (scheme == "brent");
    cfg.pipelined = (scheme == "pipelined");
    res = sim::simulate_naive<D>(guest, host, cfg);
  } else if (scheme == "dc") {
    sim::DcConfig cfg;
    cfg.tile_width = args.get_int("tile", 0);
    cfg.leaf_width = args.get_int("leaf", 0);
    res = sim::simulate_dc_uniproc<D>(guest, host, cfg);
  } else if (scheme == "multiproc") {
    sim::MultiprocConfig cfg;
    cfg.s = args.get_int("s", 0);
    cfg.leaf_width = args.get_int("leaf", 0);
    res = sim::simulate_multiproc<D>(guest, host, cfg);
  } else {
    return usage();
  }

  if (verify && scheme != "reference") {
    auto ref = sim::reference_run<D>(guest);
    if (!sim::same_values<D>(res.final_values, ref.final_values)) {
      std::cerr << "VERIFY FAILED: outputs differ from the guest run\n";
      return 1;
    }
    std::cerr << "verify: OK (" << res.final_values.size()
              << " final values match the guest)\n";
  }

  double bound = analytic::slowdown_bound(D <= 2 ? D : 2, (double)n,
                                          (double)guest_m, (double)p);
  if (csv) {
    std::cout << "scheme,d,n,p,m,guest_m,T,time,guest_time,slowdown,bound,"
                 "utilization,preprocess,vertices\n"
              << scheme << ',' << D << ',' << n << ',' << p << ',' << m
              << ',' << guest_m << ',' << T << ',' << res.time << ','
              << res.guest_time << ',' << res.slowdown() << ',' << bound
              << ',' << res.utilization << ',' << res.preprocess << ','
              << res.vertices << '\n';
  } else {
    core::Table t("bsmp_sim: " + scheme + " (d=" + std::to_string(D) + ")",
                  {"n", "p", "m", "m'", "T", "Tp/Tn", "bound (n/p)A",
                   "util", "preprocess"});
    t.add_row({(long long)n, (long long)p, (long long)m, (long long)guest_m,
               (long long)T, res.slowdown(), bound, res.utilization,
               res.preprocess});
    t.print(std::cout);
    std::cout << "ledger: " << res.ledger.report() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::Args args(argc, argv, {"csv", "verify", "help", "compare"});
  if (args.get_flag("help") || argc <= 1) return usage();
  if (!args.unknown().empty()) {
    std::cerr << "unknown option: --" << args.unknown().front() << "\n";
    return usage();
  }
  try {
    switch (args.get_int("d", 1)) {
      case 1: return run<1>(args);
      case 2: return run<2>(args);
      case 3: return run<3>(args);
      default: return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
