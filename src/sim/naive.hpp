// Naive simulation (Proposition 1): the host mimics individual guest
// steps, touching every simulated node's private memory region once
// per step. With p = 1 this costs O(T * n * f(nm)), i.e. slowdown
// O(n^(1+1/d)); with p > 1 each processor hosts n/p guest nodes and
// exchanges boundary words with its neighbors.
//
// Two switches model the comparison machines of the paper:
//  * instantaneous = true: unit access cost and unit link cost — the
//    classical model in which Brent's Principle is tight (slowdown
//    exactly Θ(n/p));
//  * pipelined = true: the Section-6 extension where each node's
//    memory is pipelined — a step's worth of accesses costs one
//    latency plus one word per unit time, eliminating the locality
//    slowdown entirely.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/expect.hpp"
#include "engine/metrics.hpp"
#include "machine/clocks.hpp"
#include "machine/spec.hpp"
#include "sep/guest.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "sim/result.hpp"

namespace bsmp::sim {

struct NaiveConfig {
  bool instantaneous = false;
  bool pipelined = false;
  /// Opt-in hot-path observability (see DcConfig::metrics). The naive
  /// simulator stages values in an (m+1)-buffer ring, so its "staging"
  /// footprint is the fixed (m+1)*n ring+scratch words.
  engine::Metrics* metrics = nullptr;
  std::string hot_label;
};

namespace detail {

/// Which host processor owns guest node x, for a block (per-dimension
/// contiguous) assignment; also its local index inside the block.
template <int D>
struct NodePlacement {
  std::int64_t proc;
  std::int64_t local_index;
};

template <int D>
NodePlacement<D> place_node(const geom::Stencil<D>& st, std::int64_t proc_side,
                            const std::array<int64_t, D>& x) {
  std::int64_t proc = 0, local = 0;
  for (int i = 0; i < D; ++i) {
    std::int64_t block = st.extent[i] / proc_side;
    std::int64_t pi = x[i] / block;
    std::int64_t li = x[i] % block;
    proc = proc * proc_side + pi;
    local = local * block + li;
  }
  return {proc, local};
}

}  // namespace detail

template <int D, class V>
SimResult<D, V> simulate_naive(const sep::BasicGuest<D, V>& guest,
                               const machine::MachineSpec& host,
                               NaiveConfig cfg = {}) {
  guest.validate();
  host.validate();
  const geom::Stencil<D>& st = guest.stencil;
  BSMP_REQUIRE_MSG(host.d == D, "host dimension mismatch");
  BSMP_REQUIRE_MSG(host.n == st.num_nodes(),
                   "host volume must equal guest node count");
  BSMP_REQUIRE_MSG(host.m >= st.m,
                   "the technology density m must cover the guest's "
                   "per-node memory m' (Section 6: m' < m gives more "
                   "locality)");
  const std::int64_t proc_side = host.proc_side();
  for (int i = 0; i < D; ++i)
    BSMP_REQUIRE_MSG(st.extent[i] % proc_side == 0,
                     "processor grid must divide the node grid");

  hram::AccessFn f =
      cfg.instantaneous ? hram::AccessFn::unit() : host.access_fn();
  const core::Cost link = cfg.instantaneous ? 1.0 : host.link_length();
  const std::int64_t span = host.span();  // guest nodes per host processor
  const std::int64_t n = st.num_nodes();
  const std::int64_t T = st.horizon;
  const std::int64_t m = st.m;

  machine::ProcClocks clocks(host.p);
  SimResult<D, V> res;

  // Value evolution: identical to the reference run (the naive schedule
  // *is* the guest's schedule); the loop below charges the host costs.
  std::vector<std::vector<V>> ring(
      static_cast<std::size_t>(m),
      std::vector<V>(static_cast<std::size_t>(n), V{}));
  std::vector<V> scratch(static_cast<std::size_t>(n), V{});

  const auto hot_t0 = std::chrono::steady_clock::now();
  for (std::int64_t t = 0; t < T; ++t) {
    if (cfg.pipelined) {
      // One pipelined sweep per processor: latency to the far end of
      // its memory plus one unit per word touched (cell + neighbors).
      core::Cost sweep =
          f(static_cast<std::uint64_t>(span * m)) +
          static_cast<core::Cost>(span) * static_cast<core::Cost>(2 * D + 2);
      for (std::int64_t pr = 0; pr < host.p; ++pr) clocks.advance(pr, sweep);
      res.ledger.charge(core::CostKind::kLocalAccess,
                        sweep * static_cast<core::Cost>(host.p),
                        static_cast<std::uint64_t>(host.p));
    }
    for (std::int64_t idx = 0; idx < n; ++idx) {
      auto x = detail::node_coords<D>(st, idx);
      auto pl = detail::place_node<D>(st, proc_side, x);
      geom::Point<D> p;
      p.x = x;
      p.t = t;

      core::Cost local_cost = 0;
      core::Cost comm_cost = 0;
      V value;
      if (t == 0) {
        value = guest.input(x, 0);
        if (!cfg.pipelined)
          local_cost += f(static_cast<std::uint64_t>(pl.local_index * m));
      } else {
        V self_prev =
            (t >= m) ? ring[t % m][idx] : guest.input(x, t % m);
        // Cell read + write in the node's private region.
        std::uint64_t cell_addr =
            static_cast<std::uint64_t>(pl.local_index * m + (t % m));
        if (!cfg.pipelined) local_cost += 2.0 * f(cell_addr);

        sep::BasicNeighbors<D, V> nbrs{};
        const auto& prev = ring[(t - 1) % m];
        for (int i = 0; i < D; ++i) {
          for (int sgn = 0; sgn < 2; ++sgn) {
            auto q = x;
            q[i] += (sgn == 0 ? -1 : 1);
            if (!st.in_space(q)) continue;
            nbrs[2 * i + sgn] = prev[detail::node_index<D>(st, q)];
            auto qpl = detail::place_node<D>(st, proc_side, q);
            if (qpl.proc == pl.proc) {
              if (!cfg.pipelined)
                local_cost +=
                    f(static_cast<std::uint64_t>(qpl.local_index * m));
            } else {
              comm_cost += link;  // one word over one near-neighbor link
            }
          }
        }
        value = guest.rule(p, self_prev, nbrs);
      }
      scratch[idx] = value;
      ++res.vertices;

      res.ledger.charge(core::CostKind::kCompute, 1.0);
      clocks.advance(pl.proc, local_cost + comm_cost + 1.0);
      if (local_cost > 0)
        res.ledger.charge(core::CostKind::kLocalAccess, local_cost);
      if (comm_cost > 0) res.ledger.charge(core::CostKind::kComm, comm_cost);
    }
    ring[t % m].swap(scratch);
    clocks.barrier();
  }
  if (cfg.metrics != nullptr) {
    engine::HotPathMetric h;
    h.label = cfg.hot_label.empty() ? "naive" : cfg.hot_label;
    h.vertices = res.vertices;
    h.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - hot_t0)
                    .count();
    h.peak_staging_words = static_cast<std::size_t>((m + 1) * n);
    h.staging_allocs = static_cast<std::size_t>(m + 1);
    cfg.metrics->record_hot(std::move(h));
  }

  res.time = clocks.makespan();
  res.guest_time = static_cast<core::Cost>(T);
  res.utilization = clocks.utilization();
  for (const auto& q : final_points<D>(st)) {
    res.final_values.emplace(q,
                             ring[q.t % m][detail::node_index<D>(st, q.x)]);
  }
  return res;
}

}  // namespace bsmp::sim
