# Empty dependencies file for bsmp_sep.
# This may be replaced when dependencies are built.
