file(REMOVE_RECURSE
  "CMakeFiles/test_advisor_io.dir/test_advisor_io.cpp.o"
  "CMakeFiles/test_advisor_io.dir/test_advisor_io.cpp.o.d"
  "test_advisor_io"
  "test_advisor_io.pdb"
  "test_advisor_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advisor_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
