#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (CI `docs` job).

Checks every inline markdown link in the files given on the command
line:

  * relative links must point at an existing file or directory
    (resolved against the linking file's directory);
  * fragment links -- `#anchor` alone or `file.md#anchor` -- must name
    a heading in the target file, using GitHub's heading-to-anchor
    slug rules (lowercase, punctuation stripped, spaces to hyphens,
    `-N` suffixes for duplicates);
  * absolute http(s) URLs are *not* fetched (CI must not flake on the
    network); they are only validated for non-empty host.

Usage: python3 tools/check_links.py README.md doc/*.md ...
Exit status 1 if any link is broken, listing every failure.
"""

import re
import sys
from pathlib import Path

# Inline links [text](target); images ![alt](target) match too via the
# same pattern. Reference-style links are not used in this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (markup stripped)."""
    # Inline code/emphasis/links contribute their text only.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    # Keep word characters, spaces and hyphens; drop the rest.
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" +", "-", text)


def heading_anchors(path: Path) -> set:
    """All anchor slugs defined by a markdown file's headings."""
    anchors = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = anchors.get(slug, 0)
        anchors[slug] = n + 1
        if n:  # duplicates get -1, -2, ... suffixes
            anchors[f"{slug}-{n}"] = 1
    return set(anchors)


def iter_links(path: Path):
    """Yield (lineno, target) for every inline link outside code."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Strip inline code spans so `[i](j)` array math is not a link.
        stripped = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(stripped):
            yield lineno, m.group(1)


def check_file(path: Path, repo_root: Path, errors: list) -> None:
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(repo_root)}:{lineno}"
        if target.startswith(("http://", "https://")):
            if not re.match(r"https?://[^/]+", target):
                errors.append(f"{where}: malformed URL {target!r}")
            continue
        if target.startswith("mailto:"):
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append(f"{where}: missing file {target!r}")
            continue
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                errors.append(
                    f"{where}: fragment on non-markdown target {target!r}"
                )
            elif fragment not in heading_anchors(dest):
                errors.append(
                    f"{where}: no heading for anchor {target!r} in "
                    f"{dest.relative_to(repo_root)}"
                )


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = Path.cwd().resolve()
    errors = []
    checked = 0
    for arg in argv[1:]:
        path = Path(arg).resolve()
        if not path.exists():
            errors.append(f"{arg}: file not found")
            continue
        checked += 1
        check_file(path, repo_root, errors)
    for e in errors:
        print(f"BROKEN  {e}")
    print(f"checked {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
