#include <gtest/gtest.h>

#include "dag/explicit_dag.hpp"
#include "geom/figures.hpp"

using namespace bsmp;
using dag::ExplicitDag;
using dag::PointSet;
using geom::Point;
using geom::Stencil;

namespace {
Point<1> pt(int64_t x, int64_t t) { return Point<1>{{x}, t}; }
}  // namespace

TEST(GTDag, Definition3PredecessorsM1) {
  // For m = 1, preds of (v, t) are (v-1, t-1), (v+1, t-1), (v, t-1):
  // exactly the arc set of Definition 3.
  ExplicitDag<1> g(Stencil<1>{{5}, 4, 1});
  auto preds = g.preds(pt(2, 3));
  PointSet<1> s(preds.begin(), preds.end());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(pt(1, 2)));
  EXPECT_TRUE(s.contains(pt(3, 2)));
  EXPECT_TRUE(s.contains(pt(2, 2)));
}

TEST(GTDag, InputVerticesHaveNoPredecessors) {
  ExplicitDag<1> g(Stencil<1>{{5}, 4, 1});
  EXPECT_TRUE(g.preds(pt(2, 0)).empty());
}

TEST(GTDag, BoundaryNodesHaveFewerPredecessors) {
  ExplicitDag<1> g(Stencil<1>{{5}, 4, 1});
  EXPECT_EQ(g.preds(pt(0, 2)).size(), 2u);  // no (-1, 1)
  EXPECT_EQ(g.preds(pt(4, 2)).size(), 2u);
}

TEST(GTDag, MemoryDepthSelfArc) {
  // For m = 3, the self arc reaches back to t-3 and is absent when
  // t < 3 (that operand is an initial memory cell, i.e. an input).
  ExplicitDag<1> g(Stencil<1>{{5}, 8, 3});
  auto preds = g.preds(pt(2, 5));
  PointSet<1> s(preds.begin(), preds.end());
  EXPECT_TRUE(s.contains(pt(2, 2)));
  EXPECT_FALSE(s.contains(pt(2, 4)));
  auto early = g.preds(pt(2, 2));
  PointSet<1> es(early.begin(), early.end());
  EXPECT_EQ(es.size(), 2u);  // neighbors only
}

TEST(GTDag, SuccsInvertPreds) {
  ExplicitDag<1> g(Stencil<1>{{6}, 6, 2});
  g.for_each_vertex([&](const Point<1>& p) {
    for (const auto& q : g.preds(p)) {
      auto succs = g.succs(q);
      EXPECT_NE(std::find(succs.begin(), succs.end(), p), succs.end());
    }
  });
}

TEST(GTDag, VertexCount) {
  ExplicitDag<2> g(Stencil<2>{{3, 4}, 5, 1});
  EXPECT_EQ(g.all_vertices().size(), 3u * 4u * 5u);
}

TEST(TopologicalPartition, AcceptsTimeSlices) {
  // Slicing V by time is always a topological partition.
  Stencil<1> st{{4}, 4, 1};
  ExplicitDag<1> g(st);
  PointSet<1> v;
  std::vector<PointSet<1>> slices(4);
  g.for_each_vertex([&](const Point<1>& p) {
    v.insert(p);
    slices[p.t].insert(p);
  });
  EXPECT_TRUE(g.is_topological_partition(v, slices));
}

TEST(TopologicalPartition, RejectsReversedOrder) {
  Stencil<1> st{{4}, 4, 1};
  ExplicitDag<1> g(st);
  PointSet<1> v;
  std::vector<PointSet<1>> slices(4);
  g.for_each_vertex([&](const Point<1>& p) {
    v.insert(p);
    slices[3 - p.t].insert(p);
  });
  EXPECT_FALSE(g.is_topological_partition(v, slices));
}

TEST(TopologicalPartition, RejectsCubePartitionOfCubicLattice) {
  // Section 3's warning: "if the dag under consideration is a cubic
  // lattice, a partition of such dag into cubes is not a topological
  // partition." Splitting V by space (columns) is the d=1 analogue:
  // column blocks mutually depend on each other at every level.
  Stencil<1> st{{4}, 4, 1};
  ExplicitDag<1> g(st);
  PointSet<1> v;
  std::vector<PointSet<1>> cols(2);
  g.for_each_vertex([&](const Point<1>& p) {
    v.insert(p);
    cols[p.x[0] / 2].insert(p);
  });
  EXPECT_FALSE(g.is_topological_partition(v, cols));
}

TEST(TopologicalPartition, RejectsNonCover) {
  Stencil<1> st{{3}, 2, 1};
  ExplicitDag<1> g(st);
  PointSet<1> v;
  g.for_each_vertex([&](const Point<1>& p) { v.insert(p); });
  std::vector<PointSet<1>> one = {{pt(0, 0)}};
  EXPECT_FALSE(g.is_topological_partition(v, one));
}

TEST(Convexity, DiamondIsConvexSquareMinusCornerIsNot) {
  Stencil<1> st{{8}, 8, 1};
  ExplicitDag<1> g(st);
  auto d = geom::make_diamond(&st, 2, -4, 8);
  PointSet<1> ds;
  for (const auto& p : d.points()) ds.insert(p);
  EXPECT_TRUE(g.is_convex(ds));

  // Remove an interior vertex: paths through it leave and re-enter.
  PointSet<1> holed = ds;
  // Find an interior point (one whose preds and succs are all in ds).
  for (const auto& p : ds) {
    bool interior = !g.preds(p).empty();
    for (const auto& q : g.preds(p)) interior &= ds.contains(q);
    for (const auto& q : g.succs(p)) interior &= ds.contains(q);
    if (interior) {
      holed.erase(p);
      break;
    }
  }
  ASSERT_LT(holed.size(), ds.size());
  EXPECT_FALSE(g.is_convex(holed));
}

TEST(Convexity, EmptyAndSingletonAreConvex) {
  Stencil<1> st{{4}, 4, 1};
  ExplicitDag<1> g(st);
  EXPECT_TRUE(g.is_convex({}));
  EXPECT_TRUE(g.is_convex({pt(1, 1)}));
}

TEST(Preboundary, MatchesDefinition) {
  // Γin(U) = union of Pred(v) minus U.
  Stencil<1> st{{6}, 6, 1};
  ExplicitDag<1> g(st);
  PointSet<1> u = {pt(2, 2), pt(3, 2), pt(2, 3)};
  auto gin = g.preboundary(u);
  for (const auto& q : gin) EXPECT_FALSE(u.contains(q));
  // (2,3)'s preds {1,2,3}x{2}: (1,2) must be in the preboundary.
  EXPECT_TRUE(gin.contains(pt(1, 2)));
  EXPECT_TRUE(gin.contains(pt(4, 1)));  // pred of (3,2)
  EXPECT_FALSE(gin.contains(pt(2, 2)));
}
