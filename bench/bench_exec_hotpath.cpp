// HOT — the executor hot-path microbench. Prints the "hot" artifact
// (dense flat-staging executor, its SIMD-kernel variant, and the
// retained hash-map baseline, with every deterministic field asserted
// equal), serializes the measured throughputs as metrics_hot.json,
// then runs google-benchmark kernels for the same full-volume
// executions — scalar and SIMD side by side, plus the SIMD build with
// the vector path forced off (the `simd_off` kernels) so one report
// separates "concrete kernel instead of std::function" from "vector
// row kernel" gains. A Release run's --benchmark_out is committed as
// bench/BENCH_exec_hotpath.json — the perf trajectory baseline; the
// acceptance bars are dense >= 3x hashmap and simd >= 2x dense
// vertices/sec on exec_d1_w512 (doc/PERF.md).
#include "bench_common.hpp"
#include "sep/simd.hpp"
#include "tables/hotpath.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

template <int D>
sep::Guest<D> hot_guest(std::array<std::int64_t, D> extent,
                        std::int64_t horizon, std::int64_t m) {
  return workload::make_mix_guest<D>(extent, horizon, m, 7);
}

template <int D>
void bm_dense(benchmark::State& state, std::array<std::int64_t, D> extent,
              std::int64_t horizon, std::int64_t m) {
  auto g = hot_guest<D>(extent, horizon, m);
  std::int64_t vertices = 0;
  for (auto _ : state) {
    sep::StagingStore<D> staging(&g.stencil);
    auto s = tables::hotpath::run_dense<D>(g, staging);
    vertices = s.vertices;
    benchmark::DoNotOptimize(s.total_cost);
  }
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
}

template <int D>
void bm_hashmap(benchmark::State& state, std::array<std::int64_t, D> extent,
                std::int64_t horizon, std::int64_t m) {
  auto g = hot_guest<D>(extent, horizon, m);
  std::int64_t vertices = 0;
  for (auto _ : state) {
    sep::ValueMap<D> staging;
    auto s = tables::hotpath::run_hashmap<D>(g, staging);
    vertices = s.vertices;
    benchmark::DoNotOptimize(s.total_cost);
  }
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
}

/// The kernel-dispatch run: run_dense_kernel with workload::MixKernel,
/// the vector leaf path forced on or off around the timed loop (saved
/// and restored so bench order cannot leak state).
template <int D>
void bm_simd(benchmark::State& state, std::array<std::int64_t, D> extent,
             std::int64_t horizon, std::int64_t m, bool vector_path) {
  auto g = hot_guest<D>(extent, horizon, m);
  const bool saved = sep::simd::enabled();
  sep::simd::set_enabled(vector_path);
  state.SetLabel(sep::simd::active_isa());
  std::int64_t vertices = 0;
  for (auto _ : state) {
    sep::StagingStore<D> staging(&g.stencil);
    auto s = tables::hotpath::run_dense_kernel<D>(g, staging,
                                                  workload::MixKernel<D>{});
    vertices = s.vertices;
    benchmark::DoNotOptimize(s.total_cost);
  }
  sep::simd::set_enabled(saved);
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
}

// The d1_w512 kernels run the 512x512 volume at message delay m = 128
// (leaf_width = m keeps Theorem-3 executable diamonds): wide leaf rows
// are where the row kernel earns its keep, and the simd >= 2x dense
// bar is set on this config. The conformance "hot" emitter keeps its
// own m = 8 config — same volume, byte-identity assertions only.
void BM_exec_d1_w512_dense(benchmark::State& state) {
  bm_dense<1>(state, {512}, 512, 128);
}
void BM_exec_d1_w512_simd(benchmark::State& state) {
  bm_simd<1>(state, {512}, 512, 128, true);
}
void BM_exec_d1_w512_simd_off(benchmark::State& state) {
  bm_simd<1>(state, {512}, 512, 128, false);
}
void BM_exec_d1_w512_hashmap(benchmark::State& state) {
  bm_hashmap<1>(state, {512}, 512, 128);
}
void BM_exec_d2_w48_dense(benchmark::State& state) {
  bm_dense<2>(state, {48, 48}, 48, 4);
}
void BM_exec_d2_w48_simd(benchmark::State& state) {
  bm_simd<2>(state, {48, 48}, 48, 4, true);
}
void BM_exec_d2_w48_simd_off(benchmark::State& state) {
  bm_simd<2>(state, {48, 48}, 48, 4, false);
}
void BM_exec_d2_w48_hashmap(benchmark::State& state) {
  bm_hashmap<2>(state, {48, 48}, 48, 4);
}

BENCHMARK(BM_exec_d1_w512_dense);
BENCHMARK(BM_exec_d1_w512_simd);
BENCHMARK(BM_exec_d1_w512_simd_off);
BENCHMARK(BM_exec_d1_w512_hashmap);
BENCHMARK(BM_exec_d2_w48_dense);
BENCHMARK(BM_exec_d2_w48_simd);
BENCHMARK(BM_exec_d2_w48_simd_off);
BENCHMARK(BM_exec_d2_w48_hashmap);

}  // namespace

BSMP_BENCH_MAIN("hot")
