# Empty dependencies file for bench_e1_matmul_speedup.
# This may be replaced when dependencies are built.
