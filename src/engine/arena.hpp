// engine::Arena — the process-wide slab pool under the staging and
// fork-scratch layers.
//
// Steady-state sweep throughput is allocation-bound without it: every
// sweep point rebuilds its staging store from cold, fully-zeroed level
// slabs, and every fork constructs fresh shard-local stores, ChargeLog
// buffers and phase logs. The arena closes that gap in two layers:
//
//   * Arena::acquire/release — raw slabs in power-of-two size classes,
//     served from a per-thread free-list cache first (no lock on the
//     hot path) and a mutex-protected global pool second. A recycled
//     slab's contents are stale; callers own the liveness story
//     (StagingStore tags slots with a per-level epoch byte so reuse
//     needs no re-zeroing — see sep/staging.hpp).
//   * Scratch<T> — a per-thread object cache for the fork-scratch
//     types (core::ChargeLog, phase logs, leaf windows): acquire a
//     recycled object at fork, return it at join. T needs a clear()
//     that forgets contents but keeps capacity.
//
// The arena changes *where* memory comes from, never what is computed:
// recycled values are only ever read through liveness checks that a
// recycled slab cannot satisfy, so every table, charge stream and
// metric is byte-identical with the arena on or off. The BSMP_ARENA
// knob (default on; "0"/"off" disables) exists so the conformance
// matrix can prove exactly that, and so the sweep-throughput bench can
// measure the cold allocation path it replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bsmp::engine {

/// Process-wide arena switch (BSMP_ARENA at process start; default on).
/// Off: acquire/release degrade to plain operator new/delete and every
/// scratch checkout constructs cold — the seed allocation behavior,
/// kept as the conformance baseline and the bench's "cold path".
bool arena_enabled();

/// Override the process-wide switch (tests; benches).
void set_arena_enabled(bool on);

/// Counters of the arena and the scratch caches (metrics-v2 "mem"
/// block). cold_allocs / slab_reuses / releases / scratch_* are
/// monotone; bytes_held / bytes_live / peak_bytes are absolute gauges.
struct ArenaStats {
  std::uint64_t cold_allocs = 0;   ///< slabs freshly allocated
  std::uint64_t slab_reuses = 0;   ///< acquires served from a free list
  std::uint64_t releases = 0;      ///< release() calls
  std::uint64_t scratch_checkouts = 0;  ///< Scratch<T> pool hits
  std::uint64_t scratch_cold = 0;       ///< Scratch<T> cold constructions
  std::uint64_t bytes_held = 0;    ///< bytes sitting in free lists now
  std::uint64_t bytes_live = 0;    ///< bytes checked out now
  std::uint64_t peak_bytes = 0;    ///< high-water of held + live
};

/// Pass-scoped delta: monotone counters subtract, gauges keep the
/// later (lhs) snapshot — matching how metrics passes are reported.
inline ArenaStats operator-(ArenaStats a, const ArenaStats& b) {
  a.cold_allocs -= b.cold_allocs;
  a.slab_reuses -= b.slab_reuses;
  a.releases -= b.releases;
  a.scratch_checkouts -= b.scratch_checkouts;
  a.scratch_cold -= b.scratch_cold;
  return a;
}

class Arena {
 public:
  /// One slab. `bytes` is the size-class capacity (>= the requested
  /// size); `recycled` tells the caller the contents are stale (pool
  /// hit) rather than fresh from the allocator. Either way the memory
  /// is uninitialized from the caller's point of view.
  struct Block {
    void* data = nullptr;
    std::size_t bytes = 0;
    bool recycled = false;

    explicit operator bool() const { return data != nullptr; }
  };

  /// The process-wide arena.
  static Arena& instance();

  /// A slab of at least `bytes` (0 returns a null block). Thread-safe;
  /// the per-thread cache makes the reuse path lock-free.
  Block acquire(std::size_t bytes);

  /// Return a slab (null blocks are ignored). With the arena enabled
  /// the slab lands in this thread's cache (overflow goes to the
  /// global pool, capped — beyond the cap it is freed); disabled, it
  /// is freed immediately.
  void release(Block b);

  /// Counter snapshot (relaxed reads; exact once quiescent).
  ArenaStats stats() const;

  /// Drop every pooled slab of the global pool and the calling
  /// thread's cache. Other threads' caches drain on thread exit.
  void trim();

  /// Scratch<T> accounting hook (one checkout; `cold` when it had to
  /// construct instead of reusing).
  void note_scratch(bool cold);

  /// Construct the calling thread's free-list cache now. Call from the
  /// initializer of any thread_local object that releases blocks in
  /// its destructor: thread_locals die in reverse order of
  /// construction, so priming first guarantees the cache outlives the
  /// releasing object.
  void prime_thread();

 private:
  Arena() = default;
  struct Impl;
  Impl& impl();
};

/// RAII checkout of a pooled scratch object: acquire a recycled T from
/// the calling thread's cache (or default-construct one), hand it back
/// at destruction. T must be movable and have a clear() that forgets
/// contents while keeping capacity. Acquire and release run on the
/// constructing thread — construct Scratch where the object's owner
/// lives (the forking thread for fork bookkeeping, the worker thread
/// for per-task scratch). With the arena disabled every checkout
/// constructs cold and the destructor just drops the object.
template <class T>
class Scratch {
 public:
  Scratch() {
    auto& pool = tls();
    if (arena_enabled() && !pool.empty()) {
      obj_ = std::move(pool.back());
      pool.pop_back();
      Arena::instance().note_scratch(false);
    } else {
      Arena::instance().note_scratch(true);
    }
  }

  ~Scratch() {
    if (!arena_enabled()) return;
    auto& pool = tls();
    if (pool.size() >= kCap) return;
    obj_.clear();
    pool.push_back(std::move(obj_));
  }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  T& operator*() { return obj_; }
  T* operator->() { return &obj_; }
  const T& operator*() const { return obj_; }
  const T* operator->() const { return &obj_; }

 private:
  /// Deep fork trees check out a handful of logs per level; a small
  /// cap bounds idle capacity without starving reuse.
  static constexpr std::size_t kCap = 16;

  static std::vector<T>& tls() {
    thread_local std::vector<T> pool;
    return pool;
  }

  T obj_{};
};

/// Byte budget of the shared PlanCache LRU (BSMP_PLAN_CACHE_BYTES at
/// process start; 0 — the default — means unbounded, the seed
/// behavior).
std::size_t default_plan_cache_bytes();

}  // namespace bsmp::engine
