// E3 — Theorem 2: M1(n,1,1) simulates a Tn-step M1(n,n,1) with
// slowdown O(n log n) via the diamond topological separator. Tables
// come from tables::e3_tables via the engine harness.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void BM_dc_thm2(benchmark::State& state) {
  std::int64_t n = state.range(0);
  auto g = workload::make_mix_guest<1>({n}, n, 1, 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1)));
}
BENCHMARK(BM_dc_thm2)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BSMP_BENCH_MAIN("e3")
