// E4 — Theorem 3: M1(n,1,m) simulates M1(n,n,m) with slowdown
// O(n * min(n, m loḡ(n/m))). Tables come from tables::e4_tables via
// the engine harness.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void BM_dc_thm3(benchmark::State& state) {
  std::int64_t m = state.range(0);
  auto g = workload::make_mix_guest<1>({128}, 128, m, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_dc_uniproc<1>(g, spec(1, 128, 1, m)));
}
BENCHMARK(BM_dc_thm3)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BSMP_BENCH_MAIN("e4")
