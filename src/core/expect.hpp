// Precondition / invariant checking for the bsmp library.
//
// BSMP_REQUIRE is used for caller-facing precondition checks (always on);
// BSMP_ASSERT is used for internal invariants (compiled out in NDEBUG,
// except that we keep them on by default because the simulators are
// correctness-critical and cheap relative to the cost model they drive).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bsmp {

/// Thrown when a documented API precondition is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant of a simulator/schedule is violated.
/// Seeing this exception always indicates a bug in bsmp, never user error.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "BSMP_REQUIRE failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_assert(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "BSMP_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace bsmp

#define BSMP_REQUIRE(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::bsmp::detail::throw_require(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define BSMP_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream bsmp_os_;                                      \
      bsmp_os_ << msg;                                                  \
      ::bsmp::detail::throw_require(#expr, __FILE__, __LINE__,          \
                                    bsmp_os_.str());                    \
    }                                                                   \
  } while (0)

#define BSMP_ASSERT(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::bsmp::detail::throw_assert(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define BSMP_ASSERT_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream bsmp_os_;                                      \
      bsmp_os_ << msg;                                                  \
      ::bsmp::detail::throw_assert(#expr, __FILE__, __LINE__,           \
                                   bsmp_os_.str());                     \
    }                                                                   \
  } while (0)
