// Integer and "paper" math helpers.
//
// The SPAA'95 paper uses a saturated logarithm throughout its closed
// forms: loḡ(a) := log2(a + 2), so that loḡ(a) >= 1 for every a >= 0
// (footnote to Theorem 3). `logbar` implements exactly that. All other
// helpers are exact integer routines used to size domains, strips and
// recursion levels without floating-point drift.
#pragma once

#include <cstdint>

namespace bsmp::core {

/// The paper's saturated logarithm: loḡ(a) = log2(a + 2) >= 1 for a >= 0.
/// Defined for a >= 0 (negative inputs are clamped to 0 before applying).
double logbar(double a);

/// Exact floor(log2(x)) for x >= 1.
int ilog2_floor(std::uint64_t x);

/// Exact ceil(log2(x)) for x >= 1.
int ilog2_ceil(std::uint64_t x);

/// True iff x is a power of two (x >= 1).
bool is_pow2(std::uint64_t x);

/// Smallest power of two >= x (x >= 1, x <= 2^63).
std::uint64_t ceil_pow2(std::uint64_t x);

/// Largest power of two <= x (x >= 1).
std::uint64_t floor_pow2(std::uint64_t x);

/// Exact floor(sqrt(x)).
std::uint64_t isqrt(std::uint64_t x);

/// True iff x is a perfect square.
bool is_square(std::uint64_t x);

/// ceil(a / b) for b > 0.
std::int64_t div_ceil(std::int64_t a, std::int64_t b);

/// Floor division that rounds toward negative infinity (unlike C++ '/').
std::int64_t div_floor(std::int64_t a, std::int64_t b);

/// Mathematical modulus in [0, b) for b > 0 (unlike C++ '%').
std::int64_t mod_floor(std::int64_t a, std::int64_t b);

/// Integer power base^exp (no overflow checking; callers keep it small).
std::uint64_t ipow(std::uint64_t base, unsigned exp);

}  // namespace bsmp::core
