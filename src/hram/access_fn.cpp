#include "hram/access_fn.hpp"

#include <cmath>

#include "core/expect.hpp"

namespace bsmp::hram {

AccessFn AccessFn::unit() { return AccessFn(Kind::kUnit, 0, 0); }

AccessFn AccessFn::hierarchical(int d, double m) {
  BSMP_REQUIRE(d >= 1 && d <= 3);
  BSMP_REQUIRE(m >= 1.0);
  return AccessFn(Kind::kHierarchical, m, 1.0 / d);
}

AccessFn AccessFn::power(double a, double alpha) {
  BSMP_REQUIRE(a > 0.0);
  BSMP_REQUIRE(alpha >= 0.0 && alpha <= 1.0);
  return AccessFn(Kind::kPower, a, alpha);
}

core::Cost AccessFn::operator()(std::uint64_t addr) const {
  switch (kind_) {
    case Kind::kUnit:
      return 1.0;
    case Kind::kHierarchical: {
      double c = std::pow(static_cast<double>(addr) / a_, b_);
      return c < 1.0 ? 1.0 : c;
    }
    case Kind::kPower: {
      double c = a_ * std::pow(static_cast<double>(addr), b_);
      return c < 1.0 ? 1.0 : c;
    }
  }
  return 1.0;
}

core::Cost AccessFn::block(std::uint64_t max_addr, std::uint64_t len) const {
  return static_cast<core::Cost>(len) * (*this)(max_addr);
}

core::Cost AccessFn::block_pipelined(std::uint64_t max_addr,
                                     std::uint64_t len) const {
  if (len == 0) return 0.0;
  return (*this)(max_addr) + static_cast<core::Cost>(len - 1);
}

}  // namespace bsmp::hram
