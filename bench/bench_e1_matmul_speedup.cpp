// E1 — Introduction example: superlinear mesh speedup for matrix
// multiplication. Regenerates the paper's motivating numbers:
//   mesh M2(n,n,1):       Θ(sqrt(n))
//   uniprocessor, naive:  Θ(n^2)          -> speedup Θ(n^(3/2))
//   uniprocessor, AACS87: Θ(n^(3/2) log n) -> speedup Θ(n log n)
// Both speedups are superlinear in the n mesh processors; under the
// instantaneous model the cap is n (Brent).
#include "bench_common.hpp"
#include "core/logmath.hpp"
#include "core/rng.hpp"
#include "workload/matmul.hpp"

using namespace bsmp;

namespace {

std::vector<hram::Word> rnd(std::int64_t side, std::uint64_t seed) {
  core::SplitMix64 rng(seed);
  std::vector<hram::Word> m(static_cast<std::size_t>(side * side));
  for (auto& v : m) v = rng.next();
  return m;
}

void emit() {
  core::Table t(
      "E1: matmul speedups under bounded-speed propagation (intro example)",
      {"n", "mesh T", "naive T", "blocked T", "speedup_naive",
       "sp_naive/n^1.5", "speedup_blocked", "sp_blocked/(n logn)"});
  for (std::int64_t side : {8, 16, 32, 64, 128}) {
    std::int64_t n = side * side;
    auto a = rnd(side, 1), b = rnd(side, 2);
    auto mesh = workload::matmul_mesh_systolic(side, a, b);
    auto naive = workload::matmul_hram_naive(side, a, b);
    auto blocked = workload::matmul_hram_blocked(side, a, b);
    if (mesh.c != naive.c || mesh.c != blocked.c) {
      std::cerr << "FATAL: matmul variants disagree\n";
      std::abort();
    }
    double dn = static_cast<double>(n);
    double sp_n = naive.time / mesh.time;
    double sp_b = blocked.time / mesh.time;
    t.add_row({(long long)n, mesh.time, naive.time, blocked.time, sp_n,
               sp_n / std::pow(dn, 1.5), sp_b,
               sp_b / (dn * core::logbar(dn))});
  }
  t.print(std::cout);
  std::cout << "# Expected shape: sp_naive/n^1.5 and sp_blocked/(n logn)\n"
               "# are flat (Θ(1)) — both speedups superlinear in n.\n\n";
}

void BM_mesh(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto a = rnd(side, 1), b = rnd(side, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::matmul_mesh_systolic(side, a, b));
}
BENCHMARK(BM_mesh)->Arg(16)->Arg(32)->Arg(64);

void BM_hram_naive(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto a = rnd(side, 1), b = rnd(side, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::matmul_hram_naive(side, a, b));
}
BENCHMARK(BM_hram_naive)->Arg(16)->Arg(32);

void BM_hram_blocked(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto a = rnd(side, 1), b = rnd(side, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::matmul_hram_blocked(side, a, b));
}
BENCHMARK(BM_hram_blocked)->Arg(16)->Arg(32);

}  // namespace

BSMP_BENCH_MAIN(emit)
