// Guest programs: concrete step rules and input generators.
//
// The theorems hold for arbitrary T-step computations of the network;
// the rules here instantiate them. `mix_rule` is the default workload
// for experiments — it mixes all operands with full avalanche, so a
// simulator that executes any vertex with a wrong operand produces
// detectably wrong final values. `rule110` and `parity_rule` are
// classical cellular automata (the m=1 guests of Theorems 2 and 5 —
// "systolic network or cellular automaton").
// The mixing, XOR and rule-110 workloads also come as *kernel structs*
// (MixKernel, XorKernel, Rule110Kernel, Rule110LanesKernel): concrete
// functors whose scalar call is bit-identical to the std::function
// factories below, plus a `row` member satisfying sep::simd::RowKernel
// for D = 1, 2 so the separator executor's leaf loop (and soa_rule's
// 64-lane batch form) can evaluate whole SoA spans per call. Pass a
// kernel to Executor::execute_with_rule to get the vector path; the
// factories keep returning type-erased rules for everything else.
#pragma once

#include "core/rng.hpp"
#include "sep/guest.hpp"
#include "sep/simd.hpp"

namespace bsmp::workload {

namespace detail {

/// splitmix64 finalizer — the avalanche primitive of mix_rule and
/// random_input. Pure integer, so identical on every ISA.
inline sep::Word mix64(sep::Word z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Position fingerprint folded into every mix_rule evaluation.
template <int D>
inline sep::Word position_tag(const geom::Point<D>& p) {
  sep::Word h = static_cast<sep::Word>(p.t) * 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < D; ++i)
    h = mix64(h ^ static_cast<sep::Word>(p.x[i]));
  return h;
}

// Row kernels (rules.cpp, compiled as BSMP_SIMD_CLONES): the
// sep::simd::RowKernel contract — out[i] = rule(p_i, self[i],
// {nbrs[k][i]}) with p_i's innermost coordinate p0.x[D-1] + xstride*i.
void mix_row_d1(sep::Word* out, const sep::Word* self,
                const sep::Word* const* nbrs, std::size_t n,
                geom::Point<1> p0, std::int64_t xstride);
void mix_row_d2(sep::Word* out, const sep::Word* self,
                const sep::Word* const* nbrs, std::size_t n,
                geom::Point<2> p0, std::int64_t xstride);
void xor_row_d1(sep::Word* out, const sep::Word* self,
                const sep::Word* const* nbrs, std::size_t n);
void xor_row_d2(sep::Word* out, const sep::Word* self,
                const sep::Word* const* nbrs, std::size_t n);
void rule110_row(sep::Word* out, const sep::Word* self,
                 const sep::Word* const* nbrs, std::size_t n);
void rule110_lanes_row(sep::Word* out, const sep::Word* self,
                       const sep::Word* const* nbrs, std::size_t n);

}  // namespace detail

/// Kernel form of mix_rule (scalar call bit-identical; see header).
template <int D>
struct MixKernel {
  sep::Word operator()(const geom::Point<D>& p, sep::Word self,
                       const sep::NeighborWords<D>& nbrs) const {
    sep::Word h = detail::mix64(self ^ detail::position_tag<D>(p));
    for (int k = 0; k < geom::kMono<D>; ++k)
      h = detail::mix64(h + nbrs[static_cast<std::size_t>(k)] *
                                0x2545f4914f6cdd1dULL);
    return h;
  }
  void row(sep::Word* out, const sep::Word* self,
           const sep::Word* const* nbrs, std::size_t n, geom::Point<1> p0,
           std::int64_t xstride) const
    requires(D == 1)
  {
    detail::mix_row_d1(out, self, nbrs, n, p0, xstride);
  }
  void row(sep::Word* out, const sep::Word* self,
           const sep::Word* const* nbrs, std::size_t n, geom::Point<2> p0,
           std::int64_t xstride) const
    requires(D == 2)
  {
    detail::mix_row_d2(out, self, nbrs, n, p0, xstride);
  }
};

/// Kernel form of xor_rule (position-independent, so the row kernel
/// ignores p0/xstride).
template <int D>
struct XorKernel {
  sep::Word operator()(const geom::Point<D>&, sep::Word self,
                       const sep::NeighborWords<D>& nbrs) const {
    sep::Word h = self;
    for (int k = 0; k < geom::kMono<D>; ++k)
      h ^= nbrs[static_cast<std::size_t>(k)];
    return h;
  }
  void row(sep::Word* out, const sep::Word* self,
           const sep::Word* const* nbrs, std::size_t n, geom::Point<1>,
           std::int64_t) const
    requires(D == 1)
  {
    detail::xor_row_d1(out, self, nbrs, n);
  }
  void row(sep::Word* out, const sep::Word* self,
           const sep::Word* const* nbrs, std::size_t n, geom::Point<2>,
           std::int64_t) const
    requires(D == 2)
  {
    detail::xor_row_d2(out, self, nbrs, n);
  }
};

/// Kernel form of rule110 (LSB automaton).
struct Rule110Kernel {
  sep::Word operator()(const geom::Point<1>&, sep::Word self,
                       const sep::NeighborWords<1>& nbrs) const {
    unsigned left = static_cast<unsigned>(nbrs[0] & 1);
    unsigned mid = static_cast<unsigned>(self & 1);
    unsigned right = static_cast<unsigned>(nbrs[1] & 1);
    unsigned idx = (left << 2) | (mid << 1) | right;
    return (0b01101110u >> idx) & 1u;  // rule 110 truth table
  }
  void row(sep::Word* out, const sep::Word* self,
           const sep::Word* const* nbrs, std::size_t n, geom::Point<1>,
           std::int64_t) const {
    detail::rule110_row(out, self, nbrs, n);
  }
};

/// Kernel form of rule110_lanes (bit-sliced batch automaton).
struct Rule110LanesKernel {
  sep::Word operator()(const geom::Point<1>&, sep::Word self,
                       const sep::NeighborWords<1>& nbrs) const {
    // Rule 110 on every bit position at once: out = (m|r) & ~(l&m&r)
    // reproduces the truth table 01101110 per bit, so bit l of the
    // word evolves exactly as a scalar rule110() run of lane l.
    const sep::Word l = nbrs[0], m = self, r = nbrs[1];
    return (m | r) & ~(l & m & r);
  }
  void row(sep::Word* out, const sep::Word* self,
           const sep::Word* const* nbrs, std::size_t n, geom::Point<1>,
           std::int64_t) const {
    detail::rule110_lanes_row(out, self, nbrs, n);
  }
};

/// Avalanche-mixing rule: value = h(self_prev, neighbors, position).
template <int D>
sep::Rule<D> mix_rule();

/// Linear (XOR) rule: parity of self and neighbors, rotated for mixing.
template <int D>
sep::Rule<D> parity_rule();

/// Wolfram's rule 110 on the least-significant bit (D = 1, m = 1).
sep::Rule<1> rule110();

/// Rule 110 applied to *every* bit of the word independently: the
/// bit-sliced batch form (doc/ENGINE.md "Batched guests"). Bit l of
/// each value evolves exactly as rule110() evolves a 0/1-valued
/// scalar run, so one charged pass carries sep::kLanes scenarios.
sep::Rule<1> rule110_lanes();

/// Plain XOR parity of self and neighbors — lane-local on every bit,
/// so it is its own bit-sliced batch form (unlike parity_rule, whose
/// rotations mix bit positions for avalanche).
template <int D>
sep::Rule<D> xor_rule();

/// Integer diffusion: mean of self and neighbors (saturating).
template <int D>
sep::Rule<D> diffusion_rule();

/// Odd-even transposition sort on a linear array of n cells (D = 1,
/// m = 1): the classical systolic sorter. After n steps the array is
/// sorted ascending — simulators are checked to *sort correctly*, not
/// just to match the reference bit-for-bit.
sep::Rule<1> sort_rule(int64_t n);

/// Window maximum: value(x, t) = max over inputs within distance t of
/// x — after T = n steps every node holds the global maximum.
template <int D>
sep::Rule<D> max_rule();

/// Shearsort on a side x side mesh (D = 2, m = 1): alternating phases
/// of snake-wise row sorts and ascending column sorts, each phase
/// `side` steps of odd-even transposition. After shearsort_phases(side)
/// phases the array is sorted in snake order. The canonical
/// mesh-sorting algorithm, expressible exactly as a GT(H) computation.
sep::Rule<2> shearsort_rule(int64_t side);

/// Number of phases that guarantees sortedness (2 ceil(log2 side) + 3,
/// generous; extra phases are no-ops on a sorted mesh). The required
/// horizon is 1 + shearsort_phases(side) * side.
int64_t shearsort_phases(int64_t side);

/// The snake order positions: element (row, col) is the
/// (row*side + (row even ? col : side-1-col))-th smallest when sorted.
int64_t snake_rank(int64_t side, int64_t row, int64_t col);

/// Deterministic pseudo-random inputs from a seed.
template <int D>
sep::InputFn<D> random_input(std::uint64_t seed);

/// All-zero inputs except a single seed cell at the origin.
template <int D>
sep::InputFn<D> point_input(sep::Word value);

/// Convenience: a complete Guest for the mixing workload.
template <int D>
sep::Guest<D> make_mix_guest(std::array<int64_t, D> extent, int64_t horizon,
                             int64_t m, std::uint64_t seed);

}  // namespace bsmp::workload
