// Emitters E1–E5: the intro example, Proposition 1, and Theorems 2–4.
// Sweep bodies are verbatim ports of the original bench loops; the
// loops themselves now run as engine::Sweep points so the tables build
// identically at any thread count.
#include <cmath>

#include "core/logmath.hpp"
#include "core/rng.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "tables/detail.hpp"
#include "workload/matmul.hpp"
#include "workload/rules.hpp"

namespace bsmp::tables {

using detail::pick_s;
using detail::require_equivalent;
using detail::spec;
using detail::sweep_rows;
using detail::sweep_values;
using detail::Row;

// ---------------------------------------------------------------------
// E1 — Introduction example: superlinear mesh speedup for matmul.
// ---------------------------------------------------------------------

namespace {

std::vector<hram::Word> rnd_matrix(std::int64_t side, std::uint64_t seed) {
  core::SplitMix64 rng(seed);
  std::vector<hram::Word> m(static_cast<std::size_t>(side * side));
  for (auto& v : m) v = rng.next();
  return m;
}

}  // namespace

std::vector<Emitted> e1_tables(EngineCtx& ctx) {
  core::Table t(
      "E1: matmul speedups under bounded-speed propagation (intro example)",
      {"n", "mesh T", "naive T", "blocked T", "speedup_naive",
       "sp_naive/n^1.5", "speedup_blocked", "sp_blocked/(n logn)"});
  std::vector<std::int64_t> sides{8, 16, 32, 64, 128};
  auto rows = sweep_rows(ctx, sides, [](std::int64_t side,
                                        engine::SweepContext&) -> Row {
    std::int64_t n = side * side;
    auto a = rnd_matrix(side, 1), b = rnd_matrix(side, 2);
    auto mesh = workload::matmul_mesh_systolic(side, a, b);
    auto naive = workload::matmul_hram_naive(side, a, b);
    auto blocked = workload::matmul_hram_blocked(side, a, b);
    BSMP_REQUIRE_MSG(mesh.c == naive.c && mesh.c == blocked.c,
                     "matmul variants disagree at side " << side);
    double dn = static_cast<double>(n);
    double sp_n = naive.time / mesh.time;
    double sp_b = blocked.time / mesh.time;
    return {(long long)n, mesh.time, naive.time, blocked.time, sp_n,
            sp_n / std::pow(dn, 1.5), sp_b, sp_b / (dn * core::logbar(dn))};
  });
  for (auto& r : rows) t.add_row(std::move(r));
  return {{std::move(t),
           "# Expected shape: sp_naive/n^1.5 and sp_blocked/(n logn)\n"
           "# are flat (Θ(1)) — both speedups superlinear in n.\n"}};
}

// ---------------------------------------------------------------------
// E2 — Proposition 1: the naive simulation.
// ---------------------------------------------------------------------

std::vector<Emitted> e2_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  {
    core::Table t("E2a: naive slowdown vs n (d=1, p=1) — Prop. 1",
                  {"n", "m", "Tp/Tn", "bound n^2", "ratio"});
    std::vector<std::pair<std::int64_t, std::int64_t>> pts;
    for (std::int64_t n : {32, 64, 128, 256})
      for (std::int64_t m : {1, 8}) pts.emplace_back(n, m);
    auto rows = sweep_rows(ctx, pts, [&](const auto& pt,
                                         engine::SweepContext& c) -> Row {
      auto [n, m] = pt;
      auto ref = cached_reference<1>(*c.plans, {n}, 16, m, 1);
      auto g = cached_mix_guest<1>(*c.plans, {n}, 16, m, 1);
      auto res = sim::simulate_naive<1>(*g, spec(1, n, 1, m));
      require_equivalent<1>(res, *ref, "naive d=1");
      double bound = analytic::naive_bound(1, (double)n, (double)m, 1);
      return {(long long)n, (long long)m, res.slowdown(), bound,
              res.slowdown() / bound};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# ratio flat in n and m: slowdown is Θ(n^2), "
                   "independent of m.\n"});
  }
  {
    core::Table t("E2b: naive slowdown vs n (d=2, p=1) — Prop. 1",
                  {"n", "Tp/Tn", "bound n^1.5", "ratio"});
    std::vector<std::int64_t> sides{8, 16, 32};
    auto rows = sweep_rows(ctx, sides, [&](std::int64_t side,
                                           engine::SweepContext& c) -> Row {
      std::int64_t n = side * side;
      auto ref = cached_reference<2>(*c.plans, {side, side}, 8, 1, 2);
      auto g = cached_mix_guest<2>(*c.plans, {side, side}, 8, 1, 2);
      auto res = sim::simulate_naive<2>(*g, spec(2, n, 1, 1));
      require_equivalent<2>(res, *ref, "naive d=2");
      double bound = analytic::naive_bound(2, (double)n, 1, 1);
      return {(long long)n, res.slowdown(), bound, res.slowdown() / bound};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t), "# d=2: slowdown Θ(n^(3/2)).\n"});
  }
  {
    // The guest and its reference run are shared by all four points of
    // the p sweep — one build, three cache hits.
    core::Table t("E2c: naive slowdown vs p (d=1, n=256)",
                  {"p", "Tp/Tn", "bound (n/p)^2", "ratio"});
    std::int64_t n = 256;
    std::vector<std::int64_t> ps{1, 4, 16, 64};
    auto rows = sweep_rows(ctx, ps, [&](std::int64_t p,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, 16, 1, 3);
      auto g = cached_mix_guest<1>(*c.plans, {n}, 16, 1, 3);
      auto res = sim::simulate_naive<1>(*g, spec(1, n, p, 1));
      require_equivalent<1>(res, *ref, "naive d=1 p");
      double bound = analytic::naive_bound(1, (double)n, 1, (double)p);
      return {(long long)p, res.slowdown(), bound, res.slowdown() / bound};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t), "# parallel naive: Θ((n/p)^2).\n"});
  }
  return out;
}

// ---------------------------------------------------------------------
// E3 — Theorem 2: D&C uniprocessor, d=1, m=1.
// ---------------------------------------------------------------------

std::vector<Emitted> e3_tables(EngineCtx& ctx) {
  core::Table t("E3: Theorem 2 — D&C uniprocessor, d=1, m=1",
                {"n", "T1/Tn (D&C)", "n*logn bound", "ratio", "naive T1/Tn",
                 "D&C gain"});
  std::vector<std::int64_t> ns{32, 64, 128, 256, 512};
  auto rows = sweep_rows(ctx, ns, [](std::int64_t n,
                                     engine::SweepContext& c) -> Row {
    auto ref = cached_reference<1>(*c.plans, {n}, n, 1, 4);
    auto g = cached_mix_guest<1>(*c.plans, {n}, n, 1, 4);
    auto dc = sim::simulate_dc_uniproc<1>(*g, spec(1, n, 1, 1));
    require_equivalent<1>(dc, *ref, "dc d=1");
    auto nv = sim::simulate_naive<1>(*g, spec(1, n, 1, 1));
    double bound = analytic::thm2_bound((double)n);
    return {(long long)n, dc.slowdown(), bound, dc.slowdown() / bound,
            nv.slowdown(), nv.slowdown() / dc.slowdown()};
  });
  for (auto& r : rows) t.add_row(std::move(r));
  return {{std::move(t),
           "# Expected: 'ratio' flat (slowdown Θ(n log n)); 'D&C gain'\n"
           "# grows like n/log n — locality recovered from spatial\n"
           "# structure, paying only a log factor.\n"}};
}

// ---------------------------------------------------------------------
// E4 — Theorem 3: executable diamonds, m sweep.
// ---------------------------------------------------------------------

std::vector<Emitted> e4_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  {
    std::int64_t n = 128;
    core::Table t("E4a: Theorem 3 — m sweep at n=128 (d=1, p=1)",
                  {"m", "T1/Tn", "bound n*min(n,m*log(n/m))", "ratio",
                   "naive T1/Tn"});
    std::vector<std::int64_t> ms{1, 2, 4, 8, 16, 32, 64, 128, 256};
    auto rows = sweep_rows(ctx, ms, [&](std::int64_t m,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, n, m, 5);
      auto g = cached_mix_guest<1>(*c.plans, {n}, n, m, 5);
      auto dc = sim::simulate_dc_uniproc<1>(*g, spec(1, n, 1, m));
      require_equivalent<1>(dc, *ref, "dc thm3");
      auto nv = sim::simulate_naive<1>(*g, spec(1, n, 1, m));
      double bound = analytic::thm3_bound((double)n, (double)m);
      return {(long long)m, dc.slowdown(), bound, dc.slowdown() / bound,
              nv.slowdown()};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# Locality slowdown grows ~ m log(n/m) and saturates "
                   "at\n# the naive level once m ~ n.\n"});
  }
  {
    std::int64_t m = 8;
    core::Table t("E4b: Theorem 3 — n sweep at m=8",
                  {"n", "T1/Tn", "bound", "ratio"});
    std::vector<std::int64_t> ns{32, 64, 128, 256};
    auto rows = sweep_rows(ctx, ns, [&](std::int64_t n,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, n, m, 6);
      auto g = cached_mix_guest<1>(*c.plans, {n}, n, m, 6);
      auto dc = sim::simulate_dc_uniproc<1>(*g, spec(1, n, 1, m));
      require_equivalent<1>(dc, *ref, "dc thm3 n-sweep");
      double bound = analytic::thm3_bound((double)n, (double)m);
      return {(long long)n, dc.slowdown(), bound, dc.slowdown() / bound};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back(
        {std::move(t), "# ratio flat in n: slowdown Θ(n * m log(n/m)).\n"});
  }
  {
    // Ablation of the executable-diamond width (the leaf at which the
    // recursion switches to naive execution — Theorem 3 picks D(m)).
    // The note column depends on the whole sweep (global minimum), so
    // the sweep returns raw (leaf, slowdown) pairs and the table is
    // assembled afterwards.
    std::int64_t n = 512, m = 4;
    core::Table t("E4c: executable-diamond width ablation — n=512, m=4",
                  {"leaf width", "T1/Tn", "note"});
    std::vector<std::int64_t> leaves;
    for (std::int64_t leaf = 1; leaf <= n; leaf *= 4) leaves.push_back(leaf);
    struct Meas {
      std::int64_t leaf;
      double slow;
    };
    auto meas = sweep_values<Meas>(
        ctx, leaves, [&](std::int64_t leaf, engine::SweepContext& c) -> Meas {
          auto ref = cached_reference<1>(*c.plans, {n}, n, m, 13);
          auto g = cached_mix_guest<1>(*c.plans, {n}, n, m, 13);
          sim::DcConfig cfg;
          cfg.leaf_width = leaf;
          auto res = sim::simulate_dc_uniproc<1>(*g, spec(1, n, 1, m), cfg);
          require_equivalent<1>(res, *ref, "leaf ablation");
          return {leaf, res.slowdown()};
        });
    double best = 1e300, at_m = 0;
    for (const auto& r : meas) {
      best = std::min(best, r.slow);
      if (r.leaf == m) at_m = r.slow;
    }
    for (const auto& r : meas) {
      std::string note;
      if (r.leaf == m) note += "= m (Theorem 3); ";
      if (r.slow == best) note += "minimum";
      t.add_row({(long long)r.leaf, r.slow, note});
    }
    out.push_back({std::move(t),
                   "# interior minimum at a constant multiple of m; leaf=m\n"
                   "# itself is within " +
                       core::format_real(at_m / best) +
                       "x — the Θ(m) switch point of Theorem 3.\n"});
  }
  return out;
}

// ---------------------------------------------------------------------
// E5 — Theorem 4: the two-regime multiprocessor simulation.
// ---------------------------------------------------------------------

std::vector<Emitted> e5_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  {
    std::int64_t n = 256, p = 4;
    core::Table t(
        "E5a: Theorem 4 — m sweep, n=256, p=4",
        {"m", "range", "s*", "Tp/Tn", "bound (n/p)A", "ratio", "util"});
    std::vector<std::int64_t> ms{1, 2, 4, 8, 16, 32, 64, 128, 256};
    auto rows = sweep_rows(ctx, ms, [&](std::int64_t m,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, n, m, 7);
      auto g = cached_mix_guest<1>(*c.plans, {n}, n, m, 7);
      sim::MultiprocConfig cfg;
      cfg.s = pick_s(n, m, p);
      auto res = sim::simulate_multiproc<1>(*g, spec(1, n, p, m), cfg);
      require_equivalent<1>(res, *ref, "multiproc m-sweep");
      double bound =
          analytic::slowdown_bound(1, (double)n, (double)m, (double)p);
      return {(long long)m,
              std::string(analytic::to_string(
                  analytic::classify_range(1, n, m, p))),
              (long long)cfg.s, res.slowdown(), bound,
              res.slowdown() / bound, res.utilization};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back(
        {std::move(t),
         "# The four ranges of Theorem 1: ratio stays Θ(1) as the\n"
         "# dominant mechanism shifts from cooperation to naive.\n"});
  }
  {
    std::int64_t n = 256, m = 4;
    core::Table t("E5b: Theorem 4 — p sweep, n=256, m=4",
                  {"p", "Tp/Tn", "bound", "ratio", "Brent n/p", "A measured"});
    std::vector<std::int64_t> ps{1, 2, 4, 8, 16};
    auto rows = sweep_rows(ctx, ps, [&](std::int64_t p,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, n, m, 8);
      auto g = cached_mix_guest<1>(*c.plans, {n}, n, m, 8);
      sim::MultiprocConfig cfg;
      cfg.s = pick_s(n, m, p);
      auto res = sim::simulate_multiproc<1>(*g, spec(1, n, p, m), cfg);
      require_equivalent<1>(res, *ref, "multiproc p-sweep");
      double bound =
          analytic::slowdown_bound(1, (double)n, (double)m, (double)p);
      double brent = (double)n / (double)p;
      return {(long long)p, res.slowdown(), bound, res.slowdown() / bound,
              brent, res.slowdown() / brent};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# 'A measured' is the locality slowdown left after\n"
                   "# dividing out Brent's n/p.\n"});
  }
  {
    // Section 4.2: the one-time memory rearrangement costs O(n^2 m / p)
    // and "its cost gives a contribution to the slowdown that vanishes
    // as the number of simulated steps increases". Sweep the horizon.
    std::int64_t n = 128, p = 4, m = 2;
    core::Table t("E5c: rearrangement amortization — n=128, p=4, m=2",
                  {"T", "Tp/Tn (steady)", "with preprocessing",
                   "preprocessing share"});
    std::vector<std::int64_t> horizons{128, 256, 512, 1024};
    auto rows = sweep_rows(ctx, horizons, [&](std::int64_t T,
                                              engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, T, m, 21);
      auto g = cached_mix_guest<1>(*c.plans, {n}, T, m, 21);
      sim::MultiprocConfig cfg;
      cfg.s = pick_s(n, m, p);
      auto res = sim::simulate_multiproc<1>(*g, spec(1, n, p, m), cfg);
      require_equivalent<1>(res, *ref, "amortization");
      double with_pre = (res.time + res.preprocess) / res.guest_time;
      return {(long long)T, res.slowdown(), with_pre,
              res.preprocess / (res.time + res.preprocess)};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# the preprocessing share vanishes as T grows — the\n"
                   "# paper's amortization argument, measured.\n"});
  }
  return out;
}

}  // namespace bsmp::tables
