#include "core/cost.hpp"

#include <sstream>

#include "core/expect.hpp"

namespace bsmp::core {

const char* to_string(CostKind k) {
  switch (k) {
    case CostKind::kCompute:     return "compute";
    case CostKind::kLocalAccess: return "local_access";
    case CostKind::kBlockMove:   return "block_move";
    case CostKind::kComm:        return "comm";
    case CostKind::kRearrange:   return "rearrange";
    case CostKind::kKindCount:   break;
  }
  return "?";
}

void CostLedger::charge(CostKind kind, Cost cost, std::uint64_t events) {
  BSMP_REQUIRE(kind != CostKind::kKindCount);
  BSMP_REQUIRE_MSG(cost >= 0.0, "negative cost charged");
  auto i = static_cast<std::size_t>(kind);
  cost_[i] += cost;
  events_[i] += events;
}

Cost CostLedger::total() const {
  Cost t = 0;
  for (Cost c : cost_) t += c;
  return t;
}

Cost CostLedger::cost(CostKind kind) const {
  return cost_[static_cast<std::size_t>(kind)];
}

std::uint64_t CostLedger::events(CostKind kind) const {
  return events_[static_cast<std::size_t>(kind)];
}

CostLedger& CostLedger::operator+=(const CostLedger& other) {
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    cost_[i] += other.cost_[i];
    events_[i] += other.events_[i];
  }
  return *this;
}

void CostLedger::reset() {
  cost_.fill(0);
  events_.fill(0);
}

void ChargeLog::replay_into(CostLedger& ledger) const {
  // Per-kind addition order is all that matters for the merged doubles:
  // each kind accumulates into its own slot, so replaying kind by kind
  // reproduces the serial per-slot addition sequence even though the
  // serial execution interleaved kinds.
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    if (addends_[i].empty() && events_[i] == 0) continue;
    auto s = ledger.stream(static_cast<CostKind>(i));
    for (Cost c : addends_[i]) s.add_cost(c);
    s.add_events(events_[i]);
  }
}

void ChargeLog::replay_into(ChargeLog& log) const {
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    log.addends_[i].insert(log.addends_[i].end(), addends_[i].begin(),
                           addends_[i].end());
    log.events_[i] += events_[i];
  }
}

Cost ChargeLog::cost(CostKind kind) const {
  Cost t = 0;
  for (Cost c : addends_[static_cast<std::size_t>(kind)]) t += c;
  return t;
}

std::uint64_t ChargeLog::events(CostKind kind) const {
  return events_[static_cast<std::size_t>(kind)];
}

void ChargeLog::clear() {
  for (auto& v : addends_) v.clear();
  events_.fill(0);
}

std::string CostLedger::report() const {
  std::ostringstream os;
  os << "total=" << total();
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    if (events_[i] == 0 && cost_[i] == 0) continue;
    os << "  " << to_string(static_cast<CostKind>(i)) << "=" << cost_[i]
       << " (" << events_[i] << " ev)";
  }
  return os.str();
}

}  // namespace bsmp::core
