#include <gtest/gtest.h>

#include "core/expect.hpp"
#include "machine/clocks.hpp"
#include "machine/spec.hpp"
#include "machine/topology.hpp"

using namespace bsmp::machine;

TEST(MachineSpec, ValidatesRanges) {
  MachineSpec s{1, 16, 4, 2};
  EXPECT_NO_THROW(s.validate());
  MachineSpec bad_p{1, 16, 32, 1};
  EXPECT_THROW(bad_p.validate(), bsmp::precondition_error);
  MachineSpec bad_div{1, 16, 3, 1};
  EXPECT_THROW(bad_div.validate(), bsmp::precondition_error);
  MachineSpec bad_d{4, 16, 4, 1};
  EXPECT_THROW(bad_d.validate(), bsmp::precondition_error);
}

TEST(MachineSpec, D2RequiresSquares) {
  MachineSpec ok{2, 16, 4, 1};
  EXPECT_NO_THROW(ok.validate());
  MachineSpec bad{2, 18, 9, 1};
  EXPECT_THROW(bad.validate(), bsmp::precondition_error);
  MachineSpec badp{2, 16, 8, 1};
  EXPECT_THROW(badp.validate(), bsmp::precondition_error);
}

TEST(MachineSpec, DerivedQuantities) {
  MachineSpec s{1, 64, 4, 8};
  EXPECT_EQ(s.node_memory(), 128);
  EXPECT_EQ(s.total_memory(), 512);
  EXPECT_DOUBLE_EQ(s.link_length(), 16.0);
  EXPECT_EQ(s.span(), 16);
  EXPECT_EQ(s.proc_side(), 4);
  EXPECT_EQ(s.node_side(), 64);

  MachineSpec q{2, 256, 16, 1};
  EXPECT_DOUBLE_EQ(q.link_length(), 4.0);
  EXPECT_EQ(q.proc_side(), 4);
  EXPECT_EQ(q.node_side(), 16);
}

TEST(MachineSpec, TransferCostBoundedSpeed) {
  MachineSpec s{1, 64, 4, 1};
  EXPECT_DOUBLE_EQ(s.transfer_cost(16.0, 3), 48.0);
  EXPECT_DOUBLE_EQ(s.transfer_cost(0.5, 2), 2.0);  // distance floor of 1
  EXPECT_DOUBLE_EQ(s.transfer_cost(10.0, 0), 0.0);
}

TEST(MachineSpec, AccessFnMatchesDefinition) {
  MachineSpec s{2, 256, 1, 4};
  auto f = s.access_fn();
  // f(x) = (x/m)^(1/d) = sqrt(x/4).
  EXPECT_DOUBLE_EQ(f(400), 10.0);
}

TEST(Topology, LinearArrayNeighbors) {
  LinearArray la(5);
  std::vector<NodeId> nb;
  EXPECT_EQ(la.neighbors(0, nb), 1);
  EXPECT_EQ(nb.back(), 1);
  nb.clear();
  EXPECT_EQ(la.neighbors(2, nb), 2);
  nb.clear();
  EXPECT_EQ(la.neighbors(4, nb), 1);
  EXPECT_EQ(nb.back(), 3);
}

TEST(Topology, Mesh2DNeighborsAndDistance) {
  Mesh2D mesh(4);
  EXPECT_EQ(mesh.num_nodes(), 16);
  std::vector<NodeId> nb;
  EXPECT_EQ(mesh.neighbors(mesh.id(0, 0), nb), 2);
  nb.clear();
  EXPECT_EQ(mesh.neighbors(mesh.id(1, 1), nb), 4);
  nb.clear();
  EXPECT_EQ(mesh.neighbors(mesh.id(3, 3), nb), 2);
  EXPECT_DOUBLE_EQ(mesh.distance(mesh.id(0, 0), mesh.id(3, 2)), 3.0);
}

TEST(Topology, Mesh3DNeighbors) {
  Mesh3D mesh(3);
  EXPECT_EQ(mesh.num_nodes(), 27);
  std::vector<NodeId> nb;
  EXPECT_EQ(mesh.neighbors(mesh.id(1, 1, 1), nb), 6);
  nb.clear();
  EXPECT_EQ(mesh.neighbors(mesh.id(0, 0, 0), nb), 3);
}

TEST(ProcClocks, AdvanceAndBarrier) {
  ProcClocks c(3);
  c.advance(0, 5.0);
  c.advance(1, 2.0);
  EXPECT_DOUBLE_EQ(c.makespan(), 5.0);
  c.barrier();
  EXPECT_DOUBLE_EQ(c.clock(2), 5.0);
  EXPECT_DOUBLE_EQ(c.busy_total(), 7.0);
}

TEST(ProcClocks, Utilization) {
  ProcClocks c(2);
  c.advance(0, 10.0);
  c.advance(1, 10.0);
  EXPECT_DOUBLE_EQ(c.utilization(), 1.0);
  c.advance(0, 10.0);
  EXPECT_NEAR(c.utilization(), 0.75, 1e-12);
}

TEST(ProcClocks, RejectsBadUse) {
  ProcClocks c(2);
  EXPECT_THROW(c.advance(2, 1.0), bsmp::precondition_error);
  EXPECT_THROW(c.advance(0, -1.0), bsmp::precondition_error);
}
