// Emitters E6–E10: the A(s) ablation, the d=2/d=3 theorems, the
// figure-geometry tables, and the baselines/extensions — plus E10e,
// which re-costs one cached Prop-2 plan under several memory regimes
// (the kSchedule PlanCache family's consumer).
#include <cmath>
#include <sstream>

#include "analytic/fit.hpp"
#include "core/logmath.hpp"
#include "engine/plans.hpp"
#include "geom/figures.hpp"
#include "geom/tiling.hpp"
#include "machine/layout.hpp"
#include "machine/rearrange.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "tables/detail.hpp"
#include "workload/rules.hpp"

namespace bsmp::tables {

using detail::pick_s;
using detail::require_equivalent;
using detail::spec;
using detail::sweep_rows;
using detail::sweep_values;
using detail::Row;

// ---------------------------------------------------------------------
// E6 — ablation of the strip width s (Section 4.2's optimization).
//
// The paper minimizes A(s), a sum of three mechanisms whose big-O
// constants it drops. We fit the three coefficients by relative least
// squares across the s sweep and compare the fitted argmin with the
// measured one. The fit is a whole-sweep computation, so the sweep
// returns raw measurements and the fit runs sequentially afterwards.
//
// Two emitters share the machinery: "e6" samples powers of two at
// n=256 (the original ablation), "e6d" sweeps *every* feasible
// integer s at n=128 — the dense sweep is cheap because all points of
// one m share a single PlanCache-built guest and reference run.
// ---------------------------------------------------------------------

namespace {

/// One measured A(s) point: the analytic mechanism terms at s and the
/// measured locality factor y = slowdown / (n/p).
struct E6Meas {
  std::array<double, 3> terms;
  double y;
};

/// The whole-sweep fit: relative least squares over the measurements
/// plus the measured and fitted argmin indices.
struct E6Fit {
  std::array<double, 3> c{};
  double mre = 0;  // mean relative error of the fitted curve
  std::size_t argmin_meas = 0, argmin_fit = 0;

  double fitted(const E6Meas& r) const {
    return c[0] * r.terms[0] + c[1] * r.terms[1] + c[2] * r.terms[2];
  }
};

/// Measure A(s) at every s in `svals` through the engine: guest and
/// reference run are built once per (n, m) in the PlanCache and shared
/// by all strip widths.
std::vector<E6Meas> e6_measure(EngineCtx& ctx, std::int64_t n, std::int64_t p,
                               std::int64_t m,
                               const std::vector<std::int64_t>& svals,
                               std::string label) {
  return sweep_values<E6Meas>(
      ctx, svals,
      [&](std::int64_t s, engine::SweepContext& c) -> E6Meas {
        auto ref = cached_reference<1>(*c.plans, {n}, n, m, 9);
        auto g = cached_mix_guest<1>(*c.plans, {n}, n, m, 9);
        sim::MultiprocConfig cfg;
        cfg.s = s;
        auto res = sim::simulate_multiproc<1>(*g, spec(1, n, p, m), cfg);
        require_equivalent<1>(res, *ref, "sstar ablation");
        auto terms =
            analytic::A_terms((double)n, (double)m, (double)p, (double)s);
        return {{terms.relocation, terms.execution, terms.communication},
                res.slowdown() / ((double)n / (double)p)};
      },
      std::move(label));
}

E6Fit e6_fit(const std::vector<E6Meas>& meas) {
  // Relative least squares (rows scaled by 1/y) so every point on
  // the sweep carries equal weight regardless of magnitude.
  std::vector<std::array<double, 3>> xs_rel;
  std::vector<double> ys_rel(meas.size(), 1.0);
  for (const auto& r : meas) {
    auto row = r.terms;
    for (double& v : row) v /= r.y;
    xs_rel.push_back(row);
  }
  E6Fit f;
  f.c = analytic::fit_least_squares<3>(xs_rel, ys_rel);
  for (const auto& r : meas) f.mre += std::fabs(f.fitted(r) - r.y) / r.y;
  f.mre /= static_cast<double>(meas.size());
  for (std::size_t i = 1; i < meas.size(); ++i) {
    if (meas[i].y < meas[f.argmin_meas].y) f.argmin_meas = i;
    if (f.fitted(meas[i]) < f.fitted(meas[f.argmin_fit])) f.argmin_fit = i;
  }
  return f;
}

}  // namespace

std::vector<Emitted> e6_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  std::int64_t n = 256, p = 4;
  for (std::int64_t m : {1, 8, 64}) {
    auto range = analytic::classify_range(1, n, m, p);
    core::Table t("E6: A(s) ablation — n=256, p=4, m=" + std::to_string(m) +
                      "  [" + analytic::to_string(range) + "]",
                  {"s", "A(s) analytic", "Tp/Tn measured", "fitted", "note"});
    double star = analytic::s_star((double)n, (double)m, (double)p);

    std::vector<std::int64_t> svals;
    for (std::int64_t s = 1; s * p <= n; s *= 2) svals.push_back(s);
    auto meas =
        e6_measure(ctx, n, p, m, svals, "e6 m=" + std::to_string(m));
    auto fit = e6_fit(meas);

    for (std::size_t i = 0; i < meas.size(); ++i) {
      double s = (double)svals[i];
      std::string note;
      if (s <= star && star < 2 * s) note += "paper s*; ";
      if (i == fit.argmin_meas) note += "measured min; ";
      if (i == fit.argmin_fit) note += "fit min";
      t.add_row({(long long)svals[i],
                 analytic::A_of_s((double)n, (double)m, (double)p, s),
                 meas[i].y * ((double)n / (double)p),
                 fit.fitted(meas[i]) * ((double)n / (double)p), note});
    }
    std::ostringstream note;
    note << "# mechanism constants (fit): relocation=" << fit.c[0]
         << " execution=" << fit.c[1] << " communication=" << fit.c[2]
         << "  mean-relative-error=" << fit.mre << "\n";
    if (m == 64)
      note << "\n# Expected: small relative error — the measured curve is "
              "the\n# three-mechanism combination the paper optimizes; with "
              "the\n# fitted (implementation) constants the optimum shifts "
              "to\n# smaller s than the constant-free s*, as Section 4.2's\n"
              "# analysis predicts it would for any concrete machine.\n";
    out.push_back({std::move(t), note.str()});
  }
  return out;
}

std::vector<Emitted> e6_dense_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  std::int64_t n = 128, p = 4;
  const std::int64_t smax = n / p;
  std::vector<std::int64_t> svals;
  for (std::int64_t s = 1; s <= smax; ++s) svals.push_back(s);

  core::Table summary(
      "E6d fit summary — n=128, p=4, every integer s in [1, " +
          std::to_string(smax) + "]",
      {"m", "range", "c_reloc", "c_exec", "c_comm", "mean rel err",
       "paper s*", "argmin s (meas)", "argmin s (fit)", "verdict"});

  for (std::int64_t m : {1, 8, 64}) {
    auto range = analytic::classify_range(1, n, m, p);
    double star = analytic::s_star((double)n, (double)m, (double)p);
    auto meas =
        e6_measure(ctx, n, p, m, svals, "e6d m=" + std::to_string(m));
    auto fit = e6_fit(meas);

    core::Table t("E6d: dense A(s) ablation — n=128, p=4, m=" +
                      std::to_string(m) + "  [" + analytic::to_string(range) +
                      "]",
                  {"s", "A(s) analytic", "Tp/Tn measured", "fitted", "note"});
    for (std::size_t i = 0; i < meas.size(); ++i) {
      double s = (double)svals[i];
      std::string note;
      // Dense grid: s* falls on (or right of) exactly one integer s.
      if (s <= star && star < s + 1) note += "paper s*; ";
      if (i == fit.argmin_meas) note += "measured min; ";
      if (i == fit.argmin_fit) note += "fit min";
      t.add_row({(long long)svals[i],
                 analytic::A_of_s((double)n, (double)m, (double)p, s),
                 meas[i].y * ((double)n / (double)p),
                 fit.fitted(meas[i]) * ((double)n / (double)p), note});
    }
    std::ostringstream note;
    note << "# mechanism constants (dense fit): relocation=" << fit.c[0]
         << " execution=" << fit.c[1] << " communication=" << fit.c[2]
         << "  mean-relative-error=" << fit.mre << "\n";
    out.push_back({std::move(t), note.str()});

    std::size_t gap = fit.argmin_meas > fit.argmin_fit
                          ? fit.argmin_meas - fit.argmin_fit
                          : fit.argmin_fit - fit.argmin_meas;
    summary.add_row({(long long)m, std::string(analytic::to_string(range)),
                     fit.c[0], fit.c[1], fit.c[2], fit.mre, star,
                     (long long)svals[fit.argmin_meas],
                     (long long)svals[fit.argmin_fit],
                     std::string(gap == 0     ? "agree"
                                 : gap <= 1   ? "adjacent"
                                              : "differ")});
  }
  out.push_back(
      {std::move(summary),
       "# The dense (every-s) sweep tightens the powers-of-two fit: the\n"
       "# measured argmin and the fitted argmin are resolved to the exact\n"
       "# integer strip width, and the constant-free paper s* can be\n"
       "# compared against both. All points of one m share a single\n"
       "# PlanCache-built guest + reference run, so densifying the grid\n"
       "# costs only the per-point simulations, never a rebuild.\n"});
  return out;
}

// ---------------------------------------------------------------------
// E7 — Theorem 5: D&C uniprocessor at d=2 via the octahedron/
// tetrahedron separator in the three-dimensional space-time lattice.
// ---------------------------------------------------------------------

std::vector<Emitted> e7_tables(EngineCtx& ctx) {
  core::Table t("E7: Theorem 5 — D&C uniprocessor, d=2, m=1",
                {"n", "side", "T1/Tn (D&C)", "n*logn bound", "ratio",
                 "naive T1/Tn", "D&C gain"});
  std::vector<std::int64_t> sides{8, 16, 32, 48};
  auto rows = sweep_rows(ctx, sides, [](std::int64_t side,
                                        engine::SweepContext& c) -> Row {
    std::int64_t n = side * side;
    // One simulation cycle covers sqrt(n) steps (Theorem 5's proof).
    auto ref = cached_reference<2>(*c.plans, {side, side}, side, 1, 10);
    auto g = cached_mix_guest<2>(*c.plans, {side, side}, side, 1, 10);
    auto dc = sim::simulate_dc_uniproc<2>(*g, spec(2, n, 1, 1));
    require_equivalent<2>(dc, *ref, "dc d=2");
    auto nv = sim::simulate_naive<2>(*g, spec(2, n, 1, 1));
    double bound = analytic::thm5_bound((double)n);
    return {(long long)n, (long long)side, dc.slowdown(), bound,
            dc.slowdown() / bound, nv.slowdown(),
            nv.slowdown() / dc.slowdown()};
  });
  for (auto& r : rows) t.add_row(std::move(r));
  return {{std::move(t),
           "# Expected: ratio flat (Θ(n log n)); naive is Θ(n^{3/2}),\n"
           "# so the gain grows like sqrt(n)/log n.\n"}};
}

// ---------------------------------------------------------------------
// E8 — Theorem 1 at d=2: the multiprocessor mesh simulation.
// ---------------------------------------------------------------------

std::vector<Emitted> e8_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  {
    std::int64_t side = 16, n = side * side;
    core::Table t("E8a: Theorem 1 (d=2) — m sweep, n=256, p=4",
                  {"m", "range", "Tp/Tn", "bound (n/p)A", "ratio", "util"});
    std::vector<std::int64_t> ms{1, 2, 4, 8, 16};
    auto rows = sweep_rows(ctx, ms, [&](std::int64_t m,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<2>(*c.plans, {side, side}, side, m, 11);
      auto g = cached_mix_guest<2>(*c.plans, {side, side}, side, m, 11);
      sim::MultiprocConfig cfg;
      cfg.s = 4;  // sqrt(n/p) = sqrt(64) = 8 strips of width 4 per dim
      auto res = sim::simulate_multiproc<2>(*g, spec(2, n, 4, m), cfg);
      require_equivalent<2>(res, *ref, "multiproc d=2 m-sweep");
      double bound = analytic::slowdown_bound(2, (double)n, (double)m, 4.0);
      return {(long long)m,
              std::string(
                  analytic::to_string(analytic::classify_range(2, n, m, 4))),
              res.slowdown(), bound, res.slowdown() / bound,
              res.utilization};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t), ""});
  }
  {
    std::int64_t side = 16, n = side * side, m = 2;
    core::Table t("E8b: Theorem 1 (d=2) — p sweep, n=256, m=2",
                  {"p", "Tp/Tn", "bound", "ratio", "Brent n/p"});
    std::vector<std::int64_t> ps{1, 4, 16};
    auto rows = sweep_rows(ctx, ps, [&](std::int64_t p,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<2>(*c.plans, {side, side}, side, m, 12);
      auto g = cached_mix_guest<2>(*c.plans, {side, side}, side, m, 12);
      sim::MultiprocConfig cfg;
      cfg.s = std::max<std::int64_t>(
          1, side / (2 * std::max<std::int64_t>(
                             1, (std::int64_t)std::sqrt((double)p))));
      auto res = sim::simulate_multiproc<2>(*g, spec(2, n, p, m), cfg);
      require_equivalent<2>(res, *ref, "multiproc d=2 p-sweep");
      double bound =
          analytic::slowdown_bound(2, (double)n, (double)m, (double)p);
      return {(long long)p, res.slowdown(), bound, res.slowdown() / bound,
              (double)n / (double)p};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# d=2 scheme is ours (paper defers details to [BP95a]);\n"
                   "# the measured/bound ratio staying Θ(1) validates it.\n"});
  }
  return out;
}

// ---------------------------------------------------------------------
// E9 — the paper's decomposition geometry (Figures 1-4) and the
// Section-4.2 rearrangement. All deterministic enumeration; only the
// Fig2b distance sweep is heavy enough to shard.
// ---------------------------------------------------------------------

std::vector<Emitted> e9_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  {
    geom::Stencil<1> st{{32}, 32, 1};
    auto parts = geom::fig1_partition(&st);
    core::Table t("E9/Fig1: ordered partition of V = [0,32) x [0,32), d=1",
                  {"piece", "|Ui|", "|Γin(Ui)|", "width"});
    std::int64_t total = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      total += parts[i].count();
      t.add_row({std::string("U") + std::to_string(i + 1),
                 (long long)parts[i].count(),
                 (long long)parts[i].preboundary().size(),
                 (long long)parts[i].width()});
    }
    std::ostringstream note;
    note << "# pieces: " << parts.size() << ", total |V| = " << total
         << " (= 32*32 = 1024): U3 is the full diamond D(n).\n";
    out.push_back({std::move(t), note.str()});
  }
  {
    geom::Stencil<2> st{{32, 32}, 32, 1};
    auto p = geom::make_octahedron(&st, 8, -8, 8, -8, 16);
    auto kids = p.split();
    core::Table t("E9/Fig3a: recursive decomposition of the octahedron P",
                  {"child", "class", "|Ui|", "|Ui|/|P|"});
    for (std::size_t i = 0; i < kids.size(); ++i)
      t.add_row({(long long)(i + 1),
                 geom::to_string(geom::classify_d2(kids[i])),
                 (long long)kids[i].count(),
                 (double)kids[i].count() / (double)p.count()});
    std::ostringstream note;
    note << "# " << kids.size()
         << " children (paper: 14 = 6 P + 8 W; |P/2|/|P| ~ 1/8, "
            "|W/2|/|P| ~ 1/32)\n";
    out.push_back({std::move(t), note.str()});

    auto w = geom::make_tetrahedron(&st, 16, -8, 8, -16, 16);
    auto wkids = w.split();
    core::Table t2("E9/Fig3b: recursive decomposition of the tetrahedron W",
                   {"child", "class", "|Ui|", "|Ui|/|W|"});
    for (std::size_t i = 0; i < wkids.size(); ++i)
      t2.add_row({(long long)(i + 1),
                  geom::to_string(geom::classify_d2(wkids[i])),
                  (long long)wkids[i].count(),
                  (double)wkids[i].count() / (double)w.count()});
    std::ostringstream note2;
    note2 << "# " << wkids.size()
          << " children (paper: 5 = 1 P + 4 W; ratios 1/2 and 1/8)\n";
    out.push_back({std::move(t2), note2.str()});
  }
  {
    geom::Stencil<2> st{{16, 16}, 16, 1};
    geom::TileGrid<2> grid(&st, 16);
    auto waves = grid.wavefronts();
    core::Table t("E9/Fig4: cover of the d=2 volume V by width-sqrt(n) "
                  "octahedra/tetrahedra (regular-tiling equivalent)",
                  {"wavefront", "tiles", "points"});
    std::int64_t total = 0, tiles = 0;
    for (std::size_t k = 0; k < waves.size(); ++k) {
      std::int64_t pts = 0;
      for (const auto& tile : waves[k]) pts += tile.count();
      total += pts;
      tiles += (std::int64_t)waves[k].size();
      t.add_row({(long long)k, (long long)waves[k].size(), (long long)pts});
    }
    std::ostringstream note;
    note << "# " << tiles << " full/truncated pieces covering |V| = " << total
         << " (= 16*16*16 = 4096)\n";
    out.push_back({std::move(t), note.str()});
  }
  {
    std::int64_t q = 32, p = 4;
    auto pos = machine::rearrangement(q, p);
    core::Table t("E9/Fig2: rearranged strip layout (q=32 strips, p=4)",
                  {"original strip", "rearranged position", "owner proc"});
    for (std::int64_t s = 0; s < q; s += 4)
      t.add_row(
          {(long long)s, (long long)pos[s], (long long)(pos[s] / (q / p))});
    out.push_back({std::move(t),
                   "# consecutive strips land consecutive or q/p apart — "
                   "the\n# zig-zag bands of Figure 2.\n"});
  }
  {
    // Section 4.2's distance claim, measured on the address map: the
    // per-processor transfer distance for a width-span window under
    // the rearrangement vs the identity layout's global diameter.
    std::int64_t q = 64, p = 8;
    core::Table t("E9/Fig2b: transfer distances, identity vs rearranged "
                  "(q=64 strips, p=8)",
                  {"window span", "identity (global)",
                   "rearranged (per-proc)", "reduction"});
    std::vector<std::int64_t> spans{8, 16, 32, 64};
    auto rows = sweep_rows(ctx, spans, [&](std::int64_t span,
                                           engine::SweepContext&) -> Row {
      auto ident = machine::StripLayout::identity(q, p, 1);
      auto rear = machine::StripLayout::rearranged(q, p, 1);
      std::int64_t di = ident.global_window_diameter(span);
      std::int64_t dr = rear.per_proc_window_diameter(span);
      return {(long long)span, (long long)di, (long long)dr,
              (double)di / (double)std::max<std::int64_t>(1, dr)};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# \"the distances at which transfers occur are reduced\n"
                   "# by a factor p\" — measured ~p for every window span.\n"});
  }
  return out;
}

// ---------------------------------------------------------------------
// E10 — the comparison baselines and Section-6 extensions, plus E10e:
// one cached Prop-2 plan re-costed under several memory regimes.
// ---------------------------------------------------------------------

std::vector<Emitted> e10_tables(EngineCtx& ctx) {
  std::vector<Emitted> out;
  {
    std::int64_t n = 256;
    core::Table t("E10a: instantaneous model (Brent) vs bounded speed, d=1",
                  {"p", "instantaneous Tp/Tn", "n/p", "bounded-speed naive",
                   "bounded/instant"});
    std::vector<std::int64_t> ps{1, 4, 16, 64};
    auto rows = sweep_rows(ctx, ps, [&](std::int64_t p,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, 16, 1, 13);
      auto g = cached_mix_guest<1>(*c.plans, {n}, 16, 1, 13);
      sim::NaiveConfig inst;
      inst.instantaneous = true;
      auto ri = sim::simulate_naive<1>(*g, spec(1, n, p, 1), inst);
      require_equivalent<1>(ri, *ref, "instantaneous");
      auto rb = sim::simulate_naive<1>(*g, spec(1, n, p, 1));
      return {(long long)p, ri.slowdown(), (double)n / (double)p,
              rb.slowdown(), rb.slowdown() / ri.slowdown()};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# instantaneous slowdown tracks n/p exactly (Brent);\n"
                   "# bounded speed pays an extra locality factor.\n"});
  }
  {
    std::int64_t n = 256;
    core::Table t("E10b: pipelined memory kills the locality slowdown",
                  {"p", "pipelined Tp/Tn", "n/p", "plain Tp/Tn",
                   "locality factor removed"});
    std::vector<std::int64_t> ps{1, 4, 16};
    auto rows = sweep_rows(ctx, ps, [&](std::int64_t p,
                                        engine::SweepContext& c) -> Row {
      auto ref = cached_reference<1>(*c.plans, {n}, 16, 1, 14);
      auto g = cached_mix_guest<1>(*c.plans, {n}, 16, 1, 14);
      sim::NaiveConfig piped;
      piped.pipelined = true;
      auto rp = sim::simulate_naive<1>(*g, spec(1, n, p, 1), piped);
      require_equivalent<1>(rp, *ref, "pipelined");
      auto rn = sim::simulate_naive<1>(*g, spec(1, n, p, 1));
      return {(long long)p, rp.slowdown(), (double)n / (double)p,
              rn.slowdown(), rn.slowdown() / rp.slowdown()};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back(
        {std::move(t),
         "# pipelined slowdown ~ n/p (no locality term) — but the\n"
         "# paper notes the pipelining hardware itself scales with\n"
         "# n, making the machine as costly as p = n.\n"});
  }
  {
    core::Table t("E10c: d=3 conjecture — D&C uniprocessor, m=1",
                  {"n", "side", "T1/Tn (D&C)", "n*logn", "ratio",
                   "naive n^{4/3}"});
    std::vector<std::int64_t> sides{4, 6, 8, 10};
    auto rows = sweep_rows(ctx, sides, [](std::int64_t side,
                                          engine::SweepContext& c) -> Row {
      std::int64_t n = side * side * side;
      auto ref =
          cached_reference<3>(*c.plans, {side, side, side}, side, 1, 15);
      auto g = cached_mix_guest<3>(*c.plans, {side, side, side}, side, 1, 15);
      auto dc = sim::simulate_dc_uniproc<3>(*g, spec(3, n, 1, 1));
      require_equivalent<3>(dc, *ref, "dc d=3");
      double bound = (double)n * core::logbar((double)n);
      return {(long long)n, (long long)side, dc.slowdown(), bound,
              dc.slowdown() / bound, std::pow((double)n, 4.0 / 3.0)};
    });
    for (auto& r : rows) t.add_row(std::move(r));
    out.push_back({std::move(t),
                   "# Section 6 conjectures Theorem 1 extends to d=3; the\n"
                   "# six-coordinate box separator indeed achieves\n"
                   "# Θ(n log n) here.\n"});
  }
  {
    // Section 6, last paragraph: if the guest algorithm actually needs
    // only m' < m cells per node, the denser technology yields more
    // locality. The base (m = m') row is needed by every other row's
    // ratio, so the sweep returns raw slowdowns.
    core::Table t("E10d: heterogeneous memory — guest m'=4, technology m "
                  "sweep (d=1, p=1, n=128)",
                  {"m", "T1/Tn", "vs m=m'"});
    std::int64_t n = 128, guest_m = 4;
    std::vector<std::int64_t> ms{4, 8, 16, 64, 256};
    auto slows = sweep_values<double>(
        ctx, ms, [&](std::int64_t m, engine::SweepContext& c) -> double {
          auto ref = cached_reference<1>(*c.plans, {n}, n, guest_m, 16);
          auto g = cached_mix_guest<1>(*c.plans, {n}, n, guest_m, 16);
          auto res = sim::simulate_dc_uniproc<1>(*g, spec(1, n, 1, m));
          require_equivalent<1>(res, *ref, "heterogeneous m");
          return res.slowdown();
        });
    double base = slows.empty() ? 1.0 : slows[0];
    for (std::size_t i = 0; i < ms.size(); ++i)
      t.add_row({(long long)ms[i], slows[i], slows[i] / base});
    out.push_back({std::move(t),
                   "# denser memory, same data: \"more locality will\n"
                   "# result\" — the slowdown drops monotonically.\n"});
  }
  {
    // E10e: one plan, many memory regimes. The Schedule IR makes "what
    // would this exact schedule cost on machine X" a pure function of
    // the plan, so the sweep builds the plan once through the
    // kSchedule cache family and re-costs it per regime.
    geom::Stencil<1> st{{64}, 64, 1};
    sched::PlannerConfig<1> cfg;
    cfg.tile_width = 16;
    cfg.leaf_width = 4;
    core::Table t("E10e: one cached plan costed under several memory "
                  "regimes (n=64, tile=16, leaf=4)",
                  {"regime", "virtual time", "vs unit RAM"});
    struct Regime {
      const char* name;
      hram::AccessFn f;
      bool pipelined;
    };
    std::vector<Regime> regimes{
        {"unit RAM (instantaneous)", hram::AccessFn::unit(), false},
        {"hierarchical m=1", hram::AccessFn::hierarchical(1, 1.0), false},
        {"hierarchical m=8", hram::AccessFn::hierarchical(1, 8.0), false},
        {"hierarchical m=64", hram::AccessFn::hierarchical(1, 64.0), false},
        {"hierarchical m=1, pipelined", hram::AccessFn::hierarchical(1, 1.0),
         true},
    };
    auto costs = sweep_values<double>(
        ctx, regimes, [&](const Regime& r, engine::SweepContext& c) {
          auto plan = engine::cached_plan<1>(*c.plans, st, cfg);
          return static_cast<double>(plan->cost_under(st, r.f, r.pipelined));
        });
    double unit = costs.empty() ? 1.0 : costs[0];
    for (std::size_t i = 0; i < regimes.size(); ++i)
      t.add_row({std::string(regimes[i].name), costs[i], costs[i] / unit});
    out.push_back(
        {std::move(t),
         "# the plan is built once (one kSchedule cache miss) and\n"
         "# re-costed per regime — pipelining collapses the copy cost\n"
         "# back toward the unit-RAM floor, Section 6's observation.\n"});
  }
  return out;
}

}  // namespace bsmp::tables
