// Machine specification Md(n, p, m) — Definition 2 of the paper.
//
// A d-dimensional near-neighbor interconnection of p nodes; each node
// is an (x/m)^(1/d)-H-RAM with nm/p memory cells; near neighbors are at
// geometric distance (n/p)^(1/d). `n` is the machine's d-dimensional
// volume (so Md(n, n, m) has one processor per unit of volume) and
// `n*m` its total memory.
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "hram/access_fn.hpp"

namespace bsmp::machine {

struct MachineSpec {
  int d = 1;            ///< dimension, 1..3
  std::int64_t n = 1;   ///< d-dimensional volume (guest node count at p=n)
  std::int64_t p = 1;   ///< number of processors, 1 <= p <= n
  std::int64_t m = 1;   ///< memory cells per unit of volume

  /// Validates the parameter ranges and divisibility assumptions the
  /// simulators rely on (p divides n; for d=2, n and p perfect squares).
  void validate() const;

  /// Memory cells in one node's private H-RAM: n*m/p.
  std::int64_t node_memory() const { return n * m / p; }

  /// Total memory n*m.
  std::int64_t total_memory() const { return n * m; }

  /// Geometric distance between near-neighbor processors: (n/p)^(1/d).
  core::Cost link_length() const;

  /// Guest nodes simulated per host processor (when simulating
  /// Md(n,n,m) on this machine): n/p.
  std::int64_t span() const { return n / p; }

  /// Side of the processor grid for d=2 (sqrt(p)); p for d=1.
  std::int64_t proc_side() const;

  /// Side of the guest node grid for d=2 (sqrt(n)); n for d=1.
  std::int64_t node_side() const;

  /// The access function of each node's private H-RAM.
  hram::AccessFn access_fn() const;

  /// Cost of sending `words` words over geometric distance `dist`
  /// under bounded-speed propagation (set-up time negligible,
  /// transmission time proportional to distance; Section 6).
  core::Cost transfer_cost(core::Cost dist, std::int64_t words) const;
};

/// The instantaneous-model twin: same shape, but unit access cost and
/// unit link cost — the model in which Brent's Principle is tight.
struct InstantaneousSpec {
  MachineSpec base;
  hram::AccessFn access_fn() const { return hram::AccessFn::unit(); }
  core::Cost transfer_cost(std::int64_t words) const {
    return static_cast<core::Cost>(words);
  }
};

}  // namespace bsmp::machine
