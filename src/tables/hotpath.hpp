// The hot-path perf artifact ("hot" in the emitter registry): run the
// full space-time volume of a guest through the topological-separator
// executor twice in the same process —
//
//   * dense:   the flat-staging executor of sep/executor.hpp with a
//              StagingStore<D> (O(1) window addressing, count-based
//              charging, batched leaf charges);
//   * hashmap: HashMapExecutor below, a line-for-line retention of the
//              pre-flat-staging executor (hash-map staging for every
//              value including the leaf interior, materialized
//              preboundary/out-set vectors at every recursion level,
//              two ledger charges per vertex) — the measured baseline.
//
// Both are driven through the same tile wavefronts as
// sim::simulate_dc_uniproc, and both must agree exactly on vertices,
// charged totals, peak staging, and every final value (asserted by the
// emitter) — only the wall clock may differ. The deterministic fields
// go into the emitted table; the timings go to engine::Metrics and
// are serialized as metrics_hot.json / BENCH_exec_hotpath.json.
#pragma once

#include <chrono>
#include <vector>

#include "core/cost.hpp"
#include "core/expect.hpp"
#include "geom/tiling.hpp"
#include "sep/executor.hpp"
#include "sep/guest.hpp"
#include "sep/staging.hpp"
#include "sim/dc_uniproc.hpp"

namespace bsmp::tables::hotpath {

/// What one full-volume execution reports. The wall clock is the only
/// field allowed to differ between the dense and hashmap runs.
struct ExecStats {
  std::int64_t vertices = 0;
  double seconds = 0;
  std::size_t peak_staging_words = 0;
  std::size_t staging_allocs = 0;     ///< dense level slabs; 0 for hashmap
  core::Cost total_cost = 0;          ///< ledger total (all cost kinds)
  double vertices_per_sec() const {
    return seconds > 0 ? static_cast<double>(vertices) / seconds : 0.0;
  }
};

/// The pre-flat-staging executor, kept verbatim as the baseline the
/// "hot" artifact measures against: ValueMap staging throughout (the
/// leaf interior lives in a per-leaf hash map), preboundary/out-set
/// point vectors materialized at every recursion level, and one
/// kCompute plus one kLocalAccess charge per vertex. Its charges are
/// bit-identical to sep::Executor's batched ones by construction.
template <int D>
class HashMapExecutor {
 public:
  HashMapExecutor(const sep::Guest<D>* guest, sep::ExecutorConfig cfg)
      : guest_(guest), cfg_(cfg) {
    BSMP_REQUIRE(guest != nullptr);
    BSMP_REQUIRE(cfg_.leaf_width >= 1);
  }

  void set_ledger(core::CostLedger* ledger) { ledger_ = ledger; }

  double space_bound(std::int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<std::int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  double leaf_space_bound(std::int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<std::int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.leaf_space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  std::vector<geom::Point<D>> execute(const geom::Region<D>& U,
                                      sep::ValueMap<D>& staging) {
    BSMP_REQUIRE(ledger_ != nullptr);
    std::vector<geom::Point<D>> out;
    if (U.width() <= cfg_.leaf_width) {
      execute_leaf(U, staging, out);
      note_staging(staging);
      return out;
    }

    const core::Cost fS =
        cfg_.f(static_cast<std::uint64_t>(space_bound(U.width())));
    std::vector<geom::Point<D>> produced;
    for (const geom::Region<D>& child : U.split()) {
      std::vector<geom::Point<D>> gin = child.preboundary();
      for (const auto& q : gin) {
        BSMP_ASSERT_MSG(staging.contains(q),
                        "preboundary value missing: topological partition "
                        "violated at width "
                            << U.width());
      }
      ledger_->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(gin.size()),
                      gin.size());
      std::vector<geom::Point<D>> child_out = execute(child, staging);
      ledger_->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(child_out.size()),
                      child_out.size());
      produced.insert(produced.end(), child_out.begin(), child_out.end());
    }

    out = U.outset();
    sep::ValueMap<D> keep;
    keep.reserve(out.size() * 2);
    for (const auto& q : out) keep.emplace(q, 0);
    for (const auto& q : produced) {
      if (!keep.contains(q)) staging.erase(q);
    }
    note_staging(staging);
    return out;
  }

  std::int64_t vertices_executed() const { return vertices_; }
  std::size_t peak_staging() const { return peak_staging_; }

 private:
  void note_staging(const sep::ValueMap<D>& staging) {
    if (staging.size() > peak_staging_) peak_staging_ = staging.size();
  }

  void execute_leaf(const geom::Region<D>& U, sep::ValueMap<D>& staging,
                    std::vector<geom::Point<D>>& out) {
    const geom::Stencil<D>& st = guest_->stencil;
    const core::Cost f_leaf =
        cfg_.f(static_cast<std::uint64_t>(leaf_space_bound(U.width())));
    sep::ValueMap<D> local;

    auto lookup = [&](const geom::Point<D>& q) -> sep::Word {
      auto it = local.find(q);
      if (it != local.end()) return it->second;
      auto is = staging.find(q);
      BSMP_ASSERT_MSG(is != staging.end(),
                      "operand missing at leaf: topological partition or "
                      "out-set computation is wrong");
      return is->second;
    };

    U.for_each([&](const geom::Point<D>& p) {
      sep::Word value;
      int operands = 0;
      if (p.t == 0) {
        value = guest_->input(p.x, 0);
        operands = 1;
      } else {
        sep::Word self_prev;
        if (p.t >= st.m) {
          geom::Point<D> q = p;
          q.t = p.t - st.m;
          self_prev = lookup(q);
        } else {
          self_prev = guest_->input(p.x, p.t % st.m);
        }
        sep::NeighborWords<D> nbrs{};
        for (int i = 0; i < D; ++i) {
          for (int s = 0; s < 2; ++s) {
            geom::Point<D> q = p;
            q.x[i] += (s == 0 ? -1 : 1);
            q.t = p.t - 1;
            if (st.in_space(q.x)) {
              nbrs[2 * i + s] = lookup(q);
              ++operands;
            }
          }
        }
        ++operands;
        value = guest_->rule(p, self_prev, nbrs);
      }
      local.emplace(p, value);
      ++vertices_;
      ledger_->charge(core::CostKind::kCompute, 1.0);
      ledger_->charge(core::CostKind::kLocalAccess,
                      static_cast<core::Cost>(operands + 1) * f_leaf,
                      static_cast<std::uint64_t>(operands + 1));
    });

    out = U.outset();
    for (const auto& q : out) {
      auto it = local.find(q);
      BSMP_ASSERT_MSG(it != local.end(), "out-set point not executed");
      staging.emplace(q, it->second);
    }
  }

  const sep::Guest<D>* guest_;
  sep::ExecutorConfig cfg_;
  core::CostLedger* ledger_ = nullptr;
  std::int64_t vertices_ = 0;
  std::size_t peak_staging_ = 0;
};

namespace detail {

template <int D, class V>
sep::ExecutorConfig exec_config(const sep::BasicGuest<D, V>& guest) {
  sep::ExecutorConfig ecfg;
  ecfg.leaf_width = guest.stencil.m;  // Theorem-3 executable diamonds
  ecfg.f = hram::AccessFn::unit();
  return ecfg;
}

/// Drive `exec` over the full space-time volume in the same tile
/// wavefronts sim::simulate_dc_uniproc uses, pruning staging between
/// wavefronts; returns the staging store for final-value comparison.
template <int D, class V, class Exec, class Store>
ExecStats drive(const sep::BasicGuest<D, V>& guest, Exec& exec,
                Store& staging) {
  const geom::Stencil<D>& st = guest.stencil;
  core::CostLedger ledger;
  exec.set_ledger(&ledger);

  geom::TileGrid<D> grid(&st, st.extent[0]);
  auto waves = grid.wavefronts();
  std::vector<std::int64_t> suffix_tmin(waves.size() + 1, st.horizon);
  for (std::size_t k = waves.size(); k-- > 0;) {
    std::int64_t mn = suffix_tmin[k + 1];
    for (const auto& tile : waves[k])
      mn = std::min(mn, tile.time_range().first);
    suffix_tmin[k] = mn;
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < waves.size(); ++k) {
    for (const auto& tile : waves[k]) exec.execute(tile, staging);
    sim::detail::prune_staging<D>(st, staging, suffix_tmin[k + 1]);
  }
  ExecStats s;
  s.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  s.vertices = exec.vertices_executed();
  s.peak_staging_words = exec.peak_staging();
  s.staging_allocs = sep::store_level_allocs(staging);
  s.total_cost = ledger.total();
  return s;
}

}  // namespace detail

/// Full-volume run through the flat-staging executor + StagingStore,
/// generic over the guest value type (Word or sep::LaneBatch).
template <int D, class V>
ExecStats run_dense(const sep::BasicGuest<D, V>& guest,
                    sep::StagingStore<D, V>& staging) {
  sep::Executor<D, V> exec(&guest, detail::exec_config(guest));
  return detail::drive(guest, exec, staging);
}

/// Full-volume run through the retained hash-map baseline.
template <int D>
ExecStats run_hashmap(const sep::Guest<D>& guest, sep::ValueMap<D>& staging) {
  HashMapExecutor<D> exec(&guest, detail::exec_config(guest));
  return detail::drive(guest, exec, staging);
}

namespace detail {

/// Adapter giving Executor::execute_with_rule the `execute(tile,
/// staging)` shape drive() expects, with a concrete kernel functor in
/// place of the guest's type-erased rule. When the kernel satisfies
/// sep::simd::RowKernel this is the SIMD leaf path; either way it
/// skips the per-vertex std::function dispatch.
template <int D, class Kernel>
struct KernelExec {
  sep::Executor<D, sep::Word> exec;
  Kernel kernel;

  void set_ledger(core::CostLedger* ledger) { exec.set_ledger(ledger); }
  void execute(const geom::Region<D>& U, sep::StagingStore<D>& staging) {
    exec.execute_with_rule(U, staging, kernel);
  }
  std::int64_t vertices_executed() const { return exec.vertices_executed(); }
  std::size_t peak_staging() const { return exec.peak_staging(); }
};

}  // namespace detail

/// Full-volume run through the flat-staging executor with a concrete
/// kernel functor (workload::MixKernel and friends) instead of the
/// guest's std::function rule. The kernel must compute exactly
/// guest.rule — charges and values are asserted equal to run_dense by
/// the "hot" emitter. With a RowKernel and sep::simd::enabled(), leaf
/// interiors run vectorized (doc/PERF.md "The SIMD leaf kernel").
template <int D, class Kernel>
ExecStats run_dense_kernel(const sep::Guest<D>& guest,
                           sep::StagingStore<D>& staging, Kernel kernel) {
  detail::KernelExec<D, Kernel> exec{
      sep::Executor<D, sep::Word>(&guest, detail::exec_config(guest)),
      kernel};
  return detail::drive(guest, exec, staging);
}

}  // namespace bsmp::tables::hotpath
