# Empty dependencies file for test_parallel_sched.
# This may be replaced when dependencies are built.
