// Memory access-cost functions.
//
// Definition 1 of the paper: an f(x)-H-RAM is a random access machine
// where an access to address x takes time f(x). The paper's machines
// use f(x) = (x/m)^(1/d), where m is the number of memory cells that
// fit in a d-dimensional cube of unit side. Because one time unit is
// the cost of an instruction on the lowest address, we clamp every
// access cost from below at 1 (an instruction can never be faster than
// the unit instruction).
//
// We also provide the uniform-cost RAM (the "instantaneous model" used
// as the Brent baseline) and a generic power law a*x^alpha (the form
// assumed by Proposition 3).
#pragma once

#include <cstdint>

#include "core/cost.hpp"

namespace bsmp::hram {

class AccessFn {
 public:
  /// Uniform cost: f(x) = 1 (classical RAM, instantaneous model).
  static AccessFn unit();

  /// The paper's hierarchical cost: f(x) = max(1, (x/m)^(1/d)).
  /// `m` is cells per unit cube, `d` in {1,2,3}.
  static AccessFn hierarchical(int d, double m);

  /// Generic power law f(x) = max(1, a * x^alpha) (Proposition 3 form).
  static AccessFn power(double a, double alpha);

  /// Cost of a single access to `addr`.
  core::Cost operator()(std::uint64_t addr) const;

  /// Cost of touching `len` consecutive words ending no further than
  /// `max_addr`. Charged as len * f(max_addr): an upper bound on the
  /// exact per-word sum, and the bound the paper uses in Prop. 2.
  core::Cost block(std::uint64_t max_addr, std::uint64_t len) const;

  /// Cost of the same block transfer on a *pipelined* memory (Section 6
  /// extension): one latency f(max_addr) plus one word per unit time.
  core::Cost block_pipelined(std::uint64_t max_addr, std::uint64_t len) const;

  bool is_unit() const { return kind_ == Kind::kUnit; }

 private:
  enum class Kind { kUnit, kHierarchical, kPower };

  AccessFn(Kind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}

  Kind kind_;
  double a_;  // hierarchical: m;        power: a
  double b_;  // hierarchical: 1.0/d;    power: alpha
};

}  // namespace bsmp::hram
