// The paper-artifact table emitters (E1–E10 plus the dense-E6 and
// advisor-calibration artifacts), extracted from the bench mains into
// a library so the same code path serves three consumers:
//
//   * bench/bench_e*.cpp — print the tables, then run the registered
//     google-benchmark kernels;
//   * tests/test_engine_determinism.cpp — the tier-2 conformance suite:
//     every emitter must produce value- and byte-identical tables at
//     threads=1 and threads=N;
//   * ad-hoc tools that want one artifact without a bench binary.
//
// Every emitter runs its parameter sweeps through engine::Sweep on the
// caller-supplied Pool, shares guests / reference runs / Prop-2 plans
// through the caller-supplied PlanCache, and merges rows in point
// order — so its output is a pure function of the parameters, never of
// the thread count. When EngineCtx::metrics is set, every sweep also
// records per-point timing into it (engine/metrics.hpp) — the
// observability side channel the benches serialize as metrics_*.json.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/table.hpp"
#include "engine/metrics.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"

namespace bsmp::tables {

/// Execution context every emitter runs in. `pool` and `plans` are
/// required; `metrics` is the optional observability sink — emitters
/// never read it, they only report into it.
struct EngineCtx {
  engine::Pool* pool = nullptr;
  engine::PlanCache* plans = nullptr;
  engine::Metrics* metrics = nullptr;
};

/// One emitted artifact: the table plus the commentary printed after it.
struct Emitted {
  core::Table table;
  std::string note;  ///< trailing commentary ("# ..."), may be empty
};

std::vector<Emitted> e1_tables(EngineCtx& ctx);   ///< intro matmul speedups
std::vector<Emitted> e2_tables(EngineCtx& ctx);   ///< Prop. 1 naive
std::vector<Emitted> e3_tables(EngineCtx& ctx);   ///< Thm 2 D&C d=1
std::vector<Emitted> e4_tables(EngineCtx& ctx);   ///< Thm 3 m sweep
std::vector<Emitted> e5_tables(EngineCtx& ctx);   ///< Thm 4 ranges
std::vector<Emitted> e6_tables(EngineCtx& ctx);   ///< A(s) ablation
std::vector<Emitted> e7_tables(EngineCtx& ctx);   ///< Thm 5 D&C d=2
std::vector<Emitted> e8_tables(EngineCtx& ctx);   ///< Thm 1 d=2
std::vector<Emitted> e9_tables(EngineCtx& ctx);   ///< figures 1-4
std::vector<Emitted> e10_tables(EngineCtx& ctx);  ///< baselines + Sec. 6

/// Dense every-s A(s) ablation (Section 4.2): one point per feasible
/// integer strip width, sharded across the pool with the guest and
/// reference run PlanCache-shared, feeding the three-mechanism
/// least-squares fit and a measured-vs-fitted argmin(s) comparison.
/// Emits one dense table per m plus a fit-summary table (golden-
/// digested by the conformance suite).
std::vector<Emitted> e6_dense_tables(EngineCtx& ctx);

/// Advisor calibration through the engine: the measured-constant
/// table of analytic::Calibration with every training measurement
/// produced by an engine sweep (see tables/calibration.hpp).
std::vector<Emitted> calibration_tables(EngineCtx& ctx);

/// Executor hot-path artifact: the flat-staging executor vs the
/// retained hash-map baseline over identical full volumes (d=1
/// diamond, d=2 octahedron). The table holds the deterministic
/// agreement fields (vertices, peak staging, charged totals); the
/// wall-clock throughput of each run is reported into ctx.metrics as
/// HotPathMetric records (serialized by bench_exec_hotpath as
/// metrics_hot.json). See tables/hotpath.hpp.
std::vector<Emitted> hot_tables(EngineCtx& ctx);

/// Batched-ensemble artifact: 64 perturbed initial conditions of a
/// cellular automaton evolved in one charged pass via the bit-sliced
/// lane batching of sep/guest.hpp. Asserts the count-based charging
/// invariant (batch charges == scalar charges, bit for bit) and emits
/// a lane-content digest; per-run throughput goes to ctx.metrics with
/// lanes = sep::kLanes (serialized and gated by bench_exec_batch).
std::vector<Emitted> ensemble_tables(EngineCtx& ctx);

/// One registry entry: a named table emitter.
struct Emitter {
  const char* name;  ///< registry key: "e1" … "e10", "e6d", "cal", "hot",
                     ///< "ens"
  const char* what;  ///< one-line description
  std::vector<Emitted> (*fn)(EngineCtx&);
};

/// The full emitter registry, in order: the ten paper artifacts
/// E1–E10 followed by the derived artifacts ("e6d" dense ablation,
/// "cal" advisor calibration, "hot" executor hot path). This is the
/// sweep surface the tier-2
/// conformance suite iterates — adding an emitter here automatically
/// puts it under the threads=1 vs threads=N byte-identity check (see
/// doc/ENGINE.md for the worked example).
const std::vector<Emitter>& all_emitters();

/// Lookup by registry name ("e5", "cal"); throws precondition_error
/// when unknown.
const Emitter& find_emitter(std::string_view name);

}  // namespace bsmp::tables
