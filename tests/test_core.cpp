#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/cost.hpp"
#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"

namespace core = bsmp::core;

TEST(Logbar, MatchesPaperDefinition) {
  // loḡ(a) = log2(a + 2), so loḡ(0) = 1 and loḡ(2) = 2.
  EXPECT_DOUBLE_EQ(core::logbar(0), 1.0);
  EXPECT_DOUBLE_EQ(core::logbar(2), 2.0);
  EXPECT_DOUBLE_EQ(core::logbar(6), 3.0);
}

TEST(Logbar, AtLeastOneEverywhere) {
  for (double a : {0.0, 0.25, 0.5, 1.0, 3.0, 1e6})
    EXPECT_GE(core::logbar(a), 1.0) << a;
}

TEST(Logbar, ClampsNegativeArguments) {
  EXPECT_DOUBLE_EQ(core::logbar(-5.0), 1.0);
}

TEST(IntMath, Ilog2) {
  EXPECT_EQ(core::ilog2_floor(1), 0);
  EXPECT_EQ(core::ilog2_floor(2), 1);
  EXPECT_EQ(core::ilog2_floor(3), 1);
  EXPECT_EQ(core::ilog2_floor(1024), 10);
  EXPECT_EQ(core::ilog2_ceil(1), 0);
  EXPECT_EQ(core::ilog2_ceil(3), 2);
  EXPECT_EQ(core::ilog2_ceil(1024), 10);
  EXPECT_EQ(core::ilog2_ceil(1025), 11);
  EXPECT_THROW(core::ilog2_floor(0), bsmp::precondition_error);
}

TEST(IntMath, Pow2Helpers) {
  EXPECT_TRUE(core::is_pow2(1));
  EXPECT_TRUE(core::is_pow2(64));
  EXPECT_FALSE(core::is_pow2(0));
  EXPECT_FALSE(core::is_pow2(48));
  EXPECT_EQ(core::ceil_pow2(48), 64u);
  EXPECT_EQ(core::ceil_pow2(64), 64u);
  EXPECT_EQ(core::floor_pow2(48), 32u);
}

TEST(IntMath, Isqrt) {
  EXPECT_EQ(core::isqrt(0), 0u);
  EXPECT_EQ(core::isqrt(1), 1u);
  EXPECT_EQ(core::isqrt(15), 3u);
  EXPECT_EQ(core::isqrt(16), 4u);
  EXPECT_EQ(core::isqrt(1ull << 40), 1ull << 20);
  for (std::uint64_t x = 0; x < 2000; ++x) {
    std::uint64_t r = core::isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(IntMath, IsSquare) {
  EXPECT_TRUE(core::is_square(0));
  EXPECT_TRUE(core::is_square(49));
  EXPECT_FALSE(core::is_square(50));
}

TEST(IntMath, FloorDivMod) {
  EXPECT_EQ(core::div_floor(7, 2), 3);
  EXPECT_EQ(core::div_floor(-7, 2), -4);
  EXPECT_EQ(core::div_ceil(7, 2), 4);
  EXPECT_EQ(core::div_ceil(-7, 2), -3);
  EXPECT_EQ(core::mod_floor(-7, 2), 1);
  EXPECT_EQ(core::mod_floor(7, 2), 1);
  for (std::int64_t a = -20; a <= 20; ++a)
    for (std::int64_t b : {1, 2, 3, 7}) {
      EXPECT_EQ(core::div_floor(a, b) * b + core::mod_floor(a, b), a);
      EXPECT_GE(core::mod_floor(a, b), 0);
      EXPECT_LT(core::mod_floor(a, b), b);
    }
}

TEST(IntMath, Ipow) {
  EXPECT_EQ(core::ipow(2, 10), 1024u);
  EXPECT_EQ(core::ipow(3, 0), 1u);
  EXPECT_EQ(core::ipow(10, 3), 1000u);
}

TEST(CostLedger, AccumulatesByKind) {
  core::CostLedger l;
  l.charge(core::CostKind::kCompute, 2.0);
  l.charge(core::CostKind::kCompute, 3.0, 4);
  l.charge(core::CostKind::kComm, 1.5);
  EXPECT_DOUBLE_EQ(l.total(), 6.5);
  EXPECT_DOUBLE_EQ(l.cost(core::CostKind::kCompute), 5.0);
  EXPECT_EQ(l.events(core::CostKind::kCompute), 5u);
  EXPECT_EQ(l.events(core::CostKind::kBlockMove), 0u);
}

TEST(CostLedger, MergeAndReset) {
  core::CostLedger a, b;
  a.charge(core::CostKind::kLocalAccess, 1.0);
  b.charge(core::CostKind::kLocalAccess, 2.0);
  b.charge(core::CostKind::kRearrange, 5.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 8.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(CostLedger, RejectsNegativeCharge) {
  core::CostLedger l;
  EXPECT_THROW(l.charge(core::CostKind::kCompute, -1.0),
               bsmp::precondition_error);
}

TEST(CostLedger, ReportMentionsKinds) {
  core::CostLedger l;
  l.charge(core::CostKind::kComm, 3.0);
  EXPECT_NE(l.report().find("comm"), std::string::npos);
}

TEST(Table, RendersAlignedRows) {
  core::Table t("demo", {"n", "value"});
  t.add_row({std::string("a"), 1.5});
  t.add_row({(long long)42, 2.0});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  core::Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), bsmp::precondition_error);
}

TEST(Rng, DeterministicAndSpread) {
  core::SplitMix64 r1(42), r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.next(), r2.next());
  core::SplitMix64 r(7);
  int buckets[8] = {0};
  for (int i = 0; i < 8000; ++i) ++buckets[r.next_below(8)];
  for (int b = 0; b < 8; ++b) EXPECT_GT(buckets[b], 700);
  for (int i = 0; i < 100; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Table, CsvOutput) {
  core::Table t("demo", {"name", "v"});
  t.add_row({std::string("a,b"), 1.5});
  t.add_row({(long long)7, 2.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,v\na;b,1.5\n7,2\n");
}
