#include "machine/layout.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "core/expect.hpp"

namespace bsmp::machine {

std::int64_t StripLayout::global_window_diameter(std::int64_t span) const {
  BSMP_REQUIRE(span >= 1 && span <= q_);
  std::int64_t worst = 0;
  for (std::int64_t start = 0; start + span <= q_; ++start) {
    std::int64_t lo = slot(start), hi = slot(start);
    for (std::int64_t g = start; g < start + span; ++g) {
      lo = std::min(lo, slot(g));
      hi = std::max(hi, slot(g));
    }
    worst = std::max(worst, hi - lo);
  }
  return worst;
}

StripLayout::StripLayout(std::int64_t q, std::int64_t p, std::int64_t w,
                         std::vector<std::int64_t> slot_of)
    : q_(q), p_(p), w_(w), slot_(std::move(slot_of)) {}

StripLayout StripLayout::identity(std::int64_t q, std::int64_t p,
                                  std::int64_t w) {
  BSMP_REQUIRE(q >= 1 && p >= 1 && w >= 1);
  BSMP_REQUIRE(q % p == 0);
  std::vector<std::int64_t> s(static_cast<std::size_t>(q));
  std::iota(s.begin(), s.end(), 0);
  return StripLayout(q, p, w, std::move(s));
}

StripLayout StripLayout::rearranged(std::int64_t q, std::int64_t p,
                                    std::int64_t w) {
  BSMP_REQUIRE(w >= 1);
  return StripLayout(q, p, w, rearrangement(q, p));
}

std::int64_t StripLayout::slot(std::int64_t strip) const {
  BSMP_REQUIRE(strip >= 0 && strip < q_);
  return slot_[static_cast<std::size_t>(strip)];
}

std::int64_t StripLayout::base_addr(std::int64_t strip) const {
  return slot(strip) * w_;
}

std::int64_t StripLayout::owner(std::int64_t strip) const {
  return slot(strip) / (q_ / p_);
}

std::int64_t StripLayout::distance(std::int64_t a, std::int64_t b) const {
  return std::abs(slot(a) - slot(b));
}

std::int64_t StripLayout::max_adjacent_distance() const {
  std::int64_t mx = 0;
  for (std::int64_t g = 0; g + 1 < q_; ++g)
    mx = std::max(mx, distance(g, g + 1));
  return mx;
}

std::int64_t StripLayout::per_proc_window_diameter(std::int64_t span) const {
  BSMP_REQUIRE(span >= 1 && span <= q_);
  std::int64_t worst = 0;
  std::vector<std::int64_t> lo(static_cast<std::size_t>(p_)),
      hi(static_cast<std::size_t>(p_));
  for (std::int64_t start = 0; start + span <= q_; ++start) {
    std::fill(lo.begin(), lo.end(), std::int64_t{-1});
    for (std::int64_t g = start; g < start + span; ++g) {
      std::int64_t pr = owner(g);
      std::int64_t s = slot(g);
      if (lo[pr] < 0) {
        lo[pr] = hi[pr] = s;
      } else {
        lo[pr] = std::min(lo[pr], s);
        hi[pr] = std::max(hi[pr], s);
      }
    }
    for (std::int64_t pr = 0; pr < p_; ++pr)
      if (lo[pr] >= 0) worst = std::max(worst, hi[pr] - lo[pr]);
  }
  return worst;
}

}  // namespace bsmp::machine
