#include "sep/staging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bsmp::sep {

namespace {

std::atomic<bool>& validation_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("BSMP_VALIDATE");
    return env != nullptr && std::strcmp(env, "0") != 0;
  }();
  return flag;
}

}  // namespace

bool validation_mode() {
  return validation_flag().load(std::memory_order_relaxed);
}

void set_validation_mode(bool on) {
  validation_flag().store(on, std::memory_order_relaxed);
}

}  // namespace bsmp::sep
