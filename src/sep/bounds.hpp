// Proposition 3 made executable: separator descriptors and the
// closed-form space/time constants of the divide-and-conquer execution.
//
// Definition 6: a convex set U has a (g(x), δ)-topological separator if
// |Γin(U)| <= g(|U|), U splits into at most q parts of size <= δ|U|,
// and the parts recurse. For g(x) = c x^γ and an (a x^α)-H-RAM with
// α <= (1-γ)/γ, Proposition 3 gives
//     σ(k) <= σ0 k^γ,   τ(k) <= τ0 k loḡ k,
// with σ0 = q c δ^γ / (1 - δ^γ) and τ0 = 4 q a σ0^α δ' / log(1/δ)
// (δ' a constant depending on δ, γ, α; we use δ' = 1/(1 - δ^(1-γ(1+α)))
// when the exponent is positive, else the loḡ-saturated fallback).
//
// The descriptors below are the paper's concrete separators:
//   d=1 diamond:      q=4,  c=2*sqrt(2), γ=1/2, δ=1/4  (Theorem 2)
//   d=2 octahedron:   q=14, c=2*3^(1/3), γ=2/3, δ=1/2  (Theorem 5)
//   d=2 tetrahedron:  q=5,  c=12^(1/3),  γ=2/3, δ=1/2  (Theorem 5)
//   d=3 (conjecture): q<=2^6, γ=3/4, δ=1/2              (Section 6)
#pragma once

#include <string>

namespace bsmp::sep {

/// A (g(x), δ)-topological separator descriptor, g(x) = c x^γ.
struct SeparatorSpec {
  std::string name;
  int q = 0;        ///< max number of parts per split
  double c = 0;     ///< preboundary constant: |Γin(U)| <= c |U|^γ
  double gamma = 0; ///< preboundary exponent
  double delta = 0; ///< part-size ratio: |Ui| <= δ |U|

  /// g(x) = c x^γ.
  double g(double x) const;

  /// σ0 of Proposition 3 (space constant).
  double sigma0() const;

  /// τ0 of Proposition 3 for an (a x^α)-H-RAM (time constant).
  double tau0(double a, double alpha) const;

  /// The admissibility condition of Proposition 3: α <= (1-γ)/γ.
  bool admits(double alpha) const;

  /// Space bound σ0 k^γ.
  double space_bound(double k) const;

  /// Time bound τ0 k loḡ k.
  double time_bound(double k, double a, double alpha) const;
};

/// The paper's separators.
SeparatorSpec diamond_separator();       // d=1 (Theorem 2 proof)
SeparatorSpec octahedron_separator();    // d=2 (Theorem 5 proof)
SeparatorSpec tetrahedron_separator();   // d=2 (Theorem 5 proof)
SeparatorSpec d3_separator_conjecture(); // Section 6

}  // namespace bsmp::sep
