#include "engine/attribution.hpp"

#include <algorithm>
#include <cstddef>

namespace bsmp::engine {

const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kCompute: return "compute";
    case Mechanism::kRelocation: return "relocation";
    case Mechanism::kStaging: return "staging";
    case Mechanism::kStealIdle: return "steal-idle";
    case Mechanism::kJoinPark: return "join-park";
    case Mechanism::kOther: return "other";
    case Mechanism::kCount: break;
  }
  return "?";
}

Mechanism classify_mechanism(trace::Cat cat, std::string_view name) {
  switch (cat) {
    case trace::Cat::kSepRegion: return Mechanism::kCompute;
    case trace::Cat::kStaging: return Mechanism::kStaging;
    case trace::Cat::kSweepPoint: return Mechanism::kCompute;
    case trace::Cat::kSim:
      // Relocation is the one simulator mechanism with its own span
      // name; tiles and wavefronts are the compute skeleton.
      return name == "regime1-relocate" ? Mechanism::kRelocation
                                        : Mechanism::kCompute;
    case trace::Cat::kTask:
      if (name == "join-park") return Mechanism::kJoinPark;
      // Shard merges do real work (guest-table reduction) on the task
      // layer's clock.
      if (name == "shard-merge") return Mechanism::kCompute;
      return Mechanism::kStealIdle;
    case trace::Cat::kCount: break;
  }
  return Mechanism::kOther;
}

namespace {

/// Phase a span *itself* names, before ancestor inheritance. The sep
/// executor's spans belong to kExecutorLeaf even though no span is
/// literally named "executor-leaf".
ForkPhase own_phase(std::string_view name) {
  if (name == "sep-region" || name == "sep-leaf")
    return ForkPhase::kExecutorLeaf;
  return fork_phase_from_name(name);
}

/// Weighted interval scheduling over (start, end, weight) triples:
/// the maximum total weight of a pairwise non-overlapping subset
/// (end_i <= start_j or vice versa). O(n log n).
std::uint64_t max_chain(std::vector<std::array<std::uint64_t, 3>>& iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end(),
            [](const auto& a, const auto& b) { return a[1] < b[1]; });
  // dp[i] = best over the first i intervals (by end time); ends[] is
  // the sorted end-time array for the predecessor binary search.
  std::vector<std::uint64_t> ends(iv.size()), dp(iv.size() + 1, 0);
  for (std::size_t i = 0; i < iv.size(); ++i) ends[i] = iv[i][1];
  for (std::size_t i = 0; i < iv.size(); ++i) {
    // Last interval ending at or before this start.
    auto it = std::upper_bound(ends.begin(), ends.begin() + i, iv[i][0]);
    std::size_t j = static_cast<std::size_t>(it - ends.begin());
    dp[i + 1] = std::max(dp[i], dp[j] + iv[i][2]);
  }
  return dp[iv.size()];
}

}  // namespace

Attribution fold_attribution(const std::vector<trace::SpanRec>& spans,
                             std::uint64_t dropped) {
  Attribution out;
  out.dropped = dropped;

  // Complete spans only: instants carry no duration.
  std::vector<std::size_t> complete;
  int max_tid = -1;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].ph != 'X') continue;
    complete.push_back(i);
    max_tid = std::max(max_tid, spans[i].tid);
  }
  out.spans = complete.size();
  if (complete.empty()) return out;

  // Self-time: per thread, sort by (start asc, duration desc) so a
  // parent precedes the children it encloses, then walk a nesting
  // stack subtracting each direct child's duration from its parent.
  std::vector<std::uint64_t> self(spans.size(), 0);
  std::vector<ForkPhase> phase(spans.size(), ForkPhase::kNone);
  std::vector<std::size_t> idx;
  struct Open {
    std::uint64_t end;
    std::size_t i;
  };
  std::vector<Open> stack;
  for (int t = 0; t <= max_tid; ++t) {
    idx.clear();
    for (std::size_t i : complete)
      if (spans[i].tid == t) idx.push_back(i);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (spans[a].t0_ns != spans[b].t0_ns)
                         return spans[a].t0_ns < spans[b].t0_ns;
                       return spans[a].dur_ns > spans[b].dur_ns;
                     });
    stack.clear();
    for (std::size_t i : idx) {
      const auto& s = spans[i];
      while (!stack.empty() && stack.back().end <= s.t0_ns)
        stack.pop_back();
      self[i] = s.dur_ns;
      ForkPhase p = own_phase(s.name);
      if (!stack.empty()) {
        self[stack.back().i] -= std::min(self[stack.back().i], s.dur_ns);
        if (p == ForkPhase::kNone) p = phase[stack.back().i];
      }
      phase[i] = p;
      stack.push_back({s.t0_ns + s.dur_ns, i});
    }
  }

  std::vector<std::array<std::uint64_t, 3>> iv;
  iv.reserve(complete.size());
  for (std::size_t i : complete) {
    const auto& s = spans[i];
    Mechanism m = classify_mechanism(s.cat, s.name);
    auto mi = static_cast<std::size_t>(m);
    out.mechanism[mi].self_ns += self[i];
    out.mechanism[mi].spans += 1;
    out.total_self_ns += self[i];
    out.phase[static_cast<std::size_t>(phase[i])][mi] += self[i];
    iv.push_back({s.t0_ns, s.t0_ns + s.dur_ns, s.dur_ns});
  }
  out.critical_path_ns = max_chain(iv);
  return out;
}

Attribution fold_attribution_since(std::uint64_t mark_ns) {
  std::vector<trace::SpanRec> all = trace::snapshot();
  std::vector<trace::SpanRec> windowed;
  windowed.reserve(all.size());
  for (auto& s : all)
    if (s.t0_ns >= mark_ns) windowed.push_back(std::move(s));
  return fold_attribution(windowed, trace::dropped());
}

}  // namespace bsmp::engine
