# Empty dependencies file for bench_e3_thm2_d1.
# This may be replaced when dependencies are built.
