// SIMD leaf-kernel tests (sep/simd.hpp, doc/PERF.md "Byte identity").
//
// The contract under test: the vector leaf path is an *invisible*
// optimization —
//   * row kernels: every workload kernel's `row` member is
//     bit-identical to calling its scalar operator() per element, for
//     both xstride forms (1 = leaf row, 0 = SoA lanes) and arbitrary
//     span lengths (vector body + scalar tail);
//   * executor differential: driving the full volume through
//     execute_with_rule with the vector path on equals both the
//     forced-scalar run and the type-erased guest-rule run in every
//     charged bit, event count, peak, slab count and final value,
//     across d in {1,2} x store {dense, hashmap} x Pool {1,4} x fork
//     grain {off, 4};
//   * fallback dispatch: simd::set_enabled(false) reports the scalar
//     ISA and single-lane width, and the SoA lift (simd::soa_rule)
//     equals sep::broadcast_rule lane for lane either way.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "engine/pool.hpp"
#include "geom/tiling.hpp"
#include "sep/executor.hpp"
#include "sep/simd.hpp"
#include "sep/staging.hpp"
#include "sim/observe.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

/// Restore the process-wide SIMD switch on scope exit, whatever the
/// test did to it.
struct SimdGuard {
  bool saved = sep::simd::enabled();
  ~SimdGuard() { sep::simd::set_enabled(saved); }
};

sep::Word splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  return workload::detail::mix64(s);
}

/// row() vs per-element operator() over random operands, several span
/// lengths (shorter and longer than any vector width) and both stride
/// forms of the contract.
template <int D, class Kernel>
void expect_row_matches_scalar(Kernel k, const std::string& what) {
  std::uint64_t s = 0x5eed + static_cast<std::uint64_t>(D);
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                        std::size_t{8}, std::size_t{13}, std::size_t{64}}) {
    for (std::int64_t xstride : {std::int64_t{1}, std::int64_t{0}}) {
      std::vector<sep::Word> self(n), out(n);
      std::array<std::vector<sep::Word>, geom::kMono<D>> nbr;
      const sep::Word* nbr_ptr[geom::kMono<D>];
      for (int kk = 0; kk < geom::kMono<D>; ++kk) {
        nbr[static_cast<std::size_t>(kk)].resize(n);
        for (auto& w : nbr[static_cast<std::size_t>(kk)]) w = splitmix(s);
        nbr_ptr[kk] = nbr[static_cast<std::size_t>(kk)].data();
      }
      for (auto& w : self) w = splitmix(s);

      geom::Point<D> p0{};
      p0.t = static_cast<std::int64_t>(splitmix(s) % 100);
      for (int i = 0; i < D; ++i)
        p0.x[i] = static_cast<std::int64_t>(splitmix(s) % 1000);

      k.row(out.data(), self.data(), nbr_ptr, n, p0, xstride);

      for (std::size_t i = 0; i < n; ++i) {
        geom::Point<D> p = p0;
        p.x[D - 1] += xstride * static_cast<std::int64_t>(i);
        sep::NeighborWords<D> nb{};
        for (int kk = 0; kk < geom::kMono<D>; ++kk)
          nb[static_cast<std::size_t>(kk)] =
              nbr[static_cast<std::size_t>(kk)][i];
        EXPECT_EQ(out[i], k(p, self[i], nb))
            << what << ": n=" << n << " xstride=" << xstride << " i=" << i;
      }
    }
  }
}

/// Everything the byte-identity contract pins about one drive (the
/// test_batch_lanes Outcome, reused for SIMD-vs-scalar).
template <int D>
struct Outcome {
  std::array<std::uint64_t, core::CostLedger::kNumKinds> cost_bits{};
  std::array<std::uint64_t, core::CostLedger::kNumKinds> events{};
  std::int64_t vertices = 0;
  std::size_t peak = 0;
  std::size_t allocs = 0;
  sep::ValueMap<D> fin;
};

/// Drive the guest over the full volume through execute_with_rule, so
/// a concrete kernel (or the guest's type-erased rule) can be swapped
/// in while everything else stays the wavefront loop of the sims.
template <int D, class Store, class RuleFn>
Outcome<D> drive(const sep::Guest<D>& g, Store& staging, std::int64_t tile,
                 std::int64_t leaf, std::int64_t grain, const RuleFn& rule) {
  sep::ExecutorConfig cfg;
  cfg.leaf_width = leaf;
  cfg.f = hram::AccessFn::hierarchical(D, 4.0);
  cfg.parallel_grain = grain;
  sep::Executor<D, sep::Word> exec(&g, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);
  geom::TileGrid<D> grid(&g.stencil, tile);
  for (const auto& wave : grid.wavefronts())
    for (const auto& t : wave) exec.execute_with_rule(t, staging, rule);

  Outcome<D> out;
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    auto kind = static_cast<core::CostKind>(i);
    double c = ledger.cost(kind);
    std::memcpy(&out.cost_bits[i], &c, sizeof c);
    out.events[i] = ledger.events(kind);
  }
  out.vertices = exec.vertices_executed();
  out.peak = exec.peak_staging();
  out.allocs = sep::store_level_allocs(staging);
  out.fin = sim::extract_final<D>(g.stencil, staging);
  return out;
}

template <int D>
void expect_same_outcome(const Outcome<D>& got, const Outcome<D>& want,
                         const std::string& what) {
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    EXPECT_EQ(got.cost_bits[i], want.cost_bits[i])
        << what << ": cost kind " << i << " not bit-identical";
    EXPECT_EQ(got.events[i], want.events[i]) << what << ": event count " << i;
  }
  EXPECT_EQ(got.vertices, want.vertices) << what;
  EXPECT_EQ(got.peak, want.peak) << what << ": peak staging";
  EXPECT_EQ(got.allocs, want.allocs) << what << ": slab allocs";
  EXPECT_TRUE(sim::same_values<D>(got.fin, want.fin))
      << what << ": final values diverged";
}

/// The d x store x Pool x grain differential for one kernel: SIMD on
/// == SIMD off == type-erased rule, in every pinned field.
template <int D, class Kernel>
void run_differential(const sep::Guest<D>& g, Kernel kernel,
                      std::int64_t tile, std::int64_t leaf,
                      const std::string& what) {
  SimdGuard guard;

  // Reference: the guest's std::function rule, vector path off.
  sep::simd::set_enabled(false);
  sep::StagingStore<D> ref_staging(&g.stencil);
  Outcome<D> ref = drive<D>(g, ref_staging, tile, leaf, 0, g.rule);

  for (bool vector_path : {true, false}) {
    sep::simd::set_enabled(vector_path);
    for (bool dense : {true, false}) {
      for (std::int64_t grain : {std::int64_t{0}, std::int64_t{4}}) {
        for (int threads : {1, 4}) {
          engine::Pool pool(threads);
          auto bind = pool.bind_caller();
          const std::string label =
              what + (vector_path ? " simd" : " scalar") +
              (dense ? " dense" : " hashmap") + " grain=" +
              std::to_string(grain) + " threads=" + std::to_string(threads);
          Outcome<D> got;
          if (dense) {
            sep::StagingStore<D> staging(&g.stencil);
            got = drive<D>(g, staging, tile, leaf, grain, kernel);
          } else {
            sep::ValueMap<D> staging;
            got = drive<D>(g, staging, tile, leaf, grain, kernel);
          }
          auto want = ref;
          if (!dense) want.allocs = 0;
          expect_same_outcome<D>(got, want, label);
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Row kernels, element for element.
// ---------------------------------------------------------------------

TEST(SimdKernels, MixRowMatchesScalarD1) {
  expect_row_matches_scalar<1>(workload::MixKernel<1>{}, "mix d1");
}

TEST(SimdKernels, MixRowMatchesScalarD2) {
  expect_row_matches_scalar<2>(workload::MixKernel<2>{}, "mix d2");
}

TEST(SimdKernels, XorRowMatchesScalarD1) {
  expect_row_matches_scalar<1>(workload::XorKernel<1>{}, "xor d1");
}

TEST(SimdKernels, XorRowMatchesScalarD2) {
  expect_row_matches_scalar<2>(workload::XorKernel<2>{}, "xor d2");
}

TEST(SimdKernels, Rule110RowsMatchScalar) {
  expect_row_matches_scalar<1>(workload::Rule110Kernel{}, "rule110");
  expect_row_matches_scalar<1>(workload::Rule110LanesKernel{},
                               "rule110_lanes");
}

// ---------------------------------------------------------------------
// Compile-time gating: which (rule, D, V) combinations take the
// vector path at all.
// ---------------------------------------------------------------------

TEST(SimdKernels, RowKernelConceptGatesExactly) {
  constexpr bool on = BSMP_SIMD_ENABLED != 0;
  static_assert(sep::simd::has_row_kernel<workload::MixKernel<1>, 1,
                                          sep::Word> == on);
  static_assert(sep::simd::has_row_kernel<workload::MixKernel<2>, 2,
                                          sep::Word> == on);
  // No D=3 kernel is defined; the concept must say so instead of
  // letting the executor instantiate a missing row().
  static_assert(!sep::simd::has_row_kernel<workload::MixKernel<3>, 3,
                                           sep::Word>);
  // Wrong dimension or non-Word values never take the vector path.
  static_assert(!sep::simd::has_row_kernel<workload::MixKernel<1>, 2,
                                           sep::Word>);
  static_assert(!sep::simd::has_row_kernel<workload::MixKernel<1>, 1,
                                           sep::LaneBatch>);
  // Type-erased rules have no row member.
  static_assert(!sep::simd::has_row_kernel<sep::Rule<1>, 1, sep::Word>);
  SUCCEED();
}

// ---------------------------------------------------------------------
// Runtime dispatch and the scalar fallback.
// ---------------------------------------------------------------------

TEST(SimdKernels, DisabledSwitchReportsScalarDispatch) {
  SimdGuard guard;
  sep::simd::set_enabled(false);
  EXPECT_FALSE(sep::simd::enabled());
  EXPECT_STREQ(sep::simd::active_isa(), "scalar");
  EXPECT_EQ(sep::simd::lane_width(), 1);

  sep::simd::set_enabled(true);
  EXPECT_TRUE(sep::simd::enabled());
  const std::string isa = sep::simd::active_isa();
#if BSMP_SIMD_ENABLED
  EXPECT_TRUE(isa == "avx512" || isa == "avx2" || isa == "sse2" ||
              isa == "neon" || isa == "scalar")
      << isa;
  EXPECT_GE(sep::simd::lane_width(), 1);
#else
  // Compiled out: enabling the switch cannot resurrect the kernels.
  EXPECT_EQ(isa, "scalar");
  EXPECT_EQ(sep::simd::lane_width(), 1);
#endif
}

// ---------------------------------------------------------------------
// Full-volume executor differential: d x store x Pool x grain, with
// the vector path on and off, against the type-erased reference.
// ---------------------------------------------------------------------

TEST(SimdKernels, D1MixExecutorSimdMatchesScalarAcrossStoresPoolsGrains) {
  auto g = workload::make_mix_guest<1>({96}, 96, 8, 7);
  run_differential<1>(g, workload::MixKernel<1>{}, /*tile=*/48, /*leaf=*/8,
                      "d1 mix");
}

TEST(SimdKernels, D1MixShallowMemoryExecutorDifferential) {
  // m=2 with wide leaves: most interior cells find their self operand
  // inside the window (t - m >= tmin), exercising the no-scratch form.
  auto g = workload::make_mix_guest<1>({64}, 64, 2, 11);
  run_differential<1>(g, workload::MixKernel<1>{}, /*tile=*/32, /*leaf=*/8,
                      "d1 mix m=2");
}

TEST(SimdKernels, D2MixExecutorSimdMatchesScalarAcrossStoresPoolsGrains) {
  auto g = workload::make_mix_guest<2>({16, 16}, 16, 2, 7);
  run_differential<2>(g, workload::MixKernel<2>{}, /*tile=*/8, /*leaf=*/4,
                      "d2 mix");
}

TEST(SimdKernels, D1Rule110ExecutorDifferential) {
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{64}, 64, 1};
  g.rule = workload::rule110();
  g.input = [](const std::array<std::int64_t, 1>& x,
               std::int64_t cell) -> sep::Word {
    return workload::random_input<1>(3)(x, cell);  // arbitrary high bits
  };
  run_differential<1>(g, workload::Rule110Kernel{}, /*tile=*/32, /*leaf=*/4,
                      "d1 rule110");
}

// ---------------------------------------------------------------------
// The SoA lift: soa_rule == broadcast_rule, lane for lane, with the
// kernel row path on and off.
// ---------------------------------------------------------------------

TEST(SimdKernels, SoaKernelRuleMatchesBroadcastRule) {
  SimdGuard guard;
  auto broadcast = sep::broadcast_rule<2>(workload::mix_rule<2>());
  auto soa = sep::simd::soa_rule<2>(workload::MixKernel<2>{});

  std::uint64_t s = 99;
  for (int rep = 0; rep < 8; ++rep) {
    geom::Point<2> p{};
    p.t = static_cast<std::int64_t>(splitmix(s) % 64);
    p.x[0] = static_cast<std::int64_t>(splitmix(s) % 64);
    p.x[1] = static_cast<std::int64_t>(splitmix(s) % 64);
    sep::LaneBatch self;
    sep::BasicNeighbors<2, sep::LaneBatch> nbrs{};
    for (int l = 0; l < sep::kLanes; ++l) {
      self[l] = splitmix(s);
      for (int k = 0; k < geom::kMono<2>; ++k)
        nbrs[static_cast<std::size_t>(k)][l] = splitmix(s);
    }
    for (bool vector_path : {true, false}) {
      sep::simd::set_enabled(vector_path);
      sep::LaneBatch want = broadcast(p, self, nbrs);
      sep::LaneBatch got = soa(p, self, nbrs);
      for (int l = 0; l < sep::kLanes; ++l)
        EXPECT_EQ(got[l], want[l])
            << "lane " << l << " vector_path=" << vector_path;
    }
  }
}
