// Quickstart: simulate a 64-node linear-array computation (the guest
// M1(64, 64, 4)) on hosts with fewer processors, and compare the
// measured slowdown with the paper's Theorem-1/4 bound.
//
//   $ ./quickstart
#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/table.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

int main() {
  const std::int64_t n = 64, m = 4, T = 64;

  // 1. Define the guest: a 64-node linear array, 4 memory cells per
  //    node, running a mixing cellular-automaton rule for T steps.
  sep::Guest<1> guest = workload::make_mix_guest<1>({n}, T, m, /*seed=*/1);

  // 2. Run it directly — this is Md(n, n, m), the machine with one
  //    processor per unit of volume. Its time is Tn = T.
  auto ref = sim::reference_run<1>(guest);
  std::cout << "guest M1(" << n << "," << n << "," << m << ") ran " << T
            << " steps in Tn = " << ref.time << " units\n\n";

  // 3. Simulate the same computation on hosts with p < n processors
  //    and identical total memory, and compare with Theorem 1.
  core::Table table("simulating M1(64,64,4) on M1(64,p,4)",
                    {"p", "scheme", "Tp/Tn (measured)", "bound (n/p)*A",
                     "measured/bound", "range"});
  for (std::int64_t p : {1, 2, 4, 8, 16}) {
    machine::MachineSpec host{1, n, p, m};
    sim::SimResult<1> res;
    std::string scheme;
    if (p == 1) {
      res = sim::simulate_dc_uniproc<1>(guest, host);
      scheme = "D&C (Thm 3)";
    } else {
      res = sim::simulate_multiproc<1>(guest, host);
      scheme = "2-regime (Thm 4)";
    }
    if (!sim::same_values<1>(res.final_values, ref.final_values)) {
      std::cerr << "BUG: simulated values disagree with the guest!\n";
      return 1;
    }
    double bound = analytic::slowdown_bound(1, n, m, p);
    table.add_row({(long long)p, scheme, res.slowdown(), bound,
                   res.slowdown() / bound,
                   std::string(analytic::to_string(
                       analytic::classify_range(1, n, m, p)))});
  }
  table.print(std::cout);

  std::cout << "\nEvery simulation produced bit-identical guest outputs;\n"
               "the measured/bound column is Θ(1) — the simulations track\n"
               "the paper's processor-time tradeoff.\n";
  return 0;
}
