// Minimal fixed-width table printer used by the bench harness to emit
// the paper-reproduction tables (parameters, measured cost, closed-form
// prediction, ratio) in a grep-friendly layout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace bsmp::core {

/// A cell is either text, an integer, or a real (printed with fixed
/// significant digits).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  /// `title` is printed above the table; `columns` are the header names.
  Table(std::string title, std::vector<std::string> columns);

  /// Append one row; must have exactly as many cells as columns.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  /// Value equality of title, columns, and every cell. Doubles compare
  /// bit-exactly: two tables are equal iff the computations that built
  /// them were identical — the conformance contract of the sweep engine.
  bool operator==(const Table& other) const;

  /// Render with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// The aligned rendering as a string (what print() writes).
  std::string to_string() const;

  /// FNV-1a hash of to_string(): a byte-for-byte fingerprint of the
  /// rendered table, used by determinism regression tests.
  std::uint64_t digest() const;

  /// Render as CSV (header row + data rows); commas in cells are
  /// replaced by semicolons to keep the format line-per-row.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Format a double with `digits` significant digits (used by Table and
/// ad-hoc reporting).
std::string format_real(double v, int digits = 5);

}  // namespace bsmp::core
