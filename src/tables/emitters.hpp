// The paper-artifact table emitters (E1–E10), extracted from the bench
// mains into a library so the same code path serves three consumers:
//
//   * bench/bench_e*.cpp — print the tables, then run the registered
//     google-benchmark kernels;
//   * tests/test_engine_determinism.cpp — the tier-2 conformance suite:
//     every emitter must produce value- and byte-identical tables at
//     threads=1 and threads=N;
//   * ad-hoc tools that want one artifact without a bench binary.
//
// Every emitter runs its parameter sweeps through engine::Sweep on the
// caller-supplied Pool, shares guests / reference runs / Prop-2 plans
// through the caller-supplied PlanCache, and merges rows in point
// order — so its output is a pure function of the parameters, never of
// the thread count.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/table.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"

namespace bsmp::tables {

/// Execution context every emitter runs in.
struct EngineCtx {
  engine::Pool* pool = nullptr;
  engine::PlanCache* plans = nullptr;
};

/// One emitted artifact: the table plus the commentary printed after it.
struct Emitted {
  core::Table table;
  std::string note;  ///< trailing commentary ("# ..."), may be empty
};

std::vector<Emitted> e1_tables(EngineCtx& ctx);   ///< intro matmul speedups
std::vector<Emitted> e2_tables(EngineCtx& ctx);   ///< Prop. 1 naive
std::vector<Emitted> e3_tables(EngineCtx& ctx);   ///< Thm 2 D&C d=1
std::vector<Emitted> e4_tables(EngineCtx& ctx);   ///< Thm 3 m sweep
std::vector<Emitted> e5_tables(EngineCtx& ctx);   ///< Thm 4 ranges
std::vector<Emitted> e6_tables(EngineCtx& ctx);   ///< A(s) ablation
std::vector<Emitted> e7_tables(EngineCtx& ctx);   ///< Thm 5 D&C d=2
std::vector<Emitted> e8_tables(EngineCtx& ctx);   ///< Thm 1 d=2
std::vector<Emitted> e9_tables(EngineCtx& ctx);   ///< figures 1-4
std::vector<Emitted> e10_tables(EngineCtx& ctx);  ///< baselines + Sec. 6

struct Emitter {
  const char* name;  ///< "e1" … "e10"
  const char* what;  ///< one-line description
  std::vector<Emitted> (*fn)(EngineCtx&);
};

/// All ten emitters in order — the sweep surface the conformance suite
/// iterates.
const std::vector<Emitter>& all_emitters();

/// Lookup by name ("e5"); throws precondition_error when unknown.
const Emitter& find_emitter(std::string_view name);

}  // namespace bsmp::tables
