#include "analytic/fit.hpp"

#include <cmath>

#include "core/expect.hpp"

namespace bsmp::analytic {

namespace {

/// Gaussian elimination with partial pivoting on a K x K system.
template <std::size_t K>
std::array<double, K> solve(std::array<std::array<double, K + 1>, K> a) {
  for (std::size_t col = 0; col < K; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < K; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[piv][col])) piv = r;
    std::swap(a[col], a[piv]);
    double d = a[col][col];
    if (std::fabs(d) < 1e-12) {
      // Singular direction: zero out this unknown.
      for (auto& v : a[col]) v = 0;
      a[col][col] = 1;
      d = 1;
    }
    for (std::size_t r = 0; r < K; ++r) {
      if (r == col) continue;
      double f = a[r][col] / d;
      for (std::size_t c = col; c <= K; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::array<double, K> out{};
  for (std::size_t i = 0; i < K; ++i) out[i] = a[i][K] / a[i][i];
  return out;
}

template <std::size_t K>
std::array<double, K> fit_masked(
    const std::vector<std::array<double, K>>& x, const std::vector<double>& y,
    const std::array<bool, K>& active) {
  std::array<std::array<double, K + 1>, K> normal{};
  for (std::size_t row = 0; row < x.size(); ++row) {
    for (std::size_t i = 0; i < K; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = 0; j < K; ++j)
        if (active[j]) normal[i][j] += x[row][i] * x[row][j];
      normal[i][K] += x[row][i] * y[row];
    }
  }
  for (std::size_t i = 0; i < K; ++i) {
    if (!active[i]) {
      normal[i] = {};
      normal[i][i] = 1;  // forces coefficient 0
    }
  }
  return solve<K>(normal);
}

}  // namespace

template <std::size_t K>
std::array<double, K> fit_least_squares(
    const std::vector<std::array<double, K>>& x,
    const std::vector<double>& y) {
  BSMP_REQUIRE(x.size() == y.size());
  BSMP_REQUIRE(x.size() >= K);
  std::array<bool, K> active;
  active.fill(true);
  for (int pass = 0; pass < static_cast<int>(K); ++pass) {
    auto c = fit_masked<K>(x, y, active);
    bool clamped = false;
    for (std::size_t i = 0; i < K; ++i) {
      if (active[i] && c[i] < 0) {
        active[i] = false;
        clamped = true;
      }
    }
    if (!clamped) return c;
  }
  return fit_masked<K>(x, y, active);
}

template <std::size_t K>
double fit_r2(const std::vector<std::array<double, K>>& x,
              const std::vector<double>& y, const std::array<double, K>& c) {
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0, ss_tot = 0;
  for (std::size_t row = 0; row < x.size(); ++row) {
    double pred = 0;
    for (std::size_t i = 0; i < K; ++i) pred += c[i] * x[row][i];
    ss_res += (y[row] - pred) * (y[row] - pred);
    ss_tot += (y[row] - mean) * (y[row] - mean);
  }
  if (ss_tot <= 0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

template std::array<double, 3> fit_least_squares<3>(
    const std::vector<std::array<double, 3>>&, const std::vector<double>&);
template double fit_r2<3>(const std::vector<std::array<double, 3>>&,
                          const std::vector<double>&,
                          const std::array<double, 3>&);
template std::array<double, 2> fit_least_squares<2>(
    const std::vector<std::array<double, 2>>&, const std::vector<double>&);
template double fit_r2<2>(const std::vector<std::array<double, 2>>&,
                          const std::vector<double>&,
                          const std::array<double, 2>&);

}  // namespace bsmp::analytic
