// Explicit (materialized) computation dags GT(H) — Definition 3 — and
// brute-force implementations of the paper's structural notions:
// preboundary Γin (Section 3), topological partition (Definition 4)
// and convexity (Definition 5).
//
// These are reference implementations with no regard for asymptotic
// efficiency; the production machinery in geom/ and sep/ is validated
// against them on small instances.
#pragma once

#include <unordered_set>
#include <vector>

#include "geom/lattice.hpp"

namespace bsmp::dag {

using geom::Point;
using geom::PointHash;
using geom::Stencil;

template <int D>
using PointSet = std::unordered_set<Point<D>, PointHash<D>>;

/// Explicit view of the dag GT(H) generalized to memory depth m: the
/// vertex set is every (x, t) with x in the mesh and 0 <= t < horizon,
/// and arcs are given by Stencil::preds.
template <int D>
class ExplicitDag {
 public:
  explicit ExplicitDag(Stencil<D> st) : st_(st) { st_.validate(); }

  const Stencil<D>& stencil() const { return st_; }

  std::vector<Point<D>> all_vertices() const {
    std::vector<Point<D>> v;
    for_each_vertex([&](const Point<D>& p) { v.push_back(p); });
    return v;
  }

  template <class F>
  void for_each_vertex(F&& visit) const {
    Point<D> p;
    for (int64_t t = 0; t < st_.horizon; ++t) {
      p.t = t;
      visit_space(p, 0, visit);
    }
  }

  std::vector<Point<D>> preds(const Point<D>& p) const {
    std::array<Point<D>, geom::kMono<D> + 1> buf;
    int k = st_.preds(p, buf);
    return {buf.begin(), buf.begin() + k};
  }

  /// Vertices of the dag whose predecessor list contains q.
  std::vector<Point<D>> succs(const Point<D>& q) const {
    std::array<Point<D>, geom::kMono<D> + 1> buf;
    int k = st_.succ_positions(q, buf);
    std::vector<Point<D>> out;
    for (int i = 0; i < k; ++i)
      if (st_.is_vertex(buf[i])) out.push_back(buf[i]);
    return out;
  }

  /// Γin(U): predecessors of members of U that are not in U.
  PointSet<D> preboundary(const PointSet<D>& u) const {
    PointSet<D> out;
    for (const auto& p : u)
      for (const auto& q : preds(p))
        if (!u.contains(q)) out.insert(q);
    return out;
  }

  /// Definition 4: (U1,...,Uq) is a topological partition of U if for
  /// every r, Γin(Ur) ⊆ Γin(U) ∪ U1 ∪ ... ∪ U_{r-1}. Also verifies that
  /// the parts are disjoint and cover U.
  bool is_topological_partition(const PointSet<D>& u,
                                const std::vector<PointSet<D>>& parts) const {
    std::size_t total = 0;
    for (const auto& part : parts) {
      total += part.size();
      for (const auto& p : part)
        if (!u.contains(p)) return false;
    }
    if (total != u.size()) return false;  // disjoint cover (sizes suffice
                                          // given parts ⊆ u and pairwise
                                          // disjointness checked below)
    PointSet<D> seen;
    for (const auto& part : parts)
      for (const auto& p : part)
        if (!seen.insert(p).second) return false;

    PointSet<D> gin_u = preboundary(u);
    PointSet<D> executed;  // U1 ∪ ... ∪ U_{r-1}
    for (const auto& part : parts) {
      for (const auto& q : preboundary(part)) {
        if (!gin_u.contains(q) && !executed.contains(q)) return false;
      }
      for (const auto& p : part) executed.insert(p);
    }
    return true;
  }

  /// Definition 5: U is convex if every vertex on every path between
  /// two members of U is in U. Checked by: a vertex w ∉ U that is
  /// reachable from U and reaches U violates convexity.
  bool is_convex(const PointSet<D>& u) const {
    if (u.empty()) return true;
    // Forward reachability from U.
    PointSet<D> from_u;
    for_each_vertex([&](const Point<D>& p) {
      if (u.contains(p)) {
        from_u.insert(p);
        return;
      }
      for (const auto& q : preds(p)) {
        if (from_u.contains(q)) {
          from_u.insert(p);
          return;
        }
      }
    });
    // Backward: does w reach U? Process vertices in reverse topological
    // (descending t) order.
    PointSet<D> to_u;
    std::vector<Point<D>> verts = all_vertices();
    for (auto it = verts.rbegin(); it != verts.rend(); ++it) {
      const Point<D>& p = *it;
      if (u.contains(p)) {
        to_u.insert(p);
        continue;
      }
      for (const auto& s : succs(p)) {
        if (to_u.contains(s)) {
          to_u.insert(p);
          break;
        }
      }
    }
    for (const auto& p : verts) {
      if (!u.contains(p) && from_u.contains(p) && to_u.contains(p))
        return false;
    }
    return true;
  }

 private:
  template <class F>
  void visit_space(Point<D>& p, int dim, F&& visit) const {
    if (dim == D) {
      visit(p);
      return;
    }
    for (int64_t x = 0; x < st_.extent[dim]; ++x) {
      p.x[dim] = x;
      visit_space(p, dim + 1, visit);
    }
  }

  Stencil<D> st_;
};

}  // namespace bsmp::dag
