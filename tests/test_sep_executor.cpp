// The Proposition-2 executor: functional correctness against the
// direct guest run, runtime topological-partition assertions, space
// bounds, and Proposition-3 cost conformance.
#include <gtest/gtest.h>

#include "geom/figures.hpp"
#include "geom/tiling.hpp"
#include "sep/executor.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using sep::Executor;
using sep::ExecutorConfig;
using sep::ValueMap;

namespace {

/// Execute the whole volume V through tiles + executor and compare the
/// final values with the reference run.
template <int D>
void check_equivalence(sep::Guest<D> guest, int64_t tile_w, int64_t leaf_w) {
  auto ref = sim::reference_run<D>(guest);

  ExecutorConfig cfg;
  cfg.leaf_width = leaf_w;
  cfg.f = hram::AccessFn::hierarchical(D, static_cast<double>(guest.stencil.m));
  Executor<D> exec(&guest, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);

  geom::TileGrid<D> grid(&guest.stencil, tile_w);
  ValueMap<D> staging;
  for (const auto& wave : grid.wavefronts())
    for (const auto& tile : wave) exec.execute(tile, staging);

  EXPECT_EQ(exec.vertices_executed(),
            guest.stencil.num_nodes() * guest.stencil.horizon);
  auto fin = sim::extract_final<D>(guest.stencil, staging);
  EXPECT_TRUE(sim::same_values<D>(fin, ref.final_values))
      << "D=" << D << " tile_w=" << tile_w << " leaf_w=" << leaf_w;
  EXPECT_GT(ledger.total(), 0.0);
}

}  // namespace

TEST(Executor1D, MatchesReferenceAcrossTileAndLeafWidths) {
  for (int64_t n : {4, 8, 13}) {
    for (int64_t T : {4, 9, 16}) {
      for (int64_t tile_w : {2, 4, 8}) {
        for (int64_t leaf_w : {1, 2, 4}) {
          if (leaf_w > tile_w) continue;
          auto g = workload::make_mix_guest<1>({n}, T, 1,
                                               0xabcdef | (n << 8) | T);
          check_equivalence<1>(std::move(g), tile_w, leaf_w);
        }
      }
    }
  }
}

TEST(Executor1D, MatchesReferenceWithMemoryDepth) {
  for (int64_t m : {2, 3, 4, 7}) {
    for (int64_t tile_w : {4, 8}) {
      auto g = workload::make_mix_guest<1>({9}, 17, m, 99 + m);
      check_equivalence<1>(std::move(g), tile_w, std::min<int64_t>(m, tile_w));
    }
  }
}

TEST(Executor2D, MatchesReference) {
  for (int64_t side : {3, 4, 6}) {
    for (int64_t tile_w : {3, 4}) {
      auto g = workload::make_mix_guest<2>({side, side}, side + 2, 1,
                                           7 * side);
      check_equivalence<2>(std::move(g), tile_w, 1);
    }
  }
}

TEST(Executor2D, MatchesReferenceWithMemoryDepth) {
  auto g = workload::make_mix_guest<2>({4, 4}, 9, 3, 1234);
  check_equivalence<2>(std::move(g), 4, 2);
}

TEST(Executor3D, MatchesReference) {
  // The Section-6 d=3 extension.
  auto g = workload::make_mix_guest<3>({3, 3, 3}, 5, 1, 55);
  check_equivalence<3>(std::move(g), 3, 1);
  auto g2 = workload::make_mix_guest<3>({2, 3, 2}, 6, 2, 56);
  check_equivalence<3>(std::move(g2), 4, 2);
}

TEST(Executor1D, Rule110MatchesReference) {
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{16}, 16, 1};
  g.rule = workload::rule110();
  g.input = workload::random_input<1>(2024);
  check_equivalence<1>(std::move(g), 8, 1);
}

TEST(Executor, PeakStagingWithinSpaceBound) {
  // The live value footprint of executing one D(r) must respect
  // Prop. 3's space bound (σ(|D|) = O(sqrt(|D|)) for d=1, m=1).
  for (int64_t r : {8, 16, 32}) {
    auto g = workload::make_mix_guest<1>({64}, 64, 1, 5);
    ExecutorConfig cfg;
    cfg.leaf_width = 1;
    cfg.f = hram::AccessFn::hierarchical(1, 1.0);
    Executor<1> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    geom::Region<1> d = geom::make_diamond(&g.stencil, 16, -r / 2, r);
    ASSERT_FALSE(d.empty());
    ValueMap<1> staging;
    // Seed the preboundary with arbitrary values.
    for (const auto& q : d.preboundary()) staging.emplace(q, 1);
    exec.execute(d, staging);
    EXPECT_LE(static_cast<double>(exec.peak_staging()),
              exec.space_bound(r))
        << "r=" << r;
  }
}

TEST(Executor, CostWithinProposition3Bound) {
  // τ(|U|) <= τ0 |U| log |U| for the d=1 diamond on the f(x)=x H-RAM.
  // Verify the normalized cost stays bounded (flat, in fact) as r
  // grows; τ0 is a constant of a few hundred (the paper's own σ0 for
  // this separator is ~11 and every copied word pays ~4 f(S(U))).
  double worst = 0, first = 0, last = 0;
  for (int64_t r : {8, 16, 32, 64}) {
    auto g = workload::make_mix_guest<1>({128}, 128, 1, 6);
    ExecutorConfig cfg;
    cfg.leaf_width = 1;
    cfg.f = hram::AccessFn::hierarchical(1, 1.0);
    Executor<1> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    geom::Region<1> d = geom::make_diamond(&g.stencil, 32, -r / 2, r);
    ValueMap<1> staging;
    for (const auto& q : d.preboundary()) staging.emplace(q, 1);
    exec.execute(d, staging);
    double k = static_cast<double>(d.count());
    double norm = ledger.total() / (k * core::logbar(k));
    if (first == 0) first = norm;
    last = norm;
    worst = std::max(worst, norm);
  }
  // A wrong exponent (Θ(k^1.5)) would both exceed the cap at r=64 and
  // make the normalized cost grow ~2x per doubling of r.
  EXPECT_LT(worst, 1000.0);
  EXPECT_LT(last / first, 2.0) << "normalized cost is not flat";
}

TEST(Executor, LeafWidthDoesNotChangeValues) {
  auto g = workload::make_mix_guest<1>({16}, 16, 4, 777);
  auto ref = sim::reference_run<1>(g);
  for (int64_t leaf : {1, 2, 4, 8}) {
    ExecutorConfig cfg;
    cfg.leaf_width = leaf;
    cfg.f = hram::AccessFn::hierarchical(1, 4.0);
    Executor<1> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    geom::TileGrid<1> grid(&g.stencil, 8);
    ValueMap<1> staging;
    for (const auto& wave : grid.wavefronts())
      for (const auto& tile : wave) exec.execute(tile, staging);
    auto fin = sim::extract_final<1>(g.stencil, staging);
    EXPECT_TRUE(sim::same_values<1>(fin, ref.final_values)) << leaf;
  }
}

TEST(Executor, RequiresLedger) {
  auto g = workload::make_mix_guest<1>({4}, 4, 1, 1);
  Executor<1> exec(&g, ExecutorConfig{});
  geom::TileGrid<1> grid(&g.stencil, 4);
  ValueMap<1> staging;
  auto waves = grid.wavefronts();
  ASSERT_FALSE(waves.empty());
  ASSERT_FALSE(waves[0].empty());
  EXPECT_THROW(exec.execute(waves[0][0], staging), bsmp::precondition_error);
}

TEST(Executor, MissingPreboundaryTriggersInvariantError) {
  // Executing an interior diamond with an empty staging map must trip
  // the runtime topological-partition assertion, not silently compute.
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 3);
  ExecutorConfig cfg;
  cfg.leaf_width = 1;
  cfg.f = hram::AccessFn::unit();
  Executor<1> exec(&g, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);
  geom::Region<1> d = geom::make_diamond(&g.stencil, 8, -4, 8);
  ValueMap<1> staging;  // missing Γin
  EXPECT_THROW(exec.execute(d, staging), bsmp::invariant_error);
}
