#include "machine/spec.hpp"

#include <cmath>

#include "core/expect.hpp"
#include "core/logmath.hpp"

namespace bsmp::machine {

void MachineSpec::validate() const {
  BSMP_REQUIRE_MSG(d >= 1 && d <= 3, "dimension must be 1..3, got " << d);
  BSMP_REQUIRE_MSG(n >= 1 && p >= 1 && m >= 1,
                   "n, p, m must be positive (n=" << n << " p=" << p
                                                  << " m=" << m << ")");
  BSMP_REQUIRE_MSG(p <= n, "p <= n required (p=" << p << " n=" << n << ")");
  BSMP_REQUIRE_MSG(n % p == 0, "p must divide n (p=" << p << " n=" << n << ")");
  if (d == 2) {
    BSMP_REQUIRE_MSG(core::is_square(static_cast<std::uint64_t>(n)),
                     "d=2 requires n to be a perfect square, got " << n);
    BSMP_REQUIRE_MSG(core::is_square(static_cast<std::uint64_t>(p)),
                     "d=2 requires p to be a perfect square, got " << p);
  }
}

core::Cost MachineSpec::link_length() const {
  return std::pow(static_cast<double>(n) / static_cast<double>(p),
                  1.0 / static_cast<double>(d));
}

std::int64_t MachineSpec::proc_side() const {
  if (d == 1) return p;
  auto s = static_cast<std::int64_t>(
      core::isqrt(static_cast<std::uint64_t>(p)));
  return s;
}

std::int64_t MachineSpec::node_side() const {
  if (d == 1) return n;
  auto s = static_cast<std::int64_t>(
      core::isqrt(static_cast<std::uint64_t>(n)));
  return s;
}

hram::AccessFn MachineSpec::access_fn() const {
  return hram::AccessFn::hierarchical(d, static_cast<double>(m));
}

core::Cost MachineSpec::transfer_cost(core::Cost dist,
                                      std::int64_t words) const {
  if (words <= 0) return 0.0;
  core::Cost per_word = dist < 1.0 ? 1.0 : dist;
  return per_word * static_cast<core::Cost>(words);
}

}  // namespace bsmp::machine
