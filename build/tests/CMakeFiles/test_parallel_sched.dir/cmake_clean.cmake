file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_sched.dir/test_parallel_sched.cpp.o"
  "CMakeFiles/test_parallel_sched.dir/test_parallel_sched.cpp.o.d"
  "test_parallel_sched"
  "test_parallel_sched.pdb"
  "test_parallel_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
