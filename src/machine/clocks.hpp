// Per-processor virtual clocks with barrier semantics.
//
// The multiprocessor simulators of Sections 4.2 and 5 are organized in
// synchronous stages: within a stage each processor works on its own
// share; at the stage boundary all processors wait for the slowest.
// ProcClocks tracks per-processor elapsed virtual time, enforces the
// barrier (max), and exposes both the makespan and the total busy time
// (their ratio is the load balance of the schedule).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"

namespace bsmp::machine {

class ProcClocks {
 public:
  explicit ProcClocks(std::int64_t p);

  std::int64_t num_procs() const {
    return static_cast<std::int64_t>(clock_.size());
  }

  /// Advance processor `i`'s clock by `c >= 0` units of virtual time.
  void advance(std::int64_t i, core::Cost c);

  /// Synchronize: every clock jumps to the maximum. Returns the stage
  /// makespan contribution (max - previous barrier level).
  core::Cost barrier();

  /// Current makespan (max clock).
  core::Cost makespan() const;

  /// Total busy time accumulated via advance() across all processors.
  core::Cost busy_total() const { return busy_; }

  /// Busy time / (p * makespan): 1.0 means perfectly balanced.
  double utilization() const;

  core::Cost clock(std::int64_t i) const;

 private:
  std::vector<core::Cost> clock_;
  core::Cost busy_ = 0;
};

}  // namespace bsmp::machine
