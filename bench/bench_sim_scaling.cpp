// SIMS — multi-core scaling of the full two-regime multiprocessor
// simulator (sim::multiproc). No table emitter: the subject is the
// simulator's own fork points — top-level machine-tile waves, regime-1
// relocation runs, regime-2 subtile wavefronts, and the executor-leaf
// forks nested inside subtile bodies — so this binary uses a custom
// main instead of BSMP_BENCH_MAIN.
//
// What it does, in order:
//
//   1. conformance gate: runs each workload three ways — serial (all
//      fork grains off, no ambient scheduler: the reference path),
//      forkjoin_t1 (grains on, no scheduler: every fork gate sees a
//      non-parallel world and must take the serial path, so grain-on
//      without a pool costs nothing), and forkjoin_tN (caller bound to
//      a multi-slot engine::Pool: the forked paths with StagingShard
//      overlays and canonical-order ChargeLog replay) — and aborts
//      unless virtual time, guest time, preprocess, every per-kind
//      ledger total and event count, vertex count, utilization, peak
//      staging, slab allocs, and every final guest value are
//      bit-identical across all three;
//   2. serializes the three passes per workload (wall clock, fork-join
//      task counters split by mechanism via tasks.phases, executor
//      hot-path records, per-phase span-histogram deltas when tracing
//      is live) as metrics_sim_scaling.json — the bsmp-metrics-v2
//      artifact CI uploads;
//   3. runs google-benchmark kernels for the same workloads: serial,
//      forkjoin_t1 (the <=10%-overhead bar) and forkjoin_tN (the
//      multi-core speedup; the CI bar on >=4-thread runners is >=2x
//      over forkjoin_t1). A Release run's --benchmark_out is committed
//      as bench/BENCH_sim_scaling.json next to the manifest's
//      hardware_threads so the numbers are read against the hardware
//      that produced them.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "bench_common.hpp"

using namespace bsmp;

namespace {

// Fork every wavefront with at least two independent pieces; fork
// relocation levels above 64-wide (d=1) / 4-wide (d=2) regions; fork
// executor recursion above 16-wide regions inside subtile bodies (a
// no-op for the d=2 case, whose subtiles are 4-wide — its parallelism
// comes from the wavefronts).
constexpr std::int64_t kWaveGrain = 2;
constexpr std::int64_t kRelocGrainD1 = 64;
constexpr std::int64_t kRelocGrainD2 = 4;
constexpr std::int64_t kExecGrain = 16;

// At least two slots even on a single-core host, so the scheduler is
// parallel() and the tN kernels really exercise the forked paths
// (oversubscribed on one core, but determinism is the point there;
// the speedup bar only applies on >=4-thread hardware).
int pool_threads() {
  return std::max(2, engine::Pool::hardware_threads());
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof b == sizeof v);
  std::memcpy(&b, &v, sizeof b);
  return b;
}

template <int D>
struct SimCase {
  const char* what;
  std::array<std::int64_t, D> extent;
  std::int64_t horizon;
  std::int64_t m;
  std::int64_t p;
  std::int64_t s;
  std::int64_t reloc_grain;
};

// d=1: 1024 nodes x 1024 steps on p=16 hosts, s=32 => macro strips of
// width 512 (two machine tiles), 16 subtiles per regime-2 wavefront.
constexpr SimCase<1> kCaseD1{"sim_d1_n1024", {1024}, 1024, 2, 16, 32,
                             kRelocGrainD1};
// d=2: 32x32 nodes x 32 steps on a 4x4 host grid, s=4 => 16x16 macro
// tiles, anti-diagonal wavefronts of up to 4 subtiles.
constexpr SimCase<2> kCaseD2{"sim_d2_n1024", {32, 32}, 32, 1, 16, 4,
                             kRelocGrainD2};

template <int D>
machine::MachineSpec host_of(const SimCase<D>& c) {
  std::int64_t n = 1;
  for (auto e : c.extent) n *= e;
  return bench::spec(D, n, c.p, c.m);
}

template <int D>
struct SimOut {
  sim::SimResult<D> res;
  std::size_t peak = 0;
  std::size_t allocs = 0;
};

/// One full two-regime simulation. grains_on routes the run through
/// every fork point (machine-tile, regime1-relocate, regime2-wave,
/// regime2-subtile via the embedded executor) — whether anything
/// actually forks is then up to the ambient scheduler.
template <int D>
SimOut<D> run_sim(const sep::Guest<D>& g, const SimCase<D>& c,
                  bool grains_on, engine::Metrics* sink = nullptr) {
  const std::int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(grains_on ? kExecGrain : 0);
  sim::MultiprocConfig cfg;
  cfg.s = c.s;
  cfg.reloc_grain = grains_on ? c.reloc_grain : 0;
  cfg.wave_grain = grains_on ? kWaveGrain : 0;
  engine::Metrics local;
  cfg.metrics = sink != nullptr ? sink : &local;
  cfg.hot_label = c.what;
  SimOut<D> out;
  out.res = sim::simulate_multiproc<D>(g, host_of(c), cfg);
  auto hot = cfg.metrics->hot_snapshot();
  if (!hot.empty()) {
    out.peak = hot.back().peak_staging_words;
    out.allocs = hot.back().staging_allocs;
  }
  sep::set_default_parallel_grain(saved);
  return out;
}

template <int D>
void check_identical(const char* what, const char* mode,
                     const SimOut<D>& ref, const SimOut<D>& got) {
  bool ok = bits_of(ref.res.time) == bits_of(got.res.time) &&
            bits_of(ref.res.guest_time) == bits_of(got.res.guest_time) &&
            bits_of(ref.res.preprocess) == bits_of(got.res.preprocess) &&
            bits_of(ref.res.utilization) == bits_of(got.res.utilization) &&
            ref.res.vertices == got.res.vertices && ref.peak == got.peak &&
            ref.allocs == got.allocs &&
            ref.res.final_values == got.res.final_values;
  for (std::size_t k = 0; k < core::CostLedger::kNumKinds; ++k) {
    auto kind = static_cast<core::CostKind>(k);
    ok = ok &&
         bits_of(ref.res.ledger.cost(kind)) ==
             bits_of(got.res.ledger.cost(kind)) &&
         ref.res.ledger.events(kind) == got.res.ledger.events(kind);
  }
  if (!ok) {
    std::cerr << "FATAL: " << what << " " << mode
              << " differs from the serial reference — forked two-regime "
                 "simulation determinism broken\n";
    std::abort();
  }
}

/// One timed pass for the metrics report: wall clock, task counters
/// (with the per-mechanism phases split), hot records, and the
/// span-histogram delta across the pass.
template <class Fn>
engine::MetricsPass timed_pass(int threads, engine::Metrics& sink,
                               engine::Pool* pool, Fn&& body) {
  const engine::trace::HistSnapshot hist_before =
      engine::trace::hist_snapshot();
  if (pool != nullptr) pool->reset_task_stats();
  engine::MetricsPass pass;
  pass.threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  body();
  pass.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (pool != nullptr) pass.tasks = pool->task_stats();
  pass.hot = sink.hot_snapshot();
  pass.histograms = engine::trace::hist_snapshot();
  pass.histograms -= hist_before;
  sink.clear();
  return pass;
}

/// The three-way determinism gate + metrics_sim_scaling.json.
void conformance_gate(int threads) {
  engine::MetricsReport report;
  report.name = "sim_scaling";

  auto gate = [&](const auto& c) {
    constexpr int D =
        std::tuple_size_v<decltype(c.extent)> == 1 ? 1 : 2;
    auto g = workload::make_mix_guest<D>(c.extent, c.horizon, c.m, 7);
    engine::Metrics sink;

    SimOut<D> serial, t1, tn;
    auto serial_pass = timed_pass(1, sink, nullptr, [&] {
      serial = run_sim<D>(g, c, /*grains_on=*/false, &sink);
    });
    auto t1_pass = timed_pass(1, sink, nullptr, [&] {
      t1 = run_sim<D>(g, c, /*grains_on=*/true, &sink);
    });
    engine::Pool pool(threads);
    auto tn_pass = timed_pass(threads, sink, &pool, [&] {
      auto bind = pool.bind_caller();
      tn = run_sim<D>(g, c, /*grains_on=*/true, &sink);
    });

    check_identical(c.what, "forkjoin_t1", serial, t1);
    check_identical(c.what, "forkjoin_tN", serial, tn);

    std::printf("# %s: serial %.3fs, t1 %.3fs, threads=%d %.3fs "
                "(%lld vertices)\n",
                c.what, serial_pass.seconds, t1_pass.seconds, threads,
                tn_pass.seconds, static_cast<long long>(tn.res.vertices));
    for (std::size_t i = 0; i < engine::kNumForkPhases; ++i) {
      const auto& ph = tn_pass.tasks.phase[i];
      if (ph.spawned == 0 && ph.inlined == 0) continue;
      std::printf("#   %-17s %llu spawned, %llu inlined, %llu join waits\n",
                  engine::fork_phase_name(static_cast<engine::ForkPhase>(i)),
                  static_cast<unsigned long long>(ph.spawned),
                  static_cast<unsigned long long>(ph.inlined),
                  static_cast<unsigned long long>(ph.join_waits));
    }
    report.passes.push_back(std::move(serial_pass));
    report.passes.push_back(std::move(t1_pass));
    report.passes.push_back(std::move(tn_pass));
  };

  gate(kCaseD1);
  gate(kCaseD2);

  report.manifest = engine::trace::make_run_manifest(report.name);
  const auto path = engine::metrics_output_path(report.name);
  if (report.write_json_file(path))
    std::printf("# metrics: %s\n\n", path.c_str());
  else
    std::printf("# metrics: could not write %s\n\n", path.c_str());
}

// --- google-benchmark kernels -------------------------------------

template <int D>
void bm_sim(benchmark::State& state, const SimCase<D>& c, bool grains_on,
            int threads) {
  auto g = workload::make_mix_guest<D>(c.extent, c.horizon, c.m, 7);
  std::optional<engine::Pool> pool;
  if (threads > 1) {
    pool.emplace(threads);
    pool->reset_task_stats();
  }
  std::int64_t vertices = 0;
  auto loop = [&] {
    for (auto _ : state) {
      auto out = run_sim<D>(g, c, grains_on);
      vertices = out.res.vertices;
      benchmark::DoNotOptimize(out.res.time);
    }
  };
  if (pool) {
    auto bind = pool->bind_caller();  // Bind is scoped, not movable
    loop();
  } else {
    loop();
  }
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
  if (pool) {
    auto ts = pool->task_stats();
    state.counters["tasks_spawned"] = static_cast<double>(ts.spawned);
    state.counters["tasks_stolen"] = static_cast<double>(ts.stolen);
    state.counters["join_waits"] = static_cast<double>(ts.join_waits);
  }
}

void BM_sim_d1_serial(benchmark::State& state) {
  bm_sim<1>(state, kCaseD1, false, 1);
}
void BM_sim_d1_forkjoin_t1(benchmark::State& state) {
  bm_sim<1>(state, kCaseD1, true, 1);
}
void BM_sim_d1_forkjoin_tN(benchmark::State& state) {
  bm_sim<1>(state, kCaseD1, true, pool_threads());
}
void BM_sim_d2_serial(benchmark::State& state) {
  bm_sim<2>(state, kCaseD2, false, 1);
}
void BM_sim_d2_forkjoin_t1(benchmark::State& state) {
  bm_sim<2>(state, kCaseD2, true, 1);
}
void BM_sim_d2_forkjoin_tN(benchmark::State& state) {
  bm_sim<2>(state, kCaseD2, true, pool_threads());
}

// Real time throughout: with a pool bound, the main thread's CPU time
// undercounts parked joins, which would inflate the tN rate — the >=2x
// bar is a wall-clock claim, so every kernel reports wall-clock rates.
BENCHMARK(BM_sim_d1_serial)->UseRealTime();
BENCHMARK(BM_sim_d1_forkjoin_t1)->UseRealTime();
BENCHMARK(BM_sim_d1_forkjoin_tN)->UseRealTime();
BENCHMARK(BM_sim_d2_serial)->UseRealTime();
BENCHMARK(BM_sim_d2_forkjoin_t1)->UseRealTime();
BENCHMARK(BM_sim_d2_forkjoin_tN)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  conformance_gate(pool_threads());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
