# Empty dependencies file for bench_e9_figures.
# This may be replaced when dependencies are built.
