// "ens" — the batched-ensemble artifact: 64 perturbed initial
// conditions of a cellular automaton evolved in ONE charged pass
// through the separator executor, using the bit-sliced lane batching
// of sep/guest.hpp (bit l of every staged word is scenario l).
//
// Two configs run as points of one engine sweep:
//   * rule110 (d=1): lane 0 is a base random 0/1 row; lane l flips the
//     base bit of node l*stride — 64 single-site perturbations of one
//     initial condition, the classic damage-spreading ensemble;
//   * xor parity (d=2, m=2): every bit of the random input words is an
//     independent scenario (the rule is linear over GF(2) per bit).
//
// The emitter asserts the charging invariant the whole batching rests
// on: the packed run's vertices, charged totals and peak staging are
// bit-identical to a *scalar* run of the same stencil (charging is
// count-based — it counts points, never lane contents), and the dense
// StagingStore and hash-map ValueMap paths agree on everything. The
// emitted table carries only deterministic fields (lane digests,
// counts, charged totals) and is golden-digested by the conformance
// suite; wall-clock throughput goes to EngineCtx::metrics with
// lanes=64, which bench_exec_batch serializes and gates.
#include <string>
#include <utility>
#include <vector>

#include "sim/observe.hpp"
#include "tables/detail.hpp"
#include "tables/emitters.hpp"
#include "tables/hotpath.hpp"
#include "workload/rules.hpp"

namespace bsmp::tables {

namespace {

/// FNV-1a over the final rows in final_points order — a deterministic
/// content digest of all 64 lanes at once.
template <int D, class Store>
std::uint64_t final_digest(const geom::Stencil<D>& st, const Store& staging) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t w) {
    for (int b = 0; b < 64; b += 8) {
      h ^= (w >> b) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& q : sim::final_points<D>(st)) {
    const sep::Word* v = sep::store_find(staging, q);
    BSMP_REQUIRE_MSG(v != nullptr, "ensemble final value missing");
    mix(*v);
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int b = 60; b >= 0; b -= 4) s += digits[(v >> b) & 0xf];
  return s;
}

/// Deterministic result of one ensemble config.
struct EnsRun {
  std::string label;
  hotpath::ExecStats batch;   ///< the packed 64-lane run (dense store)
  hotpath::ExecStats scalar;  ///< one scalar run, same stencil
  std::uint64_t digest = 0;   ///< FNV over all final rows, all lanes
};

/// The rule110 damage-spreading ensemble: base random 0/1 row in every
/// lane, lane l additionally flipping node l*stride at t=0.
sep::Guest<1> ens110_guest(std::int64_t n, std::int64_t horizon,
                           std::uint64_t seed) {
  sep::Guest<1> g;
  g.stencil.extent = {n};
  g.stencil.horizon = horizon;
  g.stencil.m = 1;
  g.rule = workload::rule110_lanes();
  const std::int64_t stride = n / sep::kLanes;
  BSMP_REQUIRE_MSG(stride >= 1, "ensemble needs n >= 64");
  auto base = workload::random_input<1>(seed);
  g.input = [base, stride](const std::array<std::int64_t, 1>& x,
                           std::int64_t cell) -> sep::Word {
    sep::Word w = (base(x, cell) & 1u) ? ~sep::Word{0} : sep::Word{0};
    if (x[0] % stride == 0 && x[0] / stride < sep::kLanes)
      w ^= sep::Word{1} << (x[0] / stride);  // lane l flips node l*stride
    return w;
  };
  return g;
}

template <int D>
EnsRun ens_config(const std::string& label, const sep::Guest<D>& guest,
                  const sep::Guest<D>& scalar_guest) {
  // Packed run, dense store and hash-map store: same executor, both
  // stores must agree on every deterministic field and value.
  sep::StagingStore<D> dense_staging(&guest.stencil);
  hotpath::ExecStats batch = hotpath::run_dense<D>(guest, dense_staging);
  sep::ValueMap<D> map_staging;
  {
    sep::Executor<D> exec(&guest, hotpath::detail::exec_config(guest));
    hotpath::ExecStats viamap =
        hotpath::detail::drive(guest, exec, map_staging);
    BSMP_REQUIRE_MSG(viamap.vertices == batch.vertices &&
                         viamap.total_cost == batch.total_cost &&
                         viamap.peak_staging_words == batch.peak_staging_words,
                     label << ": dense and map stores disagree on "
                              "deterministic fields");
    BSMP_REQUIRE_MSG(
        sim::same_values<D>(
            sim::extract_final<D>(guest.stencil, dense_staging),
            sim::extract_final<D>(guest.stencil, map_staging)),
        label << ": dense and map stores computed different lane values");
  }

  // The charging invariant: a packed 64-lane run charges exactly what
  // one scalar run of the same stencil charges — lanes ride for free.
  sep::StagingStore<D> scalar_staging(&scalar_guest.stencil);
  hotpath::ExecStats scalar =
      hotpath::run_dense<D>(scalar_guest, scalar_staging);
  BSMP_REQUIRE_MSG(scalar.vertices == batch.vertices,
                   label << ": batch and scalar vertex counts differ");
  BSMP_REQUIRE_MSG(scalar.total_cost == batch.total_cost,
                   label << ": batch run charged differently from scalar — "
                            "charging is reading lane contents");
  BSMP_REQUIRE_MSG(scalar.peak_staging_words == batch.peak_staging_words,
                   label << ": batch and scalar peak staging differ");
  BSMP_REQUIRE_MSG(scalar.staging_allocs == batch.staging_allocs,
                   label << ": batch and scalar slab allocations differ");

  return {label, batch, scalar, final_digest<D>(guest.stencil, dense_staging)};
}

}  // namespace

std::vector<Emitted> ensemble_tables(EngineCtx& ctx) {
  std::vector<int> configs{0, 1};
  std::vector<EnsRun> runs = detail::sweep_values<EnsRun>(
      ctx, configs,
      [](int config, engine::SweepContext&) -> EnsRun {
        if (config == 0) {
          auto guest = ens110_guest(256, 256, 11);
          sep::Guest<1> scalar;
          scalar.stencil = guest.stencil;
          scalar.rule = workload::rule110();
          scalar.input = [in = guest.input](
                             const std::array<std::int64_t, 1>& x,
                             std::int64_t cell) -> sep::Word {
            return in(x, cell) & 1u;  // lane 0 of the packed ensemble
          };
          return ens_config<1>("ens_rule110_d1_n256", guest, scalar);
        }
        sep::Guest<2> guest;
        guest.stencil.extent = {24, 24};
        guest.stencil.horizon = 48;
        guest.stencil.m = 2;
        guest.rule = workload::xor_rule<2>();
        guest.input = workload::random_input<2>(13);
        sep::Guest<2> scalar = guest;
        scalar.input = [in = guest.input](const std::array<std::int64_t, 2>& x,
                                          std::int64_t cell) -> sep::Word {
          return in(x, cell) & 1u;
        };
        return ens_config<2>("ens_xor_d2_w24", guest, scalar);
      },
      "ensemble configs");

  core::Table t(
      "ENS: 64-scenario bit-sliced ensembles, one charged pass "
      "(batch charges == scalar charges, asserted)",
      {"config", "lanes", "vertices", "peak staging", "slab allocs",
       "cost total", "final digest"});
  for (const EnsRun& r : runs) {
    t.add_row({r.label, static_cast<long long>(sep::kLanes),
               static_cast<long long>(r.batch.vertices),
               static_cast<long long>(r.batch.peak_staging_words),
               static_cast<long long>(r.batch.staging_allocs),
               r.batch.total_cost, hex64(r.digest)});
    if (ctx.metrics != nullptr) {
      engine::HotPathMetric h;
      h.label = r.label + "/batch";
      h.vertices = r.batch.vertices;
      h.seconds = r.batch.seconds;
      h.peak_staging_words = r.batch.peak_staging_words;
      h.staging_allocs = r.batch.staging_allocs;
      h.lanes = sep::kLanes;
      ctx.metrics->record_hot(std::move(h));
      engine::HotPathMetric s;
      s.label = r.label + "/scalar";
      s.vertices = r.scalar.vertices;
      s.seconds = r.scalar.seconds;
      s.peak_staging_words = r.scalar.peak_staging_words;
      s.staging_allocs = r.scalar.staging_allocs;
      s.lanes = 1;
      ctx.metrics->record_hot(std::move(s));
    }
  }
  return {{std::move(t),
           "# One charged pass carries all 64 lanes: the batch runs above\n"
           "# charge bit-identical totals, vertex counts and staging peaks\n"
           "# to their scalar single-scenario runs (asserted). The digest\n"
           "# covers every lane of every final row. Throughput and the\n"
           "# scenarios_per_sec derivation are in metrics_ens.json and\n"
           "# BENCH_exec_batch.json.\n"}};
}

}  // namespace bsmp::tables
