// Internal helpers shared by the emitter translation units.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "analytic/tradeoff.hpp"
#include "core/expect.hpp"
#include "engine/sweep.hpp"
#include "machine/spec.hpp"
#include "sim/compare.hpp"
#include "sim/result.hpp"
#include "tables/cached.hpp"
#include "tables/emitters.hpp"

namespace bsmp::tables::detail {

using Row = std::vector<core::Cell>;

inline machine::MachineSpec spec(int d, std::int64_t n, std::int64_t p,
                                 std::int64_t m) {
  machine::MachineSpec s;
  s.d = d;
  s.n = n;
  s.p = p;
  s.m = m;
  return s;
}

/// A table emitter must never report costs of a wrong computation:
/// throws (failing the conformance suite, aborting a bench) if a
/// simulation diverged from the reference.
template <int D>
void require_equivalent(const sim::SimResult<D>& res,
                        const sim::SimResult<D>& ref, const char* what) {
  BSMP_REQUIRE_MSG(sim::same_values<D>(res.final_values, ref.final_values),
                   what << " produced wrong guest values; cost data would "
                           "be meaningless");
}

/// Strip width used by the Theorem-4 sweeps: the closed-form s*
/// clamped to the feasible range.
inline std::int64_t pick_s(std::int64_t n, std::int64_t m, std::int64_t p) {
  auto s = static_cast<std::int64_t>(analytic::s_star(
      static_cast<double>(n), static_cast<double>(m), static_cast<double>(p)));
  s = s < 1 ? 1 : s;
  while (s > 1 && s * p > n) s /= 2;
  return s;
}

/// Sweep `points` into table rows on the context's pool and cache.
/// `label` stamps the sweep's record in ctx.metrics (when attached).
template <typename Point, typename Fn>
std::vector<Row> sweep_rows(EngineCtx& ctx, const std::vector<Point>& points,
                            Fn&& fn, std::string label = {}) {
  engine::SweepOptions opt;
  opt.plans = ctx.plans;
  opt.metrics = ctx.metrics;
  opt.label = std::move(label);
  return engine::Sweep<Point, Row>(points, opt).run(*ctx.pool,
                                                    std::forward<Fn>(fn));
}

/// Sweep into arbitrary per-point values (for emitters that
/// post-process across the whole sweep before building rows).
template <typename Value, typename Point, typename Fn>
std::vector<Value> sweep_values(EngineCtx& ctx,
                                const std::vector<Point>& points, Fn&& fn,
                                std::string label = {}) {
  engine::SweepOptions opt;
  opt.plans = ctx.plans;
  opt.metrics = ctx.metrics;
  opt.label = std::move(label);
  return engine::Sweep<Point, Value>(points, opt).run(*ctx.pool,
                                                      std::forward<Fn>(fn));
}

}  // namespace bsmp::tables::detail
