# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_args_stats[1]_include.cmake")
include("/root/repo/build/tests/test_region_property[1]_include.cmake")
include("/root/repo/build/tests/test_executor_property[1]_include.cmake")
include("/root/repo/build/tests/test_concrete[1]_include.cmake")
include("/root/repo/build/tests/test_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_observe[1]_include.cmake")
include("/root/repo/build/tests/test_sim_more[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_sched[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_shell_partition[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_ram_machine[1]_include.cmake")
include("/root/repo/build/tests/test_advisor_io[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_compare[1]_include.cmake")
include("/root/repo/build/tests/test_hram[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_geom_region[1]_include.cmake")
include("/root/repo/build/tests/test_geom_partitions[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_sep_executor[1]_include.cmake")
include("/root/repo/build/tests/test_sim_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
