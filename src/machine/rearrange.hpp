// The memory rearrangement pi = pi2 * pi1 of Section 4.2.
//
// The guest's n columns are grouped into q = n/s vertical strips. The
// strip data is permuted once, before the simulation starts, so that:
//   (a) initially consecutive strips end up either consecutive or at
//       distance q/p in the rearranged order, and
//   (b) every length-p window of original strips has, for every
//       processor position j, one of its strips within distance q/p of
//       abscissa j*(q/p).
// Property (a) bounds preboundary-transfer distances (divided by p
// w.r.t. the identity layout); property (b) lets the cooperating mode
// pair adjacent strips with adjacent processors. Both are verified by
// property tests.
#pragma once

#include <cstdint>
#include <vector>

namespace bsmp::machine {

/// pi1: reverse the order of strips inside every odd-indexed segment of
/// length p. q must be a multiple of p.
std::vector<std::int64_t> pi1(std::int64_t q, std::int64_t p);

/// pi2: the (q/p)-way shuffle — element at position i = a*p + b moves
/// to position b*(q/p) + a.
std::vector<std::int64_t> pi2(std::int64_t q, std::int64_t p);

/// The composition: rearranged_position[g] of original strip g.
std::vector<std::int64_t> rearrangement(std::int64_t q, std::int64_t p);

}  // namespace bsmp::machine
