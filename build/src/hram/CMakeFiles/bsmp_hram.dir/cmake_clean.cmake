file(REMOVE_RECURSE
  "CMakeFiles/bsmp_hram.dir/access_fn.cpp.o"
  "CMakeFiles/bsmp_hram.dir/access_fn.cpp.o.d"
  "CMakeFiles/bsmp_hram.dir/hram.cpp.o"
  "CMakeFiles/bsmp_hram.dir/hram.cpp.o.d"
  "CMakeFiles/bsmp_hram.dir/ram_machine.cpp.o"
  "CMakeFiles/bsmp_hram.dir/ram_machine.cpp.o.d"
  "libbsmp_hram.a"
  "libbsmp_hram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_hram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
