#include "engine/task.hpp"

#include <chrono>
#include <utility>

#include "core/expect.hpp"

namespace bsmp::engine {

namespace {

thread_local TaskScheduler* tl_sched = nullptr;
thread_local int tl_slot = -1;

}  // namespace

TaskScheduler* TaskScheduler::current() { return tl_sched; }
int TaskScheduler::current_slot() { return tl_slot; }

const char* fork_phase_name(ForkPhase p) {
  switch (p) {
    case ForkPhase::kMachineTile:
      return "machine-tile";
    case ForkPhase::kRegime1Relocate:
      return "regime1-relocate";
    case ForkPhase::kRegime2Wave:
      return "regime2-wave";
    case ForkPhase::kRegime2Subtile:
      return "regime2-subtile";
    case ForkPhase::kExecutorLeaf:
      return "executor-leaf";
    case ForkPhase::kNone:
    case ForkPhase::kCount:
      break;
  }
  return "none";
}

ForkPhase fork_phase_from_name(std::string_view name) {
  for (std::size_t i = 1; i < kNumForkPhases; ++i) {
    auto p = static_cast<ForkPhase>(i);
    if (name == fork_phase_name(p)) return p;
  }
  return ForkPhase::kNone;
}

TaskScheduler::Bind::Bind(TaskScheduler* sched, int slot)
    : prev_sched_(tl_sched), prev_slot_(tl_slot), sched_(sched), slot_(slot) {
  BSMP_REQUIRE(sched != nullptr);
  BSMP_REQUIRE(slot >= 0 && slot < sched->slots());
  Slot& s = *sched->slots_[static_cast<std::size_t>(slot)];
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (s.owner.compare_exchange_strong(expected, self,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
    owned_ = true;  // release in ~Bind; nested same-thread binds do not
  } else {
    BSMP_REQUIRE_MSG(expected == self,
                     "task scheduler slot "
                         << slot
                         << " is already bound by another thread; at most "
                            "one thread may hold a slot binding at a time");
  }
  tl_sched = sched;
  tl_slot = slot;
}

TaskScheduler::Bind::~Bind() {
  if (owned_)
    sched_->slots_[static_cast<std::size_t>(slot_)]->owner.store(
        std::thread::id{}, std::memory_order_release);
  tl_sched = prev_sched_;
  tl_slot = prev_slot_;
}

TaskScheduler::TaskScheduler(int slots) : nslots_(slots) {
  BSMP_REQUIRE(slots >= 1);
  slots_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) slots_.push_back(std::make_unique<Slot>());
}

void TaskScheduler::push(int slot, Task t) {
  pending_.fetch_add(1, std::memory_order_release);
  {
    Slot& s = *slots_[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lk(s.mu);
    s.q.push_back(std::move(t));
  }
  notify_progress();
  if (wake_) wake_();
}

bool TaskScheduler::try_acquire(int slot, Task& out) {
  {
    // Own deque, newest first: depth-first on the forking thread.
    Slot& own = *slots_[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.q.empty()) {
      out = std::move(own.q.back());
      own.q.pop_back();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // Steal sweep: take the older half of the first non-empty victim.
  for (int k = 1; k < nslots_; ++k) {
    int v = (slot + k) % nslots_;
    std::vector<Task> batch;
    {
      Slot& victim = *slots_[static_cast<std::size_t>(v)];
      std::lock_guard<std::mutex> lk(victim.mu);
      std::size_t n = victim.q.size();
      if (n == 0) continue;
      std::size_t take = (n + 1) / 2;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(victim.q.front()));
        victim.q.pop_front();
      }
    }
    steal_ops_.fetch_add(1, std::memory_order_relaxed);
    stolen_.fetch_add(batch.size(), std::memory_order_relaxed);
#if BSMP_TRACE_ENABLED
    if (trace::enabled()) {
      trace::instant(trace::Cat::kTask, "steal",
                     static_cast<std::int64_t>(batch.size()),
                     static_cast<std::int64_t>(v));
      if (batch.front().enq_ns != 0)
        trace::steal_latency(trace::detail::now_ns() - batch.front().enq_ns);
    }
#endif
    // Execute the oldest; the rest go to the thief's own deque. Their
    // pending_ count carries over — only the executed task leaves the
    // queued state here.
    out = std::move(batch.front());
    pending_.fetch_sub(1, std::memory_order_release);
    if (batch.size() > 1) {
      Slot& own = *slots_[static_cast<std::size_t>(slot)];
      std::lock_guard<std::mutex> lk(own.mu);
      for (std::size_t i = 1; i < batch.size(); ++i)
        own.q.push_back(std::move(batch[i]));
    }
    return true;
  }
  return false;
}

void TaskScheduler::run(Task& t) {
  trace::Span span(trace::Cat::kTask, "task-run",
                   static_cast<std::int64_t>(t.index));
  try {
    t.fn();
  } catch (...) {
    t.scope->record_error(t.index);
  }
  t.scope->finished();
}

void TaskScheduler::run_pending(int slot) {
  Task t;
  while (try_acquire(slot, t)) run(t);
}

void TaskScheduler::notify_progress() {
  // Empty critical section: any joiner between its predicate check and
  // the wait is forced to observe the state change.
  { std::lock_guard<std::mutex> lk(sleep_mu_); }
  sleep_cv_.notify_all();
}

TaskStats TaskScheduler::stats() const {
  TaskStats s;
  s.spawned = spawned_.load(std::memory_order_relaxed);
  s.inlined = inlined_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  s.steal_ops = steal_ops_.load(std::memory_order_relaxed);
  s.join_waits = join_waits_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumForkPhases; ++i) {
    s.phase[i].spawned = phase_[i].spawned.load(std::memory_order_relaxed);
    s.phase[i].inlined = phase_[i].inlined.load(std::memory_order_relaxed);
    s.phase[i].join_waits =
        phase_[i].join_waits.load(std::memory_order_relaxed);
    s.phase[i].park_ns = phase_[i].park_ns.load(std::memory_order_relaxed);
  }
  return s;
}

void TaskScheduler::reset_stats() {
  spawned_.store(0, std::memory_order_relaxed);
  inlined_.store(0, std::memory_order_relaxed);
  stolen_.store(0, std::memory_order_relaxed);
  steal_ops_.store(0, std::memory_order_relaxed);
  join_waits_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumForkPhases; ++i) {
    phase_[i].spawned.store(0, std::memory_order_relaxed);
    phase_[i].inlined.store(0, std::memory_order_relaxed);
    phase_[i].join_waits.store(0, std::memory_order_relaxed);
    phase_[i].park_ns.store(0, std::memory_order_relaxed);
  }
}

TaskScope::TaskScope(ForkPhase phase)
    : sched_(TaskScheduler::current()),
      slot_(TaskScheduler::current_slot()),
      phase_(phase) {}

TaskScope::~TaskScope() {
  if (!joined_) {
    try {
      join();
    } catch (...) {
      // The caller skipped join(); its error contract is already void.
    }
  }
}

void TaskScope::record_error(std::size_t index) {
  std::lock_guard<std::mutex> lk(emu_);
  if (!error_ || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
}

void TaskScope::finished() {
  // The releasing decrement can let join() return and destroy the scope
  // (a stack object in the forking frame) before this thread runs
  // another instruction, so no scope member may be touched after it:
  // copy the scheduler pointer out first. The scheduler is owned by the
  // Pool and outlives every task.
  TaskScheduler* s = sched_;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (s != nullptr) s->notify_progress();
  }
}

void TaskScope::fork(std::function<void()> fn) {
  std::size_t index = next_index_++;
  joined_ = false;
  if (sched_ == nullptr || !sched_->parallel()) {
    // Sequential reference path: inline, immediately, in fork order.
    if (sched_ != nullptr) {
      sched_->inlined_.fetch_add(1, std::memory_order_relaxed);
      sched_->phase_[static_cast<std::size_t>(phase_)].inlined.fetch_add(
          1, std::memory_order_relaxed);
    }
    try {
      fn();
    } catch (...) {
      record_error(index);
    }
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  sched_->spawned_.fetch_add(1, std::memory_order_relaxed);
  sched_->phase_[static_cast<std::size_t>(phase_)].spawned.fetch_add(
      1, std::memory_order_relaxed);
  TaskScheduler::Task t{std::move(fn), this, index};
#if BSMP_TRACE_ENABLED
  if (trace::enabled()) {
    t.enq_ns = trace::detail::now_ns();
    trace::instant(trace::Cat::kTask, "fork",
                   static_cast<std::int64_t>(index));
  }
#endif
  sched_->push(slot_, std::move(t));
}

void TaskScope::join() {
  if (sched_ != nullptr) {
    bool waited = false;
    std::uint64_t park_ns = 0;
    TaskScheduler::Task t;
    while (outstanding_.load(std::memory_order_acquire) != 0) {
      if (sched_->try_acquire(slot_, t)) {
        TaskScheduler::run(t);  // help: ours or anyone's
        continue;
      }
      // No runnable work anywhere: the remaining forks are executing on
      // other threads. Park until one finishes or new work appears
      // (a running task may fork).
      std::unique_lock<std::mutex> lk(sched_->sleep_mu_);
      if (outstanding_.load(std::memory_order_acquire) == 0) break;
      if (!sched_->has_pending()) {
        waited = true;
        trace::Span park(trace::Cat::kTask, "join-park");
        const auto t0 = std::chrono::steady_clock::now();
        sched_->sleep_cv_.wait(lk, [&] {
          return outstanding_.load(std::memory_order_acquire) == 0 ||
                 sched_->has_pending();
        });
        park_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    }
    if (waited) {
      sched_->join_waits_.fetch_add(1, std::memory_order_relaxed);
      auto& pc = sched_->phase_[static_cast<std::size_t>(phase_)];
      pc.join_waits.fetch_add(1, std::memory_order_relaxed);
      pc.park_ns.fetch_add(park_ns, std::memory_order_relaxed);
    }
  }
  joined_ = true;
  std::lock_guard<std::mutex> lk(emu_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace bsmp::engine
