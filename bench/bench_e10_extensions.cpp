// E10 — the comparison baselines and Section-6 extensions:
//   * Brent baseline: in the instantaneous model the slowdown is
//     exactly Θ(n/p) — no locality term;
//   * pipelined memory: a p-processor machine with pipelined memory
//     modules simulates with no locality slowdown (Section 6);
//   * the d=3 conjecture: the six-coordinate separator executes a 3-d
//     mesh computation with slowdown O(n log n) on one processor.
#include "bench_common.hpp"
#include "core/logmath.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  {
    std::int64_t n = 256;
    core::Table t("E10a: instantaneous model (Brent) vs bounded speed, d=1",
                  {"p", "instantaneous Tp/Tn", "n/p", "bounded-speed naive",
                   "bounded/instant"});
    auto g = workload::make_mix_guest<1>({n}, 16, 1, 13);
    auto ref = sim::reference_run<1>(g);
    for (std::int64_t p : {1, 4, 16, 64}) {
      sim::NaiveConfig inst;
      inst.instantaneous = true;
      auto ri = sim::simulate_naive<1>(g, spec(1, n, p, 1), inst);
      bench::require_equivalent<1>(ri, ref, "instantaneous");
      auto rb = sim::simulate_naive<1>(g, spec(1, n, p, 1));
      t.add_row({(long long)p, ri.slowdown(), (double)n / (double)p,
                 rb.slowdown(), rb.slowdown() / ri.slowdown()});
    }
    t.print(std::cout);
    std::cout << "# instantaneous slowdown tracks n/p exactly (Brent);\n"
                 "# bounded speed pays an extra locality factor.\n\n";
  }
  {
    std::int64_t n = 256;
    core::Table t("E10b: pipelined memory kills the locality slowdown",
                  {"p", "pipelined Tp/Tn", "n/p", "plain Tp/Tn",
                   "locality factor removed"});
    auto g = workload::make_mix_guest<1>({n}, 16, 1, 14);
    auto ref = sim::reference_run<1>(g);
    for (std::int64_t p : {1, 4, 16}) {
      sim::NaiveConfig piped;
      piped.pipelined = true;
      auto rp = sim::simulate_naive<1>(g, spec(1, n, p, 1), piped);
      bench::require_equivalent<1>(rp, ref, "pipelined");
      auto rn = sim::simulate_naive<1>(g, spec(1, n, p, 1));
      t.add_row({(long long)p, rp.slowdown(), (double)n / (double)p,
                 rn.slowdown(), rn.slowdown() / rp.slowdown()});
    }
    t.print(std::cout);
    std::cout << "# pipelined slowdown ~ n/p (no locality term) — but the\n"
                 "# paper notes the pipelining hardware itself scales with\n"
                 "# n, making the machine as costly as p = n.\n\n";
  }
  {
    core::Table t("E10c: d=3 conjecture — D&C uniprocessor, m=1",
                  {"n", "side", "T1/Tn (D&C)", "n*logn", "ratio",
                   "naive n^{4/3}"});
    for (std::int64_t side : {4, 6, 8, 10}) {
      std::int64_t n = side * side * side;
      auto g = workload::make_mix_guest<3>({side, side, side}, side, 1, 15);
      auto ref = sim::reference_run<3>(g);
      machine::MachineSpec host;
      host.d = 3;
      host.n = n;
      host.p = 1;
      host.m = 1;
      auto dc = sim::simulate_dc_uniproc<3>(g, host);
      bench::require_equivalent<3>(dc, ref, "dc d=3");
      double bound = (double)n * core::logbar((double)n);
      t.add_row({(long long)n, (long long)side, dc.slowdown(), bound,
                 dc.slowdown() / bound, std::pow((double)n, 4.0 / 3.0)});
    }
    t.print(std::cout);
    std::cout << "# Section 6 conjectures Theorem 1 extends to d=3; the\n"
                 "# six-coordinate box separator indeed achieves\n"
                 "# Θ(n log n) here.\n\n";
  }
  {
    // Section 6, last paragraph: if the guest algorithm actually needs
    // only m' < m cells per node, the denser technology yields more
    // locality: the D&C slowdown falls as m grows past m'.
    core::Table t("E10d: heterogeneous memory — guest m'=4, technology m "
                  "sweep (d=1, p=1, n=128)",
                  {"m", "T1/Tn", "vs m=m'"});
    std::int64_t n = 128, guest_m = 4;
    auto g = workload::make_mix_guest<1>({n}, n, guest_m, 16);
    auto ref = sim::reference_run<1>(g);
    double base = 0;
    for (std::int64_t m : {4, 8, 16, 64, 256}) {
      auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m));
      bench::require_equivalent<1>(res, ref, "heterogeneous m");
      if (base == 0) base = res.slowdown();
      t.add_row({(long long)m, res.slowdown(), res.slowdown() / base});
    }
    t.print(std::cout);
    std::cout << "# denser memory, same data: \"more locality will\n"
                 "# result\" — the slowdown drops monotonically.\n\n";
  }
}

void BM_dc_d3(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto g = workload::make_mix_guest<3>({side, side, side}, side, 1, 15);
  machine::MachineSpec host;
  host.d = 3;
  host.n = side * side * side;
  host.p = 1;
  host.m = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_dc_uniproc<3>(g, host));
}
BENCHMARK(BM_dc_d3)->Arg(4)->Arg(8);

}  // namespace

BSMP_BENCH_MAIN(emit)
