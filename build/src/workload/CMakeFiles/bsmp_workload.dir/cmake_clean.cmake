file(REMOVE_RECURSE
  "CMakeFiles/bsmp_workload.dir/matmul.cpp.o"
  "CMakeFiles/bsmp_workload.dir/matmul.cpp.o.d"
  "CMakeFiles/bsmp_workload.dir/ram_programs.cpp.o"
  "CMakeFiles/bsmp_workload.dir/ram_programs.cpp.o.d"
  "CMakeFiles/bsmp_workload.dir/rules.cpp.o"
  "CMakeFiles/bsmp_workload.dir/rules.cpp.o.d"
  "libbsmp_workload.a"
  "libbsmp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
