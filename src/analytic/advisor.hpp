// Scheme advisor and constant calibration.
//
// The paper's bounds tell which simulation scheme wins asymptotically;
// a user of the library also wants (a) the recommended scheme for a
// concrete (d, n, m, p) and (b) predictions that account for the
// implementation constants. The advisor compares the closed-form
// bounds; the calibrator fits per-mechanism constants from a few
// measurements (via analytic::fit_least_squares) and predicts measured
// slowdowns at other sizes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analytic/tradeoff.hpp"

namespace bsmp::analytic {

enum class Scheme { kNaive, kDcUniproc, kMultiproc };
const char* to_string(Scheme s);

struct Recommendation {
  Scheme scheme;
  double predicted_slowdown;  ///< the winning closed-form bound
  double s_star = 0;          ///< strip width, when multiproc (d=1)
  Range range = Range::k1;
};

/// Recommend a simulation scheme for simulating Md(n,n,m) on Md(n,p,m)
/// from the constant-free bounds: naive (Prop. 1) vs the Theorem-1
/// scheme; for m >= n^(1/d) they coincide (range 4 *is* naive).
Recommendation recommend(int d, double n, double m, double p);

/// Calibration: given measured slowdowns at a few (n, m, p) points,
/// fit the constants of the model
///   slowdown ~ (n/p) * (c_r * t_reloc + c_e * t_exec + c_c * t_comm)
/// evaluated at s = s*(n,m,p), and predict elsewhere.
class Calibration {
 public:
  void add_measurement(double n, double m, double p, double slowdown);

  /// Least-squares fit of the three mechanism constants (relative
  /// error weighting). Requires >= 3 measurements.
  void fit();

  bool fitted() const { return fitted_; }
  double c_relocation() const { return c_[0]; }
  double c_execution() const { return c_[1]; }
  double c_communication() const { return c_[2]; }

  /// Predicted measured slowdown at (n, m, p).
  double predict(double n, double m, double p) const;

  /// Mean relative error of the fit on the training points.
  double training_error() const;

 private:
  static std::array<double, 3> terms(double n, double m, double p);

  std::vector<std::array<double, 3>> x_;
  std::vector<double> y_;
  std::array<double, 3> c_{};
  bool fitted_ = false;
};

}  // namespace bsmp::analytic
