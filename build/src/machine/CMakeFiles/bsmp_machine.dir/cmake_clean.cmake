file(REMOVE_RECURSE
  "CMakeFiles/bsmp_machine.dir/clocks.cpp.o"
  "CMakeFiles/bsmp_machine.dir/clocks.cpp.o.d"
  "CMakeFiles/bsmp_machine.dir/layout.cpp.o"
  "CMakeFiles/bsmp_machine.dir/layout.cpp.o.d"
  "CMakeFiles/bsmp_machine.dir/rearrange.cpp.o"
  "CMakeFiles/bsmp_machine.dir/rearrange.cpp.o.d"
  "CMakeFiles/bsmp_machine.dir/spec.cpp.o"
  "CMakeFiles/bsmp_machine.dir/spec.cpp.o.d"
  "CMakeFiles/bsmp_machine.dir/topology.cpp.o"
  "CMakeFiles/bsmp_machine.dir/topology.cpp.o.d"
  "libbsmp_machine.a"
  "libbsmp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
