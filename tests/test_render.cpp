#include <gtest/gtest.h>

#include "geom/figures.hpp"
#include "geom/render.hpp"

using namespace bsmp;
using geom::Region;
using geom::Stencil;

TEST(Render, PartitionCoversWithoutOverlap) {
  Stencil<1> st{{12}, 12, 1};
  auto parts = geom::fig1_partition(&st);
  std::string img = geom::render_partition_1d(st, parts);
  // A correct partition renders with no '.' (uncovered) and no '#'
  // (overlap) inside the volume.
  std::size_t body = img.find("---");
  std::string volume = img.substr(0, body);
  EXPECT_EQ(volume.find('.'), std::string::npos);
  EXPECT_EQ(volume.find('#'), std::string::npos);
  // 12 rows of 12 glyphs plus newlines.
  EXPECT_EQ(volume.size(), 12u * 13u);
}

TEST(Render, OverlapShowsAsHash) {
  Stencil<1> st{{6}, 6, 1};
  Region<1> a(&st, {0, -5}, {11, 6});
  std::string img = geom::render_partition_1d(st, {a, a});
  EXPECT_NE(img.find('#'), std::string::npos);
}

TEST(Render, SingleRegionUsesStar) {
  Stencil<1> st{{8}, 8, 1};
  auto d = geom::make_diamond(&st, 2, -2, 4);
  std::string img = geom::render_region_1d(d);
  EXPECT_NE(img.find('1'), std::string::npos);
  EXPECT_NE(img.find('.'), std::string::npos);  // outside the diamond
}

TEST(Render, TopRowIsLatestTime) {
  // The first rendered row is t = T-1 (paper orientation): a region
  // covering only the last step marks only the first row.
  Stencil<1> st{{4}, 4, 1};
  Region<1> top(&st, {3, 3}, {7, 4});  // w = t-x = 3 -> the t=3 row's band
  std::string img = geom::render_partition_1d(st, {top});
  std::string first_row = img.substr(0, 4);
  EXPECT_NE(first_row.find('1'), std::string::npos);
}

TEST(Render, Slice2D) {
  Stencil<2> st{{8, 8}, 8, 1};
  auto p = geom::make_octahedron(&st, 2, -2, 2, -2, 4);
  auto [tmin, tmax] = p.time_range();
  std::string img =
      geom::render_partition_2d_slice(st, p.split(), (tmin + tmax) / 2);
  EXPECT_NE(img.find("t ="), std::string::npos);
  EXPECT_EQ(img.find('#'), std::string::npos);  // split never overlaps
  EXPECT_THROW(geom::render_partition_2d_slice(st, {}, 99),
               bsmp::precondition_error);
}
