# Empty dependencies file for bench_e5_thm4_ranges.
# This may be replaced when dependencies are built.
