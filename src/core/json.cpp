#include "core/json.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace bsmp::core::json {

const Value& Value::operator[](std::string_view key) const {
  static const Value kNull;
  if (is_object() && obj_) {
    for (const auto& [k, v] : *obj_)
      if (k == key) return v;
  }
  return kNull;
}

bool Value::has(std::string_view key) const {
  if (!is_object() || !obj_) return false;
  for (const auto& [k, v] : *obj_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Parsed run() {
    Parsed out;
    Value v;
    if (!value(v)) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after the JSON document");
      out.error = error_;
      return out;
    }
    out.ok = true;
    out.value = std::move(v);
    return out;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      std::size_t line = 1, col = 1;
      for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
        if (s_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      std::ostringstream os;
      os << what << " at " << line << ":" << col;
      error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  bool string_body(std::string& out) {
    // pos_ sits just past the opening quote.
    while (true) {
      if (pos_ >= s_.size()) return fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: expect \uDC00..\uDFFF next.
            if (pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                s_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!hex4(lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF)
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              else
                return fail("invalid low surrogate");
            } else {
              return fail("lone high surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape");
      }
    }
  }

  bool hex4(unsigned& out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    out = v;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool number(Value& out) {
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    std::string tok(s_.substr(start, pos_ - start));
    if (tok.empty() || tok == "-") return fail("invalid number");
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || errno == ERANGE)
      return fail("invalid number");
    out = Value(v);
    return true;
  }

  bool value(Value& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of document");
    char c = s_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        Members m;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          out = Value(std::move(m));
          return true;
        }
        while (true) {
          if (!eat('"')) return false;
          std::string key;
          if (!string_body(key)) return false;
          if (!eat(':')) return false;
          Value v;
          if (!value(v)) return false;
          m.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (!eat('}')) return false;
          out = Value(std::move(m));
          return true;
        }
      }
      case '[': {
        ++pos_;
        Array a;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          out = Value(std::move(a));
          return true;
        }
        while (true) {
          Value v;
          if (!value(v)) return false;
          a.push_back(std::move(v));
          skip_ws();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (!eat(']')) return false;
          out = Value(std::move(a));
          return true;
        }
      }
      case '"': {
        ++pos_;
        std::string str;
        if (!string_body(str)) return false;
        out = Value(std::move(str));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = Value(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Value(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = Value();
        return true;
      default: return number(out);
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Parsed parse(std::string_view text) { return Parser(text).run(); }

Parsed parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    Parsed out;
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  Parsed out = parse(buf.str());
  if (!out.ok) out.error = path + ": " + out.error;
  return out;
}

}  // namespace bsmp::core::json
