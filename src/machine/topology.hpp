// Network graphs H = (N, E) of the machines (Section 2): the linear
// array, the two-dimensional square mesh, and the three-dimensional
// mesh (for the Section-6 d=3 conjecture). Nodes are integers in
// [0, num_nodes); coordinates are row-major.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace bsmp::machine {

using NodeId = std::int64_t;

/// Linear array: nodes 0..n-1, bidirectional links (i, i+1).
class LinearArray {
 public:
  explicit LinearArray(std::int64_t n);

  int dim() const { return 1; }
  std::int64_t num_nodes() const { return n_; }

  /// Appends the neighbors of `v` to `out` (2 in the interior, 1 at the
  /// ends). Returns the number appended.
  int neighbors(NodeId v, std::vector<NodeId>& out) const;

  /// Geometric position of node v (unit spacing at p = n).
  double position(NodeId v) const { return static_cast<double>(v); }

 private:
  std::int64_t n_;
};

/// Two-dimensional square mesh: nodes (i, j), 0 <= i, j < side,
/// id = i * side + j; links to the four axis neighbors.
class Mesh2D {
 public:
  explicit Mesh2D(std::int64_t side);

  int dim() const { return 2; }
  std::int64_t side() const { return side_; }
  std::int64_t num_nodes() const { return side_ * side_; }

  NodeId id(std::int64_t i, std::int64_t j) const { return i * side_ + j; }
  std::array<std::int64_t, 2> coords(NodeId v) const {
    return {v / side_, v % side_};
  }

  int neighbors(NodeId v, std::vector<NodeId>& out) const;

  /// L-infinity geometric distance between nodes (unit spacing).
  double distance(NodeId a, NodeId b) const;

 private:
  std::int64_t side_;
};

/// Three-dimensional mesh (Section-6 extension).
class Mesh3D {
 public:
  explicit Mesh3D(std::int64_t side);

  int dim() const { return 3; }
  std::int64_t side() const { return side_; }
  std::int64_t num_nodes() const { return side_ * side_ * side_; }

  NodeId id(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return (i * side_ + j) * side_ + k;
  }
  std::array<std::int64_t, 3> coords(NodeId v) const {
    return {v / (side_ * side_), (v / side_) % side_, v % side_};
  }

  int neighbors(NodeId v, std::vector<NodeId>& out) const;

 private:
  std::int64_t side_;
};

}  // namespace bsmp::machine
