file(REMOVE_RECURSE
  "CMakeFiles/bsmp_sim_cli.dir/bsmp_sim_cli.cpp.o"
  "CMakeFiles/bsmp_sim_cli.dir/bsmp_sim_cli.cpp.o.d"
  "bsmp_sim"
  "bsmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
