file(REMOVE_RECURSE
  "CMakeFiles/test_geom_region.dir/test_geom_region.cpp.o"
  "CMakeFiles/test_geom_region.dir/test_geom_region.cpp.o.d"
  "test_geom_region"
  "test_geom_region.pdb"
  "test_geom_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
