file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_thm4_ranges.dir/bench_e5_thm4_ranges.cpp.o"
  "CMakeFiles/bench_e5_thm4_ranges.dir/bench_e5_thm4_ranges.cpp.o.d"
  "bench_e5_thm4_ranges"
  "bench_e5_thm4_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_thm4_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
