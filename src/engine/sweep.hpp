// The sweep engine: evaluate a vector of sweep points across a Pool
// and merge the per-point rows back in *point order*, regardless of
// which thread finished which point first.
//
// Determinism contract (locked down by tests/test_engine_determinism):
// for a fixed point vector, row function, and seed, run() returns the
// same rows — value- and byte-identical once rendered — for every pool
// size, because
//   * each point writes only its own result slot (merge order is the
//     point order by construction);
//   * the per-point RNG stream is derived from (seed, point index),
//     never from the executing thread or any global state;
//   * shared artifacts (plans, guests, reference runs) live in a
//     PlanCache behind shared_ptr-to-const and are built at most once
//     per key, so every point observes the same immutable object.
//
// The row function must be a pure function of (point, context): no
// writes to shared mutable state, no iteration-order dependence.
//
// Observability is strictly on the side: when SweepOptions::metrics is
// set, run() additionally records per-point wall clock / queue wait
// into an engine::Metrics sink (see metrics.hpp) without touching the
// rows — timings vary run to run, tables never do.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/expect.hpp"
#include "core/rng.hpp"
#include "engine/metrics.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "engine/trace.hpp"

namespace bsmp::engine {

/// Deterministic per-point generator: a SplitMix64 stream that depends
/// only on (sweep seed, point index) — pinned per point, not per
/// thread, so refactors of the execution order cannot silently reorder
/// RNG consumption.
inline core::SplitMix64 point_rng(std::uint64_t seed, std::size_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return core::SplitMix64(z ^ (z >> 31));
}

struct SweepOptions {
  /// Base seed of the per-point RNG streams.
  std::uint64_t seed = 0;
  /// Shared memo for separator trees / Prop-2 plans / guests; may be
  /// null when the sweep needs no shared artifacts.
  PlanCache* plans = nullptr;
  /// Observability sink: when non-null, run() appends one SweepMetric
  /// (per-point wall clock + queue wait, whole-sweep wall clock, pool
  /// size). Purely observational — never affects the rows.
  Metrics* metrics = nullptr;
  /// Label stamped on the recorded SweepMetric (may stay empty).
  std::string label;
};

/// Per-point evaluation context handed to the row function.
struct SweepContext {
  std::size_t index = 0;       ///< the point's position in the sweep
  core::SplitMix64 rng;        ///< point_rng(seed, index)
  PlanCache* plans = nullptr;  ///< shared plan cache (may be null)
};

template <typename Point, typename Row>
class Sweep {
 public:
  Sweep() = default;
  explicit Sweep(std::vector<Point> points, SweepOptions opt = {})
      : points_(std::move(points)), opt_(opt) {}

  void add(Point p) { points_.push_back(std::move(p)); }

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

  /// Evaluate every point through `fn(const Point&, SweepContext&)`
  /// on `pool`, returning rows in point order. If any point throws,
  /// every point still runs and the lowest-index exception propagates.
  template <typename Fn>
  std::vector<Row> run(Pool& pool, Fn&& fn) const {
    using Clock = std::chrono::steady_clock;
    auto secs = [](Clock::duration d) {
      return std::chrono::duration<double>(d).count();
    };
    std::vector<std::optional<Row>> slots(points_.size());
    // Per-point timings land in the point's own slot — point order by
    // construction, like the result slots.
    std::vector<PointMetric> timings(opt_.metrics ? points_.size() : 0);
    // The sweep span carries the point count, never the pool size: the
    // deterministic span set must not vary across the thread-count
    // matrix the conformance suite runs.
    trace::Span sweep_span(trace::Cat::kSweepPoint, "sweep",
                           std::string_view(opt_.label),
                           static_cast<std::int64_t>(points_.size()), 0);
    const TaskStats tasks_before = pool.task_stats();
    const auto t_submit = Clock::now();
    pool.parallel_for(points_.size(), [&](std::size_t i) {
      trace::Span point_span(trace::Cat::kSweepPoint, "sweep-point",
                             static_cast<std::int64_t>(i),
                             static_cast<std::int64_t>(points_.size()));
      const auto t_start = Clock::now();
      SweepContext ctx{i, point_rng(opt_.seed, i), opt_.plans};
      slots[i].emplace(fn(points_[i], ctx));
      if (opt_.metrics) {
        timings[i] = {i, secs(t_start - t_submit),
                      secs(Clock::now() - t_start)};
      }
    });
    if (opt_.metrics) {
      SweepMetric sm;
      sm.label = opt_.label;
      sm.points = points_.size();
      sm.pool_threads = pool.size();
      sm.wall_s = secs(Clock::now() - t_submit);
      sm.tasks = pool.task_stats() - tasks_before;
      sm.per_point = std::move(timings);
      opt_.metrics->record(std::move(sm));
    }
    std::vector<Row> rows;
    rows.reserve(slots.size());
    for (auto& s : slots) {
      BSMP_ASSERT(s.has_value());
      rows.push_back(std::move(*s));
    }
    return rows;
  }

 private:
  std::vector<Point> points_;
  SweepOptions opt_;
};

/// One-shot convenience: sweep `points` through `fn` on `pool`.
template <typename Row, typename Point, typename Fn>
std::vector<Row> sweep_map(Pool& pool, const std::vector<Point>& points,
                           Fn&& fn, SweepOptions opt = {}) {
  return Sweep<Point, Row>(points, opt).run(pool, std::forward<Fn>(fn));
}

}  // namespace bsmp::engine
