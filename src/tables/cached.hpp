// Typed PlanCache entries above the sim layer: memoized guest
// computations (the sep::Executor input) and their reference runs.
// Sweep points that share a guest — a p sweep at fixed (n, T, m), an
// s-sweep at fixed everything — build it once and share the immutable
// object; the reference run, the single most repeated unit of work in
// the benches, is likewise built once per (extent, horizon, m, seed).
#pragma once

#include <memory>

#include "engine/plan_cache.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

namespace bsmp::sim {

/// Resident bytes of a cached reference run (the PlanCache byte-budget
/// hook): the result plus its final-values hash map — per-node entries
/// dominate, estimated as payload + two pointers of node overhead plus
/// the bucket array.
template <int D, class V>
std::size_t plan_bytes(const SimResult<D, V>& r) {
  const std::size_t per_entry =
      sizeof(geom::Point<D>) + sizeof(V) + 2 * sizeof(void*);
  return sizeof(r) + r.final_values.size() * per_entry +
         r.final_values.bucket_count() * sizeof(void*);
}

}  // namespace bsmp::sim

namespace bsmp::tables {

template <int D>
engine::PlanKey mix_guest_key(engine::PlanFamily family,
                              const std::array<std::int64_t, D>& extent,
                              std::int64_t horizon, std::int64_t m,
                              std::uint64_t seed) {
  engine::PlanKey key;
  key.d = D;
  key.family = family;
  key.width = extent[0];
  key.horizon = horizon;
  key.m = m;
  std::uint64_t aux = engine::key_fold(0, seed);
  for (int i = 1; i < D; ++i)
    aux = engine::key_fold(aux, static_cast<std::uint64_t>(extent[i]));
  key.aux = aux;
  return key;
}

/// The memoized mixing-workload guest for (extent, horizon, m, seed).
template <int D>
std::shared_ptr<const sep::Guest<D>> cached_mix_guest(
    engine::PlanCache& cache, const std::array<std::int64_t, D>& extent,
    std::int64_t horizon, std::int64_t m, std::uint64_t seed) {
  return cache.get_or_build<sep::Guest<D>>(
      mix_guest_key<D>(engine::PlanFamily::kGuest, extent, horizon, m, seed),
      [&] { return workload::make_mix_guest<D>(extent, horizon, m, seed); });
}

/// The memoized direct run of that guest (the equivalence oracle).
template <int D>
std::shared_ptr<const sim::SimResult<D>> cached_reference(
    engine::PlanCache& cache, const std::array<std::int64_t, D>& extent,
    std::int64_t horizon, std::int64_t m, std::uint64_t seed) {
  return cache.get_or_build<sim::SimResult<D>>(
      mix_guest_key<D>(engine::PlanFamily::kReference, extent, horizon, m,
                       seed),
      [&] {
        auto g = cached_mix_guest<D>(cache, extent, horizon, m, seed);
        return sim::reference_run<D>(*g);
      });
}

}  // namespace bsmp::tables
