file(REMOVE_RECURSE
  "CMakeFiles/test_geom_partitions.dir/test_geom_partitions.cpp.o"
  "CMakeFiles/test_geom_partitions.dir/test_geom_partitions.cpp.o.d"
  "test_geom_partitions"
  "test_geom_partitions.pdb"
  "test_geom_partitions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
