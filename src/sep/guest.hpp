/// \file
/// Guest computation semantics shared by every simulator.
//
// A guest Md(n, n, m) runs a synchronous network computation: at step t
// node x combines one cell of its private memory (last written at step
// t - m under the scanning access pattern) with the words received from
// its neighbors at step t-1, producing the dag value of vertex (x, t).
// For m = 1 this is exactly the execution of GT(H) from Definition 3.
//
// Values are 64-bit words; rules should mix their operands well so that
// any scheduling bug in a simulator corrupts the final rows with
// overwhelming probability (the equivalence tests rely on this).
//
// Batched guests (doc/ENGINE.md "Batched guests"): every theorem holds
// for *arbitrary* T-step computations, so nothing in the charging
// depends on what a dag value *is* — only on how many vertices exist
// and where they sit. The guest interface is therefore generic over
// the value type V carried per vertex (BasicGuest<D, V>), and one
// charged run can evaluate kLanes = 64 independent scenarios at once:
//
//   * bit-sliced: V stays Word and bit l of every value is lane l's
//     1-bit cell state. Rules whose scalar form is a lane-local boolean
//     function of the operand bits (rule110_lanes, xor parity) are
//     already 64-way batch rules — the entire execution stack runs
//     unchanged and one charged pass carries 64 scenarios;
//   * structure-of-arrays: V = LaneBatch, a Word[64], for wide-word
//     rules. The broadcast adapters below lift any scalar guest into
//     this form lane by lane.
//
// In both forms the charged cost stream, vertex counts and staging
// peaks are bit-identical to a single scalar run of the same stencil:
// charging is count-based and counts points, not words per point.
#pragma once

#include <array>
#include <functional>
#include <unordered_map>

#include "geom/lattice.hpp"
#include "hram/hram.hpp"

namespace bsmp::sep {

/// The 64-bit machine word every scalar dag value is (hram::Word).
using hram::Word;

/// Scenarios per batched run: one per bit of a Word, so the bit-sliced
/// and SoA forms always agree on the ensemble size.
inline constexpr int kLanes = 64;

/// Structure-of-arrays batch value: lane l of a dag vertex is the word
/// scenario l computed there. The per-point unit of the batched
/// staging stores and the executor's dense leaf window.
struct LaneBatch {
  /// The 64 scenario words, contiguous so SIMD row kernels can treat
  /// one operand's lanes as a structure-of-arrays span (sep/simd.hpp
  /// soa_rule).
  std::array<Word, kLanes> lane{};

  /// Lane l's word (0 <= l < kLanes).
  Word& operator[](int l) { return lane[static_cast<std::size_t>(l)]; }
  /// Lane l's word (0 <= l < kLanes).
  const Word& operator[](int l) const {
    return lane[static_cast<std::size_t>(l)];
  }
  /// Lane-wise equality (the unit the differential tests compare).
  friend bool operator==(const LaneBatch& a, const LaneBatch& b) {
    return a.lane == b.lane;
  }
  /// Lane-wise inequality.
  friend bool operator!=(const LaneBatch& a, const LaneBatch& b) {
    return !(a == b);
  }

  /// All lanes holding the same word — the broadcast of a scalar value.
  static LaneBatch splat(Word v) {
    LaneBatch b;
    b.lane.fill(v);
    return b;
  }
};

/// Values of dag vertices, keyed by lattice point — the staging medium
/// every simulator and executor exchanges results through. V is the
/// per-vertex value type: Word for scalar (and bit-sliced) guests,
/// LaneBatch for SoA-batched ones.
template <int D, class V>
using BasicValueMap =
    std::unordered_map<geom::Point<D>, V, geom::PointHash<D>>;

/// Scalar value map (the original staging type; V = Word).
template <int D>
using ValueMap = BasicValueMap<D, Word>;

/// SoA-batched value map (V = LaneBatch).
template <int D>
using BatchValueMap = BasicValueMap<D, LaneBatch>;

/// Neighbor operand order: for each spatial dimension i, first the
/// -e_i neighbor then the +e_i neighbor; slots for neighbors outside
/// the mesh hold the zero value (fixed zero boundary).
template <int D, class V>
using BasicNeighbors = std::array<V, geom::kMono<D>>;

/// Scalar neighbor operands (V = Word).
template <int D>
using NeighborWords = BasicNeighbors<D, Word>;

/// SoA-batched neighbor operands (V = LaneBatch).
template <int D>
using NeighborBatches = BasicNeighbors<D, LaneBatch>;

/// The step rule: value(x, t) for t >= 1. `self_prev` is the node's own
/// cell operand — value(x, t-m) when t >= m, or the initial content of
/// cell (t mod m) when t < m.
template <int D, class V>
using BasicRule = std::function<V(const geom::Point<D>& p, V self_prev,
                                  const BasicNeighbors<D, V>& nbrs)>;

/// Scalar step rule (V = Word). Type-erased; for the executor's
/// concrete-kernel fast path see sep/simd.hpp and
/// Executor::execute_with_rule.
template <int D>
using Rule = BasicRule<D, Word>;

/// SoA-batched step rule (V = LaneBatch).
template <int D>
using BatchRule = BasicRule<D, LaneBatch>;

/// Initial memory contents: cell `cell` (0 <= cell < m) of node x.
/// value(x, 0) is input(x, 0) by Definition 3.
template <int D, class V>
using BasicInputFn =
    std::function<V(const std::array<int64_t, D>& x, int64_t cell)>;

/// Scalar input generator (V = Word).
template <int D>
using InputFn = BasicInputFn<D, Word>;

/// SoA-batched input generator (V = LaneBatch).
template <int D>
using BatchInput = BasicInputFn<D, LaneBatch>;

/// A guest computation: stencil (mesh extents, horizon T, memory m),
/// step rule and inputs, over per-vertex values of type V.
template <int D, class V>
struct BasicGuest {
  geom::Stencil<D> stencil;   ///< mesh extents, horizon T, memory m
  BasicRule<D, V> rule;       ///< step rule for t >= 1
  BasicInputFn<D, V> input;   ///< initial memory contents (t = 0 plane)

  /// Assert the guest is runnable: valid stencil, non-null callables.
  void validate() const {
    stencil.validate();
    BSMP_REQUIRE(rule != nullptr);
    BSMP_REQUIRE(input != nullptr);
  }
};

/// Scalar guest (V = Word) — what every original simulator runs.
template <int D>
using Guest = BasicGuest<D, Word>;

/// SoA-batched guest (V = LaneBatch): 64 scenarios per charged run.
template <int D>
using BatchGuest = BasicGuest<D, LaneBatch>;

// ---------------------------------------------------------------------
// Scalar -> batch broadcast adapters: lift any existing scalar guest
// into the SoA form, lane by lane. broadcast_rule applies the scalar
// rule independently per lane (the lanes never interact — the
// lane-isolation property tests pin this); broadcast_input starts all
// 64 lanes from the same scenario, lane_inputs from 64 distinct ones.
// ---------------------------------------------------------------------

/// Apply a scalar rule independently to each of the 64 lanes.
template <int D>
BatchRule<D> broadcast_rule(Rule<D> rule) {
  BSMP_REQUIRE(rule != nullptr);
  return [rule = std::move(rule)](const geom::Point<D>& p, LaneBatch self,
                                  const NeighborBatches<D>& nbrs)
             -> LaneBatch {
    LaneBatch out;
    NeighborWords<D> lane_nbrs{};
    for (int l = 0; l < kLanes; ++l) {
      for (int k = 0; k < geom::kMono<D>; ++k) lane_nbrs[k] = nbrs[k][l];
      out[l] = rule(p, self[l], lane_nbrs);
    }
    return out;
  };
}

/// Start every lane from the same scalar input.
template <int D>
BatchInput<D> broadcast_input(InputFn<D> input) {
  BSMP_REQUIRE(input != nullptr);
  return [input = std::move(input)](const std::array<int64_t, D>& x,
                                    int64_t cell) -> LaneBatch {
    return LaneBatch::splat(input(x, cell));
  };
}

/// Start lane l from its own scalar input function — the ensemble
/// form: 64 initial conditions, one charged run.
template <int D>
BatchInput<D> lane_inputs(std::array<InputFn<D>, kLanes> inputs) {
  for (const auto& f : inputs) BSMP_REQUIRE(f != nullptr);
  return [inputs = std::move(inputs)](const std::array<int64_t, D>& x,
                                      int64_t cell) -> LaneBatch {
    LaneBatch b;
    for (int l = 0; l < kLanes; ++l) b[l] = inputs[static_cast<std::size_t>(l)](x, cell);
    return b;
  };
}

/// Lift a whole scalar guest: same stencil, per-lane rule, broadcast
/// inputs. Running it charges exactly what the scalar guest charges
/// and computes the scalar values in every lane.
template <int D>
BatchGuest<D> broadcast_guest(const Guest<D>& g) {
  BatchGuest<D> b;
  b.stencil = g.stencil;
  b.rule = broadcast_rule<D>(g.rule);
  b.input = broadcast_input<D>(g.input);
  return b;
}

/// Extract one lane of a batched final-value map as a scalar map —
/// the unit the lane-differential tests compare against scalar runs.
template <int D>
ValueMap<D> extract_lane(const BatchValueMap<D>& batch, int l) {
  BSMP_REQUIRE(l >= 0 && l < kLanes);
  ValueMap<D> out;
  out.reserve(batch.size());
  for (const auto& [p, v] : batch) out.emplace(p, v[l]);
  return out;
}

/// Extract lane l of a bit-sliced final-value map: bit l of every word.
template <int D>
ValueMap<D> extract_bit_lane(const ValueMap<D>& packed, int l) {
  BSMP_REQUIRE(l >= 0 && l < kLanes);
  ValueMap<D> out;
  out.reserve(packed.size());
  for (const auto& [p, v] : packed) out.emplace(p, (v >> l) & 1u);
  return out;
}

}  // namespace bsmp::sep
