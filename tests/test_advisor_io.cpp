// Scheme advisor, calibration, and schedule serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "analytic/advisor.hpp"
#include "sched/io.hpp"
#include "sched/planner.hpp"
#include "sched/runner.hpp"
#include "sim/multiproc.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using analytic::Calibration;
using analytic::recommend;
using analytic::Scheme;

TEST(Advisor, Range4IsNaive) {
  auto rec = recommend(1, 1024, 2048, 4);
  EXPECT_EQ(rec.scheme, Scheme::kNaive);
  EXPECT_DOUBLE_EQ(rec.predicted_slowdown,
                   analytic::naive_bound(1, 1024, 2048, 4));
}

TEST(Advisor, SmallMPrefersTheTheorem1Scheme) {
  auto rec = recommend(1, 65536, 4, 16);
  EXPECT_EQ(rec.scheme, Scheme::kMultiproc);
  EXPECT_GT(rec.s_star, 1.0);
  EXPECT_LT(rec.predicted_slowdown,
            analytic::naive_bound(1, 65536, 4, 16));
  auto uni = recommend(1, 65536, 4, 1);
  EXPECT_EQ(uni.scheme, Scheme::kDcUniproc);
}

TEST(Advisor, SchemeNamesAndD2) {
  EXPECT_STREQ(analytic::to_string(Scheme::kNaive), "naive");
  auto rec = recommend(2, 65536, 2, 16);
  EXPECT_NE(rec.scheme, Scheme::kNaive);
  EXPECT_GT(rec.predicted_slowdown, 0.0);
}

TEST(Calibration, FitsAndPredictsMeasuredSlowdowns) {
  // Train on measured multiproc slowdowns at three sizes, predict a
  // fourth within a modest relative error.
  Calibration cal;
  auto measure = [&](int64_t n, int64_t m, int64_t p) {
    auto g = workload::make_mix_guest<1>({n}, n, m, 3);
    sim::MultiprocConfig cfg;
    cfg.s = std::max<int64_t>(
        1, (int64_t)analytic::s_star((double)n, (double)m, (double)p));
    while (cfg.s * p > n) cfg.s /= 2;
    machine::MachineSpec host{1, n, p, m};
    return sim::simulate_multiproc<1>(g, host, cfg).slowdown();
  };
  for (int64_t n : {64, 128, 256})
    cal.add_measurement((double)n, 4, 4, measure(n, 4, 4));
  cal.fit();
  EXPECT_TRUE(cal.fitted());
  EXPECT_LT(cal.training_error(), 0.5);

  double actual = measure(512, 4, 4);
  double predicted = cal.predict(512, 4, 4);
  EXPECT_GT(predicted / actual, 0.4);
  EXPECT_LT(predicted / actual, 2.5);
}

TEST(Calibration, RequiresEnoughData) {
  Calibration cal;
  cal.add_measurement(64, 1, 2, 1000);
  EXPECT_THROW(cal.fit(), bsmp::precondition_error);
  EXPECT_THROW(cal.predict(64, 1, 2), bsmp::precondition_error);
}

TEST(ScheduleIO, UniprocessorRoundTrip) {
  geom::Stencil<1> st{{12}, 12, 2};
  sched::PlannerConfig<1> cfg;
  cfg.tile_width = 12;
  cfg.leaf_width = 2;
  cfg.machine_scale = 24;
  sched::Planner<1> planner(&st, cfg);
  auto sched = planner.plan();

  std::stringstream ss;
  sched::dump_schedule<1>(ss, sched);
  auto back = sched::load_schedule<1>(ss);
  ASSERT_EQ(back.size(), sched.size());
  auto f = hram::AccessFn::hierarchical(1, 2.0);
  EXPECT_DOUBLE_EQ(back.makespan_under(st, f),
                   sched.cost_under(st, f));
}

TEST(ScheduleIO, ParallelRoundTripReplaysCorrectly) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 5);
  machine::MachineSpec host{1, 16, 4, 1};
  sim::MultiprocConfig cfg;
  cfg.s = 2;
  sim::MultiprocSimulator<1> simulator(&g, host, cfg);
  sched::ParallelSchedule<1> sched(4);
  simulator.set_emit(&sched);
  auto res = simulator.run();

  std::stringstream ss;
  sched::dump_schedule<1>(ss, sched);
  auto back = sched::load_schedule<1>(ss);
  EXPECT_EQ(back.num_procs(), 4);
  EXPECT_NEAR(back.makespan_under(g.stencil, host.access_fn()), res.time,
              1e-9 * res.time);
  auto run = sched::run_schedule<1>(g, back);
  auto ref = sim::reference_run<1>(g);
  EXPECT_TRUE(sim::same_values<1>(
      sim::extract_final<1>(g.stencil, run.values), ref.final_values));
}

TEST(ScheduleIO, RejectsGarbage) {
  std::stringstream ss("not a schedule\n");
  EXPECT_THROW(sched::load_schedule<1>(ss), bsmp::precondition_error);
  std::stringstream wrong_d("# bsmp-schedule v1 d=2 p=1\n");
  EXPECT_THROW(sched::load_schedule<1>(wrong_d), bsmp::precondition_error);
  std::stringstream bad_op("# bsmp-schedule v1 d=1 p=1\nfrobnicate x=1\n");
  EXPECT_THROW(sched::load_schedule<1>(bad_op), bsmp::precondition_error);
}
