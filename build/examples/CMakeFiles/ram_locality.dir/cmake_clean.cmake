file(REMOVE_RECURSE
  "CMakeFiles/ram_locality.dir/ram_locality.cpp.o"
  "CMakeFiles/ram_locality.dir/ram_locality.cpp.o.d"
  "ram_locality"
  "ram_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ram_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
