file(REMOVE_RECURSE
  "CMakeFiles/test_sep_executor.dir/test_sep_executor.cpp.o"
  "CMakeFiles/test_sep_executor.dir/test_sep_executor.cpp.o.d"
  "test_sep_executor"
  "test_sep_executor.pdb"
  "test_sep_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sep_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
