// "hot" — the executor hot-path artifact: dense flat-staging executor,
// its SIMD-kernel variant (run_dense_kernel + workload::MixKernel),
// and the retained hash-map baseline over the same full volumes. The
// emitted table carries only run-to-run deterministic fields (and is
// therefore under the tier-2 byte-identity check like every other
// emitter — identical with BSMP_SIMD on or off, since the ISA only
// reaches the observational metrics); wall-clock throughput goes to
// EngineCtx::metrics, which bench_exec_hotpath serializes as
// metrics_hot.json.
//
// The two configs run as points of one engine sweep (not a bare loop)
// so the emitter exercises the whole stack bench_exec_hotpath traces:
// sweep points, the pool's fork-join layer, the separator recursion
// and the staging pruning all appear in trace_hot.json. Table rows and
// hot-metric records are appended after the sweep, in point order, so
// the artifact stays byte-identical at any thread count.
#include <string>
#include <utility>

#include "sep/simd.hpp"
#include "sim/observe.hpp"
#include "tables/detail.hpp"
#include "tables/emitters.hpp"
#include "tables/hotpath.hpp"
#include "workload/rules.hpp"

namespace bsmp::tables {

namespace {

/// Deterministic result of one hot config (all three executors' stats;
/// the seconds fields are observational and never reach the table).
struct HotRun {
  std::string label;
  hotpath::ExecStats dense, simd, hash;
};

template <int D>
HotRun hot_config(const std::string& label,
                  std::array<std::int64_t, D> extent, std::int64_t horizon,
                  std::int64_t m) {
  auto guest = workload::make_mix_guest<D>(extent, horizon, m, 7);

  sep::StagingStore<D> dense_staging(&guest.stencil);
  hotpath::ExecStats dense = hotpath::run_dense<D>(guest, dense_staging);
  sep::StagingStore<D> simd_staging(&guest.stencil);
  hotpath::ExecStats simd = hotpath::run_dense_kernel<D>(
      guest, simd_staging, workload::MixKernel<D>{});
  sep::ValueMap<D> hash_staging;
  hotpath::ExecStats hash = hotpath::run_hashmap<D>(guest, hash_staging);

  // The whole point of the flat-staging rewrite: everything but the
  // wall clock is identical to the hash-map implementation.
  BSMP_REQUIRE_MSG(dense.vertices == hash.vertices,
                   label << ": dense and hashmap executed different "
                            "vertex counts");
  BSMP_REQUIRE_MSG(dense.total_cost == hash.total_cost,
                   label << ": dense and hashmap charged different totals "
                            "— charge batching is not bit-exact");
  BSMP_REQUIRE_MSG(dense.peak_staging_words == hash.peak_staging_words,
                   label << ": dense and hashmap disagree on peak staging");
  BSMP_REQUIRE_MSG(
      sim::same_values<D>(sim::extract_final<D>(guest.stencil, dense_staging),
                          sim::extract_final<D>(guest.stencil, hash_staging)),
      label << ": dense and hashmap computed different guest values");

  // And the point of the SIMD leaf path: identical to dense in every
  // deterministic field — values, charge totals, peak staging, even
  // the slab allocation count — whether the vector path ran or the
  // scalar fallback did (doc/PERF.md "Byte identity").
  BSMP_REQUIRE_MSG(simd.vertices == dense.vertices,
                   label << ": simd executed a different vertex count");
  BSMP_REQUIRE_MSG(simd.total_cost == dense.total_cost,
                   label << ": simd charged a different total — the vector "
                            "leaf's charge stream is not bit-exact");
  BSMP_REQUIRE_MSG(simd.peak_staging_words == dense.peak_staging_words,
                   label << ": simd disagrees on peak staging");
  BSMP_REQUIRE_MSG(simd.staging_allocs == dense.staging_allocs,
                   label << ": simd disagrees on slab allocations");
  BSMP_REQUIRE_MSG(
      sim::same_values<D>(sim::extract_final<D>(guest.stencil, dense_staging),
                          sim::extract_final<D>(guest.stencil, simd_staging)),
      label << ": simd computed different guest values");

  return {label, dense, simd, hash};
}

}  // namespace

std::vector<Emitted> hot_tables(EngineCtx& ctx) {
  std::vector<int> configs{0, 1};
  std::vector<HotRun> runs = detail::sweep_values<HotRun>(
      ctx, configs,
      [](int config, engine::SweepContext&) -> HotRun {
        if (config == 0)
          return hot_config<1>("exec_d1_w512", {512}, 512, 8);
        return hot_config<2>("exec_d2_w48", {48, 48}, 48, 4);
      },
      "hot configs");

  core::Table t("HOT: executor hot path, dense flat staging (scalar and "
                "SIMD kernel) vs hash-map baseline (same run)",
                {"config", "store", "vertices", "peak staging", "slab allocs",
                 "cost total"});
  for (const HotRun& r : runs) {
    const std::pair<const hotpath::ExecStats*, const char*> stores[] = {
        {&r.dense, "dense"}, {&r.simd, "simd"}, {&r.hash, "hashmap"}};
    for (const auto& [run, store] : stores) {
      t.add_row({r.label, std::string(store),
                 static_cast<long long>(run->vertices),
                 static_cast<long long>(run->peak_staging_words),
                 static_cast<long long>(run->staging_allocs),
                 run->total_cost});
      if (ctx.metrics != nullptr) {
        engine::HotPathMetric h;
        h.label = r.label + "/" + store;
        h.vertices = run->vertices;
        h.seconds = run->seconds;
        h.peak_staging_words = run->peak_staging_words;
        h.staging_allocs = run->staging_allocs;
        if (run == &r.simd) {
          h.simd_isa = sep::simd::active_isa();
          h.simd_lanes = sep::simd::lane_width();
        }
        ctx.metrics->record_hot(std::move(h));
      }
    }
  }
  return {{std::move(t),
           "# Both stores must agree on every deterministic field above\n"
           "# (asserted): only throughput may differ. Wall-clock numbers\n"
           "# are recorded via engine::Metrics — see metrics_hot.json\n"
           "# (\"hot\" array) and BENCH_exec_hotpath.json.\n"}};
}

}  // namespace bsmp::tables
