// Typed PlanCache entries for the scheduler: memoized whole-computation
// plans (sched::Planner output). The plan for a stencil depends only on
// the geometry (extents, horizon, m) and the planner configuration —
// not on the access function it is later costed under — so one cached
// plan serves every machine in a technology sweep via
// Schedule::cost_under.
#pragma once

#include <memory>

#include "engine/plan_cache.hpp"
#include "geom/lattice.hpp"
#include "sched/planner.hpp"

namespace bsmp::sched {

/// Resident bytes of a cached whole-computation plan (the PlanCache
/// byte-budget hook): the object plus its op vector's capacity.
template <int D>
std::size_t plan_bytes(const Schedule<D>& s) {
  return sizeof(s) + s.ops().capacity() * sizeof(Op<D>);
}

}  // namespace bsmp::sched

namespace bsmp::engine {

/// Key of a whole-computation plan for `st` under `cfg`.
template <int D>
PlanKey plan_key(const geom::Stencil<D>& st,
                 const sched::PlannerConfig<D>& cfg) {
  PlanKey key;
  key.d = D;
  key.family = PlanFamily::kSchedule;
  key.width = st.extent[0];
  key.horizon = st.horizon;
  key.m = st.m;
  std::uint64_t aux = 0;
  for (int i = 1; i < D; ++i)
    aux = key_fold(aux, static_cast<std::uint64_t>(st.extent[i]));
  aux = key_fold(aux, static_cast<std::uint64_t>(cfg.tile_width));
  aux = key_fold(aux, static_cast<std::uint64_t>(cfg.leaf_width));
  aux = key_fold(aux, key_of_double(cfg.space_const));
  aux = key_fold(aux, key_of_double(cfg.leaf_space_const));
  aux = key_fold(aux, key_of_double(cfg.machine_scale));
  key.aux = aux;
  return key;
}

/// The memoized Planner output for (stencil, config). `st` must stay
/// alive for the duration of the call only; the returned schedule is
/// self-contained and immutable.
template <int D>
std::shared_ptr<const sched::Schedule<D>> cached_plan(
    PlanCache& cache, const geom::Stencil<D>& st,
    const sched::PlannerConfig<D>& cfg) {
  return cache.get_or_build<sched::Schedule<D>>(plan_key(st, cfg), [&] {
    return sched::Planner<D>(&st, cfg).plan();
  });
}

}  // namespace bsmp::engine
