// engine::attribution — the per-mechanism self-time fold behind the
// metrics-v3 `attribution` block.
//
// The fold's contract has two halves. The arithmetic half (self-time
// nesting subtraction, additivity, the weighted-interval-scheduling
// critical path, phase inheritance) is pinned on synthetic SpanRec
// timelines where every expected number is computable by hand. The
// determinism half — classification is a pure function of (cat, name),
// so the *keys* of the fold are identical whenever the span multiset
// is — is pinned by folding the real traced workload across pool sizes
// and fork grains, mirroring the trace determinism property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/attribution.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"
#include "engine/trace.hpp"
#include "sep/executor.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using engine::Attribution;
using engine::classify_mechanism;
using engine::fold_attribution;
using engine::Mechanism;
namespace trace = bsmp::engine::trace;

namespace {

trace::SpanRec span(const char* name, trace::Cat cat, int tid,
                    std::uint64_t t0, std::uint64_t dur) {
  trace::SpanRec s;
  s.name = name;
  s.cat = cat;
  s.ph = 'X';
  s.tid = tid;
  s.t0_ns = t0;
  s.dur_ns = dur;
  return s;
}

std::uint64_t mech_self(const Attribution& at, Mechanism m) {
  return at.mechanism[static_cast<std::size_t>(m)].self_ns;
}

std::uint64_t mech_spans(const Attribution& at, Mechanism m) {
  return at.mechanism[static_cast<std::size_t>(m)].spans;
}

}  // namespace

TEST(AttributionUnits, ClassificationTable) {
  using trace::Cat;
  EXPECT_EQ(classify_mechanism(Cat::kSepRegion, "sep-leaf"),
            Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kSepRegion, "sep-region"),
            Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kStaging, "staging-prune"),
            Mechanism::kStaging);
  EXPECT_EQ(classify_mechanism(Cat::kSweepPoint, "sweep-point"),
            Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kSweepPoint, "plan-build"),
            Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kSim, "regime1-relocate"),
            Mechanism::kRelocation);
  EXPECT_EQ(classify_mechanism(Cat::kSim, "regime2-wave"),
            Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kSim, "dc-tile"), Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kTask, "join-park"),
            Mechanism::kJoinPark);
  EXPECT_EQ(classify_mechanism(Cat::kTask, "shard-merge"),
            Mechanism::kCompute);
  EXPECT_EQ(classify_mechanism(Cat::kTask, "task-run"),
            Mechanism::kStealIdle);
  EXPECT_EQ(classify_mechanism(Cat::kTask, "steal"), Mechanism::kStealIdle);
}

TEST(AttributionUnits, MechanismNamesAreStable) {
  EXPECT_STREQ(engine::mechanism_name(Mechanism::kCompute), "compute");
  EXPECT_STREQ(engine::mechanism_name(Mechanism::kRelocation), "relocation");
  EXPECT_STREQ(engine::mechanism_name(Mechanism::kStaging), "staging");
  EXPECT_STREQ(engine::mechanism_name(Mechanism::kStealIdle), "steal-idle");
  EXPECT_STREQ(engine::mechanism_name(Mechanism::kJoinPark), "join-park");
  EXPECT_STREQ(engine::mechanism_name(Mechanism::kOther), "other");
}

TEST(AttributionFold, EmptyAndInstantOnlySnapshots) {
  Attribution at = fold_attribution({}, 0);
  EXPECT_TRUE(at.empty());
  EXPECT_TRUE(at.trusted());
  EXPECT_EQ(at.total_self_ns, 0u);
  EXPECT_EQ(at.critical_path_ns, 0u);

  trace::SpanRec i = span("steal", trace::Cat::kTask, 0, 10, 0);
  i.ph = 'i';
  at = fold_attribution({i}, 3);
  EXPECT_TRUE(at.empty());  // instants carry no duration
  EXPECT_FALSE(at.trusted());
  EXPECT_EQ(at.dropped, 3u);
}

TEST(AttributionFold, SelfTimeSubtractsDirectChildrenOnly) {
  // One thread: task-run [0,100) encloses sep-region [10,90), which
  // encloses sep-leaf [20,40) and sep-leaf [50,70).
  std::vector<trace::SpanRec> spans = {
      span("task-run", trace::Cat::kTask, 0, 0, 100),
      span("sep-region", trace::Cat::kSepRegion, 0, 10, 80),
      span("sep-leaf", trace::Cat::kSepRegion, 0, 20, 20),
      span("sep-leaf", trace::Cat::kSepRegion, 0, 50, 20),
  };
  Attribution at = fold_attribution(spans, 0);
  EXPECT_EQ(at.spans, 4u);
  // task-run self = 100 - 80 (its one direct child; the leaves
  // subtract from sep-region, not from task-run).
  EXPECT_EQ(mech_self(at, Mechanism::kStealIdle), 20u);
  // sep-region self = 80 - 20 - 20, plus the two leaves' own 40.
  EXPECT_EQ(mech_self(at, Mechanism::kCompute), 40u + 40u);
  EXPECT_EQ(mech_spans(at, Mechanism::kCompute), 3u);
  // Additive: self-times sum to the outermost span's wall clock.
  EXPECT_EQ(at.total_self_ns, 100u);
  // One thread, nested spans: the critical path is the longest single
  // chain of non-overlapping spans — the outer task-run alone.
  EXPECT_EQ(at.critical_path_ns, 100u);
}

TEST(AttributionFold, SiblingThreadsDoNotNestIntoEachOther) {
  std::vector<trace::SpanRec> spans = {
      span("sep-leaf", trace::Cat::kSepRegion, 0, 0, 100),
      span("sep-leaf", trace::Cat::kSepRegion, 1, 10, 50),  // other thread
  };
  Attribution at = fold_attribution(spans, 0);
  // No subtraction across threads: both spans keep their full time.
  EXPECT_EQ(mech_self(at, Mechanism::kCompute), 150u);
  EXPECT_EQ(at.total_self_ns, 150u);
}

TEST(AttributionFold, CriticalPathIsMaxWeightNonOverlappingChain) {
  // Two short compatible spans (total 20) vs one long span (21)
  // overlapping both: weighted interval scheduling must pick the 21.
  std::vector<trace::SpanRec> spans = {
      span("sep-leaf", trace::Cat::kSepRegion, 0, 0, 10),
      span("sep-leaf", trace::Cat::kSepRegion, 0, 20, 10),
      span("sep-leaf", trace::Cat::kSepRegion, 1, 5, 21),
  };
  Attribution at = fold_attribution(spans, 0);
  EXPECT_EQ(at.critical_path_ns, 21u);
  // Make the pair win: extend the second short span.
  spans[1].dur_ns = 15;  // chain A+B = 25 > 21
  at = fold_attribution(spans, 0);
  EXPECT_EQ(at.critical_path_ns, 25u);
}

TEST(AttributionFold, PhaseIsOwnNameOrInheritedFromEnclosingSpan) {
  using engine::ForkPhase;
  // machine-tile [0,100) encloses regime1-relocate [10,50), which
  // encloses staging-prune [20,30) (no own phase -> inherits).
  // sep-leaf [60,80) has its own phase (kExecutorLeaf) regardless of
  // the enclosing machine-tile.
  std::vector<trace::SpanRec> spans = {
      span("machine-tile", trace::Cat::kSim, 0, 0, 100),
      span("regime1-relocate", trace::Cat::kSim, 0, 10, 40),
      span("staging-prune", trace::Cat::kStaging, 0, 20, 10),
      span("sep-leaf", trace::Cat::kSepRegion, 0, 60, 20),
  };
  Attribution at = fold_attribution(spans, 0);
  auto cell = [&](ForkPhase p, Mechanism m) {
    return at.phase[static_cast<std::size_t>(p)][static_cast<std::size_t>(m)];
  };
  // machine-tile self = 100 - 40 - 20 = 40, in its own phase.
  EXPECT_EQ(cell(ForkPhase::kMachineTile, Mechanism::kCompute), 40u);
  // regime1-relocate self = 40 - 10 = 30.
  EXPECT_EQ(cell(ForkPhase::kRegime1Relocate, Mechanism::kRelocation), 30u);
  // staging-prune inherits the relocation phase.
  EXPECT_EQ(cell(ForkPhase::kRegime1Relocate, Mechanism::kStaging), 10u);
  // sep-leaf claims kExecutorLeaf over the inherited machine-tile.
  EXPECT_EQ(cell(ForkPhase::kExecutorLeaf, Mechanism::kCompute), 20u);
  // The phase matrix is the same total partitioned a second way.
  std::uint64_t phase_total = 0;
  for (const auto& row : at.phase)
    for (auto v : row) phase_total += v;
  EXPECT_EQ(phase_total, at.total_self_ns);
  EXPECT_EQ(at.total_self_ns, 100u);
}

#if BSMP_TRACE_ENABLED

namespace {

machine::MachineSpec spec(int d, std::int64_t n, std::int64_t p,
                          std::int64_t m) {
  return machine::MachineSpec{d, n, p, m};
}

/// The trace determinism workload (mirrors test_trace): one dc
/// uniprocessor point and one multiprocessor point through a sweep.
void run_workload(int threads) {
  engine::Pool pool(threads);
  engine::PlanCache plans;
  engine::SweepOptions opt;
  opt.plans = &plans;
  opt.label = "attribution workload";
  engine::PlanKey key;
  key.d = 1;
  key.family = engine::PlanFamily::kGuest;
  key.width = 32;
  key.horizon = 32;
  key.m = 2;
  auto rows = engine::sweep_map<int>(
      pool, std::vector<int>{0, 1},
      [&](int point, engine::SweepContext& c) {
        auto g = c.plans->get_or_build<sep::Guest<1>>(key, [] {
          return workload::make_mix_guest<1>({32}, 32, 2, 9);
        });
        if (point == 0) {
          auto res = sim::simulate_dc_uniproc<1>(*g, spec(1, 32, 1, 2));
          return static_cast<int>(res.vertices & 0x7fffffff);
        }
        sim::MultiprocConfig cfg;
        cfg.s = 4;
        auto res = sim::simulate_multiproc<1>(*g, spec(1, 32, 4, 2), cfg);
        return static_cast<int>(res.vertices & 0x7fffffff);
      },
      opt);
  ASSERT_EQ(rows.size(), 2u);
}

/// Per-mechanism span counts of the deterministic categories (kTask
/// spans are scheduling noise — which forks ran, who stole what — so
/// they are filtered before the fold), plus the set of mechanisms the
/// full fold keys. Both are pure functions of the executed work.
struct FoldSignature {
  std::array<std::uint64_t, engine::kNumMechanisms> det_spans{};
  std::vector<std::string> keys;  ///< sorted nonzero mechanism names

  bool operator==(const FoldSignature& o) const {
    return det_spans == o.det_spans && keys == o.keys;
  }
};

FoldSignature folded_signature(int threads, std::int64_t grain) {
  const std::int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(grain);
  trace::clear();
  trace::set_enabled(true);
  run_workload(threads);
  trace::set_enabled(false);
  sep::set_default_parallel_grain(saved);

  std::vector<trace::SpanRec> all = trace::snapshot();
  std::vector<trace::SpanRec> det;
  for (const auto& s : all)
    if (s.cat != trace::Cat::kTask) det.push_back(s);

  FoldSignature sig;
  Attribution det_at = fold_attribution(det, 0);
  for (std::size_t i = 0; i < engine::kNumMechanisms; ++i)
    sig.det_spans[i] = det_at.mechanism[i].spans;
  Attribution full = fold_attribution(all, trace::dropped());
  EXPECT_TRUE(full.trusted()) << "buffer too small for the workload";
  for (std::size_t i = 0; i < engine::kNumMechanisms; ++i)
    if (full.mechanism[i].spans != 0)
      sig.keys.push_back(
          engine::mechanism_name(static_cast<Mechanism>(i)));
  std::sort(sig.keys.begin(), sig.keys.end());
  return sig;
}

}  // namespace

TEST(AttributionDeterminism, KeysIdenticalAcrossPoolAndGrain) {
  const FoldSignature ref = folded_signature(1, 0);
  // The workload touches every deterministic mechanism.
  ASSERT_GT(ref.det_spans[static_cast<int>(Mechanism::kCompute)], 0u);
  ASSERT_GT(ref.det_spans[static_cast<int>(Mechanism::kRelocation)], 0u);
  ASSERT_GT(ref.det_spans[static_cast<int>(Mechanism::kStaging)], 0u);
  // Nothing lands in the additivity backstop.
  EXPECT_EQ(ref.det_spans[static_cast<int>(Mechanism::kOther)], 0u);

  for (int threads : {1, 2, 4}) {
    for (std::int64_t grain : {std::int64_t{0}, std::int64_t{4}}) {
      if (threads == 1 && grain == 0) continue;  // the reference itself
      FoldSignature sig = folded_signature(threads, grain);
      EXPECT_EQ(sig.det_spans, ref.det_spans)
          << "deterministic span counts moved at threads=" << threads
          << " grain=" << grain;
      // The full fold may add task-layer mechanisms (steal-idle,
      // join-park) depending on scheduling, but must never lose the
      // deterministic ones.
      for (const std::string& k : {std::string("compute"),
                                   std::string("relocation"),
                                   std::string("staging")})
        EXPECT_TRUE(std::find(sig.keys.begin(), sig.keys.end(), k) !=
                    sig.keys.end())
            << "mechanism " << k << " vanished at threads=" << threads
            << " grain=" << grain;
    }
  }
  trace::clear();
}

TEST(AttributionDeterminism, FoldSinceMarkScopesToOnePass) {
  trace::clear();
  trace::set_enabled(true);
  run_workload(1);
  const std::uint64_t mid = trace::mark();
  run_workload(1);
  trace::set_enabled(false);

  Attribution whole = engine::fold_attribution_since(0);
  Attribution second = engine::fold_attribution_since(mid);
  Attribution none = engine::fold_attribution_since(trace::mark());
  EXPECT_GT(whole.spans, second.spans);
  EXPECT_GT(second.spans, 0u);
  EXPECT_TRUE(none.empty());
  trace::clear();
}

#endif  // BSMP_TRACE_ENABLED
