file(REMOVE_RECURSE
  "CMakeFiles/matmul_speedup.dir/matmul_speedup.cpp.o"
  "CMakeFiles/matmul_speedup.dir/matmul_speedup.cpp.o.d"
  "matmul_speedup"
  "matmul_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
