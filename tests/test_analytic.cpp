#include <gtest/gtest.h>

#include <cmath>

#include "analytic/tradeoff.hpp"
#include "core/expect.hpp"
#include "core/logmath.hpp"

using namespace bsmp::analytic;
namespace core = bsmp::core;

TEST(Ranges, BoundariesMatchTheorem1) {
  // n = 2^16, p = 2^4, d = 1: boundaries at (n/p)^(1/2) = 2^6,
  // (np)^(1/2) = 2^10, n = 2^16.
  double n = 65536, p = 16;
  EXPECT_EQ(classify_range(1, n, 1, p), Range::k1);
  EXPECT_EQ(classify_range(1, n, 63, p), Range::k1);
  EXPECT_EQ(classify_range(1, n, 65, p), Range::k2);
  EXPECT_EQ(classify_range(1, n, 1023, p), Range::k2);
  EXPECT_EQ(classify_range(1, n, 1025, p), Range::k3);
  EXPECT_EQ(classify_range(1, n, 65535, p), Range::k3);
  EXPECT_EQ(classify_range(1, n, 65537, p), Range::k4);
}

TEST(Ranges, D2Boundaries) {
  // d = 2: boundaries at (n/p)^(1/4), (np)^(1/4), sqrt(n).
  double n = 65536, p = 16;
  EXPECT_EQ(classify_range(2, n, 7, p), Range::k1);    // (n/p)^(1/4) = 8
  EXPECT_EQ(classify_range(2, n, 9, p), Range::k2);
  EXPECT_EQ(classify_range(2, n, 33, p), Range::k3);   // (np)^(1/4) = 32
  EXPECT_EQ(classify_range(2, n, 257, p), Range::k4);  // sqrt(n) = 256
}

TEST(LocalityA, Range4IsStepByStep) {
  // For m >= n^(1/d) the locality slowdown is (n/p)^(1/d) — naive.
  EXPECT_DOUBLE_EQ(locality_A(1, 1024, 2048, 16), 64.0);
  EXPECT_DOUBLE_EQ(locality_A(2, 4096, 128, 16), 16.0);
}

TEST(LocalityA, AtLeastOneAndMonotoneInM) {
  for (double m = 1; m <= 1 << 12; m *= 2) {
    double a = locality_A(1, 4096, m, 4);
    EXPECT_GE(a, 1.0) << m;
  }
  // A is (weakly) increasing in m until it saturates at n/p: more
  // memory per unit volume means more data to move.
  double prev = 0;
  for (double m = 1; m <= 4096; m *= 2) {
    double a = locality_A(1, 4096, m, 4);
    EXPECT_GE(a, prev * 0.49) << m;  // allow small dips at boundaries
    prev = a;
  }
}

TEST(LocalityA, SlowdownBoundComposesFactors) {
  double n = 4096, m = 8, p = 4;
  EXPECT_DOUBLE_EQ(slowdown_bound(1, n, m, p),
                   (n / p) * locality_A(1, n, m, p));
}

TEST(AOfS, ClosedFormSStarNearNumericMinimum) {
  // s* from the paper's four-range table must come within a constant
  // factor of the numeric minimum of A(s).
  for (double n : {4096.0, 65536.0}) {
    for (double p : {4.0, 16.0}) {
      for (double m : {1.0, 4.0, 32.0, 256.0, 2048.0}) {
        if (m > n) continue;
        double best = 1e300;
        for (double s = 1; s * p <= n; s *= 2)
          best = std::min(best, A_of_s(n, m, p, s));
        double star = s_star(n, m, p);
        if (star * p > n) star = n / p;
        double at_star = A_of_s(n, m, p, star);
        EXPECT_LE(at_star, 3.0 * best)
            << "n=" << n << " p=" << p << " m=" << m;
      }
    }
  }
}

TEST(AOfS, MatchesRangeFormulas) {
  // Evaluating A(s) at s* reproduces the Theorem-4 closed forms up to
  // the loḡ saturation (within a factor of ~4).
  double n = 65536, p = 16;
  for (double m : {1.0, 8.0, 128.0, 4096.0, 32768.0}) {
    double star = s_star(n, m, p);
    if (star * p > n) star = n / p;
    double a_s = A_of_s(n, m, p, star);
    double a_thm = locality_A(1, n, m, p);
    EXPECT_LT(a_s / a_thm, 4.0) << m;
    EXPECT_GT(a_s / a_thm, 0.2) << m;
  }
}

TEST(Bounds, Theorem2And5AreNLogN) {
  EXPECT_DOUBLE_EQ(thm2_bound(1024), 1024 * core::logbar(1024));
  EXPECT_DOUBLE_EQ(thm5_bound(1024), 1024 * core::logbar(1024));
}

TEST(Bounds, Theorem3CapsAtNaive) {
  // min(n, m loḡ(n/m)): for large m the bound saturates at n^2.
  EXPECT_DOUBLE_EQ(thm3_bound(256, 100000), 256.0 * 256.0);
  EXPECT_LT(thm3_bound(256, 2), 256.0 * 256.0);
}

TEST(Bounds, NaiveAndBrent) {
  EXPECT_DOUBLE_EQ(naive_bound(1, 1024, 7, 1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(naive_bound(2, 4096, 1, 1), std::pow(4096.0, 1.5));
  EXPECT_DOUBLE_EQ(naive_bound(1, 1024, 1, 4), 256.0 * 256.0);
  EXPECT_DOUBLE_EQ(brent_bound(1024, 16), 64.0);
}

TEST(Bounds, MatmulExampleSuperlinearSpeedup) {
  // The introduction's observation: mesh speedup over the best
  // uniprocessor is Θ(n log n) — superlinear in the n processors.
  double n = 4096;
  double mesh = matmul_mesh_time(n);
  double blocked = matmul_hram_blocked_time(n);
  double naive = matmul_hram_naive_time(n);
  EXPECT_GT(blocked / mesh, n);            // superlinear
  EXPECT_LT(blocked / mesh, n * 3 * core::logbar(n));
  EXPECT_GT(naive / mesh, std::pow(n, 1.5) / 4);  // Θ(n^(3/2))
}

TEST(Params, Rejected) {
  EXPECT_THROW(locality_A(0, 16, 1, 1), bsmp::precondition_error);
  EXPECT_THROW(locality_A(1, 16, 1, 32), bsmp::precondition_error);
  EXPECT_THROW(A_of_s(16, 1, 1, 0), bsmp::precondition_error);
}

TEST(RangeNames, AreDescriptive) {
  EXPECT_NE(std::string(to_string(Range::k1)).find("range1"),
            std::string::npos);
  EXPECT_NE(std::string(to_string(Range::k4)).find("range4"),
            std::string::npos);
}
