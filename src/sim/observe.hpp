// Guest-visible observation points: which dag vertices constitute "the
// result" of a T-step computation, and helpers to compare simulator
// outputs for functional equivalence.
#pragma once

#include <vector>

#include "core/logmath.hpp"
#include "geom/lattice.hpp"
#include "sep/executor.hpp"

namespace bsmp::sim {

/// The final points of a computation: for every node x and every memory
/// cell j in [0, m), the vertex that wrote cell j last, i.e. the
/// largest t < horizon with t ≡ j (mod m). These are exactly the
/// guest's memory contents when it halts.
template <int D>
std::vector<geom::Point<D>> final_points(const geom::Stencil<D>& st) {
  std::vector<geom::Point<D>> out;
  std::vector<geom::Point<D>> stack;
  // Enumerate nodes recursively over dimensions.
  geom::Point<D> p;
  auto emit_times = [&](const geom::Point<D>& node) {
    for (int64_t j = 0; j < st.m; ++j) {
      // Largest t < horizon with t ≡ j (mod m); cells never written
      // within the horizon (j >= horizon when m > T) are skipped —
      // they still hold their input value.
      int64_t t =
          st.horizon - 1 - core::mod_floor(st.horizon - 1 - j, st.m);
      if (t < 0) continue;
      geom::Point<D> q = node;
      q.t = t;
      out.push_back(q);
    }
  };
  if constexpr (D == 1) {
    for (int64_t x = 0; x < st.extent[0]; ++x) {
      p.x[0] = x;
      emit_times(p);
    }
  } else if constexpr (D == 2) {
    for (int64_t x = 0; x < st.extent[0]; ++x) {
      p.x[0] = x;
      for (int64_t y = 0; y < st.extent[1]; ++y) {
        p.x[1] = y;
        emit_times(p);
      }
    }
  } else {
    static_assert(D == 3);
    for (int64_t x = 0; x < st.extent[0]; ++x) {
      p.x[0] = x;
      for (int64_t y = 0; y < st.extent[1]; ++y) {
        p.x[1] = y;
        for (int64_t z = 0; z < st.extent[2]; ++z) {
          p.x[2] = z;
          emit_times(p);
        }
      }
    }
  }
  return out;
}

/// Extract the final points from a staging store (ValueMap or
/// StagingStore, any value type) into a fresh map; asserts every final
/// point is present.
template <int D, class Store>
sep::BasicValueMap<D, sep::store_value_t<Store>> extract_final(
    const geom::Stencil<D>& st, const Store& staging) {
  sep::BasicValueMap<D, sep::store_value_t<Store>> out;
  for (const auto& q : final_points<D>(st)) {
    const auto* v = sep::store_find(staging, q);
    BSMP_ASSERT_MSG(v != nullptr, "final value missing at t=" << q.t);
    out.emplace(q, *v);
  }
  return out;
}

/// True iff two final-value maps agree exactly.
template <int D, class V>
bool same_values(const sep::BasicValueMap<D, V>& a,
                 const sep::BasicValueMap<D, V>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [k, v] : a) {
    auto it = b.find(k);
    if (it == b.end() || it->second != v) return false;
  }
  return true;
}

}  // namespace bsmp::sim
