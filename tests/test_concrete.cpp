// The concrete executor: Proposition 2 with literal memory. Its values
// must equal the guest's, its addresses must stay inside the window
// S(U), and its charged time must agree with the abstract executor's
// up to a constant — grounding the abstract cost accounting.
#include <gtest/gtest.h>

#include "geom/tiling.hpp"
#include "sep/concrete.hpp"
#include "sep/executor.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using AddrMap =
    std::unordered_map<geom::Point<1>, std::size_t, geom::PointHash<1>>;

namespace {

/// Drive the concrete executor over the whole volume, transporting
/// values between tiles through a host-side map (the "rest of the
/// machine's memory"). Returns the final values and the HRam used.
template <int D>
sep::ValueMap<D> run_concrete(const sep::Guest<D>& guest, hram::HRam& ram,
                              int64_t tile_w, int64_t leaf_w) {
  sep::ConcreteExecutor<D> exec(&guest, &ram, leaf_w);
  sep::ValueMap<D> transported;
  geom::TileGrid<D> grid(&guest.stencil, tile_w);
  for (const auto& wave : grid.wavefronts()) {
    for (const auto& tile : wave) {
      std::size_t S = tile.width() <= leaf_w
                          ? exec.leaf_space_bound(tile.width())
                          : exec.space_bound(tile.width());
      auto gin = tile.preboundary();
      std::unordered_map<geom::Point<D>, std::size_t, geom::PointHash<D>>
          pre;
      std::size_t addr = S - 1;
      for (const auto& q : gin) {
        ram.write(addr, transported.at(q));
        pre.emplace(q, addr);
        --addr;
      }
      auto out = exec.execute(tile, pre);
      for (const auto& [q, a] : out) transported[q] = ram.read(a);
    }
  }
  return transported;
}

}  // namespace

TEST(Concrete, ValuesMatchReference1D) {
  for (int64_t m : {1, 2, 3}) {
    for (int64_t tile : {4, 8}) {
      auto g = workload::make_mix_guest<1>({10}, 14, m, 3 * m + tile);
      auto ref = sim::reference_run<1>(g);
      hram::HRam ram(1 << 14, hram::AccessFn::hierarchical(1, (double)m));
      auto got = run_concrete<1>(g, ram, tile, m);
      auto fin = sim::extract_final<1>(g.stencil, got);
      EXPECT_TRUE(sim::same_values<1>(fin, ref.final_values))
          << "m=" << m << " tile=" << tile;
    }
  }
}

TEST(Concrete, ValuesMatchReference2D) {
  auto g = workload::make_mix_guest<2>({4, 4}, 6, 1, 17);
  auto ref = sim::reference_run<2>(g);
  hram::HRam ram(1 << 16, hram::AccessFn::hierarchical(2, 1.0));
  auto got = run_concrete<2>(g, ram, 4, 1);
  auto fin = sim::extract_final<2>(g.stencil, got);
  EXPECT_TRUE(sim::same_values<2>(fin, ref.final_values));
}

TEST(Concrete, PeakAddressWithinWindow) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 9);
  hram::HRam ram(1 << 16, hram::AccessFn::hierarchical(1, 1.0));
  sep::ConcreteExecutor<1> exec(&g, &ram, 1);
  run_concrete<1>(g, ram, 16, 1);
  // The largest window in play is S(tile_width = 16).
  EXPECT_LT(ram.peak_addr(), exec.space_bound(16));
}

TEST(Concrete, ChargesAgreeWithAbstractExecutor) {
  // Same computation through both executors: total charged time within
  // a constant band (they use the same f and the same recursion, but
  // the concrete one pays exact per-address costs).
  for (int64_t n : {8, 16, 24}) {
    auto g = workload::make_mix_guest<1>({n}, n, 1, n);

    hram::HRam ram(1 << 18, hram::AccessFn::hierarchical(1, 1.0));
    run_concrete<1>(g, ram, n, 1);
    double concrete = ram.ledger().total();

    sep::ExecutorConfig cfg;
    cfg.leaf_width = 1;
    cfg.f = hram::AccessFn::hierarchical(1, 1.0);
    sep::Executor<1> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    geom::TileGrid<1> grid(&g.stencil, n);
    sep::ValueMap<1> staging;
    for (const auto& wave : grid.wavefronts())
      for (const auto& t : wave) exec.execute(t, staging);
    double abstract = ledger.total();

    double ratio = concrete / abstract;
    EXPECT_GT(ratio, 0.02) << n;
    EXPECT_LT(ratio, 5.0) << n;
  }
}

TEST(Concrete, SortsThroughLiteralMemory) {
  int64_t n = 16;
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{n}, n + 1, 1};
  g.rule = workload::sort_rule(n);
  g.input = [n](const std::array<int64_t, 1>& x, int64_t) -> sep::Word {
    return static_cast<sep::Word>((x[0] * 7 + 3) % n + 1);
  };
  hram::HRam ram(1 << 14, hram::AccessFn::hierarchical(1, 1.0));
  auto got = run_concrete<1>(g, ram, n, 1);
  std::vector<sep::Word> arr;
  for (int64_t x = 0; x < n; ++x)
    arr.push_back(got.at(geom::Point<1>{{x}, n}));
  EXPECT_TRUE(std::is_sorted(arr.begin(), arr.end()));
}

TEST(Concrete, RejectsBadParking) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 1);
  hram::HRam ram(1 << 14, hram::AccessFn::unit());
  sep::ConcreteExecutor<1> exec(&g, &ram, 1);
  geom::Region<1> d(&g.stencil, {8, -4}, {16, 4});
  ASSERT_FALSE(d.empty());
  AddrMap pre;
  // Park a preboundary value at address 0 — violates the Prop-2 layout
  // (must sit at the top of the window).
  auto gin = d.preboundary();
  ASSERT_FALSE(gin.empty());
  for (const auto& q : gin) pre.emplace(q, 0);
  EXPECT_THROW(exec.execute(d, pre), bsmp::invariant_error);
}

TEST(Concrete, HRamTooSmallIsReported) {
  auto g = workload::make_mix_guest<1>({64}, 64, 1, 1);
  hram::HRam ram(16, hram::AccessFn::unit());
  sep::ConcreteExecutor<1> exec(&g, &ram, 1);
  geom::Region<1> d(&g.stencil, {0, -63}, {64, 1});
  AddrMap pre;
  EXPECT_THROW(exec.execute(d, pre), bsmp::precondition_error);
}

TEST(Concrete, ValuesMatchReference3D) {
  auto g = workload::make_mix_guest<3>({2, 2, 2}, 4, 1, 23);
  auto ref = sim::reference_run<3>(g);
  hram::HRam ram(1 << 16, hram::AccessFn::hierarchical(3, 1.0));
  auto got = run_concrete<3>(g, ram, 2, 1);
  auto fin = sim::extract_final<3>(g.stencil, got);
  EXPECT_TRUE(sim::same_values<3>(fin, ref.final_values));
}
