// Dense, window-addressed staging for the separator executor.
//
// The staging medium between domains is keyed by lattice points. The
// original medium was ValueMap<D> (an unordered_map), which pays a
// hash + probe per touch and rehash churn as tiles come and go. A
// point's address is in fact computable in O(1): the stencil's spatial
// grid is fixed, so (x, t) maps to (node_index(x), t) — a slot in a
// per-time-level slab of num_nodes words. StagingStore<D> stores
// values that way:
//
//   * one lazily-materialized slab per time level (values + liveness
//     bytes), retired again when the level is pruned — so the resident
//     footprint follows the executor's wavefront, not the volume;
//   * size() is the number of *live* words, maintained incrementally —
//     identical semantics to the map's size(), which peak_staging()
//     and the space-bound tests rely on;
//   * level_allocs() counts slab allocations for the hot-path metrics.
//
// The generic accessors at the bottom (store_find / store_insert) give
// Executor one staging interface over both StagingStore and the
// original ValueMap (kept as a supported staging type: existing tests
// use it, and the hot-path bench measures it as the same-run baseline).
//
// Both store families are generic over the per-point value type V
// (Word by default; LaneBatch for SoA-batched guests — see
// sep/guest.hpp). Liveness, size() and level accounting count *points*
// regardless of V, so peak-staging and slab-allocation metrics are
// identical between a scalar run and a 64-lane batched run.
//
// Slab memory comes from engine::Arena (BSMP_ARENA, default on), and
// liveness is epoch-tagged: a slot is live iff its liveness byte equals
// the level's current epoch, so recycling a slab — from the store's own
// retired-level stack or the process-wide arena pool — never re-zeroes
// the value words. With the arena off every slab is a fresh, fully
// zeroed allocation (the seed behavior); either way the table bytes are
// identical because values are only ever read through live marks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/expect.hpp"
#include "engine/arena.hpp"
#include "geom/lattice.hpp"
#include "geom/region.hpp"
#include "sep/guest.hpp"

namespace bsmp::sep {

template <int D, class V = Word>
class StagingStore {
  static_assert(std::is_trivially_copyable_v<V>,
                "level slabs treat V as raw bytes");
  static_assert(alignof(V) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "arena slabs are operator-new aligned");

 public:
  using value_type = V;

  /// The stencil fixes the address layout; it must outlive the store.
  explicit StagingStore(const geom::Stencil<D>* stencil)
      : st_(stencil) {
    BSMP_REQUIRE(stencil != nullptr);
    nodes_ = st_->num_nodes();
    levels_.resize(static_cast<std::size_t>(st_->horizon));
  }

  ~StagingStore() {
    for (Level& lv : levels_) engine::Arena::instance().release(lv.block);
    for (Level& lv : free_) engine::Arena::instance().release(lv.block);
  }

  StagingStore(StagingStore&& o) noexcept
      : st_(o.st_),
        nodes_(o.nodes_),
        levels_(std::move(o.levels_)),
        free_(std::move(o.free_)),
        live_(o.live_),
        allocs_(o.allocs_) {
    o.levels_.clear();
    o.free_.clear();
    o.live_ = 0;
    o.allocs_ = 0;
  }

  StagingStore& operator=(StagingStore&& o) noexcept {
    std::swap(st_, o.st_);
    std::swap(nodes_, o.nodes_);
    levels_.swap(o.levels_);
    free_.swap(o.free_);
    std::swap(live_, o.live_);
    std::swap(allocs_, o.allocs_);
    return *this;
  }

  bool contains(const geom::Point<D>& q) const {
    return find(q) != nullptr;
  }

  /// Pointer to the live value at q, or nullptr when q is absent (or
  /// not a vertex position at all).
  const V* find(const geom::Point<D>& q) const {
    if (q.t < 0 || q.t >= st_->horizon) return nullptr;
    const Level* lv = &levels_[static_cast<std::size_t>(q.t)];
    if (lv->epoch == 0 || !st_->in_space(q.x)) return nullptr;
    std::size_t s = slot(q.x);
    return lv->live[s] == lv->epoch ? &lv->vals[s] : nullptr;
  }

  /// Pointer to n contiguous live values along the innermost dimension
  /// starting at q, or nullptr when the span is not fully live (or the
  /// level is absent). Slots are row-major with the innermost dimension
  /// contiguous, so a live span IS a dense operand row — the SIMD leaf
  /// path hands it to a kernel without any per-cell staging copy.
  const V* row_span(const geom::Point<D>& q, std::size_t n) const {
    if (q.t < 0 || q.t >= st_->horizon) return nullptr;
    const Level* lv = &levels_[static_cast<std::size_t>(q.t)];
    if (lv->epoch == 0 || !st_->in_space(q.x)) return nullptr;
    if (q.x[D - 1] + static_cast<std::int64_t>(n) > st_->extent[D - 1])
      return nullptr;
    std::size_t s = slot(q.x);
    for (std::size_t i = 0; i < n; ++i)
      if (lv->live[s + i] != lv->epoch) return nullptr;
    return &lv->vals[s];
  }

  /// Mutable value at q; asserts q is live (mirrors map::at).
  V& at(const geom::Point<D>& q) {
    BSMP_REQUIRE(q.t >= 0 && q.t < st_->horizon && st_->in_space(q.x));
    Level* lv = &levels_[static_cast<std::size_t>(q.t)];
    BSMP_REQUIRE_MSG(lv->epoch != 0, "StagingStore::at on absent point");
    std::size_t s = slot(q.x);
    BSMP_REQUIRE_MSG(lv->live[s] == lv->epoch,
                     "StagingStore::at on absent point");
    return lv->vals[s];
  }

  /// Set the value at q (insert-or-overwrite); true when q was absent.
  bool insert(const geom::Point<D>& q, const V& v) {
    BSMP_REQUIRE(q.t >= 0 && q.t < st_->horizon && st_->in_space(q.x));
    Level& lv = level(q.t);
    std::size_t s = slot(q.x);
    bool added = lv.live[s] != lv.epoch;
    if (added) {
      lv.live[s] = lv.epoch;
      ++lv.nlive;
      ++live_;
    }
    lv.vals[s] = v;
    return added;
  }

  /// Insert n contiguous values along the innermost dimension starting
  /// at q (src[i] lands on q + i*e_{D-1}); returns how many cells were
  /// newly added. Semantically n insert() calls, with one slab lookup.
  std::int64_t insert_span(const geom::Point<D>& q, const V* src,
                           std::size_t n) {
    BSMP_REQUIRE(q.t >= 0 && q.t < st_->horizon && st_->in_space(q.x));
    BSMP_REQUIRE(q.x[D - 1] + static_cast<std::int64_t>(n) <=
                 st_->extent[D - 1]);
    Level& lv = level(q.t);
    std::size_t s = slot(q.x);
    std::int64_t added = 0;
    for (std::size_t i = 0; i < n; ++i) {
      added += lv.live[s + i] != lv.epoch;
      lv.live[s + i] = lv.epoch;
      lv.vals[s + i] = src[i];
    }
    lv.nlive += added;
    live_ += static_cast<std::size_t>(added);
    return added;
  }

  /// Remove q if live (no-op otherwise, like map::erase); true when a
  /// value was actually removed.
  bool erase(const geom::Point<D>& q) {
    if (q.t < 0 || q.t >= st_->horizon || !st_->in_space(q.x)) return false;
    Level* lv = &levels_[static_cast<std::size_t>(q.t)];
    if (lv->epoch == 0) return false;
    std::size_t s = slot(q.x);
    if (lv->live[s] != lv->epoch) return false;
    lv->live[s] = 0;  // epochs start at 1, so 0 never reads live
    --lv->nlive;
    --live_;
    return true;
  }

  /// Ensure level t's slab is allocated (counted by level_allocs), as
  /// inserting into t would. Used when merging a StagingShard so the
  /// slab-allocation metric matches a serial execution that touched a
  /// level only with values erased again before the merge.
  void touch_level(std::int64_t t) {
    if (t >= 0 && t < st_->horizon) level(t);
  }

  /// The stencil fixing this store's address layout.
  const geom::Stencil<D>* stencil() const { return st_; }

  /// Number of live words — the same quantity ValueMap::size() reports,
  /// so peak-staging accounting is unchanged by the dense layout.
  std::size_t size() const { return live_; }

  /// Drop every level with t < dead_below and t < keep_from, retiring
  /// its slab (arena on: onto the store's recycle stack for a pure
  /// epoch-bump reuse; off: back to the allocator). Levels are
  /// all-or-nothing here because staleness is a pure function of t
  /// (see sim::detail::prune_staging).
  void prune_below(std::int64_t dead_below, std::int64_t keep_from) {
    std::int64_t top = std::min(dead_below, keep_from);
    top = std::min(top, st_->horizon);
    for (std::int64_t t = 0; t < top; ++t) {
      Level& lv = levels_[static_cast<std::size_t>(t)];
      if (lv.epoch == 0) continue;
      live_ -= static_cast<std::size_t>(lv.nlive);
      if (engine::arena_enabled() && lv.block) {
        free_.push_back(lv);
        free_.back().nlive = 0;
      } else {
        engine::Arena::instance().release(lv.block);
      }
      lv = Level{};
    }
  }

  /// Forget every live value in O(levels): each present slab stays
  /// bound to its level with a bumped epoch (no memset until the 8-bit
  /// epoch wraps), ready for reuse. For pooled shard-local stores
  /// (detail::shard_local); the stencil pointer is dropped — the store
  /// is unusable until try_rebind installs a live one.
  void reset_for_reuse() {
    for (Level& lv : levels_) {
      if (lv.epoch == 0) continue;
      bump_epoch(lv);
      lv.nlive = 0;
    }
    live_ = 0;
    allocs_ = 0;
    st_ = nullptr;
  }

  /// Rebind a reset store to a (possibly different) stencil with the
  /// same slab geometry; false when the geometry differs and the
  /// caller must construct fresh. Only layout equality matters
  /// (num_nodes and horizon): a reset store holds no live values, so
  /// an extent permutation cannot resurrect stale data.
  bool try_rebind(const geom::Stencil<D>* stencil) {
    BSMP_REQUIRE(stencil != nullptr);
    if (stencil->num_nodes() != nodes_ ||
        static_cast<std::size_t>(stencil->horizon) != levels_.size())
      return false;
    st_ = stencil;
    return true;
  }

  /// Slab allocations performed so far (hot-path metric: a steady
  /// state allocates one slab per newly-touched time level and nothing
  /// else).
  std::size_t level_allocs() const { return allocs_; }

  /// Visit every live (point, value) pair, t ascending then node order.
  template <class F>
  void for_each(F&& visit) const {
    for (std::int64_t t = 0; t < st_->horizon; ++t) {
      const Level* lv = &levels_[static_cast<std::size_t>(t)];
      if (lv->epoch == 0 || lv->nlive == 0) continue;
      geom::Point<D> p;
      p.t = t;
      for (std::size_t s = 0; s < static_cast<std::size_t>(nodes_); ++s) {
        if (lv->live[s] != lv->epoch) continue;
        unslot(s, p.x);
        visit(p, lv->vals[s]);
      }
    }
  }

 private:
  /// One time level's slab: vals then live bytes inside one arena
  /// block. epoch == 0 means the level is absent; otherwise slot s is
  /// live iff live[s] == epoch, which is what lets a recycled slab skip
  /// re-zeroing its value words.
  struct Level {
    V* vals = nullptr;
    std::uint8_t* live = nullptr;
    std::int64_t nlive = 0;
    std::uint8_t epoch = 0;
    engine::Arena::Block block;
  };

  void bump_epoch(Level& lv) {
    if (lv.epoch == 255) {
      if (lv.live != nullptr)
        std::memset(lv.live, 0, static_cast<std::size_t>(nodes_));
      lv.epoch = 1;
    } else {
      ++lv.epoch;
    }
  }

  std::size_t slab_bytes() const {
    return static_cast<std::size_t>(nodes_) * (sizeof(V) + 1);
  }

  Level& level(std::int64_t t) {
    Level& lv = levels_[static_cast<std::size_t>(t)];
    if (lv.epoch != 0) return lv;
    if (!free_.empty()) {
      // Recycled retired level: stale marks carry dead epochs, so
      // materialization is a pure epoch bump.
      Level slab = free_.back();
      free_.pop_back();
      lv = slab;
      bump_epoch(lv);
    } else {
      lv.block = engine::Arena::instance().acquire(slab_bytes());
      if (lv.block) {
        lv.vals = static_cast<V*>(lv.block.data);
        lv.live = reinterpret_cast<std::uint8_t*>(lv.vals) +
                  static_cast<std::size_t>(nodes_) * sizeof(V);
        if (engine::arena_enabled()) {
          // Arbitrary pool contents; only liveness needs resetting —
          // values are read strictly through live marks.
          std::memset(lv.live, 0, static_cast<std::size_t>(nodes_));
        } else {
          // Seed-faithful cold path: a fully zeroed fresh slab.
          std::memset(lv.block.data, 0, lv.block.bytes);
        }
      }
      lv.epoch = 1;
    }
    lv.nlive = 0;
    ++allocs_;
    return lv;
  }

  std::size_t slot(const std::array<std::int64_t, D>& x) const {
    std::int64_t s = 0;
    for (int i = 0; i < D; ++i) s = s * st_->extent[i] + x[i];
    return static_cast<std::size_t>(s);
  }

  void unslot(std::size_t s, std::array<std::int64_t, D>& x) const {
    auto r = static_cast<std::int64_t>(s);
    for (int i = D - 1; i >= 0; --i) {
      x[i] = r % st_->extent[i];
      r /= st_->extent[i];
    }
  }

  const geom::Stencil<D>* st_;
  std::int64_t nodes_ = 0;
  std::vector<Level> levels_;
  std::vector<Level> free_;  // retired slabs awaiting an epoch-bump reuse
  std::size_t live_ = 0;
  std::size_t allocs_ = 0;
};

// ---------------------------------------------------------------------
// LeafWindow: the structure-of-arrays view of one leaf's dense value
// window.
//
// A leaf ("executable diamond") is executed into a flat scratch
// vector: all cells of time level t, row-major over the level's
// x-ranges, starting at a per-level prefix offset. That layout is what
// makes the leaf kernel vectorizable — the innermost spatial dimension
// of every level is a contiguous span of V, and a cell's operands at
// (t-1, t-m) are contiguous spans in lower levels, so a row kernel
// (sep/simd.hpp) reads and writes plain arrays. LeafWindow binds the
// region geometry to a caller-owned scratch vector (the executor
// recycles one per execution context, keeping steady-state leaves
// allocation-free) and provides O(1) slot and row-pointer addressing.
// ---------------------------------------------------------------------

template <int D, class V = Word>
class LeafWindow {
 public:
  /// Bind region U's window to caller-owned scratch. `vals` is resized
  /// to hold every cell of U (never shrunk — reuse keeps capacity),
  /// `off` is rebuilt with U's per-level prefix offsets.
  LeafWindow(const geom::Region<D>& U, std::vector<V>& vals,
             std::vector<std::size_t>& off)
      : U_(&U), vals_(&vals), off_(&off) {
    const auto [tmin, tmax] = U.time_range();
    tmin_ = tmin;
    tmax_ = tmax;
    off.clear();
    std::size_t total = 0;
    for (std::int64_t t = tmin; t <= tmax; ++t) {
      off.push_back(total);
      total += level_size(U, t);
    }
    total_ = total;
    if (vals.size() < total) vals.resize(total);
  }

  std::int64_t tmin() const { return tmin_; }
  std::int64_t tmax() const { return tmax_; }

  /// Number of cells in the window (live scratch prefix).
  std::size_t size() const { return total_; }

  /// Inclusive x-range of dimension i at level t (the region's own).
  std::pair<std::int64_t, std::int64_t> x_range(int i, std::int64_t t) const {
    return U_->x_range(i, t);
  }

  /// Slot of point q: per-level prefix offset plus the row-major x
  /// offset — the position Region::for_each visits q at, so sequential
  /// execution writes slots 0, 1, 2, ...
  std::size_t slot(const geom::Point<D>& q) const {
    std::size_t idx = 0;
    for (int i = 0; i < D; ++i) {
      auto [a, b] = U_->x_range(i, q.t);
      idx = idx * static_cast<std::size_t>(b - a + 1) +
            static_cast<std::size_t>(q.x[i] - a);
    }
    return (*off_)[static_cast<std::size_t>(q.t - tmin_)] + idx;
  }

  V& operator[](std::size_t s) { return (*vals_)[s]; }
  const V& operator[](std::size_t s) const { return (*vals_)[s]; }

  /// d=1: pointer to the cell at (x=a, t) where [a, b] = x_range(0, t);
  /// the level's cells for x in [a, b] are ptr[0..b-a].
  V* row(std::int64_t t)
    requires(D == 1)
  {
    return vals_->data() + (*off_)[static_cast<std::size_t>(t - tmin_)];
  }

  /// d=2: pointer to the cell at (x0, x1=a1, t) where [a1, b1] =
  /// x_range(1, t); the row's cells for x1 in [a1, b1] are ptr[0..b1-a1].
  V* row(std::int64_t t, std::int64_t x0)
    requires(D == 2)
  {
    auto [a0, b0] = U_->x_range(0, t);
    auto [a1, b1] = U_->x_range(1, t);
    (void)b0;
    return vals_->data() +
           (*off_)[static_cast<std::size_t>(t - tmin_)] +
           static_cast<std::size_t>(x0 - a0) *
               static_cast<std::size_t>(b1 - a1 + 1);
  }

 private:
  static std::size_t level_size(const geom::Region<D>& U, std::int64_t t) {
    std::size_t n = 1;
    for (int i = 0; i < D; ++i) {
      auto [a, b] = U.x_range(i, t);
      if (a > b) return 0;
      n *= static_cast<std::size_t>(b - a + 1);
    }
    return n;
  }

  const geom::Region<D>* U_;
  std::vector<V>* vals_;
  std::vector<std::size_t>* off_;
  std::int64_t tmin_ = 0;
  std::int64_t tmax_ = -1;
  std::size_t total_ = 0;
};

// ---------------------------------------------------------------------
// Uniform staging accessors: the executor is templated on its staging
// store, and these overloads bridge the two supported families — each
// generic over the per-point value type V.
// ---------------------------------------------------------------------

/// The per-point value type of a staging store. StagingStore and
/// StagingShard expose `value_type` directly; the unordered_map form
/// needs the specialization (its own value_type is the pair).
template <class Store>
struct StoreValue {
  using type = typename Store::value_type;
};

template <int D, class V>
struct StoreValue<std::unordered_map<geom::Point<D>, V, geom::PointHash<D>>> {
  using type = V;
};

template <class Store>
using store_value_t = typename StoreValue<Store>::type;

template <int D, class V>
inline const V* store_find(const BasicValueMap<D, V>& m,
                           const geom::Point<D>& q) {
  auto it = m.find(q);
  return it == m.end() ? nullptr : &it->second;
}

template <int D, class V>
inline const V* store_find(const StagingStore<D, V>& s,
                           const geom::Point<D>& q) {
  return s.find(q);
}

/// Insert q -> v; returns whether q was newly added (both stores keep
/// the first value on a duplicate insert attempt via executor paths —
/// every dag vertex is produced exactly once, so duplicates never
/// carry a different value).
template <int D, class V>
inline bool store_insert(BasicValueMap<D, V>& m, const geom::Point<D>& q,
                         const V& v) {
  return m.emplace(q, v).second;
}

template <int D, class V>
inline bool store_insert(StagingStore<D, V>& s, const geom::Point<D>& q,
                         const V& v) {
  return s.insert(q, v);
}

/// Insert n contiguous values along the innermost dimension starting
/// at q; returns how many were newly added. Stores without dense rows
/// fall back to per-cell insert — same values, same count.
template <class Store, int D, class V>
inline std::int64_t store_insert_span(Store& s, geom::Point<D> q,
                                      const V* src, std::size_t n) {
  std::int64_t added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    added += store_insert(s, q, src[i]);
    ++q.x[D - 1];
  }
  return added;
}

template <int D, class V>
inline std::int64_t store_insert_span(StagingStore<D, V>& s,
                                      const geom::Point<D>& q, const V* src,
                                      std::size_t n) {
  return s.insert_span(q, src, n);
}

/// Erase q; returns whether a value was actually removed.
template <int D, class V>
inline bool store_erase(BasicValueMap<D, V>& m, const geom::Point<D>& q) {
  return m.erase(q) != 0;
}

template <int D, class V>
inline bool store_erase(StagingStore<D, V>& s, const geom::Point<D>& q) {
  return s.erase(q);
}

/// Pointer to n contiguous live values along the innermost dimension
/// starting at q, or nullptr when the store cannot serve the span as
/// one dense row (absent cells, or a store without dense slabs). The
/// SIMD leaf path tries this before staging a self-operand row cell
/// by cell.
template <class Store, int D>
inline const store_value_t<Store>* store_row_span(const Store&,
                                                  const geom::Point<D>&,
                                                  std::size_t) {
  return nullptr;
}

template <int D, class V>
inline const V* store_row_span(const StagingStore<D, V>& s,
                               const geom::Point<D>& q, std::size_t n) {
  return s.row_span(q, n);
}

/// Pre-allocate the slab of time level t, where the store has slabs.
template <int D, class V>
inline void store_touch_level(BasicValueMap<D, V>&, std::int64_t) {}

template <int D, class V>
inline void store_touch_level(StagingStore<D, V>& s, std::int64_t t) {
  s.touch_level(t);
}

/// Visit every live (point, value) pair. Order is the store's own
/// (unspecified for ValueMap); callers needing determinism must not
/// depend on it.
template <int D, class V, class F>
inline void store_for_each(const BasicValueMap<D, V>& m, F&& visit) {
  for (const auto& [p, v] : m) visit(p, v);
}

template <int D, class V, class F>
inline void store_for_each(const StagingStore<D, V>& s, F&& visit) {
  s.for_each(visit);
}

/// Slab allocations of a store, when it tracks them (0 for ValueMap —
/// the hash map's internal rehashes are exactly what it cannot see).
template <int D, class V>
inline std::size_t store_level_allocs(const BasicValueMap<D, V>&) {
  return 0;
}

template <int D, class V>
inline std::size_t store_level_allocs(const StagingStore<D, V>& s) {
  return s.level_allocs();
}

// ---------------------------------------------------------------------
// StagingShard: a private overlay a forked subtree of the executor
// writes into while sibling subtrees run concurrently.
//
// Reads fall through: local shard -> enclosing shards (nested forks)
// -> the base store, so a forked child sees everything staged before
// its group started (its preboundary) without synchronization. Writes
// and erasures are purely local — sound because a subtree only ever
// erases values it produced itself (an inner node's erasure targets
// its children's out-sets, all produced within the node; see
// sep/executor.hpp). After join, merge_into() folds the shard into the
// enclosing store *in canonical child order*, reproducing the serial
// store state bit for bit.
//
// The shard also records which time levels it inserted into (even if
// every value there was erased again) so merge_into can pre-touch the
// matching slabs of a dense base: StagingStore::level_allocs() then
// counts exactly the slabs a serial execution would have allocated.
//
// `Base` is the root store type (ValueMap or StagingStore); a shard
// over a shard shares the same Base, so template nesting is bounded.
// ---------------------------------------------------------------------

namespace detail {

template <int D, class V>
inline BasicValueMap<D, V> shard_local(const BasicValueMap<D, V>&) {
  return BasicValueMap<D, V>{};
}

template <int D, class V>
inline void shard_retire(BasicValueMap<D, V>&&) {}

/// Per-thread cache of retired shard-local dense stores, so the Nth
/// fork on a thread reuses the (N-1)th fork's slabs instead of
/// re-materializing them. The constructor primes the arena's thread
/// cache first: the pool's destructor releases slabs, and priming
/// guarantees the cache it releases into dies later.
template <int D, class V>
struct ShardStorePool {
  static constexpr std::size_t kCap = 16;

  ShardStorePool() { engine::Arena::instance().prime_thread(); }

  std::vector<StagingStore<D, V>> stores;
};

template <int D, class V>
inline ShardStorePool<D, V>& shard_store_pool() {
  thread_local ShardStorePool<D, V> pool;
  return pool;
}

template <int D, class V>
inline StagingStore<D, V> shard_local(const StagingStore<D, V>& s) {
  if (engine::arena_enabled()) {
    auto& pool = shard_store_pool<D, V>().stores;
    while (!pool.empty()) {
      StagingStore<D, V> cand = std::move(pool.back());
      pool.pop_back();
      if (cand.try_rebind(s.stencil())) {
        engine::Arena::instance().note_scratch(false);
        return cand;
      }
      // Geometry mismatch: drop it (its slabs return to the arena).
    }
  }
  engine::Arena::instance().note_scratch(true);
  return StagingStore<D, V>(s.stencil());
}

template <int D, class V>
inline void shard_retire(StagingStore<D, V>&& s) {
  if (!engine::arena_enabled()) return;
  auto& pool = shard_store_pool<D, V>().stores;
  if (pool.size() >= ShardStorePool<D, V>::kCap) return;
  s.reset_for_reuse();
  pool.push_back(std::move(s));
}

}  // namespace detail

/// Tag selecting StagingShard's overlay constructors. Without it the
/// overlay-on-parent form would have the signature of a copy
/// constructor, and an accidental copy (auto s2 = s1; a reallocating
/// vector of shards) would silently become an overlay whose parent_
/// dangles once the copied-from shard dies. Shards are non-copyable;
/// construct them as StagingShard(overlay, enclosing_store).
struct overlay_t {
  explicit overlay_t() = default;
};
inline constexpr overlay_t overlay{};

template <int D, class Base>
class StagingShard {
 public:
  using base_type = Base;
  using value_type = store_value_t<Base>;

  /// Overlay directly on the base store.
  StagingShard(overlay_t, const Base& base)
      : base_(&base), parent_(nullptr), local_(detail::shard_local<D>(base)) {}

  /// Overlay on another shard (a fork within a fork).
  StagingShard(overlay_t, const StagingShard& parent)
      : base_(parent.base_),
        parent_(&parent),
        local_(detail::shard_local<D>(*parent.base_)) {}

  StagingShard(const StagingShard&) = delete;
  StagingShard& operator=(const StagingShard&) = delete;

  /// Hand the local store back to the calling thread's shard-store
  /// pool (dense stores, arena on): the next fork here reuses its
  /// slabs with a bumped epoch instead of materializing cold ones.
  ~StagingShard() { detail::shard_retire(std::move(local_)); }

  const value_type* find(const geom::Point<D>& q) const {
    if (const value_type* v = store_find(local_, q)) return v;
    for (const StagingShard* s = parent_; s != nullptr; s = s->parent_)
      if (const value_type* v = store_find(s->local_, q)) return v;
    return store_find(*base_, q);
  }

  bool insert(const geom::Point<D>& q, const value_type& v) {
    note_level(q.t);
    return store_insert(local_, q, v);
  }

  bool erase(const geom::Point<D>& q) { return store_erase(local_, q); }

  /// Live values written locally (not the fall-through total): the
  /// executor tracks staging peaks via relative deltas, not sizes.
  std::size_t size() const { return local_.size(); }

  void note_level(std::int64_t t) {
    auto it = std::lower_bound(touched_.begin(), touched_.end(), t);
    if (it == touched_.end() || *it != t) touched_.insert(it, t);
  }

  /// Fold this shard into the enclosing store (the base store, or the
  /// enclosing shard for nested forks): pre-touch every level the
  /// shard ever wrote, then insert the surviving values.
  template <class Dst>
  void merge_into(Dst& dst) const {
    for (std::int64_t t : touched_) store_touch_level(dst, t);
    store_for_each<D>(local_,
                      [&dst](const geom::Point<D>& p, const value_type& v) {
                        store_insert(dst, p, v);
                      });
  }

 private:
  const Base* base_;
  const StagingShard* parent_;
  Base local_;
  std::vector<std::int64_t> touched_;  // sorted distinct inserted levels
};

/// Accessor overloads so the executor can treat a shard as a store.
template <int D, class Base>
inline const store_value_t<Base>* store_find(const StagingShard<D, Base>& s,
                                             const geom::Point<D>& q) {
  return s.find(q);
}

template <int D, class Base>
inline bool store_insert(StagingShard<D, Base>& s, const geom::Point<D>& q,
                         const store_value_t<Base>& v) {
  return s.insert(q, v);
}

template <int D, class Base>
inline bool store_erase(StagingShard<D, Base>& s, const geom::Point<D>& q) {
  return s.erase(q);
}

template <int D, class Base>
inline void store_touch_level(StagingShard<D, Base>& s, std::int64_t t) {
  s.note_level(t);
}

template <int D, class Base>
inline std::size_t store_level_allocs(const StagingShard<D, Base>&) {
  return 0;  // shard slabs are scratch; only base-store slabs count
}

/// Maps a store type to the shard type that overlays it: shards of a
/// base store and shards of such shards are the *same* type, so the
/// executor's template recursion over fork depth is bounded.
template <int D, class Store>
struct ShardOf {
  using type = StagingShard<D, Store>;
};

template <int D, class Base>
struct ShardOf<D, StagingShard<D, Base>> {
  using type = StagingShard<D, Base>;
};

// ---------------------------------------------------------------------
// Parallel grain: process-wide default for
// ExecutorConfig::parallel_grain — the monotone width above which the
// executor forks sibling child regions into the ambient
// engine::TaskScheduler (0 disables forking). Defaults from the
// BSMP_PARALLEL_GRAIN environment variable at process start (unset,
// empty, or unparsable means 0); settable per run, and per executor
// via ExecutorConfig::parallel_grain. Forked execution is bit-identical
// to serial execution by construction, so flipping this knob never
// changes an emitted byte — only wall clock and task metrics.
// ---------------------------------------------------------------------

/// Process-wide default for ExecutorConfig::parallel_grain.
std::int64_t default_parallel_grain();

/// Override the process-wide default (tests; benches).
void set_default_parallel_grain(std::int64_t grain);

// ---------------------------------------------------------------------
// Simulator fork grains, same contract and bit-identity guarantee as
// the executor grain above (0 disables; env default at process start):
//   * reloc grain (BSMP_RELOC_GRAIN): region width above which
//     regime-1 relocation recursion forks independent equal-uppers
//     child runs (sim::MultiprocConfig::reloc_grain);
//   * wave grain (BSMP_WAVE_GRAIN): minimum antichain size (subtiles
//     in a regime-2 wavefront, machine tiles in a top-level wave) at
//     which the wave forks (sim::MultiprocConfig::wave_grain; values
//     below 2 behave as 2 since a 1-wide wave has nothing to fork).
// ---------------------------------------------------------------------

/// Process-wide default for sim::MultiprocConfig::reloc_grain.
std::int64_t default_reloc_grain();

/// Override the process-wide default (tests; benches).
void set_default_reloc_grain(std::int64_t grain);

/// Process-wide default for sim::MultiprocConfig::wave_grain.
std::int64_t default_wave_grain();

/// Override the process-wide default (tests; benches).
void set_default_wave_grain(std::int64_t grain);

// ---------------------------------------------------------------------
// Validation mode: when on, the executor re-materializes the
// preboundary / out-set vectors at every recursion level and asserts
// the topological-partition property (the pre-flat-staging behavior),
// and cross-checks every count against its materialized size. Defaults
// from the BSMP_VALIDATE environment variable at process start;
// settable per run, and per executor via ExecutorConfig::validate.
// ---------------------------------------------------------------------

/// Process-wide default for ExecutorConfig::validate.
bool validation_mode();

/// Override the process-wide default (tests; conformance suite).
void set_validation_mode(bool on);

}  // namespace bsmp::sep
