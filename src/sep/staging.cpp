#include "sep/staging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bsmp::sep {

namespace {

std::atomic<bool>& validation_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("BSMP_VALIDATE");
    return env != nullptr && std::strcmp(env, "0") != 0;
  }();
  return flag;
}

std::int64_t parse_grain_env(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::int64_t{0};
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || v < 0) return std::int64_t{0};
  return static_cast<std::int64_t>(v);
}

std::atomic<std::int64_t>& grain_flag() {
  static std::atomic<std::int64_t> flag = parse_grain_env("BSMP_PARALLEL_GRAIN");
  return flag;
}

std::atomic<std::int64_t>& reloc_grain_flag() {
  static std::atomic<std::int64_t> flag = parse_grain_env("BSMP_RELOC_GRAIN");
  return flag;
}

std::atomic<std::int64_t>& wave_grain_flag() {
  static std::atomic<std::int64_t> flag = parse_grain_env("BSMP_WAVE_GRAIN");
  return flag;
}

}  // namespace

std::int64_t default_parallel_grain() {
  return grain_flag().load(std::memory_order_relaxed);
}

void set_default_parallel_grain(std::int64_t grain) {
  grain_flag().store(grain < 0 ? 0 : grain, std::memory_order_relaxed);
}

std::int64_t default_reloc_grain() {
  return reloc_grain_flag().load(std::memory_order_relaxed);
}

void set_default_reloc_grain(std::int64_t grain) {
  reloc_grain_flag().store(grain < 0 ? 0 : grain, std::memory_order_relaxed);
}

std::int64_t default_wave_grain() {
  return wave_grain_flag().load(std::memory_order_relaxed);
}

void set_default_wave_grain(std::int64_t grain) {
  wave_grain_flag().store(grain < 0 ? 0 : grain, std::memory_order_relaxed);
}

bool validation_mode() {
  return validation_flag().load(std::memory_order_relaxed);
}

void set_validation_mode(bool on) {
  validation_flag().store(on, std::memory_order_relaxed);
}

}  // namespace bsmp::sep
