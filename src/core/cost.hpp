// Virtual-time cost accounting.
//
// All bsmp simulators charge *virtual time* in the paper's units: one
// unit = the execution time of a RAM instruction on the lowest address
// (Section 2). A CostLedger accumulates charged time split by mechanism
// so that experiments can separate the parallelism slowdown (n/p) from
// the locality slowdown (the paper's A term).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/expect.hpp"

namespace bsmp::core {

/// Virtual time. Fractional values arise from the H-RAM access function
/// f(x) = (x/m)^(1/d); totals of interest are far below 2^53 so double
/// keeps them exact enough for ratio reporting.
using Cost = double;

/// Mechanism that incurred a charge. The split mirrors the paper's
/// accounting in Propositions 1-2 and Section 4.2.
enum class CostKind : unsigned {
  kCompute = 0,    ///< unit-time operation at a dag vertex
  kLocalAccess,    ///< H-RAM read/write charged f(address)
  kBlockMove,      ///< data relocation between memory regions (Prop. 2 steps 1/3)
  kComm,           ///< interprocessor transfer, charged (words x distance)
  kRearrange,      ///< one-time memory rearrangement pi2*pi1 (Sec. 4.2 preprocessing)
  kKindCount
};

/// Name of a cost kind, for tables and reports.
const char* to_string(CostKind k);

/// Accumulator of charged virtual time and event counts per CostKind.
class CostLedger {
 public:
  static constexpr std::size_t kNumKinds =
      static_cast<std::size_t>(CostKind::kKindCount);

  CostLedger() { reset(); }

  /// Charge `cost` units of virtual time under `kind`, covering `events`
  /// primitive events (default one).
  void charge(CostKind kind, Cost cost, std::uint64_t events = 1);

  /// Inline accumulation handle for hot loops. Each add_cost() performs
  /// the same `slot += cost` addition a charge() call would, in the same
  /// order — so streamed totals are bit-identical to per-call totals
  /// (floating-point addition is order-sensitive; this preserves the
  /// order) — but without the out-of-line call and precondition checks
  /// per event. Event counts are integers, so they may be accumulated
  /// locally and added once via add_events(). The handle is invalidated
  /// by destroying the ledger.
  class Stream {
   public:
    void add_cost(Cost cost) { *cost_ += cost; }
    void add_events(std::uint64_t events) { *events_ += events; }

   private:
    friend class CostLedger;
    Stream(Cost* cost, std::uint64_t* events)
        : cost_(cost), events_(events) {}
    Cost* cost_;
    std::uint64_t* events_;
  };

  /// Accumulation handle for one kind (see Stream).
  Stream stream(CostKind kind) {
    BSMP_REQUIRE(kind != CostKind::kKindCount);
    auto i = static_cast<std::size_t>(kind);
    return Stream(&cost_[i], &events_[i]);
  }

  /// Total charged virtual time across all kinds.
  Cost total() const;

  /// Charged virtual time for one kind.
  Cost cost(CostKind kind) const;

  /// Number of primitive events recorded for one kind.
  std::uint64_t events(CostKind kind) const;

  /// Merge another ledger into this one (used to fold per-processor or
  /// per-phase ledgers into a run total).
  CostLedger& operator+=(const CostLedger& other);

  void reset();

  /// Multi-line human-readable breakdown.
  std::string report() const;

 private:
  std::array<Cost, kNumKinds> cost_{};
  std::array<std::uint64_t, kNumKinds> events_{};
};

/// Order-preserving charge recorder for deterministic parallel merges.
///
/// Floating-point addition is order-sensitive, so a forked subtree must
/// not sum its charges into a private CostLedger and merge totals — the
/// merged double would differ from the serial one in the last bits. A
/// ChargeLog instead records the *sequence* of cost addends per kind
/// (events are integers and commute, so only their totals are kept).
/// replay_into() then performs the recorded additions, in order, on the
/// target — so replaying each forked child's log in canonical child
/// order reproduces the serial execution's addition sequence exactly,
/// and the charged totals are bit-identical at any thread count.
///
/// The API mirrors the CostLedger surface the executor charges through
/// (charge() and stream()), so code can be templated over either.
class ChargeLog {
 public:
  static constexpr std::size_t kNumKinds = CostLedger::kNumKinds;

  /// Record one addition of `cost` under `kind`, covering `events`.
  void charge(CostKind kind, Cost cost, std::uint64_t events = 1) {
    BSMP_REQUIRE(kind != CostKind::kKindCount);
    auto i = static_cast<std::size_t>(kind);
    addends_[i].push_back(cost);
    events_[i] += events;
  }

  /// Inline recording handle (see CostLedger::Stream): each add_cost()
  /// appends one addend, preserving the per-addition granularity the
  /// replay needs. Invalidated by destroying or clearing the log.
  class Stream {
   public:
    void add_cost(Cost cost) { addends_->push_back(cost); }
    void add_events(std::uint64_t events) { *events_ += events; }

   private:
    friend class ChargeLog;
    Stream(std::vector<Cost>* addends, std::uint64_t* events)
        : addends_(addends), events_(events) {}
    std::vector<Cost>* addends_;
    std::uint64_t* events_;
  };

  /// Recording handle for one kind (see Stream).
  Stream stream(CostKind kind) {
    BSMP_REQUIRE(kind != CostKind::kKindCount);
    auto i = static_cast<std::size_t>(kind);
    return Stream(&addends_[i], &events_[i]);
  }

  /// Perform the recorded additions, in recorded order, on `ledger` —
  /// bit-identical to having charged `ledger` directly.
  void replay_into(CostLedger& ledger) const;

  /// Append the recorded additions to another log (nested forks merge
  /// child logs into their parent's before the parent itself replays).
  void replay_into(ChargeLog& log) const;

  /// Total of the recorded addends for one kind (sum in recorded
  /// order — the same value replaying onto a zero ledger would yield).
  Cost cost(CostKind kind) const;

  /// Recorded events for one kind.
  std::uint64_t events(CostKind kind) const;

  void clear();

 private:
  std::array<std::vector<Cost>, kNumKinds> addends_{};
  std::array<std::uint64_t, kNumKinds> events_{};
};

}  // namespace bsmp::core
