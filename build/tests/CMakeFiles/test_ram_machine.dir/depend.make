# Empty dependencies file for test_ram_machine.
# This may be replaced when dependencies are built.
