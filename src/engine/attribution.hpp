// engine::attribution — per-mechanism self-time fold over a trace
// span snapshot (the `attribution` block of bsmp-metrics-v3).
//
// The trace recorder answers "where did the time go" span by span;
// this fold reduces a snapshot to two numbers a regression gate can
// act on, plus a small additive decomposition in between:
//
//   * *self-time* per mechanism: each complete span's duration minus
//     the durations of the spans nested directly inside it on the same
//     thread, classified into compute / relocation / staging /
//     steal-idle / join-park by (category, span name). Self-times are
//     additive — they sum to total busy wall-clock across threads
//     with no double counting, so `bsmp-stat diff` can compare slices
//     independently;
//   * the *critical path*: the maximum-total-duration chain of
//     non-overlapping spans (classic weighted interval scheduling
//     over all threads). A parallelism regression moves this number
//     even when total self-time is unchanged;
//   * a phase x mechanism matrix: every self-time slice is also keyed
//     by the innermost enclosing engine::ForkPhase ("machine-tile",
//     "regime1-relocate", ...; sep-region/sep-leaf spans imply
//     kExecutorLeaf), connecting wall-clock attribution to the same
//     phase axis as the metrics `tasks.phases` counters.
//
// The fold is a pure function of the span multiset: timestamps decide
// nesting and the critical path, but classification depends only on
// (cat, name), so the *keys* of the result are deterministic whenever
// the span set is (pinned by the attribution determinism test across
// pool sizes and fork grains). A fold from a snapshot with ring-buffer
// drops is marked untrusted — the timeline is truncated and the
// numbers under-count; consumers (bsmp-stat) must not gate on it.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "engine/task.hpp"
#include "engine/trace.hpp"

namespace bsmp::engine {

/// Wall-clock mechanism buckets of the metrics-v3 attribution block.
/// kOther catches spans no rule claims (currently none) so the fold
/// stays additive if instrumentation grows faster than this table.
enum class Mechanism : int {
  kCompute = 0,  ///< sep recursion, leaf kernels, sweeps, sim wavefronts
  kRelocation,   ///< regime-1 relocation subtree spans
  kStaging,      ///< staging-store maintenance (wavefront pruning)
  kStealIdle,    ///< task-layer overhead: task-run shells, steals
  kJoinPark,     ///< threads parked waiting on a join
  kOther,        ///< unclassified (additivity backstop)
  kCount,
};
inline constexpr std::size_t kNumMechanisms =
    static_cast<std::size_t>(Mechanism::kCount);

/// Stable mechanism name ("compute", "relocation", ...): the keys of
/// the metrics-v3 `attribution.mechanisms` object.
const char* mechanism_name(Mechanism m);

/// Classification rule, exposed for the attribution tests:
///   kSepRegion -> compute            kStaging -> staging
///   kSweepPoint -> compute           kSim "regime1-relocate" -> relocation
///   other kSim -> compute            kTask "join-park" -> join-park
///   kTask "shard-merge" -> compute   other kTask -> steal-idle
Mechanism classify_mechanism(trace::Cat cat, std::string_view name);

/// One mechanism's additive slice of the fold.
struct MechanismSlice {
  std::uint64_t self_ns = 0;  ///< summed span self-time
  std::uint64_t spans = 0;    ///< complete spans classified here
};

/// The folded attribution of one measurement pass.
struct Attribution {
  std::uint64_t spans = 0;    ///< complete ('X') spans folded
  std::uint64_t dropped = 0;  ///< recorder drop count at fold time
  /// Sum of every span's self-time == sum over mechanisms. Total busy
  /// wall-clock across threads (parked join time included, as its own
  /// mechanism).
  std::uint64_t total_self_ns = 0;
  /// Maximum-total-duration chain of non-overlapping spans.
  std::uint64_t critical_path_ns = 0;
  std::array<MechanismSlice, kNumMechanisms> mechanism{};
  /// Self-time split by innermost enclosing fork phase. Row kNone
  /// holds spans outside any phase-mapped ancestor.
  std::array<std::array<std::uint64_t, kNumMechanisms>, kNumForkPhases>
      phase{};

  /// Attribution from a drop-free snapshot. Untrusted folds
  /// under-count (the timeline was truncated); bsmp-stat skips them
  /// instead of gating.
  bool trusted() const { return dropped == 0; }
  bool empty() const { return spans == 0; }
};

/// Fold a span snapshot. `dropped` is the recorder's drop counter for
/// the window the snapshot covers; it only sets the trust bit.
Attribution fold_attribution(const std::vector<trace::SpanRec>& spans,
                             std::uint64_t dropped);

/// Fold the live recorder's spans that started at or after `mark_ns`
/// (a value from trace::mark()): the per-pass hook bench_common uses.
/// Empty (and trusted) when tracing is compiled out or disabled.
Attribution fold_attribution_since(std::uint64_t mark_ns);

}  // namespace bsmp::engine
