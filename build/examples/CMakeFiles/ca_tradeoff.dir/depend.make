# Empty dependencies file for ca_tradeoff.
# This may be replaced when dependencies are built.
