// Scheme advisor and constant calibration.
//
// The paper's bounds tell which simulation scheme wins asymptotically;
// a user of the library also wants (a) the recommended scheme for a
// concrete (d, n, m, p) and (b) predictions that account for the
// implementation constants. The advisor compares the closed-form
// bounds; the calibrator fits per-mechanism constants from a few
// measurements (via analytic::fit_least_squares) and predicts measured
// slowdowns at other sizes.
//
// Calibration is the *model* only: it never runs a simulator itself.
// The canonical way to feed it is tables::run_calibration
// (src/tables/calibration.hpp), which measures the training points
// through engine::Sweep with PlanCache-memoized reference runs — the
// same deterministic harness that produces the E-tables — so the
// measured-constant table is byte-identical at any thread count.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analytic/tradeoff.hpp"

namespace bsmp::analytic {

enum class Scheme { kNaive, kDcUniproc, kMultiproc };
const char* to_string(Scheme s);

struct Recommendation {
  Scheme scheme;
  double predicted_slowdown;  ///< the winning closed-form bound
  /// Strip width for the Theorem-4 schedule; set only when `scheme` is
  /// kMultiproc at d=1. In particular it stays 0 when the
  /// recommendation is kNaive — including the whole of Range 4, where
  /// analytic::s_star() itself would return n/p. That is not a
  /// contradiction: s* = n/p means one strip per processor, and the
  /// two-regime scheme with one strip per processor *is* the naive
  /// simulation, so there is no separate multiproc schedule to
  /// parameterize. See recommend().
  double s_star = 0;
  Range range = Range::k1;
};

/// Recommend a simulation scheme for simulating Md(n,n,m) on Md(n,p,m)
/// from the constant-free bounds: naive (Prop. 1) vs the Theorem-1
/// scheme.
///
/// The m >= n^(1/d) case (Range 4) coincides with naive: there the
/// locality factor A is (n/p)^(1/d), Theorem 1's bound equals
/// Proposition 1's, and the optimizing strip width is the full
/// per-processor strip s* = n/p — the "scheme" is to hand each
/// processor one contiguous strip and replay it, which is exactly the
/// naive simulation. recommend() therefore reports kNaive for Range 4
/// (with Recommendation::s_star left 0; see its comment). The
/// coincidence already holds at the boundary m = n^(1/d), the top of
/// Range 3, where range-3's s* = m/p equals n/p; the boundary point
/// m = n at d=1 is pinned by a unit test (test_advisor_io).
Recommendation recommend(int d, double n, double m, double p);

/// The shared predictor basis of Calibration and
/// MechanismCalibration: the model's per-mechanism terms
///   {(n/p) * A_relocation, (n/p) * A_execution, (n/p) * A_communication}
/// at s = feasible_s_star(n,m,p). These are what the metrics-v3
/// calibration_points record as term_reloc / term_exec / term_comm.
std::array<double, 3> calibration_terms(double n, double m, double p);

/// Calibration: given measured slowdowns at a few (n, m, p) points,
/// fit the constants of the model
///   slowdown ~ (n/p) * (c_r * t_reloc + c_e * t_exec + c_c * t_comm)
/// evaluated at s = feasible_s_star(n,m,p), and predict elsewhere.
class Calibration {
 public:
  /// Add one training point: the slowdown measured when simulating
  /// Md(n,n,m) on Md(n,p,m) with the Theorem-4 scheme at strip width
  /// feasible_s_star(n,m,p). Invalidates a previous fit (fitted()
  /// returns false until the next fit()).
  /// \pre slowdown > 0.
  void add_measurement(double n, double m, double p, double slowdown);

  /// Least-squares fit of the three mechanism constants with relative
  /// error weighting (every training point carries equal weight
  /// regardless of magnitude; constants are clamped non-negative by
  /// fit_least_squares).
  /// \pre at least 3 measurements have been added.
  void fit();

  /// Whether fit() has run on the current measurement set.
  bool fitted() const { return fitted_; }
  /// Fitted constant of the Regime-1 relocation mechanism.
  /// \pre fitted().
  double c_relocation() const { return c_[0]; }
  /// Fitted constant of the subtile execution mechanism. \pre fitted().
  double c_execution() const { return c_[1]; }
  /// Fitted constant of the cooperating-mode communication mechanism.
  /// \pre fitted().
  double c_communication() const { return c_[2]; }

  /// Predicted measured slowdown at (n, m, p): the fitted constants
  /// applied to the model terms at s = feasible_s_star(n,m,p).
  /// \pre fitted().
  double predict(double n, double m, double p) const;

  /// Mean relative error of the fit on the training points.
  /// \pre fitted().
  double training_error() const;

  /// Number of training points added so far.
  std::size_t num_measurements() const { return y_.size(); }

 private:
  static std::array<double, 3> terms(double n, double m, double p);

  std::vector<std::array<double, 3>> x_;
  std::vector<double> y_;
  std::array<double, 3> c_{};
  bool fitted_ = false;
};

/// Per-mechanism, per-range calibration: the alternative fit the
/// metrics-v3 attribution data enables.
///
/// Calibration above solves one coupled 3-constant least-squares
/// problem against *total* slowdowns; when one mechanism dominates the
/// grid (execution does), the solver happily zeroes the other two
/// constants and the model loses all relocation/communication
/// sensitivity — the committed aggregate fit has c_reloc = c_comm = 0
/// and under-predicts the n=256 holdout by ~2x. This class instead
/// takes each training point's *measured per-mechanism decomposition*
/// (slow_k = slowdown * ledger cost_k / sum of mechanism costs, from
/// the simulator's virtual-time ledger — deterministic, not wall
/// clock) and fits each constant against its own mechanism's share:
/// three decoupled one-parameter regressions through the origin in
/// absolute units,
///   c_k = sum(T_k * slow_k) / sum(T_k^2)
/// so c_k > 0 whenever mechanism k charged anything anywhere. This is
/// deliberately NOT the 1/y relative weighting the aggregate
/// Calibration uses: mechanism shares span orders of magnitude across
/// a sweep, and the large-n regime these constants must extrapolate
/// into is exactly what relative weighting votes down (measured on the
/// S*-ablation sweep, the n=256 holdout ratio is ~0.76 absolute vs
/// ~0.33 relative, against ~0.52 for the aggregate fit).
///
/// Constants are additionally split by analytic tradeoff range
/// (classify_range at d=1): the A-terms change shape across ranges,
/// and a constant fitted in range 2 extrapolates poorly into range 3.
/// Ranges with no training points fall back to the pooled (all-point)
/// constants.
class MechanismCalibration {
 public:
  /// Add one training point: total measured slowdown decomposed into
  /// per-mechanism shares (slow_reloc + slow_exec + slow_comm ==
  /// slowdown, up to the ledger's excluded preprocess cost).
  /// \pre slowdown > 0; shares >= 0.
  void add_measurement(double n, double m, double p, double slowdown,
                       double slow_reloc, double slow_exec,
                       double slow_comm);

  /// Fit pooled and per-range constants. \pre at least 1 measurement.
  void fit();

  bool fitted() const { return fitted_; }

  /// Fitted constants of the range `r` (pooled fallback when the
  /// range had no training points). \pre fitted().
  double c_relocation(Range r) const { return constants(r)[0]; }
  double c_execution(Range r) const { return constants(r)[1]; }
  double c_communication(Range r) const { return constants(r)[2]; }
  /// Pooled (all-point) constants. \pre fitted().
  double c_relocation() const { return pooled_[0]; }
  double c_execution() const { return pooled_[1]; }
  double c_communication() const { return pooled_[2]; }

  /// Predicted total slowdown at (n, m, p): the point's range's
  /// constants applied to calibration_terms(n, m, p). \pre fitted().
  double predict(double n, double m, double p) const;

  /// Mean relative error of the total-slowdown prediction on the
  /// training points. \pre fitted().
  double training_error() const;

  std::size_t num_measurements() const { return y_.size(); }

 private:
  const std::array<double, 3>& constants(Range r) const;

  struct Sample {
    std::array<double, 3> t;      ///< calibration_terms at the point
    std::array<double, 3> share;  ///< measured per-mechanism slowdown
    double y;                     ///< total slowdown
    Range range;
    double n, m, p;
  };
  std::vector<Sample> samples_;
  std::vector<double> y_;  ///< parallel totals (num_measurements)
  std::array<double, 3> pooled_{};
  std::array<std::array<double, 3>, 4> per_range_{};
  std::array<bool, 4> has_range_{};
  bool fitted_ = false;
};

}  // namespace bsmp::analytic
