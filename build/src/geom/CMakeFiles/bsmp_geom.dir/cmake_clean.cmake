file(REMOVE_RECURSE
  "CMakeFiles/bsmp_geom.dir/figures.cpp.o"
  "CMakeFiles/bsmp_geom.dir/figures.cpp.o.d"
  "CMakeFiles/bsmp_geom.dir/render.cpp.o"
  "CMakeFiles/bsmp_geom.dir/render.cpp.o.d"
  "libbsmp_geom.a"
  "libbsmp_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
