// Broad equivalence sweeps: every simulator against the reference run
// across parameter matrices in d = 1, 2, 3, including randomized
// multiprocessor configurations. The parameter matrices run through
// engine::sweep_map on a multi-thread Pool — the same harness the
// bench emitters use — with results checked on the main thread
// (gtest assertions are not thread-safe, so sweep points only report).
#include <gtest/gtest.h>

#include <sstream>

#include "engine/pool.hpp"
#include "engine/sweep.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

machine::MachineSpec spec(int d, int64_t n, int64_t p, int64_t m) {
  return machine::MachineSpec{d, n, p, m};
}

engine::Pool& shared_pool() {
  static engine::Pool pool(std::max(4, engine::Pool::hardware_threads()));
  return pool;
}

/// What one sweep point reports back to the main thread: an empty
/// string on success, the failure description otherwise.
using Verdict = std::string;

}  // namespace

// ---------------------------------------------------------------------
// d = 2 sweeps.
// ---------------------------------------------------------------------

struct Sweep2D {
  int64_t side, T, m, p, s;
};

TEST(Mesh2DSweep, AllSchemesMatchReference) {
  std::vector<Sweep2D> points{
      {4, 4, 1, 1, 2},  {4, 9, 1, 4, 2},  {4, 6, 2, 4, 2},  {6, 6, 1, 1, 3},
      {6, 13, 3, 1, 2}, {8, 8, 1, 4, 4},  {8, 8, 2, 16, 2}, {8, 21, 4, 4, 3},
      {9, 9, 1, 9, 3},  {12, 7, 2, 4, 5}};
  auto verdicts = engine::sweep_map<Verdict>(
      shared_pool(), points, [](const Sweep2D& pt, engine::SweepContext&) {
        auto [side, T, m, p, s] = pt;
        int64_t n = side * side;
        auto g = workload::make_mix_guest<2>(
            {side, side}, T, m,
            static_cast<std::uint64_t>(side * 100 + T * 10 + m + p));
        auto ref = sim::reference_run<2>(g);
        std::ostringstream err;
        auto nv = sim::simulate_naive<2>(g, spec(2, n, p, m));
        if (!sim::same_values<2>(nv.final_values, ref.final_values))
          err << "naive diverged; ";
        if (p == 1) {
          auto dc = sim::simulate_dc_uniproc<2>(g, spec(2, n, 1, m));
          if (!sim::same_values<2>(dc.final_values, ref.final_values))
            err << "dc diverged; ";
        }
        sim::MultiprocConfig cfg;
        cfg.s = s;
        auto mp = sim::simulate_multiproc<2>(g, spec(2, n, p, m), cfg);
        if (!sim::same_values<2>(mp.final_values, ref.final_values))
          err << "multiproc diverged; ";
        if (mp.vertices != n * T)
          err << "multiproc vertices " << mp.vertices << " != " << n * T;
        return err.str();
      });
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(verdicts[i], "") << "side=" << points[i].side
                               << " T=" << points[i].T << " m=" << points[i].m
                               << " p=" << points[i].p << " s=" << points[i].s;
}

// ---------------------------------------------------------------------
// d = 3 sweeps (the Section-6 conjecture machinery).
// ---------------------------------------------------------------------

struct Sweep3D {
  int64_t side, T, m;
};

TEST(Mesh3DSweep, DcAndNaiveMatchReference) {
  std::vector<Sweep3D> points{{2, 3, 1}, {2, 7, 2}, {3, 3, 1},
                              {3, 5, 3}, {4, 4, 1}, {4, 6, 2}};
  auto verdicts = engine::sweep_map<Verdict>(
      shared_pool(), points, [](const Sweep3D& pt, engine::SweepContext&) {
        auto [side, T, m] = pt;
        int64_t n = side * side * side;
        auto g = workload::make_mix_guest<3>(
            {side, side, side}, T, m,
            static_cast<std::uint64_t>(side * 31 + T * 7 + m));
        auto ref = sim::reference_run<3>(g);
        std::ostringstream err;
        auto nv = sim::simulate_naive<3>(g, spec(3, n, 1, m));
        if (!sim::same_values<3>(nv.final_values, ref.final_values))
          err << "naive diverged; ";
        auto dc = sim::simulate_dc_uniproc<3>(g, spec(3, n, 1, m));
        if (!sim::same_values<3>(dc.final_values, ref.final_values))
          err << "dc diverged; ";
        if (dc.vertices != n * T)
          err << "dc vertices " << dc.vertices << " != " << n * T;
        return err.str();
      });
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(verdicts[i], "") << "side=" << points[i].side
                               << " T=" << points[i].T << " m=" << points[i].m;
}

// ---------------------------------------------------------------------
// Randomized multiprocessor fuzz (d = 1). Each sweep point draws its
// configuration from the engine's per-point RNG stream — pinned to
// (seed, point index), never to the executing thread — so the fuzz
// cases are identical at every pool size.
// ---------------------------------------------------------------------

TEST(MultiprocFuzz, RandomConfigsMatchReference) {
  std::vector<int> points(40);  // 10 seeds x 4 iterations, flattened
  for (std::size_t i = 0; i < points.size(); ++i)
    points[i] = static_cast<int>(i);
  engine::SweepOptions opt;
  opt.seed = 9173;
  auto verdicts = engine::sweep_map<Verdict>(
      shared_pool(), points,
      [](int, engine::SweepContext& ctx) {
        auto& rng = ctx.rng;
        int64_t n = 8 << rng.next_below(3);  // 8..32
        int64_t p = 1 << rng.next_below(3);  // 1..4
        while (p > n) p /= 2;
        int64_t m = 1 + static_cast<int64_t>(rng.next_below(5));
        int64_t T = 1 + static_cast<int64_t>(rng.next_below(40));
        int64_t s = 1 + static_cast<int64_t>(rng.next_below(4));
        while (s * p > n) s = std::max<int64_t>(1, s / 2);
        auto g = workload::make_mix_guest<1>({n}, T, m, rng.next());
        auto ref = sim::reference_run<1>(g);
        sim::MultiprocConfig cfg;
        cfg.s = s;
        auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
        std::ostringstream err;
        if (!sim::same_values<1>(res.final_values, ref.final_values))
          err << "diverged at n=" << n << " p=" << p << " m=" << m
              << " T=" << T << " s=" << s << "; ";
        if (res.vertices != n * T) err << "bad vertex count; ";
        if (!(res.time > 0.0)) err << "nonpositive time";
        return err.str();
      },
      opt);
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    EXPECT_EQ(verdicts[i], "") << "point " << i;
}

// ---------------------------------------------------------------------
// Randomized dc fuzz across tile/leaf (d = 1).
// ---------------------------------------------------------------------

TEST(DcFuzz, RandomTilingsMatchReference) {
  std::vector<int> points(40);
  for (std::size_t i = 0; i < points.size(); ++i)
    points[i] = static_cast<int>(i);
  engine::SweepOptions opt;
  opt.seed = 311;
  auto verdicts = engine::sweep_map<Verdict>(
      shared_pool(), points,
      [](int, engine::SweepContext& ctx) {
        auto& rng = ctx.rng;
        int64_t n = 5 + static_cast<int64_t>(rng.next_below(20));
        int64_t m = 1 + static_cast<int64_t>(rng.next_below(6));
        int64_t T = 1 + static_cast<int64_t>(rng.next_below(50));
        int64_t tile = 1 + static_cast<int64_t>(
                               rng.next_below(static_cast<std::uint64_t>(n)));
        int64_t leaf = 1 + static_cast<int64_t>(rng.next_below(
                               static_cast<std::uint64_t>(tile)));
        auto g = workload::make_mix_guest<1>({n}, T, m, rng.next());
        auto ref = sim::reference_run<1>(g);
        sim::DcConfig cfg;
        cfg.tile_width = tile;
        cfg.leaf_width = leaf;
        auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m), cfg);
        std::ostringstream err;
        if (!sim::same_values<1>(res.final_values, ref.final_values))
          err << "diverged at n=" << n << " m=" << m << " T=" << T
              << " tile=" << tile << " leaf=" << leaf;
        return err.str();
      },
      opt);
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    EXPECT_EQ(verdicts[i], "") << "point " << i;
}
