# Empty dependencies file for bsmp_analytic.
# This may be replaced when dependencies are built.
