file(REMOVE_RECURSE
  "libbsmp_machine.a"
)
