# Empty dependencies file for bench_e10_extensions.
# This may be replaced when dependencies are built.
