// Further simulator behaviors: the Section-6 heterogeneous-memory
// extension (guest m' < technology m), long horizons, d=3, and
// cost-model sanity relations across schemes.
#include <gtest/gtest.h>

#include <vector>

#include "analytic/tradeoff.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {
machine::MachineSpec spec(int d, int64_t n, int64_t p, int64_t m) {
  return machine::MachineSpec{d, n, p, m};
}
}  // namespace

// ---------------------------------------------------------------------
// Section 6: heterogeneous memory — guest uses m' cells per node while
// the technology packs m >= m' cells per unit volume.
// ---------------------------------------------------------------------

TEST(HeterogeneousM, ValuesUnaffectedByHostDensity) {
  auto g = workload::make_mix_guest<1>({16}, 16, 2, 3);
  auto ref = sim::reference_run<1>(g);
  for (int64_t host_m : {2, 4, 16}) {
    auto res = sim::simulate_dc_uniproc<1>(g, spec(1, 16, 1, host_m));
    EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values))
        << host_m;
  }
}

TEST(HeterogeneousM, DenserTechnologyGivesMoreLocality) {
  // "more locality will result": the same guest simulated on machines
  // with larger m (same data, denser packing) gets strictly faster.
  auto g = workload::make_mix_guest<1>({64}, 64, 2, 4);
  double prev = 1e300;
  for (int64_t host_m : {2, 8, 32}) {
    auto res = sim::simulate_dc_uniproc<1>(g, spec(1, 64, 1, host_m));
    EXPECT_LT(res.time, prev) << host_m;
    prev = res.time;
  }
}

TEST(HeterogeneousM, MultiprocAlsoBenefits) {
  auto g = workload::make_mix_guest<1>({32}, 32, 1, 5);
  auto ref = sim::reference_run<1>(g);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  auto lo = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 1), cfg);
  auto hi = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 8), cfg);
  EXPECT_TRUE(sim::same_values<1>(hi.final_values, ref.final_values));
  EXPECT_LE(hi.time, lo.time);
}

TEST(HeterogeneousM, GuestLargerThanTechnologyRejected) {
  auto g = workload::make_mix_guest<1>({16}, 16, 4, 3);
  EXPECT_THROW(sim::simulate_dc_uniproc<1>(g, spec(1, 16, 1, 2)),
               bsmp::precondition_error);
}

// ---------------------------------------------------------------------
// Long horizons (Tn >> n): the simulation repeats its cycle.
// ---------------------------------------------------------------------

TEST(LongHorizon, DcMatchesReferenceOverManyCycles) {
  auto g = workload::make_mix_guest<1>({8}, 67, 2, 6);
  auto ref = sim::reference_run<1>(g);
  auto res = sim::simulate_dc_uniproc<1>(g, spec(1, 8, 1, 2));
  EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values));
  EXPECT_EQ(res.vertices, 8 * 67);
}

TEST(LongHorizon, SlowdownIndependentOfT) {
  // Tp/Tn must not grow with Tn (the per-cycle cost is what matters).
  auto g1 = workload::make_mix_guest<1>({16}, 16, 1, 7);
  auto g2 = workload::make_mix_guest<1>({16}, 64, 1, 7);
  auto r1 = sim::simulate_dc_uniproc<1>(g1, spec(1, 16, 1, 1));
  auto r2 = sim::simulate_dc_uniproc<1>(g2, spec(1, 16, 1, 1));
  EXPECT_NEAR(r2.slowdown() / r1.slowdown(), 1.0, 0.35);
}

TEST(LongHorizon, MultiprocManyCycles2D) {
  auto g = workload::make_mix_guest<2>({4, 4}, 19, 1, 8);
  auto ref = sim::reference_run<2>(g);
  sim::MultiprocConfig cfg;
  cfg.s = 2;
  auto res = sim::simulate_multiproc<2>(g, spec(2, 16, 4, 1), cfg);
  EXPECT_TRUE(sim::same_values<2>(res.final_values, ref.final_values));
}

// ---------------------------------------------------------------------
// d=3 (Section-6 conjecture) through the drivers.
// ---------------------------------------------------------------------

TEST(D3, NaiveAndDcMatchReference) {
  auto g = workload::make_mix_guest<3>({2, 2, 2}, 5, 2, 10);
  auto ref = sim::reference_run<3>(g);
  auto nv = sim::simulate_naive<3>(g, spec(3, 8, 1, 2));
  EXPECT_TRUE(sim::same_values<3>(nv.final_values, ref.final_values));
  auto dc = sim::simulate_dc_uniproc<3>(g, spec(3, 8, 1, 2));
  EXPECT_TRUE(sim::same_values<3>(dc.final_values, ref.final_values));
}

TEST(D3, NaiveSlowdownIsN4over3) {
  double lo = 1e18, hi = 0;
  for (int64_t side : {4, 6, 8}) {
    int64_t n = side * side * side;
    auto g = workload::make_mix_guest<3>({side, side, side}, 4, 1, 11);
    auto res = sim::simulate_naive<3>(g, spec(3, n, 1, 1));
    double ratio = res.slowdown() / std::pow((double)n, 4.0 / 3.0);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  EXPECT_LT(hi / lo, 2.5) << "naive d=3 is not Θ(n^(4/3))";
}

TEST(D3, DcBeatsNaiveShape) {
  // D&C is Θ(n log n) vs naive Θ(n^(4/3)): their ratio shrinks.
  double prev = 1e300;
  for (int64_t side : {4, 6, 8}) {
    int64_t n = side * side * side;
    auto g = workload::make_mix_guest<3>({side, side, side}, side, 1, 12);
    auto dc = sim::simulate_dc_uniproc<3>(g, spec(3, n, 1, 1));
    auto nv = sim::simulate_naive<3>(g, spec(3, n, 1, 1));
    double ratio = dc.slowdown() / nv.slowdown();
    EXPECT_LT(ratio, prev * 1.02) << side;
    prev = ratio;
  }
}

// ---------------------------------------------------------------------
// Cross-scheme cost-model sanity.
// ---------------------------------------------------------------------

TEST(CostSanity, BoundedSpeedNeverBeatsInstantaneous) {
  for (int64_t p : {1, 4}) {
    auto g = workload::make_mix_guest<1>({32}, 16, 1, 13);
    sim::NaiveConfig inst;
    inst.instantaneous = true;
    auto ri = sim::simulate_naive<1>(g, spec(1, 32, p, 1), inst);
    auto rb = sim::simulate_naive<1>(g, spec(1, 32, p, 1));
    EXPECT_GE(rb.time, ri.time) << p;
  }
}

TEST(CostSanity, PipelinedBetweenInstantaneousAndPlain) {
  auto g = workload::make_mix_guest<1>({64}, 16, 1, 14);
  sim::NaiveConfig inst, piped;
  inst.instantaneous = true;
  piped.pipelined = true;
  auto ri = sim::simulate_naive<1>(g, spec(1, 64, 1, 1), inst);
  auto rp = sim::simulate_naive<1>(g, spec(1, 64, 1, 1), piped);
  auto rn = sim::simulate_naive<1>(g, spec(1, 64, 1, 1));
  EXPECT_LE(ri.time, rp.time);
  EXPECT_LE(rp.time, rn.time);
}

TEST(CostSanity, GuestTimeIsAlwaysT) {
  auto g = workload::make_mix_guest<1>({8}, 23, 2, 15);
  EXPECT_DOUBLE_EQ(sim::reference_run<1>(g).guest_time, 23.0);
  EXPECT_DOUBLE_EQ(sim::simulate_naive<1>(g, spec(1, 8, 1, 2)).guest_time,
                   23.0);
  EXPECT_DOUBLE_EQ(
      sim::simulate_dc_uniproc<1>(g, spec(1, 8, 1, 2)).guest_time, 23.0);
}

TEST(CostSanity, LedgerTotalEqualsUniprocessorTime) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 16);
  auto res = sim::simulate_dc_uniproc<1>(g, spec(1, 16, 1, 1));
  EXPECT_DOUBLE_EQ(res.time, res.ledger.total());
}

TEST(CostSanity, MultiprocMakespanAtMostSerialWork) {
  auto g = workload::make_mix_guest<1>({32}, 32, 1, 17);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  auto res = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 1), cfg);
  // makespan <= total charged work (p >= 1), and >= work / p.
  double work = res.ledger.total() -
                res.ledger.cost(core::CostKind::kRearrange);
  EXPECT_LE(res.time, work + 1e-9);
  EXPECT_GE(res.time, work / 4.0 - 1e-9);
}

TEST(CostSanity, NaiveSlowdownIndependentOfM) {
  // Proposition 1: the naive bound does not depend on m.
  auto g1 = workload::make_mix_guest<1>({64}, 8, 1, 18);
  auto g8 = workload::make_mix_guest<1>({64}, 8, 8, 18);
  auto r1 = sim::simulate_naive<1>(g1, spec(1, 64, 1, 1));
  auto r8 = sim::simulate_naive<1>(g8, spec(1, 64, 1, 8));
  EXPECT_NEAR(r8.slowdown() / r1.slowdown(), 1.0, 0.15);
}

TEST(Multiproc, D2SlowdownTracksTheorem1Bound) {
  // The d=2 analogue of the Theorem-4 tracking test. At these sizes
  // the measured/bound ratio is still climbing toward its plateau
  // (the bound's loḡ(n) and the recursion's log(side) differ by
  // additive terms that decay as 1/log), so assert *convergence*:
  // successive increments shrink, and the ratio stays bounded.
  for (int64_t m : {1, 2}) {
    std::vector<double> ratios;
    for (int64_t side : {16, 32, 64}) {
      int64_t n = side * side;
      auto g = workload::make_mix_guest<2>({side, side}, side, m, 21);
      sim::MultiprocConfig cfg;
      cfg.s = side / 4;
      auto res = sim::simulate_multiproc<2>(g, spec(2, n, 4, m), cfg);
      double bound =
          analytic::slowdown_bound(2, (double)n, (double)m, 4.0);
      ratios.push_back(res.slowdown() / bound);
      EXPECT_LT(ratios.back(), 2000.0) << "side=" << side << " m=" << m;
    }
    EXPECT_LT(ratios[2] - ratios[1], ratios[1] - ratios[0])
        << "d=2 ratio diverges (m=" << m << ")";
  }
}
