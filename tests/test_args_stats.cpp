#include <gtest/gtest.h>

#include "analytic/fit.hpp"
#include "core/args.hpp"
#include "core/stats.hpp"

using namespace bsmp::core;
namespace analytic = bsmp::analytic;

namespace {
Args parse(std::initializer_list<const char*> argv,
           std::vector<std::string> flags = {}) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data(), flags);
}
}  // namespace

TEST(Args, SeparateAndEqualsForms) {
  auto a = parse({"--n", "256", "--m=8"});
  EXPECT_EQ(a.get_int("n", 0), 256);
  EXPECT_EQ(a.get_int("m", 0), 8);
  EXPECT_EQ(a.get_int("p", 4), 4);  // fallback
}

TEST(Args, FlagsDoNotConsumeValues) {
  auto a = parse({"--csv", "--n", "7"}, {"csv"});
  EXPECT_TRUE(a.get_flag("csv"));
  EXPECT_EQ(a.get_int("n", 0), 7);
  EXPECT_FALSE(a.get_flag("verify"));
}

TEST(Args, StringsDoublesPositionalsUnknown) {
  auto a = parse({"--scheme", "dc", "--ratio", "2.5", "input.txt",
                  "--mystery"});
  EXPECT_EQ(a.get_string("scheme", ""), "dc");
  EXPECT_DOUBLE_EQ(a.get_double("ratio", 0.0), 2.5);
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "input.txt");
  ASSERT_EQ(a.unknown().size(), 1u);
  EXPECT_EQ(a.unknown()[0], "mystery");
}

TEST(Args, TypeErrorsThrow) {
  auto a = parse({"--n", "abc"});
  EXPECT_THROW(a.get_int("n", 0), bsmp::precondition_error);
  auto b = parse({"--x", "1.5zz"});
  EXPECT_THROW(b.get_double("x", 0), bsmp::precondition_error);
}

TEST(Args, HasDistinguishesPresence) {
  auto a = parse({"--n", "1"}, {"csv"});
  EXPECT_TRUE(a.has("n"));
  EXPECT_FALSE(a.has("csv"));
  auto b = parse({"--csv"}, {"csv"});
  EXPECT_TRUE(b.has("csv"));
}

TEST(Stats, MomentsAndExtremes) {
  RunningStats s;
  for (double v : {2.0, 8.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 14.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.geomean(), 4.0, 1e-12);  // (2*8*4)^(1/3)
  EXPECT_DOUBLE_EQ(s.spread(), 4.0);
}

TEST(Stats, EmptyAndNonFinite) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_THROW(s.add(std::nan("")), bsmp::precondition_error);
}

TEST(Fit, RecoversExactLinearCombination) {
  // y = 3*a + 0.5*b + 7*c exactly.
  std::vector<std::array<double, 3>> x;
  std::vector<double> y;
  for (double a = 1; a <= 5; ++a)
    for (double b = 1; b <= 2; ++b) {
      double c = a * b;
      x.push_back({a, b, c});
      y.push_back(3 * a + 0.5 * b + 7 * c);
    }
  auto coef = analytic::fit_least_squares<3>(x, y);
  EXPECT_NEAR(coef[0], 3.0, 1e-6);
  EXPECT_NEAR(coef[1], 0.5, 1e-6);
  EXPECT_NEAR(coef[2], 7.0, 1e-6);
  EXPECT_NEAR(analytic::fit_r2<3>(x, y, coef), 1.0, 1e-9);
}

TEST(Fit, ClampsNegativeCoefficients) {
  // y depends negatively on the second regressor; the fit must clamp
  // it to zero (mechanism constants are physically non-negative).
  std::vector<std::array<double, 2>> x;
  std::vector<double> y;
  for (double a = 1; a <= 8; ++a) {
    x.push_back({a, 9 - a});
    y.push_back(2 * a);
  }
  auto coef = analytic::fit_least_squares<2>(x, y);
  EXPECT_GE(coef[0], 0.0);
  EXPECT_GE(coef[1], 0.0);
}

TEST(Fit, RejectsUnderdeterminedInput) {
  std::vector<std::array<double, 3>> x = {{1, 2, 3}};
  std::vector<double> y = {1};
  EXPECT_THROW((analytic::fit_least_squares<3>(x, y)),
               bsmp::precondition_error);
}
