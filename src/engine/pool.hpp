// Thread pool backing the sweep engine.
//
// A Pool owns `threads - 1` persistent worker threads; the caller of
// parallel_for is the remaining executor, so Pool(k) runs a sweep on
// exactly k threads and Pool(1) degenerates to a plain sequential loop
// on the calling thread (no workers, no synchronization) — the
// reference execution the conformance tests compare against.
//
// parallel_for(n, body) runs body(0..n-1) with dynamic index
// distribution and blocks until every index has completed. Exceptions
// thrown by body are captured; after all indices have run, the
// exception of the *lowest-index* failing point is rethrown, so error
// reporting is deterministic regardless of thread interleaving.
//
// The pool also hosts a work-stealing fork-join layer (engine/task.hpp):
// every pool thread owns one TaskScheduler deque slot, and idle workers
// drain queued tasks between (and during) parallel_for jobs. That makes
// parallelism nestable:
//   * code running on a pool thread may open an engine::TaskScope and
//     fork subtasks into the same worker set (the separator executor
//     does this per recursion node);
//   * a *nested* parallel_for on the same pool — a body calling back
//     into its own pool, which formerly deadlocked — is detected via
//     the thread's scheduler binding and routed through a TaskScope,
//     preserving the run-all / lowest-index-exception contract;
//   * bind_caller() hands the calling thread a slot so fork-join work
//     can be driven without a surrounding parallel_for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/task.hpp"

namespace bsmp::engine {

class Pool {
 public:
  /// `threads <= 0` uses hardware_threads().
  explicit Pool(int threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Total executors (workers + the calling thread of parallel_for).
  int size() const { return size_; }

  /// Run body(i) for every i in [0, n); blocks until all complete.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Bind the calling thread to the pool's task scheduler (slot 0, the
  /// parallel_for caller's slot) so TaskScope forks made on this thread
  /// are executed by the pool's workers. Intended for driving fork-join
  /// work directly, without a parallel_for; at most one thread may hold
  /// the binding at a time — a second thread binding slot 0 (including
  /// via parallel_for) throws precondition_error rather than silently
  /// sharing the caller's deque.
  [[nodiscard]] TaskScheduler::Bind bind_caller() {
    return TaskScheduler::Bind(&sched_, 0);
  }

  /// Counters of the pool's fork-join layer (tasks spawned / inlined,
  /// steals, join waits) — the `tasks` block of the metrics artifact.
  TaskStats task_stats() const { return sched_.stats(); }
  void reset_task_stats() { sched_.reset_stats(); }

  /// std::thread::hardware_concurrency, never less than 1.
  static int hardware_threads();

 private:
  void worker_loop(int slot);
  void drain();
  void record_error(std::size_t index);

  int size_ = 1;
  TaskScheduler sched_;

  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait for a job or tasks
  std::condition_variable cv_done_;   // caller waits for completion
  std::uint64_t generation_ = 0;      // bumped per parallel_for
  bool stop_ = false;

  // Current job (valid while remaining_ > 0 or draining_ > 0).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};
  int draining_ = 0;  // workers currently inside drain(), guarded by mu_

  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace bsmp::engine
