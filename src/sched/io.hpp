// Schedule serialization: a line-oriented text format so plans can be
// dumped, diffed, stored and replayed across runs.
//
//   # bsmp-schedule v1 d=1 p=4
//   relocate words=128 dist=16
//   copy_in proc=2 words=10 scale=392
//   leaf proc=2 scale=56 lo=0,-3 hi=4,1
//   barrier
//
// Round-trips exactly (the cost model is pure data).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "core/expect.hpp"
#include "sched/parallel.hpp"
#include "sched/schedule.hpp"

namespace bsmp::sched {

namespace detail {

template <int D>
void write_op(std::ostream& os, const Op<D>& op) {
  os << to_string(op.kind);
  switch (op.kind) {
    case OpKind::kCopyIn:
    case OpKind::kCopyOut:
      os << " proc=" << op.proc << " words=" << op.words
         << " scale=" << op.addr_scale;
      break;
    case OpKind::kComm:
      os << " proc=" << op.proc << " words=" << op.words
         << " dist=" << op.distance;
      break;
    case OpKind::kRelocate:
      os << " words=" << op.words << " dist=" << op.distance;
      break;
    case OpKind::kLeaf: {
      os << " proc=" << op.proc << " scale=" << op.addr_scale << " lo=";
      for (int k = 0; k < geom::kMono<D>; ++k)
        os << (k ? "," : "") << op.leaf_lo[k];
      os << " hi=";
      for (int k = 0; k < geom::kMono<D>; ++k)
        os << (k ? "," : "") << op.leaf_hi[k];
      break;
    }
    case OpKind::kBarrier:
    case OpKind::kKindCount:
      break;
  }
  os << '\n';
}

inline std::string field(const std::string& line, const std::string& key) {
  auto pos = line.find(" " + key + "=");
  BSMP_REQUIRE_MSG(pos != std::string::npos,
                   "missing field '" << key << "' in: " << line);
  pos += key.size() + 2;
  auto end = line.find(' ', pos);
  return line.substr(pos, end == std::string::npos ? end : end - pos);
}

template <int D>
void parse_coords(const std::string& csv, std::array<int64_t, geom::kMono<D>>& out) {
  std::stringstream ss(csv);
  std::string tok;
  for (int k = 0; k < geom::kMono<D>; ++k) {
    BSMP_REQUIRE_MSG(std::getline(ss, tok, ','), "bad coordinates " << csv);
    out[k] = std::stoll(tok);
  }
}

template <int D>
Op<D> read_op(const std::string& line) {
  Op<D> op;
  std::string kind = line.substr(0, line.find(' '));
  if (kind == "copy_in" || kind == "copy_out") {
    op.kind = kind == "copy_in" ? OpKind::kCopyIn : OpKind::kCopyOut;
    op.proc = std::stoll(field(line, "proc"));
    op.words = std::stoll(field(line, "words"));
    op.addr_scale = std::stod(field(line, "scale"));
  } else if (kind == "comm") {
    op.kind = OpKind::kComm;
    op.proc = std::stoll(field(line, "proc"));
    op.words = std::stoll(field(line, "words"));
    op.distance = std::stod(field(line, "dist"));
  } else if (kind == "relocate") {
    op.kind = OpKind::kRelocate;
    op.words = std::stoll(field(line, "words"));
    op.distance = std::stod(field(line, "dist"));
  } else if (kind == "leaf") {
    op.kind = OpKind::kLeaf;
    op.proc = std::stoll(field(line, "proc"));
    op.addr_scale = std::stod(field(line, "scale"));
    parse_coords<D>(field(line, "lo"), op.leaf_lo);
    parse_coords<D>(field(line, "hi"), op.leaf_hi);
  } else if (kind == "barrier") {
    op.kind = OpKind::kBarrier;
  } else {
    BSMP_REQUIRE_MSG(false, "unknown op '" << kind << "'");
  }
  return op;
}

}  // namespace detail

template <int D>
void dump_schedule(std::ostream& os, const Schedule<D>& sched) {
  os << "# bsmp-schedule v1 d=" << D << " p=1\n";
  for (const auto& op : sched.ops()) detail::write_op<D>(os, op);
}

template <int D>
void dump_schedule(std::ostream& os, const ParallelSchedule<D>& sched) {
  os << "# bsmp-schedule v1 d=" << D << " p=" << sched.num_procs() << "\n";
  for (const auto& op : sched.ops()) detail::write_op<D>(os, op);
}

/// Load a schedule dumped by dump_schedule. The header's d must match
/// D; the processor count is returned through the ParallelSchedule.
template <int D>
ParallelSchedule<D> load_schedule(std::istream& is) {
  std::string header;
  BSMP_REQUIRE_MSG(std::getline(is, header) &&
                       header.rfind("# bsmp-schedule v1", 0) == 0,
                   "not a bsmp schedule dump");
  int d = std::stoi(detail::field(header, "d"));
  BSMP_REQUIRE_MSG(d == D, "schedule is d=" << d << ", expected " << D);
  std::int64_t p = std::stoll(detail::field(header, "p"));
  ParallelSchedule<D> sched(p);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    sched.push(detail::read_op<D>(line));
  }
  return sched;
}

}  // namespace bsmp::sched
