// Lane-differential and lane-isolation tests of the batched guest
// interface (sep/guest.hpp "Batched guests").
//
// The contract under test: one charged run of a 64-lane batched guest
// is EXACTLY 64 independent scalar runs —
//   * differential: lane l of the batched final values is byte-
//     identical to the corresponding independent scalar run, for every
//     lane, in both batch forms (bit-sliced Word and SoA LaneBatch),
//     across d in {1,2} x store {dense, hashmap} x Pool {1,2,4} x fork
//     grain {off, 4};
//   * charging: the batched run's per-kind charged cost bits, event
//     counts, vertex totals, peak staging and slab allocations equal a
//     scalar run of the same stencil exactly (charging is count-based
//     and never reads lane contents);
//   * isolation: perturbing one lane's initial condition leaves the
//     other 63 lanes' final rows bit-identical — no cross-lane leakage
//     through staging, pruning, shard merges, or ChargeLog replay.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>

#include "engine/pool.hpp"
#include "geom/tiling.hpp"
#include "sep/executor.hpp"
#include "sep/staging.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

/// Everything the batching contract pins about one full-volume drive.
template <int D, class V>
struct Outcome {
  std::array<std::uint64_t, core::CostLedger::kNumKinds> cost_bits{};
  std::array<std::uint64_t, core::CostLedger::kNumKinds> events{};
  std::int64_t vertices = 0;
  std::size_t peak = 0;
  std::size_t allocs = 0;
  sep::BasicValueMap<D, V> fin;
};

/// Drive the guest over the full volume through the same wavefront
/// loop the simulators use. Generic over the value type and store.
template <int D, class V, class Store>
Outcome<D, V> drive(const sep::BasicGuest<D, V>& g, Store& staging,
                    int64_t tile, int64_t leaf, int64_t grain) {
  sep::ExecutorConfig cfg;
  cfg.leaf_width = leaf;
  cfg.f = hram::AccessFn::hierarchical(D, 4.0);
  cfg.parallel_grain = grain;
  sep::Executor<D, V> exec(&g, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);
  geom::TileGrid<D> grid(&g.stencil, tile);
  for (const auto& wave : grid.wavefronts())
    for (const auto& t : wave) exec.execute(t, staging);

  Outcome<D, V> out;
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    auto kind = static_cast<core::CostKind>(i);
    double c = ledger.cost(kind);
    std::memcpy(&out.cost_bits[i], &c, sizeof c);
    out.events[i] = ledger.events(kind);
  }
  out.vertices = exec.vertices_executed();
  out.peak = exec.peak_staging();
  out.allocs = sep::store_level_allocs(staging);
  out.fin = sim::extract_final<D>(g.stencil, staging);
  return out;
}

/// The charging-identity half of the contract: every count and every
/// charged double of the batch run must equal the scalar run's.
template <int D, class VB, class VS>
void expect_same_charges(const Outcome<D, VB>& batch,
                         const Outcome<D, VS>& scalar,
                         const std::string& what) {
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    EXPECT_EQ(batch.cost_bits[i], scalar.cost_bits[i])
        << what << ": cost kind " << i << " not bit-identical to scalar";
    EXPECT_EQ(batch.events[i], scalar.events[i])
        << what << ": event count " << i;
  }
  EXPECT_EQ(batch.vertices, scalar.vertices) << what;
  EXPECT_EQ(batch.peak, scalar.peak) << what << ": peak staging";
  EXPECT_EQ(batch.allocs, scalar.allocs) << what << ": slab allocs";
}

// --- d=1: bit-sliced rule110, 64 distinct random 0/1 rows ------------

/// Packed guest: bit l of the input word at node x is lane l's initial
/// cell, drawn from an independent per-lane random stream.
sep::Guest<1> packed110_guest(int64_t n, int64_t horizon,
                              std::uint64_t seed) {
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{n}, horizon, 1};
  g.rule = workload::rule110_lanes();
  g.input = [seed](const std::array<int64_t, 1>& x,
                   int64_t cell) -> sep::Word {
    sep::Word w = 0;
    for (int l = 0; l < sep::kLanes; ++l) {
      auto bit = workload::random_input<1>(
          seed + static_cast<std::uint64_t>(l))(x, cell) & 1u;
      w |= bit << l;
    }
    return w;
  };
  return g;
}

/// Lane l of the packed guest as an independent scalar guest.
sep::Guest<1> lane110_guest(const sep::Guest<1>& packed, int lane) {
  sep::Guest<1> g;
  g.stencil = packed.stencil;
  g.rule = workload::rule110();
  g.input = [in = packed.input, lane](const std::array<int64_t, 1>& x,
                                      int64_t cell) -> sep::Word {
    return (in(x, cell) >> lane) & 1u;
  };
  return g;
}

// --- d=2: SoA LaneBatch over the wide-word mix rule ------------------

/// SoA-batched mix guest: lane l runs the mix rule from its own random
/// input stream (seed + l) — 64 full-width scenarios per charged run.
sep::BatchGuest<2> soa_mix_guest(std::array<int64_t, 2> extent,
                                 int64_t horizon, int64_t m,
                                 std::uint64_t seed) {
  sep::BatchGuest<2> g;
  g.stencil.extent = extent;
  g.stencil.horizon = horizon;
  g.stencil.m = m;
  g.rule = sep::broadcast_rule<2>(workload::mix_rule<2>());
  std::array<sep::InputFn<2>, sep::kLanes> ins;
  for (int l = 0; l < sep::kLanes; ++l)
    ins[static_cast<std::size_t>(l)] =
        workload::random_input<2>(seed + static_cast<std::uint64_t>(l));
  g.input = sep::lane_inputs<2>(std::move(ins));
  return g;
}

/// Lane l of the SoA guest as an independent scalar guest.
sep::Guest<2> lane_mix_guest(const sep::BatchGuest<2>& batch, int lane,
                             std::uint64_t seed) {
  sep::Guest<2> g;
  g.stencil = batch.stencil;
  g.rule = workload::mix_rule<2>();
  g.input = workload::random_input<2>(seed + static_cast<std::uint64_t>(lane));
  return g;
}

}  // namespace

// ---------------------------------------------------------------------
// Lane-differential: every lane == its scalar run, charges == scalar,
// across store {dense, hashmap} x Pool {1,2,4} x grain {off, 4}.
// ---------------------------------------------------------------------

TEST(BatchLanes, D1BitSlicedLanesMatchScalarRunsAcrossStoresPoolsGrains) {
  const int64_t n = 64, T = 64, tile = 32, leaf = 2;
  auto packed = packed110_guest(n, T, 99);

  // The 64 independent scalar runs, once; all charge identically
  // (charging depends only on the stencil), so keep one charge record.
  std::array<sep::ValueMap<1>, sep::kLanes> lane_fin;
  Outcome<1, sep::Word> scalar0;
  for (int l = 0; l < sep::kLanes; ++l) {
    auto g = lane110_guest(packed, l);
    sep::StagingStore<1> staging(&g.stencil);
    auto out = drive<1>(g, staging, tile, leaf, /*grain=*/0);
    if (l == 0) scalar0 = out;
    expect_same_charges<1>(out, scalar0, "scalar lane " + std::to_string(l));
    lane_fin[static_cast<std::size_t>(l)] = std::move(out.fin);
  }

  for (bool dense : {true, false}) {
    for (int64_t grain : {int64_t{0}, int64_t{4}}) {
      for (int threads : {1, 2, 4}) {
        engine::Pool pool(threads);
        auto bind = pool.bind_caller();
        const std::string what = std::string("d1 ") +
                                 (dense ? "dense" : "hashmap") + " grain=" +
                                 std::to_string(grain) + " threads=" +
                                 std::to_string(threads);
        Outcome<1, sep::Word> batch;
        if (dense) {
          sep::StagingStore<1> staging(&packed.stencil);
          batch = drive<1>(packed, staging, tile, leaf, grain);
        } else {
          sep::ValueMap<1> staging;
          batch = drive<1>(packed, staging, tile, leaf, grain);
        }
        // Slab allocations only exist for the dense store; everything
        // else must match the scalar run exactly in either store.
        auto expected = scalar0;
        if (!dense) expected.allocs = 0;
        expect_same_charges<1>(batch, expected, what);
        for (int l = 0; l < sep::kLanes; ++l) {
          EXPECT_TRUE(sim::same_values<1>(
              sep::extract_bit_lane<1>(batch.fin, l),
              lane_fin[static_cast<std::size_t>(l)]))
              << what << ": lane " << l << " diverged from its scalar run";
        }
      }
    }
  }
}

TEST(BatchLanes, D2SoALanesMatchScalarRunsAcrossStoresPoolsGrains) {
  const std::array<int64_t, 2> extent{12, 12};
  const int64_t T = 12, m = 2, tile = 6, leaf = 2;
  const std::uint64_t seed = 777;
  auto batch_g = soa_mix_guest(extent, T, m, seed);

  std::array<sep::ValueMap<2>, sep::kLanes> lane_fin;
  Outcome<2, sep::Word> scalar0;
  for (int l = 0; l < sep::kLanes; ++l) {
    auto g = lane_mix_guest(batch_g, l, seed);
    sep::StagingStore<2> staging(&g.stencil);
    auto out = drive<2>(g, staging, tile, leaf, /*grain=*/0);
    if (l == 0) scalar0 = out;
    expect_same_charges<2>(out, scalar0, "scalar lane " + std::to_string(l));
    lane_fin[static_cast<std::size_t>(l)] = std::move(out.fin);
  }

  for (bool dense : {true, false}) {
    for (int64_t grain : {int64_t{0}, int64_t{4}}) {
      for (int threads : {1, 2, 4}) {
        engine::Pool pool(threads);
        auto bind = pool.bind_caller();
        const std::string what = std::string("d2 ") +
                                 (dense ? "dense" : "hashmap") + " grain=" +
                                 std::to_string(grain) + " threads=" +
                                 std::to_string(threads);
        Outcome<2, sep::LaneBatch> batch;
        if (dense) {
          sep::StagingStore<2, sep::LaneBatch> staging(&batch_g.stencil);
          batch = drive<2>(batch_g, staging, tile, leaf, grain);
        } else {
          sep::BatchValueMap<2> staging;
          batch = drive<2>(batch_g, staging, tile, leaf, grain);
        }
        auto expected = scalar0;
        if (!dense) expected.allocs = 0;
        expect_same_charges<2>(batch, expected, what);
        for (int l = 0; l < sep::kLanes; ++l) {
          EXPECT_TRUE(sim::same_values<2>(
              sep::extract_lane<2>(batch.fin, l),
              lane_fin[static_cast<std::size_t>(l)]))
              << what << ": lane " << l << " diverged from its scalar run";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Broadcast adapter: lifting a scalar guest puts the scalar run's
// values in every lane, through executor and reference run alike.
// ---------------------------------------------------------------------

TEST(BatchLanes, BroadcastGuestReproducesScalarRunInEveryLane) {
  auto g = workload::make_mix_guest<2>({8, 8}, 8, 1, 4242);
  auto b = sep::broadcast_guest<2>(g);

  sep::StagingStore<2> s_scalar(&g.stencil);
  auto scalar = drive<2>(g, s_scalar, /*tile=*/4, /*leaf=*/2, /*grain=*/0);
  sep::StagingStore<2, sep::LaneBatch> s_batch(&b.stencil);
  auto batch = drive<2>(b, s_batch, /*tile=*/4, /*leaf=*/2, /*grain=*/0);

  expect_same_charges<2>(batch, scalar, "broadcast");
  for (int l = 0; l < sep::kLanes; ++l)
    EXPECT_TRUE(sim::same_values<2>(sep::extract_lane<2>(batch.fin, l),
                                    scalar.fin))
        << "broadcast lane " << l;

  // The reference run agrees lane for lane too.
  auto rref = sim::reference_run(g);
  auto bref = sim::reference_run(b);
  for (int l = 0; l < sep::kLanes; ++l)
    EXPECT_TRUE(sim::same_values<2>(
        sep::extract_lane<2>(bref.final_values, l), rref.final_values))
        << "reference lane " << l;
}

// ---------------------------------------------------------------------
// Lane isolation: flip one lane's initial condition — the other 63
// lanes' final rows must be bit-identical to the unperturbed run, with
// forking and shard merges active.
// ---------------------------------------------------------------------

TEST(BatchLanes, BitSlicedFaultInjectionStaysInItsLane) {
  const int kFault = 5;
  auto base = packed110_guest(64, 64, 31);
  auto hurt = base;
  hurt.input = [in = base.input](const std::array<int64_t, 1>& x,
                                 int64_t cell) -> sep::Word {
    sep::Word w = in(x, cell);
    if (x[0] == 17) w ^= sep::Word{1} << kFault;  // flip lane 5, node 17
    return w;
  };

  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  sep::StagingStore<1> s_base(&base.stencil);
  auto a = drive<1>(base, s_base, /*tile=*/32, /*leaf=*/2, /*grain=*/4);
  sep::StagingStore<1> s_hurt(&hurt.stencil);
  auto b = drive<1>(hurt, s_hurt, /*tile=*/32, /*leaf=*/2, /*grain=*/4);

  expect_same_charges<1>(b, a, "fault injection");
  int diverged = 0;
  for (int l = 0; l < sep::kLanes; ++l) {
    const bool same = sim::same_values<1>(sep::extract_bit_lane<1>(a.fin, l),
                                          sep::extract_bit_lane<1>(b.fin, l));
    if (l == kFault) {
      if (!same) ++diverged;
    } else {
      EXPECT_TRUE(same) << "lane " << l
                        << " leaked from the perturbed lane " << kFault;
    }
  }
  EXPECT_EQ(diverged, 1) << "the perturbed lane never diverged — the "
                            "perturbation did not take";
}

TEST(BatchLanes, SoAFaultInjectionStaysInItsLane) {
  const int kFault = 17;
  const std::uint64_t seed = 55;
  auto base = soa_mix_guest({10, 10}, 10, 1, seed);
  auto hurt = base;
  hurt.input = [in = base.input](const std::array<int64_t, 2>& x,
                                 int64_t cell) -> sep::LaneBatch {
    sep::LaneBatch v = in(x, cell);
    if (x[0] == 3 && x[1] == 7) v[kFault] ^= 0xdeadbeefULL;
    return v;
  };

  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  sep::StagingStore<2, sep::LaneBatch> s_base(&base.stencil);
  auto a = drive<2>(base, s_base, /*tile=*/5, /*leaf=*/2, /*grain=*/4);
  sep::StagingStore<2, sep::LaneBatch> s_hurt(&hurt.stencil);
  auto b = drive<2>(hurt, s_hurt, /*tile=*/5, /*leaf=*/2, /*grain=*/4);

  expect_same_charges<2>(b, a, "SoA fault injection");
  for (int l = 0; l < sep::kLanes; ++l) {
    const bool same = sim::same_values<2>(sep::extract_lane<2>(a.fin, l),
                                          sep::extract_lane<2>(b.fin, l));
    if (l == kFault)
      EXPECT_FALSE(same) << "perturbed lane never diverged";
    else
      EXPECT_TRUE(same) << "lane " << l << " leaked from lane " << kFault;
  }
}

// ---------------------------------------------------------------------
// Batched staging stores behave like scalar ones on the basics.
// ---------------------------------------------------------------------

TEST(BatchLanes, LaneBatchStagingStoreBasics) {
  geom::Stencil<1> st{{8}, 4, 1};
  sep::StagingStore<1, sep::LaneBatch> s(&st);
  geom::Point<1> p{{3}, 1};

  EXPECT_EQ(s.find(p), nullptr);
  sep::LaneBatch v = sep::LaneBatch::splat(7);
  v[9] = 1234;
  EXPECT_TRUE(s.insert(p, v));
  EXPECT_EQ(s.size(), 1u);  // size counts points, not lane words
  ASSERT_NE(s.find(p), nullptr);
  EXPECT_EQ((*s.find(p))[9], 1234u);
  EXPECT_EQ((*s.find(p))[0], 7u);
  EXPECT_FALSE(s.insert(p, v));
  EXPECT_TRUE(s.erase(p));
  EXPECT_EQ(s.size(), 0u);

  // Shard overlay over a LaneBatch base: value type follows the base.
  sep::StagingShard<1, sep::StagingStore<1, sep::LaneBatch>> shard(
      sep::overlay, s);
  EXPECT_TRUE(shard.insert(p, v));
  ASSERT_NE(shard.find(p), nullptr);
  EXPECT_EQ((*shard.find(p))[9], 1234u);
  shard.merge_into(s);
  ASSERT_NE(s.find(p), nullptr);
  EXPECT_EQ((*s.find(p))[9], 1234u);
}
