# Empty dependencies file for ram_locality.
# This may be replaced when dependencies are built.
