#include "tables/emitters.hpp"

#include "core/expect.hpp"

namespace bsmp::tables {

const std::vector<Emitter>& all_emitters() {
  static const std::vector<Emitter> kEmitters{
      {"e1", "intro example: matmul speedups", &e1_tables},
      {"e2", "Proposition 1: the naive simulation", &e2_tables},
      {"e3", "Theorem 2: D&C uniprocessor, d=1", &e3_tables},
      {"e4", "Theorem 3: executable diamonds, m sweep", &e4_tables},
      {"e5", "Theorem 4: two-regime multiprocessor", &e5_tables},
      {"e6", "Section 4.2: A(s) strip-width ablation", &e6_tables},
      {"e7", "Theorem 5: D&C uniprocessor, d=2", &e7_tables},
      {"e8", "Theorem 1 at d=2: multiprocessor mesh", &e8_tables},
      {"e9", "Figures 1-4: decomposition geometry", &e9_tables},
      {"e10", "baselines and Section-6 extensions", &e10_tables},
      // Derived artifacts (after the ten paper artifacts, which keep
      // their positional indices): the dense Section-4.2 ablation and
      // the engine-backed advisor calibration.
      {"e6d", "Section 4.2: dense every-s A(s) ablation + fit", &e6_dense_tables},
      {"cal", "advisor calibration through the sweep engine", &calibration_tables},
      {"hot", "executor hot path: dense staging (scalar + SIMD) vs "
              "hash-map baseline",
       &hot_tables},
      {"ens", "64-scenario bit-sliced ensembles in one charged pass",
       &ensemble_tables},
  };
  return kEmitters;
}

const Emitter& find_emitter(std::string_view name) {
  for (const auto& e : all_emitters())
    if (name == e.name) return e;
  BSMP_REQUIRE_MSG(false, "unknown emitter '" << name << "'");
}

}  // namespace bsmp::tables
