// E9 — the paper's decomposition geometry (Figures 1-4) and the
// Section-4.2 rearrangement, regenerated as tables by
// tables::e9_tables via the engine harness.
#include "bench_common.hpp"
#include "geom/figures.hpp"
#include "geom/tiling.hpp"

using namespace bsmp;

namespace {

void BM_split_octahedron(benchmark::State& state) {
  geom::Stencil<2> st{{64, 64}, 64, 1};
  auto p = geom::make_octahedron(&st, 16, -16, 16, -16, 32);
  for (auto _ : state) benchmark::DoNotOptimize(p.split());
}
BENCHMARK(BM_split_octahedron);

void BM_preboundary(benchmark::State& state) {
  geom::Stencil<2> st{{64, 64}, 64, 1};
  auto p = geom::make_octahedron(&st, 16, -16, 16, -16, 32);
  for (auto _ : state) benchmark::DoNotOptimize(p.preboundary());
}
BENCHMARK(BM_preboundary);

}  // namespace

BSMP_BENCH_MAIN("e9")
