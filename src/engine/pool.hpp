// Thread pool backing the sweep engine.
//
// A Pool owns `threads - 1` persistent worker threads; the caller of
// parallel_for is the remaining executor, so Pool(k) runs a sweep on
// exactly k threads and Pool(1) degenerates to a plain sequential loop
// on the calling thread (no workers, no synchronization) — the
// reference execution the conformance tests compare against.
//
// parallel_for(n, body) runs body(0..n-1) with dynamic index
// distribution and blocks until every index has completed. Exceptions
// thrown by body are captured; after all indices have run, the
// exception of the *lowest-index* failing point is rethrown, so error
// reporting is deterministic regardless of thread interleaving.
//
// parallel_for calls must not be nested on the same Pool (a body must
// not call back into its own pool); sweeps over sweeps should flatten
// their point sets instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsmp::engine {

class Pool {
 public:
  /// `threads <= 0` uses hardware_threads().
  explicit Pool(int threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Total executors (workers + the calling thread of parallel_for).
  int size() const { return size_; }

  /// Run body(i) for every i in [0, n); blocks until all complete.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency, never less than 1.
  static int hardware_threads();

 private:
  void worker_loop();
  void drain();
  void record_error(std::size_t index);

  int size_ = 1;

  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait for a new job
  std::condition_variable cv_done_;   // caller waits for completion
  std::uint64_t generation_ = 0;      // bumped per parallel_for
  bool stop_ = false;

  // Current job (valid while remaining_ > 0 or draining_ > 0).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};
  int draining_ = 0;  // workers currently inside drain(), guarded by mu_

  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace bsmp::engine
