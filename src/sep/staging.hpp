// Dense, window-addressed staging for the separator executor.
//
// The staging medium between domains is keyed by lattice points. The
// original medium was ValueMap<D> (an unordered_map), which pays a
// hash + probe per touch and rehash churn as tiles come and go. A
// point's address is in fact computable in O(1): the stencil's spatial
// grid is fixed, so (x, t) maps to (node_index(x), t) — a slot in a
// per-time-level slab of num_nodes words. StagingStore<D> stores
// values that way:
//
//   * one lazily-allocated slab per time level (values + liveness
//     bytes), freed again when the level is pruned — so the resident
//     footprint follows the executor's wavefront, not the volume;
//   * size() is the number of *live* words, maintained incrementally —
//     identical semantics to the map's size(), which peak_staging()
//     and the space-bound tests rely on;
//   * level_allocs() counts slab allocations for the hot-path metrics.
//
// The generic accessors at the bottom (store_find / store_insert) give
// Executor one staging interface over both StagingStore and the
// original ValueMap (kept as a supported staging type: existing tests
// use it, and the hot-path bench measures it as the same-run baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/expect.hpp"
#include "geom/lattice.hpp"
#include "sep/guest.hpp"

namespace bsmp::sep {

template <int D>
class StagingStore {
 public:
  /// The stencil fixes the address layout; it must outlive the store.
  explicit StagingStore(const geom::Stencil<D>* stencil)
      : st_(stencil) {
    BSMP_REQUIRE(stencil != nullptr);
    nodes_ = st_->num_nodes();
    levels_.resize(static_cast<std::size_t>(st_->horizon));
  }

  bool contains(const geom::Point<D>& q) const {
    return find(q) != nullptr;
  }

  /// Pointer to the live value at q, or nullptr when q is absent (or
  /// not a vertex position at all).
  const Word* find(const geom::Point<D>& q) const {
    if (q.t < 0 || q.t >= st_->horizon) return nullptr;
    const Level* lv = levels_[static_cast<std::size_t>(q.t)].get();
    if (lv == nullptr || !st_->in_space(q.x)) return nullptr;
    std::size_t s = slot(q.x);
    return lv->live[s] ? &lv->vals[s] : nullptr;
  }

  /// Mutable value at q; asserts q is live (mirrors map::at).
  Word& at(const geom::Point<D>& q) {
    BSMP_REQUIRE(q.t >= 0 && q.t < st_->horizon && st_->in_space(q.x));
    Level* lv = levels_[static_cast<std::size_t>(q.t)].get();
    BSMP_REQUIRE_MSG(lv != nullptr, "StagingStore::at on absent point");
    std::size_t s = slot(q.x);
    BSMP_REQUIRE_MSG(lv->live[s], "StagingStore::at on absent point");
    return lv->vals[s];
  }

  /// Set the value at q (insert-or-overwrite).
  void insert(const geom::Point<D>& q, Word v) {
    BSMP_REQUIRE(q.t >= 0 && q.t < st_->horizon && st_->in_space(q.x));
    Level& lv = level(q.t);
    std::size_t s = slot(q.x);
    if (!lv.live[s]) {
      lv.live[s] = 1;
      ++lv.nlive;
      ++live_;
    }
    lv.vals[s] = v;
  }

  /// Remove q if live (no-op otherwise, like map::erase).
  void erase(const geom::Point<D>& q) {
    if (q.t < 0 || q.t >= st_->horizon || !st_->in_space(q.x)) return;
    Level* lv = levels_[static_cast<std::size_t>(q.t)].get();
    if (lv == nullptr) return;
    std::size_t s = slot(q.x);
    if (lv->live[s]) {
      lv->live[s] = 0;
      --lv->nlive;
      --live_;
    }
  }

  /// Number of live words — the same quantity ValueMap::size() reports,
  /// so peak-staging accounting is unchanged by the dense layout.
  std::size_t size() const { return live_; }

  /// Drop every level with t < dead_below and t < keep_from, releasing
  /// its slab. Levels are all-or-nothing here because staleness is a
  /// pure function of t (see sim::detail::prune_staging).
  void prune_below(std::int64_t dead_below, std::int64_t keep_from) {
    std::int64_t top = std::min(dead_below, keep_from);
    top = std::min(top, st_->horizon);
    for (std::int64_t t = 0; t < top; ++t) {
      auto& lv = levels_[static_cast<std::size_t>(t)];
      if (lv != nullptr) {
        live_ -= static_cast<std::size_t>(lv->nlive);
        lv.reset();
      }
    }
  }

  /// Slab allocations performed so far (hot-path metric: a steady
  /// state allocates one slab per newly-touched time level and nothing
  /// else).
  std::size_t level_allocs() const { return allocs_; }

  /// Visit every live (point, value) pair, t ascending then node order.
  template <class F>
  void for_each(F&& visit) const {
    for (std::int64_t t = 0; t < st_->horizon; ++t) {
      const Level* lv = levels_[static_cast<std::size_t>(t)].get();
      if (lv == nullptr || lv->nlive == 0) continue;
      geom::Point<D> p;
      p.t = t;
      for (std::size_t s = 0; s < lv->live.size(); ++s) {
        if (!lv->live[s]) continue;
        unslot(s, p.x);
        visit(p, lv->vals[s]);
      }
    }
  }

 private:
  struct Level {
    std::vector<Word> vals;
    std::vector<std::uint8_t> live;
    std::int64_t nlive = 0;
  };

  Level& level(std::int64_t t) {
    auto& lv = levels_[static_cast<std::size_t>(t)];
    if (lv == nullptr) {
      lv = std::make_unique<Level>();
      lv->vals.assign(static_cast<std::size_t>(nodes_), 0);
      lv->live.assign(static_cast<std::size_t>(nodes_), 0);
      ++allocs_;
    }
    return *lv;
  }

  std::size_t slot(const std::array<std::int64_t, D>& x) const {
    std::int64_t s = 0;
    for (int i = 0; i < D; ++i) s = s * st_->extent[i] + x[i];
    return static_cast<std::size_t>(s);
  }

  void unslot(std::size_t s, std::array<std::int64_t, D>& x) const {
    auto r = static_cast<std::int64_t>(s);
    for (int i = D - 1; i >= 0; --i) {
      x[i] = r % st_->extent[i];
      r /= st_->extent[i];
    }
  }

  const geom::Stencil<D>* st_;
  std::int64_t nodes_ = 0;
  std::vector<std::unique_ptr<Level>> levels_;
  std::size_t live_ = 0;
  std::size_t allocs_ = 0;
};

// ---------------------------------------------------------------------
// Uniform staging accessors: the executor is templated on its staging
// store, and these overloads bridge the two supported types.
// ---------------------------------------------------------------------

template <int D>
inline const Word* store_find(const ValueMap<D>& m, const geom::Point<D>& q) {
  auto it = m.find(q);
  return it == m.end() ? nullptr : &it->second;
}

template <int D>
inline const Word* store_find(const StagingStore<D>& s,
                              const geom::Point<D>& q) {
  return s.find(q);
}

template <int D>
inline void store_insert(ValueMap<D>& m, const geom::Point<D>& q, Word v) {
  m.emplace(q, v);
}

template <int D>
inline void store_insert(StagingStore<D>& s, const geom::Point<D>& q,
                         Word v) {
  s.insert(q, v);
}

/// Slab allocations of a store, when it tracks them (0 for ValueMap —
/// the hash map's internal rehashes are exactly what it cannot see).
template <int D>
inline std::size_t store_level_allocs(const ValueMap<D>&) { return 0; }

template <int D>
inline std::size_t store_level_allocs(const StagingStore<D>& s) {
  return s.level_allocs();
}

// ---------------------------------------------------------------------
// Validation mode: when on, the executor re-materializes the
// preboundary / out-set vectors at every recursion level and asserts
// the topological-partition property (the pre-flat-staging behavior),
// and cross-checks every count against its materialized size. Defaults
// from the BSMP_VALIDATE environment variable at process start;
// settable per run, and per executor via ExecutorConfig::validate.
// ---------------------------------------------------------------------

/// Process-wide default for ExecutorConfig::validate.
bool validation_mode();

/// Override the process-wide default (tests; conformance suite).
void set_validation_mode(bool on);

}  // namespace bsmp::sep
