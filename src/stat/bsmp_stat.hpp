// bsmp-stat — analysis toolchain over the repo's JSON artifacts.
//
// The repo emits two artifact families: bsmp-metrics-v1..v3 reports
// (engine/metrics.hpp) and google-benchmark --benchmark_out files (the
// committed bench/BENCH_*.json baselines). This library gives both a
// uniform read path and three operations, exposed by the `bsmp-stat`
// binary (tools/bsmp_stat.cpp):
//
//   show  — human-readable report: manifest, per-pass attribution
//           (per-mechanism self-time with percentages, critical path,
//           phase matrix), calibration points. A run whose trace ring
//           buffers dropped events gets a loud banner: its attribution
//           under-counts and must not be trusted.
//   diff  — compare a candidate artifact against a baseline under a
//           declared tolerance spec (bench/tolerances.json). Two gate
//           classes: *ratio gates* relate numbers within the candidate
//           alone (simd >= 2x dense) — hardware-independent, always
//           enforced; *drift tolerances* compare candidate fields
//           against the baseline's — meaningful only on the same
//           hardware, so the diff refuses them (loudly, exit 0; exit 3
//           under --require-comparable) when hostname or num_cpus
//           differ or are unknown. Attribution from runs with drops is
//           skipped, not gated. Nonzero exit on regression makes this
//           the CI perf sentinel.
//   fit   — least-squares per-mechanism, per-range constants from a
//           metrics-v3 attribution.calibration_points block
//           (analytic::MechanismCalibration), reported against the
//           aggregate 3-constant fit on the same samples.
//
// Everything here is deterministic given the artifact bytes; all
// wall-clock nondeterminism lives in the artifacts themselves.
#pragma once

#include <iosfwd>
#include <string>

#include "core/json.hpp"

namespace bsmp::stat {

/// Artifact family, detected from the document shape — not the file
/// name, so renamed or piped artifacts classify the same.
enum class ArtifactKind {
  kMetrics,          ///< "schema": "bsmp-metrics-v*"
  kGoogleBenchmark,  ///< top-level "context" + "benchmarks"
  kUnknown,
};

/// A loaded artifact with its comparability identity lifted out of the
/// format-specific manifest ("" / 0 when the producer did not record
/// hardware — pre-v3 metrics files).
struct Artifact {
  ArtifactKind kind = ArtifactKind::kUnknown;
  core::json::Value root;
  std::string path;
  std::string schema;    ///< metrics schema string, or "google-benchmark"
  std::string name;      ///< report name / benchmark executable
  std::string hostname;  ///< manifest hostname / context.host_name
  int num_cpus = 0;      ///< manifest num_cpus / context.num_cpus
};

struct LoadResult {
  bool ok = false;
  Artifact artifact;
  std::string error;
};

/// Parse and classify a file. kUnknown documents load fine (show can
/// still dump them); parse/IO failures report in `error`.
LoadResult load_artifact(const std::string& path);

/// Whether drift comparisons between the two runs are meaningful: both
/// recorded a hardware identity and the identities match.
bool comparable_hardware(const Artifact& a, const Artifact& b);

/// Process exit codes of the CLI (and of run_diff): kOk covers both
/// "all gates passed" and "cleanly skipped" (cross-hardware baseline
/// without --require-comparable, untrusted attribution).
inline constexpr int kExitOk = 0;
inline constexpr int kExitRegression = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitRefused = 3;

/// `bsmp-stat show`: human-readable report on `os`.
int run_show(const Artifact& a, std::ostream& os);

struct DiffOptions {
  std::string tolerances_path;  ///< "" = structural checks only
  std::string report_path;      ///< also write the report here ("" = no)
  bool require_comparable = false;
};

/// `bsmp-stat diff baseline candidate`.
int run_diff(const Artifact& baseline, const Artifact& candidate,
             const DiffOptions& opt, std::ostream& os);

/// `bsmp-stat fit`: per-mechanism constants from a metrics-v3
/// artifact's calibration points.
int run_fit(const Artifact& a, std::ostream& os);

/// Full CLI: argv[1] is the subcommand. Writes usage to `err` on
/// kExitUsage.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace bsmp::stat
