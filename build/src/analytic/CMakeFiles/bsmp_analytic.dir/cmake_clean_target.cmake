file(REMOVE_RECURSE
  "libbsmp_analytic.a"
)
