// Shared harness for the reproduction benches. Every bench binary:
//
//   1. runs its table emitter (src/tables) twice — once on a 1-thread
//      engine::Pool and once on a hardware_concurrency pool, each with
//      a fresh PlanCache — and aborts if the two passes disagree on a
//      single table (the same check the tier-2 conformance suite
//      enforces under ctest);
//   2. prints the tables of the parallel pass, then an `# engine:` line
//      reporting the wall-clock speedup of pass 2 over pass 1 and the
//      PlanCache hit rate;
//   3. serializes both passes' engine metrics (per-point wall clock and
//      queue wait, per-sweep occupancy, cache hits/misses/builds,
//      per-phase duration histograms, run manifest) as
//      `metrics_<emitter>.json` under $BSMP_METRICS_DIR (default
//      ./metrics/) — the recorded threads=1 vs threads=N story CI
//      uploads as an artifact. With tracing on (BSMP_TRACE=1) each
//      emitter additionally flushes its span timeline as
//      `trace_<emitter>.json` (Chrome trace-event format, loadable in
//      ui.perfetto.dev) and the recorder is cleared between emitters so
//      each trace is attributable;
//   4. runs the registered google-benchmark kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/table.hpp"
#include "engine/attribution.hpp"
#include "engine/metrics.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "engine/trace.hpp"
#include "machine/spec.hpp"
#include "sep/simd.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "tables/emitters.hpp"
#include "workload/rules.hpp"

namespace bsmp::bench {

inline machine::MachineSpec spec(int d, std::int64_t n, std::int64_t p,
                                 std::int64_t m) {
  machine::MachineSpec s;
  s.d = d;
  s.n = n;
  s.p = p;
  s.m = m;
  return s;
}

struct EmitterPass {
  std::vector<tables::Emitted> artifacts;
  engine::MetricsPass metrics;  ///< threads, wall clock, cache, sweeps
};

inline EmitterPass run_pass(const tables::Emitter& emitter, int threads) {
  engine::Pool pool(threads);
  engine::PlanCache plans;
  engine::Metrics metrics;
  tables::EngineCtx ctx{&pool, &plans, &metrics};
  // The trace recorder and the arena are process-global; the pass's
  // histogram and "mem" blocks are the deltas across the pass, and the
  // attribution fold covers the spans that *started* during it (the
  // mark below scopes the fold — attribution is not delta-subtractable
  // the way the histograms are).
  const engine::trace::HistSnapshot hist_before =
      engine::trace::hist_snapshot();
  const std::uint64_t trace_mark = engine::trace::mark();
  const engine::ArenaStats mem_before = engine::Arena::instance().stats();
  auto t0 = std::chrono::steady_clock::now();
  EmitterPass pass;
  pass.artifacts = emitter.fn(ctx);
  pass.metrics.threads = threads;
  pass.metrics.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  pass.metrics.cache = plans.stats();
  pass.metrics.sweeps = metrics.snapshot();
  pass.metrics.hot = metrics.hot_snapshot();
  pass.metrics.tasks = pool.task_stats();
  pass.metrics.mem = engine::Arena::instance().stats() - mem_before;
  pass.metrics.histograms = engine::trace::hist_snapshot();
  pass.metrics.histograms -= hist_before;
  pass.metrics.attribution = engine::fold_attribution_since(trace_mark);
  pass.metrics.calibration = metrics.calibration_snapshot();
  return pass;
}

/// Emit the named tables with the dual-pass determinism check, print
/// the parallel pass, report speedup + cache hit rate, and serialize
/// both passes as metrics_<emitter>.json.
inline void emit_tables(const char* emitter_name) {
  const auto& emitter = tables::find_emitter(emitter_name);
  auto seq = run_pass(emitter, 1);
  int threads = engine::Pool::hardware_threads();
  auto par = run_pass(emitter, threads);

  if (seq.artifacts.size() != par.artifacts.size()) {
    std::cerr << "FATAL: " << emitter.name
              << " emitted a different table count at threads=1 vs threads="
              << threads << "\n";
    std::abort();
  }
  for (std::size_t i = 0; i < seq.artifacts.size(); ++i) {
    if (!(seq.artifacts[i].table == par.artifacts[i].table)) {
      std::cerr << "FATAL: table '" << par.artifacts[i].table.title()
                << "' differs between threads=1 and threads=" << threads
                << " — engine determinism broken\n";
      std::abort();
    }
  }

  for (const auto& a : par.artifacts) {
    a.table.print(std::cout);
    if (!a.note.empty()) std::cout << a.note << "\n";
  }

  engine::MetricsReport report;
  report.name = emitter.name;
  report.passes = {std::move(seq.metrics), std::move(par.metrics)};
  // The manifest reads the recorder's live state (event/drop counts,
  // digest), so build it before the per-emitter clear() below. The
  // SIMD ISA is stamped here because engine cannot call into sep
  // (layering).
  report.manifest = engine::trace::make_run_manifest(report.name);
  report.manifest.simd_isa = sep::simd::active_isa();
  std::string trace_path;
  bool trace_wrote = false;
  if (engine::trace::compiled() && engine::trace::enabled()) {
    trace_path = engine::trace_output_path(report.name);
    report.manifest.trace_file = trace_path;
    trace_wrote = engine::trace::write_chrome_json(trace_path,
                                                   report.manifest);
    // Reset so the next emitter's trace holds only its own spans.
    engine::trace::clear();
  }
  const auto path = engine::metrics_output_path(report.name);
  const bool wrote = report.write_json_file(path);

  std::printf(
      "# engine: threads=1 %.3fs, threads=%d %.3fs, speedup %.2fx; "
      "plan cache: %llu hits / %llu lookups (hit rate %.0f%%, "
      "%llu builds)\n",
      report.passes[0].seconds, threads, report.passes[1].seconds,
      report.speedup(),
      static_cast<unsigned long long>(report.passes[1].cache.hits),
      static_cast<unsigned long long>(report.passes[1].cache.lookups()),
      100.0 * report.passes[1].cache.hit_rate(),
      static_cast<unsigned long long>(report.passes[1].cache.builds));
  if (wrote)
    std::printf("# metrics: %s (%zu + %zu sweeps recorded)\n", path.c_str(),
                report.passes[0].sweeps.size(),
                report.passes[1].sweeps.size());
  else
    std::printf("# metrics: could not write %s\n", path.c_str());
  if (!trace_path.empty()) {
    if (trace_wrote)
      std::printf("# trace: %s (%llu events, %llu dropped)\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(
                      report.manifest.trace_events),
                  static_cast<unsigned long long>(
                      report.manifest.trace_dropped));
    else
      std::printf("# trace: could not write %s\n", trace_path.c_str());
  }
  std::printf("\n");
}

inline int run_bench_main(int argc, char** argv,
                          std::initializer_list<const char*> emitters) {
  for (const char* name : emitters) emit_tables(name);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bsmp::bench

/// The arguments are the registry names of this bench's table
/// emitters, in print order ("e6", "e6d", "cal").
#define BSMP_BENCH_MAIN(...)                                       \
  int main(int argc, char** argv) {                                \
    return ::bsmp::bench::run_bench_main(argc, argv,               \
                                         {__VA_ARGS__});           \
  }
