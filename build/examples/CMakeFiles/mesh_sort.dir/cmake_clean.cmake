file(REMOVE_RECURSE
  "CMakeFiles/mesh_sort.dir/mesh_sort.cpp.o"
  "CMakeFiles/mesh_sort.dir/mesh_sort.cpp.o.d"
  "mesh_sort"
  "mesh_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
