#include "engine/arena.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#include "engine/trace.hpp"

namespace bsmp::engine {

namespace {

std::atomic<bool>& arena_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("BSMP_ARENA");
    return env == nullptr || (std::strcmp(env, "0") != 0 &&
                              std::strcmp(env, "off") != 0);
  }();
  return flag;
}

// Power-of-two size classes from 64 B up; index = log2 of the class.
constexpr std::size_t kMinClassLog = 6;
constexpr std::size_t kNumClasses = 48;

std::size_t class_of(std::size_t bytes) {
  std::size_t lg = std::bit_width(bytes - 1);
  return lg < kMinClassLog ? kMinClassLog : lg;
}

}  // namespace

bool arena_enabled() {
  return arena_flag().load(std::memory_order_relaxed);
}

void set_arena_enabled(bool on) {
  arena_flag().store(on, std::memory_order_relaxed);
}

std::size_t default_plan_cache_bytes() {
  static const std::size_t bytes = [] {
    const char* env = std::getenv("BSMP_PLAN_CACHE_BYTES");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    return end == env ? std::size_t{0} : static_cast<std::size_t>(v);
  }();
  return bytes;
}

struct Arena::Impl {
  // Blocks a thread keeps to itself (lock-free reuse); overflow and
  // thread exit drain into the global pool.
  static constexpr std::size_t kThreadCap = 4;  // blocks per class
  // The global pool stops retaining beyond this (slabs free instead):
  // a backstop against pathological growth, not a working-set budget.
  static constexpr std::size_t kMaxHeldBytes = std::size_t{512} << 20;

  struct Pool {
    std::mutex mu;
    std::vector<void*> cls[kNumClasses];
  };
  Pool pool;

  std::atomic<std::uint64_t> cold_allocs{0};
  std::atomic<std::uint64_t> slab_reuses{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> scratch_checkouts{0};
  std::atomic<std::uint64_t> scratch_cold{0};
  std::atomic<std::uint64_t> bytes_held{0};
  std::atomic<std::uint64_t> bytes_live{0};
  std::atomic<std::uint64_t> peak_bytes{0};

  void note_peak() {
    std::uint64_t total = bytes_held.load(std::memory_order_relaxed) +
                          bytes_live.load(std::memory_order_relaxed);
    std::uint64_t peak = peak_bytes.load(std::memory_order_relaxed);
    while (total > peak &&
           !peak_bytes.compare_exchange_weak(peak, total,
                                             std::memory_order_relaxed)) {
    }
  }

  // Per-thread free lists. The destructor drains into the global pool
  // so a worker's cached slabs outlive the worker.
  struct ThreadCache {
    Impl* owner = nullptr;
    std::vector<void*> cls[kNumClasses];

    ~ThreadCache() {
      if (owner == nullptr) return;
      std::lock_guard<std::mutex> lk(owner->pool.mu);
      for (std::size_t c = 0; c < kNumClasses; ++c)
        for (void* p : cls[c]) owner->pool.cls[c].push_back(p);
    }
  };

  ThreadCache& cache() {
    thread_local ThreadCache tc;
    tc.owner = this;
    return tc;
  }

  void* pop(std::size_t c, std::size_t class_bytes) {
    ThreadCache& tc = cache();
    if (!tc.cls[c].empty()) {
      void* p = tc.cls[c].back();
      tc.cls[c].pop_back();
      bytes_held.fetch_sub(class_bytes, std::memory_order_relaxed);
      return p;
    }
    std::lock_guard<std::mutex> lk(pool.mu);
    if (pool.cls[c].empty()) return nullptr;
    void* p = pool.cls[c].back();
    pool.cls[c].pop_back();
    bytes_held.fetch_sub(class_bytes, std::memory_order_relaxed);
    return p;
  }

  void push(std::size_t c, std::size_t class_bytes, void* p) {
    if (bytes_held.load(std::memory_order_relaxed) + class_bytes >
        kMaxHeldBytes) {
      ::operator delete(p);
      return;
    }
    bytes_held.fetch_add(class_bytes, std::memory_order_relaxed);
    ThreadCache& tc = cache();
    if (tc.cls[c].size() < kThreadCap) {
      tc.cls[c].push_back(p);
      return;
    }
    std::lock_guard<std::mutex> lk(pool.mu);
    pool.cls[c].push_back(p);
  }
};

Arena& Arena::instance() {
  // Leaky singleton: worker ThreadCache destructors may run at any
  // point of process teardown and must find the pool alive.
  static Arena* arena = new Arena();
  return *arena;
}

Arena::Impl& Arena::impl() {
  static Impl* impl = new Impl();
  return *impl;
}

Arena::Block Arena::acquire(std::size_t bytes) {
  if (bytes == 0) return Block{};
  Impl& im = impl();
  const std::size_t c = class_of(bytes);
  const std::size_t class_bytes = std::size_t{1} << c;
  Block b;
  b.bytes = class_bytes;
  if (arena_enabled()) {
    if (void* p = im.pop(c, class_bytes)) {
      b.data = p;
      b.recycled = true;
      im.slab_reuses.fetch_add(1, std::memory_order_relaxed);
      im.bytes_live.fetch_add(class_bytes, std::memory_order_relaxed);
      im.note_peak();
      return b;
    }
  }
  b.data = ::operator new(class_bytes);
  b.recycled = false;
  im.cold_allocs.fetch_add(1, std::memory_order_relaxed);
  im.bytes_live.fetch_add(class_bytes, std::memory_order_relaxed);
  im.note_peak();
  trace::instant(trace::Cat::kTask, "arena-cold",
                 static_cast<std::int64_t>(class_bytes));
  return b;
}

void Arena::release(Block b) {
  if (b.data == nullptr) return;
  Impl& im = impl();
  im.releases.fetch_add(1, std::memory_order_relaxed);
  im.bytes_live.fetch_sub(b.bytes, std::memory_order_relaxed);
  if (!arena_enabled()) {
    ::operator delete(b.data);
    return;
  }
  im.push(class_of(b.bytes), b.bytes, b.data);
}

ArenaStats Arena::stats() const {
  Impl& im = const_cast<Arena*>(this)->impl();
  ArenaStats s;
  s.cold_allocs = im.cold_allocs.load(std::memory_order_relaxed);
  s.slab_reuses = im.slab_reuses.load(std::memory_order_relaxed);
  s.releases = im.releases.load(std::memory_order_relaxed);
  s.scratch_checkouts = im.scratch_checkouts.load(std::memory_order_relaxed);
  s.scratch_cold = im.scratch_cold.load(std::memory_order_relaxed);
  s.bytes_held = im.bytes_held.load(std::memory_order_relaxed);
  s.bytes_live = im.bytes_live.load(std::memory_order_relaxed);
  s.peak_bytes = im.peak_bytes.load(std::memory_order_relaxed);
  return s;
}

void Arena::trim() {
  Impl& im = impl();
  Impl::ThreadCache& tc = im.cache();
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const std::size_t class_bytes = std::size_t{1} << c;
    for (void* p : tc.cls[c]) {
      ::operator delete(p);
      im.bytes_held.fetch_sub(class_bytes, std::memory_order_relaxed);
    }
    tc.cls[c].clear();
  }
  std::lock_guard<std::mutex> lk(im.pool.mu);
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const std::size_t class_bytes = std::size_t{1} << c;
    for (void* p : im.pool.cls[c]) {
      ::operator delete(p);
      im.bytes_held.fetch_sub(class_bytes, std::memory_order_relaxed);
    }
    im.pool.cls[c].clear();
  }
}

void Arena::prime_thread() {
  impl().cache();
}

void Arena::note_scratch(bool cold) {
  Impl& im = impl();
  im.scratch_checkouts.fetch_add(1, std::memory_order_relaxed);
  if (cold) im.scratch_cold.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace bsmp::engine
