# Empty dependencies file for test_args_stats.
# This may be replaced when dependencies are built.
