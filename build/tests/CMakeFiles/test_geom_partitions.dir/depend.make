# Empty dependencies file for test_geom_partitions.
# This may be replaced when dependencies are built.
