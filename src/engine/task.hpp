// Work-stealing fork-join layer under the sweep engine.
//
// Pool::parallel_for distributes *sweep points*; this layer lets work
// nest *inside* a point: any code running on a pool thread (a sweep
// body, or a task itself) can open a TaskScope, fork subtasks into the
// same worker set, and join them — no second pool, no dedicated
// threads. The separator executor uses it to run sibling subregions of
// one recursion node concurrently (doc/ENGINE.md "Task layer").
//
// Scheduling model:
//   * every pool thread (workers and the parallel_for caller) owns one
//     deque slot of the pool's TaskScheduler;
//   * fork() pushes onto the forking thread's deque (LIFO for the
//     owner — depth-first, cache-friendly);
//   * an idle thread steals the *older half* of a victim's deque
//     (breadth-first for thieves — big subtrees migrate, not leaves);
//   * join() helps: it runs queued tasks (its own first, then steals)
//     until the scope's forks have all completed, so a joining thread
//     is never parked while runnable work exists.
//
// Determinism contract: fork() with no ambient scheduler — or a
// single-thread one — runs the task inline, immediately, on the
// calling thread, in exact fork order. That path is the sequential
// reference the conformance suite compares against; it performs no
// queuing and no synchronization.
//
// Exceptions: a task's exception is captured in its scope; join()
// rethrows the exception of the *lowest fork index* that failed, after
// every fork has completed — the same deterministic-error contract as
// Pool::parallel_for.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/trace.hpp"

namespace bsmp::engine {

class TaskScope;

/// Which mechanism a TaskScope forks for. Fork/park counters are split
/// by phase so the metrics-v2 `tasks.phases` block can attribute
/// parallelism (and its idle cost) to the simulator mechanism that
/// created it — the advisor's per-mechanism calibration reads these.
enum class ForkPhase : int {
  kNone = 0,             ///< unattributed scope (default TaskScope())
  kMachineTile,          ///< multiproc top-level machine-tile wavefronts
  kRegime1Relocate,      ///< regime-1 relocation subtrees
  kRegime2Wave,          ///< regime-2 subtile wavefronts
  kRegime2Subtile,       ///< executor forks inside a regime-2 subtile body
  kExecutorLeaf,         ///< standalone executor sibling-region forks
  kCount,
};

inline constexpr std::size_t kNumForkPhases =
    static_cast<std::size_t>(ForkPhase::kCount);

/// Stable name of a phase, matching the trace span names where one
/// exists ("machine-tile", "regime1-relocate", ...).
const char* fork_phase_name(ForkPhase p);

/// Inverse of fork_phase_name, for the attribution fold's span-name ->
/// phase classification. kNone for names no phase claims.
ForkPhase fork_phase_from_name(std::string_view name);

/// Per-phase slice of the task counters (metrics-v2 `tasks.phases`).
struct PhaseTaskStats {
  std::uint64_t spawned = 0;     ///< tasks pushed onto a deque
  std::uint64_t inlined = 0;     ///< forks executed inline (serial path)
  std::uint64_t join_waits = 0;  ///< joins that parked (no runnable work)
  std::uint64_t park_ns = 0;     ///< wall time spent parked in join()
};

inline PhaseTaskStats operator-(PhaseTaskStats a, const PhaseTaskStats& b) {
  a.spawned -= b.spawned;
  a.inlined -= b.inlined;
  a.join_waits -= b.join_waits;
  a.park_ns -= b.park_ns;
  return a;
}

/// Task-layer counters of one scheduler (serialized into the per-pass
/// and per-sweep `tasks` blocks of the bsmp-metrics-v2 artifact). All
/// monotone; reset per measurement pass via Pool::reset_task_stats(),
/// or attributed per sweep via the operator- delta.
struct TaskStats {
  std::uint64_t spawned = 0;     ///< tasks pushed onto a deque
  std::uint64_t inlined = 0;     ///< forks executed inline (serial path)
  std::uint64_t stolen = 0;      ///< tasks migrated by steal operations
  std::uint64_t steal_ops = 0;   ///< successful steal-half operations
  std::uint64_t join_waits = 0;  ///< joins that parked (no runnable work)
  /// Same counters split by the forking mechanism (indexed by ForkPhase).
  std::array<PhaseTaskStats, kNumForkPhases> phase{};
};

/// Counter-wise difference: scope a scheduler's monotone counters to
/// one sweep or pass (`after - before`).
inline TaskStats operator-(TaskStats a, const TaskStats& b) {
  a.spawned -= b.spawned;
  a.inlined -= b.inlined;
  a.stolen -= b.stolen;
  a.steal_ops -= b.steal_ops;
  a.join_waits -= b.join_waits;
  for (std::size_t i = 0; i < kNumForkPhases; ++i)
    a.phase[i] = a.phase[i] - b.phase[i];
  return a;
}

/// Per-worker task deques plus the steal protocol. One per Pool; the
/// pool's threads each bind one slot (TaskScheduler::Bind) so TaskScope
/// can find the ambient scheduler through a thread-local.
class TaskScheduler {
 public:
  /// One deque slot per pool thread (workers + the parallel_for caller).
  explicit TaskScheduler(int slots);

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Number of deque slots (== the owning pool's size()).
  int slots() const { return nslots_; }

  /// Whether forked tasks can actually run concurrently. False for a
  /// single-slot scheduler: TaskScope then runs forks inline, in fork
  /// order — the sequential reference execution.
  bool parallel() const { return nslots_ > 1; }

  /// Scheduler the calling thread is bound to, or nullptr. TaskScope
  /// captures this at construction.
  static TaskScheduler* current();
  /// Slot of the calling thread (meaningful when current() != nullptr).
  static int current_slot();

  /// RAII binding of the calling thread to a deque slot. Pool binds its
  /// workers for their lifetime and the parallel_for caller for the
  /// duration of the job; Pool::bind_caller() exposes the same binding
  /// for code that drives fork-join work without a surrounding
  /// parallel_for. Saves and restores the previous binding.
  ///
  /// At most one thread may hold a given slot's binding at a time
  /// (slots are deques with a single owner); binding a slot another
  /// thread currently holds throws precondition_error rather than
  /// silently sharing the deque. Re-binding a slot the calling thread
  /// already holds is allowed (nested bindings on one thread).
  class Bind {
   public:
    Bind(TaskScheduler* sched, int slot);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    TaskScheduler* prev_sched_;
    int prev_slot_;
    TaskScheduler* sched_;
    int slot_;
    bool owned_ = false;  // this Bind claimed the slot (outermost holder)
  };

  /// Hook invoked after a task is enqueued; the Pool uses it to wake
  /// idle workers so they start draining the deques.
  void set_wake(std::function<void()> wake) { wake_ = std::move(wake); }

  /// True while any task sits in a deque.
  bool has_pending() const {
    return pending_.load(std::memory_order_acquire) != 0;
  }

  /// Run queued tasks until none are pending (idle pool workers).
  void run_pending(int slot);

  /// Snapshot of the counters (relaxed reads; exact once quiescent).
  TaskStats stats() const;
  void reset_stats();

 private:
  friend class TaskScope;

  struct Task {
    std::function<void()> fn;
    TaskScope* scope = nullptr;
    std::size_t index = 0;
#if BSMP_TRACE_ENABLED
    std::uint64_t enq_ns = 0;  ///< push time, for the steal-latency histogram
#endif
  };

  struct Slot {
    std::mutex mu;
    std::deque<Task> q;
    // Thread currently bound to this slot (default id when unbound);
    // enforces the one-owner rule in Bind.
    std::atomic<std::thread::id> owner{};
  };

  /// Enqueue onto `slot`'s deque and wake sleepers.
  void push(int slot, Task t);

  /// Pop the newest task of the own deque, else steal the older half of
  /// some victim's deque (executing the first, depositing the rest on
  /// the own deque). False when every deque is empty.
  bool try_acquire(int slot, Task& out);

  /// Execute a task: capture its exception into the scope, then mark it
  /// finished (waking joiners).
  static void run(Task& t);

  /// Wake joiners parked in TaskScope::join (task finished or enqueued).
  void notify_progress();

  int nslots_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::size_t> pending_{0};
  std::function<void()> wake_;

  // Parking lot for joiners that found no runnable work.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> inlined_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> steal_ops_{0};
  std::atomic<std::uint64_t> join_waits_{0};

  /// Per-phase slices of spawned / inlined / join_waits / park_ns.
  struct PhaseCounters {
    std::atomic<std::uint64_t> spawned{0};
    std::atomic<std::uint64_t> inlined{0};
    std::atomic<std::uint64_t> join_waits{0};
    std::atomic<std::uint64_t> park_ns{0};
  };
  std::array<PhaseCounters, kNumForkPhases> phase_{};
};

/// A fork-join region. fork() schedules (or inlines) a task; join()
/// blocks until every fork has completed, helping with queued work
/// meanwhile, and rethrows the lowest-fork-index exception. Scopes
/// nest freely: a task may open its own TaskScope on the same
/// scheduler, and nested Pool::parallel_for calls are routed through
/// one (pool.hpp).
class TaskScope {
 public:
  /// Captures the calling thread's ambient scheduler (may be none).
  /// `phase` attributes this scope's fork/park counters to one
  /// mechanism in the metrics-v2 `tasks.phases` block.
  explicit TaskScope(ForkPhase phase = ForkPhase::kNone);
  /// Joins (discarding any not-yet-rethrown exception) if the caller
  /// did not; prefer an explicit join().
  ~TaskScope();

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  /// Whether forks may run concurrently (ambient multi-slot scheduler).
  /// When false every fork runs inline, in fork order.
  bool parallel() const { return sched_ != nullptr && sched_->parallel(); }

  /// Schedule fn; runs inline immediately when !parallel().
  void fork(std::function<void()> fn);

  /// Wait for all forks, helping with queued tasks; rethrows the
  /// exception of the lowest-index failed fork, if any.
  void join();

 private:
  friend class TaskScheduler;

  void record_error(std::size_t index);
  void finished();

  TaskScheduler* sched_;
  int slot_;
  ForkPhase phase_;
  std::size_t next_index_ = 0;
  std::atomic<std::size_t> outstanding_{0};
  bool joined_ = false;

  std::mutex emu_;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
};

}  // namespace bsmp::engine
