file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_naive.dir/bench_e2_naive.cpp.o"
  "CMakeFiles/bench_e2_naive.dir/bench_e2_naive.cpp.o.d"
  "bench_e2_naive"
  "bench_e2_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
