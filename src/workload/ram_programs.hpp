// Ready-made H-RAM machine programs. Each builder returns a RamProgram
// plus the memory layout convention it expects; run them with
// hram::run_ram_program. Their virtual running times exhibit the data
// locality the paper's introduction discusses: the same algorithm
// placed at different addresses runs at measurably different speeds.
#pragma once

#include "hram/ram_machine.hpp"

namespace bsmp::workload {

/// Sum of the `count` words starting at `base`; result in the
/// accumulator. Scratch registers live at addresses 0..3 (near the
/// CPU), so the dominant charge is the streaming read of the array.
hram::RamProgram ram_sum(std::int64_t base, std::int64_t count);

/// Reverse the `count`-word array at `base` in place.
hram::RamProgram ram_reverse(std::int64_t base, std::int64_t count);

/// Dot product of the `count`-word arrays at `a` and `b`; result in
/// the accumulator (wrap-around arithmetic).
hram::RamProgram ram_dot(std::int64_t a, std::int64_t b,
                         std::int64_t count);

/// Row-major `side x side` matrix multiply: C = A * B, with A at `a`,
/// B at `b`, C at `c`. The straightforward triple loop — the
/// introduction's "straightforward implementation" whose access
/// overhead is Θ(sqrt(n)) per operation on the d=2 H-RAM.
hram::RamProgram ram_matmul(std::int64_t a, std::int64_t b, std::int64_t c,
                            std::int64_t side);

}  // namespace bsmp::workload
