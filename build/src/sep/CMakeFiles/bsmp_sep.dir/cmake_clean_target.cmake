file(REMOVE_RECURSE
  "libbsmp_sep.a"
)
