file(REMOVE_RECURSE
  "CMakeFiles/bsmp_sep.dir/bounds.cpp.o"
  "CMakeFiles/bsmp_sep.dir/bounds.cpp.o.d"
  "libbsmp_sep.a"
  "libbsmp_sep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_sep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
