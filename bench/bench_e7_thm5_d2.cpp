// E7 — Theorem 5: M2(n,1,1) simulates a Tn-step M2(n,n,1) with
// slowdown O(n log n), via the octahedron/tetrahedron separator in the
// three-dimensional space-time lattice.
#include "bench_common.hpp"
#include "core/logmath.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  core::Table t("E7: Theorem 5 — D&C uniprocessor, d=2, m=1",
                {"n", "side", "T1/Tn (D&C)", "n*logn bound", "ratio",
                 "naive T1/Tn", "D&C gain"});
  for (std::int64_t side : {8, 16, 32, 48}) {
    std::int64_t n = side * side;
    // One simulation cycle covers sqrt(n) steps (Theorem 5's proof).
    auto g = workload::make_mix_guest<2>({side, side}, side, 1, 10);
    auto ref = sim::reference_run<2>(g);
    auto dc = sim::simulate_dc_uniproc<2>(g, spec(2, n, 1, 1));
    bench::require_equivalent<2>(dc, ref, "dc d=2");
    auto nv = sim::simulate_naive<2>(g, spec(2, n, 1, 1));
    double bound = analytic::thm5_bound((double)n);
    t.add_row({(long long)n, (long long)side, dc.slowdown(), bound,
               dc.slowdown() / bound, nv.slowdown(),
               nv.slowdown() / dc.slowdown()});
  }
  t.print(std::cout);
  std::cout << "# Expected: ratio flat (Θ(n log n)); naive is Θ(n^{3/2}),\n"
               "# so the gain grows like sqrt(n)/log n.\n\n";
}

void BM_dc_thm5(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto g = workload::make_mix_guest<2>({side, side}, side, 1, 10);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_dc_uniproc<2>(g, spec(2, side * side, 1, 1)));
}
BENCHMARK(BM_dc_thm5)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BSMP_BENCH_MAIN(emit)
