# Empty dependencies file for test_geom_region.
# This may be replaced when dependencies are built.
