// Running statistics accumulator used by benches and sweep tools:
// count, min, max, mean, geometric mean — enough to summarize a
// measured/bound ratio column and assert its flatness.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/expect.hpp"

namespace bsmp::core {

class RunningStats {
 public:
  void add(double x) {
    BSMP_REQUIRE_MSG(std::isfinite(x), "non-finite sample");
    ++n_;
    sum_ += x;
    if (x > 0) {
      log_sum_ += std::log(x);
      ++pos_;
    }
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Geometric mean of the positive samples.
  double geomean() const {
    return pos_ ? std::exp(log_sum_ / static_cast<double>(pos_)) : 0.0;
  }

  /// max/min — the "flatness" of a ratio column (1.0 = perfectly flat).
  double spread() const {
    if (!n_ || min_ <= 0) return std::numeric_limits<double>::infinity();
    return max_ / min_;
  }

 private:
  std::int64_t n_ = 0, pos_ = 0;
  double sum_ = 0, log_sum_ = 0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

}  // namespace bsmp::core
