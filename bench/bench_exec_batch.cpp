// ENS — the bit-sliced batching microbench. Prints the "ens" artifact
// (64 perturbed initial conditions in one charged pass, with the
// batch-charges == scalar-charges invariant asserted), serializes the
// measured throughputs as metrics_ens.json, then runs google-benchmark
// kernels pitting ONE packed 64-lane execution against 64 scalar
// executions of the same ensemble. Scenario throughput is
// lane-vertices/sec (lanes x vertices / wall clock): both kernels push
// the same 64 x V lane-vertices per iteration, so the counter ratio is
// the batching speedup directly. A Release run's --benchmark_out is
// committed as bench/BENCH_exec_batch.json; the acceptance bar is
// batch >= 16x scalar scenarios_per_sec on ens_d1_n256 (gated in CI).
#include "bench_common.hpp"
#include "sep/guest.hpp"
#include "tables/hotpath.hpp"

using namespace bsmp;

namespace {

/// The rule110 damage-spreading ensemble of tables/ensemble.cpp: base
/// random 0/1 row splatted across all lanes, lane l flipping node
/// l*stride at t=0.
sep::Guest<1> ens110_guest(std::int64_t n, std::int64_t horizon,
                           std::uint64_t seed) {
  sep::Guest<1> g;
  g.stencil.extent = {n};
  g.stencil.horizon = horizon;
  g.stencil.m = 1;
  g.rule = workload::rule110_lanes();
  const std::int64_t stride = n / sep::kLanes;
  auto base = workload::random_input<1>(seed);
  g.input = [base, stride](const std::array<std::int64_t, 1>& x,
                           std::int64_t cell) -> sep::Word {
    sep::Word w = (base(x, cell) & 1u) ? ~sep::Word{0} : sep::Word{0};
    if (x[0] % stride == 0 && x[0] / stride < sep::kLanes)
      w ^= sep::Word{1} << (x[0] / stride);
    return w;
  };
  return g;
}

/// Scenario l of the ensemble as a scalar guest: the scalar rule110
/// driven by bit l of the packed input.
sep::Guest<1> ens110_lane_guest(const sep::Guest<1>& packed, int lane) {
  sep::Guest<1> g;
  g.stencil = packed.stencil;
  g.rule = workload::rule110();
  g.input = [in = packed.input, lane](const std::array<std::int64_t, 1>& x,
                                      std::int64_t cell) -> sep::Word {
    return (in(x, cell) >> lane) & sep::Word{1};
  };
  return g;
}

/// The d=2 linear ensemble: every bit of the random input words is an
/// independent scenario of the GF(2)-linear xor rule.
sep::Guest<2> ensxor_guest(std::int64_t w, std::int64_t horizon,
                           std::uint64_t seed) {
  sep::Guest<2> g;
  g.stencil.extent = {w, w};
  g.stencil.horizon = horizon;
  g.stencil.m = 2;
  g.rule = workload::xor_rule<2>();
  g.input = workload::random_input<2>(seed);
  return g;
}

sep::Guest<2> ensxor_lane_guest(const sep::Guest<2>& packed, int lane) {
  sep::Guest<2> g;
  g.stencil = packed.stencil;
  g.rule = packed.rule;
  g.input = [in = packed.input, lane](const std::array<std::int64_t, 2>& x,
                                      std::int64_t cell) -> sep::Word {
    return (in(x, cell) >> lane) & sep::Word{1};
  };
  return g;
}

/// Report lane-vertices/sec: `lanes` scenarios advanced across
/// `vertices` space-time points per iteration.
void report(benchmark::State& state, std::int64_t vertices, int lanes) {
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
  state.counters["scenarios_per_sec"] =
      benchmark::Counter(static_cast<double>(lanes * vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
  state.counters["lanes"] = benchmark::Counter(static_cast<double>(lanes));
}

/// One packed run: all 64 scenarios ride one charged pass.
template <int D>
void bm_batch(benchmark::State& state, const sep::Guest<D>& packed) {
  std::int64_t vertices = 0;
  for (auto _ : state) {
    sep::StagingStore<D> staging(&packed.stencil);
    auto s = tables::hotpath::run_dense<D>(packed, staging);
    vertices = s.vertices;
    benchmark::DoNotOptimize(s.total_cost);
  }
  report(state, vertices, sep::kLanes);
}

/// The unbatched baseline: the same 64 scenarios as 64 scalar runs.
template <int D>
void bm_scalar_x64(benchmark::State& state,
                   const std::array<sep::Guest<D>, sep::kLanes>& lanes) {
  std::int64_t vertices = 0;
  for (auto _ : state) {
    for (const auto& g : lanes) {
      sep::StagingStore<D> staging(&g.stencil);
      auto s = tables::hotpath::run_dense<D>(g, staging);
      vertices = s.vertices;
      benchmark::DoNotOptimize(s.total_cost);
    }
  }
  report(state, vertices, sep::kLanes);
}

void BM_ens_d1_n256_batch(benchmark::State& state) {
  bm_batch<1>(state, ens110_guest(256, 256, 11));
}
void BM_ens_d1_n256_scalar_x64(benchmark::State& state) {
  auto packed = ens110_guest(256, 256, 11);
  std::array<sep::Guest<1>, sep::kLanes> lanes;
  for (int l = 0; l < sep::kLanes; ++l)
    lanes[static_cast<std::size_t>(l)] = ens110_lane_guest(packed, l);
  bm_scalar_x64<1>(state, lanes);
}
void BM_ens_d2_w24_batch(benchmark::State& state) {
  bm_batch<2>(state, ensxor_guest(24, 48, 13));
}
void BM_ens_d2_w24_scalar_x64(benchmark::State& state) {
  auto packed = ensxor_guest(24, 48, 13);
  std::array<sep::Guest<2>, sep::kLanes> lanes;
  for (int l = 0; l < sep::kLanes; ++l)
    lanes[static_cast<std::size_t>(l)] = ensxor_lane_guest(packed, l);
  bm_scalar_x64<2>(state, lanes);
}

BENCHMARK(BM_ens_d1_n256_batch);
BENCHMARK(BM_ens_d1_n256_scalar_x64);
BENCHMARK(BM_ens_d2_w24_batch);
BENCHMARK(BM_ens_d2_w24_scalar_x64);

}  // namespace

BSMP_BENCH_MAIN("ens")
