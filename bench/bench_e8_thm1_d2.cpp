// E8 — Theorem 1 at d=2: the multiprocessor mesh simulation. The paper
// states the bound and defers the construction to its companion
// report [BP95a]; we run the d=2 analogue of the Section-4.2 scheme
// (Regime 1 relocation + Regime 2 cooperating subtiles on the
// sqrt(p) x sqrt(p) processor grid) and compare with the closed form.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  {
    std::int64_t side = 16, n = side * side;
    core::Table t("E8a: Theorem 1 (d=2) — m sweep, n=256, p=4",
                  {"m", "range", "Tp/Tn", "bound (n/p)A", "ratio", "util"});
    for (std::int64_t m : {1, 2, 4, 8, 16}) {
      auto g = workload::make_mix_guest<2>({side, side}, side, m, 11);
      auto ref = sim::reference_run<2>(g);
      sim::MultiprocConfig cfg;
      cfg.s = 4;  // sqrt(n/p) = sqrt(64) = 8 strips of width 4 per dim
      auto res = sim::simulate_multiproc<2>(g, spec(2, n, 4, m), cfg);
      bench::require_equivalent<2>(res, ref, "multiproc d=2 m-sweep");
      double bound =
          analytic::slowdown_bound(2, (double)n, (double)m, 4.0);
      t.add_row({(long long)m,
                 std::string(analytic::to_string(
                     analytic::classify_range(2, n, m, 4))),
                 res.slowdown(), bound, res.slowdown() / bound,
                 res.utilization});
    }
    t.print(std::cout);
  }
  {
    std::int64_t side = 16, n = side * side, m = 2;
    core::Table t("E8b: Theorem 1 (d=2) — p sweep, n=256, m=2",
                  {"p", "Tp/Tn", "bound", "ratio", "Brent n/p"});
    for (std::int64_t p : {1, 4, 16}) {
      auto g = workload::make_mix_guest<2>({side, side}, side, m, 12);
      auto ref = sim::reference_run<2>(g);
      sim::MultiprocConfig cfg;
      cfg.s = std::max<std::int64_t>(
          1, side / (2 * std::max<std::int64_t>(
                             1, (std::int64_t)std::sqrt((double)p))));
      auto res = sim::simulate_multiproc<2>(g, spec(2, n, p, m), cfg);
      bench::require_equivalent<2>(res, ref, "multiproc d=2 p-sweep");
      double bound =
          analytic::slowdown_bound(2, (double)n, (double)m, (double)p);
      t.add_row({(long long)p, res.slowdown(), bound,
                 res.slowdown() / bound, (double)n / (double)p});
    }
    t.print(std::cout);
    std::cout << "# d=2 scheme is ours (paper defers details to [BP95a]);\n"
                 "# the measured/bound ratio staying Θ(1) validates it.\n\n";
  }
}

void BM_multiproc_d2(benchmark::State& state) {
  std::int64_t side = 16;
  auto g = workload::make_mix_guest<2>({side, side}, side, 2, 11);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_multiproc<2>(g, spec(2, side * side, 4, 2), cfg));
}
BENCHMARK(BM_multiproc_d2);

}  // namespace

BSMP_BENCH_MAIN(emit)
