// PARX — the fork-join executor bench. No table emitter: the subject
// is sep::Executor's parallel recursion itself, so this binary uses a
// custom main instead of BSMP_BENCH_MAIN (the emitter registry stays
// at its thirteen conformance-checked entries).
//
// What it does, in order:
//
//   1. conformance gate: runs the full dense space-time volume
//      (tables::hotpath::run_dense) serially (no ambient scheduler,
//      grain active -> every fork inlines) and again with the caller
//      bound to a hardware_concurrency engine::Pool, and aborts unless
//      vertices, charged total, peak staging, level-slab allocs, and
//      every final staging value are identical — the same oracle the
//      tier-2 suite enforces, exercised through the nested path;
//   2. serializes both gate passes (wall clock + task counters) as
//      metrics_exec_parallel.json;
//   3. runs google-benchmark kernels for the same volumes:
//      serial (grain off — PR 3's hot path, comparable against
//      BENCH_exec_hotpath.json dense), forkjoin_t1 (grain on, no
//      scheduler: measures pure fork-bookkeeping overhead; the
//      acceptance bar is within 10% of serial), and forkjoin_tN
//      (caller bound to a Pool: the actual speedup). A Release run's
//      --benchmark_out is committed as bench/BENCH_exec_parallel.json.
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "tables/hotpath.hpp"

using namespace bsmp;

namespace {

// Fork above 64-wide regions in d=1 (three forking recursion levels
// on w512) and above 16-wide regions in d=2 (the w48 volume tops out
// at width 48); leaves stay serial in both.
constexpr std::int64_t kGrainD1 = 64;
constexpr std::int64_t kGrainD2 = 16;

// At least two slots even on a single-core host, so the scheduler is
// parallel() and the gate/tN kernels really exercise push + steal
// (oversubscribed on one core, but determinism is the point).
int pool_threads() {
  return std::max(2, engine::Pool::hardware_threads());
}

template <int D>
sep::Guest<D> par_guest(std::array<std::int64_t, D> extent,
                        std::int64_t horizon, std::int64_t m) {
  return workload::make_mix_guest<D>(extent, horizon, m, 7);
}

template <int D>
struct RunOut {
  tables::hotpath::ExecStats stats;
  std::vector<std::pair<geom::Point<D>, sep::Word>> fin;
};

template <int D>
RunOut<D> run_once(const sep::Guest<D>& g) {
  sep::StagingStore<D> staging(&g.stencil);
  RunOut<D> out;
  out.stats = tables::hotpath::run_dense<D>(g, staging);
  sep::store_for_each(staging, [&](const geom::Point<D>& q, sep::Word v) {
    out.fin.emplace_back(q, v);
  });
  std::sort(out.fin.begin(), out.fin.end(),
            [](const auto& a, const auto& b) {
              if (a.first.t != b.first.t) return a.first.t < b.first.t;
              return a.first.x < b.first.x;
            });
  return out;
}

template <int D>
void check_identical(const char* what, const RunOut<D>& seq,
                     const RunOut<D>& par) {
  const auto& a = seq.stats;
  const auto& b = par.stats;
  if (a.vertices != b.vertices || a.total_cost != b.total_cost ||
      a.peak_staging_words != b.peak_staging_words ||
      a.staging_allocs != b.staging_allocs || seq.fin != par.fin) {
    std::cerr << "FATAL: " << what
              << " differs between serial and pool-bound fork-join "
                 "execution — parallel recursion determinism broken\n";
    std::abort();
  }
}

/// The dual-pass determinism gate + metrics_exec_parallel.json.
void conformance_gate(int threads) {
  engine::MetricsReport report;
  report.name = "exec_parallel";

  auto gate = [&](auto tag, auto extent, std::int64_t horizon,
                  std::int64_t m, std::int64_t grain, const char* what) {
    constexpr int D = decltype(tag)::value;
    sep::set_default_parallel_grain(grain);
    auto g = par_guest<D>(extent, horizon, m);

    engine::MetricsPass seq_pass;
    seq_pass.threads = 1;
    auto t0 = std::chrono::steady_clock::now();
    auto seq = run_once<D>(g);  // no ambient scheduler: forks inline
    seq_pass.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    engine::Pool pool(threads);
    engine::MetricsPass par_pass;
    par_pass.threads = threads;
    t0 = std::chrono::steady_clock::now();
    RunOut<D> par;
    {
      auto bind = pool.bind_caller();
      par = run_once<D>(g);
    }
    par_pass.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    par_pass.tasks = pool.task_stats();

    check_identical(what, seq, par);
    report.passes.push_back(std::move(seq_pass));
    report.passes.push_back(std::move(par_pass));
    std::printf("# %s: serial %.3fs, threads=%d %.3fs (%lld vertices, "
                "%llu tasks spawned, %llu stolen)\n",
                what, report.passes[report.passes.size() - 2].seconds,
                threads, par_pass.seconds,
                static_cast<long long>(par.stats.vertices),
                static_cast<unsigned long long>(par_pass.tasks.spawned),
                static_cast<unsigned long long>(par_pass.tasks.stolen));
  };

  gate(std::integral_constant<int, 1>{}, std::array<std::int64_t, 1>{512},
       std::int64_t{512}, std::int64_t{8}, kGrainD1, "exec_d1_w512");
  gate(std::integral_constant<int, 2>{}, std::array<std::int64_t, 2>{48, 48},
       std::int64_t{48}, std::int64_t{4}, kGrainD2, "exec_d2_w48");
  sep::set_default_parallel_grain(0);

  report.manifest = engine::trace::make_run_manifest(report.name);
  const auto path = engine::metrics_output_path(report.name);
  if (report.write_json_file(path))
    std::printf("# metrics: %s\n\n", path.c_str());
  else
    std::printf("# metrics: could not write %s\n\n", path.c_str());
}

// --- google-benchmark kernels -------------------------------------

template <int D>
void bm_volume(benchmark::State& state,
               std::array<std::int64_t, D> extent, std::int64_t horizon,
               std::int64_t m, std::int64_t grain, int threads) {
  sep::set_default_parallel_grain(grain);
  auto g = par_guest<D>(extent, horizon, m);
  std::optional<engine::Pool> pool;
  if (threads > 1) {
    pool.emplace(threads);
    pool->reset_task_stats();
  }
  std::int64_t vertices = 0;
  auto loop = [&] {
    for (auto _ : state) {
      sep::StagingStore<D> staging(&g.stencil);
      auto s = tables::hotpath::run_dense<D>(g, staging);
      vertices = s.vertices;
      benchmark::DoNotOptimize(s.total_cost);
    }
  };
  if (pool) {
    auto bind = pool->bind_caller();  // Bind is scoped, not movable
    loop();
  } else {
    loop();
  }
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
  if (pool) {
    auto ts = pool->task_stats();
    state.counters["tasks_spawned"] = static_cast<double>(ts.spawned);
    state.counters["tasks_stolen"] = static_cast<double>(ts.stolen);
    state.counters["steal_ops"] = static_cast<double>(ts.steal_ops);
    state.counters["join_waits"] = static_cast<double>(ts.join_waits);
  }
  sep::set_default_parallel_grain(0);
}

void BM_exec_d1_w512_serial(benchmark::State& state) {
  bm_volume<1>(state, {512}, 512, 8, 0, 1);
}
void BM_exec_d1_w512_forkjoin_t1(benchmark::State& state) {
  bm_volume<1>(state, {512}, 512, 8, kGrainD1, 1);
}
void BM_exec_d1_w512_forkjoin_tN(benchmark::State& state) {
  bm_volume<1>(state, {512}, 512, 8, kGrainD1,
               pool_threads());
}
void BM_exec_d2_w48_serial(benchmark::State& state) {
  bm_volume<2>(state, {48, 48}, 48, 4, 0, 1);
}
void BM_exec_d2_w48_forkjoin_t1(benchmark::State& state) {
  bm_volume<2>(state, {48, 48}, 48, 4, kGrainD2, 1);
}
void BM_exec_d2_w48_forkjoin_tN(benchmark::State& state) {
  bm_volume<2>(state, {48, 48}, 48, 4, kGrainD2,
               pool_threads());
}

BENCHMARK(BM_exec_d1_w512_serial);
BENCHMARK(BM_exec_d1_w512_forkjoin_t1);
BENCHMARK(BM_exec_d1_w512_forkjoin_tN);
BENCHMARK(BM_exec_d2_w48_serial);
BENCHMARK(BM_exec_d2_w48_forkjoin_t1);
BENCHMARK(BM_exec_d2_w48_forkjoin_tN);

}  // namespace

int main(int argc, char** argv) {
  conformance_gate(pool_threads());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
