file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_thm2_d1.dir/bench_e3_thm2_d1.cpp.o"
  "CMakeFiles/bench_e3_thm2_d1.dir/bench_e3_thm2_d1.cpp.o.d"
  "bench_e3_thm2_d1"
  "bench_e3_thm2_d1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_thm2_d1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
