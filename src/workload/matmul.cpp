#include "workload/matmul.hpp"

#include <algorithm>

#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "hram/access_fn.hpp"

namespace bsmp::workload {

using hram::Word;

std::vector<Word> matmul_plain(std::int64_t side, const std::vector<Word>& a,
                               const std::vector<Word>& b) {
  BSMP_REQUIRE(side >= 1);
  BSMP_REQUIRE(a.size() == static_cast<std::size_t>(side * side));
  BSMP_REQUIRE(b.size() == static_cast<std::size_t>(side * side));
  std::vector<Word> c(a.size(), 0);
  for (std::int64_t i = 0; i < side; ++i)
    for (std::int64_t k = 0; k < side; ++k) {
      Word aik = a[i * side + k];
      for (std::int64_t j = 0; j < side; ++j)
        c[i * side + j] += aik * b[k * side + j];
    }
  return c;
}

MatmulResult matmul_hram_naive(std::int64_t side, const std::vector<Word>& a,
                               const std::vector<Word>& b) {
  BSMP_REQUIRE(side >= 1);
  const std::size_t n = static_cast<std::size_t>(side * side);
  BSMP_REQUIRE(a.size() == n && b.size() == n);
  // Layout: A at [0, n), B at [n, 2n), C at [2n, 3n); machine laid out
  // in two dimensions, m = 1 cell per unit square: f(x) = sqrt(x).
  hram::HRam ram(3 * n, hram::AccessFn::hierarchical(2, 1.0));
  for (std::size_t i = 0; i < n; ++i) ram.write(i, a[i]);
  for (std::size_t i = 0; i < n; ++i) ram.write(n + i, b[i]);
  core::Cost load = ram.ledger().total();  // input loading, not counted
  for (std::int64_t i = 0; i < side; ++i)
    for (std::int64_t j = 0; j < side; ++j) {
      Word acc = 0;
      for (std::int64_t k = 0; k < side; ++k) {
        Word aik = ram.read(static_cast<std::size_t>(i * side + k));
        Word bkj = ram.read(n + static_cast<std::size_t>(k * side + j));
        acc += aik * bkj;
        ram.ledger().charge(core::CostKind::kCompute, 1.0);
      }
      ram.write(2 * n + static_cast<std::size_t>(i * side + j), acc);
    }
  MatmulResult res;
  res.time = ram.ledger().total() - load;  // readout below not counted
  res.c.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.c[i] = ram.read(2 * n + i);
  return res;
}

namespace {

/// Recursive blocked multiply (AACS87 style). Values are computed in
/// plain buffers; costs are charged through `ram` as if each level
/// copied its operand blocks into a scratch arena of 4*s^2 words near
/// the origin before recursing — so every access at block size s costs
/// O(s) instead of O(sqrt(n)).
void blocked_rec(std::int64_t s, std::int64_t stride, const Word* a,
                 const Word* b, Word* c, hram::HRam& ram) {
  if (s <= 4) {
    // Direct multiply inside a working set of ~3*s^2 words.
    core::Cost f = ram.access_fn()(static_cast<std::uint64_t>(3 * s * s));
    for (std::int64_t i = 0; i < s; ++i)
      for (std::int64_t k = 0; k < s; ++k) {
        Word aik = a[i * stride + k];
        for (std::int64_t j = 0; j < s; ++j)
          c[i * stride + j] += aik * b[k * stride + j];
      }
    ram.ledger().charge(core::CostKind::kLocalAccess,
                        3.0 * f * static_cast<core::Cost>(s * s * s),
                        static_cast<std::uint64_t>(s * s * s));
    ram.ledger().charge(core::CostKind::kCompute,
                        static_cast<core::Cost>(s * s * s));
    return;
  }
  const std::int64_t h = s / 2;
  // Eight half-size multiplies; each child's three operand blocks are
  // staged into the child arena, read and written at the parent's
  // address scale 4*s^2 (Prop.-2-style block relocation).
  ram.touch_block(static_cast<std::size_t>(4 * s * s),
                  static_cast<std::size_t>(8 * 3 * h * h));
  for (int ci = 0; ci < 2; ++ci)
    for (int cj = 0; cj < 2; ++cj)
      for (int ck = 0; ck < 2; ++ck) {
        const Word* ab = a + (ci * h) * stride + (ck * h);
        const Word* bb = b + (ck * h) * stride + (cj * h);
        Word* cb = c + (ci * h) * stride + (cj * h);
        blocked_rec(h, stride, ab, bb, cb, ram);
      }
}

}  // namespace

MatmulResult matmul_hram_blocked(std::int64_t side, const std::vector<Word>& a,
                                 const std::vector<Word>& b) {
  BSMP_REQUIRE(side >= 1);
  BSMP_REQUIRE(core::is_pow2(static_cast<std::uint64_t>(side)));
  const std::size_t n = static_cast<std::size_t>(side * side);
  BSMP_REQUIRE(a.size() == n && b.size() == n);
  hram::HRam ram(4 * n + 64, hram::AccessFn::hierarchical(2, 1.0));
  MatmulResult res;
  res.c.assign(n, 0);
  blocked_rec(side, side, a.data(), b.data(), res.c.data(), ram);
  res.time = ram.ledger().total();
  return res;
}

MatmulResult matmul_mesh_systolic(std::int64_t side,
                                  const std::vector<Word>& a,
                                  const std::vector<Word>& b) {
  BSMP_REQUIRE(side >= 1);
  const std::size_t n = static_cast<std::size_t>(side * side);
  BSMP_REQUIRE(a.size() == n && b.size() == n);
  // Cannon's algorithm: pre-skew rows of A / columns of B, then `side`
  // multiply-and-rotate steps. Every move is one near-neighbor hop of
  // the unit-spacing mesh; one synchronous mesh step costs one unit.
  std::vector<Word> as = a, bs = b;
  for (std::int64_t i = 0; i < side; ++i)
    std::rotate(as.begin() + i * side, as.begin() + i * side + i,
                as.begin() + (i + 1) * side);
  for (std::int64_t j = 0; j < side; ++j) {
    // Rotate column j of B up by j.
    std::vector<Word> col(static_cast<std::size_t>(side));
    for (std::int64_t i = 0; i < side; ++i) col[i] = bs[i * side + j];
    std::rotate(col.begin(), col.begin() + j, col.end());
    for (std::int64_t i = 0; i < side; ++i) bs[i * side + j] = col[i];
  }
  MatmulResult res;
  res.c.assign(n, 0);
  core::Cost time = 2.0 * static_cast<core::Cost>(side - 1);  // alignment
  for (std::int64_t step = 0; step < side; ++step) {
    for (std::size_t i = 0; i < n; ++i) res.c[i] += as[i] * bs[i];
    // Rotate A left by one, B up by one — one mesh step each, plus the
    // multiply-accumulate executed concurrently.
    for (std::int64_t i = 0; i < side; ++i)
      std::rotate(as.begin() + i * side, as.begin() + i * side + 1,
                  as.begin() + (i + 1) * side);
    std::vector<Word> top(bs.begin(), bs.begin() + side);
    std::copy(bs.begin() + side, bs.end(), bs.begin());
    std::copy(top.begin(), top.end(), bs.end() - side);
    time += 2.0;
  }
  res.time = time;
  return res;
}

}  // namespace bsmp::workload
