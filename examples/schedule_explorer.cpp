// Schedule explorer: plan a simulation, inspect the operation stream,
// validate it by replay, and re-cost the identical plan under three
// memory regimes (instantaneous RAM, hierarchical H-RAM, pipelined
// H-RAM) — showing that the locality slowdown lives entirely in the
// access function, not in the schedule.
//
//   $ ./schedule_explorer [n] [m] [leaf]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "sched/planner.hpp"
#include "sched/runner.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

int main(int argc, char** argv) {
  std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 64;
  std::int64_t m = argc > 2 ? std::atoll(argv[2]) : 2;
  std::int64_t leaf = argc > 3 ? std::atoll(argv[3]) : m;

  auto guest = workload::make_mix_guest<1>({n}, n, m, 1);
  sched::PlannerConfig<1> cfg;
  cfg.tile_width = n;
  cfg.leaf_width = leaf;
  cfg.machine_scale = static_cast<double>(n * m);
  sched::Planner<1> planner(&guest.stencil, cfg);
  auto sched = planner.plan();

  std::cout << "plan for M1(" << n << "," << n << "," << m
            << "), leaf width " << leaf << ":\n  " << sched.summary()
            << "\n  vertices covered: " << sched.vertices(guest.stencil)
            << " (expect " << n * n << ")\n\n";

  // Replay with real values and verify against the guest.
  auto run = sched::run_schedule<1>(guest, sched);
  auto ref = sim::reference_run<1>(guest);
  auto fin = sim::extract_final<1>(guest.stencil, run.values);
  std::cout << "replay: " << run.vertices << " vertices, outputs "
            << (sim::same_values<1>(fin, ref.final_values) ? "MATCH"
                                                           : "DIFFER")
            << " the guest's\n\n";

  // The same plan under three memory regimes.
  core::Table t("one schedule, three machines",
                {"machine", "virtual time", "slowdown Tp/Tn"});
  auto hier = hram::AccessFn::hierarchical(1, static_cast<double>(m));
  double tn = static_cast<double>(n);
  double c_unit = sched.cost_under(guest.stencil, hram::AccessFn::unit());
  double c_hier = sched.cost_under(guest.stencil, hier);
  double c_pipe = sched.cost_under(guest.stencil, hier, true);
  t.add_row({std::string("instantaneous RAM"), c_unit, c_unit / tn});
  t.add_row({std::string("H-RAM f(x)=(x/m)^(1/d)"), c_hier, c_hier / tn});
  t.add_row({std::string("pipelined H-RAM"), c_pipe, c_pipe / tn});
  t.print(std::cout);
  std::cout << "\nThe plan is identical in all three rows; bounded-speed\n"
               "propagation alone accounts for the gap (Section 1), and\n"
               "pipelining recovers part of it (Section 6).\n";
  return 0;
}
