// E5 — Theorem 4 (= Theorem 1 at d=1): the multiprocessor simulation
// with memory rearrangement and the two-regime schedule. Tables come
// from tables::e5_tables via the engine harness.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

std::int64_t pick_s(std::int64_t n, std::int64_t m, std::int64_t p) {
  auto s = static_cast<std::int64_t>(
      analytic::s_star((double)n, (double)m, (double)p));
  s = std::max<std::int64_t>(1, s);
  while (s > 1 && s * p > n) s /= 2;
  return s;
}

void BM_multiproc(benchmark::State& state) {
  std::int64_t p = state.range(0);
  auto g = workload::make_mix_guest<1>({128}, 128, 4, 7);
  sim::MultiprocConfig cfg;
  cfg.s = pick_s(128, 4, p);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_multiproc<1>(g, spec(1, 128, p, 4), cfg));
}
BENCHMARK(BM_multiproc)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BSMP_BENCH_MAIN("e5")
