file(REMOVE_RECURSE
  "CMakeFiles/test_ram_machine.dir/test_ram_machine.cpp.o"
  "CMakeFiles/test_ram_machine.dir/test_ram_machine.cpp.o.d"
  "test_ram_machine"
  "test_ram_machine.pdb"
  "test_ram_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ram_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
