// Scheme advisor, calibration, and schedule serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "analytic/advisor.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "sched/io.hpp"
#include "sched/planner.hpp"
#include "sched/runner.hpp"
#include "sim/multiproc.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "tables/calibration.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using analytic::Calibration;
using analytic::recommend;
using analytic::Scheme;

TEST(Advisor, Range4IsNaive) {
  auto rec = recommend(1, 1024, 2048, 4);
  EXPECT_EQ(rec.scheme, Scheme::kNaive);
  EXPECT_EQ(rec.range, analytic::Range::k4);
  // In Range 4 the paper's optimal strip is s* = n/p — one strip per
  // processor, i.e. exactly the naive simulation — so the advisor
  // reports kNaive and leaves Recommendation::s_star at 0 (the
  // "strip width" is no longer a tunable).
  EXPECT_DOUBLE_EQ(rec.s_star, 0.0);
  EXPECT_DOUBLE_EQ(analytic::s_star(1024, 2048, 4), 1024.0 / 4.0);
  EXPECT_DOUBLE_EQ(rec.predicted_slowdown,
                   analytic::naive_bound(1, 1024, 2048, 4));
}

TEST(Advisor, BoundaryMEqualsNCoincidesWithNaive) {
  // m = n^(1/d) is the top of Range 3 (classify_range's boundaries are
  // inclusive): s* = m/p equals n/p, so the Theorem-1 scheme already
  // degenerates to one strip per processor and its bound cannot beat
  // the naive (n/p)^2. recommend() must therefore return kNaive here,
  // not a "tuned" scheme whose tuning is vacuous.
  const double n = 1024, p = 4;
  EXPECT_EQ(analytic::classify_range(1, n, n, p), analytic::Range::k3);
  EXPECT_DOUBLE_EQ(analytic::s_star(n, n, p), n / p);
  EXPECT_DOUBLE_EQ(analytic::feasible_s_star(n, n, p), n / p);
  auto rec = recommend(1, (std::int64_t)n, (std::int64_t)n, (std::int64_t)p);
  EXPECT_EQ(rec.range, analytic::Range::k3);
  EXPECT_EQ(rec.scheme, Scheme::kNaive);
  EXPECT_DOUBLE_EQ(rec.s_star, 0.0);
  EXPECT_DOUBLE_EQ(rec.predicted_slowdown,
                   analytic::naive_bound(1, n, n, p));
  // One past the boundary it is Range 4 proper — same outcome.
  auto past = recommend(1, (std::int64_t)n, (std::int64_t)n + 1,
                        (std::int64_t)p);
  EXPECT_EQ(past.range, analytic::Range::k4);
  EXPECT_EQ(past.scheme, Scheme::kNaive);
}

TEST(Advisor, FeasibleSStarClampsToOneStripPerProcessor) {
  // feasible_s_star never exceeds n/p (the simulator cannot run more
  // than one strip per processor) and never drops below 1.
  EXPECT_GE(analytic::feasible_s_star(16, 8, 16), 1.0);
  EXPECT_LE(analytic::feasible_s_star(1024, 4, 4) * 4, 1024.0);
  // Where s* is already feasible it passes through untouched.
  EXPECT_DOUBLE_EQ(analytic::feasible_s_star(65536, 4, 4),
                   analytic::s_star(65536, 4, 4));
}

TEST(Advisor, SmallMPrefersTheTheorem1Scheme) {
  auto rec = recommend(1, 65536, 4, 16);
  EXPECT_EQ(rec.scheme, Scheme::kMultiproc);
  EXPECT_GT(rec.s_star, 1.0);
  EXPECT_LT(rec.predicted_slowdown,
            analytic::naive_bound(1, 65536, 4, 16));
  auto uni = recommend(1, 65536, 4, 1);
  EXPECT_EQ(uni.scheme, Scheme::kDcUniproc);
}

TEST(Advisor, SchemeNamesAndD2) {
  EXPECT_STREQ(analytic::to_string(Scheme::kNaive), "naive");
  auto rec = recommend(2, 65536, 2, 16);
  EXPECT_NE(rec.scheme, Scheme::kNaive);
  EXPECT_GT(rec.predicted_slowdown, 0.0);
}

TEST(Calibration, FitsAndPredictsEngineMeasuredSlowdowns) {
  // The canonical feed: tables::run_calibration measures the default
  // grid through engine::Sweep (reference runs memoized in the
  // PlanCache) and returns a fitted Calibration. Predict a holdout
  // size outside the training grid within a modest factor.
  engine::Pool pool(2);
  engine::PlanCache plans;
  tables::EngineCtx ctx{&pool, &plans};
  auto grid = tables::default_calibration_grid();
  auto cal = tables::run_calibration(ctx, grid);
  EXPECT_TRUE(cal.fitted());
  EXPECT_EQ(cal.num_measurements(), grid.size());
  EXPECT_LT(cal.training_error(), 0.5);
  // The measurement sweep shares reference runs across grid points of
  // the same (n, m): memoization must be visible in the cache stats.
  EXPECT_GT(plans.stats().hits, 0u);

  std::vector<tables::CalibrationPoint> holdout{{256, 4, 4}};
  double actual = tables::measure_calibration_points(ctx, holdout)[0];
  double predicted = cal.predict(256, 4, 4);
  EXPECT_GT(predicted / actual, 0.4);
  EXPECT_LT(predicted / actual, 2.5);
}

TEST(Calibration, RequiresEnoughData) {
  Calibration cal;
  cal.add_measurement(64, 1, 2, 1000);
  EXPECT_THROW(cal.fit(), bsmp::precondition_error);
  EXPECT_THROW(cal.predict(64, 1, 2), bsmp::precondition_error);
}

TEST(ScheduleIO, UniprocessorRoundTrip) {
  geom::Stencil<1> st{{12}, 12, 2};
  sched::PlannerConfig<1> cfg;
  cfg.tile_width = 12;
  cfg.leaf_width = 2;
  cfg.machine_scale = 24;
  sched::Planner<1> planner(&st, cfg);
  auto sched = planner.plan();

  std::stringstream ss;
  sched::dump_schedule<1>(ss, sched);
  auto back = sched::load_schedule<1>(ss);
  ASSERT_EQ(back.size(), sched.size());
  auto f = hram::AccessFn::hierarchical(1, 2.0);
  EXPECT_DOUBLE_EQ(back.makespan_under(st, f),
                   sched.cost_under(st, f));
}

TEST(ScheduleIO, ParallelRoundTripReplaysCorrectly) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 5);
  machine::MachineSpec host{1, 16, 4, 1};
  sim::MultiprocConfig cfg;
  cfg.s = 2;
  sim::MultiprocSimulator<1> simulator(&g, host, cfg);
  sched::ParallelSchedule<1> sched(4);
  simulator.set_emit(&sched);
  auto res = simulator.run();

  std::stringstream ss;
  sched::dump_schedule<1>(ss, sched);
  auto back = sched::load_schedule<1>(ss);
  EXPECT_EQ(back.num_procs(), 4);
  EXPECT_NEAR(back.makespan_under(g.stencil, host.access_fn()), res.time,
              1e-9 * res.time);
  auto run = sched::run_schedule<1>(g, back);
  auto ref = sim::reference_run<1>(g);
  EXPECT_TRUE(sim::same_values<1>(
      sim::extract_final<1>(g.stencil, run.values), ref.final_values));
}

TEST(ScheduleIO, RejectsGarbage) {
  std::stringstream ss("not a schedule\n");
  EXPECT_THROW(sched::load_schedule<1>(ss), bsmp::precondition_error);
  std::stringstream wrong_d("# bsmp-schedule v1 d=2 p=1\n");
  EXPECT_THROW(sched::load_schedule<1>(wrong_d), bsmp::precondition_error);
  std::stringstream bad_op("# bsmp-schedule v1 d=1 p=1\nfrobnicate x=1\n");
  EXPECT_THROW(sched::load_schedule<1>(bad_op), bsmp::precondition_error);
}
