
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_advisor_io.cpp" "tests/CMakeFiles/test_advisor_io.dir/test_advisor_io.cpp.o" "gcc" "tests/CMakeFiles/test_advisor_io.dir/test_advisor_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hram/CMakeFiles/bsmp_hram.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/bsmp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bsmp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sep/CMakeFiles/bsmp_sep.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/bsmp_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsmp_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
