// PlanCache LRU residency tests: eviction order, the byte bound under
// concurrent build-once misses, protection of in-use entries, and
// counter exactness (hits / misses / builds / evictions / bytes).
//
// The cache's original contracts — build-once per key, shared
// immutable artifacts — are pinned by test_engine_property; this file
// pins the BSMP_PLAN_CACHE_BYTES budget semantics added on top.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "engine/plan_cache.hpp"

using namespace bsmp;
using engine::PlanCache;
using engine::PlanKey;

namespace {

PlanKey key_of(std::int64_t width) {
  PlanKey k;
  k.d = 1;
  k.family = engine::PlanFamily::kUser;
  k.width = width;
  return k;
}

/// An artifact with a known plan_bytes footprint (set via `weight`).
struct Plan {
  std::int64_t id = 0;
  std::size_t weight = 0;
};

std::size_t plan_bytes(const Plan& p) { return p.weight; }

/// Build a Plan of `weight` accountable bytes under key `width`.
std::shared_ptr<const Plan> put(PlanCache& c, std::int64_t width,
                                std::size_t weight) {
  return c.get_or_build<Plan>(key_of(width),
                              [&] { return Plan{width, weight}; });
}

}  // namespace

TEST(PlanCacheLru, UnboundedByDefaultKeepsEverything) {
  PlanCache c;
  ASSERT_EQ(c.max_bytes(), 0u) << "BSMP_PLAN_CACHE_BYTES leaked into test env";
  for (std::int64_t i = 0; i < 64; ++i) put(c, i, 1000);
  EXPECT_EQ(c.size(), 64u);
  const auto st = c.stats();
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.bytes, 64u * 1000u);
}

TEST(PlanCacheLru, EvictsLeastRecentlyUsedFirst) {
  PlanCache c;
  c.set_max_bytes(3000);
  put(c, 1, 1000);
  put(c, 2, 1000);
  put(c, 3, 1000);
  EXPECT_EQ(c.size(), 3u);

  // Touch 1 so 2 becomes the LRU, then overflow by one entry.
  ASSERT_NE(c.lookup<Plan>(key_of(1)), nullptr);
  put(c, 4, 1000);

  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.lookup<Plan>(key_of(2)), nullptr) << "LRU entry survived";
  EXPECT_NE(c.lookup<Plan>(key_of(1)), nullptr);
  EXPECT_NE(c.lookup<Plan>(key_of(3)), nullptr);
  EXPECT_NE(c.lookup<Plan>(key_of(4)), nullptr);
  const auto st = c.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.bytes, 3000u);
}

TEST(PlanCacheLru, RepeatedHitsRefreshRecency) {
  PlanCache c;
  c.set_max_bytes(2000);
  put(c, 1, 1000);
  put(c, 2, 1000);
  // Keep hitting 1 while streaming new entries through: 1 must survive
  // every round, the streamed keys must evict each other.
  for (std::int64_t i = 3; i < 10; ++i) {
    ASSERT_NE(c.lookup<Plan>(key_of(1)), nullptr) << "hot entry evicted";
    put(c, i, 1000);
  }
  EXPECT_NE(c.lookup<Plan>(key_of(1)), nullptr);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.stats().evictions, 7u);
}

TEST(PlanCacheLru, InUseEntriesAreNeverEvicted) {
  PlanCache c;
  c.set_max_bytes(1000);
  auto held = put(c, 1, 800);  // pinned by this shared_ptr
  // Over budget, but at accounting time both entries are in use (key 1
  // by `held`, key 2 by its own builder's result): the budget is a
  // soft bound while readers hold the artifacts, nothing is evicted.
  put(c, 2, 800);
  EXPECT_EQ(c.stats().bytes, 1600u);
  EXPECT_NE(c.lookup<Plan>(key_of(1)), nullptr);
  EXPECT_NE(c.lookup<Plan>(key_of(2)), nullptr);

  // The next pressure resolves: key 2 is no longer held, key 1 still
  // is — so 2 goes and pinned 1 survives despite being the LRU.
  put(c, 3, 800);
  EXPECT_NE(c.lookup<Plan>(key_of(1)), nullptr) << "pinned entry evicted";
  EXPECT_EQ(c.lookup<Plan>(key_of(2)), nullptr);
  EXPECT_NE(c.lookup<Plan>(key_of(3)), nullptr);
  EXPECT_EQ(c.stats().bytes, 1600u);

  // Dropping the pin makes key 1 evictable on the next pressure.
  held.reset();
  put(c, 4, 1000);
  EXPECT_EQ(c.lookup<Plan>(key_of(1)), nullptr);
  EXPECT_EQ(c.lookup<Plan>(key_of(3)), nullptr);
  EXPECT_EQ(c.stats().bytes, 1000u);
}

TEST(PlanCacheLru, EvictedEntryStaysReadableForItsHolders) {
  PlanCache c;
  c.set_max_bytes(500);
  auto a = put(c, 1, 400);
  a.reset();                // now evictable
  auto b = put(c, 2, 400);  // evicts 1
  EXPECT_EQ(c.lookup<Plan>(key_of(1)), nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->id, 2);
  // A rebuilt key is a fresh artifact, not the evicted one.
  auto a2 = put(c, 1, 400);
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->id, 1);
  EXPECT_GE(c.stats().builds, 3u);
}

TEST(PlanCacheLru, SetMaxBytesEvictsDownImmediately) {
  PlanCache c;
  for (std::int64_t i = 0; i < 8; ++i) put(c, i, 100);
  EXPECT_EQ(c.stats().bytes, 800u);
  c.set_max_bytes(250);
  EXPECT_LE(c.stats().bytes, 250u);
  EXPECT_EQ(c.size(), 2u);
  // The survivors are the most recently used keys.
  EXPECT_NE(c.lookup<Plan>(key_of(6)), nullptr);
  EXPECT_NE(c.lookup<Plan>(key_of(7)), nullptr);
}

TEST(PlanCacheLru, ClearResetsResidencyCounters) {
  PlanCache c;
  c.set_max_bytes(150);
  put(c, 1, 100);
  put(c, 2, 100);
  c.clear();
  const auto st = c.stats();
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(c.size(), 0u);
  // Budget survives clear(); the counters do not.
  EXPECT_EQ(c.max_bytes(), 150u);
}

TEST(PlanCacheLru, CounterExactnessSingleThread) {
  PlanCache c;
  c.set_max_bytes(2000);
  put(c, 1, 600);                        // miss + build
  put(c, 1, 600);                        // hit
  ASSERT_NE(c.lookup<Plan>(key_of(1)), nullptr);  // hit
  EXPECT_EQ(c.lookup<Plan>(key_of(9)), nullptr);  // miss, no entry made
  put(c, 2, 600);                        // miss + build
  put(c, 3, 600);                        // miss + build
  put(c, 4, 600);  // miss + build; 2400 > 2000 evicts the LRU (key 1)

  const auto st = c.stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 5u);  // first put of 1, lookup of 9, puts of 2..4
  EXPECT_EQ(st.builds, 4u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.bytes, 1800u);
  EXPECT_EQ(st.lookups(), 7u);
}

TEST(PlanCacheLru, ByteBoundHoldsUnderConcurrentMisses) {
  PlanCache c;
  const std::size_t kBudget = 4000;
  c.set_max_bytes(kBudget);
  constexpr int kThreads = 8;
  constexpr std::int64_t kKeys = 40;
  std::atomic<std::uint64_t> built{0};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c, &built, t] {
      for (std::int64_t i = 0; i < kKeys; ++i) {
        // Thread-dependent key order, all threads racing on every key.
        std::int64_t w = (t % 2 == 0) ? i : kKeys - 1 - i;
        auto p = c.get_or_build<Plan>(key_of(w), [&built, w] {
          built.fetch_add(1, std::memory_order_relaxed);
          return Plan{w, 500};
        });
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(p->id, w);
      }
    });
  }
  for (auto& t : ts) t.join();

  const auto st = c.stats();
  // Quiescent: nothing is held outside the cache, so the budget holds.
  EXPECT_LE(st.bytes, kBudget);
  EXPECT_EQ(st.bytes, std::uint64_t{500} * c.size());
  // Every build the cache ran is one the builders counted (a key may
  // build more than once across evictions, never concurrently).
  EXPECT_EQ(st.builds, built.load());
  EXPECT_GE(st.builds, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(st.lookups(), static_cast<std::uint64_t>(kThreads) * kKeys);
}

TEST(PlanCacheLru, AccountingSurvivesClearDuringBuild) {
  // clear() while a build is in flight: account() must detect the
  // entry is no longer the mapped one and not charge ghost bytes.
  PlanCache c;
  c.set_max_bytes(1000);
  std::atomic<bool> in_build{false};
  std::atomic<bool> cleared{false};
  std::thread builder([&] {
    c.get_or_build<Plan>(key_of(1), [&] {
      in_build.store(true);
      while (!cleared.load()) std::this_thread::yield();
      return Plan{1, 600};
    });
  });
  while (!in_build.load()) std::this_thread::yield();
  c.clear();
  cleared.store(true);
  builder.join();
  EXPECT_EQ(c.stats().bytes, 0u);
  EXPECT_EQ(c.size(), 0u);
}
