// Tiny least-squares fitter used by the benches to calibrate the
// per-mechanism constants of the measured slowdown curves against the
// paper's closed forms (e.g. the three terms of A(s)).
#pragma once

#include <array>
#include <vector>

namespace bsmp::analytic {

/// Solve min ||X c - y||_2 for c (K unknowns) via the normal equations.
/// Returns the coefficient vector; coefficients clamped at zero are
/// re-fit with the remaining columns (mechanism constants are
/// physically non-negative).
template <std::size_t K>
std::array<double, K> fit_least_squares(
    const std::vector<std::array<double, K>>& x,
    const std::vector<double>& y);

/// R^2 of a fit: 1 - SS_res / SS_tot.
template <std::size_t K>
double fit_r2(const std::vector<std::array<double, K>>& x,
              const std::vector<double>& y, const std::array<double, K>& c);

}  // namespace bsmp::analytic
