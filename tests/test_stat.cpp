// bsmp-stat (src/stat) and the core JSON reader behind it.
//
// The CLI surface is tested in-process through run_cli — the binary in
// tools/ is a two-line shell around it — against synthetic artifacts
// of both families (bsmp-metrics-v3 reports, google-benchmark
// --benchmark_out files) written to the test temp dir. The diff exit
// codes are the CI contract: 0 ok/cleanly-skipped, 1 regression,
// 2 usage/file error, 3 refused under --require-comparable.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "stat/bsmp_stat.hpp"

using namespace bsmp;
namespace json = bsmp::core::json;

namespace {

// Unique per test case: ctest runs cases as parallel processes, and
// shared /tmp paths would race. The tolerance spec keys the *basename*
// of the baseline, so the prefix must stay constant across tests —
// a per-test subdirectory keeps uniqueness out of the filename.
std::string temp_path(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "bsmp_stat_" +
                    info->test_suite_name() + "_" + info->name();
  ::mkdir(dir.c_str(), 0755);
  return dir + "/bsmp_stat_" + name;
}

std::string write_file(const std::string& name, const std::string& body) {
  std::string path = temp_path(name);
  std::ofstream f(path);
  f << body;
  return path;
}

int cli(std::vector<std::string> args, std::string* out = nullptr,
        std::string* err = nullptr) {
  std::vector<const char*> argv = {"bsmp-stat"};
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream o, e;
  int code = stat::run_cli(static_cast<int>(argv.size()), argv.data(), o, e);
  if (out != nullptr) *out = o.str();
  if (err != nullptr) *err = e.str();
  return code;
}

/// A minimal but complete bsmp-metrics-v3 report.
std::string metrics_doc(const std::string& hostname, int num_cpus,
                        int trusted, double speedup = 2.0) {
  std::ostringstream os;
  os << R"({
  "schema": "bsmp-metrics-v3",
  "name": "unit",
  "speedup": )" << speedup
     << R"(,
  "manifest": {"git_sha": "abc", "build_type": "Release",
               "hardware_threads": )"
     << num_cpus << R"(, "num_cpus": )" << num_cpus
     << R"(, "hostname": ")" << hostname << R"(",
               "simd_isa": "avx2", "trace_dropped": 0},
  "passes": [
    {"threads": 1, "seconds": 4.0,
     "sweeps": [{"label": "grid", "points": 8}],
     "attribution": {"trusted": )"
     << trusted << R"(, "dropped": )" << (trusted != 0 ? 0 : 7)
     << R"(, "spans": 10,
       "total_self_ns": 1000, "critical_path_ns": 800,
       "mechanisms": {"compute": {"self_ns": 900, "spans": 8},
                      "relocation": {"self_ns": 100, "spans": 2}},
       "phases": {"machine-tile": {"compute": 900}},
       "calibration_points": [
         {"n": 64, "m": 4, "p": 4, "s": 4, "range": "range2",
          "holdout": 0, "slowdown": 3.0, "slow_reloc": 0.5,
          "slow_exec": 2.0, "slow_comm": 0.5, "term_reloc": 1.0,
          "term_exec": 2.0, "term_comm": 0.5},
         {"n": 128, "m": 4, "p": 4, "s": 5, "range": "range2",
          "holdout": 0, "slowdown": 4.0, "slow_reloc": 0.8,
          "slow_exec": 2.6, "slow_comm": 0.6, "term_reloc": 1.5,
          "term_exec": 2.5, "term_comm": 0.7},
         {"n": 128, "m": 8, "p": 4, "s": 6, "range": "range2",
          "holdout": 0, "slowdown": 3.5, "slow_reloc": 0.6,
          "slow_exec": 2.4, "slow_comm": 0.5, "term_reloc": 1.2,
          "term_exec": 2.2, "term_comm": 0.6},
         {"n": 256, "m": 4, "p": 4, "s": 7, "range": "range2",
          "holdout": 1, "slowdown": 5.0, "slow_reloc": 1.0,
          "slow_exec": 3.2, "slow_comm": 0.8, "term_reloc": 2.0,
          "term_exec": 3.0, "term_comm": 0.9}]}}]
})";
  return os.str();
}

/// A minimal google-benchmark --benchmark_out document.
std::string gbench_doc(const std::string& hostname, int num_cpus,
                       double simd_rate) {
  std::ostringstream os;
  os << R"({
  "context": {"host_name": ")"
     << hostname << R"(", "num_cpus": )" << num_cpus
     << R"(, "executable": "./bench_unit",
              "library_build_type": "release"},
  "benchmarks": [
    {"name": "BM_leaf_dense", "real_time": 100.0, "time_unit": "ns",
     "vertices_per_sec": 1000.0},
    {"name": "BM_leaf_simd_median", "real_time": 40.0, "time_unit": "ns",
     "vertices_per_sec": )"
     << simd_rate << R"(}
  ]
})";
  return os.str();
}

// Keyed by baseline *basename* — write_file prefixes "bsmp_stat_".
const char* kTolerances = R"({
  "files": {
    "bsmp_stat_base.json": {
      "ratio_gates": [
        {"label": "simd >= 2x dense", "num": "BM_leaf_simd",
         "den": "BM_leaf_dense", "metric": "vertices_per_sec",
         "min": 2.0},
        {"label": "needs a big box", "num": "BM_leaf_simd",
         "den": "BM_leaf_dense", "metric": "vertices_per_sec",
         "min": 100.0, "min_cpus": 64}
      ],
      "drift": [{"metric": "vertices_per_sec", "rel_tol": 0.25}]
    },
    "bsmp_stat_metrics_base.json": {
      "drift": [{"metric": "speedup", "rel_tol": 0.25}]
    }
  }
})";

}  // namespace

// ---- core::json ----------------------------------------------------

TEST(Json, ParsesTheFullValueModel) {
  auto p = json::parse(
      R"({"a": [1, 2.5, -3e2], "s": "x\n\"yA", "t": true, "z": null})");
  ASSERT_TRUE(p.ok) << p.error;
  const json::Value& v = p.value;
  EXPECT_DOUBLE_EQ(v["a"].items()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v["a"].items()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(v["a"].items()[2].as_number(), -300.0);
  EXPECT_EQ(v["s"].as_string(), "x\n\"yA");
  EXPECT_TRUE(v["t"].as_bool());
  EXPECT_TRUE(v["z"].is_null());
  EXPECT_TRUE(v.has("z"));
  EXPECT_FALSE(v.has("missing"));
  // Missing-path chaining is safe and falls back.
  EXPECT_DOUBLE_EQ(v["no"]["such"]["path"].as_number(7.0), 7.0);
}

TEST(Json, RejectsMalformedDocumentsWithPosition) {
  EXPECT_FALSE(json::parse("{").ok);
  EXPECT_FALSE(json::parse("[1, ]").ok);
  EXPECT_FALSE(json::parse("{} trailing").ok);
  EXPECT_FALSE(json::parse("'single'").ok);
  auto p = json::parse("{\n  \"a\": nope\n}");
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("2:"), std::string::npos) << p.error;
}

TEST(Json, ParseFileReportsIoErrors) {
  EXPECT_FALSE(json::parse_file("/nonexistent/x.json").ok);
}

// ---- artifact loading ----------------------------------------------

TEST(StatLoad, ClassifiesBothArtifactFamilies) {
  auto mp = write_file("m.json", metrics_doc("boxA", 8, 1));
  auto gp = write_file("g.json", gbench_doc("boxB", 4, 2500.0));

  auto m = stat::load_artifact(mp);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_EQ(m.artifact.kind, stat::ArtifactKind::kMetrics);
  EXPECT_EQ(m.artifact.schema, "bsmp-metrics-v3");
  EXPECT_EQ(m.artifact.hostname, "boxA");
  EXPECT_EQ(m.artifact.num_cpus, 8);

  auto g = stat::load_artifact(gp);
  ASSERT_TRUE(g.ok) << g.error;
  EXPECT_EQ(g.artifact.kind, stat::ArtifactKind::kGoogleBenchmark);
  EXPECT_EQ(g.artifact.hostname, "boxB");
  EXPECT_EQ(g.artifact.num_cpus, 4);

  EXPECT_FALSE(stat::comparable_hardware(m.artifact, g.artifact));
  EXPECT_TRUE(stat::comparable_hardware(m.artifact, m.artifact));
}

TEST(StatLoad, UnknownHardwareIsNeverComparable) {
  auto p1 = write_file("h1.json", metrics_doc("", 8, 1));
  auto a1 = stat::load_artifact(p1);
  ASSERT_TRUE(a1.ok);
  EXPECT_FALSE(stat::comparable_hardware(a1.artifact, a1.artifact));
}

// ---- show ----------------------------------------------------------

TEST(StatShow, ReportsAttributionAndBannersDrops) {
  auto clean = write_file("show_ok.json", metrics_doc("box", 4, 1));
  std::string out;
  EXPECT_EQ(cli({"show", clean}, &out), stat::kExitOk);
  EXPECT_NE(out.find("compute"), std::string::npos) << out;
  EXPECT_NE(out.find("critical path"), std::string::npos) << out;
  EXPECT_EQ(out.find("DROPPED"), std::string::npos) << out;

  auto dropped = write_file("show_drop.json", metrics_doc("box", 4, 0));
  EXPECT_EQ(cli({"show", dropped}, &out), stat::kExitOk);
  EXPECT_NE(out.find("DROPPED"), std::string::npos)
      << "drop banner missing:\n"
      << out;
}

// ---- diff ----------------------------------------------------------

TEST(StatDiff, SelfCompareIsCleanAndGatesPass) {
  auto tol = write_file("tol.json", kTolerances);
  auto base = write_file("base.json", gbench_doc("box", 4, 2500.0));
  std::string out;
  int code = cli({"diff", "--tolerances", tol, base, base}, &out);
  EXPECT_EQ(code, stat::kExitOk) << out;
  EXPECT_NE(out.find("0 regressions"), std::string::npos) << out;
  // The simd gate ran (2.5x >= 2x) and the oversized-box gate skipped.
  EXPECT_NE(out.find("simd >= 2x dense"), std::string::npos) << out;
  EXPECT_NE(out.find("skip (needs >= 64 cpus"), std::string::npos) << out;
}

TEST(StatDiff, RatioGateRegressionFailsTheCandidate) {
  auto tol = write_file("tol.json", kTolerances);
  auto base = write_file("base.json", gbench_doc("box", 4, 2500.0));
  auto cand = write_file("cand.json", gbench_doc("box", 4, 1500.0));
  std::string out;
  int code = cli({"diff", "--tolerances", tol, base, cand}, &out);
  EXPECT_EQ(code, stat::kExitRegression) << out;
  EXPECT_NE(out.find("FAIL"), std::string::npos) << out;
}

TEST(StatDiff, AggregateNameFallbackResolvesMedianRows) {
  // gbench_doc only has BM_leaf_simd_median; the gate names
  // BM_leaf_simd and must still resolve.
  auto tol = write_file("tol.json", kTolerances);
  auto base = write_file("base.json", gbench_doc("box", 4, 2500.0));
  std::string out;
  EXPECT_EQ(cli({"diff", "--tolerances", tol, base, base}, &out),
            stat::kExitOk)
      << out;
  EXPECT_EQ(out.find("benchmark or metric missing"), std::string::npos)
      << out;
}

TEST(StatDiff, CrossHardwareDriftIsRefusedNotGated) {
  auto tol = write_file("tol.json", kTolerances);
  auto base = write_file("base.json", gbench_doc("vm", 1, 2500.0));
  // Different host, wildly different numbers: drift must NOT fire.
  auto cand = write_file("cand_other.json", gbench_doc("box", 8, 2200.0));
  std::string out;
  int code = cli({"diff", "--tolerances", tol, base, cand}, &out);
  EXPECT_EQ(code, stat::kExitOk) << out;
  EXPECT_NE(out.find("REFUSED drift"), std::string::npos) << out;

  code = cli({"diff", "--tolerances", tol, "--require-comparable", base,
              cand},
             &out);
  EXPECT_EQ(code, stat::kExitRefused) << out;
}

TEST(StatDiff, MetricsSelfCompareIsClean) {
  auto tol = write_file("tol.json", kTolerances);
  auto base = write_file("metrics_base.json", metrics_doc("box", 4, 1));
  std::string out;
  int code = cli({"diff", "--tolerances", tol, base, base}, &out);
  EXPECT_EQ(code, stat::kExitOk) << out;
  EXPECT_NE(out.find("0 regressions"), std::string::npos) << out;
  EXPECT_NE(out.find("attribution keys match"), std::string::npos) << out;
}

TEST(StatDiff, UntrustedAttributionIsSkippedNotGated) {
  auto base = write_file("metrics_base.json", metrics_doc("box", 4, 1));
  auto cand = write_file("metrics_drop.json", metrics_doc("box", 4, 0));
  std::string out;
  int code = cli({"diff", base, cand}, &out);
  EXPECT_EQ(code, stat::kExitOk) << out;
  EXPECT_NE(out.find("untrusted"), std::string::npos) << out;
}

TEST(StatDiff, MetricsDriftGatesSpeedupOnSameHardware) {
  auto tol = write_file("tol.json", kTolerances);
  auto base =
      write_file("metrics_base.json", metrics_doc("box", 4, 1, 2.0));
  auto cand =
      write_file("metrics_slow.json", metrics_doc("box", 4, 1, 1.0));
  std::string out;
  int code = cli({"diff", "--tolerances", tol, base, cand}, &out);
  EXPECT_EQ(code, stat::kExitRegression) << out;
  EXPECT_NE(out.find("speedup"), std::string::npos) << out;
}

TEST(StatDiff, ReportFileTeesTheOutput) {
  auto base = write_file("base.json", gbench_doc("box", 4, 2500.0));
  auto report = temp_path("report.txt");
  std::string out;
  EXPECT_EQ(cli({"diff", "--report", report, base, base}, &out),
            stat::kExitOk);
  std::ifstream f(report);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), out);
  std::remove(report.c_str());
}

TEST(StatDiff, MixedArtifactKindsAreAUsageError) {
  auto m = write_file("m.json", metrics_doc("box", 4, 1));
  auto g = write_file("g.json", gbench_doc("box", 4, 2500.0));
  EXPECT_EQ(cli({"diff", m, g}), stat::kExitUsage);
}

// ---- fit -----------------------------------------------------------

TEST(StatFit, FitsMechanismConstantsFromCalibrationPoints) {
  auto mp = write_file("fit.json", metrics_doc("box", 4, 1));
  std::string out;
  int code = cli({"fit", mp}, &out);
  EXPECT_EQ(code, stat::kExitOk) << out;
  EXPECT_NE(out.find("mechanism fit"), std::string::npos) << out;
  EXPECT_NE(out.find("holdout n=256"), std::string::npos) << out;
  EXPECT_NE(out.find("aggregate"), std::string::npos) << out;
}

TEST(StatFit, RefusesArtifactsWithoutCalibrationPoints) {
  auto g = write_file("g.json", gbench_doc("box", 4, 2500.0));
  std::string out, err;
  EXPECT_EQ(cli({"fit", g}, &out, &err), stat::kExitUsage);
}

// ---- CLI surface ---------------------------------------------------

TEST(StatCli, UsageAndMissingFilesAreExitTwo) {
  std::string out, err;
  EXPECT_EQ(cli({}, &out, &err), stat::kExitUsage);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(cli({"bogus-subcommand"}, &out, &err), stat::kExitUsage);
  EXPECT_EQ(cli({"show", "/nonexistent/x.json"}, &out, &err),
            stat::kExitUsage);
  EXPECT_EQ(cli({"diff", "only-one.json"}, &out, &err), stat::kExitUsage);
}
