#include "core/args.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/expect.hpp"

namespace bsmp::core {

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& known_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(a);
      continue;
    }
    std::string name = a.substr(2);
    std::string value;
    bool has_value = false;
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    bool is_flag = std::find(known_flags.begin(), known_flags.end(), name) !=
                   known_flags.end();
    if (is_flag) {
      flags_.push_back(name);
      if (has_value) values_[name] = value;
      continue;
    }
    if (!has_value) {
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
        has_value = true;
      }
    }
    if (has_value)
      values_[name] = value;
    else
      unknown_.push_back(name);
  }
}

bool Args::has(const std::string& name) const {
  return values_.contains(name) ||
         std::find(flags_.begin(), flags_.end(), name) != flags_.end();
}

std::optional<std::string> Args::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  long long r = std::strtoll(v->c_str(), &end, 10);
  BSMP_REQUIRE_MSG(end && *end == '\0',
                   "--" << name << " expects an integer, got '" << *v << "'");
  return static_cast<std::int64_t>(r);
}

double Args::get_double(const std::string& name, double fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  double r = std::strtod(v->c_str(), &end);
  BSMP_REQUIRE_MSG(end && *end == '\0',
                   "--" << name << " expects a number, got '" << *v << "'");
  return r;
}

bool Args::get_flag(const std::string& name) const {
  return std::find(flags_.begin(), flags_.end(), name) != flags_.end();
}

}  // namespace bsmp::core
