// HOT — the executor hot-path microbench. Prints the "hot" artifact
// (dense flat-staging executor vs the retained hash-map baseline, with
// every deterministic field asserted equal), serializes the measured
// throughputs as metrics_hot.json, then runs google-benchmark kernels
// for the same four full-volume executions. A Release run's
// --benchmark_out is committed as bench/BENCH_exec_hotpath.json — the
// perf trajectory baseline; the acceptance bar for the flat-staging
// rewrite is dense >= 3x hashmap vertices/sec on exec_d1_w512.
#include "bench_common.hpp"
#include "tables/hotpath.hpp"

using namespace bsmp;

namespace {

template <int D>
sep::Guest<D> hot_guest(std::array<std::int64_t, D> extent,
                        std::int64_t horizon, std::int64_t m) {
  return workload::make_mix_guest<D>(extent, horizon, m, 7);
}

template <int D>
void bm_dense(benchmark::State& state, std::array<std::int64_t, D> extent,
              std::int64_t horizon, std::int64_t m) {
  auto g = hot_guest<D>(extent, horizon, m);
  std::int64_t vertices = 0;
  for (auto _ : state) {
    sep::StagingStore<D> staging(&g.stencil);
    auto s = tables::hotpath::run_dense<D>(g, staging);
    vertices = s.vertices;
    benchmark::DoNotOptimize(s.total_cost);
  }
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
}

template <int D>
void bm_hashmap(benchmark::State& state, std::array<std::int64_t, D> extent,
                std::int64_t horizon, std::int64_t m) {
  auto g = hot_guest<D>(extent, horizon, m);
  std::int64_t vertices = 0;
  for (auto _ : state) {
    sep::ValueMap<D> staging;
    auto s = tables::hotpath::run_hashmap<D>(g, staging);
    vertices = s.vertices;
    benchmark::DoNotOptimize(s.total_cost);
  }
  state.counters["vertices_per_sec"] =
      benchmark::Counter(static_cast<double>(vertices),
                         benchmark::Counter::kIsIterationInvariantRate);
}

void BM_exec_d1_w512_dense(benchmark::State& state) {
  bm_dense<1>(state, {512}, 512, 8);
}
void BM_exec_d1_w512_hashmap(benchmark::State& state) {
  bm_hashmap<1>(state, {512}, 512, 8);
}
void BM_exec_d2_w48_dense(benchmark::State& state) {
  bm_dense<2>(state, {48, 48}, 48, 4);
}
void BM_exec_d2_w48_hashmap(benchmark::State& state) {
  bm_hashmap<2>(state, {48, 48}, 48, 4);
}

BENCHMARK(BM_exec_d1_w512_dense);
BENCHMARK(BM_exec_d1_w512_hashmap);
BENCHMARK(BM_exec_d2_w48_dense);
BENCHMARK(BM_exec_d2_w48_hashmap);

}  // namespace

BSMP_BENCH_MAIN("hot")
