// The schedule IR: planning, static validation, replay, and re-costing
// under different memory regimes.
#include <gtest/gtest.h>

#include "core/logmath.hpp"
#include "machine/spec.hpp"
#include "sched/planner.hpp"
#include "sched/runner.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using sched::OpKind;
using sched::Planner;
using sched::PlannerConfig;

namespace {

template <int D>
PlannerConfig<D> cfg_for(const geom::Stencil<D>& st, int64_t tile,
                         int64_t leaf) {
  PlannerConfig<D> cfg;
  cfg.tile_width = tile;
  cfg.leaf_width = leaf;
  cfg.machine_scale =
      static_cast<double>(st.num_nodes() * st.m);
  return cfg;
}

}  // namespace

TEST(Schedule, PlanCoversEveryVertexExactlyOnce) {
  for (int64_t m : {1, 2, 4}) {
    geom::Stencil<1> st{{12}, 15, m};
    Planner<1> planner(&st, cfg_for<1>(st, 6, m));
    auto sched = planner.plan();
    EXPECT_EQ(sched.vertices(st), 12 * 15) << m;
    EXPECT_GT(sched.count(OpKind::kLeaf), 0) << m;
  }
}

TEST(Schedule, RunnerReproducesTheGuest) {
  for (int64_t tile : {4, 8, 16}) {
    auto g = workload::make_mix_guest<1>({16}, 16, 2, tile);
    geom::Stencil<1>& st = g.stencil;
    Planner<1> planner(&st, cfg_for<1>(st, tile, 2));
    auto sched = planner.plan();
    auto run = sched::run_schedule<1>(g, sched);
    auto ref = sim::reference_run<1>(g);
    auto fin = sim::extract_final<1>(st, run.values);
    EXPECT_TRUE(sim::same_values<1>(fin, ref.final_values)) << tile;
  }
}

TEST(Schedule, RunnerWorks2DAnd3D) {
  auto g2 = workload::make_mix_guest<2>({4, 4}, 5, 1, 3);
  Planner<2> p2(&g2.stencil, cfg_for<2>(g2.stencil, 4, 1));
  auto run2 = sched::run_schedule<2>(g2, p2.plan());
  auto ref2 = sim::reference_run<2>(g2);
  EXPECT_TRUE(sim::same_values<2>(
      sim::extract_final<2>(g2.stencil, run2.values), ref2.final_values));

  auto g3 = workload::make_mix_guest<3>({2, 2, 2}, 3, 1, 4);
  Planner<3> p3(&g3.stencil, cfg_for<3>(g3.stencil, 2, 1));
  auto run3 = sched::run_schedule<3>(g3, p3.plan());
  auto ref3 = sim::reference_run<3>(g3);
  EXPECT_TRUE(sim::same_values<3>(
      sim::extract_final<3>(g3.stencil, run3.values), ref3.final_values));
}

TEST(Schedule, CostUnderMatchesExecutorExactly) {
  // The planner emits exactly the operations the Executor charges:
  // evaluating the schedule under the host's access function must give
  // the dc driver's total to the last bit (same formulas, same counts).
  for (int64_t m : {1, 3}) {
    auto g = workload::make_mix_guest<1>({16}, 16, m, 7);
    machine::MachineSpec host{1, 16, 1, m};
    auto res = sim::simulate_dc_uniproc<1>(g, host);

    PlannerConfig<1> cfg = cfg_for<1>(g.stencil, 16, m);
    Planner<1> planner(&g.stencil, cfg);
    auto sched = planner.plan();
    double planned = sched.cost_under(g.stencil, host.access_fn());
    EXPECT_NEAR(planned, res.time, 1e-6 * res.time) << "m=" << m;
  }
}

TEST(Schedule, ReCostingUnderUnitRam) {
  // The same plan on the instantaneous machine costs a constant per
  // vertex — the whole locality slowdown is the access function.
  geom::Stencil<1> st{{32}, 32, 1};
  Planner<1> planner(&st, cfg_for<1>(st, 32, 1));
  auto sched = planner.plan();
  double unit = sched.cost_under(st, hram::AccessFn::unit());
  double hier =
      sched.cost_under(st, hram::AccessFn::hierarchical(1, 1.0));
  // Unit-cost: O(1) per vertex plus O(1) per staged word — the word
  // count is Θ(|V| log n), so ~O(log n) per vertex overall.
  EXPECT_LT(unit, 8.0 * core::logbar(32.0) * 32 * 32);
  EXPECT_GT(hier / unit, 10.0);  // locality slowdown is real
}

TEST(Schedule, PipelinedCopiesAreCheaper) {
  geom::Stencil<1> st{{32}, 32, 4};
  Planner<1> planner(&st, cfg_for<1>(st, 16, 4));
  auto sched = planner.plan();
  auto f = hram::AccessFn::hierarchical(1, 4.0);
  EXPECT_LT(sched.cost_under(st, f, /*pipelined=*/true),
            sched.cost_under(st, f, /*pipelined=*/false));
}

TEST(Schedule, SummaryAndCounts) {
  geom::Stencil<1> st{{8}, 8, 1};
  Planner<1> planner(&st, cfg_for<1>(st, 8, 1));
  auto sched = planner.plan();
  EXPECT_EQ(sched.count(OpKind::kCopyIn) + sched.count(OpKind::kLeaf) +
                sched.count(OpKind::kCopyOut),
            static_cast<int64_t>(sched.size()));
  EXPECT_GT(sched.words_moved(), 0);
  auto s = sched.summary();
  EXPECT_NE(s.find("leaves="), std::string::npos);
}

TEST(Schedule, BrokenOrderIsCaughtByRunner) {
  // Reverse the leaf ops: operands are no longer ready.
  auto g = workload::make_mix_guest<1>({8}, 8, 1, 6);
  Planner<1> planner(&g.stencil, cfg_for<1>(g.stencil, 8, 1));
  auto sched = planner.plan();
  sched::Schedule<1> reversed;
  for (auto it = sched.ops().rbegin(); it != sched.ops().rend(); ++it)
    reversed.push(*it);
  EXPECT_THROW(sched::run_schedule<1>(g, reversed), bsmp::invariant_error);
}

TEST(Schedule, DuplicatedLeafIsCaughtByRunner) {
  auto g = workload::make_mix_guest<1>({8}, 8, 1, 6);
  Planner<1> planner(&g.stencil, cfg_for<1>(g.stencil, 8, 1));
  auto sched = planner.plan();
  sched::Schedule<1> doubled;
  for (const auto& op : sched.ops()) {
    doubled.push(op);
    if (op.kind == OpKind::kLeaf) doubled.push(op);
  }
  EXPECT_THROW(sched::run_schedule<1>(g, doubled), bsmp::invariant_error);
}

TEST(Schedule, LeafWidthTradesOpsForWords) {
  // Larger leaves: fewer ops, fewer staged words (Theorem 3's
  // executable diamonds absorb the recursion).
  geom::Stencil<1> st{{32}, 32, 4};
  Planner<1> fine(&st, cfg_for<1>(st, 16, 1));
  Planner<1> coarse(&st, cfg_for<1>(st, 16, 4));
  auto a = fine.plan(), b = coarse.plan();
  EXPECT_GT(a.size(), b.size());
  EXPECT_GT(a.words_moved(), b.words_moved());
}
