// Tier-2 conformance suite (ctest -L conformance): every table
// emitter must produce value- and byte-identical output at threads=1
// and threads=N. This is the determinism contract of the sweep engine
// — per-point result slots, per-point RNG streams, build-once plan
// cache — pinned down end to end across all paper artifacts, the
// dense E6 sweep, and the advisor calibration. The suite also checks
// the structural invariants of the metrics layer and leaves
// metrics_conformance_*.json on disk for CI to upload.
#include <gtest/gtest.h>

#include "engine/metrics.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"
#include "sep/staging.hpp"
#include "tables/emitters.hpp"

using namespace bsmp;

namespace {

// The whole conformance suite runs with the fork-join recursion armed:
// every executor constructed in this binary defaults to
// parallel_grain = 8, so the threads=N passes below exercise the
// nested path (forked child regions, staging shards, charge-log
// replay) while the threads=1 passes stay the serial reference — the
// byte-identity assertions are exactly the determinism contract of
// the task layer. The golden digests must not move either way.
class ParallelGrainEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { sep::set_default_parallel_grain(8); }
  void TearDown() override { sep::set_default_parallel_grain(0); }
};

const auto* const kGrainEnv = ::testing::AddGlobalTestEnvironment(
    new ParallelGrainEnvironment);

int parallel_threads() { return std::max(4, engine::Pool::hardware_threads()); }

std::vector<tables::Emitted> run_emitter(const tables::Emitter& e,
                                         int threads,
                                         engine::PlanCache::Stats* stats) {
  engine::Pool pool(threads);
  engine::PlanCache plans;
  tables::EngineCtx ctx{&pool, &plans};
  auto out = e.fn(ctx);
  if (stats) *stats = plans.stats();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Every emitter: threads=1 vs threads=N tables must be identical, both
// as values (core::Table::operator==, bit-exact doubles) and as
// rendered bytes (digest over the printed text).
// ---------------------------------------------------------------------

class EmitterConformance : public ::testing::TestWithParam<const char*> {};

TEST_P(EmitterConformance, TablesIdenticalAtAnyThreadCount) {
  const auto& emitter = tables::find_emitter(GetParam());
  auto seq = run_emitter(emitter, 1, nullptr);
  auto par = run_emitter(emitter, parallel_threads(), nullptr);

  ASSERT_EQ(seq.size(), par.size()) << emitter.name;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(seq[i].table == par[i].table)
        << emitter.name << " table " << i << " ('" << seq[i].table.title()
        << "') differs between threads=1 and threads=" << parallel_threads();
    EXPECT_EQ(seq[i].table.digest(), par[i].table.digest())
        << emitter.name << " table " << i << " rendered bytes differ";
    EXPECT_EQ(seq[i].note, par[i].note)
        << emitter.name << " note " << i << " differs";
  }
  EXPECT_FALSE(seq.empty()) << emitter.name << " emitted nothing";
}

INSTANTIATE_TEST_SUITE_P(AllEmitters, EmitterConformance,
                         ::testing::Values("e1", "e2", "e3", "e4", "e5", "e6",
                                           "e7", "e8", "e9", "e10", "e6d",
                                           "cal", "hot", "ens"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

// ---------------------------------------------------------------------
// The emitter registry itself.
// ---------------------------------------------------------------------

TEST(EmitterRegistry, FourteenEmittersInOrder) {
  const auto& all = tables::all_emitters();
  ASSERT_EQ(all.size(), 14u);
  EXPECT_STREQ(all.front().name, "e1");
  EXPECT_STREQ(all.back().name, "ens");
  EXPECT_EQ(&tables::find_emitter("e5"), &all[4]);
  EXPECT_EQ(&tables::find_emitter("e6d"), &all[10]);
  EXPECT_THROW(tables::find_emitter("e11"), precondition_error);
}

// ---------------------------------------------------------------------
// Seed-determinism regression: the per-point RNG stream depends only
// on (seed, point index) — never on the executing thread — so a sweep
// that consumes randomness produces identical output at every pool
// size.
// ---------------------------------------------------------------------

TEST(SeedDeterminism, PointRngPinnedToIndexNotThread) {
  std::vector<int> points(64);
  for (std::size_t i = 0; i < points.size(); ++i)
    points[i] = static_cast<int>(i);
  engine::SweepOptions opt;
  opt.seed = 42;
  auto draw = [](int, engine::SweepContext& ctx) {
    // Consume a thread-count-independent amount of randomness.
    std::uint64_t acc = 0;
    for (int k = 0; k < 1 + static_cast<int>(ctx.index % 5); ++k)
      acc = acc * 31 + ctx.rng.next();
    return acc;
  };
  engine::Pool seq(1), par(parallel_threads());
  auto a = engine::sweep_map<std::uint64_t>(seq, points, draw, opt);
  auto b = engine::sweep_map<std::uint64_t>(par, points, draw, opt);
  EXPECT_EQ(a, b);
  // And the stream really is per-point: distinct points draw
  // distinct values.
  EXPECT_NE(a[0], a[1]);
}

TEST(SeedDeterminism, PointRngIsAPureFunctionOfSeedAndIndex) {
  EXPECT_EQ(engine::point_rng(7, 3).next(), engine::point_rng(7, 3).next());
  EXPECT_NE(engine::point_rng(7, 3).next(), engine::point_rng(7, 4).next());
  EXPECT_NE(engine::point_rng(7, 3).next(), engine::point_rng(8, 3).next());
}

// ---------------------------------------------------------------------
// Golden digest of E5's first table (Theorem 4, m sweep). The digest
// is FNV-1a over the rendered table text, so it pins column layout,
// row order, and every formatted value. If an intentional change to
// the simulator or table formatting moves this, re-record the
// constant printed in the failure message.
// ---------------------------------------------------------------------

TEST(GoldenDigest, E5TableStable) {
  auto artifacts = run_emitter(tables::find_emitter("e5"), 1, nullptr);
  ASSERT_FALSE(artifacts.empty());
  constexpr std::uint64_t kE5aGolden = 0xe4f6a8f086a2f136ULL;
  EXPECT_EQ(artifacts[0].table.digest(), kE5aGolden)
      << "E5a table changed; new digest: 0x" << std::hex
      << artifacts[0].table.digest() << "\nrendered:\n"
      << artifacts[0].table.to_string();
}

// ---------------------------------------------------------------------
// Golden digests of the first E3 (Theorem 2, d=1 D&C) and E7
// (Theorem 5, d=2 D&C) tables — the two emitters whose every charge
// flows through the separator executor's leaf and recursion hot path.
// Recorded from the pre-flat-staging seed: the rewrite must keep these
// bytes (and therefore the entire charge stream) unchanged.
// ---------------------------------------------------------------------

TEST(GoldenDigest, E3TableStable) {
  auto artifacts = run_emitter(tables::find_emitter("e3"), 1, nullptr);
  ASSERT_FALSE(artifacts.empty());
  constexpr std::uint64_t kE3aGolden = 0x002043532995f039ULL;
  EXPECT_EQ(artifacts[0].table.digest(), kE3aGolden)
      << "E3a table changed; new digest: 0x" << std::hex
      << artifacts[0].table.digest() << "\nrendered:\n"
      << artifacts[0].table.to_string();
}

TEST(GoldenDigest, E7TableStable) {
  auto artifacts = run_emitter(tables::find_emitter("e7"), 1, nullptr);
  ASSERT_FALSE(artifacts.empty());
  constexpr std::uint64_t kE7aGolden = 0x111a254f5489d56eULL;
  EXPECT_EQ(artifacts[0].table.digest(), kE7aGolden)
      << "E7a table changed; new digest: 0x" << std::hex
      << artifacts[0].table.digest() << "\nrendered:\n"
      << artifacts[0].table.to_string();
}

// ---------------------------------------------------------------------
// Golden digest of the ENS table (64-scenario bit-sliced ensembles).
// The table carries the FNV lane digest of every final row of every
// lane, so this single constant pins the full semantic content of all
// 64 scenarios of both ensemble configs — any change to the batched
// value plane that alters even one bit of one lane moves it.
// ---------------------------------------------------------------------

TEST(GoldenDigest, EnsTableStable) {
  auto artifacts = run_emitter(tables::find_emitter("ens"), 1, nullptr);
  ASSERT_FALSE(artifacts.empty());
  constexpr std::uint64_t kEnsGolden = 0x177c97459c69092eULL;
  EXPECT_EQ(artifacts[0].table.digest(), kEnsGolden)
      << "ENS table changed; new digest: 0x" << std::hex
      << artifacts[0].table.digest() << "\nrendered:\n"
      << artifacts[0].table.to_string();
}

// ---------------------------------------------------------------------
// Validation mode (BSMP_VALIDATE / sep::set_validation_mode) flips the
// executor back to materializing preboundary / out-set vectors and
// asserting the topological-partition property at every recursion
// level. It must be purely diagnostic: the asserting path and the fast
// path emit byte-identical tables.
// ---------------------------------------------------------------------

TEST(ValidationMode, AssertingPathEmitsIdenticalBytes) {
  const bool saved = sep::validation_mode();
  for (const char* name : {"e3", "hot", "ens"}) {
    sep::set_validation_mode(false);
    auto fast = run_emitter(tables::find_emitter(name), 1, nullptr);
    sep::set_validation_mode(true);
    auto checked = run_emitter(tables::find_emitter(name), 1, nullptr);
    sep::set_validation_mode(saved);
    ASSERT_EQ(fast.size(), checked.size()) << name;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_TRUE(fast[i].table == checked[i].table)
          << name << " table " << i << " differs under validation mode";
      EXPECT_EQ(fast[i].table.digest(), checked[i].table.digest())
          << name << " table " << i
          << " rendered bytes differ under validation mode";
    }
  }
}

// ---------------------------------------------------------------------
// Parallel grain (BSMP_PARALLEL_GRAIN / sep::set_default_parallel_grain)
// arms the executor's fork-join recursion. Like validation mode it
// must be purely operational: grain off and grain on (under a
// multi-thread pool, so forking really happens) emit byte-identical
// tables.
// ---------------------------------------------------------------------

TEST(ParallelGrain, ForkedPathEmitsIdenticalBytes) {
  const std::int64_t saved = sep::default_parallel_grain();
  for (const char* name : {"e3", "hot", "ens"}) {
    sep::set_default_parallel_grain(0);
    auto serial = run_emitter(tables::find_emitter(name), parallel_threads(),
                              nullptr);
    sep::set_default_parallel_grain(8);
    auto forked = run_emitter(tables::find_emitter(name), parallel_threads(),
                              nullptr);
    sep::set_default_parallel_grain(saved);
    ASSERT_EQ(serial.size(), forked.size()) << name;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(serial[i].table == forked[i].table)
          << name << " table " << i << " differs with parallel grain on";
      EXPECT_EQ(serial[i].table.digest(), forked[i].table.digest())
          << name << " table " << i
          << " rendered bytes differ with parallel grain on";
    }
  }
}

// ---------------------------------------------------------------------
// PlanCache sharing is observable: the emitters with shared guests
// and reference runs must report cache hits on every pass.
// ---------------------------------------------------------------------

TEST(CacheConformance, SharedArtifactEmittersHitTheCache) {
  for (const char* name : {"e5", "e6", "e10", "e6d", "cal"}) {
    engine::PlanCache::Stats stats;
    run_emitter(tables::find_emitter(name), parallel_threads(), &stats);
    EXPECT_GT(stats.hits, 0u) << name << " reported no cache hits";
    EXPECT_GT(stats.misses, 0u) << name << " reported no cache misses";
    // Build-once: every miss runs the builder exactly once, and hits
    // never do — so builds == misses on a fresh cache.
    EXPECT_EQ(stats.builds, stats.misses)
        << name << " builds != misses on a fresh cache";
  }
}

// ---------------------------------------------------------------------
// Metrics conformance: the observability layer must never perturb the
// tables (checked above — the emitters run without a sink there), and
// its own structure must be stable across thread counts: same sweeps
// in the same order, same point counts, one timing slot per point.
// The reports written here (metrics/metrics_conformance_<name>.json,
// under $BSMP_METRICS_DIR) stay on disk so CI can upload them as
// artifacts.
// ---------------------------------------------------------------------

TEST(MetricsConformance, StructureStableAcrossThreadCountsAndSerialized) {
  for (const char* name : {"e6d", "cal"}) {
    const auto& emitter = tables::find_emitter(name);
    engine::MetricsReport report;
    report.name = std::string("conformance_") + name;
    std::vector<tables::Emitted> tables_by_pass[2];
    int pass_threads[2] = {1, parallel_threads()};
    for (int pass = 0; pass < 2; ++pass) {
      engine::Pool pool(pass_threads[pass]);
      engine::PlanCache plans;
      engine::Metrics metrics;
      tables::EngineCtx ctx{&pool, &plans, &metrics};
      tables_by_pass[pass] = emitter.fn(ctx);
      engine::MetricsPass mp;
      mp.threads = pass_threads[pass];
      mp.cache = plans.stats();
      mp.sweeps = metrics.snapshot();
      report.passes.push_back(std::move(mp));
    }

    // Attaching a sink must not change the tables.
    auto bare = run_emitter(emitter, 1, nullptr);
    ASSERT_EQ(bare.size(), tables_by_pass[0].size()) << name;
    for (std::size_t i = 0; i < bare.size(); ++i)
      EXPECT_EQ(bare[i].table.digest(), tables_by_pass[0][i].table.digest())
          << name << " table " << i << " changed when metrics were attached";

    const auto& seq = report.passes[0].sweeps;
    const auto& par = report.passes[1].sweeps;
    ASSERT_EQ(seq.size(), par.size()) << name << " sweep count diverged";
    ASSERT_FALSE(seq.empty()) << name << " recorded no sweeps";
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].label, par[i].label) << name << " sweep " << i;
      EXPECT_EQ(seq[i].points, par[i].points) << name << " sweep " << i;
      for (const auto* sm : {&seq[i], &par[i]}) {
        EXPECT_FALSE(sm->label.empty()) << name << " sweep " << i;
        ASSERT_EQ(sm->per_point.size(), sm->points) << name << " sweep " << i;
        for (std::size_t j = 0; j < sm->per_point.size(); ++j) {
          EXPECT_EQ(sm->per_point[j].index, j);
          EXPECT_GE(sm->per_point[j].queue_wait_s, 0.0);
          EXPECT_GE(sm->per_point[j].run_s, 0.0);
        }
      }
    }
    EXPECT_EQ(report.passes[0].cache.builds, report.passes[1].cache.builds)
        << name << " built a different number of plans at threads=1 vs N";

    report.manifest = engine::trace::make_run_manifest(report.name);
    const auto path = engine::metrics_output_path(report.name);
    EXPECT_TRUE(report.write_json_file(path)) << "could not write " << path;
  }
}

// ---------------------------------------------------------------------
// Golden digest of the dense-E6 fit summary ("E6d fit summary", the
// last artifact of the e6d emitter): mechanism constants, mean
// relative errors, and the measured-vs-fitted argmin verdicts for
// every m. Pins the whole dense sweep + least-squares pipeline.
// ---------------------------------------------------------------------

TEST(GoldenDigest, E6DenseFitSummaryStable) {
  auto artifacts = run_emitter(tables::find_emitter("e6d"), 1, nullptr);
  ASSERT_EQ(artifacts.size(), 4u);
  const auto& fit = artifacts.back().table;
  EXPECT_NE(fit.title().find("fit summary"), std::string::npos);
  constexpr std::uint64_t kE6dFitGolden = 0xf0e7f309f26f7179ULL;
  EXPECT_EQ(fit.digest(), kE6dFitGolden)
      << "E6d fit summary changed; new digest: 0x" << std::hex << fit.digest()
      << "\nrendered:\n"
      << fit.to_string();
}

// ---------------------------------------------------------------------
// Golden digest of the calibration training table (CAL-a): pins the
// training grid itself (rows = grid points, in order) along with every
// measured slowdown and fitted prediction — so a grid change is a
// deliberate act that re-records this constant (and the holdout note
// in EXPERIMENTS.md).
// ---------------------------------------------------------------------

TEST(GoldenDigest, CalibrationTrainingTableStable) {
  // CAL-a..c plus the per-mechanism CAL-d/CAL-e decomposition tables;
  // only the training table (CAL-a) is digest-pinned.
  auto artifacts = run_emitter(tables::find_emitter("cal"), 1, nullptr);
  ASSERT_EQ(artifacts.size(), 5u);
  const auto& train = artifacts[0].table;
  constexpr std::uint64_t kCalAGolden = 0xb8883e89112d030fULL;
  EXPECT_EQ(train.digest(), kCalAGolden)
      << "CAL-a table changed; new digest: 0x" << std::hex << train.digest()
      << "\nrendered:\n"
      << train.to_string();
}
