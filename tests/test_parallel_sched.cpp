// The parallel schedule IR: the multiprocessor simulator emits its
// exact op stream; the evaluated makespan reproduces the simulator's
// virtual time, and the replayed values reproduce the guest's.
#include <gtest/gtest.h>

#include "sched/parallel.hpp"
#include "sched/runner.hpp"
#include "sim/multiproc.hpp"
#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

struct Emitted {
  sim::SimResult<1> res;
  sched::ParallelSchedule<1> sched;
};

Emitted emit_run(int64_t n, int64_t p, int64_t m, int64_t s) {
  auto g = workload::make_mix_guest<1>({n}, n, m, n + p + m);
  machine::MachineSpec host{1, n, p, m};
  sim::MultiprocConfig cfg;
  cfg.s = s;
  sim::MultiprocSimulator<1> simulator(&g, host, cfg);
  Emitted out{{}, sched::ParallelSchedule<1>(p)};
  simulator.set_emit(&out.sched);
  out.res = simulator.run();
  return out;
}

}  // namespace

TEST(ParallelSchedule, MakespanMatchesSimulatorExactly) {
  for (auto [n, p, m, s] :
       {std::tuple{32L, 2L, 1L, 4L}, {32L, 4L, 2L, 4L}, {64L, 4L, 4L, 8L},
        {64L, 8L, 1L, 8L}}) {
    auto got = emit_run(n, p, m, s);
    machine::MachineSpec host{1, n, p, m};
    geom::Stencil<1> st{{n}, n, m};
    double makespan = got.sched.makespan_under(st, host.access_fn());
    EXPECT_NEAR(makespan, got.res.time, 1e-6 * got.res.time)
        << "n=" << n << " p=" << p << " m=" << m << " s=" << s;
  }
}

TEST(ParallelSchedule, ReplayReproducesTheGuest) {
  auto got = emit_run(32, 4, 2, 4);
  auto g = workload::make_mix_guest<1>({32}, 32, 2, 32 + 4 + 2);
  auto run = sched::run_schedule<1>(g, got.sched);
  auto ref = sim::reference_run<1>(g);
  auto fin = sim::extract_final<1>(g.stencil, run.values);
  EXPECT_TRUE(sim::same_values<1>(fin, ref.final_values));
  EXPECT_EQ(run.vertices, 32 * 32);
}

TEST(ParallelSchedule, HasTheTwoRegimeStructure) {
  auto got = emit_run(64, 4, 2, 4);
  using sched::OpKind;
  EXPECT_GT(got.sched.count(OpKind::kRelocate), 0);  // Regime 1
  EXPECT_GT(got.sched.count(OpKind::kLeaf), 0);      // Regime 2 bodies
  EXPECT_GT(got.sched.count(OpKind::kComm), 0);      // cooperating mode
  EXPECT_GT(got.sched.count(OpKind::kBarrier), 0);   // stages
  auto s = got.sched.summary();
  EXPECT_NE(s.find("relocate="), std::string::npos);
}

TEST(ParallelSchedule, OpsUseAllProcessors) {
  auto got = emit_run(64, 4, 1, 8);
  std::array<bool, 4> used{};
  for (const auto& op : got.sched.ops())
    if (op.kind == sched::OpKind::kLeaf) used[op.proc] = true;
  for (int pr = 0; pr < 4; ++pr) EXPECT_TRUE(used[pr]) << pr;
}

TEST(ParallelSchedule, RejectsForeignProcIds) {
  sched::ParallelSchedule<1> s(2);
  sched::Op<1> op;
  op.kind = sched::OpKind::kLeaf;
  op.proc = 5;
  EXPECT_THROW(s.push(op), bsmp::precondition_error);
}

TEST(ParallelSchedule, EmitterValidatesProcCount) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 1);
  machine::MachineSpec host{1, 16, 4, 1};
  sim::MultiprocConfig cfg;
  cfg.s = 2;
  sim::MultiprocSimulator<1> simulator(&g, host, cfg);
  sched::ParallelSchedule<1> wrong(2);
  EXPECT_THROW(simulator.set_emit(&wrong), bsmp::precondition_error);
}

TEST(ParallelSchedule, D2EmissionWorks) {
  auto g = workload::make_mix_guest<2>({4, 4}, 6, 1, 9);
  machine::MachineSpec host{2, 16, 4, 1};
  sim::MultiprocConfig cfg;
  cfg.s = 2;
  sim::MultiprocSimulator<2> simulator(&g, host, cfg);
  sched::ParallelSchedule<2> sched(4);
  simulator.set_emit(&sched);
  auto res = simulator.run();
  double makespan = sched.makespan_under(g.stencil, host.access_fn());
  EXPECT_NEAR(makespan, res.time, 1e-6 * res.time);
  auto run = sched::run_schedule<2>(g, sched);
  auto ref = sim::reference_run<2>(g);
  EXPECT_TRUE(sim::same_values<2>(
      sim::extract_final<2>(g.stencil, run.values), ref.final_values));
}

TEST(ParallelSchedule, StageProfileSumsToMakespan) {
  auto got = emit_run(64, 4, 2, 8);
  machine::MachineSpec host{1, 64, 4, 2};
  geom::Stencil<1> st{{64}, 64, 2};
  auto stages = got.sched.stage_profile(st, host.access_fn());
  ASSERT_FALSE(stages.empty());
  double total = 0;
  for (const auto& s : stages) {
    total += s.makespan;
    EXPECT_GT(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0 + 1e-9);
  }
  EXPECT_NEAR(total, got.res.time, 1e-6 * got.res.time);
}

TEST(ParallelSchedule, StageProfileShowsRegimeStructure) {
  // Regime-1 relocation stages are perfectly balanced (utilization 1);
  // Regime-2 stages are not (truncated boundary diamonds idle some
  // processors).
  auto got = emit_run(64, 4, 1, 8);
  geom::Stencil<1> st{{64}, 64, 1};
  machine::MachineSpec host{1, 64, 4, 1};
  auto stages = got.sched.stage_profile(st, host.access_fn());
  int balanced = 0, unbalanced = 0;
  for (const auto& s : stages) {
    if (s.utilization > 0.999)
      ++balanced;
    else
      ++unbalanced;
  }
  EXPECT_GT(balanced, 0);
  EXPECT_GT(unbalanced, 0);
}
