// E6 — ablation of the strip width s (Section 4.2's optimization).
// Tables (with the three-mechanism least-squares fit) come from
// tables::e6_tables via the engine harness, followed by the dense
// every-s sweep (e6d) and the engine-backed advisor calibration (cal).
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void BM_sweep_s(benchmark::State& state) {
  std::int64_t s = state.range(0);
  auto g = workload::make_mix_guest<1>({128}, 128, 8, 9);
  sim::MultiprocConfig cfg;
  cfg.s = s;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_multiproc<1>(g, spec(1, 128, 4, 8), cfg));
}
BENCHMARK(BM_sweep_s)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BSMP_BENCH_MAIN("e6", "e6d", "cal")
