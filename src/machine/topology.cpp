#include "machine/topology.hpp"

#include <cmath>

#include "core/expect.hpp"

namespace bsmp::machine {

LinearArray::LinearArray(std::int64_t n) : n_(n) { BSMP_REQUIRE(n >= 1); }

int LinearArray::neighbors(NodeId v, std::vector<NodeId>& out) const {
  BSMP_REQUIRE(v >= 0 && v < n_);
  int added = 0;
  if (v > 0) {
    out.push_back(v - 1);
    ++added;
  }
  if (v + 1 < n_) {
    out.push_back(v + 1);
    ++added;
  }
  return added;
}

Mesh2D::Mesh2D(std::int64_t side) : side_(side) { BSMP_REQUIRE(side >= 1); }

int Mesh2D::neighbors(NodeId v, std::vector<NodeId>& out) const {
  BSMP_REQUIRE(v >= 0 && v < num_nodes());
  auto [i, j] = coords(v);
  int added = 0;
  if (i > 0) { out.push_back(id(i - 1, j)); ++added; }
  if (i + 1 < side_) { out.push_back(id(i + 1, j)); ++added; }
  if (j > 0) { out.push_back(id(i, j - 1)); ++added; }
  if (j + 1 < side_) { out.push_back(id(i, j + 1)); ++added; }
  return added;
}

double Mesh2D::distance(NodeId a, NodeId b) const {
  auto ca = coords(a);
  auto cb = coords(b);
  double di = static_cast<double>(std::abs(ca[0] - cb[0]));
  double dj = static_cast<double>(std::abs(ca[1] - cb[1]));
  return std::max(di, dj);
}

Mesh3D::Mesh3D(std::int64_t side) : side_(side) { BSMP_REQUIRE(side >= 1); }

int Mesh3D::neighbors(NodeId v, std::vector<NodeId>& out) const {
  BSMP_REQUIRE(v >= 0 && v < num_nodes());
  auto [i, j, k] = coords(v);
  int added = 0;
  if (i > 0) { out.push_back(id(i - 1, j, k)); ++added; }
  if (i + 1 < side_) { out.push_back(id(i + 1, j, k)); ++added; }
  if (j > 0) { out.push_back(id(i, j - 1, k)); ++added; }
  if (j + 1 < side_) { out.push_back(id(i, j + 1, k)); ++added; }
  if (k > 0) { out.push_back(id(i, j, k - 1)); ++added; }
  if (k + 1 < side_) { out.push_back(id(i, j, k + 1)); ++added; }
  return added;
}

}  // namespace bsmp::machine
