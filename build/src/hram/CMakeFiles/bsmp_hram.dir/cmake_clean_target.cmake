file(REMOVE_RECURSE
  "libbsmp_hram.a"
)
