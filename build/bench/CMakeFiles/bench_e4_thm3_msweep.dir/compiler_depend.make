# Empty compiler generated dependencies file for bench_e4_thm3_msweep.
# This may be replaced when dependencies are built.
