#include "engine/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace bsmp::engine {

double SweepMetric::busy_s() const {
  double b = 0;
  for (const auto& p : per_point) b += p.run_s;
  return b;
}

double SweepMetric::occupancy() const {
  double denom = wall_s * static_cast<double>(pool_threads);
  return denom <= 0 ? 0.0 : busy_s() / denom;
}

void Metrics::record(SweepMetric m) {
  std::lock_guard<std::mutex> lk(mu_);
  sweeps_.push_back(std::move(m));
}

std::vector<SweepMetric> Metrics::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sweeps_;
}

std::size_t Metrics::num_sweeps() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sweeps_.size();
}

void Metrics::record_hot(HotPathMetric m) {
  std::lock_guard<std::mutex> lk(mu_);
  hot_.push_back(std::move(m));
}

std::vector<HotPathMetric> Metrics::hot_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hot_;
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  sweeps_.clear();
  hot_.clear();
}

double MetricsReport::speedup() const {
  if (passes.size() < 2) return 1.0;
  double last = passes.back().seconds;
  return last > 0 ? passes.front().seconds / last : 0.0;
}

namespace {

// Labels are caller-controlled ASCII, but escape defensively so the
// artifact is always valid JSON.
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void json_real(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

}  // namespace

void MetricsReport::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"bsmp-metrics-v1\",\n  \"name\": ";
  json_string(os, name);
  os << ",\n  \"speedup\": ";
  json_real(os, speedup());
  os << ",\n  \"passes\": [";
  for (std::size_t pi = 0; pi < passes.size(); ++pi) {
    const auto& pass = passes[pi];
    os << (pi ? ",\n    {" : "\n    {");
    os << "\n      \"threads\": " << pass.threads << ",\n      \"seconds\": ";
    json_real(os, pass.seconds);
    os << ",\n      \"cache\": {\"hits\": " << pass.cache.hits
       << ", \"misses\": " << pass.cache.misses
       << ", \"builds\": " << pass.cache.builds << ", \"hit_rate\": ";
    json_real(os, pass.cache.hit_rate());
    os << "},\n      \"tasks\": {\"spawned\": " << pass.tasks.spawned
       << ", \"inlined\": " << pass.tasks.inlined
       << ", \"stolen\": " << pass.tasks.stolen
       << ", \"steal_ops\": " << pass.tasks.steal_ops
       << ", \"join_waits\": " << pass.tasks.join_waits;
    os << "},\n      \"sweeps\": [";
    for (std::size_t si = 0; si < pass.sweeps.size(); ++si) {
      const auto& sw = pass.sweeps[si];
      os << (si ? ",\n        {" : "\n        {");
      os << "\n          \"label\": ";
      json_string(os, sw.label);
      os << ",\n          \"points\": " << sw.points
         << ", \"pool_threads\": " << sw.pool_threads << ",\n          "
         << "\"wall_s\": ";
      json_real(os, sw.wall_s);
      os << ", \"busy_s\": ";
      json_real(os, sw.busy_s());
      os << ", \"occupancy\": ";
      json_real(os, sw.occupancy());
      os << ",\n          \"per_point\": [";
      for (std::size_t i = 0; i < sw.per_point.size(); ++i) {
        const auto& pt = sw.per_point[i];
        os << (i ? ", " : "") << "{\"index\": " << pt.index
           << ", \"queue_wait_s\": ";
        json_real(os, pt.queue_wait_s);
        os << ", \"run_s\": ";
        json_real(os, pt.run_s);
        os << "}";
      }
      os << "]\n        }";
    }
    os << (pass.sweeps.empty() ? "]" : "\n      ]");
    os << ",\n      \"hot\": [";
    for (std::size_t hi = 0; hi < pass.hot.size(); ++hi) {
      const auto& h = pass.hot[hi];
      os << (hi ? ",\n        {" : "\n        {");
      os << "\n          \"label\": ";
      json_string(os, h.label);
      os << ",\n          \"vertices\": " << h.vertices
         << ", \"seconds\": ";
      json_real(os, h.seconds);
      os << ", \"vertices_per_sec\": ";
      json_real(os, h.vertices_per_sec());
      os << ",\n          \"peak_staging_words\": " << h.peak_staging_words
         << ", \"staging_allocs\": " << h.staging_allocs << "\n        }";
    }
    os << (pass.hot.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (passes.empty() ? "]" : "\n  ]") << "\n}\n";
}

bool MetricsReport::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

std::string metrics_filename(const std::string& name) {
  return "metrics_" + name + ".json";
}

}  // namespace bsmp::engine
