// Schedule IR: the divide-and-conquer simulation as explicit data.
//
// The Executor in sep/ plans and runs in one pass. For a production
// system we also want the plan as a first-class object — to inspect it,
// validate it statically, re-cost it under a different memory regime
// (unit-cost RAM, hierarchical, pipelined) without re-planning, and
// replay it. A Schedule is a flat list of typed operations:
//
//   kCopyIn  — stage `words` preboundary words for a domain, charged
//              2 f(addr_scale) per word (Prop. 2 step 1);
//   kLeaf    — naively execute the vertices of a leaf region, charged
//              (operands+1) f(leaf_scale) + 1 per vertex;
//   kCopyOut — save `words` out-set words (Prop. 2 step 3);
//
// all annotated with the address scale at which the paper charges the
// access function. cost_under() evaluates the whole schedule against
// any AccessFn, so "what would this exact schedule cost on machine X"
// is a pure function of the IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "geom/region.hpp"
#include "hram/access_fn.hpp"

namespace bsmp::sched {

enum class OpKind : unsigned {
  kCopyIn = 0,  ///< stage preboundary words (Prop. 2 step 1)
  kLeaf,        ///< naively execute a leaf region
  kCopyOut,     ///< save out-set words (Prop. 2 step 3)
  kComm,        ///< interprocessor transfer: words x distance
  kRelocate,    ///< Regime-1 relocation: words x distance, p-parallel
  kBarrier,     ///< stage synchronization (parallel schedules)
  kKindCount
};

const char* to_string(OpKind k);

template <int D>
struct Op {
  OpKind kind = OpKind::kLeaf;
  /// Executing processor (parallel schedules; 0 for uniprocessor).
  std::int64_t proc = 0;
  /// Words moved (copy / comm / relocate ops).
  std::int64_t words = 0;
  /// Address scale at which the access function is charged.
  double addr_scale = 1.0;
  /// Geometric distance (kComm / kRelocate).
  double distance = 0.0;
  /// For kLeaf: the region to execute naively (box of the leaf).
  std::array<std::int64_t, geom::kMono<D>> leaf_lo{};
  std::array<std::int64_t, geom::kMono<D>> leaf_hi{};
};

/// Virtual time of a single leaf op under an access function — the
/// executor's naive-leaf charge: (operands+1) f(scale) + 1 per vertex.
template <int D>
core::Cost leaf_cost_under(const geom::Stencil<D>& st, const Op<D>& op,
                           const hram::AccessFn& f) {
  geom::Region<D> leaf(&st, op.leaf_lo, op.leaf_hi);
  core::Cost fl = f(static_cast<std::uint64_t>(op.addr_scale));
  core::Cost total = 0;
  leaf.for_each([&](const geom::Point<D>& p) {
    int operands = 1;
    if (p.t > 0) {
      std::array<geom::Point<D>, geom::kMono<D> + 1> buf;
      int preds = st.preds(p, buf);
      int neighbors = preds - (p.t >= st.m ? 1 : 0);
      operands = neighbors + 1;
    }
    total += static_cast<core::Cost>(operands + 1) * fl + 1.0;
  });
  return total;
}

template <int D>
class Schedule {
 public:
  void push(Op<D> op) { ops_.push_back(op); }

  const std::vector<Op<D>>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  std::int64_t count(OpKind k) const {
    std::int64_t c = 0;
    for (const auto& op : ops_)
      if (op.kind == k) ++c;
    return c;
  }

  std::int64_t words_moved() const {
    std::int64_t w = 0;
    for (const auto& op : ops_)
      if (op.kind != OpKind::kLeaf) w += op.words;
    return w;
  }

  /// Total vertices executed by leaf ops, given the stencil the leaf
  /// boxes refer to.
  std::int64_t vertices(const geom::Stencil<D>& st) const {
    std::int64_t v = 0;
    for (const auto& op : ops_)
      if (op.kind == OpKind::kLeaf)
        v += geom::Region<D>(&st, op.leaf_lo, op.leaf_hi).count();
    return v;
  }

  /// Virtual time of the whole schedule under an access function.
  /// `pipelined` applies the Section-6 block-transfer cost to the copy
  /// ops (one latency per block instead of per word).
  core::Cost cost_under(const geom::Stencil<D>& st, const hram::AccessFn& f,
                        bool pipelined = false) const {
    core::Cost total = 0;
    for (const auto& op : ops_) {
      auto addr = static_cast<std::uint64_t>(op.addr_scale);
      switch (op.kind) {
        case OpKind::kCopyIn:
        case OpKind::kCopyOut:
          total += pipelined
                       ? 2.0 * f.block_pipelined(addr, op.words)
                       : 2.0 * f.block(addr, op.words);
          break;
        case OpKind::kLeaf:
          total += leaf_cost_under<D>(st, op, f);
          break;
        case OpKind::kComm:
        case OpKind::kRelocate:
          total += static_cast<core::Cost>(op.words) * op.distance;
          break;
        case OpKind::kBarrier:
        case OpKind::kKindCount:
          break;
      }
    }
    return total;
  }

  std::string summary() const {
    std::string s = "ops=" + std::to_string(ops_.size());
    s += " copy_in=" + std::to_string(count(OpKind::kCopyIn));
    s += " leaves=" + std::to_string(count(OpKind::kLeaf));
    s += " copy_out=" + std::to_string(count(OpKind::kCopyOut));
    s += " words=" + std::to_string(words_moved());
    return s;
  }

 private:
  std::vector<Op<D>> ops_;
};

inline const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kCopyIn: return "copy_in";
    case OpKind::kLeaf: return "leaf";
    case OpKind::kCopyOut: return "copy_out";
    case OpKind::kComm: return "comm";
    case OpKind::kRelocate: return "relocate";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kKindCount: break;
  }
  return "?";
}

}  // namespace bsmp::sched
