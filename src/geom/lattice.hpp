// Space-time lattice points and the dependence stencil of mesh
// computations (Definition 3, generalized to memory size m).
//
// A vertex of the computation dag of a D-dimensional mesh is a pair
// (x, t): node x executes its step-t operation. Arcs of GT(H) make
// (x, t) depend on the neighbor values at t-1 and on the node's own
// memory cell, which — under the scanning access pattern that realizes
// the worst case charged by the theorems — was last written at t-m.
// For m = 1 this is exactly the dag of Definition 3.
//
// The key structural fact exploited throughout bsmp: in the 2D
// "monotone coordinates" (t + x_i, t - x_i), every dependence arc is
// non-increasing in every coordinate. Diamonds (d=1), octahedra and
// tetrahedra (d=2) are axis-aligned boxes in these coordinates, and
// splitting such a box at coordinate midpoints yields exactly the
// paper's topological partitions (4 sub-diamonds; 6 octahedra + 8
// tetrahedra; 5 pieces of a tetrahedron).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/expect.hpp"

namespace bsmp::geom {

using std::int64_t;

/// A lattice point of the space-time dag: spatial node coordinates plus
/// the time step.
template <int D>
struct Point {
  std::array<int64_t, D> x{};
  int64_t t = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Number of monotone coordinates.
template <int D>
inline constexpr int kMono = 2 * D;

/// Monotone coordinates of a point: (t + x_0, t - x_0, t + x_1, ...).
template <int D>
std::array<int64_t, kMono<D>> mono_coords(const Point<D>& p) {
  std::array<int64_t, kMono<D>> c;
  for (int i = 0; i < D; ++i) {
    c[2 * i] = p.t + p.x[i];
    c[2 * i + 1] = p.t - p.x[i];
  }
  return c;
}

template <int D>
struct PointHash {
  std::size_t operator()(const Point<D>& p) const {
    std::uint64_t h = static_cast<std::uint64_t>(p.t) * 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < D; ++i) {
      h ^= static_cast<std::uint64_t>(p.x[i]) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Dependence stencil: spatial extents, time horizon and memory depth.
///
/// Vertices are the points with 0 <= x_i < extent[i] and 0 <= t < T.
/// Vertex (x, 0) is an input vertex (no predecessors). For t >= 1 the
/// predecessors are the existing spatial neighbors (x +- e_i, t-1) and,
/// when t >= m, the node's own cell vertex (x, t-m); for t < m that
/// operand is an initial memory cell, i.e. an input, not an arc.
template <int D>
struct Stencil {
  std::array<int64_t, D> extent{};
  int64_t horizon = 1;  ///< T: vertices have 0 <= t < horizon
  int64_t m = 1;        ///< memory cells per node (self-dependence depth)

  void validate() const {
    for (int i = 0; i < D; ++i) BSMP_REQUIRE(extent[i] >= 1);
    BSMP_REQUIRE(horizon >= 1);
    BSMP_REQUIRE(m >= 1);
  }

  bool in_space(const std::array<int64_t, D>& x) const {
    for (int i = 0; i < D; ++i)
      if (x[i] < 0 || x[i] >= extent[i]) return false;
    return true;
  }

  /// Is p a vertex of the dag?
  bool is_vertex(const Point<D>& p) const {
    return p.t >= 0 && p.t < horizon && in_space(p.x);
  }

  /// Farthest a predecessor can be below p in any monotone coordinate.
  int64_t reach() const { return m > 2 ? m : 2; }

  int64_t num_nodes() const {
    int64_t n = 1;
    for (int i = 0; i < D; ++i) n *= extent[i];
    return n;
  }

  /// Appends the predecessors of vertex p to out; returns the count.
  /// Requires is_vertex(p).
  int preds(const Point<D>& p, std::array<Point<D>, kMono<D> + 1>& out) const {
    BSMP_ASSERT(is_vertex(p));
    int k = 0;
    if (p.t == 0) return 0;  // input vertex
    for (int i = 0; i < D; ++i) {
      for (int s = -1; s <= 1; s += 2) {
        Point<D> q = p;
        q.x[i] += s;
        q.t = p.t - 1;
        if (in_space(q.x)) out[k++] = q;
      }
    }
    if (p.t >= m) {
      Point<D> q = p;
      q.t = p.t - m;
      out[k++] = q;
    }
    return k;
  }

  /// Appends the *positions* that depend on p — mirrors preds() but does
  /// not clip time: a successor position with t >= horizon is reported
  /// (it is how top-face outputs are recognized). Spatial validity is
  /// enforced (a position outside the mesh is not a successor).
  int succ_positions(const Point<D>& p,
                     std::array<Point<D>, kMono<D> + 1>& out) const {
    int k = 0;
    for (int i = 0; i < D; ++i) {
      for (int s = -1; s <= 1; s += 2) {
        Point<D> q = p;
        q.x[i] += s;
        q.t = p.t + 1;
        if (in_space(q.x)) out[k++] = q;
      }
    }
    Point<D> q = p;
    q.t = p.t + m;
    out[k++] = q;
    return k;
  }
};

}  // namespace bsmp::geom
