// E4 — Theorem 3: M1(n,1,m) simulates M1(n,n,m) with slowdown
// O(n * min(n, m loḡ(n/m))). Sweeps m at fixed n (the locality
// slowdown grows with m until it saturates at the naive n) and n at
// fixed m.
#include "bench_common.hpp"
#include "core/logmath.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  {
    std::int64_t n = 128;
    core::Table t("E4a: Theorem 3 — m sweep at n=128 (d=1, p=1)",
                  {"m", "T1/Tn", "bound n*min(n,m*log(n/m))", "ratio",
                   "naive T1/Tn"});
    for (std::int64_t m : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      auto g = workload::make_mix_guest<1>({n}, n, m, 5);
      auto ref = sim::reference_run<1>(g);
      auto dc = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m));
      bench::require_equivalent<1>(dc, ref, "dc thm3");
      auto nv = sim::simulate_naive<1>(g, spec(1, n, 1, m));
      double bound = analytic::thm3_bound((double)n, (double)m);
      t.add_row({(long long)m, dc.slowdown(), bound, dc.slowdown() / bound,
                 nv.slowdown()});
    }
    t.print(std::cout);
    std::cout << "# Locality slowdown grows ~ m log(n/m) and saturates at\n"
                 "# the naive level once m ~ n.\n\n";
  }
  {
    std::int64_t m = 8;
    core::Table t("E4b: Theorem 3 — n sweep at m=8",
                  {"n", "T1/Tn", "bound", "ratio"});
    for (std::int64_t n : {32, 64, 128, 256}) {
      auto g = workload::make_mix_guest<1>({n}, n, m, 6);
      auto ref = sim::reference_run<1>(g);
      auto dc = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m));
      bench::require_equivalent<1>(dc, ref, "dc thm3 n-sweep");
      double bound = analytic::thm3_bound((double)n, (double)m);
      t.add_row({(long long)n, dc.slowdown(), bound,
                 dc.slowdown() / bound});
    }
    t.print(std::cout);
    std::cout << "# ratio flat in n: slowdown Θ(n * m log(n/m)).\n\n";
  }
  {
    // Ablation of the executable-diamond width (the leaf at which the
    // recursion switches to naive execution — Theorem 3 picks D(m)).
    // The measured curve has the interior minimum the theorem's
    // analysis predicts: smaller leaves pay more relocation levels,
    // larger leaves pay superlinear naive execution. The minimum sits
    // at Θ(m) — at c*m where c ~ (relocation constant)/(naive
    // constant) of the implementation, ~16 here.
    std::int64_t n = 512, m = 4;
    core::Table t("E4c: executable-diamond width ablation — n=512, m=4",
                  {"leaf width", "T1/Tn", "note"});
    auto g = workload::make_mix_guest<1>({n}, n, m, 13);
    auto ref = sim::reference_run<1>(g);
    double best = 1e300, at_m = 0;
    std::vector<std::pair<std::int64_t, double>> rows;
    for (std::int64_t leaf = 1; leaf <= n; leaf *= 4) {
      sim::DcConfig cfg;
      cfg.leaf_width = leaf;
      auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m), cfg);
      bench::require_equivalent<1>(res, ref, "leaf ablation");
      rows.emplace_back(leaf, res.slowdown());
      best = std::min(best, res.slowdown());
      if (leaf == m) at_m = res.slowdown();
    }
    for (auto [leaf, slow] : rows) {
      std::string note;
      if (leaf == m) note += "= m (Theorem 3); ";
      if (slow == best) note += "minimum";
      t.add_row({(long long)leaf, slow, note});
    }
    t.print(std::cout);
    std::cout << "# interior minimum at a constant multiple of m; leaf=m\n"
                 "# itself is within " << at_m / best
              << "x — the Θ(m) switch point of Theorem 3.\n\n";
  }
}

void BM_dc_thm3(benchmark::State& state) {
  std::int64_t m = state.range(0);
  auto g = workload::make_mix_guest<1>({128}, 128, m, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_dc_uniproc<1>(g, spec(1, 128, 1, m)));
}
BENCHMARK(BM_dc_thm3)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BSMP_BENCH_MAIN(emit)
