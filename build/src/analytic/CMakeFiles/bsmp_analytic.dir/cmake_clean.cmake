file(REMOVE_RECURSE
  "CMakeFiles/bsmp_analytic.dir/advisor.cpp.o"
  "CMakeFiles/bsmp_analytic.dir/advisor.cpp.o.d"
  "CMakeFiles/bsmp_analytic.dir/fit.cpp.o"
  "CMakeFiles/bsmp_analytic.dir/fit.cpp.o.d"
  "CMakeFiles/bsmp_analytic.dir/tradeoff.cpp.o"
  "CMakeFiles/bsmp_analytic.dir/tradeoff.cpp.o.d"
  "libbsmp_analytic.a"
  "libbsmp_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
