# Empty compiler generated dependencies file for mesh_sort.
# This may be replaced when dependencies are built.
