file(REMOVE_RECURSE
  "CMakeFiles/test_hram.dir/test_hram.cpp.o"
  "CMakeFiles/test_hram.dir/test_hram.cpp.o.d"
  "test_hram"
  "test_hram.pdb"
  "test_hram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
