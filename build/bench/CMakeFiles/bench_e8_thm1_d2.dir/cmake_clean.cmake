file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_thm1_d2.dir/bench_e8_thm1_d2.cpp.o"
  "CMakeFiles/bench_e8_thm1_d2.dir/bench_e8_thm1_d2.cpp.o.d"
  "bench_e8_thm1_d2"
  "bench_e8_thm1_d2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_thm1_d2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
