# Empty compiler generated dependencies file for bsmp_machine.
# This may be replaced when dependencies are built.
