file(REMOVE_RECURSE
  "libbsmp_core.a"
)
