#include "hram/ram_machine.hpp"

#include "core/expect.hpp"

namespace bsmp::hram {

const char* to_string(RamOp op) {
  switch (op) {
    case RamOp::kLoadImm: return "LOADI";
    case RamOp::kLoad: return "LOAD";
    case RamOp::kLoadInd: return "LOADN";
    case RamOp::kStore: return "STORE";
    case RamOp::kStoreInd: return "STOREN";
    case RamOp::kAdd: return "ADD";
    case RamOp::kSub: return "SUB";
    case RamOp::kMul: return "MUL";
    case RamOp::kAddImm: return "ADDI";
    case RamOp::kSubImm: return "SUBI";
    case RamOp::kMulImm: return "MULI";
    case RamOp::kJmp: return "JMP";
    case RamOp::kJz: return "JZ";
    case RamOp::kJnz: return "JNZ";
    case RamOp::kJlz: return "JLZ";
    case RamOp::kHalt: return "HALT";
  }
  return "?";
}

Assembler& Assembler::label(const std::string& name) {
  BSMP_REQUIRE_MSG(!labels_.contains(name), "duplicate label " << name);
  labels_[name] = static_cast<std::int64_t>(prog_.size());
  return *this;
}

Assembler& Assembler::emit(RamOp op, std::int64_t arg) {
  prog_.push_back({op, arg});
  return *this;
}

Assembler& Assembler::jump(RamOp op, const std::string& target) {
  BSMP_REQUIRE(op == RamOp::kJmp || op == RamOp::kJz ||
               op == RamOp::kJnz || op == RamOp::kJlz);
  pending_.push_back({prog_.size(), target});
  prog_.push_back({op, -1});
  return *this;
}

RamProgram Assembler::assemble() const {
  RamProgram out = prog_;
  for (const auto& p : pending_) {
    auto it = labels_.find(p.target);
    BSMP_REQUIRE_MSG(it != labels_.end(), "undefined label " << p.target);
    out[p.instr].arg = it->second;
  }
  return out;
}

RamResult run_ram_program(const RamProgram& prog, HRam& ram,
                          std::int64_t max_instructions) {
  RamResult res;
  hram::Word acc = 0;
  std::int64_t pc = 0;
  const auto n = static_cast<std::int64_t>(prog.size());

  auto addr_of = [&](std::int64_t a) -> std::size_t {
    BSMP_REQUIRE_MSG(a >= 0, "negative address");
    return static_cast<std::size_t>(a);
  };

  while (res.instructions < max_instructions) {
    BSMP_REQUIRE_MSG(pc >= 0 && pc < n, "pc out of program");
    const RamInstr& in = prog[static_cast<std::size_t>(pc)];
    ++res.instructions;
    // One unit for the instruction itself (the Section-2 time unit);
    // memory operands below add their f(address) through the HRam.
    ram.ledger().charge(core::CostKind::kCompute, 1.0);
    ++pc;
    switch (in.op) {
      case RamOp::kLoadImm:
        acc = static_cast<hram::Word>(in.arg);
        break;
      case RamOp::kLoad:
        acc = ram.read(addr_of(in.arg));
        break;
      case RamOp::kLoadInd: {
        hram::Word a = ram.read(addr_of(in.arg));
        acc = ram.read(addr_of(static_cast<std::int64_t>(a)));
        break;
      }
      case RamOp::kStore:
        ram.write(addr_of(in.arg), acc);
        break;
      case RamOp::kStoreInd: {
        hram::Word a = ram.read(addr_of(in.arg));
        ram.write(addr_of(static_cast<std::int64_t>(a)), acc);
        break;
      }
      case RamOp::kAdd:
        acc += ram.read(addr_of(in.arg));
        break;
      case RamOp::kSub:
        acc -= ram.read(addr_of(in.arg));
        break;
      case RamOp::kMul:
        acc *= ram.read(addr_of(in.arg));
        break;
      case RamOp::kAddImm:
        acc += static_cast<hram::Word>(in.arg);
        break;
      case RamOp::kSubImm:
        acc -= static_cast<hram::Word>(in.arg);
        break;
      case RamOp::kMulImm:
        acc *= static_cast<hram::Word>(in.arg);
        break;
      case RamOp::kJmp:
        pc = in.arg;
        break;
      case RamOp::kJz:
        if (acc == 0) pc = in.arg;
        break;
      case RamOp::kJnz:
        if (acc != 0) pc = in.arg;
        break;
      case RamOp::kJlz:
        if (acc >> 63) pc = in.arg;
        break;
      case RamOp::kHalt:
        res.halted = true;
        res.acc = acc;
        res.time = ram.ledger().total();
        return res;
    }
  }
  res.acc = acc;
  res.time = ram.ledger().total();
  return res;  // halted == false: step limit
}

}  // namespace bsmp::hram
