
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/clocks.cpp" "src/machine/CMakeFiles/bsmp_machine.dir/clocks.cpp.o" "gcc" "src/machine/CMakeFiles/bsmp_machine.dir/clocks.cpp.o.d"
  "/root/repo/src/machine/layout.cpp" "src/machine/CMakeFiles/bsmp_machine.dir/layout.cpp.o" "gcc" "src/machine/CMakeFiles/bsmp_machine.dir/layout.cpp.o.d"
  "/root/repo/src/machine/rearrange.cpp" "src/machine/CMakeFiles/bsmp_machine.dir/rearrange.cpp.o" "gcc" "src/machine/CMakeFiles/bsmp_machine.dir/rearrange.cpp.o.d"
  "/root/repo/src/machine/spec.cpp" "src/machine/CMakeFiles/bsmp_machine.dir/spec.cpp.o" "gcc" "src/machine/CMakeFiles/bsmp_machine.dir/spec.cpp.o.d"
  "/root/repo/src/machine/topology.cpp" "src/machine/CMakeFiles/bsmp_machine.dir/topology.cpp.o" "gcc" "src/machine/CMakeFiles/bsmp_machine.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hram/CMakeFiles/bsmp_hram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
