file(REMOVE_RECURSE
  "CMakeFiles/bsmp_core.dir/args.cpp.o"
  "CMakeFiles/bsmp_core.dir/args.cpp.o.d"
  "CMakeFiles/bsmp_core.dir/cost.cpp.o"
  "CMakeFiles/bsmp_core.dir/cost.cpp.o.d"
  "CMakeFiles/bsmp_core.dir/logmath.cpp.o"
  "CMakeFiles/bsmp_core.dir/logmath.cpp.o.d"
  "CMakeFiles/bsmp_core.dir/table.cpp.o"
  "CMakeFiles/bsmp_core.dir/table.cpp.o.d"
  "libbsmp_core.a"
  "libbsmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
