// engine::Metrics — the observability layer: per-point timings
// recorded by Sweep::run, PlanCache build accounting, and the
// metrics_*.json serialization schema.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "engine/metrics.hpp"
#include "engine/plan_cache.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

std::vector<int> iota_points(int n) {
  std::vector<int> pts(n);
  for (int i = 0; i < n; ++i) pts[i] = i;
  return pts;
}

}  // namespace

TEST(Metrics, SweepRecordsOneSweepMetricWithPerPointTimings) {
  engine::Pool pool(2);
  engine::Metrics metrics;
  engine::SweepOptions opt;
  opt.metrics = &metrics;
  opt.label = "unit sweep";
  auto points = iota_points(16);
  auto rows = engine::sweep_map<int>(
      pool, points, [](int v, engine::SweepContext&) { return v * v; }, opt);
  ASSERT_EQ(rows.size(), 16u);

  auto sweeps = metrics.snapshot();
  ASSERT_EQ(sweeps.size(), 1u);
  const auto& sm = sweeps[0];
  EXPECT_EQ(sm.label, "unit sweep");
  EXPECT_EQ(sm.points, 16u);
  EXPECT_EQ(sm.pool_threads, 2);
  EXPECT_GE(sm.wall_s, 0.0);
  ASSERT_EQ(sm.per_point.size(), 16u);
  for (std::size_t i = 0; i < sm.per_point.size(); ++i) {
    // Slots are written at the point's index: point order regardless
    // of which thread ran what.
    EXPECT_EQ(sm.per_point[i].index, i);
    EXPECT_GE(sm.per_point[i].queue_wait_s, 0.0);
    EXPECT_GE(sm.per_point[i].run_s, 0.0);
  }
  EXPECT_GE(sm.busy_s(), 0.0);
  EXPECT_GE(sm.occupancy(), 0.0);
}

TEST(Metrics, NoSinkMeansNoRecording) {
  engine::Pool pool(1);
  engine::SweepOptions opt;  // metrics == nullptr
  auto rows = engine::sweep_map<int>(
      pool, iota_points(4), [](int v, engine::SweepContext&) { return v; },
      opt);
  EXPECT_EQ(rows.size(), 4u);  // nothing to observe, nothing crashed
}

TEST(Metrics, SnapshotAccumulatesAndClearResets) {
  engine::Pool pool(1);
  engine::Metrics metrics;
  engine::SweepOptions opt;
  opt.metrics = &metrics;
  for (int k = 0; k < 3; ++k) {
    opt.label = "sweep " + std::to_string(k);
    engine::sweep_map<int>(
        pool, iota_points(2), [](int v, engine::SweepContext&) { return v; },
        opt);
  }
  EXPECT_EQ(metrics.num_sweeps(), 3u);
  auto sweeps = metrics.snapshot();
  EXPECT_EQ(sweeps[0].label, "sweep 0");
  EXPECT_EQ(sweeps[2].label, "sweep 2");
  metrics.clear();
  EXPECT_EQ(metrics.num_sweeps(), 0u);
}

TEST(Metrics, OccupancyIsBusyOverWallTimesThreads) {
  engine::SweepMetric sm;
  sm.pool_threads = 4;
  sm.wall_s = 2.0;
  sm.per_point = {{0, 0.0, 1.0}, {1, 0.0, 3.0}};
  EXPECT_DOUBLE_EQ(sm.busy_s(), 4.0);
  EXPECT_DOUBLE_EQ(sm.occupancy(), 0.5);  // 4 / (2 * 4)
  sm.wall_s = 0.0;
  EXPECT_DOUBLE_EQ(sm.occupancy(), 0.0);  // degenerate, not a NaN
}

TEST(Metrics, ReportSpeedupIsFirstOverLastPass) {
  engine::MetricsReport report;
  EXPECT_DOUBLE_EQ(report.speedup(), 1.0);  // no passes
  report.passes.resize(1);
  report.passes[0].seconds = 4.0;
  EXPECT_DOUBLE_EQ(report.speedup(), 1.0);  // single pass
  report.passes.resize(2);
  report.passes[1].seconds = 2.0;
  EXPECT_DOUBLE_EQ(report.speedup(), 2.0);
}

namespace {

/// A fully-populated report exercising every serialized block.
engine::MetricsReport sample_report() {
  engine::MetricsReport report;
  report.name = "unit";
  report.manifest = engine::trace::make_run_manifest("unit");
  engine::MetricsPass pass;
  pass.threads = 2;
  pass.seconds = 1.5;
  pass.cache.hits = 7;
  pass.cache.misses = 3;
  pass.cache.builds = 3;
  pass.cache.evictions = 2;
  pass.cache.bytes = 4096;
  pass.mem.cold_allocs = 11;
  pass.mem.slab_reuses = 89;
  pass.mem.scratch_checkouts = 13;
  pass.mem.peak_bytes = 65536;
  engine::SweepMetric sm;
  sm.label = "sweep A";
  sm.points = 2;
  sm.pool_threads = 2;
  sm.wall_s = 1.0;
  sm.tasks.spawned = 5;
  sm.tasks.stolen = 2;
  sm.per_point = {{0, 0.0, 0.25}, {1, 0.125, 0.5}};
  pass.sweeps.push_back(sm);
  engine::HotPathMetric hm;
  hm.label = "hot A";
  hm.vertices = 1000;
  hm.seconds = 0.5;
  hm.peak_staging_words = 64;
  hm.staging_allocs = 4;
  pass.hot.push_back(hm);
  pass.histograms.span_ns[static_cast<int>(engine::trace::Cat::kSepRegion)]
                         [12] = 9;
  pass.histograms.steal_latency_ns[10] = 3;
  report.passes.push_back(pass);
  return report;
}

}  // namespace

TEST(Metrics, JsonSchemaContainsEveryStableField) {
  std::ostringstream os;
  sample_report().write_json(os);
  const std::string j = os.str();
  for (const char* key :
       {"\"schema\": \"bsmp-metrics-v3\"", "\"name\": \"unit\"",
        "\"speedup\"", "\"manifest\"", "\"git_sha\"", "\"build_type\"",
        "\"compiler\"", "\"hardware_threads\"", "\"num_cpus\"",
        "\"hostname\"", "\"simd_isa\"", "\"trace_compiled\"",
        "\"trace_enabled\"", "\"BSMP_TRACE\"", "\"BSMP_METRICS_DIR\"",
        "\"BSMP_ARENA\"", "\"BSMP_PLAN_CACHE_BYTES\"",
        "\"threads\": 2", "\"seconds\"", "\"hits\": 7", "\"misses\": 3",
        "\"builds\": 3", "\"hit_rate\"", "\"label\": \"sweep A\"",
        "\"points\": 2", "\"pool_threads\": 2", "\"wall_s\"", "\"busy_s\"",
        "\"occupancy\"", "\"per_point\"", "\"queue_wait_s\"", "\"run_s\"",
        "\"label\": \"hot A\"", "\"vertices\": 1000",
        "\"vertices_per_sec\": 2000", "\"peak_staging_words\": 64",
        "\"staging_allocs\": 4", "\"histograms\"",
        "\"sep-region\": [[12, 9]]", "\"steal_latency_ns\": [[10, 3]]",
        "\"evictions\": 2", "\"bytes\": 4096", "\"mem\"",
        "\"cold_allocs\": 11", "\"slab_reuses\": 89", "\"releases\": 0",
        "\"scratch_checkouts\": 13", "\"scratch_cold\": 0",
        "\"bytes_held\": 0", "\"bytes_live\": 0", "\"peak_bytes\": 65536"}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key << "\n"
                                              << j;
  }
}

// Structural compatibility: v2 is a strict superset of bsmp-metrics-v1.
// Every v1 field keeps its exact serialized name — a v1 consumer that
// indexes by key reads a v2 artifact unchanged — and the additive v2
// blocks are omitted (histograms) or self-contained (manifest, per-sweep
// tasks) so they cannot shadow a v1 key.
TEST(Metrics, V2IsAStrictSupersetOfV1) {
  engine::MetricsReport report = sample_report();
  report.passes[0].histograms = engine::trace::HistSnapshot{};
  std::ostringstream os;
  report.write_json(os);
  const std::string j = os.str();
  // The complete v1 key set, as pinned by this test before the v2
  // migration (schema marker aside).
  for (const char* key :
       {"\"name\"", "\"speedup\"", "\"passes\"", "\"threads\"",
        "\"seconds\"", "\"cache\"", "\"hits\"", "\"misses\"", "\"builds\"",
        "\"hit_rate\"", "\"tasks\"", "\"spawned\"", "\"inlined\"",
        "\"stolen\"", "\"steal_ops\"", "\"join_waits\"", "\"sweeps\"",
        "\"label\"", "\"points\"", "\"pool_threads\"", "\"wall_s\"",
        "\"busy_s\"", "\"occupancy\"", "\"per_point\"", "\"index\"",
        "\"queue_wait_s\"", "\"run_s\"", "\"hot\"", "\"vertices\"",
        "\"vertices_per_sec\"", "\"peak_staging_words\"",
        "\"staging_allocs\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "v1 field lost: " << key;
  }
  // All-zero histograms are omitted entirely, not serialized as noise.
  EXPECT_EQ(j.find("\"histograms\""), std::string::npos) << j;
}

// Structural compatibility one schema later: v3 is a strict superset
// of bsmp-metrics-v2. Every v2 field keeps its exact serialized name,
// and the v3 additions are self-contained additive blocks — three new
// manifest keys (num_cpus/hostname/simd_isa) and a per-pass
// "attribution" object that is omitted entirely when the pass recorded
// no spans and no calibration points.
TEST(Metrics, V3IsAStrictSupersetOfV2) {
  engine::MetricsReport report = sample_report();
  std::ostringstream os;
  report.write_json(os);
  const std::string j = os.str();
  // The complete v2 key set, as pinned by JsonSchemaContainsEveryStableField
  // before the v3 migration (schema marker aside).
  for (const char* key :
       {"\"name\"", "\"speedup\"", "\"manifest\"", "\"git_sha\"",
        "\"build_type\"", "\"compiler\"", "\"hardware_threads\"",
        "\"trace_compiled\"", "\"trace_enabled\"", "\"BSMP_TRACE\"",
        "\"BSMP_METRICS_DIR\"", "\"BSMP_ARENA\"",
        "\"BSMP_PLAN_CACHE_BYTES\"", "\"threads\"", "\"seconds\"",
        "\"cache\"", "\"hits\"", "\"misses\"", "\"builds\"", "\"hit_rate\"",
        "\"evictions\"", "\"bytes\"", "\"mem\"", "\"cold_allocs\"",
        "\"slab_reuses\"", "\"scratch_checkouts\"", "\"peak_bytes\"",
        "\"sweeps\"", "\"label\"", "\"points\"", "\"pool_threads\"",
        "\"wall_s\"", "\"busy_s\"", "\"occupancy\"", "\"per_point\"",
        "\"queue_wait_s\"", "\"run_s\"", "\"hot\"", "\"vertices\"",
        "\"vertices_per_sec\"", "\"peak_staging_words\"",
        "\"staging_allocs\"", "\"histograms\"", "\"steal_latency_ns\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "v2 field lost: " << key;
  }
  // sample_report has no spans and no calibration points: the v3
  // attribution block is omitted, not serialized empty.
  EXPECT_EQ(j.find("\"attribution\""), std::string::npos) << j;
}

// The v3 attribution block: mechanism slices, phase matrix and
// calibration points serialize under the documented keys; all-zero
// slices are omitted.
TEST(Metrics, V3AttributionBlockSerializesMechanismsAndPhases) {
  engine::MetricsReport report = sample_report();
  engine::Attribution& at = report.passes[0].attribution;
  at.spans = 3;
  at.dropped = 0;
  at.total_self_ns = 300;
  at.critical_path_ns = 200;
  using engine::Mechanism;
  at.mechanism[static_cast<int>(Mechanism::kCompute)] = {200, 2};
  at.mechanism[static_cast<int>(Mechanism::kRelocation)] = {100, 1};
  at.phase[static_cast<int>(engine::ForkPhase::kRegime1Relocate)]
          [static_cast<int>(Mechanism::kRelocation)] = 100;
  engine::CalibrationSample cs;
  cs.n = 128, cs.m = 4, cs.p = 4;
  cs.s = 8.0;
  cs.range = "range2";
  cs.holdout = false;
  cs.slowdown = 3.5;
  cs.slow_reloc = 0.5, cs.slow_exec = 2.5, cs.slow_comm = 0.5;
  cs.term_reloc = 1.0, cs.term_exec = 2.0, cs.term_comm = 0.25;
  report.passes[0].calibration.push_back(cs);

  std::ostringstream os;
  report.write_json(os);
  const std::string j = os.str();
  for (const char* key :
       {"\"attribution\"", "\"trusted\": 1", "\"spans\": 3",
        "\"total_self_ns\": 300", "\"critical_path_ns\": 200",
        "\"mechanisms\"", "\"compute\"", "\"relocation\"", "\"phases\"",
        "\"regime1-relocate\"", "\"calibration_points\"",
        "\"range\": \"range2\"", "\"slowdown\": 3.5", "\"slow_reloc\"",
        "\"slow_exec\"", "\"slow_comm\"", "\"term_reloc\"",
        "\"holdout\": 0"}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key << "\n"
                                              << j;
  }
  // Mechanisms that charged nothing stay out of the artifact.
  EXPECT_EQ(j.find("\"steal-idle\""), std::string::npos) << j;
  // A run with drops serializes as untrusted.
  report.passes[0].attribution.dropped = 5;
  std::ostringstream os2;
  report.write_json(os2);
  EXPECT_NE(os2.str().find("\"trusted\": 0"), std::string::npos);
  EXPECT_NE(os2.str().find("\"dropped\": 5"), std::string::npos);
}

TEST(Metrics, HotPathRecordsAccumulateAndClear) {
  engine::Metrics metrics;
  engine::HotPathMetric h;
  h.label = "dc";
  h.vertices = 100;
  h.seconds = 0.25;
  metrics.record_hot(h);
  metrics.record_hot(h);
  auto snap = metrics.hot_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].label, "dc");
  EXPECT_DOUBLE_EQ(snap[0].vertices_per_sec(), 400.0);
  metrics.clear();
  EXPECT_TRUE(metrics.hot_snapshot().empty());
  // Too fast to time: throughput degrades to 0, never divides by zero.
  engine::HotPathMetric z;
  z.vertices = 5;
  EXPECT_DOUBLE_EQ(z.vertices_per_sec(), 0.0);
}

TEST(Metrics, JsonEscapesLabels) {
  engine::MetricsReport report;
  report.name = "quo\"te";
  std::ostringstream os;
  report.write_json(os);
  EXPECT_NE(os.str().find("\"quo\\\"te\""), std::string::npos) << os.str();
}

TEST(Metrics, WriteJsonFileReportsFailureWithoutThrowing) {
  engine::MetricsReport report;
  report.name = "unit";
  EXPECT_FALSE(report.write_json_file("/nonexistent-dir/metrics_unit.json"));
}

TEST(Metrics, CanonicalFilename) {
  EXPECT_EQ(engine::metrics_filename("e6d"), "metrics_e6d.json");
}

// All observability artifacts route through one env knob.
TEST(Metrics, OutputPathsHonorMetricsDirKnob) {
  const char* saved = std::getenv("BSMP_METRICS_DIR");
  const std::string restore = saved != nullptr ? saved : "";

  ::unsetenv("BSMP_METRICS_DIR");
  EXPECT_EQ(engine::metrics_dir(), "metrics");
  EXPECT_EQ(engine::metrics_output_path("hot"), "metrics/metrics_hot.json");
  EXPECT_EQ(engine::trace_output_path("hot"), "metrics/trace_hot.json");

  ::setenv("BSMP_METRICS_DIR", "/tmp/bsmp-art", 1);
  EXPECT_EQ(engine::metrics_dir(), "/tmp/bsmp-art");
  EXPECT_EQ(engine::metrics_output_path("e5"),
            "/tmp/bsmp-art/metrics_e5.json");
  EXPECT_EQ(engine::trace_output_path("e5"), "/tmp/bsmp-art/trace_e5.json");

  if (saved != nullptr)
    ::setenv("BSMP_METRICS_DIR", restore.c_str(), 1);
  else
    ::unsetenv("BSMP_METRICS_DIR");
}

// Every simulator's opt-in hot-path section: one HotPathMetric per
// run, covering all executed vertices, and no recording (or change in
// results) when no sink is attached.
TEST(Metrics, SimulatorsRecordOneHotSectionPerRun) {
  constexpr std::int64_t n = 16, T = 16, m = 2;
  auto g = workload::make_mix_guest<1>({n}, T, m, 3);
  machine::MachineSpec uni;
  uni.d = 1, uni.n = n, uni.p = 1, uni.m = m;
  machine::MachineSpec multi = uni;
  multi.p = 4;

  engine::Metrics metrics;
  sim::DcConfig dcfg;
  dcfg.metrics = &metrics;
  auto dc = sim::simulate_dc_uniproc<1>(g, uni, dcfg);
  sim::MultiprocConfig mcfg;
  mcfg.metrics = &metrics;
  mcfg.hot_label = "mp16";
  auto mp = sim::simulate_multiproc<1>(g, multi, mcfg);
  sim::NaiveConfig ncfg;
  ncfg.metrics = &metrics;
  auto nv = sim::simulate_naive<1>(g, uni, ncfg);

  auto hot = metrics.hot_snapshot();
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_EQ(hot[0].label, "dc_uniproc");
  EXPECT_EQ(hot[1].label, "mp16");  // hot_label overrides the default
  EXPECT_EQ(hot[2].label, "naive");
  for (const auto& h : hot) {
    EXPECT_EQ(h.vertices, n * T) << h.label;
    EXPECT_GE(h.seconds, 0.0) << h.label;
    EXPECT_GT(h.peak_staging_words, 0u) << h.label;
    EXPECT_GT(h.staging_allocs, 0u) << h.label;
  }

  // The sink is write-only observability: identical results without it.
  auto dc0 = sim::simulate_dc_uniproc<1>(g, uni);
  EXPECT_EQ(dc.time, dc0.time);
  EXPECT_TRUE(sim::same_values<1>(dc.final_values, dc0.final_values));
  EXPECT_TRUE(sim::same_values<1>(dc.final_values, mp.final_values));
  EXPECT_TRUE(sim::same_values<1>(dc.final_values, nv.final_values));
}

TEST(PlanCacheBuilds, BuilderInvocationsAreCountedOncePerKey) {
  engine::PlanCache cache;
  engine::PlanKey key;
  key.width = 7;
  int built = 0;
  auto build = [&] {
    ++built;
    return 42;
  };
  auto a = cache.get_or_build<int>(key, build);
  auto b = cache.get_or_build<int>(key, build);
  EXPECT_EQ(*a, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(built, 1);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.builds, 1u);
}

TEST(PlanCacheBuilds, LookupMissDoesNotBuildAndClearResets) {
  engine::PlanCache cache;
  engine::PlanKey key;
  key.width = 9;
  EXPECT_EQ(cache.lookup<int>(key), nullptr);
  EXPECT_EQ(cache.stats().builds, 0u);
  cache.get_or_build<int>(key, [] { return 1; });
  EXPECT_EQ(cache.stats().builds, 1u);
  cache.clear();
  auto stats = cache.stats();
  EXPECT_EQ(stats.builds, 0u);
  EXPECT_EQ(stats.lookups(), 0u);
}

TEST(PlanCacheBuilds, FailedBuildIsRetriedAndCountedAgain) {
  engine::PlanCache cache;
  engine::PlanKey key;
  key.width = 11;
  int attempts = 0;
  EXPECT_THROW(cache.get_or_build<int>(key,
                                       [&]() -> int {
                                         ++attempts;
                                         throw std::runtime_error("boom");
                                       }),
               std::runtime_error);
  auto v = cache.get_or_build<int>(key, [&] {
    ++attempts;
    return 5;
  });
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(attempts, 2);
  // Both builder invocations ran: a failed build never poisons the
  // key, and the retry is accounted as a second build.
  EXPECT_EQ(cache.stats().builds, 2u);
}
