# Empty compiler generated dependencies file for bsmp_hram.
# This may be replaced when dependencies are built.
