/// \file
/// SIMD kernel plumbing for the separator executor's leaf loop.
//
// The dense leaf window (sep/staging.hpp LeafWindow) stores each time
// level's cells contiguously in row-major order, so the innermost
// spatial dimension of every leaf row is a structure-of-arrays span:
// `n` consecutive cells whose operands are `n` consecutive words in
// the rows below. A *row kernel* evaluates the guest rule over such a
// span in one call — the compiler vectorizes the span loop (AVX2 /
// AVX-512 on x86-64, NEON on aarch64) and the executor keeps the
// charge stream count-based and bit-identical to the scalar loop.
//
// Contract (doc/ENGINE.md "SIMD kernels", doc/PERF.md):
//
//   * a rule functor R advertises a kernel for dimension D by
//     providing
//
//         void row(Word* out, const Word* self,
//                  const Word* const* nbrs,   // geom::kMono<D> rows
//                  std::size_t n, geom::Point<D> p0,
//                  std::int64_t xstride) const;
//
//     which must compute out[i] = R{}(p_i, self[i], {nbrs[k][i]})
//     for i in [0, n), where p_i is p0 with the innermost spatial
//     coordinate advanced by xstride * i. xstride = 1 is the leaf-row
//     form (adjacent cells); xstride = 0 is the SoA lane form (all 64
//     lanes of one point, see soa_rule below);
//   * byte identity: kernels are pure integer programs, so every ISA
//     (and the always-compiled scalar fallback) produces bit-identical
//     values, and the executor's charging never depends on how a value
//     was computed — the CostLedger stream, charged totals, peak
//     staging and every emitted table are unchanged by BSMP_SIMD;
//   * selection: the BSMP_SIMD environment variable ("off"/"0"/
//     "scalar" disables, anything else enables; see simd::enabled)
//     picks the path at runtime, the BSMP_SIMD CMake option
//     (-DBSMP_SIMD=OFF) compiles the vector path out entirely, and on
//     x86-64 the kernels themselves are compiled as target_clones so
//     one binary carries scalar, AVX2 and (GCC) AVX-512 versions
//     dispatched by the loader.
#pragma once

#include <cstdint>

#include "geom/lattice.hpp"
#include "sep/guest.hpp"

// Compile-time master switch: -DBSMP_SIMD=OFF at configure time
// removes the vector leaf path and compiles kernels without clones.
#if !defined(BSMP_SIMD_ENABLED)
#define BSMP_SIMD_ENABLED 0
#endif

// Per-kernel function multiversioning: one symbol, several ISA bodies,
// IFUNC-dispatched at load time. The "default" clone is the
// always-compiled scalar-ISA fallback (still auto-vectorized for the
// baseline ISA). Clang's target_clones does not accept arch= levels,
// so it gets the AVX2 clone only; GCC additionally gets x86-64-v4
// (AVX-512F/BW/CD/DQ/VL), whose native 64-bit vector multiply the mix
// kernel leans on.
#if BSMP_SIMD_ENABLED && defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__clang__)
#define BSMP_SIMD_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#elif BSMP_SIMD_ENABLED && defined(__x86_64__) && defined(__clang__)
#define BSMP_SIMD_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define BSMP_SIMD_CLONES
#endif

namespace bsmp::sep::simd {

/// Runtime SIMD switch. Defaults from the BSMP_SIMD environment
/// variable at first use: "0", "off" or "scalar" (case-sensitive)
/// force the scalar leaf loop; unset or anything else leaves the
/// vector path on. Per-process, settable by tests and benches.
bool enabled();

/// Override the runtime switch (tests; the bench's side-by-side runs).
void set_enabled(bool on);

/// The instruction set the row kernels dispatch to right now:
/// "avx512", "avx2" or "sse2" on x86-64, "neon" on aarch64 — or
/// "scalar" when the vector path is disabled (BSMP_SIMD off at either
/// configure or run time) or no kernels are compiled for this target.
const char* active_isa();

/// 64-bit lanes one vector operation of active_isa() carries: 8 for
/// avx512, 4 for avx2, 2 for sse2/neon, 1 for scalar. Reported as
/// `simd_lanes` in the metrics hot block.
int lane_width();

/// Detects whether R provides the dimension-D row kernel of the header
/// contract. The executor's leaf takes the vector path only when this
/// holds for the rule it was handed *and* values are plain words
/// (V = Word) *and* simd::enabled() — otherwise it runs the scalar
/// per-vertex loop, unchanged.
template <class R, int D>
concept RowKernel = requires(const R& r, Word* out, const Word* self,
                             const Word* const* nbrs, std::size_t n,
                             geom::Point<D> p0, std::int64_t xstride) {
  r.row(out, self, nbrs, n, p0, xstride);
};

/// The executor's compile-time gate for one (rule, D, V) combination.
template <class R, int D, class V>
inline constexpr bool has_row_kernel =
    BSMP_SIMD_ENABLED && std::is_same_v<V, Word> && RowKernel<R, D>;

// ---------------------------------------------------------------------
// soa_rule: the vectorized generic batch path. broadcast_rule
// (sep/guest.hpp) lifts a scalar rule into the LaneBatch form one lane
// at a time through a std::function; when the scalar rule has a row
// kernel, the same lift can instead run the kernel once across the 64
// contiguous lane words of each operand (xstride = 0: every lane sees
// the same lattice point). Values are bit-identical to broadcast_rule
// by the kernel contract; only the wall clock changes.
// ---------------------------------------------------------------------

/// BatchRule-compatible functor applying R's row kernel across lanes.
template <int D, class R>
struct SoaKernelRule {
  R kernel;

  LaneBatch operator()(const geom::Point<D>& p, const LaneBatch& self,
                       const BasicNeighbors<D, LaneBatch>& nbrs) const {
    LaneBatch out;
    if (enabled()) {
      const Word* lanes[geom::kMono<D>];
      for (int k = 0; k < geom::kMono<D>; ++k)
        lanes[k] = nbrs[static_cast<std::size_t>(k)].lane.data();
      kernel.row(out.lane.data(), self.lane.data(), lanes,
                 static_cast<std::size_t>(kLanes), p, 0);
      return out;
    }
    // Scalar fallback: the broadcast_rule per-lane loop, inlined on
    // the concrete kernel instead of dispatched through std::function.
    BasicNeighbors<D, Word> lane_nbrs{};
    for (int l = 0; l < kLanes; ++l) {
      for (int k = 0; k < geom::kMono<D>; ++k)
        lane_nbrs[static_cast<std::size_t>(k)] =
            nbrs[static_cast<std::size_t>(k)][l];
      out[l] = kernel(p, self[l], lane_nbrs);
    }
    return out;
  }
};

/// Lift a row-kernel rule into the SoA LaneBatch form (the vectorized
/// counterpart of broadcast_rule; requires RowKernel<R, D>).
template <int D, class R>
  requires RowKernel<R, D>
SoaKernelRule<D, R> soa_rule(R kernel) {
  return SoaKernelRule<D, R>{kernel};
}

}  // namespace bsmp::sep::simd
