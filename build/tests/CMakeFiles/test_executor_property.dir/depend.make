# Empty dependencies file for test_executor_property.
# This may be replaced when dependencies are built.
