#include "engine/pool.hpp"

#include <algorithm>
#include <optional>

#include "core/expect.hpp"

namespace bsmp::engine {

int Pool::hardware_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

Pool::Pool(int threads)
    : size_(threads <= 0 ? hardware_threads() : threads), sched_(size_) {
  sched_.set_wake([this] {
    // Lock-then-notify so a worker between its predicate check and the
    // wait cannot miss the task that was just enqueued.
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_work_.notify_all();
  });
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 1; i < size_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::record_error(std::size_t index) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!error_ || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
}

void Pool::drain() {
  for (;;) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      record_error(i);
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void Pool::worker_loop(int slot) {
  // Workers keep their deque slot for their whole lifetime, so tasks
  // forked from sweep bodies (or from other tasks) land on — and are
  // stolen between — the pool's own threads.
  TaskScheduler::Bind bind(&sched_, slot);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        return stop_ || generation_ != seen || sched_.has_pending();
      });
      if (stop_) return;
      if (generation_ == seen) {
        // No new parallel_for job — woken for queued fork-join tasks.
        lk.unlock();
        sched_.run_pending(slot);
        continue;
      }
      seen = generation_;
      ++draining_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --draining_;
      if (draining_ == 0) cv_done_.notify_all();
    }
  }
}

void Pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (TaskScheduler::current() == &sched_) {
    // Nested call: this thread is already executing pool work (a
    // parallel_for body or a task). The generation handoff below would
    // deadlock — the old header said "must not be nested" — so route
    // the indices through the fork-join layer instead. Same contract:
    // every index runs, the lowest-index exception is rethrown.
    TaskScope scope;
    for (std::size_t i = 0; i < n; ++i)
      scope.fork([&body, i] { body(i); });
    scope.join();
    return;
  }
  if (size_ == 1 || n == 1) {
    // Sequential reference path: no handoff, body runs on the caller.
    // Same exception contract as the parallel path: every index runs,
    // the lowest-index failure is rethrown. With workers available the
    // caller still takes a scheduler slot so the body may fork.
    std::optional<TaskScheduler::Bind> bind;
    if (size_ > 1) bind.emplace(&sched_, 0);
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  {
    // Wait out stragglers of the previous job before reusing the slots
    // (a worker may still be draining an already-completed generation).
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return remaining_.load(std::memory_order_acquire) == 0 &&
             draining_ == 0;
    });
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_.store(n, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  cv_work_.notify_all();
  {
    // The caller is an executor too, on the parallel_for caller's slot.
    TaskScheduler::Bind bind(&sched_, 0);
    drain();
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return remaining_.load(std::memory_order_acquire) == 0 &&
             draining_ == 0;
    });
    body_ = nullptr;
    n_ = 0;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

}  // namespace bsmp::engine
