#include "analytic/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "core/expect.hpp"
#include "core/logmath.hpp"

namespace bsmp::analytic {

using core::logbar;

const char* to_string(Range r) {
  switch (r) {
    case Range::k1: return "range1 (m <= (n/p)^(1/2d))";
    case Range::k2: return "range2 ((n/p)^(1/2d) <= m <= (np)^(1/2d))";
    case Range::k3: return "range3 ((np)^(1/2d) <= m <= n^(1/d))";
    case Range::k4: return "range4 (m >= n^(1/d))";
  }
  return "?";
}

namespace {
void check_params(int d, double n, double m, double p) {
  BSMP_REQUIRE(d >= 1 && d <= 3);
  BSMP_REQUIRE(n >= 1 && m >= 1 && p >= 1 && p <= n);
}
}  // namespace

Range classify_range(int d, double n, double m, double p) {
  check_params(d, n, m, p);
  double b1 = std::pow(n / p, 1.0 / (2 * d));
  double b2 = std::pow(n * p, 1.0 / (2 * d));
  double b3 = std::pow(n, 1.0 / d);
  if (m <= b1) return Range::k1;
  if (m <= b2) return Range::k2;
  if (m <= b3) return Range::k3;
  return Range::k4;
}

double locality_A(int d, double n, double m, double p) {
  check_params(d, n, m, p);
  double pd = std::pow(p, 1.0 / d);
  double nd = std::pow(n, 1.0 / d);
  switch (classify_range(d, n, m, p)) {
    case Range::k1:
      return (m / pd) * logbar(m) + m * logbar(2.0 * nd / (pd * m * m));
    case Range::k2:
      return (m / p) * logbar(n / p) / (2.0 * d) +
             2.0 * std::pow(n / p, 1.0 / (2 * d));
    case Range::k3:
      return (m / pd) * logbar(2.0 * nd / m) + nd / m;
    case Range::k4:
      return std::pow(n / p, 1.0 / d);
  }
  return 0;
}

double slowdown_bound(int d, double n, double m, double p) {
  return (n / p) * locality_A(d, n, m, p);
}

double A_of_s(double n, double m, double p, double s) {
  ATerms t = A_terms(n, m, p, s);
  return t.relocation + t.execution + t.communication;
}

ATerms A_terms(double n, double m, double p, double s) {
  BSMP_REQUIRE(s >= 1);
  return {(m / p) * logbar(n / (p * s)),
          std::min(s, m * logbar(s / m)), n / (p * s)};
}

double s_star(double n, double m, double p) {
  switch (classify_range(1, n, m, p)) {
    case Range::k1: return std::max(1.0, n / (m * p));
    case Range::k2: return std::max(1.0, std::sqrt(n / p));
    case Range::k3: return std::max(1.0, m / p);
    case Range::k4: return std::max(1.0, n / p);
  }
  return 1.0;
}

double feasible_s_star(double n, double m, double p) {
  double s = s_star(n, m, p);
  if (s * p > n) s = n / p;
  return std::max(1.0, s);
}

double thm2_bound(double n) { return n * logbar(n); }

double thm3_bound(double n, double m) {
  return n * std::min(n, m * logbar(n / m));
}

double thm5_bound(double n) { return n * logbar(n); }

double naive_bound(int d, double n, double m, double p) {
  check_params(d, n, m, p);
  return std::pow(n / p, 1.0 + 1.0 / d);
}

double brent_bound(double n, double p) { return n / p; }

double matmul_mesh_time(double n) { return 2.0 * std::sqrt(n); }

double matmul_hram_naive_time(double n) { return n * n; }

double matmul_hram_blocked_time(double n) {
  return std::pow(n, 1.5) * logbar(n);
}

}  // namespace bsmp::analytic
