// Parameterized and algorithmic-output tests of the executor and the
// full simulators: beyond matching the reference run bit-for-bit, the
// simulated machines must *compute correct answers* for guest programs
// with checkable semantics (sorting, window maxima).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <type_traits>

#include "engine/metrics.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"
#include "geom/tiling.hpp"
#include "sched/parallel.hpp"
#include "sep/executor.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

// Shards hold a pointer to their parent; a copy would silently become
// an overlay on the copied-from object (dangling once it dies), so
// copying must not compile — overlays are built with the sep::overlay
// tag only.
static_assert(!std::is_copy_constructible_v<
                  sep::StagingShard<1, sep::StagingStore<1>>>,
              "StagingShard must not be copyable");
static_assert(!std::is_copy_assignable_v<
                  sep::StagingShard<2, sep::StagingStore<2>>>,
              "StagingShard must not be copy-assignable");

namespace {

machine::MachineSpec spec(int d, int64_t n, int64_t p, int64_t m) {
  return machine::MachineSpec{d, n, p, m};
}

sep::Guest<1> sort_guest(int64_t n, std::uint64_t seed) {
  sep::Guest<1> g;
  // Horizon n+1: t=0 loads inputs, steps 1..n are the n compare-
  // exchange rounds odd-even transposition sort needs in the worst
  // case (a fully reversed array).
  g.stencil = geom::Stencil<1>{{n}, n + 1, 1};
  g.rule = workload::sort_rule(n);
  g.input = [seed, n](const std::array<int64_t, 1>& x,
                      int64_t) -> sep::Word {
    core::SplitMix64 rng(seed + static_cast<std::uint64_t>(x[0]));
    return rng.next_below(static_cast<std::uint64_t>(4 * n)) + 1;
  };
  return g;
}

/// Read out the final array of a d=1, m=1 guest result.
std::vector<sep::Word> final_array(const geom::Stencil<1>& st,
                                   const sep::ValueMap<1>& fin) {
  std::vector<sep::Word> out(static_cast<std::size_t>(st.extent[0]));
  for (int64_t x = 0; x < st.extent[0]; ++x)
    out[x] = fin.at(geom::Point<1>{{x}, st.horizon - 1});
  return out;
}

std::vector<sep::Word> input_array(const sep::Guest<1>& g) {
  std::vector<sep::Word> in(static_cast<std::size_t>(g.stencil.extent[0]));
  for (int64_t x = 0; x < g.stencil.extent[0]; ++x) in[x] = g.input({x}, 0);
  return in;
}

}  // namespace

// ---------------------------------------------------------------------
// Sorting: every simulation scheme must actually sort.
// ---------------------------------------------------------------------

struct SortCase {
  int64_t n, p;
  const char* scheme;
};

class SystolicSort : public ::testing::TestWithParam<SortCase> {};

TEST_P(SystolicSort, SortsCorrectly) {
  auto [n, p, scheme] = GetParam();
  auto g = sort_guest(n, 42 + n);  // horizon n+1: n compare steps
  auto want = input_array(g);
  std::sort(want.begin(), want.end());

  sim::SimResult<1> res;
  if (std::string(scheme) == "naive") {
    res = sim::simulate_naive<1>(g, spec(1, n, p, 1));
  } else if (std::string(scheme) == "dc") {
    res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1));
  } else {
    sim::MultiprocConfig cfg;
    res = sim::simulate_multiproc<1>(g, spec(1, n, p, 1), cfg);
  }
  EXPECT_EQ(final_array(g.stencil, res.final_values), want)
      << scheme << " n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SystolicSort,
    ::testing::Values(SortCase{16, 1, "naive"}, SortCase{16, 4, "naive"},
                      SortCase{16, 1, "dc"}, SortCase{32, 1, "dc"},
                      SortCase{16, 2, "multiproc"},
                      SortCase{32, 4, "multiproc"},
                      SortCase{64, 8, "multiproc"}));

TEST(SystolicSort, AlreadySortedAndReversed) {
  int64_t n = 16;
  for (bool reversed : {false, true}) {
    sep::Guest<1> g;
    g.stencil = geom::Stencil<1>{{n}, n + 1, 1};
    g.rule = workload::sort_rule(n);
    g.input = [n, reversed](const std::array<int64_t, 1>& x,
                            int64_t) -> sep::Word {
      return static_cast<sep::Word>(reversed ? n - x[0] : x[0] + 1);
    };
    auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1));
    auto arr = final_array(g.stencil, res.final_values);
    EXPECT_TRUE(std::is_sorted(arr.begin(), arr.end())) << reversed;
    EXPECT_EQ(arr.front(), 1u);
    EXPECT_EQ(arr.back(), static_cast<sep::Word>(n));
  }
}

// ---------------------------------------------------------------------
// Window maxima: value(x, T-1) = max input within distance T-1.
// ---------------------------------------------------------------------

class MaxPropagation : public ::testing::TestWithParam<int64_t> {};

TEST_P(MaxPropagation, ComputesWindowMaxima) {
  int64_t n = 24, T = GetParam();
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{n}, T, 1};
  g.rule = workload::max_rule<1>();
  g.input = workload::random_input<1>(7);

  auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1));
  for (int64_t x = 0; x < n; ++x) {
    sep::Word want = 0;
    for (int64_t y = std::max<int64_t>(0, x - (T - 1));
         y <= std::min(n - 1, x + (T - 1)); ++y)
      want = std::max(want, g.input({y}, 0));
    EXPECT_EQ(res.final_values.at(geom::Point<1>{{x}, T - 1}), want)
        << "x=" << x << " T=" << T;
  }
}
INSTANTIATE_TEST_SUITE_P(Horizons, MaxPropagation,
                         ::testing::Values(2, 5, 9, 24, 40));

TEST(MaxPropagation, GlobalMaxAfterNSteps2D) {
  int64_t side = 5;
  sep::Guest<2> g;
  g.stencil = geom::Stencil<2>{{side, side}, 2 * side, 1};
  g.rule = workload::max_rule<2>();
  g.input = workload::random_input<2>(11);
  sep::Word global = 0;
  for (int64_t x = 0; x < side; ++x)
    for (int64_t y = 0; y < side; ++y)
      global = std::max(global, g.input({x, y}, 0));

  auto res = sim::simulate_dc_uniproc<2>(g, spec(2, side * side, 1, 1));
  for (const auto& [p, v] : res.final_values)
    EXPECT_EQ(v, global) << p.x[0] << "," << p.x[1];
}

// ---------------------------------------------------------------------
// Parameterized equivalence sweep across executor configurations.
// ---------------------------------------------------------------------

struct ExecCase {
  int64_t n, T, m, tile, leaf;
};

class ExecutorSweep : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ExecutorSweep, MatchesReference) {
  auto [n, T, m, tile, leaf] = GetParam();
  auto g = workload::make_mix_guest<1>({n}, T, m,
                                       static_cast<std::uint64_t>(
                                           n * 1000 + T * 10 + m));
  auto ref = sim::reference_run<1>(g);

  sep::ExecutorConfig cfg;
  cfg.leaf_width = leaf;
  cfg.f = hram::AccessFn::hierarchical(1, static_cast<double>(m));
  sep::Executor<1> exec(&g, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);
  geom::TileGrid<1> grid(&g.stencil, tile);
  sep::ValueMap<1> staging;
  for (const auto& wave : grid.wavefronts())
    for (const auto& t : wave) exec.execute(t, staging);

  EXPECT_EQ(exec.vertices_executed(), n * T);
  EXPECT_TRUE(sim::same_values<1>(sim::extract_final<1>(g.stencil, staging),
                                  ref.final_values));
  // The ledger is consistent: one compute event per vertex.
  EXPECT_EQ(ledger.events(core::CostKind::kCompute),
            static_cast<std::uint64_t>(n * T));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExecutorSweep,
    ::testing::Values(ExecCase{5, 3, 1, 3, 1}, ExecCase{7, 11, 1, 4, 2},
                      ExecCase{12, 12, 1, 12, 1}, ExecCase{9, 20, 3, 6, 3},
                      ExecCase{16, 7, 5, 8, 4}, ExecCase{11, 23, 7, 16, 7},
                      ExecCase{8, 40, 2, 5, 1}, ExecCase{13, 13, 13, 8, 8},
                      ExecCase{6, 9, 20, 6, 6}));

// ---------------------------------------------------------------------
// Determinism and staging hygiene.
// ---------------------------------------------------------------------

TEST(ExecutorHygiene, RunsAreDeterministic) {
  auto g = workload::make_mix_guest<1>({16}, 16, 2, 5);
  auto run = [&] {
    auto res = sim::simulate_dc_uniproc<1>(g, spec(1, 16, 1, 2));
    return std::pair(res.time, res.final_values);
  };
  auto [t1, v1] = run();
  auto [t2, v2] = run();
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_TRUE(sim::same_values<1>(v1, v2));
}

TEST(ExecutorHygiene, MultiprocDeterministic) {
  auto g = workload::make_mix_guest<1>({32}, 32, 2, 9);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  auto a = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 2), cfg);
  auto b = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 2), cfg);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(ExecutorHygiene, StagingDoesNotLeakAcrossTiles) {
  // After a full dc run the retained staging equals exactly the final
  // rows (everything else was pruned) — checked indirectly: the result
  // map has one entry per (node, cell).
  auto g = workload::make_mix_guest<1>({12}, 36, 3, 4);
  auto res = sim::simulate_dc_uniproc<1>(g, spec(1, 12, 1, 3));
  EXPECT_EQ(res.final_values.size(), static_cast<std::size_t>(12 * 3));
}

TEST(ExecutorHygiene, VertexCountsMatchAcrossSchemes) {
  auto g = workload::make_mix_guest<1>({16}, 24, 2, 3);
  auto a = sim::simulate_dc_uniproc<1>(g, spec(1, 16, 1, 2));
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  auto b = sim::simulate_multiproc<1>(g, spec(1, 16, 4, 2), cfg);
  auto c = sim::simulate_naive<1>(g, spec(1, 16, 2, 2));
  EXPECT_EQ(a.vertices, 16 * 24);
  EXPECT_EQ(b.vertices, 16 * 24);
  EXPECT_EQ(c.vertices, 16 * 24);
}

// ---------------------------------------------------------------------
// Shearsort: the canonical 2-d mesh sorting algorithm, through every
// simulator, verified to sort in snake order.
// ---------------------------------------------------------------------

namespace {

sep::Guest<2> shearsort_guest(int64_t side, std::uint64_t seed) {
  sep::Guest<2> g;
  int64_t T = 1 + workload::shearsort_phases(side) * side;
  g.stencil = geom::Stencil<2>{{side, side}, T, 1};
  g.rule = workload::shearsort_rule(side);
  g.input = [seed, side](const std::array<int64_t, 2>& x,
                         int64_t) -> sep::Word {
    core::SplitMix64 rng(seed + static_cast<std::uint64_t>(
                                    x[0] * side + x[1]));
    return rng.next_below(static_cast<std::uint64_t>(9 * side)) + 1;
  };
  return g;
}

std::vector<sep::Word> snake_readout(const geom::Stencil<2>& st,
                                     const sep::ValueMap<2>& fin) {
  int64_t side = st.extent[0];
  std::vector<sep::Word> out(static_cast<std::size_t>(side * side));
  for (int64_t r = 0; r < side; ++r)
    for (int64_t c = 0; c < side; ++c)
      out[workload::snake_rank(side, r, c)] =
          fin.at(geom::Point<2>{{r, c}, st.horizon - 1});
  return out;
}

}  // namespace

struct ShearCase {
  int64_t side, p;
  const char* scheme;
};

class Shearsort : public ::testing::TestWithParam<ShearCase> {};

TEST_P(Shearsort, SortsInSnakeOrder) {
  auto [side, p, scheme] = GetParam();
  auto g = shearsort_guest(side, 77 + side);
  std::vector<sep::Word> want;
  for (int64_t r = 0; r < side; ++r)
    for (int64_t c = 0; c < side; ++c) want.push_back(g.input({r, c}, 0));
  std::sort(want.begin(), want.end());

  sim::SimResult<2> res;
  machine::MachineSpec host{2, side * side, p, 1};
  if (std::string(scheme) == "naive") {
    res = sim::simulate_naive<2>(g, host);
  } else if (std::string(scheme) == "dc") {
    res = sim::simulate_dc_uniproc<2>(g, host);
  } else {
    sim::MultiprocConfig cfg;
    cfg.s = std::max<int64_t>(1, side / (2 * host.proc_side()));
    res = sim::simulate_multiproc<2>(g, host, cfg);
  }
  EXPECT_EQ(snake_readout(g.stencil, res.final_values), want)
      << scheme << " side=" << side << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, Shearsort,
    ::testing::Values(ShearCase{4, 1, "naive"}, ShearCase{4, 1, "dc"},
                      ShearCase{6, 1, "dc"}, ShearCase{8, 1, "dc"},
                      ShearCase{4, 4, "multiproc"},
                      ShearCase{8, 4, "multiproc"},
                      ShearCase{8, 16, "multiproc"}));

TEST(Shearsort, PhaseCountIsLogarithmic) {
  EXPECT_EQ(workload::shearsort_phases(2), 5);
  EXPECT_EQ(workload::shearsort_phases(16), 11);
  EXPECT_GT(workload::shearsort_phases(64), workload::shearsort_phases(8));
}

TEST(Shearsort, SnakeRank) {
  EXPECT_EQ(workload::snake_rank(4, 0, 0), 0);
  EXPECT_EQ(workload::snake_rank(4, 0, 3), 3);
  EXPECT_EQ(workload::snake_rank(4, 1, 3), 4);  // odd rows run backward
  EXPECT_EQ(workload::snake_rank(4, 1, 0), 7);
  EXPECT_EQ(workload::snake_rank(4, 3, 0), 15);
}

// ---------------------------------------------------------------------
// Trinomial convolution: an additive rule whose closed form we can
// compute independently — value(x,T-1) = sum over y of T(T-1, x-y) *
// input(y) with trinomial coefficients (mod 2^64), checked against a
// separate direct convolution, not just the reference run.
// ---------------------------------------------------------------------

TEST(Trinomial, SimulatedValuesMatchClosedForm) {
  const int64_t n = 12, T = 7;
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{n}, T, 1};
  g.rule = [](const geom::Point<1>&, sep::Word self,
              const sep::NeighborWords<1>& nbrs) -> sep::Word {
    return self + nbrs[0] + nbrs[1];  // exact mod 2^64
  };
  g.input = workload::random_input<1>(31);

  auto res = sim::simulate_dc_uniproc<1>(
      g, machine::MachineSpec{1, n, 1, 1});

  // Independent direct computation of the trinomial weights on the
  // bounded domain (absorbing boundaries, same as the zero boundary).
  std::vector<std::vector<sep::Word>> w(
      n, std::vector<sep::Word>(n, 0));
  for (int64_t y = 0; y < n; ++y) w[y][y] = 1;  // t = 0
  for (int64_t t = 1; t < T; ++t) {
    std::vector<std::vector<sep::Word>> nw(
        n, std::vector<sep::Word>(n, 0));
    for (int64_t y = 0; y < n; ++y)
      for (int64_t x = 0; x < n; ++x) {
        sep::Word v = w[y][x];
        if (x > 0) v += w[y][x - 1];
        if (x + 1 < n) v += w[y][x + 1];
        nw[y][x] = v;
      }
    w.swap(nw);
  }
  for (int64_t x = 0; x < n; ++x) {
    sep::Word want = 0;
    for (int64_t y = 0; y < n; ++y) want += w[y][x] * g.input({y}, 0);
    EXPECT_EQ(res.final_values.at(geom::Point<1>{{x}, T - 1}), want)
        << "x=" << x;
  }
}

// ---------------------------------------------------------------------
// Failure injection: the equivalence checks have teeth.
// ---------------------------------------------------------------------

TEST(FailureInjection, CorruptedStagingValuePropagatesToOutputs) {
  // Execute a tile with one preboundary value flipped: with the mixing
  // rule, the final rows must differ from the clean run — proving that
  // a wrong staged operand cannot go unnoticed by the comparisons.
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 91);
  auto ref = sim::reference_run<1>(g);

  sep::ExecutorConfig cfg;
  cfg.leaf_width = 1;
  cfg.f = hram::AccessFn::unit();
  sep::Executor<1> exec(&g, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);

  geom::TileGrid<1> grid(&g.stencil, 8);
  sep::ValueMap<1> staging;
  bool corrupted = false;
  for (const auto& wave : grid.wavefronts()) {
    for (const auto& tile : wave) {
      if (!corrupted && !tile.preboundary().empty()) {
        auto q = tile.preboundary().front();
        staging.at(q) ^= 1;  // flip one staged bit
        corrupted = true;
      }
      exec.execute(tile, staging);
    }
  }
  ASSERT_TRUE(corrupted);
  auto fin = sim::extract_final<1>(g.stencil, staging);
  EXPECT_FALSE(sim::same_values<1>(fin, ref.final_values))
      << "a corrupted operand must corrupt the outputs";
}

// ---------------------------------------------------------------------
// Parallel-grain bit-identity: the fork-join recursion must be
// indistinguishable from the serial one — per-kind charged costs
// (bitwise, doubles), event counts, vertex totals, peak staging, slab
// allocations, and every final value identical across parallel_grain
// ∈ {off, small, huge} × pool sizes {1, 2, 4}, for d=1 and d=2
// volumes driven through the same wavefront loop the simulators use.
// ---------------------------------------------------------------------

namespace {

template <int D>
struct DriveOutcome {
  std::array<std::uint64_t, core::CostLedger::kNumKinds> cost_bits{};
  std::array<std::uint64_t, core::CostLedger::kNumKinds> events{};
  std::int64_t vertices = 0;
  std::size_t peak = 0;
  std::size_t allocs = 0;
  sep::ValueMap<D> fin;

  void expect_eq(const DriveOutcome& other, const std::string& what) const {
    for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
      EXPECT_EQ(cost_bits[i], other.cost_bits[i])
          << what << ": cost kind " << i << " not bit-identical";
      EXPECT_EQ(events[i], other.events[i]) << what << ": events kind " << i;
    }
    EXPECT_EQ(vertices, other.vertices) << what;
    EXPECT_EQ(peak, other.peak) << what << ": peak staging";
    EXPECT_EQ(allocs, other.allocs) << what << ": slab allocs";
    EXPECT_TRUE(sim::same_values<D>(fin, other.fin)) << what;
  }
};

/// Run the guest through the wavefront driver with the given grain and
/// return everything the determinism contract pins. `Store` selects
/// the staging type (dense StagingStore or ValueMap).
template <int D, class Store>
DriveOutcome<D> drive_with_grain(const sep::Guest<D>& g, Store& staging,
                                 int64_t tile, int64_t leaf, int64_t grain) {
  sep::ExecutorConfig cfg;
  cfg.leaf_width = leaf;
  cfg.f = hram::AccessFn::hierarchical(D, 4.0);
  cfg.parallel_grain = grain;
  sep::Executor<D> exec(&g, cfg);
  core::CostLedger ledger;
  exec.set_ledger(&ledger);
  geom::TileGrid<D> grid(&g.stencil, tile);
  for (const auto& wave : grid.wavefronts())
    for (const auto& t : wave) exec.execute(t, staging);

  DriveOutcome<D> out;
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    auto kind = static_cast<core::CostKind>(i);
    double c = ledger.cost(kind);
    static_assert(sizeof c == sizeof out.cost_bits[i]);
    std::memcpy(&out.cost_bits[i], &c, sizeof c);
    out.events[i] = ledger.events(kind);
  }
  out.vertices = exec.vertices_executed();
  out.peak = exec.peak_staging();
  out.allocs = sep::store_level_allocs<D>(staging);
  out.fin = sim::extract_final<D>(g.stencil, staging);
  return out;
}

}  // namespace

template <int D>
void grain_pool_matrix(const sep::Guest<D>& g, int64_t tile, int64_t leaf) {
  sep::StagingStore<D> ref_staging(&g.stencil);
  auto ref = drive_with_grain<D>(g, ref_staging, tile, leaf, /*grain=*/0);

  for (int64_t grain : {int64_t{2}, int64_t{1} << 30}) {
    for (int threads : {1, 2, 4}) {
      engine::Pool pool(threads);
      auto bind = pool.bind_caller();
      sep::StagingStore<D> staging(&g.stencil);
      auto got = drive_with_grain<D>(g, staging, tile, leaf, grain);
      ref.expect_eq(got, "dense d=" + std::to_string(D) + " grain=" +
                             std::to_string(grain) + " threads=" +
                             std::to_string(threads));
    }
  }

  // ValueMap staging through the same matrix: the shard fall-through
  // and merge must be store-agnostic (allocs are 0 on both sides).
  sep::ValueMap<D> ref_map;
  auto refm = drive_with_grain<D>(g, ref_map, tile, leaf, /*grain=*/0);
  for (int threads : {2, 4}) {
    engine::Pool pool(threads);
    auto bind = pool.bind_caller();
    sep::ValueMap<D> staging;
    auto got = drive_with_grain<D>(g, staging, tile, leaf, /*grain=*/2);
    refm.expect_eq(got, "map d=" + std::to_string(D) + " threads=" +
                            std::to_string(threads));
  }
  // And the two staging types agree with each other.
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i)
    EXPECT_EQ(ref.cost_bits[i], refm.cost_bits[i]) << "store-type drift";
  EXPECT_TRUE(sim::same_values<D>(ref.fin, refm.fin));
}

TEST(ParallelGrainIdentity, D1VolumeBitIdenticalAcrossGrainAndPool) {
  auto g = workload::make_mix_guest<1>({32}, 32, 2, 1234);
  grain_pool_matrix<1>(g, /*tile=*/16, /*leaf=*/2);
}

TEST(ParallelGrainIdentity, D2VolumeBitIdenticalAcrossGrainAndPool) {
  auto g = workload::make_mix_guest<2>({12, 12}, 12, 1, 4321);
  grain_pool_matrix<2>(g, /*tile=*/6, /*leaf=*/2);
}

TEST(ParallelGrainIdentity, MultiprocWaveForkingBitIdentical) {
  // The multiproc driver forks whole Regime-2 subtiles; totals, final
  // values, virtual time, and utilization must not move.
  auto g = workload::make_mix_guest<1>({32}, 32, 2, 9);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  auto ref = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 2), cfg);
  const int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(2);
  sim::MultiprocConfig fcfg = cfg;
  fcfg.reloc_grain = 2;
  fcfg.wave_grain = 2;
  for (int threads : {1, 2, 4}) {
    engine::Pool pool(threads);
    auto bind = pool.bind_caller();
    auto got = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 2), fcfg);
    EXPECT_EQ(got.time, ref.time) << "threads=" << threads;
    EXPECT_EQ(got.utilization, ref.utilization) << "threads=" << threads;
    EXPECT_EQ(got.vertices, ref.vertices) << "threads=" << threads;
    EXPECT_EQ(got.ledger.total(), ref.ledger.total())
        << "threads=" << threads;
    EXPECT_TRUE(sim::same_values<1>(got.final_values, ref.final_values))
        << "threads=" << threads;
  }
  sep::set_default_parallel_grain(saved);
}

// ---------------------------------------------------------------------
// Multiproc forking identity: the forked regime-1 relocation levels,
// forked wavefronts (d=1 and d=2) and forked subtile bodies must be
// bit-identical to the serial run — per-kind charged costs (bitwise
// doubles), event counts, virtual time, utilization, vertices, peak
// staging, slab allocations, final values, and the emitted op stream —
// across Pool {1,2,4} × grain {off, 2, huge} × store {dense, hashmap}.
// ---------------------------------------------------------------------

namespace {

struct MpOutcome {
  std::array<std::uint64_t, core::CostLedger::kNumKinds> cost_bits{};
  std::array<std::uint64_t, core::CostLedger::kNumKinds> events{};
  std::int64_t vertices = 0;
  std::uint64_t time_bits = 0, util_bits = 0;
  std::size_t peak = 0;
  std::size_t allocs = 0;
};

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  static_assert(sizeof v == sizeof b);
  std::memcpy(&b, &v, sizeof v);
  return b;
}

struct MpGrains {
  int64_t reloc, wave, exec;
};

/// Run the multiproc simulator under one (grains, store) config and
/// return everything the determinism contract pins.
template <int D, class Store, class V>
MpOutcome run_multiproc(const sep::BasicGuest<D, V>& g,
                        const machine::MachineSpec& host, int64_t s,
                        MpGrains grains, sep::BasicValueMap<D, V>& fin_out) {
  const int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(grains.exec);
  engine::Metrics metrics;
  sim::MultiprocConfig cfg;
  cfg.s = s;
  cfg.reloc_grain = grains.reloc;
  cfg.wave_grain = grains.wave;
  cfg.metrics = &metrics;
  auto res = sim::simulate_multiproc<D, V, Store>(g, host, cfg);
  sep::set_default_parallel_grain(saved);

  MpOutcome out;
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    auto kind = static_cast<core::CostKind>(i);
    out.cost_bits[i] = bits_of(res.ledger.cost(kind));
    out.events[i] = res.ledger.events(kind);
  }
  out.vertices = res.vertices;
  out.time_bits = bits_of(res.time);
  out.util_bits = bits_of(res.utilization);
  auto hot = metrics.hot_snapshot();
  EXPECT_EQ(hot.size(), 1u);
  if (!hot.empty()) {
    out.peak = hot[0].peak_staging_words;
    out.allocs = hot[0].staging_allocs;
  }
  fin_out = std::move(res.final_values);
  return out;
}

void expect_mp_eq(const MpOutcome& a, const MpOutcome& b,
                  const std::string& what) {
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i) {
    EXPECT_EQ(a.cost_bits[i], b.cost_bits[i])
        << what << ": cost kind " << i << " not bit-identical";
    EXPECT_EQ(a.events[i], b.events[i]) << what << ": events kind " << i;
  }
  EXPECT_EQ(a.vertices, b.vertices) << what;
  EXPECT_EQ(a.time_bits, b.time_bits) << what << ": virtual time";
  EXPECT_EQ(a.util_bits, b.util_bits) << what << ": utilization";
  EXPECT_EQ(a.peak, b.peak) << what << ": peak staging";
  EXPECT_EQ(a.allocs, b.allocs) << what << ": slab allocs";
}

/// The full matrix for one guest: serial dense reference vs every
/// (grain combo, pool size) on both staging types. Grain combos turn
/// each mechanism on alone and all together, plus a huge grain that
/// must behave exactly like off.
template <int D, class V>
void multiproc_fork_matrix(const sep::BasicGuest<D, V>& g,
                           const machine::MachineSpec& host, int64_t s) {
  const MpGrains kOff{0, 0, 0};
  const int64_t huge = int64_t{1} << 30;
  const MpGrains combos[] = {
      {2, 0, 0},           // regime-1 relocation forks alone
      {0, 2, 0},           // wavefronts fork alone
      {0, 0, 2},           // executor (subtile bodies) forks alone
      {2, 2, 2},           // everything forks
      {huge, huge, huge},  // above every width: must equal off
  };

  sep::BasicValueMap<D, V> ref_fin;
  auto ref = run_multiproc<D, sep::StagingStore<D, V>>(g, host, s, kOff,
                                                       ref_fin);

  for (const MpGrains& gr : combos) {
    for (int threads : {1, 2, 4}) {
      engine::Pool pool(threads);
      auto bind = pool.bind_caller();
      sep::BasicValueMap<D, V> fin;
      auto got =
          run_multiproc<D, sep::StagingStore<D, V>>(g, host, s, gr, fin);
      const std::string what =
          "dense d=" + std::to_string(D) + " reloc=" +
          std::to_string(gr.reloc) + " wave=" + std::to_string(gr.wave) +
          " exec=" + std::to_string(gr.exec) +
          " threads=" + std::to_string(threads);
      expect_mp_eq(ref, got, what);
      EXPECT_TRUE(sim::same_values<D>(ref_fin, fin)) << what;
    }
  }

  // Hashmap staging through the same forks: the shard fall-through and
  // merge must be store-agnostic (allocs are 0 on both sides).
  sep::BasicValueMap<D, V> refm_fin;
  auto refm = run_multiproc<D, sep::BasicValueMap<D, V>>(g, host, s, kOff,
                                                         refm_fin);
  for (int threads : {2, 4}) {
    engine::Pool pool(threads);
    auto bind = pool.bind_caller();
    sep::BasicValueMap<D, V> fin;
    auto got = run_multiproc<D, sep::BasicValueMap<D, V>>(
        g, host, s, MpGrains{2, 2, 2}, fin);
    const std::string what =
        "map d=" + std::to_string(D) + " threads=" + std::to_string(threads);
    expect_mp_eq(refm, got, what);
    EXPECT_TRUE(sim::same_values<D>(refm_fin, fin)) << what;
  }
  // And the two staging types agree on everything but slab allocs
  // (a hashmap never allocates level slabs).
  for (std::size_t i = 0; i < core::CostLedger::kNumKinds; ++i)
    EXPECT_EQ(ref.cost_bits[i], refm.cost_bits[i]) << "store-type drift";
  EXPECT_EQ(ref.time_bits, refm.time_bits) << "store-type drift: time";
  EXPECT_EQ(ref.peak, refm.peak) << "store-type drift: peak";
  EXPECT_TRUE(sim::same_values<D>(ref_fin, refm_fin));
}

}  // namespace

TEST(ParallelGrainIdentity, MultiprocD1ForkMatrixBitIdentical) {
  auto g = workload::make_mix_guest<1>({64}, 64, 2, 1234);
  multiproc_fork_matrix<1>(g, spec(1, 64, 4, 2), /*s=*/4);
}

TEST(ParallelGrainIdentity, MultiprocD2ForkMatrixBitIdentical) {
  auto g = workload::make_mix_guest<2>({8, 8}, 8, 1, 4321);
  multiproc_fork_matrix<2>(g, machine::MachineSpec{2, 64, 4, 1}, /*s=*/2);
}

TEST(ParallelGrainIdentity, MultiprocEmitConformance) {
  // The op stream is emitted on the canonical-order replay path, so it
  // must be byte-identical whether the run forked or not — and its
  // makespan must still reproduce the simulator's virtual time.
  auto g = workload::make_mix_guest<1>({64}, 64, 2, 77);
  machine::MachineSpec host{1, 64, 4, 2};
  sim::MultiprocConfig cfg;
  cfg.s = 4;

  sim::MultiprocSimulator<1> serial(&g, host, cfg);
  sched::ParallelSchedule<1> ref(host.p);
  serial.set_emit(&ref);
  auto sres = serial.run();

  const int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(2);
  sim::MultiprocConfig fcfg = cfg;
  fcfg.reloc_grain = 2;
  fcfg.wave_grain = 2;
  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  sim::MultiprocSimulator<1> forked(&g, host, fcfg);
  sched::ParallelSchedule<1> got(host.p);
  forked.set_emit(&got);
  auto fres = forked.run();
  sep::set_default_parallel_grain(saved);

  EXPECT_EQ(fres.time, sres.time);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const auto& a = ref.ops()[i];
    const auto& b = got.ops()[i];
    EXPECT_EQ(a.kind, b.kind) << "op " << i;
    EXPECT_EQ(a.proc, b.proc) << "op " << i;
    EXPECT_EQ(a.words, b.words) << "op " << i;
    EXPECT_EQ(bits_of(a.addr_scale), bits_of(b.addr_scale)) << "op " << i;
    EXPECT_EQ(bits_of(a.distance), bits_of(b.distance)) << "op " << i;
    EXPECT_EQ(a.leaf_lo, b.leaf_lo) << "op " << i;
    EXPECT_EQ(a.leaf_hi, b.leaf_hi) << "op " << i;
  }
  EXPECT_EQ(bits_of(got.makespan_under(g.stencil, host.access_fn())),
            bits_of(ref.makespan_under(g.stencil, host.access_fn())));
}

TEST(ParallelGrainIdentity, NestedSweepAndSimulatorForksShareThePool) {
  // Second nesting level: sweep points fork across the Pool, and each
  // point's simulator forks its waves/relocations into the *same*
  // scheduler (sweep workers are bound to slots, so TaskScope finds
  // it) — no second pool, and the rows stay byte-identical across pool
  // sizes.
  const int64_t saved = sep::default_parallel_grain();
  sep::set_default_parallel_grain(2);
  auto run_rows = [&](int threads) {
    engine::Pool pool(threads);
    std::vector<int> points{0, 1, 2, 3};
    return engine::sweep_map<std::uint64_t>(
        pool, points, [&](int pt, engine::SweepContext&) {
          auto g = workload::make_mix_guest<1>(
              {32}, 32, 2, 100 + static_cast<std::uint64_t>(pt));
          sim::MultiprocConfig cfg;
          cfg.s = 4;
          cfg.reloc_grain = 2;
          cfg.wave_grain = 2;
          auto res = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 2), cfg);
          return bits_of(res.time) ^
                 static_cast<std::uint64_t>(res.vertices);
        });
  };
  auto ref = run_rows(1);
  EXPECT_EQ(run_rows(2), ref);
  EXPECT_EQ(run_rows(4), ref);
  sep::set_default_parallel_grain(saved);
}

TEST(FailureInjection, WrongRuleIsDetected) {
  auto g1 = workload::make_mix_guest<1>({8}, 8, 1, 5);
  auto g2 = g1;
  g2.rule = [base = g1.rule](const geom::Point<1>& p, sep::Word self,
                             const sep::NeighborWords<1>& nbrs) {
    sep::Word v = base(p, self, nbrs);
    return (p.x[0] == 3 && p.t == 4) ? v + 1 : v;  // one wrong vertex
  };
  auto r1 = sim::reference_run<1>(g1);
  auto r2 = sim::reference_run<1>(g2);
  EXPECT_FALSE(sim::same_values<1>(r1.final_values, r2.final_values));
}
