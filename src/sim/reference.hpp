// The guest itself: a direct, time-stepped execution of the network
// computation. Runs in Tn = T units of guest virtual time (one unit
// per synchronous step — near-neighbor links have unit length in
// Md(n,n,m) and private accesses cost at most 1). Every simulator's
// output is compared against this run.
#pragma once

#include <vector>

#include "core/expect.hpp"
#include "sep/guest.hpp"
#include "sim/observe.hpp"
#include "sim/result.hpp"

namespace bsmp::sim {

namespace detail {

/// Flatten node coordinates to a linear index (row-major).
template <int D>
int64_t node_index(const geom::Stencil<D>& st,
                   const std::array<int64_t, D>& x) {
  int64_t idx = 0;
  for (int i = 0; i < D; ++i) idx = idx * st.extent[i] + x[i];
  return idx;
}

template <int D>
std::array<int64_t, D> node_coords(const geom::Stencil<D>& st, int64_t idx) {
  std::array<int64_t, D> x{};
  for (int i = D - 1; i >= 0; --i) {
    x[i] = idx % st.extent[i];
    idx /= st.extent[i];
  }
  return x;
}

}  // namespace detail

/// Run the guest directly. The returned result has time == guest_time
/// == T and the final values of every memory cell. Generic over the
/// guest's value type (scalar Word or sep::LaneBatch).
template <int D, class V>
SimResult<D, V> reference_run(const sep::BasicGuest<D, V>& guest) {
  guest.validate();
  const geom::Stencil<D>& st = guest.stencil;
  const int64_t n = st.num_nodes();
  const int64_t T = st.horizon;
  const int64_t m = st.m;

  // Ring buffer of the last m value levels: ring[t % m] holds the
  // values of time level t (the cell written at step t).
  std::vector<std::vector<V>> ring(
      static_cast<std::size_t>(m),
      std::vector<V>(static_cast<std::size_t>(n), V{}));
  std::vector<V> scratch(static_cast<std::size_t>(n), V{});

  SimResult<D, V> res;
  for (int64_t t = 0; t < T; ++t) {
    for (int64_t idx = 0; idx < n; ++idx) {
      auto x = detail::node_coords<D>(st, idx);
      geom::Point<D> p;
      p.x = x;
      p.t = t;
      V value;
      if (t == 0) {
        value = guest.input(x, 0);
      } else {
        V self_prev = (t >= m) ? ring[t % m][idx]
                               : guest.input(x, t % m);
        sep::BasicNeighbors<D, V> nbrs{};
        const auto& prev = ring[(t - 1) % m];
        for (int i = 0; i < D; ++i) {
          for (int s = 0; s < 2; ++s) {
            auto q = x;
            q[i] += (s == 0 ? -1 : 1);
            if (st.in_space(q))
              nbrs[2 * i + s] = prev[detail::node_index<D>(st, q)];
          }
        }
        value = guest.rule(p, self_prev, nbrs);
      }
      scratch[idx] = value;
      ++res.vertices;
    }
    ring[t % m].swap(scratch);
    res.ledger.charge(core::CostKind::kCompute, 1.0);  // one step, unit time
  }

  res.time = static_cast<core::Cost>(T);
  res.guest_time = static_cast<core::Cost>(T);
  for (const auto& q : final_points<D>(st)) {
    res.final_values.emplace(
        q, ring[q.t % m][detail::node_index<D>(st, q.x)]);
  }
  return res;
}

}  // namespace bsmp::sim
