#include "geom/figures.hpp"

#include "core/expect.hpp"

namespace bsmp::geom {

Region<1> make_diamond(const Stencil<1>* st, int64_t u0, int64_t w0,
                       int64_t r) {
  BSMP_REQUIRE(r >= 1);
  return Region<1>(st, {u0, w0}, {u0 + r, w0 + r});
}

Region<2> make_octahedron(const Stencil<2>* st, int64_t u0, int64_t a0,
                          int64_t v0, int64_t b0, int64_t r) {
  BSMP_REQUIRE(r >= 1);
  BSMP_REQUIRE_MSG(u0 + a0 == v0 + b0,
                   "octahedron requires aligned sum ranges");
  return Region<2>(st, {u0, a0, v0, b0}, {u0 + r, a0 + r, v0 + r, b0 + r});
}

Region<2> make_tetrahedron(const Stencil<2>* st, int64_t u0, int64_t a0,
                           int64_t v0, int64_t b0, int64_t r) {
  BSMP_REQUIRE(r >= 2);
  int64_t off = (u0 + a0) - (v0 + b0);
  BSMP_REQUIRE_MSG(off == r || off == -r,
                   "tetrahedron requires sum ranges offset by half their "
                   "length (offset "
                       << off << ", r " << r << ")");
  return Region<2>(st, {u0, a0, v0, b0}, {u0 + r, a0 + r, v0 + r, b0 + r});
}

DomainClass classify_d2(const Region<2>& r) {
  // Sum ranges: u+a in [lo_u+lo_a, hi_u+hi_a-2], same for v+b. For
  // equal-length boxes the class is determined by the lo-sum offset
  // relative to the common interval length.
  int64_t len_ua = (r.hi()[0] - r.lo()[0]) + (r.hi()[1] - r.lo()[1]);
  int64_t len_vb = (r.hi()[2] - r.lo()[2]) + (r.hi()[3] - r.lo()[3]);
  if (len_ua != len_vb) return DomainClass::kOther;
  int64_t off = (r.lo()[0] + r.lo()[1]) - (r.lo()[2] + r.lo()[3]);
  if (off < 0) off = -off;
  if (off == 0) return DomainClass::kOctahedron;
  if (off == len_ua / 2) return DomainClass::kTetrahedron;
  return DomainClass::kOther;
}

std::string to_string(DomainClass c) {
  switch (c) {
    case DomainClass::kOctahedron: return "P (octahedron)";
    case DomainClass::kTetrahedron: return "W (tetrahedron)";
    case DomainClass::kOther: return "other";
  }
  return "?";
}

template <int D>
std::vector<Region<D>> shell_partition(const Stencil<D>* st,
                                       const Region<D>& center) {
  BSMP_REQUIRE(st != nullptr);
  constexpr int K = kMono<D>;
  // Monotone bounding box of the full volume V.
  std::array<int64_t, K> vlo, vhi;
  for (int i = 0; i < D; ++i) {
    vlo[2 * i] = 0;
    vhi[2 * i] = (st->horizon - 1) + (st->extent[i] - 1) + 1;
    vlo[2 * i + 1] = -(st->extent[i] - 1);
    vhi[2 * i + 1] = (st->horizon - 1) + 1;
  }
  for (int k = 0; k < K; ++k) {
    BSMP_REQUIRE_MSG(vlo[k] <= center.lo()[k] && center.hi()[k] <= vhi[k],
                     "center must lie inside V's monotone bounding box");
  }

  // Piece for half-axis (k, low/high): coordinate k outside the center
  // on that side, coordinates j < k inside the center's range (so each
  // outside point lands in exactly one piece — classified by its first
  // out-of-center coordinate), coordinates j > k unrestricted.
  auto shell_piece = [&](int k, bool low) {
    std::array<int64_t, K> lo = vlo, hi = vhi;
    if (low)
      hi[k] = center.lo()[k];
    else
      lo[k] = center.hi()[k];
    for (int j = 0; j < k; ++j) {
      lo[j] = center.lo()[j];
      hi[j] = center.hi()[j];
    }
    return Region<D>(st, lo, hi);
  };

  std::vector<Region<D>> parts;
  // LOW pieces ascending k: a LOW_k point's predecessors only decrease
  // coordinates, so they sit in LOW_j with j <= k.
  for (int k = 0; k < K; ++k) {
    Region<D> piece = shell_piece(k, true);
    if (!piece.empty()) parts.push_back(std::move(piece));
  }
  parts.push_back(center);
  // HIGH pieces descending k: a HIGH_k point has coordinates j < k
  // inside the center range, so its predecessors cannot be in HIGH_j
  // for j < k.
  for (int k = K - 1; k >= 0; --k) {
    Region<D> piece = shell_piece(k, false);
    if (!piece.empty()) parts.push_back(std::move(piece));
  }
  return parts;
}

template std::vector<Region<1>> shell_partition<1>(const Stencil<1>*,
                                                   const Region<1>&);
template std::vector<Region<2>> shell_partition<2>(const Stencil<2>*,
                                                   const Region<2>&);
template std::vector<Region<3>> shell_partition<3>(const Stencil<3>*,
                                                   const Region<3>&);

std::vector<Region<1>> fig1_partition(const Stencil<1>* st) {
  BSMP_REQUIRE(st != nullptr);
  const int64_t n = st->extent[0];
  BSMP_REQUIRE_MSG(st->horizon == n,
                   "Figure 1 partitions the square V: horizon must equal n");
  BSMP_REQUIRE_MSG(n % 2 == 0, "Figure 1 construction assumes even n");
  // V in monotone coordinates: u = t+x in [0, 2n-2], w = t-x in
  // [-(n-1), n-1]. The central diamond U3 = D(n) is the box
  // [n/2, 3n/2) x [-n/2, n/2); the complement is covered by a pinwheel
  // of four boxes, each clipped to V by the Region machinery. The order
  // (U1, U2, U3, U4, U5) below is a topological partition: U1 and U2
  // hold the bottom corners, U4 and U5 the top ones, and no piece has a
  // predecessor in a later piece (verified in tests via Definition 4).
  const int64_t h = n / 2;
  std::vector<Region<1>> parts;
  // U1: u in [0, h), w anywhere low — bottom-left triangle of V.
  parts.emplace_back(st, std::array<int64_t, 2>{0, -n},
                     std::array<int64_t, 2>{h, h});
  // U2: u in [h, 2n), w in [-n, -h) — bottom-right triangle.
  parts.emplace_back(st, std::array<int64_t, 2>{h, -n},
                     std::array<int64_t, 2>{2 * n, -h});
  // U3: the full central diamond D(n).
  parts.emplace_back(st, std::array<int64_t, 2>{h, -h},
                     std::array<int64_t, 2>{3 * h, h});
  // U4: u in [0, 3h), w in [h, n) — top-left triangle.
  parts.emplace_back(st, std::array<int64_t, 2>{0, h},
                     std::array<int64_t, 2>{3 * h, n});
  // U5: u in [3h, 2n), w in [-h, n) — top-right triangle.
  parts.emplace_back(st, std::array<int64_t, 2>{3 * h, -h},
                     std::array<int64_t, 2>{2 * n, n});
  return parts;
}

}  // namespace bsmp::geom
