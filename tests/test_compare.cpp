// The cross-scheme comparison harness.
#include <gtest/gtest.h>

#include "sim/compare.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

TEST(Compare, AllSchemesAgreeUniprocessor) {
  auto g = workload::make_mix_guest<1>({32}, 32, 2, 7);
  machine::MachineSpec host{1, 32, 1, 2};
  auto cmp = sim::compare_schemes<1>(g, host);
  EXPECT_TRUE(cmp.all_match);
  ASSERT_EQ(cmp.runs.size(), 5u);
  for (const auto& run : cmp.runs) EXPECT_TRUE(run.matches_guest) << run.name;
  EXPECT_EQ(cmp.runs.back().name, "D&C separator (Thms 2/3/5)");
  EXPECT_GT(cmp.bound, 0.0);
}

TEST(Compare, AllSchemesAgreeMultiprocessor) {
  auto g = workload::make_mix_guest<1>({32}, 32, 1, 8);
  machine::MachineSpec host{1, 32, 4, 1};
  auto cmp = sim::compare_schemes<1>(g, host, 4);
  EXPECT_TRUE(cmp.all_match);
  EXPECT_EQ(cmp.runs.back().name, "two-regime (Thms 4 / 1)");
  // Brent is the fastest simulation; the guest itself is slowdown 1.
  EXPECT_DOUBLE_EQ(cmp.runs.front().slowdown, 1.0);
  double brent = 0;
  for (const auto& run : cmp.runs)
    if (run.name.find("Brent") != std::string::npos) brent = run.slowdown;
  for (const auto& run : cmp.runs) {
    if (run.name.find("guest") == std::string::npos) {
      EXPECT_GE(run.slowdown, brent * 0.999) << run.name;
    }
  }
}

TEST(Compare, WorksIn2D) {
  auto g = workload::make_mix_guest<2>({4, 4}, 6, 1, 9);
  machine::MachineSpec host{2, 16, 4, 1};
  auto cmp = sim::compare_schemes<2>(g, host, 2);
  EXPECT_TRUE(cmp.all_match);
}
