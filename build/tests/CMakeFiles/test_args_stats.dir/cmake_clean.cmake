file(REMOVE_RECURSE
  "CMakeFiles/test_args_stats.dir/test_args_stats.cpp.o"
  "CMakeFiles/test_args_stats.dir/test_args_stats.cpp.o.d"
  "test_args_stats"
  "test_args_stats.pdb"
  "test_args_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_args_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
