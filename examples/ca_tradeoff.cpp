// Cellular-automaton tradeoff study: run a rule-110 linear array and a
// 2-d parity automaton through every simulation scheme and show how
// the locality slowdown A(n,m,p) splits off from the parallelism
// slowdown n/p.
//
//   $ ./ca_tradeoff
#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/table.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

int main() {
  // --- d = 1: rule 110 on a 128-cell array ----------------------------
  const std::int64_t n = 128;
  sep::Guest<1> ca;
  ca.stencil = geom::Stencil<1>{{n}, n, 1};
  ca.rule = workload::rule110();
  ca.input = workload::random_input<1>(2026);
  auto ref = sim::reference_run<1>(ca);

  core::Table t1("rule 110, M1(128,128,1) simulated by M1(128,p,1)",
                 {"p", "naive Tp/Tn", "D&C/2-regime Tp/Tn", "Brent n/p",
                  "locality factor A (measured)"});
  for (std::int64_t p : {1, 2, 4, 8, 16, 32}) {
    machine::MachineSpec host{1, n, p, 1};
    auto nv = sim::simulate_naive<1>(ca, host);
    sim::SimResult<1> dc;
    if (p == 1) {
      dc = sim::simulate_dc_uniproc<1>(ca, host);
    } else {
      dc = sim::simulate_multiproc<1>(ca, host);
    }
    if (!sim::same_values<1>(nv.final_values, ref.final_values) ||
        !sim::same_values<1>(dc.final_values, ref.final_values)) {
      std::cerr << "BUG: values disagree\n";
      return 1;
    }
    double brent = static_cast<double>(n) / static_cast<double>(p);
    t1.add_row({(long long)p, nv.slowdown(), dc.slowdown(), brent,
                dc.slowdown() / brent});
  }
  t1.print(std::cout);

  // --- d = 2: parity automaton on a 16x16 mesh ------------------------
  const std::int64_t side = 16, n2 = side * side;
  sep::Guest<2> mesh_ca;
  mesh_ca.stencil = geom::Stencil<2>{{side, side}, side, 1};
  mesh_ca.rule = workload::parity_rule<2>();
  mesh_ca.input = workload::random_input<2>(9);
  auto ref2 = sim::reference_run<2>(mesh_ca);

  core::Table t2("parity CA, M2(256,256,1) simulated by M2(256,p,1)",
                 {"p", "scheme", "Tp/Tn", "bound", "ratio"});
  for (std::int64_t p : {1, 4, 16}) {
    machine::MachineSpec host{2, n2, p, 1};
    sim::SimResult<2> res;
    std::string scheme;
    if (p == 1) {
      res = sim::simulate_dc_uniproc<2>(mesh_ca, host);
      scheme = "D&C (Thm 5)";
    } else {
      res = sim::simulate_multiproc<2>(mesh_ca, host);
      scheme = "2-regime (Thm 1, d=2)";
    }
    if (!sim::same_values<2>(res.final_values, ref2.final_values)) {
      std::cerr << "BUG: values disagree (d=2, p=" << p << ")\n";
      return 1;
    }
    double bound = analytic::slowdown_bound(2, n2, 1, p);
    t2.add_row({(long long)p, scheme, res.slowdown(), bound,
                res.slowdown() / bound});
  }
  t2.print(std::cout);
  return 0;
}
