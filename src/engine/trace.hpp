// engine::trace — per-span timelines under the execution stack.
//
// The metrics layer (metrics.hpp) records *totals*; this recorder
// answers "where did the time go inside a point": every separator
// recursion node and leaf batch, every regime-1 relocation level and
// regime-2 wavefront of the multiprocessor simulator, every sweep
// point, plan build, and fork/steal/join of the task layer becomes a
// span on its executing thread's timeline.
//
// Design constraints, in order:
//   * compile-time no-op: with the BSMP_TRACE CMake option off,
//     Span/instant()/steal_latency() compile to nothing and the
//     instrumented code is byte-identical to the uninstrumented build;
//   * no locks on the hot path: each thread records into its own
//     buffer (registered once, under a mutex, on the thread's first
//     span); a span is one clock read at construction and one
//     buffer append at destruction;
//   * runtime-gated: even when compiled in, nothing is recorded (and
//     no buffer is allocated) unless the BSMP_TRACE environment
//     variable — or set_enabled(true) — turns the recorder on;
//   * bounded memory: a full per-thread buffer counts drops instead of
//     growing; the duration histograms keep counting either way, so
//     the histogram blocks of the metrics v2 artifact are exact even
//     when the event timeline is truncated.
//
// Flushing: write_chrome_json() emits the Chrome trace-event format
// (one B/E pair per span, per-thread tracks, metadata names), loadable
// in chrome://tracing or https://ui.perfetto.dev; snapshot(),
// hist_snapshot(), and digest() expose the same data to tests and to
// the metrics v2 serializer. Timestamps are scheduling-dependent; the
// *set* of spans in the deterministic categories (everything except
// kTask) is a pure function of the work, which the trace determinism
// property test pins across pool sizes and fork grains.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef BSMP_TRACE_ENABLED
#define BSMP_TRACE_ENABLED 0
#endif

#if BSMP_TRACE_ENABLED
#include <atomic>
#include <chrono>
#endif

namespace bsmp::engine::trace {

/// Span categories — the `cat` field of the Chrome trace events and
/// the keys of the per-phase duration histograms. Spans in kTask are
/// scheduling-dependent (which forks ran, who stole what); every other
/// category is a deterministic function of the executed work.
enum class Cat : std::uint8_t {
  kTask = 0,    ///< task layer: task-run, fork, steal, join-park, merges
  kSepRegion,   ///< separator recursion: sep-region nodes, sep-leaf batches
  kStaging,     ///< staging store maintenance: wavefront pruning
  kSweepPoint,  ///< sweep engine: sweeps, sweep points, plan builds
  kSim,         ///< simulator drivers: tiles, relocation levels, wavefronts
  kCount
};
inline constexpr int kNumCats = static_cast<int>(Cat::kCount);

/// Stable category name ("task", "sep-region", ...).
const char* cat_name(Cat c);

/// Log2 duration histogram: bucket 0 holds 0 ns, bucket b >= 1 holds
/// durations in [2^(b-1), 2^b) ns.
inline constexpr int kHistBuckets = 64;
int duration_bucket(std::uint64_t ns);

/// Aggregated histogram counters (summed over threads). Plain data,
/// always defined — the metrics v2 serializer embeds one per pass even
/// when tracing is compiled out (then it stays all-zero).
struct HistSnapshot {
  /// Per-category span-duration counts: span_ns[cat][bucket].
  std::array<std::array<std::uint64_t, kHistBuckets>, kNumCats> span_ns{};
  /// push -> steal latency of directly-executed stolen tasks.
  std::array<std::uint64_t, kHistBuckets> steal_latency_ns{};

  /// Counter-wise difference (for per-pass deltas of a process-global
  /// recorder).
  HistSnapshot& operator-=(const HistSnapshot& o);
  bool empty() const;
};

/// The self-description block of a metrics v2 artifact and of the
/// "otherData" section of a flushed trace: which build, which machine,
/// which knobs produced the numbers.
struct RunManifest {
  std::string name;        ///< emitter / bench name
  std::string git_sha;     ///< source revision the binary was built from
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< __VERSION__ of the building compiler
  int hardware_threads = 1;
  /// Hardware identity of the producing host, so `bsmp-stat diff` can
  /// refuse cross-hardware comparisons instead of reporting bogus
  /// regressions (metrics-v3). num_cpus mirrors hardware_threads under
  /// the name google-benchmark uses for the same fact
  /// (context.num_cpus), so both artifact families key comparability
  /// the same way.
  int num_cpus = 1;
  std::string hostname = "unknown";  ///< gethostname() of the producer
  /// SIMD leaf-kernel dispatch active for the run
  /// (sep::simd::active_isa()); "unknown" until the producer fills it —
  /// engine cannot call into sep (layering), so bench_common and the
  /// conformance serializers stamp it after make_run_manifest().
  std::string simd_isa = "unknown";
  bool trace_compiled = false;  ///< BSMP_TRACE compiled in
  bool trace_enabled = false;   ///< recorder on at manifest time
  /// Raw values of the BSMP_* environment knobs ("unset" when absent),
  /// in a fixed order.
  std::vector<std::pair<std::string, std::string>> knobs;
  std::string trace_file;  ///< flushed trace path ("" when none written)
  std::uint64_t trace_events = 0;   ///< events held in the buffers
  std::uint64_t trace_dropped = 0;  ///< events dropped (buffers full)
  std::string trace_digest;  ///< hex order-independent span identity hash
};

/// Fill every field except `trace_file` (the caller knows where it
/// flushes): build identity from compile-time definitions, knob values
/// from the environment, trace_* from the recorder's current state.
RunManifest make_run_manifest(const std::string& name);

/// Whether the recorder is compiled in (the BSMP_TRACE CMake option).
constexpr bool compiled() { return BSMP_TRACE_ENABLED != 0; }

/// One flushed event, as tests and the Chrome writer consume it.
struct SpanRec {
  const char* name = "";  ///< static-literal span name
  Cat cat = Cat::kTask;
  char ph = 'X';  ///< 'X' complete span, 'i' instant
  int tid = 0;    ///< recorder thread index (registration order)
  std::uint64_t t0_ns = 0;   ///< start, ns since the recorder epoch
  std::uint64_t dur_ns = 0;  ///< duration (0 for instants)
  std::int64_t a0 = 0;       ///< span args (width/index/latency/...)
  std::int64_t a1 = 0;       ///< second arg (depth/processor/...)
  std::string detail;        ///< short free-form label (may be empty)
};

#if BSMP_TRACE_ENABLED

namespace detail {

/// Raw monotonic nanoseconds (epoch-subtraction happens at flush).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

extern std::atomic<bool> g_enabled;

/// Append one event to the calling thread's buffer (registering the
/// buffer on first use) and bump the category histogram.
void record(Cat cat, char ph, const char* name, std::uint64_t t0,
            std::uint64_t dur, std::int64_t a0, std::int64_t a1,
            const char* detail, std::size_t detail_len);

void record_steal_latency(std::uint64_t ns);

}  // namespace detail

/// Runtime gate: initialized from the BSMP_TRACE environment variable
/// (on unless absent or "0"), toggled by tests via set_enabled().
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// RAII span: one timeline entry on the recording thread, from
/// construction to destruction. ~55 ns when enabled (two clock reads
/// plus a buffer append), one relaxed load when disabled.
class Span {
 public:
  Span(Cat cat, const char* name, std::int64_t a0 = 0, std::int64_t a1 = 0)
      : cat_(cat), name_(name), a0_(a0), a1_(a1) {
    if (enabled()) t0_ = detail::now_ns();
  }
  /// With a short free-form label (truncated to the inline capacity).
  Span(Cat cat, const char* name, std::string_view label_detail,
       std::int64_t a0 = 0, std::int64_t a1 = 0)
      : cat_(cat), name_(name), a0_(a0), a1_(a1) {
    dlen_ = static_cast<std::uint8_t>(
        label_detail.size() < sizeof detail_ ? label_detail.size()
                                             : sizeof detail_);
    for (std::uint8_t i = 0; i < dlen_; ++i) detail_[i] = label_detail[i];
    if (enabled()) t0_ = detail::now_ns();
  }
  ~Span() {
    if (t0_ != 0)
      detail::record(cat_, 'X', name_, t0_, detail::now_ns() - t0_, a0_, a1_,
                     detail_, dlen_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Cat cat_;
  const char* name_;
  std::int64_t a0_, a1_;
  std::uint64_t t0_ = 0;  // 0: disabled at construction, record nothing
  std::uint8_t dlen_ = 0;
  char detail_[23];
};

/// Zero-duration event at the current instant.
inline void instant(Cat cat, const char* name, std::int64_t a0 = 0,
                    std::int64_t a1 = 0) {
  if (enabled())
    detail::record(cat, 'i', name, detail::now_ns(), 0, a0, a1, nullptr, 0);
}

/// Feed one push->steal latency into the steal-latency histogram.
inline void steal_latency(std::uint64_t ns) {
  if (enabled()) detail::record_steal_latency(ns);
}

#else  // !BSMP_TRACE_ENABLED — every recording entry point is a no-op.

constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}

class Span {
 public:
  Span(Cat, const char*, std::int64_t = 0, std::int64_t = 0) {}
  Span(Cat, const char*, std::string_view, std::int64_t = 0,
       std::int64_t = 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

inline void instant(Cat, const char*, std::int64_t = 0, std::int64_t = 0) {}
inline void steal_latency(std::uint64_t) {}

#endif  // BSMP_TRACE_ENABLED

// --- flush side (always linked; empty results when compiled out) ----

/// All recorded events, every thread, in per-thread recording order.
/// Call only while no instrumented code is running (quiescent).
std::vector<SpanRec> snapshot();

/// Sum of every thread's histograms (safe to call concurrently with
/// recording; counts are monotone relaxed).
HistSnapshot hist_snapshot();

/// Events currently held across all buffers / dropped for lack of room.
std::uint64_t events_recorded();
std::uint64_t dropped();

/// Monotonic timestamp on the recorder's clock (ns), for scoping a
/// span snapshot to one measurement pass: spans with t0_ns >= mark()
/// started after the mark. 0 when tracing is compiled out — every
/// span (there are none) trivially passes the filter.
std::uint64_t mark();

/// Order-independent FNV-1a-based hash over the identity (name, cat,
/// ph, a0, a1, detail) of every *held* event — stable for a
/// deterministic span set regardless of thread interleaving; dropped
/// events are not included.
std::uint64_t digest();

/// Reset every buffer, histogram, and drop counter. Buffers of dead
/// threads are released; live threads keep their (emptied) buffer.
/// Quiescent only.
void clear();

/// Flush the recorder as Chrome trace-event JSON: per-tid B/E pairs
/// reconstructed from the complete spans (properly nested), instants,
/// thread-name metadata, and `manifest` under "otherData". False when
/// the file cannot be written. Quiescent only.
bool write_chrome_json(const std::string& path, const RunManifest& manifest);

}  // namespace bsmp::engine::trace
