# Empty compiler generated dependencies file for bench_e8_thm1_d2.
# This may be replaced when dependencies are built.
