# Empty compiler generated dependencies file for bsmp_analytic.
# This may be replaced when dependencies are built.
