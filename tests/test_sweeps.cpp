// Broad equivalence sweeps: every simulator against the reference run
// across parameter matrices in d = 1, 2, 3, including randomized
// multiprocessor configurations.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {
machine::MachineSpec spec(int d, int64_t n, int64_t p, int64_t m) {
  return machine::MachineSpec{d, n, p, m};
}
}  // namespace

// ---------------------------------------------------------------------
// d = 2 sweeps.
// ---------------------------------------------------------------------

struct Sweep2D {
  int64_t side, T, m, p, s;
};

class Mesh2DSweep : public ::testing::TestWithParam<Sweep2D> {};

TEST_P(Mesh2DSweep, AllSchemesMatchReference) {
  auto [side, T, m, p, s] = GetParam();
  int64_t n = side * side;
  auto g = workload::make_mix_guest<2>({side, side}, T, m,
                                       static_cast<std::uint64_t>(
                                           side * 100 + T * 10 + m + p));
  auto ref = sim::reference_run<2>(g);

  auto nv = sim::simulate_naive<2>(g, spec(2, n, p, m));
  EXPECT_TRUE(sim::same_values<2>(nv.final_values, ref.final_values))
      << "naive";
  if (p == 1) {
    auto dc = sim::simulate_dc_uniproc<2>(g, spec(2, n, 1, m));
    EXPECT_TRUE(sim::same_values<2>(dc.final_values, ref.final_values))
        << "dc";
  }
  sim::MultiprocConfig cfg;
  cfg.s = s;
  auto mp = sim::simulate_multiproc<2>(g, spec(2, n, p, m), cfg);
  EXPECT_TRUE(sim::same_values<2>(mp.final_values, ref.final_values))
      << "multiproc";
  EXPECT_EQ(mp.vertices, n * T);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Mesh2DSweep,
    ::testing::Values(Sweep2D{4, 4, 1, 1, 2}, Sweep2D{4, 9, 1, 4, 2},
                      Sweep2D{4, 6, 2, 4, 2}, Sweep2D{6, 6, 1, 1, 3},
                      Sweep2D{6, 13, 3, 1, 2}, Sweep2D{8, 8, 1, 4, 4},
                      Sweep2D{8, 8, 2, 16, 2}, Sweep2D{8, 21, 4, 4, 3},
                      Sweep2D{9, 9, 1, 9, 3}, Sweep2D{12, 7, 2, 4, 5}));

// ---------------------------------------------------------------------
// d = 3 sweeps (the Section-6 conjecture machinery).
// ---------------------------------------------------------------------

struct Sweep3D {
  int64_t side, T, m;
};

class Mesh3DSweep : public ::testing::TestWithParam<Sweep3D> {};

TEST_P(Mesh3DSweep, DcAndNaiveMatchReference) {
  auto [side, T, m] = GetParam();
  int64_t n = side * side * side;
  auto g = workload::make_mix_guest<3>({side, side, side}, T, m,
                                       static_cast<std::uint64_t>(
                                           side * 31 + T * 7 + m));
  auto ref = sim::reference_run<3>(g);
  auto nv = sim::simulate_naive<3>(g, spec(3, n, 1, m));
  EXPECT_TRUE(sim::same_values<3>(nv.final_values, ref.final_values));
  auto dc = sim::simulate_dc_uniproc<3>(g, spec(3, n, 1, m));
  EXPECT_TRUE(sim::same_values<3>(dc.final_values, ref.final_values));
  EXPECT_EQ(dc.vertices, n * T);
}

INSTANTIATE_TEST_SUITE_P(Matrix, Mesh3DSweep,
                         ::testing::Values(Sweep3D{2, 3, 1}, Sweep3D{2, 7, 2},
                                           Sweep3D{3, 3, 1}, Sweep3D{3, 5, 3},
                                           Sweep3D{4, 4, 1},
                                           Sweep3D{4, 6, 2}));

// ---------------------------------------------------------------------
// Randomized multiprocessor fuzz (d = 1).
// ---------------------------------------------------------------------

class MultiprocFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MultiprocFuzz, RandomConfigsMatchReference) {
  core::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 9173 + 1);
  for (int iter = 0; iter < 4; ++iter) {
    int64_t n = 8 << rng.next_below(3);                  // 8..32
    int64_t p = 1 << rng.next_below(3);                  // 1..4
    while (p > n) p /= 2;
    int64_t m = 1 + static_cast<int64_t>(rng.next_below(5));
    int64_t T = 1 + static_cast<int64_t>(rng.next_below(40));
    int64_t s = 1 + static_cast<int64_t>(rng.next_below(4));
    while (s * p > n) s = std::max<int64_t>(1, s / 2);
    auto g = workload::make_mix_guest<1>({n}, T, m, rng.next());
    auto ref = sim::reference_run<1>(g);
    sim::MultiprocConfig cfg;
    cfg.s = s;
    auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
    EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values))
        << "n=" << n << " p=" << p << " m=" << m << " T=" << T
        << " s=" << s;
    EXPECT_EQ(res.vertices, n * T);
    EXPECT_GT(res.time, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiprocFuzz, ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Randomized dc fuzz across tile/leaf (d = 1).
// ---------------------------------------------------------------------

class DcFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DcFuzz, RandomTilingsMatchReference) {
  core::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 311 + 7);
  for (int iter = 0; iter < 4; ++iter) {
    int64_t n = 5 + static_cast<int64_t>(rng.next_below(20));
    int64_t m = 1 + static_cast<int64_t>(rng.next_below(6));
    int64_t T = 1 + static_cast<int64_t>(rng.next_below(50));
    int64_t tile = 1 + static_cast<int64_t>(rng.next_below(
                           static_cast<std::uint64_t>(n)));
    int64_t leaf = 1 + static_cast<int64_t>(
                           rng.next_below(static_cast<std::uint64_t>(tile)));
    auto g = workload::make_mix_guest<1>({n}, T, m, rng.next());
    auto ref = sim::reference_run<1>(g);
    sim::DcConfig cfg;
    cfg.tile_width = tile;
    cfg.leaf_width = leaf;
    auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m), cfg);
    EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values))
        << "n=" << n << " m=" << m << " T=" << T << " tile=" << tile
        << " leaf=" << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcFuzz, ::testing::Range(0, 10));
