// The engine-backed advisor calibration.
//
// analytic::Calibration is a pure model: it fits the three mechanism
// constants from measured slowdowns but never runs a simulator. This
// header is the canonical way to *produce* those measurements: the
// training grid goes through engine::Sweep on the caller's Pool, with
// guests and reference runs memoized in the PlanCache — the same
// deterministic harness that produces the E-tables — so the
// measured-constant table is a pure function of the grid, byte-
// identical at any thread count (pinned by `ctest -L conformance`).
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/advisor.hpp"
#include "tables/emitters.hpp"

namespace bsmp::tables {

/// One calibration training point: simulate Md(n,n,m) on Md(n,p,m)
/// with the Theorem-4 scheme at strip width feasible_s_star(n,m,p).
struct CalibrationPoint {
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::int64_t p = 0;
};

/// The default training grid: an n sweep at (m=4, p=4) plus m
/// variations at n=128 — enough spread for the three mechanism columns
/// to be well-conditioned, small enough to run inside the conformance
/// suite.
std::vector<CalibrationPoint> default_calibration_grid();

/// Measured slowdowns for `pts`, one engine sweep point per grid
/// point: each builds (or shares) its guest and reference run through
/// ctx.plans, runs the Theorem-4 simulator at the model's strip width,
/// verifies the simulated values against the reference, and returns
/// the measured slowdown. Order matches `pts`.
std::vector<double> measure_calibration_points(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts);

/// measure_calibration_points on `pts` fed into a fitted
/// analytic::Calibration (requires pts.size() >= 3).
analytic::Calibration run_calibration(EngineCtx& ctx,
                                      const std::vector<CalibrationPoint>& pts);

/// One grid point's measured slowdown with its per-mechanism
/// decomposition: the simulator's virtual-time cost ledger splits the
/// charged time into relocation (kBlockMove), execution (kCompute +
/// kLocalAccess) and communication (kComm) — kRearrange preprocessing
/// is amortized out, as in SimResult::slowdown() — and each mechanism
/// gets its proportional share of the measured slowdown. Deterministic
/// (ledger, not wall clock), so the CAL-d/CAL-e tables built from it
/// hold under `ctest -L conformance`.
struct CalibrationMeasurement {
  double slowdown = 0;
  double slow_reloc = 0;
  double slow_exec = 0;
  double slow_comm = 0;
};

/// Measured slowdown + mechanism decomposition for `pts` through the
/// same sweep harness as measure_calibration_points (identical
/// slowdown values; one simulation per point covers both).
std::vector<CalibrationMeasurement> measure_calibration_breakdown(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts);

/// measure_calibration_breakdown on `pts` fed into a fitted
/// analytic::MechanismCalibration: the per-mechanism, per-range
/// alternative to run_calibration (requires pts.size() >= 1).
analytic::MechanismCalibration run_mechanism_calibration(
    EngineCtx& ctx, const std::vector<CalibrationPoint>& pts);

}  // namespace bsmp::tables
