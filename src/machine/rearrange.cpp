#include "machine/rearrange.hpp"

#include "core/expect.hpp"

namespace bsmp::machine {

namespace {
void check(std::int64_t q, std::int64_t p) {
  BSMP_REQUIRE(p >= 1 && q >= p);
  BSMP_REQUIRE_MSG(q % p == 0, "q must be a multiple of p");
}
}  // namespace

std::vector<std::int64_t> pi1(std::int64_t q, std::int64_t p) {
  check(q, p);
  std::vector<std::int64_t> pos(static_cast<std::size_t>(q));
  for (std::int64_t g = 0; g < q; ++g) {
    std::int64_t seg = g / p;
    std::int64_t off = g % p;
    pos[g] = (seg % 2 == 0) ? g : seg * p + (p - 1 - off);
  }
  return pos;
}

std::vector<std::int64_t> pi2(std::int64_t q, std::int64_t p) {
  check(q, p);
  const std::int64_t qp = q / p;
  std::vector<std::int64_t> pos(static_cast<std::size_t>(q));
  for (std::int64_t i = 0; i < q; ++i) {
    std::int64_t a = i / p;  // segment of pi1(I)
    std::int64_t b = i % p;  // offset inside it
    pos[i] = b * qp + a;
  }
  return pos;
}

std::vector<std::int64_t> rearrangement(std::int64_t q, std::int64_t p) {
  auto p1 = pi1(q, p);
  auto p2 = pi2(q, p);
  std::vector<std::int64_t> pos(static_cast<std::size_t>(q));
  for (std::int64_t g = 0; g < q; ++g) pos[g] = p2[p1[g]];
  return pos;
}

}  // namespace bsmp::machine
