# Empty dependencies file for bsmp_sim_cli.
# This may be replaced when dependencies are built.
