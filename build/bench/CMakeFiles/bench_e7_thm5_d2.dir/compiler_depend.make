# Empty compiler generated dependencies file for bench_e7_thm5_d2.
# This may be replaced when dependencies are built.
