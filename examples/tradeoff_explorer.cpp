// Interactive-ish explorer for the closed-form tradeoff: prints the
// locality slowdown A(n,m,p), the full bound, the range and the
// optimal strip width s* over user-selected parameter grids. The grid
// is evaluated through the sweep engine (rows merge in point order, so
// the output is identical at any thread count).
//
//   $ ./tradeoff_explorer [d] [n] [p_max] [threads]
// Defaults: d=1, n=65536, p_max=256, threads=hardware.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analytic/tradeoff.hpp"
#include "core/table.hpp"
#include "engine/pool.hpp"
#include "engine/sweep.hpp"

using namespace bsmp;

int main(int argc, char** argv) {
  int d = argc > 1 ? std::atoi(argv[1]) : 1;
  double n = argc > 2 ? std::atof(argv[2]) : 65536.0;
  double p_max = argc > 3 ? std::atof(argv[3]) : 256.0;
  int threads = argc > 4 ? std::atoi(argv[4]) : 0;
  if (d < 1 || d > 3 || n < 1 || p_max < 1) {
    std::cerr << "usage: tradeoff_explorer [d=1|2|3] [n] [p_max] [threads]\n";
    return 2;
  }

  std::vector<std::pair<double, double>> grid;  // (m, p)
  for (double m = 1; m <= 2 * std::pow(n, 1.0 / d); m *= 8)
    for (double p = 1; p <= p_max; p *= 16)
      if (p <= n) grid.emplace_back(m, p);

  engine::Pool pool(threads);
  auto rows = engine::sweep_map<std::vector<core::Cell>>(
      pool, grid, [&](const std::pair<double, double>& mp, engine::SweepContext&) {
        auto [m, p] = mp;
        double A = analytic::locality_A(d, n, m, p);
        double sd = analytic::slowdown_bound(d, n, m, p);
        // Speedup of the n-processor machine over the p-processor one.
        double speedup = sd;
        double sstar = d == 1 ? analytic::s_star(n, m, p) : 0.0;
        return std::vector<core::Cell>{
            (long long)m, (long long)p,
            std::string(
                analytic::to_string(analytic::classify_range(d, n, m, p))),
            A, sd, speedup, sstar};
      });

  core::Table table("processor-time tradeoff (Theorem 1), d=" +
                        std::to_string(d) + ", n=" +
                        std::to_string((long long)n),
                    {"m", "p", "range", "A(n,m,p)", "slowdown (n/p)A",
                     "speedup n vs p", "s* (d=1)"});
  for (auto& r : rows) table.add_row(std::move(r));
  table.print(std::cout);

  std::cout << "\nReading the table: 'slowdown' bounds Tp/Tn when p\n"
               "processors simulate the n-processor machine; equivalently\n"
               "the n-processor machine can be up to that factor faster —\n"
               "more than n/p whenever A > 1 (superlinear speedup).\n";
  return 0;
}
