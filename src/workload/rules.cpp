#include "workload/rules.hpp"

#include <algorithm>

#include "core/logmath.hpp"

namespace bsmp::workload {

namespace detail {

namespace {

// Loop bodies the compiler auto-vectorizes per clone ISA. All 64-bit
// integer arithmetic: the x86-64-v4 clone uses vpmullq for the mix64
// multiply chains, AVX2 synthesizes the products from 32-bit halves,
// and the default clone is plain scalar code — all bit-identical.
using sep::Word;

constexpr Word kNbrSalt = 0x2545f4914f6cdd1dULL;
constexpr Word kTimeSalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

BSMP_SIMD_CLONES
void mix_row_d1(Word* out, const Word* self, const Word* const* nbrs,
                std::size_t n, geom::Point<1> p0, std::int64_t xstride) {
  const Word tbase = static_cast<Word>(p0.t) * kTimeSalt;
  const Word* lo = nbrs[0];
  const Word* hi = nbrs[1];
  for (std::size_t i = 0; i < n; ++i) {
    const Word x = static_cast<Word>(
        p0.x[0] + xstride * static_cast<std::int64_t>(i));
    Word h = mix64(self[i] ^ mix64(tbase ^ x));
    h = mix64(h + lo[i] * kNbrSalt);
    h = mix64(h + hi[i] * kNbrSalt);
    out[i] = h;
  }
}

BSMP_SIMD_CLONES
void mix_row_d2(Word* out, const Word* self, const Word* const* nbrs,
                std::size_t n, geom::Point<2> p0, std::int64_t xstride) {
  // x[0] is constant along the row, so its tag contribution hoists.
  const Word base = mix64(static_cast<Word>(p0.t) * kTimeSalt ^
                          static_cast<Word>(p0.x[0]));
  const Word* n0 = nbrs[0];
  const Word* n1 = nbrs[1];
  const Word* n2 = nbrs[2];
  const Word* n3 = nbrs[3];
  for (std::size_t i = 0; i < n; ++i) {
    const Word x1 = static_cast<Word>(
        p0.x[1] + xstride * static_cast<std::int64_t>(i));
    Word h = mix64(self[i] ^ mix64(base ^ x1));
    h = mix64(h + n0[i] * kNbrSalt);
    h = mix64(h + n1[i] * kNbrSalt);
    h = mix64(h + n2[i] * kNbrSalt);
    h = mix64(h + n3[i] * kNbrSalt);
    out[i] = h;
  }
}

BSMP_SIMD_CLONES
void xor_row_d1(Word* out, const Word* self, const Word* const* nbrs,
                std::size_t n) {
  const Word* lo = nbrs[0];
  const Word* hi = nbrs[1];
  for (std::size_t i = 0; i < n; ++i) out[i] = self[i] ^ lo[i] ^ hi[i];
}

BSMP_SIMD_CLONES
void xor_row_d2(Word* out, const Word* self, const Word* const* nbrs,
                std::size_t n) {
  const Word* n0 = nbrs[0];
  const Word* n1 = nbrs[1];
  const Word* n2 = nbrs[2];
  const Word* n3 = nbrs[3];
  for (std::size_t i = 0; i < n; ++i)
    out[i] = self[i] ^ n0[i] ^ n1[i] ^ n2[i] ^ n3[i];
}

BSMP_SIMD_CLONES
void rule110_row(Word* out, const Word* self, const Word* const* nbrs,
                 std::size_t n) {
  const Word* lo = nbrs[0];
  const Word* hi = nbrs[1];
  for (std::size_t i = 0; i < n; ++i) {
    // Bitwise form of the 01101110 truth table, masked to the LSB; see
    // Rule110LanesKernel for the per-bit identity.
    const Word l = lo[i], m = self[i], r = hi[i];
    out[i] = ((m | r) & ~(l & m & r)) & 1;
  }
}

BSMP_SIMD_CLONES
void rule110_lanes_row(Word* out, const Word* self, const Word* const* nbrs,
                       std::size_t n) {
  const Word* lo = nbrs[0];
  const Word* hi = nbrs[1];
  for (std::size_t i = 0; i < n; ++i) {
    const Word l = lo[i], m = self[i], r = hi[i];
    out[i] = (m | r) & ~(l & m & r);
  }
}

}  // namespace detail

using detail::mix64;

template <int D>
sep::Rule<D> mix_rule() {
  return MixKernel<D>{};
}

template <int D>
sep::Rule<D> parity_rule() {
  return [](const geom::Point<D>&, sep::Word self,
            const sep::NeighborWords<D>& nbrs) -> sep::Word {
    sep::Word h = self;
    for (int k = 0; k < geom::kMono<D>; ++k)
      h ^= (nbrs[k] << ((k + 1) % 8)) | (nbrs[k] >> (64 - ((k + 1) % 8 + 1)));
    return h;
  };
}

sep::Rule<1> rule110() { return Rule110Kernel{}; }

sep::Rule<1> rule110_lanes() { return Rule110LanesKernel{}; }

template <int D>
sep::Rule<D> xor_rule() {
  return XorKernel<D>{};
}

template <int D>
sep::Rule<D> diffusion_rule() {
  return [](const geom::Point<D>&, sep::Word self,
            const sep::NeighborWords<D>& nbrs) -> sep::Word {
    // Average of self and neighbors, in a bounded value range so that
    // the computation does not degenerate to a constant.
    sep::Word sum = self;
    int count = 1;
    for (int k = 0; k < geom::kMono<D>; ++k) {
      sum += nbrs[k];
      ++count;
    }
    return sum / static_cast<sep::Word>(count) + 1;
  };
}

sep::Rule<1> sort_rule(int64_t n) {
  return [n](const geom::Point<1>& p, sep::Word self,
             const sep::NeighborWords<1>& nbrs) -> sep::Word {
    // Step t compares positions (i, i+1) for i ≡ t (mod 2). A node is
    // the left member of its pair when its parity matches the step's;
    // a node with no partner inside the array keeps its value.
    bool left_member = ((p.x[0] ^ p.t) & 1) == 0;
    if (left_member) {
      if (p.x[0] + 1 >= n) return self;
      return std::min(self, nbrs[1]);
    }
    if (p.x[0] == 0) return self;
    return std::max(self, nbrs[0]);
  };
}

template <int D>
sep::Rule<D> max_rule() {
  return [](const geom::Point<D>&, sep::Word self,
            const sep::NeighborWords<D>& nbrs) -> sep::Word {
    sep::Word v = self;
    for (int k = 0; k < geom::kMono<D>; ++k) v = std::max(v, nbrs[k]);
    return v;  // absent neighbors contribute 0, the identity of max
  };
}

int64_t shearsort_phases(int64_t side) {
  BSMP_REQUIRE(side >= 1);
  return 2 * core::ilog2_ceil(static_cast<std::uint64_t>(
             side < 2 ? 2 : side)) +
         3;  // odd: the final phase is a row phase
}

int64_t snake_rank(int64_t side, int64_t row, int64_t col) {
  return row * side + (row % 2 == 0 ? col : side - 1 - col);
}

sep::Rule<2> shearsort_rule(int64_t side) {
  return [side](const geom::Point<2>& p, sep::Word self,
                const sep::NeighborWords<2>& nbrs) -> sep::Word {
    // Dimension 0 is the row index, dimension 1 the column index.
    // nbrs: [0]=row-1, [1]=row+1, [2]=col-1, [3]=col+1.
    const int64_t row = p.x[0], col = p.x[1];
    const int64_t phase = (p.t - 1) / side;
    const int64_t step = (p.t - 1) % side;
    if (phase % 2 == 0) {
      // Row phase: odd-even transposition along the row; even rows
      // ascend, odd rows descend (snake order).
      bool left = ((col ^ step) & 1) == 0;
      bool ascending = (row % 2 == 0);
      if (left) {
        if (col + 1 >= side) return self;
        sep::Word partner = nbrs[3];
        return ascending ? std::min(self, partner)
                         : std::max(self, partner);
      }
      if (col == 0) return self;
      sep::Word partner = nbrs[2];
      return ascending ? std::max(self, partner) : std::min(self, partner);
    }
    // Column phase: ascending odd-even transposition along the column.
    bool upper = ((row ^ step) & 1) == 0;
    if (upper) {
      if (row + 1 >= side) return self;
      return std::min(self, nbrs[1]);
    }
    if (row == 0) return self;
    return std::max(self, nbrs[0]);
  };
}

template <int D>
sep::InputFn<D> random_input(std::uint64_t seed) {
  return [seed](const std::array<int64_t, D>& x, int64_t cell) -> sep::Word {
    sep::Word h = seed;
    for (int i = 0; i < D; ++i)
      h = mix64(h ^ static_cast<sep::Word>(x[i] + 0x1234));
    return mix64(h ^ static_cast<sep::Word>(cell));
  };
}

template <int D>
sep::InputFn<D> point_input(sep::Word value) {
  return [value](const std::array<int64_t, D>& x, int64_t cell) -> sep::Word {
    for (int i = 0; i < D; ++i)
      if (x[i] != 0) return 0;
    return cell == 0 ? value : 0;
  };
}

template <int D>
sep::Guest<D> make_mix_guest(std::array<int64_t, D> extent, int64_t horizon,
                             int64_t m, std::uint64_t seed) {
  sep::Guest<D> g;
  g.stencil.extent = extent;
  g.stencil.horizon = horizon;
  g.stencil.m = m;
  g.rule = mix_rule<D>();
  g.input = random_input<D>(seed);
  return g;
}

// Explicit instantiations.
template sep::Rule<1> mix_rule<1>();
template sep::Rule<2> mix_rule<2>();
template sep::Rule<3> mix_rule<3>();
template sep::Rule<1> max_rule<1>();
template sep::Rule<2> max_rule<2>();
template sep::Rule<3> max_rule<3>();
template sep::Rule<1> parity_rule<1>();
template sep::Rule<2> parity_rule<2>();
template sep::Rule<3> parity_rule<3>();
template sep::Rule<1> xor_rule<1>();
template sep::Rule<2> xor_rule<2>();
template sep::Rule<3> xor_rule<3>();
template sep::Rule<1> diffusion_rule<1>();
template sep::Rule<2> diffusion_rule<2>();
template sep::Rule<3> diffusion_rule<3>();
template sep::InputFn<1> random_input<1>(std::uint64_t);
template sep::InputFn<2> random_input<2>(std::uint64_t);
template sep::InputFn<3> random_input<3>(std::uint64_t);
template sep::InputFn<1> point_input<1>(sep::Word);
template sep::InputFn<2> point_input<2>(sep::Word);
template sep::InputFn<3> point_input<3>(sep::Word);
template sep::Guest<1> make_mix_guest<1>(std::array<int64_t, 1>, int64_t,
                                         int64_t, std::uint64_t);
template sep::Guest<2> make_mix_guest<2>(std::array<int64_t, 2>, int64_t,
                                         int64_t, std::uint64_t);
template sep::Guest<3> make_mix_guest<3>(std::array<int64_t, 3>, int64_t,
                                         int64_t, std::uint64_t);

}  // namespace bsmp::workload
