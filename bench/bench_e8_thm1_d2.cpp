// E8 — Theorem 1 at d=2: the multiprocessor mesh simulation. The paper
// states the bound and defers the construction to its companion
// report [BP95a]; we run the d=2 analogue of the Section-4.2 scheme.
// Tables come from tables::e8_tables via the engine harness.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void BM_multiproc_d2(benchmark::State& state) {
  std::int64_t side = 16;
  auto g = workload::make_mix_guest<2>({side, side}, side, 2, 11);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_multiproc<2>(g, spec(2, side * side, 4, 2), cfg));
}
BENCHMARK(BM_multiproc_d2);

}  // namespace

BSMP_BENCH_MAIN("e8")
