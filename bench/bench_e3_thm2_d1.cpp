// E3 — Theorem 2: M1(n,1,1) simulates a Tn-step M1(n,n,1) with
// slowdown O(n log n) via the diamond topological separator. The table
// sweeps n geometrically; measured/(n loḡ n) must be flat, and the
// divide-and-conquer scheme must beat the naive Θ(n^2) by a growing
// factor.
#include "bench_common.hpp"
#include "core/logmath.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  core::Table t("E3: Theorem 2 — D&C uniprocessor, d=1, m=1",
                {"n", "T1/Tn (D&C)", "n*logn bound", "ratio",
                 "naive T1/Tn", "D&C gain"});
  for (std::int64_t n : {32, 64, 128, 256, 512}) {
    auto g = workload::make_mix_guest<1>({n}, n, 1, 4);
    auto ref = sim::reference_run<1>(g);
    auto dc = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1));
    bench::require_equivalent<1>(dc, ref, "dc d=1");
    auto nv = sim::simulate_naive<1>(g, spec(1, n, 1, 1));
    double bound = analytic::thm2_bound((double)n);
    t.add_row({(long long)n, dc.slowdown(), bound, dc.slowdown() / bound,
               nv.slowdown(), nv.slowdown() / dc.slowdown()});
  }
  t.print(std::cout);
  std::cout << "# Expected: 'ratio' flat (slowdown Θ(n log n)); 'D&C gain'\n"
               "# grows like n/log n — locality recovered from spatial\n"
               "# structure, paying only a log factor.\n\n";
}

void BM_dc_thm2(benchmark::State& state) {
  std::int64_t n = state.range(0);
  auto g = workload::make_mix_guest<1>({n}, n, 1, 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1)));
}
BENCHMARK(BM_dc_thm2)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BSMP_BENCH_MAIN(emit)
