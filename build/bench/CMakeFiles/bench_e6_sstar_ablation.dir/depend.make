# Empty dependencies file for bench_e6_sstar_ablation.
# This may be replaced when dependencies are built.
