// Reproduces the paper's decomposition geometry:
//  * the 4-way diamond split used by Theorem 2;
//  * Figure 3(a): the octahedron splits into 14 subdomains — 6
//    octahedra and 8 tetrahedra;
//  * Figure 3(b): the tetrahedron splits into 5 subdomains — 1
//    octahedron and 4 tetrahedra;
//  * Figure 1: the 5-piece ordered partition of the d=1 volume V;
// and verifies all of them against Definition 4 (topological
// partition) and Definition 5 (convexity) by brute force.
#include <gtest/gtest.h>

#include "dag/explicit_dag.hpp"
#include "geom/figures.hpp"
#include "geom/region.hpp"

using namespace bsmp;
using geom::DomainClass;
using geom::Region;
using geom::Stencil;

namespace {

template <int D>
dag::PointSet<D> to_set(const Region<D>& r) {
  dag::PointSet<D> s;
  for (const auto& p : r.points()) s.insert(p);
  return s;
}

template <int D>
void expect_topological_partition(const Stencil<D>& st, const Region<D>& u,
                                  const std::vector<Region<D>>& parts) {
  dag::ExplicitDag<D> g(st);
  std::vector<dag::PointSet<D>> psets;
  for (const auto& part : parts) psets.push_back(to_set(part));
  EXPECT_TRUE(g.is_topological_partition(to_set(u), psets));
}

}  // namespace

TEST(DiamondSplit, FourChildrenOfQuarterSize) {
  Stencil<1> st{{64}, 64, 1};
  Region<1> d = geom::make_diamond(&st, 24, -16, 32);
  auto kids = d.split();
  ASSERT_EQ(kids.size(), 4u);
  for (const auto& k : kids) {
    EXPECT_LE(k.count(), d.count() / 4 + 32);  // |Ui| <= delta |U|, delta=1/4
    EXPECT_EQ(k.width(), 16);
  }
  // Child sizes sum to the parent.
  int64_t total = 0;
  for (const auto& k : kids) total += k.count();
  EXPECT_EQ(total, d.count());
}

TEST(DiamondSplit, IsTopologicalPartition) {
  for (int64_t m : {1, 2}) {
    Stencil<1> st{{16}, 16, m};
    Region<1> d = geom::make_diamond(&st, 4, -4, 8);
    ASSERT_FALSE(d.empty());
    expect_topological_partition(st, d, d.split());
  }
}

TEST(DiamondSplit, ChildrenAreConvex) {
  Stencil<1> st{{12}, 12, 1};
  Region<1> d = geom::make_diamond(&st, 2, -4, 8);
  dag::ExplicitDag<1> g(st);
  EXPECT_TRUE(g.is_convex(to_set(d)));
  for (const auto& k : d.split()) EXPECT_TRUE(g.is_convex(to_set(k)));
}

TEST(Fig3a, OctahedronSplitsInto14) {
  // P splits into 14 subdomains: 6 octahedra + 8 tetrahedra, with
  // |P(r/2)| = |P(r)|/8 and |W(r/2)| = |P(r)|/32 (Figure 3a).
  Stencil<2> st{{32, 32}, 32, 1};
  Region<2> p = geom::make_octahedron(&st, 8, -8, 8, -8, 16);
  ASSERT_FALSE(p.empty());
  auto kids = p.split();
  EXPECT_EQ(kids.size(), 14u);
  int octa = 0, tetra = 0;
  for (const auto& k : kids) {
    switch (geom::classify_d2(k)) {
      case DomainClass::kOctahedron: ++octa; break;
      case DomainClass::kTetrahedron: ++tetra; break;
      case DomainClass::kOther: FAIL() << "unexpected child class";
    }
  }
  EXPECT_EQ(octa, 6);
  EXPECT_EQ(tetra, 8);
  // Size ratios (up to lattice rounding).
  double P = static_cast<double>(p.count());
  for (const auto& k : kids) {
    double c = static_cast<double>(k.count());
    if (geom::classify_d2(k) == DomainClass::kOctahedron)
      EXPECT_NEAR(c / P, 1.0 / 8.0, 0.07);
    else
      EXPECT_NEAR(c / P, 1.0 / 32.0, 0.05);
  }
}

TEST(Fig3a, OctahedronSplitIsTopologicalPartition) {
  Stencil<2> st{{16, 16}, 16, 1};
  Region<2> p = geom::make_octahedron(&st, 4, -4, 4, -4, 8);
  ASSERT_FALSE(p.empty());
  expect_topological_partition(st, p, p.split());
}

TEST(Fig3b, TetrahedronSplitsInto5) {
  // W splits into 5 subdomains: 1 octahedron + 4 tetrahedra, with
  // |P(r/2)| = |W(r)|/2 and |W(r/2)| = |W(r)|/8 (Figure 3b).
  Stencil<2> st{{32, 32}, 32, 1};
  Region<2> w = geom::make_tetrahedron(&st, 16, -8, 8, -16, 16);
  ASSERT_FALSE(w.empty());
  auto kids = w.split();
  EXPECT_EQ(kids.size(), 5u);
  int octa = 0, tetra = 0;
  for (const auto& k : kids) {
    switch (geom::classify_d2(k)) {
      case DomainClass::kOctahedron: ++octa; break;
      case DomainClass::kTetrahedron: ++tetra; break;
      case DomainClass::kOther: FAIL() << "unexpected child class";
    }
  }
  EXPECT_EQ(octa, 1);
  EXPECT_EQ(tetra, 4);
  double W = static_cast<double>(w.count());
  for (const auto& k : kids) {
    double c = static_cast<double>(k.count());
    if (geom::classify_d2(k) == DomainClass::kOctahedron)
      EXPECT_NEAR(c / W, 1.0 / 2.0, 0.1);
    else
      EXPECT_NEAR(c / W, 1.0 / 8.0, 0.08);
  }
}

TEST(Fig3b, TetrahedronSplitIsTopologicalPartition) {
  Stencil<2> st{{16, 16}, 16, 1};
  Region<2> w = geom::make_tetrahedron(&st, 8, -4, 4, -8, 8);
  ASSERT_FALSE(w.empty());
  expect_topological_partition(st, w, w.split());
}

TEST(Fig3, SeparatorSizeMatchesPaper) {
  // Γin(P(sqrt(r))) ~ 2 * 3^(1/3) |P|^(2/3); we check the exponent by
  // doubling r and expecting the preboundary to grow ~4x.
  Stencil<2> st{{64, 64}, 64, 1};
  Region<2> p1 = geom::make_octahedron(&st, 16, -16, 16, -16, 8);
  Region<2> p2 = geom::make_octahedron(&st, 16, -16, 16, -16, 16);
  double g1 = static_cast<double>(p1.preboundary().size());
  double g2 = static_cast<double>(p2.preboundary().size());
  EXPECT_GT(g2 / g1, 2.5);
  EXPECT_LT(g2 / g1, 5.5);
}

TEST(Fig1, FivePieceOrderedPartitionOfV) {
  Stencil<1> st{{12}, 12, 1};
  auto parts = geom::fig1_partition(&st);
  ASSERT_EQ(parts.size(), 5u);
  // Pieces are disjoint, cover V, and form a topological partition.
  dag::ExplicitDag<1> g(st);
  dag::PointSet<1> v;
  g.for_each_vertex([&](const geom::Point<1>& p) { v.insert(p); });
  std::vector<dag::PointSet<1>> psets;
  std::size_t total = 0;
  for (const auto& part : parts) {
    psets.push_back(to_set(part));
    total += psets.back().size();
  }
  EXPECT_EQ(total, v.size());
  EXPECT_TRUE(g.is_topological_partition(v, psets));
}

TEST(Fig1, CentralPieceIsTheFullDiamond) {
  Stencil<1> st{{16}, 16, 1};
  auto parts = geom::fig1_partition(&st);
  // U3 is a full (unclipped) D(n): its count is ~n^2/2, the largest.
  int64_t central = parts[2].count();
  for (std::size_t i = 0; i < parts.size(); ++i)
    EXPECT_LE(parts[i].count(), central) << i;
  EXPECT_NEAR(static_cast<double>(central), 16.0 * 16.0 / 2.0, 17.0);
}

TEST(Fig1, RequiresMatchingStencil) {
  Stencil<1> bad{{12}, 10, 1};
  EXPECT_THROW(geom::fig1_partition(&bad), bsmp::precondition_error);
}

TEST(Split3D, SectionSixConjectureDomainsSplitTopologically) {
  // The d=3 analogue (Section 6 open question): six monotone
  // coordinates; the box split is still a topological partition.
  Stencil<3> st{{6, 6, 6}, 6, 1};
  Region<3> r(&st, {1, -3, 1, -3, 1, -3}, {7, 3, 7, 3, 7, 3});
  ASSERT_FALSE(r.empty());
  expect_topological_partition(st, r, r.split());
}

TEST(SplitOrder, ChildrenSortedByUpperHalves) {
  Stencil<1> st{{16}, 16, 1};
  Region<1> d = geom::make_diamond(&st, 4, -4, 8);
  auto kids = d.split();
  ASSERT_EQ(kids.size(), 4u);
  // First child holds the bottom vertex, last the top vertex.
  auto bottom = d.first_point();
  ASSERT_TRUE(bottom.has_value());
  EXPECT_TRUE(kids[0].contains(*bottom));
}

TEST(Split3D, OctahedronAnalogSplitsInto46) {
  // Section 6 leaves open "the development of a suitable topological
  // separator for four-dimensional domains". In monotone coordinates
  // the d=3 analogue of the octahedron is a 6-interval box with equal
  // sum ranges; splitting it at midpoints gives 2^6 = 64 candidate
  // children of which exactly 46 are non-empty: the three half-sums
  // (one per spatial dimension) must be pairwise within one of each
  // other — sum over feasible triples of multiplicities (1,2,1)^3 =
  // 27 + 27 - 8. Ten children have all three sums equal (the
  // octahedron-analogues, sizes |U|/16 and |U|/16/...), the remaining
  // 36 are the d=3 tetrahedron-analogues.
  geom::Stencil<3> st{{16, 16, 16}, 16, 1};
  Region<3> p(&st, {4, -4, 4, -4, 4, -4}, {12, 4, 12, 4, 12, 4});
  ASSERT_FALSE(p.empty());
  auto kids = p.split();
  EXPECT_EQ(kids.size(), 46u);
  // Classify by the offsets of the three sum ranges.
  int all_equal = 0;
  for (const auto& k : kids) {
    int64_t s0 = k.lo()[0] + k.lo()[1];
    int64_t s1 = k.lo()[2] + k.lo()[3];
    int64_t s2 = k.lo()[4] + k.lo()[5];
    if (s0 == s1 && s1 == s2) ++all_equal;
  }
  EXPECT_EQ(all_equal, 10);
  // And the split is a topological partition (checked exhaustively at
  // this size elsewhere; here check sizes cover the parent).
  int64_t total = 0;
  for (const auto& k : kids) total += k.count();
  EXPECT_EQ(total, p.count());
}

TEST(Split3D, D3SplitIsTopologicalPartition) {
  geom::Stencil<3> st{{8, 8, 8}, 8, 1};
  Region<3> p(&st, {2, -2, 2, -2, 2, -2}, {6, 2, 6, 2, 6, 2});
  ASSERT_FALSE(p.empty());
  expect_topological_partition(st, p, p.split());
}
