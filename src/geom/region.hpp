// Region<D>: a convex lattice domain given as an axis-aligned box in
// monotone coordinates, intersected with the vertex set of a Stencil.
//
// This single type realizes all the domain families of the paper:
//   d=1: D(r) diamonds and their truncated versions (Fig. 1) are boxes
//        in (t+x, t-x);
//   d=2: octahedra P and tetrahedra W (Fig. 3) are boxes in
//        (t+x, t-x, t+y, t-y) — a box whose four intervals have equal
//        sums is an octahedron; half-overlapping sums give tetrahedra;
//   d=3: the analogous six-coordinate boxes (Section-6 conjecture).
//
// Because every dag arc is non-increasing in every monotone coordinate,
// the midpoint split() of a Region, ordered by how many upper halves a
// child occupies, is a topological partition in the sense of
// Definition 4 — reproducing the paper's 4-way diamond split, the
// 14-piece octahedron split and the 5-piece tetrahedron split exactly.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "geom/lattice.hpp"

namespace bsmp::geom {

template <int D>
class Region {
 public:
  static constexpr int K = kMono<D>;

  /// Box [lo_k, hi_k) in monotone coordinates over `stencil`'s vertex
  /// set. The stencil must outlive the region.
  Region(const Stencil<D>* stencil, std::array<int64_t, K> lo,
         std::array<int64_t, K> hi)
      : stencil_(stencil), lo_(lo), hi_(hi) {
    BSMP_REQUIRE(stencil != nullptr);
    for (int k = 0; k < K; ++k) BSMP_REQUIRE(lo_[k] <= hi_[k]);
  }

  const Stencil<D>& stencil() const { return *stencil_; }
  const std::array<int64_t, K>& lo() const { return lo_; }
  const std::array<int64_t, K>& hi() const { return hi_; }

  /// Largest box side (in monotone units).
  int64_t width() const {
    int64_t w = 0;
    for (int k = 0; k < K; ++k) w = std::max(w, hi_[k] - lo_[k]);
    return w;
  }

  bool in_box(const Point<D>& p) const {
    auto c = mono_coords<D>(p);
    for (int k = 0; k < K; ++k)
      if (c[k] < lo_[k] || c[k] >= hi_[k]) return false;
    return true;
  }

  bool contains(const Point<D>& p) const {
    return stencil_->is_vertex(p) && in_box(p);
  }

  /// Inclusive time range [t_min, t_max] implied by the box and the
  /// stencil horizon; empty ranges have t_min > t_max.
  std::pair<int64_t, int64_t> time_range() const {
    int64_t tmin = 0;
    int64_t tmax = stencil_->horizon - 1;
    for (int i = 0; i < D; ++i) {
      int64_t sum_lo = lo_[2 * i] + lo_[2 * i + 1];
      int64_t sum_hi = (hi_[2 * i] - 1) + (hi_[2 * i + 1] - 1);
      tmin = std::max(tmin, core::div_ceil(sum_lo, 2));
      tmax = std::min(tmax, core::div_floor(sum_hi, 2));
    }
    return {tmin, tmax};
  }

  /// Inclusive spatial range [x_min, x_max] in dimension i at time t.
  std::pair<int64_t, int64_t> x_range(int i, int64_t t) const {
    int64_t xmin = std::max<int64_t>(0, lo_[2 * i] - t);
    int64_t xmax = std::min(stencil_->extent[i] - 1, hi_[2 * i] - 1 - t);
    xmin = std::max(xmin, t - hi_[2 * i + 1] + 1);
    xmax = std::min(xmax, t - lo_[2 * i + 1]);
    return {xmin, xmax};
  }

  /// Number of lattice points in the region (exact).
  int64_t count() const {
    auto [tmin, tmax] = time_range();
    int64_t total = 0;
    for (int64_t t = tmin; t <= tmax; ++t) {
      int64_t rows = 1;
      for (int i = 0; i < D; ++i) {
        auto [a, b] = x_range(i, t);
        if (a > b) {
          rows = 0;
          break;
        }
        rows *= (b - a + 1);
      }
      total += rows;
    }
    return total;
  }

  /// First point in topological (t, then x lexicographic) order, or
  /// nullopt if the region is empty.
  std::optional<Point<D>> first_point() const {
    auto [tmin, tmax] = time_range();
    for (int64_t t = tmin; t <= tmax; ++t) {
      Point<D> p;
      p.t = t;
      bool ok = true;
      for (int i = 0; i < D; ++i) {
        auto [a, b] = x_range(i, t);
        if (a > b) {
          ok = false;
          break;
        }
        p.x[i] = a;
      }
      if (ok) return p;
    }
    return std::nullopt;
  }

  bool empty() const { return !first_point().has_value(); }

  /// Visit every point in topological order: t ascending, then x
  /// lexicographic. Within one time level no point depends on another,
  /// and all dependence arcs point to strictly smaller t, so this order
  /// is a valid execution order.
  template <class F>
  void for_each(F&& visit) const {
    auto [tmin, tmax] = time_range();
    for (int64_t t = tmin; t <= tmax; ++t) for_each_at_time(t, visit);
  }

  /// All points as a vector (small regions / tests only).
  std::vector<Point<D>> points() const {
    std::vector<Point<D>> v;
    for_each([&](const Point<D>& p) { v.push_back(p); });
    return v;
  }

  /// Midpoint split into at most 2^K children, in topological order
  /// (children sorted by the number of upper halves they occupy; equal
  /// counts are mutually independent). Empty children are dropped.
  /// Coordinates with a side of length < 2 are not split.
  std::vector<Region> split() const {
    std::array<int64_t, K> mid;
    std::array<bool, K> splits;
    int nsplit = 0;
    for (int k = 0; k < K; ++k) {
      splits[k] = (hi_[k] - lo_[k]) >= 2;
      mid[k] = lo_[k] + (hi_[k] - lo_[k]) / 2;
      if (splits[k]) ++nsplit;
    }
    BSMP_REQUIRE_MSG(nsplit > 0, "cannot split a region of width 1");

    struct Child {
      Region r;
      int uppers;
    };
    std::vector<Child> kids;
    for (unsigned mask = 0; mask < (1u << K); ++mask) {
      std::array<int64_t, K> clo = lo_, chi = hi_;
      bool valid = true;
      int uppers = 0;
      for (int k = 0; k < K; ++k) {
        bool up = (mask >> k) & 1u;
        if (!splits[k]) {
          if (up) {
            valid = false;  // no upper half for unsplit coordinates
            break;
          }
          continue;
        }
        if (up) {
          clo[k] = mid[k];
          ++uppers;
        } else {
          chi[k] = mid[k];
        }
      }
      if (!valid) continue;
      Region child(stencil_, clo, chi);
      if (child.empty()) continue;
      kids.push_back({std::move(child), uppers});
    }
    std::stable_sort(kids.begin(), kids.end(),
                     [](const Child& a, const Child& b) {
                       return a.uppers < b.uppers;
                     });
    std::vector<Region> out;
    out.reserve(kids.size());
    for (auto& k : kids) out.push_back(std::move(k.r));
    return out;
  }

  /// Visit every point of the preboundary Γin(U): vertices outside U
  /// that are predecessors of some vertex of U (Section 3). Exact,
  /// computed by scanning the lower shell of depth reach() —
  /// O(surface * reach) work, no allocation. Each point is visited
  /// exactly once.
  template <class F>
  void preboundary_visit(F&& visit) const {
    const int64_t R = stencil_->reach();
    std::array<Point<D>, K + 1> succ;
    for (int k = 0; k < K; ++k) {
      // Slab k: coordinate k in [lo_k - R, lo_k); coordinates j < k
      // inside the box (so each shell point appears in exactly one
      // slab); coordinates j > k anywhere a predecessor can be.
      std::array<int64_t, K> slo = lo_, shi = hi_;
      slo[k] = lo_[k] - R;
      shi[k] = lo_[k];
      for (int j = k + 1; j < K; ++j) slo[j] = lo_[j] - R;
      Region slab(stencil_, slo, shi);
      slab.for_each([&](const Point<D>& q) {
        int ns = stencil_->succ_positions(q, succ);
        for (int s = 0; s < ns; ++s) {
          if (contains(succ[s])) {
            visit(q);
            return;
          }
        }
      });
    }
  }

  /// The preboundary as a vector (materializing form of
  /// preboundary_visit).
  std::vector<Point<D>> preboundary() const {
    std::vector<Point<D>> out;
    preboundary_visit([&](const Point<D>& q) { out.push_back(q); });
    return out;
  }

  /// |Γin(U)| without materializing the vector: the same shell scan as
  /// preboundary(), so equality with preboundary().size() is exact
  /// (asserted by the region property tests and by the executor's
  /// validation mode).
  int64_t preboundary_count() const {
    int64_t n = 0;
    preboundary_visit([&](const Point<D>&) { ++n; });
    return n;
  }

  /// O(1) out-set membership: q is in the out-set of U iff q is a
  /// vertex of U and some successor *position* of q is not a vertex of
  /// U (positions past the time horizon are not vertices, so the final
  /// rows of a computation always qualify). Equivalent to scanning
  /// outset() for q — every arc raises each monotone coordinate, so a
  /// point all of whose successors stay in the box is never collected
  /// by the shell scan either.
  bool in_outset(const Point<D>& q) const {
    if (!contains(q)) return false;
    std::array<Point<D>, K + 1> succ;
    int ns = stencil_->succ_positions(q, succ);
    for (int s = 0; s < ns; ++s)
      if (!contains(succ[s])) return true;
    return false;
  }

  /// Visit every point of the out-set: vertices of U with a successor
  /// *position* outside U (including positions past the time horizon).
  /// Each point is visited exactly once, in slab-scan order (the order
  /// outset() returns). No allocation.
  template <class F>
  void outset_visit(F&& visit) const {
    const int64_t R = stencil_->reach();
    std::array<Point<D>, K + 1> succ;
    auto consider = [&](const Point<D>& q) {
      int ns = stencil_->succ_positions(q, succ);
      for (int s = 0; s < ns; ++s) {
        if (!contains(succ[s])) {
          visit(q);
          return;
        }
      }
    };
    // Upper shell slabs (successors that leave the box).
    for (int k = 0; k < K; ++k) {
      std::array<int64_t, K> slo = lo_, shi = hi_;
      slo[k] = std::max(lo_[k], hi_[k] - R);
      for (int j = 0; j < k; ++j) shi[j] = std::max(lo_[j], hi_[j] - R);
      Region slab(stencil_, slo, shi);
      slab.for_each(consider);
    }
    // Horizon rows (successors that leave the computation in time):
    // rows with t >= horizon - m have their self-lane successor past
    // the horizon. Skip points already collected by an upper slab.
    int64_t t_top = stencil_->horizon - stencil_->m;
    auto in_upper_slab = [&](const Point<D>& q) {
      auto c = mono_coords<D>(q);
      for (int k = 0; k < K; ++k)
        if (c[k] >= hi_[k] - R) return true;
      return false;
    };
    auto [tmin, tmax] = time_range();
    for (int64_t t = std::max(tmin, t_top); t <= tmax; ++t) {
      for_each_at_time(t, [&](const Point<D>& q) {
        if (!in_upper_slab(q)) consider(q);
      });
    }
  }

  /// The out-set as a vector (materializing form of outset_visit).
  std::vector<Point<D>> outset() const {
    std::vector<Point<D>> out;
    outset_visit([&](const Point<D>& q) { out.push_back(q); });
    return out;
  }

  /// Out-set size without materializing the vector — same scan as
  /// outset(), so equality with outset().size() is exact.
  int64_t outset_count() const {
    int64_t n = 0;
    outset_visit([&](const Point<D>&) { ++n; });
    return n;
  }

  /// Visit every point of the region at one time level.
  template <class F>
  void for_each_at_time(int64_t t, F&& visit) const {
    if (t < 0 || t >= stencil_->horizon) return;
    Point<D> p;
    p.t = t;
    std::array<std::pair<int64_t, int64_t>, D> r;
    for (int i = 0; i < D; ++i) {
      r[i] = x_range(i, t);
      if (r[i].first > r[i].second) return;
    }
    if constexpr (D == 1) {
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        p.x[0] = x0;
        visit(p);
      }
    } else if constexpr (D == 2) {
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        p.x[0] = x0;
        for (int64_t x1 = r[1].first; x1 <= r[1].second; ++x1) {
          p.x[1] = x1;
          visit(p);
        }
      }
    } else {
      static_assert(D == 3);
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        p.x[0] = x0;
        for (int64_t x1 = r[1].first; x1 <= r[1].second; ++x1) {
          p.x[1] = x1;
          for (int64_t x2 = r[2].first; x2 <= r[2].second; ++x2) {
            p.x[2] = x2;
            visit(p);
          }
        }
      }
    }
  }

 private:
  const Stencil<D>* stencil_;
  std::array<int64_t, K> lo_, hi_;
};

}  // namespace bsmp::geom
