# Empty dependencies file for test_shell_partition.
# This may be replaced when dependencies are built.
