// The concrete executor: Proposition 2 with *literal* memory.
//
// Where Executor<D> charges model costs while holding values in host
// hash maps, ConcreteExecutor runs the same recursion with every value
// physically resident in an HRam at the addresses Proposition 2
// prescribes:
//   * execute(U) owns the address window [0, S(U));
//   * the preboundary of U is parked at [S(U) - |Γin(U)|, S(U));
//   * child i executes in [0, S(Ui)) after its preboundary is copied
//     there from the parent's staging band [S(U) - P(U), S(U));
//   * every read/write goes through HRam::read/write and is charged
//     f(address).
//
// It is deliberately restricted to modest domain sizes (every level
// re-copies its preboundary, and the staging band is searched
// associatively through a per-level index kept outside the cost
// model, standing in for the fixed layout a compiled schedule would
// use). Its purpose is validation: tests check that (a) its values
// equal the guest's, (b) its peak address stays within S(U), and
// (c) its charged time agrees with the abstract executor within a
// constant factor — grounding the abstract charges in a memory layout
// that actually exists.
//
// ConcreteExecutor stays Word-valued: the HRam is Word-addressed, so
// per-vertex values *are* machine words here. Batched guests still
// apply — a bit-sliced guest (sep/guest.hpp: 64 one-bit scenarios in
// the bits of each Word) runs through this executor unchanged, with
// all 64 lanes resident in the same physical words at the same
// addresses and the same charged accesses.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/cost.hpp"
#include "core/expect.hpp"
#include "geom/region.hpp"
#include "hram/hram.hpp"
#include "sep/bounds.hpp"
#include "sep/guest.hpp"

namespace bsmp::sep {

template <int D>
class ConcreteExecutor {
 public:
  /// `ram` must be large enough for space_bound(U.width()) of the
  /// outermost call. `leaf_width` as in Executor.
  /// The default space_const is larger than the abstract executor's:
  /// the concrete staging band never reclaims consumed values within
  /// one call, exactly like Prop. 2's S(U) = max_i S(Ui) + P(U)
  /// recurrence, which needs σ0 ~ 8 for the d=1 diamond.
  ConcreteExecutor(const Guest<D>* guest, hram::HRam* ram,
                   std::int64_t leaf_width, double space_const = 10.0,
                   double leaf_space_const = 3.0)
      : guest_(guest),
        ram_(ram),
        leaf_width_(leaf_width),
        space_const_(space_const),
        leaf_space_const_(leaf_space_const) {
    BSMP_REQUIRE(guest != nullptr && ram != nullptr);
    guest_->validate();
    BSMP_REQUIRE(leaf_width >= 1);
  }

  std::size_t space_bound(std::int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<std::int64_t>(guest_->stencil.reach(), width));
    double s = space_const_ * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return static_cast<std::size_t>(s) + 8;
  }

  std::size_t leaf_space_bound(std::int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<std::int64_t>(guest_->stencil.reach(), width));
    double s = leaf_space_const_ * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return static_cast<std::size_t>(s) + 8;
  }

  /// Execute U. `pre` maps each preboundary point of U to the HRam
  /// address holding its value (all addresses < S(U)). On return the
  /// out-set of U is stored in [S(U) - |out|, S(U)) and the returned
  /// map gives each out-point's address. The recursion only ever
  /// touches [0, S(U)).
  std::unordered_map<geom::Point<D>, std::size_t, geom::PointHash<D>>
  execute(const geom::Region<D>& U,
          const std::unordered_map<geom::Point<D>, std::size_t,
                                   geom::PointHash<D>>& pre) {
    using AddrMap =
        std::unordered_map<geom::Point<D>, std::size_t, geom::PointHash<D>>;
    const std::size_t S = U.width() <= leaf_width_
                              ? leaf_space_bound(U.width())
                              : space_bound(U.width());
    BSMP_REQUIRE_MSG(S <= ram_->size(),
                     "H-RAM too small: need " << S << " words");

    if (U.width() <= leaf_width_) return execute_leaf(U, pre, S);

    // Staging band at the top of this window: the caller parked the
    // preboundary of U in [S - |Γin(U)|, S); the out-sets of completed
    // children are appended below it, growing downward.
    AddrMap staged = pre;  // point -> address (all < S)
    std::size_t band_top = S - pre.size();
    for (const auto& [pt, addr] : pre) {
      BSMP_ASSERT_MSG(addr >= band_top && addr < S,
                      "preboundary must be parked at the window top "
                      "(Prop. 2 layout)");
      (void)pt;
    }

    std::vector<geom::Region<D>> children = U.split();
    AddrMap out_addrs;
    std::vector<geom::Point<D>> out = U.outset();
    AddrMap out_filter;
    for (const auto& q : out) out_filter.emplace(q, 0);

    for (const geom::Region<D>& child : children) {
      // Step 1 (Prop. 2): copy the child's preboundary down into the
      // child window. Its values currently sit in the staging band.
      const std::size_t Sc = child.width() <= leaf_width_
                                 ? leaf_space_bound(child.width())
                                 : space_bound(child.width());
      std::vector<geom::Point<D>> gin = child.preboundary();
      BSMP_ASSERT_MSG(Sc <= band_top,
                      "window overflow: child space meets staging band");
      AddrMap child_pre;
      std::size_t dst = Sc - 1;
      for (const auto& q : gin) {
        auto it = staged.find(q);
        BSMP_ASSERT_MSG(it != staged.end(),
                        "topological partition violated (concrete)");
        hram::Word v = ram_->read(it->second);
        // Child preboundary parked at the top of the child window.
        BSMP_ASSERT(dst < Sc);
        ram_->write(dst, v);
        child_pre.emplace(q, dst);
        --dst;
      }

      // Step 2: run the child in [0, Sc).
      AddrMap child_out = execute(child, child_pre);

      // Step 3: save the child's out-set into the staging band.
      for (const auto& [q, addr] : child_out) {
        hram::Word v = ram_->read(addr);
        --band_top;
        BSMP_ASSERT_MSG(band_top >= Sc,
                        "staging band collided with child space");
        ram_->write(band_top, v);
        staged[q] = band_top;
        if (out_filter.contains(q)) out_addrs[q] = band_top;
      }
    }

    for (const auto& q : out)
      BSMP_ASSERT_MSG(out_addrs.contains(q), "out-set value missing");
    return out_addrs;
  }

 private:
  std::unordered_map<geom::Point<D>, std::size_t, geom::PointHash<D>>
  execute_leaf(const geom::Region<D>& U,
               const std::unordered_map<geom::Point<D>, std::size_t,
                                        geom::PointHash<D>>& pre,
               std::size_t S) {
    using AddrMap =
        std::unordered_map<geom::Point<D>, std::size_t, geom::PointHash<D>>;
    const geom::Stencil<D>& st = guest_->stencil;
    // Values of this leaf are laid out from address 0 upward in
    // topological order; the preboundary stays where the caller parked
    // it (inside [0, S)). Because for_each enumerates the leaf window
    // densely, a leaf point's address is its window slot — computable
    // in O(1) from the per-level prefix offsets, with no local index.
    const auto [tmin, tmax] = U.time_range();
    std::vector<std::size_t> offs;
    std::size_t total = 0;
    for (std::int64_t t = tmin; t <= tmax; ++t) {
      offs.push_back(total);
      std::size_t rows = 1;
      for (int i = 0; i < D; ++i) {
        auto [a, b] = U.x_range(i, t);
        if (a > b) {
          rows = 0;
          break;
        }
        rows *= static_cast<std::size_t>(b - a + 1);
      }
      total += rows;
    }
    const std::size_t top = S - pre.size();

    auto slot = [&](const geom::Point<D>& q) -> std::size_t {
      std::size_t idx = 0;
      for (int i = 0; i < D; ++i) {
        auto [a, b] = U.x_range(i, q.t);
        idx = idx * static_cast<std::size_t>(b - a + 1) +
              static_cast<std::size_t>(q.x[i] - a);
      }
      return offs[static_cast<std::size_t>(q.t - tmin)] + idx;
    };

    auto load = [&](const geom::Point<D>& q) -> hram::Word {
      if (q.t >= tmin && U.in_box(q)) return ram_->read(slot(q));
      auto it = pre.find(q);
      BSMP_ASSERT_MSG(it != pre.end(), "operand missing (concrete leaf)");
      return ram_->read(it->second);
    };

    std::size_t next = 0;
    U.for_each([&](const geom::Point<D>& p) {
      hram::Word value;
      if (p.t == 0) {
        value = guest_->input(p.x, 0);
      } else {
        hram::Word self_prev;
        if (p.t >= st.m) {
          geom::Point<D> q = p;
          q.t = p.t - st.m;
          self_prev = load(q);
        } else {
          self_prev = guest_->input(p.x, p.t % st.m);
        }
        NeighborWords<D> nbrs{};
        for (int i = 0; i < D; ++i) {
          for (int sgn = 0; sgn < 2; ++sgn) {
            geom::Point<D> q = p;
            q.x[i] += (sgn == 0 ? -1 : 1);
            q.t = p.t - 1;
            if (st.in_space(q.x)) nbrs[2 * i + sgn] = load(q);
          }
        }
        value = guest_->rule(p, self_prev, nbrs);
      }
      BSMP_ASSERT_MSG(next < top, "leaf window overflow");
      BSMP_ASSERT_MSG(next == slot(p), "dense leaf layout out of order");
      ram_->write(next, value);
      ++next;
      ram_->ledger().charge(core::CostKind::kCompute, 1.0);
    });

    AddrMap out;
    U.outset_visit([&](const geom::Point<D>& q) {
      out.emplace(q, slot(q));
    });
    return out;
  }

  const Guest<D>* guest_;
  hram::HRam* ram_;
  std::int64_t leaf_width_;
  double space_const_;
  double leaf_space_const_;
};

}  // namespace bsmp::sep
