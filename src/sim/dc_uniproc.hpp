// Divide-and-conquer uniprocessor simulation — Theorems 2, 3 and 5.
//
// The space-time volume V of the guest computation is covered by
// full/truncated domains of monotone width `tile_width` (Figure 1 for
// d=1, Figure 4 for d=2), visited in wavefront order; each tile is
// executed by the topological-separator executor, recursing down to
// "executable diamonds" of width `leaf_width` (= m for Theorem 3,
// 1 for Theorems 2 and 5) that are run naively.
#pragma once

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "core/expect.hpp"
#include "engine/metrics.hpp"
#include "engine/trace.hpp"
#include "geom/tiling.hpp"
#include "machine/spec.hpp"
#include "sep/executor.hpp"
#include "sep/staging.hpp"
#include "sim/observe.hpp"
#include "sim/result.hpp"

namespace bsmp::sim {

struct DcConfig {
  std::int64_t tile_width = 0;  ///< 0: use the guest's node side
  std::int64_t leaf_width = 0;  ///< 0: use m (Theorem 3's executable diamonds)
  double space_const = 6.0;
  /// Opt-in hot-path observability: when set, the simulator appends
  /// one HotPathMetric (vertices/sec, peak staging words, staging slab
  /// allocations) per run. Never affects charges or values.
  engine::Metrics* metrics = nullptr;
  std::string hot_label;  ///< label of the recorded section
  /// Scenario lanes carried per charged vertex (sep::kLanes for batched
  /// guests, 1 for scalar) — recorded into HotPathMetric::lanes so the
  /// metrics report can derive scenarios_per_sec.
  int hot_lanes = 1;
};

namespace detail {

/// Remove staged values that can no longer be read: everything below
/// `min_unexecuted_t - reach`, except the final rows kept for output.
template <int D, class V>
void prune_staging(const geom::Stencil<D>& st,
                   sep::BasicValueMap<D, V>& staging,
                   std::int64_t min_unexecuted_t) {
  engine::trace::Span span(engine::trace::Cat::kStaging, "staging-prune",
                           min_unexecuted_t);
  const std::int64_t dead_below = min_unexecuted_t - st.reach();
  const std::int64_t keep_from = st.horizon - st.m;
  for (auto it = staging.begin(); it != staging.end();) {
    if (it->first.t < dead_below && it->first.t < keep_from)
      it = staging.erase(it);
    else
      ++it;
  }
}

/// Dense-staging form: staleness is a pure function of t, so whole
/// levels are dropped (and their slabs released).
template <int D, class V>
void prune_staging(const geom::Stencil<D>& st,
                   sep::StagingStore<D, V>& staging,
                   std::int64_t min_unexecuted_t) {
  engine::trace::Span span(engine::trace::Cat::kStaging, "staging-prune",
                           min_unexecuted_t);
  staging.prune_below(min_unexecuted_t - st.reach(), st.horizon - st.m);
}

}  // namespace detail

template <int D, class V>
SimResult<D, V> simulate_dc_uniproc(const sep::BasicGuest<D, V>& guest,
                                    const machine::MachineSpec& host,
                                    DcConfig cfg = {}) {
  guest.validate();
  host.validate();
  const geom::Stencil<D>& st = guest.stencil;
  BSMP_REQUIRE_MSG(host.p == 1, "dc_uniproc requires a single processor");
  BSMP_REQUIRE_MSG(host.d == D, "host dimension mismatch");
  BSMP_REQUIRE_MSG(host.n == st.num_nodes(),
                   "host volume must equal guest node count");
  BSMP_REQUIRE_MSG(host.m >= st.m,
                   "the technology density m must cover the guest's "
                   "per-node memory m' (Section 6: m' < m gives more "
                   "locality)");

  std::int64_t node_side = host.node_side();
  std::int64_t tile_w = cfg.tile_width > 0 ? cfg.tile_width : node_side;
  std::int64_t leaf_w = cfg.leaf_width > 0 ? cfg.leaf_width : st.m;
  leaf_w = std::min(leaf_w, tile_w);

  sep::ExecutorConfig ecfg;
  ecfg.leaf_width = leaf_w;
  ecfg.f = host.access_fn();
  ecfg.space_const = cfg.space_const;
  sep::Executor<D, V> exec(&guest, ecfg);

  SimResult<D, V> res;
  exec.set_ledger(&res.ledger);
  const core::Cost f_top =
      ecfg.f(static_cast<std::uint64_t>(host.total_memory()));

  geom::TileGrid<D> grid(&st, tile_w);
  auto waves = grid.wavefronts();

  // Suffix minimum of tile t_min per wavefront, for staging pruning.
  std::vector<std::int64_t> suffix_tmin(waves.size() + 1, st.horizon);
  for (std::size_t k = waves.size(); k-- > 0;) {
    std::int64_t mn = suffix_tmin[k + 1];
    for (const auto& tile : waves[k])
      mn = std::min(mn, tile.time_range().first);
    suffix_tmin[k] = mn;
  }

  sep::StagingStore<D, V> staging(&st);
  const auto hot_t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < waves.size(); ++k) {
    for (const auto& tile : waves[k]) {
      engine::trace::Span tile_span(engine::trace::Cat::kSim, "dc-tile",
                                    tile.width(),
                                    static_cast<std::int64_t>(k));
      // Tile preboundary comes from machine-scale memory (Prop. 2 at
      // the top level of the recursion).
      const std::int64_t gin = tile.preboundary_count();
      res.ledger.charge(core::CostKind::kBlockMove,
                        2.0 * f_top * static_cast<core::Cost>(gin),
                        static_cast<std::uint64_t>(gin));
      exec.execute(tile, staging);
      const std::int64_t out = tile.outset_count();
      res.ledger.charge(core::CostKind::kBlockMove,
                        2.0 * f_top * static_cast<core::Cost>(out),
                        static_cast<std::uint64_t>(out));
    }
    detail::prune_staging<D>(st, staging, suffix_tmin[k + 1]);
  }
  if (cfg.metrics != nullptr) {
    engine::HotPathMetric h;
    h.label = cfg.hot_label.empty() ? "dc_uniproc" : cfg.hot_label;
    h.vertices = exec.vertices_executed();
    h.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - hot_t0)
                    .count();
    h.peak_staging_words = exec.peak_staging();
    h.staging_allocs = staging.level_allocs();
    h.lanes = cfg.hot_lanes;
    cfg.metrics->record_hot(std::move(h));
  }

  res.vertices = exec.vertices_executed();
  res.time = res.ledger.total();
  res.guest_time = static_cast<core::Cost>(st.horizon);
  res.final_values = extract_final<D>(st, staging);
  return res;
}

}  // namespace bsmp::sim
