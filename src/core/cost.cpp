#include "core/cost.hpp"

#include <sstream>

#include "core/expect.hpp"

namespace bsmp::core {

const char* to_string(CostKind k) {
  switch (k) {
    case CostKind::kCompute:     return "compute";
    case CostKind::kLocalAccess: return "local_access";
    case CostKind::kBlockMove:   return "block_move";
    case CostKind::kComm:        return "comm";
    case CostKind::kRearrange:   return "rearrange";
    case CostKind::kKindCount:   break;
  }
  return "?";
}

void CostLedger::charge(CostKind kind, Cost cost, std::uint64_t events) {
  BSMP_REQUIRE(kind != CostKind::kKindCount);
  BSMP_REQUIRE_MSG(cost >= 0.0, "negative cost charged");
  auto i = static_cast<std::size_t>(kind);
  cost_[i] += cost;
  events_[i] += events;
}

Cost CostLedger::total() const {
  Cost t = 0;
  for (Cost c : cost_) t += c;
  return t;
}

Cost CostLedger::cost(CostKind kind) const {
  return cost_[static_cast<std::size_t>(kind)];
}

std::uint64_t CostLedger::events(CostKind kind) const {
  return events_[static_cast<std::size_t>(kind)];
}

CostLedger& CostLedger::operator+=(const CostLedger& other) {
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    cost_[i] += other.cost_[i];
    events_[i] += other.events_[i];
  }
  return *this;
}

void CostLedger::reset() {
  cost_.fill(0);
  events_.fill(0);
}

std::string CostLedger::report() const {
  std::ostringstream os;
  os << "total=" << total();
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    if (events_[i] == 0 && cost_[i] == 0) continue;
    os << "  " << to_string(static_cast<CostKind>(i)) << "=" << cost_[i]
       << " (" << events_[i] << " ev)";
  }
  return os.str();
}

}  // namespace bsmp::core
