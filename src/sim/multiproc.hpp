// Multiprocessor simulation — Theorem 4 (d=1) and Theorem 1 for d=2
// (the paper defers the d=2 details to its companion report; this
// driver follows the d=1 pattern with the d-dimensional separator).
//
// Structure, mirroring Section 4.2:
//  * one-time memory rearrangement pi2*pi1 (charged to `preprocess`,
//    amortized away by the paper over repeated simulation cycles);
//  * Regime 1: recursive bisection of each machine-wide domain down to
//    macro domains of width p^(1/d) * s, charging the relocation of
//    each child's preboundary/out-set at rearranged distance
//    width/p^(1/d) with p-fold parallelism;
//  * Regime 2: each macro domain is covered by a grid of width-s
//    subtiles (the D(s) diamonds), executed in anti-diagonal wavefronts
//    of up to p mutually independent subtiles — the paper's 2p-1 stages
//    alternating whole and shared ("cooperating mode") diamonds. Each
//    subtile is assigned to the processor owning its home strip;
//    preboundary words resting in that processor's memory are charged
//    at the macro working-set address scale, words crossing a strip
//    boundary are charged as interprocessor communication over one
//    link, and the subtile body runs through the separator executor
//    (recursing to Theorem-3 executable diamonds of width m).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "engine/trace.hpp"
#include "geom/tiling.hpp"
#include "machine/clocks.hpp"
#include "machine/spec.hpp"
#include "sched/parallel.hpp"
#include "sched/planner.hpp"
#include "sep/executor.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/observe.hpp"
#include "sim/result.hpp"

namespace bsmp::sim {

struct MultiprocConfig {
  std::int64_t s = 0;           ///< strip width in nodes; 0: sqrt(n/p)
  std::int64_t leaf_width = 0;  ///< 0: min(m, s)
  double space_const = 6.0;
  bool charge_rearrangement = true;
  /// Opt-in hot-path observability (see DcConfig::metrics).
  engine::Metrics* metrics = nullptr;
  std::string hot_label;
};

template <int D, class V = sep::Word>
class MultiprocSimulator {
 public:
  MultiprocSimulator(const sep::BasicGuest<D, V>* guest,
                     const machine::MachineSpec& host, MultiprocConfig cfg)
      : guest_(guest),
        host_(host),
        cfg_(cfg),
        clocks_(host.p),
        staging_(&guest->stencil) {
    guest_->validate();
    host_.validate();
    const geom::Stencil<D>& st = guest_->stencil;
    BSMP_REQUIRE_MSG(host_.d == D, "host dimension mismatch");
    BSMP_REQUIRE_MSG(host_.n == st.num_nodes(),
                     "host volume must equal guest node count");
    BSMP_REQUIRE_MSG(host_.m >= st.m,
                     "the technology density m must cover the guest's "
                     "per-node memory m' (Section 6)");
    proc_side_ = host_.proc_side();
    node_side_ = host_.node_side();
    if (cfg_.s <= 0) {
      cfg_.s = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::sqrt(
                 static_cast<double>(host_.n) / static_cast<double>(host_.p))));
    }
    BSMP_REQUIRE_MSG(cfg_.s * proc_side_ <= node_side_ || host_.p == 1,
                     "strip width s too large: s * p^(1/d) must not exceed "
                     "the node side");
    macro_w_ = std::min(node_side_, cfg_.s * proc_side_);
    leaf_w_ = cfg_.leaf_width > 0 ? cfg_.leaf_width
                                  : std::max<std::int64_t>(
                                        1, std::min(st.m, cfg_.s));
    leaf_w_ = std::min(leaf_w_, cfg_.s);

    exec_cfg_.leaf_width = leaf_w_;
    exec_cfg_.f = host_.access_fn();
    exec_cfg_.space_const = cfg_.space_const;
    exec_.emplace(guest_, exec_cfg_);
    ledgers_.resize(static_cast<std::size_t>(host_.p));

    sched::PlannerConfig<D> pcfg;
    pcfg.tile_width = node_side_;
    pcfg.leaf_width = leaf_w_;
    pcfg.space_const = cfg_.space_const;
    planner_.emplace(&guest_->stencil, pcfg);
  }

  /// When set, the simulator additionally emits its exact op stream as
  /// a ParallelSchedule (must be constructed with p == host.p); its
  /// makespan_under(host access fn) reproduces run()'s virtual time.
  void set_emit(sched::ParallelSchedule<D>* emit) {
    if (emit != nullptr)
      BSMP_REQUIRE_MSG(emit->num_procs() == host_.p,
                       "schedule must have as many processors as the host");
    emit_ = emit;
  }

  SimResult<D, V> run() {
    const geom::Stencil<D>& st = guest_->stencil;
    SimResult<D, V> res;

    if (cfg_.charge_rearrangement) {
      // n*m words travel an average distance ~node_side/2 with p-fold
      // parallelism (Section 4.2: O(n^2 m / p) for d=1).
      res.preprocess = static_cast<core::Cost>(host_.n) *
                       static_cast<core::Cost>(host_.m) *
                       (static_cast<core::Cost>(node_side_) / 2.0) /
                       static_cast<core::Cost>(host_.p);
      res.ledger.charge(core::CostKind::kRearrange, res.preprocess);
    }

    geom::TileGrid<D> grid(&st, node_side_);
    auto waves = grid.wavefronts();
    std::vector<std::int64_t> suffix_tmin(waves.size() + 1, st.horizon);
    for (std::size_t k = waves.size(); k-- > 0;) {
      std::int64_t mn = suffix_tmin[k + 1];
      for (const auto& tile : waves[k])
        mn = std::min(mn, tile.time_range().first);
      suffix_tmin[k] = mn;
    }

    const double rdist = relocation_distance(node_side_);
    const auto hot_t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < waves.size(); ++k) {
      for (const auto& tile : waves[k]) {
        engine::trace::Span tile_span(engine::trace::Cat::kSim,
                                      "machine-tile", tile.width(),
                                      static_cast<std::int64_t>(k));
        charge_relocation(
            static_cast<std::size_t>(tile.preboundary_count()), rdist);
        relocate_rec(tile);
      }
      detail::prune_staging<D>(st, staging_, suffix_tmin[k + 1]);
    }
    if (cfg_.metrics != nullptr) {
      engine::HotPathMetric h;
      h.label = cfg_.hot_label.empty() ? "multiproc" : cfg_.hot_label;
      h.vertices = exec_->vertices_executed();
      h.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - hot_t0)
                      .count();
      h.peak_staging_words = exec_->peak_staging();
      h.staging_allocs = staging_.level_allocs();
      cfg_.metrics->record_hot(std::move(h));
    }

    for (auto& l : ledgers_) res.ledger += l;
    res.vertices = exec_->vertices_executed();
    res.time = clocks_.makespan();
    res.guest_time = static_cast<core::Cost>(st.horizon);
    res.utilization = clocks_.utilization();
    res.final_values = extract_final<D>(st, staging_);
    return res;
  }

 private:
  double relocation_distance(std::int64_t width) const {
    // After the pi2*pi1 rearrangement, transfers for a width-w domain
    // occur at distance w / p^(1/d) (Section 4.2), never below one.
    double d = static_cast<double>(width) /
               static_cast<double>(proc_side_);
    return d < 1.0 ? 1.0 : d;
  }

  void charge_relocation(std::size_t words, double dist) {
    if (words == 0) return;
    core::Cost work = static_cast<core::Cost>(words) * dist;
    core::Cost share = work / static_cast<core::Cost>(host_.p);
    for (std::int64_t pr = 0; pr < host_.p; ++pr) clocks_.advance(pr, share);
    ledgers_[0].charge(core::CostKind::kBlockMove, work, words);
    clocks_.barrier();
    if (emit_ != nullptr) {
      sched::Op<D> op;
      op.kind = sched::OpKind::kRelocate;
      op.words = static_cast<std::int64_t>(words);
      op.distance = dist;
      emit_->push(op);
    }
  }

  /// Regime 1: bisect down to macro width, charging relocations.
  void relocate_rec(const geom::Region<D>& r) {
    if (r.width() <= macro_w_) {
      regime2(r);
      return;
    }
    engine::trace::Span span(engine::trace::Cat::kSim, "regime1-relocate",
                             r.width());
    for (const geom::Region<D>& child : r.split()) {
      double dist = relocation_distance(child.width());
      charge_relocation(static_cast<std::size_t>(child.preboundary_count()),
                        dist);
      relocate_rec(child);
      charge_relocation(static_cast<std::size_t>(child.outset_count()),
                        dist);
    }
  }

  std::int64_t proc_of_strip(const std::array<std::int64_t, D>& strip) const {
    std::int64_t pr = 0;
    for (int i = 0; i < D; ++i)
      pr = pr * proc_side_ + core::mod_floor(strip[i], proc_side_);
    return pr;
  }

  std::array<std::int64_t, D> strip_of(const std::array<int64_t, D>& x) const {
    std::array<std::int64_t, D> s;
    for (int i = 0; i < D; ++i) s[i] = x[i] / cfg_.s;
    return s;
  }

  /// Regime 2: execute a macro domain via width-s subtile wavefronts.
  void regime2(const geom::Region<D>& macro) {
    engine::trace::Span macro_span(engine::trace::Cat::kSim, "regime2-macro",
                                   macro.width());
    constexpr int K = geom::kMono<D>;
    const geom::Stencil<D>& st = guest_->stencil;

    std::array<std::int64_t, K> cells;
    for (int k = 0; k < K; ++k)
      cells[k] = core::div_ceil(macro.hi()[k] - macro.lo()[k], cfg_.s);

    // Working-set address scale of a subtile's resident data inside its
    // processor's memory after Regime 1 brought the macro domain near.
    double s_rest = cfg_.space_const *
                        static_cast<double>(std::min(st.reach(), macro_w_)) *
                        std::pow(static_cast<double>(cfg_.s), D) +
                    8.0;
    const core::Cost f_rest =
        host_.access_fn()(static_cast<std::uint64_t>(s_rest));
    const core::Cost link = host_.link_length();

    // Group subtiles by wavefront (sum of grid indices).
    std::int64_t max_sum = 0;
    for (int k = 0; k < K; ++k) max_sum += cells[k] - 1;
    std::vector<std::vector<geom::Region<D>>> waves(
        static_cast<std::size_t>(max_sum + 1));
    std::array<std::int64_t, K> g{};
    for (;;) {
      std::array<std::int64_t, K> lo, hi;
      std::int64_t sum = 0;
      for (int k = 0; k < K; ++k) {
        lo[k] = macro.lo()[k] + g[k] * cfg_.s;
        hi[k] = std::min(macro.hi()[k], lo[k] + cfg_.s);
        sum += g[k];
      }
      geom::Region<D> sub(&st, lo, hi);
      if (!sub.empty())
        waves[static_cast<std::size_t>(sum)].push_back(std::move(sub));
      int k = 0;
      while (k < K) {
        if (++g[k] < cells[k]) break;
        g[k] = 0;
        ++k;
      }
      if (k == K) break;
    }

    for (std::size_t wi = 0; wi < waves.size(); ++wi) {
      const auto& wave = waves[wi];
      engine::trace::Span wave_span(engine::trace::Cat::kSim, "regime2-wave",
                                    static_cast<std::int64_t>(wave.size()),
                                    static_cast<std::int64_t>(wi));
      if (wave_parallel(wave)) {
        exec_wave_forked(wave, f_rest, link);
      } else {
        for (const geom::Region<D>& sub : wave)
          exec_subtile(sub, f_rest, s_rest, link);
      }
      clocks_.barrier();
      if (emit_ != nullptr) {
        sched::Op<D> b;
        b.kind = sched::OpKind::kBarrier;
        emit_->push(b);
      }
    }
  }

  /// One subtile of a Regime-2 wave, serially (the reference path).
  void exec_subtile(const geom::Region<D>& sub, core::Cost f_rest,
                    double s_rest, core::Cost link) {
    auto fp = sub.first_point();
    BSMP_ASSERT(fp.has_value());
    auto home = strip_of(fp->x);
    std::int64_t pr = proc_of_strip(home);
    // Span args match exec_wave_forked's so the deterministic span set
    // is the same whether the wave forked or ran serially.
    engine::trace::Span sub_span(engine::trace::Cat::kSim, "regime2-subtile",
                                 sub.width(), pr);

    // Root preboundary: resident words vs strip-crossing words
    // (counting visitor — no materialized vector).
    std::size_t cross = 0, resident = 0;
    sub.preboundary_visit([&](const geom::Point<D>& q) {
      if (strip_of(q.x) != home)
        ++cross;
      else
        ++resident;
    });

    core::Cost cost = 0;
    cost += 2.0 * f_rest * static_cast<core::Cost>(resident);
    ledgers_[static_cast<std::size_t>(pr)].charge(
        core::CostKind::kBlockMove,
        2.0 * f_rest * static_cast<core::Cost>(resident), resident);
    if (cross > 0) {
      core::Cost c = link * static_cast<core::Cost>(cross);
      cost += c;
      ledgers_[static_cast<std::size_t>(pr)].charge(core::CostKind::kComm,
                                                    c, cross);
    }

    // Subtile body via the separator executor, charged to pr.
    exec_->set_ledger(&ledgers_[static_cast<std::size_t>(pr)]);
    core::Cost before = ledgers_[static_cast<std::size_t>(pr)].total();
    exec_->execute(sub, staging_);
    cost += ledgers_[static_cast<std::size_t>(pr)].total() - before;

    clocks_.advance(pr, cost);

    if (emit_ != nullptr) {
      if (resident > 0) {
        sched::Op<D> in;
        in.kind = sched::OpKind::kCopyIn;
        in.proc = pr;
        in.words = static_cast<std::int64_t>(resident);
        in.addr_scale = s_rest;
        emit_->push(in);
      }
      if (cross > 0) {
        sched::Op<D> cm;
        cm.kind = sched::OpKind::kComm;
        cm.proc = pr;
        cm.words = static_cast<std::int64_t>(cross);
        cm.distance = link;
        emit_->push(cm);
      }
      // The subtile body: the serial planner emits exactly the op
      // stream the executor charges; annotate it with pr.
      sched::Schedule<D> body;
      planner_->plan_region(body, sub);
      for (sched::Op<D> op : body.ops()) {
        op.proc = pr;
        emit_->push(op);
      }
    }
  }

  /// Fork a wave when its subtiles can actually run concurrently:
  /// parallelism is on, a multi-slot scheduler is ambient, and no op
  /// stream is being emitted (the emit path runs the planner per
  /// subtile against shared caches; the serial path keeps it exact).
  bool wave_parallel(const std::vector<geom::Region<D>>& wave) const {
    if (emit_ != nullptr || wave.size() < 2 || exec_cfg_.parallel_grain <= 0)
      return false;
    engine::TaskScheduler* s = engine::TaskScheduler::current();
    return s != nullptr && s->parallel();
  }

  /// One Regime-2 wave with its subtiles forked. Subtiles of a wave
  /// are mutually independent (anti-diagonal wavefronts), so each runs
  /// against a private StagingShard over staging_ with private
  /// ChargeLogs; the join merges in canonical subtile order, charging
  /// each processor's ledger and clock with the exact floating-point
  /// sequence the serial path produces.
  void exec_wave_forked(const std::vector<geom::Region<D>>& wave,
                        core::Cost f_rest, core::Cost link) {
    using Delta = typename sep::Executor<D, V>::ExecDelta;
    struct Sub {
      std::size_t resident = 0, cross = 0;
      std::int64_t pr = 0;
      core::ChargeLog pre, body;
      Delta delta;
      std::optional<sep::StagingShard<D, sep::StagingStore<D, V>>> shard;
    };
    const std::size_t base = staging_.size();
    std::vector<Sub> subs(wave.size());
    for (Sub& sb : subs) sb.shard.emplace(sep::overlay, staging_);
    engine::TaskScope scope;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Sub& sb = subs[i];
      const geom::Region<D>& sub = wave[i];
      scope.fork([this, &sb, &sub, f_rest, link] {
        auto fp = sub.first_point();
        BSMP_ASSERT(fp.has_value());
        auto home = strip_of(fp->x);
        sb.pr = proc_of_strip(home);
        engine::trace::Span sub_span(engine::trace::Cat::kSim,
                                     "regime2-subtile", sub.width(), sb.pr);
        sub.preboundary_visit([&](const geom::Point<D>& q) {
          if (strip_of(q.x) != home)
            ++sb.cross;
          else
            ++sb.resident;
        });
        sb.pre.charge(core::CostKind::kBlockMove,
                      2.0 * f_rest * static_cast<core::Cost>(sb.resident),
                      sb.resident);
        if (sb.cross > 0)
          sb.pre.charge(core::CostKind::kComm,
                        link * static_cast<core::Cost>(sb.cross), sb.cross);
        sb.delta = exec_->execute_delta(sub, *sb.shard, sb.body);
      });
    }
    scope.join();
    engine::trace::Span merge_span(engine::trace::Cat::kTask, "shard-merge",
                                   static_cast<std::int64_t>(wave.size()));
    std::int64_t cum = 0;
    for (Sub& sb : subs) {
      core::CostLedger& lg = ledgers_[static_cast<std::size_t>(sb.pr)];
      sb.pre.replay_into(lg);
      // The serial path's exact cost expression, with the executor's
      // contribution recovered through the same total()-before read.
      core::Cost cost = 0;
      cost += 2.0 * f_rest * static_cast<core::Cost>(sb.resident);
      if (sb.cross > 0)
        cost += link * static_cast<core::Cost>(sb.cross);
      core::Cost before = lg.total();
      sb.body.replay_into(lg);
      cost += lg.total() - before;
      clocks_.advance(sb.pr, cost);
      sb.shard->merge_into(staging_);
      exec_->absorb(sb.delta, base + static_cast<std::size_t>(cum));
      cum += sb.delta.net;
    }
  }

  const sep::BasicGuest<D, V>* guest_;
  machine::MachineSpec host_;
  MultiprocConfig cfg_;
  sep::ExecutorConfig exec_cfg_;
  machine::ProcClocks clocks_;
  std::vector<core::CostLedger> ledgers_;
  std::optional<sep::Executor<D, V>> exec_;
  std::optional<sched::Planner<D>> planner_;
  sched::ParallelSchedule<D>* emit_ = nullptr;
  sep::StagingStore<D, V> staging_;
  std::int64_t proc_side_ = 1;
  std::int64_t node_side_ = 1;
  std::int64_t macro_w_ = 1;
  std::int64_t leaf_w_ = 1;
};

template <int D, class V>
SimResult<D, V> simulate_multiproc(const sep::BasicGuest<D, V>& guest,
                                   const machine::MachineSpec& host,
                                   MultiprocConfig cfg = {}) {
  MultiprocSimulator<D, V> sim(&guest, host, cfg);
  return sim.run();
}

}  // namespace bsmp::sim
