// Closed forms of the paper's bounds.
//
// All logarithms are the paper's saturated loḡ(a) = log2(a+2) >= 1.
// Slowdowns are Tp/Tn for simulating Md(n,n,m) on Md(n,p,m); the
// parallelism factor n/p and the locality factor A(n,m,p) are exposed
// separately (Theorem 1's decomposition).
#pragma once

#include <cstdint>
#include <string>

namespace bsmp::analytic {

/// Which of Theorem 1's four ranges m falls in (boundaries at
/// (n/p)^(1/2d), (np)^(1/2d) and n^(1/d)).
enum class Range { k1, k2, k3, k4 };
const char* to_string(Range r);

Range classify_range(int d, double n, double m, double p);

/// The locality slowdown A(n, m, p) of Theorem 1 (d = 1 or 2; the d=1
/// case coincides with Theorem 4). d = 3 evaluates the same expressions
/// — the paper's Section-6 conjecture.
double locality_A(int d, double n, double m, double p);

/// Full slowdown bound of Theorem 1: (n/p) * A(n, m, p).
double slowdown_bound(int d, double n, double m, double p);

/// The objective A(s) of Section 4.2 (d=1):
/// (m/p) loḡ(n/(p s)) + min(s, m loḡ(s/m)) + n/(p s).
double A_of_s(double n, double m, double p, double s);

/// The three mechanisms of A(s), separately: Regime-1 relocation,
/// subtile execution, and cooperating-mode communication. A measured
/// slowdown curve is a positive linear combination of these (each
/// mechanism carries its own implementation constant); fitting the
/// coefficients and checking the fit is how the benches validate the
/// *structure* of Theorem 4 independent of constants.
struct ATerms {
  double relocation;     ///< (m/p) loḡ(n/(p s))
  double execution;      ///< min(s, m loḡ(s/m))
  double communication;  ///< n/(p s)
};
ATerms A_terms(double n, double m, double p, double s);

/// The optimizing strip width s* of Section 4.2, by range:
/// range 1: n/(m p); range 2: sqrt(n/p); range 3: m/p; range 4: n/p.
/// Note the top: for m >= n^(1/d) (range 4) — and already at the
/// range-3/range-4 boundary m = n^(1/d), where m/p = n/p — s* is the
/// full per-processor strip n/p, i.e. the two-regime scheme degenerates
/// to the naive simulation (Prop. 1). See advisor.hpp.
double s_star(double n, double m, double p);

/// s* clamped to the feasible strip range [1, n/p] (p strips of width
/// s must tile the n nodes). This is the width both the Calibration
/// model terms and the engine-backed calibration measurements use, so
/// model and measurement always evaluate the same schedule.
double feasible_s_star(double n, double m, double p);

/// Theorem 2 bound: slowdown of M1(n,1,1) simulating M1(n,n,1).
double thm2_bound(double n);

/// Theorem 3 bound: slowdown of M1(n,1,m) simulating M1(n,n,m):
/// n * min(n, m loḡ(n/m)).
double thm3_bound(double n, double m);

/// Theorem 5 bound: slowdown of M2(n,1,1) simulating M2(n,n,1).
double thm5_bound(double n);

/// Proposition 1 bound: naive simulation slowdown of Md(n,p,m) hosting
/// Md(n,n,m): (n/p) * f(nm/p) with f(x) = (x/m)^(1/d).
double naive_bound(int d, double n, double m, double p);

/// Brent / instantaneous-model slowdown: n/p exactly.
double brent_bound(double n, double p);

/// Introduction example: virtual times for multiplying two
/// sqrt(n) x sqrt(n) matrices (n total elements per matrix).
double matmul_mesh_time(double n);          ///< Θ(sqrt(n)) on M2(n,n,1)
double matmul_hram_naive_time(double n);    ///< Θ(n^2) on a flat-layout H-RAM
double matmul_hram_blocked_time(double n);  ///< Θ(n^(3/2) log n), AACS87

}  // namespace bsmp::analytic
