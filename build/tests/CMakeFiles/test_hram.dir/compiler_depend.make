# Empty compiler generated dependencies file for test_hram.
# This may be replaced when dependencies are built.
