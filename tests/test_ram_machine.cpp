// The H-RAM machine (Cook–Reckhow RAM with hierarchical access cost):
// assembler, interpreter, and the locality-sensitivity of program
// running times.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/expect.hpp"
#include "core/rng.hpp"
#include "hram/ram_machine.hpp"
#include "workload/matmul.hpp"
#include "workload/ram_programs.hpp"

using namespace bsmp;
using hram::AccessFn;
using hram::Assembler;
using hram::HRam;
using hram::RamOp;

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  Assembler as;
  as.emit(RamOp::kLoadImm, 3).emit(RamOp::kStore, 0);
  as.label("loop");
  as.emit(RamOp::kLoad, 0).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 0);
  as.jump(RamOp::kJnz, "loop");
  as.jump(RamOp::kJmp, "end");
  as.emit(RamOp::kLoadImm, 999);  // skipped
  as.label("end");
  as.emit(RamOp::kHalt);
  auto prog = as.assemble();
  HRam ram(64, AccessFn::unit());
  auto res = run_ram_program(prog, ram);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.acc, 0u);
}

TEST(Assembler, UndefinedAndDuplicateLabels) {
  Assembler as;
  as.jump(RamOp::kJmp, "nowhere").emit(RamOp::kHalt);
  EXPECT_THROW(as.assemble(), bsmp::precondition_error);
  Assembler as2;
  as2.label("x");
  EXPECT_THROW(as2.label("x"), bsmp::precondition_error);
}

TEST(RamMachine, ArithmeticAndIndirection) {
  Assembler as;
  as.emit(RamOp::kLoadImm, 40).emit(RamOp::kStore, 0);   // M[0] = 40
  as.emit(RamOp::kLoadImm, 7).emit(RamOp::kStoreInd, 0); // M[40] = 7
  as.emit(RamOp::kLoadImm, 5).emit(RamOp::kMul, 40);     // acc = 5*7
  as.emit(RamOp::kAddImm, 2);                            // 37
  as.emit(RamOp::kSub, 40);                              // 30
  as.emit(RamOp::kHalt);
  HRam ram(64, AccessFn::unit());
  auto res = run_ram_program(as.assemble(), ram);
  EXPECT_EQ(res.acc, 30u);
}

TEST(RamMachine, StepLimitStopsRunaways) {
  Assembler as;
  as.label("spin").jump(RamOp::kJmp, "spin");
  HRam ram(8, AccessFn::unit());
  auto res = run_ram_program(as.assemble(), ram, 1000);
  EXPECT_FALSE(res.halted);
  EXPECT_EQ(res.instructions, 1000);
}

TEST(RamMachine, ChargesPerInstructionAndAccess) {
  Assembler as;
  as.emit(RamOp::kLoad, 100).emit(RamOp::kHalt);
  HRam ram(128, AccessFn::hierarchical(1, 1.0));  // f(x) = x
  auto res = run_ram_program(as.assemble(), ram);
  // 2 instruction units + f(100) for the load.
  EXPECT_DOUBLE_EQ(res.time, 2.0 + 100.0);
}

TEST(RamPrograms, SumMatchesAndHasLocality) {
  const std::int64_t base = 64, count = 50;
  // Unit-cost machine: correctness baseline.
  HRam flat(1024, AccessFn::unit());
  hram::Word expect = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    flat.write(base + i, static_cast<hram::Word>(3 * i + 1));
    expect += static_cast<hram::Word>(3 * i + 1);
  }
  double load = flat.ledger().total();
  auto r1 = run_ram_program(workload::ram_sum(base, count), flat);
  EXPECT_TRUE(r1.halted);
  EXPECT_EQ(r1.acc, expect);

  // Same program on the hierarchical machine, with the array near vs
  // far: "running time depends upon the addresses at which values are
  // stored" — the paper's definition of data locality.
  auto timed_sum = [&](std::int64_t where) {
    HRam hier(8192, AccessFn::hierarchical(1, 1.0));
    for (std::int64_t i = 0; i < count; ++i) hier.write(where + i, 1);
    double pre = hier.ledger().total();
    auto r = run_ram_program(workload::ram_sum(where, count), hier);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.acc, static_cast<hram::Word>(count));
    return r.time - pre;
  };
  double near = timed_sum(base);
  double far = timed_sum(base + 4000);
  EXPECT_GT(near, r1.time - load);  // hierarchical > unit cost
  EXPECT_GT(far, 10.0 * near)
      << "running time must depend on data placement";
}

TEST(RamPrograms, ReverseReverses) {
  const std::int64_t base = 32, count = 9;
  HRam ram(256, AccessFn::unit());
  for (std::int64_t i = 0; i < count; ++i)
    ram.write(base + i, static_cast<hram::Word>(i));
  auto res = run_ram_program(workload::ram_reverse(base, count), ram);
  EXPECT_TRUE(res.halted);
  for (std::int64_t i = 0; i < count; ++i)
    EXPECT_EQ(ram.read(base + i), static_cast<hram::Word>(count - 1 - i));
}

TEST(RamPrograms, DotProduct) {
  const std::int64_t a = 32, b = 128, count = 20;
  HRam ram(512, AccessFn::unit());
  hram::Word expect = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    ram.write(a + i, static_cast<hram::Word>(i + 1));
    ram.write(b + i, static_cast<hram::Word>(2 * i + 3));
    expect += static_cast<hram::Word>((i + 1) * (2 * i + 3));
  }
  auto res = run_ram_program(workload::ram_dot(a, b, count), ram);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.acc, expect);
}

TEST(RamPrograms, MatmulMatchesPlain) {
  const std::int64_t side = 6;
  const std::int64_t a = 64, b = a + side * side, c = b + side * side;
  HRam ram(1024, AccessFn::unit());
  core::SplitMix64 rng(5);
  std::vector<hram::Word> A(side * side), B(side * side);
  for (std::int64_t i = 0; i < side * side; ++i) {
    A[i] = rng.next();
    B[i] = rng.next();
    ram.write(a + i, A[i]);
    ram.write(b + i, B[i]);
  }
  auto res = run_ram_program(workload::ram_matmul(a, b, c, side), ram,
                             1 << 22);
  ASSERT_TRUE(res.halted);
  auto want = workload::matmul_plain(side, A, B);
  for (std::int64_t i = 0; i < side * side; ++i)
    EXPECT_EQ(ram.read(c + i), want[i]) << i;
}

TEST(RamPrograms, MatmulTimeScalesLikeIntroExample) {
  // On the d=2 H-RAM the triple loop pays Θ(sqrt(n)) per operation:
  // total Θ(n^2) = Θ(side^4). Doubling side ~16x's the time.
  double prev = 0, last_ratio = 0;
  for (std::int64_t side : {4, 8, 16}) {
    const std::int64_t a = 64, b = a + side * side, c = b + side * side;
    HRam ram(static_cast<std::size_t>(c + side * side + 64),
             AccessFn::hierarchical(2, 1.0));
    for (std::int64_t i = 0; i < 2 * side * side; ++i) ram.write(a + i, 1);
    double pre = ram.ledger().total();
    auto res = run_ram_program(workload::ram_matmul(a, b, c, side), ram,
                               1 << 24);
    ASSERT_TRUE(res.halted);
    double t = res.time - pre;
    if (prev > 0) {
      // side^3 instructions at unit cost plus side^3 accesses at
      // Θ(side): the doubling ratio starts near 8 and approaches 16
      // as the access term dominates.
      EXPECT_GT(t / prev, 6.0) << side;
      EXPECT_LT(t / prev, 20.0) << side;
      EXPECT_GT(t / prev, last_ratio) << side;
      last_ratio = t / prev;
    }
    prev = t;
  }
}

TEST(RamMachine, RejectsBadAddressesAndPc) {
  Assembler as;
  as.emit(RamOp::kLoadImm, -5).emit(RamOp::kStore, 0);
  as.emit(RamOp::kLoadInd, 0).emit(RamOp::kHalt);  // M[M[0]] with M[0] huge
  HRam ram(16, AccessFn::unit());
  EXPECT_THROW(run_ram_program(as.assemble(), ram),
               bsmp::precondition_error);

  hram::RamProgram falls_off = {{RamOp::kLoadImm, 1}};
  HRam ram2(16, AccessFn::unit());
  EXPECT_THROW(run_ram_program(falls_off, ram2), bsmp::precondition_error);
}
