// The topological-separator executor: the concrete realization of
// Proposition 2 and Proposition 3.
//
// execute(U, staging) runs every vertex of the convex domain U under
// the contract:
//   * on entry, `staging` holds the values of Γin(U) (the topological-
//     partition property of Definition 4; asserted per point when
//     validation mode is on, and caught by the leaf operand check
//     otherwise);
//   * on return, `staging` additionally holds the values of the
//     out-set of U, and U's interior values have been removed.
//
// Cost model (charged into a CostLedger):
//   * recursion level on domain U: copying the preboundary of each
//     child in and its out-set back out costs 2 f(S(U)) per word
//     (Prop. 2 steps 1 and 3), where S(U) is the space bound of the
//     recurrence S(U) <= max_i S(Ui) + P(U);
//   * leaf (width <= leaf_width): each vertex is executed naively —
//     one unit of compute plus one access per operand and one for the
//     result, each charged f(S(leaf)).
// Setting leaf_width = m realizes Theorem 3's "executable diamonds"
// D(m) executed by naive simulation at cost Θ(m^3); leaf_width = 1 is
// the pure divide-and-conquer of Theorems 2 and 5.
//
// Hot path (see doc/ENGINE.md "Hot path"): recursion levels charge
// from Region::preboundary_count()/outset_count() without
// materializing point vectors; leaves run in a dense window addressed
// by (time-level prefix offset, x offset) instead of a hash map, with
// per-leaf batched kCompute and a bit-exact kLocalAccess charge
// stream; staging is any store providing the accessors of
// sep/staging.hpp — StagingStore<D> for O(1) dense addressing, or the
// original ValueMap<D>. All charged totals are bit-identical to the
// materializing implementation; ExecutorConfig::validate re-enables
// the per-level materialization and asserts it changes nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cost.hpp"
#include "core/expect.hpp"
#include "geom/region.hpp"
#include "hram/access_fn.hpp"
#include "sep/guest.hpp"
#include "sep/staging.hpp"

namespace bsmp::sep {

struct ExecutorConfig {
  /// Domains of monotone width <= leaf_width are executed naively.
  int64_t leaf_width = 1;
  /// Access function of the executing node's H-RAM.
  hram::AccessFn f = hram::AccessFn::unit();
  /// Constant of the space bound S(width) = space_const * min(reach,
  /// width) * width^D + 8; tests verify the executor's live footprint
  /// stays within it. Measured peak footprints converge to ~4x
  /// reach*width^D; the paper's own recurrence constant σ0 =
  /// q c δ^γ / (1 - δ^γ) evaluates to ~11 for the d=1 diamond.
  double space_const = 6.0;
  /// Constant of the *leaf* working-set bound. A leaf ("executable
  /// diamond", Theorem 3) holds only its own points and preboundary —
  /// no recursion-path staging — so its accesses are charged at a
  /// tighter address scale than the recursion levels'.
  double leaf_space_const = 2.0;
  /// Re-materialize preboundary / out-set vectors at every recursion
  /// level and assert the topological-partition property and the
  /// count == size equalities. Defaults from sep::validation_mode()
  /// (the BSMP_VALIDATE environment variable).
  bool validate = validation_mode();
};

template <int D>
class Executor {
 public:
  Executor(const Guest<D>* guest, ExecutorConfig cfg)
      : guest_(guest), cfg_(cfg) {
    BSMP_REQUIRE(guest != nullptr);
    guest_->validate();
    BSMP_REQUIRE(cfg_.leaf_width >= 1);
  }

  /// Rebind the ledger charges are recorded into (per-processor ledgers
  /// in the multiprocessor simulators).
  void set_ledger(core::CostLedger* ledger) { ledger_ = ledger; }

  /// Space bound S for a domain of the given monotone width, in words:
  /// S(w) = space_const * min(reach, w) * w^D + 64. The min matters when
  /// the domain is shorter than the memory depth m: then every vertex's
  /// self-lane predecessor lies below the domain, the preboundary is
  /// Θ(w^(D+1)) and so is the working set — not Θ(m * w^D).
  double space_bound(int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Working-set bound of a naively-executed leaf of the given width:
  /// its points plus preboundary, with no recursion-path staging.
  double leaf_space_bound(int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.leaf_space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Execute domain U (see the contract above): afterwards the out-set
  /// values of U are in `staging` (enumerable via U.outset() /
  /// U.outset_visit()). `Store` is ValueMap<D> or StagingStore<D>.
  template <class Store>
  void execute(const geom::Region<D>& U, Store& staging) {
    execute_with_rule(U, staging, guest_->rule);
  }

  /// Fast path: identical to execute(), with the leaf loop specialized
  /// for a concrete `rule` callable (no std::function dispatch per
  /// vertex). `rule` must compute the same function as guest->rule.
  template <class Store, class RuleFn>
  void execute_with_rule(const geom::Region<D>& U, Store& staging,
                         const RuleFn& rule) {
    BSMP_REQUIRE(ledger_ != nullptr);
    exec_rec(U, staging, rule);
  }

  /// Total dag vertices executed so far.
  std::int64_t vertices_executed() const { return vertices_; }

  /// High-water mark of the staging store (live values), in words — the
  /// concrete footprint compared against space_bound in tests.
  std::size_t peak_staging() const { return peak_staging_; }

 private:
  template <class Store, class RuleFn>
  void exec_rec(const geom::Region<D>& U, Store& staging,
                const RuleFn& rule) {
    if (U.width() <= cfg_.leaf_width) {
      execute_leaf(U, staging, rule);
      note_staging(staging.size());
      return;
    }

    const core::Cost fS =
        cfg_.f(static_cast<std::uint64_t>(space_bound(U.width())));
    std::vector<geom::Region<D>> children = U.split();
    for (const geom::Region<D>& child : children) {
      // Proposition 2, step 1: bring the child's preboundary into the
      // child's working space. Presence in staging is exactly the
      // topological-partition property.
      const std::int64_t gin = child.preboundary_count();
      if (cfg_.validate) validate_preboundary(child, staging, U.width(), gin);
      ledger_->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(gin),
                      static_cast<std::uint64_t>(gin));

      // Step 2: execute the child.
      exec_rec(child, staging, rule);

      // Step 3: save the child's out-set for later children / parent.
      const std::int64_t child_out = child.outset_count();
      if (cfg_.validate) validate_child_outset(child, child_out);
      ledger_->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(child_out),
                      static_cast<std::uint64_t>(child_out));
    }

    // Retain only U's out-set; everything else produced inside U is
    // dead (its successors are all inside U and already executed).
    // The produced set is exactly the union of the children's
    // out-sets, and in_outset(q) is the O(1) membership filter the
    // old code materialized a throwaway map for.
    for (const geom::Region<D>& child : children) {
      child.outset_visit([&](const geom::Point<D>& q) {
        if (!U.in_outset(q)) staging.erase(q);
      });
    }
    if (cfg_.validate) validate_outset(U, staging);
    note_staging(staging.size());
  }

  template <class Store>
  void validate_preboundary(const geom::Region<D>& child,
                            const Store& staging, std::int64_t width,
                            std::int64_t count) {
    std::vector<geom::Point<D>> gin = child.preboundary();
    BSMP_ASSERT_MSG(static_cast<std::int64_t>(gin.size()) == count,
                    "preboundary_count != |preboundary()|");
    for (const auto& q : gin) {
      BSMP_ASSERT_MSG(store_find(staging, q) != nullptr,
                      "preboundary value missing: topological partition "
                      "violated at width "
                          << width);
    }
  }

  void validate_child_outset(const geom::Region<D>& child,
                             std::int64_t count) {
    BSMP_ASSERT_MSG(
        static_cast<std::int64_t>(child.outset().size()) == count,
        "outset_count != |outset()|");
  }

  template <class Store>
  void validate_outset(const geom::Region<D>& U, const Store& staging) {
    std::vector<geom::Point<D>> out = U.outset();
    for (const auto& q : out) {
      BSMP_ASSERT_MSG(U.in_outset(q), "in_outset rejects an outset() point");
      BSMP_ASSERT_MSG(store_find(staging, q) != nullptr,
                      "out-set value missing");
    }
  }

  void note_staging(std::size_t live) {
    if (live > peak_staging_) peak_staging_ = live;
  }

  /// Points of U at one time level (product of its x-ranges).
  static std::size_t level_size(const geom::Region<D>& U, std::int64_t t) {
    std::size_t n = 1;
    for (int i = 0; i < D; ++i) {
      auto [a, b] = U.x_range(i, t);
      if (a > b) return 0;
      n *= static_cast<std::size_t>(b - a + 1);
    }
    return n;
  }

  /// Dense window slot of q inside leaf U: per-level prefix offset (in
  /// leaf_off_) plus the row-major x offset — the position for_each
  /// visits q at, so sequential execution writes slots 0, 1, 2, ...
  std::size_t leaf_slot(const geom::Region<D>& U, std::int64_t tmin,
                        const geom::Point<D>& q) const {
    std::size_t idx = 0;
    for (int i = 0; i < D; ++i) {
      auto [a, b] = U.x_range(i, q.t);
      idx = idx * static_cast<std::size_t>(b - a + 1) +
            static_cast<std::size_t>(q.x[i] - a);
    }
    return leaf_off_[static_cast<std::size_t>(q.t - tmin)] + idx;
  }

  template <class Store, class RuleFn>
  void execute_leaf(const geom::Region<D>& U, Store& staging,
                    const RuleFn& rule) {
    const geom::Stencil<D>& st = guest_->stencil;
    const core::Cost f_leaf =
        cfg_.f(static_cast<std::uint64_t>(leaf_space_bound(U.width())));

    const auto [tmin, tmax] = U.time_range();
    leaf_off_.clear();
    std::size_t total = 0;
    for (std::int64_t t = tmin; t <= tmax; ++t) {
      leaf_off_.push_back(total);
      total += level_size(U, t);
    }
    if (leaf_vals_.size() < total) leaf_vals_.resize(total);

    auto lookup = [&](const geom::Point<D>& q) -> Word {
      // q is a vertex; inside the leaf box it was already executed
      // (topological order), so its value sits in the dense window.
      if (q.t >= tmin && U.in_box(q)) return leaf_vals_[leaf_slot(U, tmin, q)];
      const Word* v = store_find(staging, q);
      BSMP_ASSERT_MSG(v != nullptr,
                      "operand missing at leaf: topological partition or "
                      "out-set computation is wrong");
      return *v;
    };

    auto la = ledger_->stream(core::CostKind::kLocalAccess);
    std::uint64_t la_events = 0;
    std::int64_t executed = 0;
    std::size_t w = 0;

    U.for_each([&](const geom::Point<D>& p) {
      Word value;
      int operands = 0;
      if (p.t == 0) {
        value = guest_->input(p.x, 0);  // input vertex (Definition 3)
        operands = 1;
      } else {
        Word self_prev;
        if (p.t >= st.m) {
          geom::Point<D> q = p;
          q.t = p.t - st.m;
          self_prev = lookup(q);
        } else {
          self_prev = guest_->input(p.x, p.t % st.m);
        }
        NeighborWords<D> nbrs{};
        for (int i = 0; i < D; ++i) {
          for (int s = 0; s < 2; ++s) {
            geom::Point<D> q = p;
            q.x[i] += (s == 0 ? -1 : 1);
            q.t = p.t - 1;
            if (st.in_space(q.x)) {
              nbrs[2 * i + s] = lookup(q);
              ++operands;
            }
          }
        }
        ++operands;  // self operand
        value = rule(p, self_prev, nbrs);
      }
      leaf_vals_[w++] = value;
      ++executed;
      // One read per operand plus one result write, each f(S(leaf)):
      // streamed so the per-vertex addition order (and hence the
      // floating-point total) matches a charge() call per vertex.
      la.add_cost(static_cast<core::Cost>(operands + 1) * f_leaf);
      la_events += static_cast<std::uint64_t>(operands + 1);
    });
    la.add_events(la_events);
    // Unit compute per vertex: integer-valued, so one batched charge is
    // bit-identical to `executed` unit charges.
    ledger_->charge(core::CostKind::kCompute,
                    static_cast<core::Cost>(executed),
                    static_cast<std::uint64_t>(executed));
    vertices_ += executed;

    U.outset_visit([&](const geom::Point<D>& q) {
      store_insert(staging, q, leaf_vals_[leaf_slot(U, tmin, q)]);
    });
    if (cfg_.validate) validate_outset(U, staging);
  }

  const Guest<D>* guest_;
  ExecutorConfig cfg_;
  core::CostLedger* ledger_ = nullptr;
  std::int64_t vertices_ = 0;
  std::size_t peak_staging_ = 0;
  // Leaf scratch, reused across leaves so a steady-state execution
  // performs no per-leaf allocation.
  std::vector<Word> leaf_vals_;
  std::vector<std::size_t> leaf_off_;
};

}  // namespace bsmp::sep
