// Planner: emits the Schedule IR for the uniprocessor divide-and-
// conquer simulation (Theorems 2/3/5) — the same recursion as
// sep::Executor, but producing operations instead of charging costs.
// By construction, cost_under(host access fn) of the emitted schedule
// equals the Executor's charged time exactly; a test pins that down.
#pragma once

#include "core/expect.hpp"
#include "geom/tiling.hpp"
#include "sched/schedule.hpp"
#include "sep/executor.hpp"

namespace bsmp::sched {

template <int D>
struct PlannerConfig {
  std::int64_t tile_width = 1;
  std::int64_t leaf_width = 1;
  double space_const = 6.0;
  double leaf_space_const = 2.0;
  /// Address scale of the machine-level tile handoffs (total memory).
  double machine_scale = 1.0;
};

template <int D>
class Planner {
 public:
  Planner(const geom::Stencil<D>* st, PlannerConfig<D> cfg)
      : st_(st), cfg_(cfg) {
    BSMP_REQUIRE(st != nullptr);
    BSMP_REQUIRE(cfg.tile_width >= 1 && cfg.leaf_width >= 1);
  }

  double space_bound(std::int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<std::int64_t>(st_->reach(), width));
    double s = cfg_.space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  double leaf_space_bound(std::int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<std::int64_t>(st_->reach(), width));
    double s = cfg_.leaf_space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Plan the whole computation: wavefront tiles, recursive splits,
  /// leaf executions — one op stream in a valid execution order.
  Schedule<D> plan() const {
    Schedule<D> sched;
    geom::TileGrid<D> grid(st_, cfg_.tile_width);
    for (const auto& wave : grid.wavefronts()) {
      for (const auto& tile : wave) {
        emit_copy(sched, OpKind::kCopyIn,
                  static_cast<std::int64_t>(tile.preboundary().size()),
                  cfg_.machine_scale);
        plan_region(sched, tile);
        emit_copy(sched, OpKind::kCopyOut,
                  static_cast<std::int64_t>(tile.outset().size()),
                  cfg_.machine_scale);
      }
    }
    return sched;
  }

  /// Plan one convex domain (the recursion of Proposition 2 without
  /// the machine-level handoffs). Public so parallel planners can emit
  /// per-subtile plans (Regime 2 of Theorem 4).
  void plan_region(Schedule<D>& sched, const geom::Region<D>& u) const {
    if (u.width() <= cfg_.leaf_width) {
      Op<D> op;
      op.kind = OpKind::kLeaf;
      op.leaf_lo = u.lo();
      op.leaf_hi = u.hi();
      op.addr_scale = leaf_space_bound(u.width());
      sched.push(op);
      return;
    }
    const double scale = space_bound(u.width());
    for (const geom::Region<D>& child : u.split()) {
      emit_copy(sched, OpKind::kCopyIn,
                static_cast<std::int64_t>(child.preboundary().size()),
                scale);
      plan_region(sched, child);
      emit_copy(sched, OpKind::kCopyOut,
                static_cast<std::int64_t>(child.outset().size()), scale);
    }
  }

 private:
  void emit_copy(Schedule<D>& sched, OpKind kind, std::int64_t words,
                 double scale) const {
    if (words == 0) return;
    Op<D> op;
    op.kind = kind;
    op.words = words;
    op.addr_scale = scale;
    sched.push(op);
  }

  const geom::Stencil<D>* st_;
  PlannerConfig<D> cfg_;
};

}  // namespace bsmp::sched
