// engine::Arena + epoch-slabbed StagingStore property tests.
//
// The contract under test: the arena changes *where* slab and scratch
// memory comes from, never what is computed. Recycled slabs carry
// stale bytes by design; the epoch liveness marks must make every
// read/insert/erase/iteration sequence byte-identical to the cold
// (BSMP_ARENA=off) path, and the slab-allocation metric must not see
// the difference either.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "engine/arena.hpp"
#include "geom/lattice.hpp"
#include "sep/staging.hpp"

using namespace bsmp;
using engine::Arena;
using engine::ArenaStats;
using sep::Word;

namespace {

/// Pin the arena switch for a test body and restore it after.
class ArenaGuard {
 public:
  explicit ArenaGuard(bool on) : saved_(engine::arena_enabled()) {
    engine::set_arena_enabled(on);
  }
  ~ArenaGuard() { engine::set_arena_enabled(saved_); }

 private:
  bool saved_;
};

geom::Stencil<1> stencil1(std::int64_t w, std::int64_t horizon,
                          std::int64_t m = 1) {
  geom::Stencil<1> st;
  st.extent = {w};
  st.horizon = horizon;
  st.m = m;
  return st;
}

geom::Point<1> pt(std::int64_t x, std::int64_t t) {
  geom::Point<1> p;
  p.x = {x};
  p.t = t;
  return p;
}

/// A scratch type that records clears and keeps capacity, mirroring
/// what ChargeLog / phase logs do.
struct Probe {
  std::vector<int> data;
  int clears = 0;
  void clear() {
    data.clear();
    ++clears;
  }
};

}  // namespace

TEST(Arena, AcquireReusesReleasedBlocksOfTheSameClass) {
  ArenaGuard on(true);
  Arena& a = Arena::instance();
  const ArenaStats before = a.stats();

  Arena::Block b1 = a.acquire(1000);
  ASSERT_TRUE(b1);
  EXPECT_GE(b1.bytes, 1000u);
  void* data = b1.data;
  a.release(std::move(b1));

  // Same size class: the pooled slab comes back, marked recycled.
  Arena::Block b2 = a.acquire(700);
  ASSERT_TRUE(b2);
  EXPECT_EQ(b2.data, data);
  EXPECT_TRUE(b2.recycled);
  a.release(std::move(b2));

  const ArenaStats after = a.stats() - before;
  EXPECT_GE(after.slab_reuses, 1u);
  EXPECT_EQ(after.releases, 2u);
}

TEST(Arena, ZeroByteAcquireIsNull) {
  Arena::Block b = Arena::instance().acquire(0);
  EXPECT_FALSE(b);
  Arena::instance().release(std::move(b));  // null release is a no-op
}

TEST(Arena, DisabledArenaNeverRecycles) {
  ArenaGuard off(false);
  Arena& a = Arena::instance();
  const ArenaStats before = a.stats();
  Arena::Block b1 = a.acquire(256);
  ASSERT_TRUE(b1);
  a.release(std::move(b1));
  Arena::Block b2 = a.acquire(256);
  ASSERT_TRUE(b2);
  EXPECT_FALSE(b2.recycled);
  a.release(std::move(b2));
  const ArenaStats after = a.stats() - before;
  EXPECT_EQ(after.cold_allocs, 2u);
  EXPECT_EQ(after.slab_reuses, 0u);
}

TEST(Arena, TrimDropsPooledBytes) {
  ArenaGuard on(true);
  Arena& a = Arena::instance();
  Arena::Block b = a.acquire(4096);
  ASSERT_TRUE(b);
  a.release(std::move(b));
  a.trim();
  EXPECT_EQ(a.stats().bytes_held, 0u);
}

TEST(Arena, ScratchReusesClearedObjectsOnOneThread) {
  ArenaGuard on(true);
  int* first = nullptr;
  {
    engine::Scratch<Probe> s;
    s->data.assign(100, 7);
    first = s->data.data();
  }
  {
    engine::Scratch<Probe> s;
    // Recycled: cleared but with its buffer (and clear count) intact.
    EXPECT_TRUE(s->data.empty());
    EXPECT_EQ(s->clears, 1);
    EXPECT_GE(s->data.capacity(), 100u);
    s->data.push_back(1);
    EXPECT_EQ(s->data.data(), first);
  }
}

TEST(Arena, ScratchColdWhenDisabled) {
  ArenaGuard off(false);
  { engine::Scratch<Probe> s; s->data.assign(8, 3); }
  engine::Scratch<Probe> s;
  EXPECT_EQ(s->clears, 0);  // fresh object, not a pooled one
  EXPECT_TRUE(s->data.empty());
}

TEST(Arena, StatsCountScratchTraffic) {
  ArenaGuard on(true);
  // Drain any pooled Probes so the first checkout below is
  // deterministic about hitting the pool.
  { engine::Scratch<Probe> warm; (void)warm; }
  const ArenaStats before = Arena::instance().stats();
  { engine::Scratch<Probe> s; (void)s; }
  const ArenaStats after = Arena::instance().stats() - before;
  EXPECT_EQ(after.scratch_checkouts + after.scratch_cold, 1u);
}

// ---------------------------------------------------------------------
// StagingStore on recycled slabs.
// ---------------------------------------------------------------------

TEST(StagingArena, RecycledLevelDoesNotResurrectValues) {
  ArenaGuard on(true);
  auto st = stencil1(16, 8);
  sep::StagingStore<1> s(&st);

  for (std::int64_t x = 0; x < 16; ++x) s.insert(pt(x, 0), Word(100 + x));
  EXPECT_EQ(s.size(), 16u);

  // Retire level 0 and re-materialize it from the store's own recycle
  // stack: every old value must read as absent.
  s.prune_below(1, 8);
  EXPECT_EQ(s.size(), 0u);
  s.insert(pt(3, 0), Word(1));
  for (std::int64_t x = 0; x < 16; ++x) {
    const Word* v = s.find(pt(x, 0));
    if (x == 3) {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, Word(1));
    } else {
      EXPECT_EQ(v, nullptr) << "stale value resurrected at x=" << x;
    }
  }
}

TEST(StagingArena, EpochWrapStaysSound) {
  ArenaGuard on(true);
  auto st = stencil1(4, 2);
  sep::StagingStore<1> s(&st);
  // 300 retire/reuse rounds pushes the 8-bit epoch through its wrap;
  // liveness must never alias an old epoch's marks.
  for (int round = 0; round < 300; ++round) {
    s.insert(pt(round % 4, 0), Word(round));
    s.prune_below(1, 2);
  }
  EXPECT_EQ(s.size(), 0u);
  for (std::int64_t x = 0; x < 4; ++x) EXPECT_EQ(s.find(pt(x, 0)), nullptr);
  s.insert(pt(2, 0), Word(9));
  EXPECT_EQ(s.size(), 1u);
  std::size_t visited = 0;
  s.for_each([&](const geom::Point<1>& p, Word v) {
    ++visited;
    EXPECT_EQ(p, pt(2, 0));
    EXPECT_EQ(v, Word(9));
  });
  EXPECT_EQ(visited, 1u);
}

TEST(StagingArena, LevelAllocsIdenticalArenaOnAndOff) {
  auto st = stencil1(32, 6, 2);
  auto run = [&st] {
    sep::StagingStore<1> s(&st);
    for (std::int64_t t = 0; t < 6; ++t)
      for (std::int64_t x = 0; x < 32; x += 3) s.insert(pt(x, t), Word(x + t));
    s.prune_below(3, 6);
    for (std::int64_t x = 0; x < 32; ++x) s.insert(pt(x, 1), Word(x));
    return s.level_allocs();
  };
  std::size_t allocs_on, allocs_off;
  {
    ArenaGuard on(true);
    allocs_on = run();
  }
  {
    ArenaGuard off(false);
    allocs_off = run();
  }
  // 6 initial materializations + 1 re-materialization of level 1.
  EXPECT_EQ(allocs_on, 7u);
  EXPECT_EQ(allocs_off, allocs_on);
}

TEST(StagingArena, ContentsIdenticalArenaOnAndOff) {
  auto st = stencil1(24, 5, 2);
  auto run = [&st] {
    sep::StagingStore<1> s(&st);
    for (std::int64_t t = 0; t < 5; ++t)
      for (std::int64_t x = 0; x < 24; ++x)
        s.insert(pt(x, t), Word(1000 * t + x));
    for (std::int64_t x = 0; x < 24; x += 2) s.erase(pt(x, 2));
    s.prune_below(2, 5);
    s.insert(pt(5, 0), Word(77));
    std::vector<std::pair<geom::Point<1>, Word>> out;
    s.for_each([&](const geom::Point<1>& p, Word v) {
      out.emplace_back(p, v);
    });
    return out;
  };
  std::vector<std::pair<geom::Point<1>, Word>> got_on, got_off;
  {
    ArenaGuard on(true);
    got_on = run();
  }
  {
    ArenaGuard off(false);
    got_off = run();
  }
  EXPECT_EQ(got_on, got_off);
}

TEST(StagingArena, ResetForReuseAndRebindForgetEverything) {
  ArenaGuard on(true);
  auto st = stencil1(8, 4);
  sep::StagingStore<1> s(&st);
  for (std::int64_t t = 0; t < 4; ++t) s.insert(pt(t, t), Word(t));
  s.reset_for_reuse();

  auto st2 = stencil1(8, 4, 3);  // same layout, different m: rebindable
  ASSERT_TRUE(s.try_rebind(&st2));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.level_allocs(), 0u);
  for (std::int64_t t = 0; t < 4; ++t) EXPECT_EQ(s.find(pt(t, t)), nullptr);

  // Slabs stayed bound through the reset: re-inserting into a
  // previously-present level is a pure epoch reuse, not an allocation.
  // (Shard-local allocs never feed the hot-path metric — see
  // store_level_allocs(StagingShard) — so the count tracks real slab
  // materializations only.)
  s.insert(pt(0, 0), Word(5));
  EXPECT_EQ(s.level_allocs(), 0u);
  ASSERT_NE(s.find(pt(0, 0)), nullptr);
  EXPECT_EQ(*s.find(pt(0, 0)), Word(5));
}

TEST(StagingArena, RebindRejectsDifferentGeometry) {
  ArenaGuard on(true);
  auto st = stencil1(8, 4);
  sep::StagingStore<1> s(&st);
  s.reset_for_reuse();
  auto narrower = stencil1(4, 4);
  auto shorter = stencil1(8, 3);
  EXPECT_FALSE(s.try_rebind(&narrower));
  EXPECT_FALSE(s.try_rebind(&shorter));
}

TEST(StagingArena, ShardMergeKeepsLevelAllocsEqualPooledAndCold) {
  // The pre-allocation accounting contract: a shard merged into a base
  // store pre-touches every level it ever wrote, and the base's
  // level_allocs() must be the same whether the shard's local store
  // was pooled (arena on, possibly recycled) or cold.
  auto st = stencil1(16, 6, 2);
  auto run = [&st] {
    sep::StagingStore<1> base(&st);
    base.insert(pt(0, 0), Word(1));
    for (int round = 0; round < 3; ++round) {
      sep::StagingShard<1, sep::StagingStore<1>> shard(sep::overlay, base);
      shard.insert(pt(1, 1), Word(10 + round));
      shard.insert(pt(2, 4), Word(20 + round));
      // An insert erased again still pre-touches its level on merge.
      shard.insert(pt(3, 5), Word(30 + round));
      shard.erase(pt(3, 5));
      EXPECT_EQ(sep::store_level_allocs(shard), 0u);
      shard.merge_into(base);
    }
    return std::make_pair(base.level_allocs(), base.size());
  };
  std::pair<std::size_t, std::size_t> on, off;
  {
    ArenaGuard g(true);
    on = run();
  }
  {
    ArenaGuard g(false);
    off = run();
  }
  EXPECT_EQ(on, off);
  // Levels 0, 1, 4 and 5 materialized exactly once each.
  EXPECT_EQ(on.first, 4u);
  EXPECT_EQ(on.second, 3u);  // (0,0), (1,1), (2,4)
}

TEST(StagingArena, MoveTransfersSlabs) {
  ArenaGuard on(true);
  auto st = stencil1(8, 2);
  sep::StagingStore<1> a(&st);
  a.insert(pt(1, 0), Word(4));
  sep::StagingStore<1> b(std::move(a));
  ASSERT_NE(b.find(pt(1, 0)), nullptr);
  EXPECT_EQ(*b.find(pt(1, 0)), Word(4));
  EXPECT_EQ(b.size(), 1u);

  sep::StagingStore<1> c(&st);
  c = std::move(b);
  ASSERT_NE(c.find(pt(1, 0)), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(StagingArena, CrossThreadReleaseIsSafe) {
  ArenaGuard on(true);
  auto st = stencil1(64, 4);
  // Materialize on one thread, destroy (release into the pool) on
  // another, then reuse from a third. TSan/ASan legs make this a real
  // race check, not just a smoke test.
  auto holder = std::make_unique<sep::StagingStore<1>>(&st);
  std::thread t1([&] {
    for (std::int64_t t = 0; t < 4; ++t)
      holder->insert(pt(t, t), Word(t));
  });
  t1.join();
  std::thread t2([&] { holder.reset(); });
  t2.join();
  std::thread t3([&] {
    sep::StagingStore<1> s(&st);
    for (std::int64_t t = 0; t < 4; ++t) {
      s.insert(pt(t + 1, t), Word(9));
      EXPECT_EQ(s.find(pt(t, t)), nullptr) << "recycled slab leaked a value";
    }
    EXPECT_EQ(s.size(), 4u);
  });
  t3.join();
}
