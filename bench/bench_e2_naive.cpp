// E2 — Proposition 1: the naive simulation. Md(n,1,m) simulates
// Md(n,n,m) with slowdown Θ(n^(1+1/d)), independent of m; with p
// processors the slowdown is Θ((n/p)^(1+1/d)).
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  {
    core::Table t("E2a: naive slowdown vs n (d=1, p=1) — Prop. 1",
                  {"n", "m", "Tp/Tn", "bound n^2", "ratio"});
    for (std::int64_t n : {32, 64, 128, 256}) {
      for (std::int64_t m : {1, 8}) {
        auto g = workload::make_mix_guest<1>({n}, 16, m, 1);
        auto ref = sim::reference_run<1>(g);
        auto res = sim::simulate_naive<1>(g, spec(1, n, 1, m));
        bench::require_equivalent<1>(res, ref, "naive d=1");
        double bound = analytic::naive_bound(1, (double)n, (double)m, 1);
        t.add_row({(long long)n, (long long)m, res.slowdown(), bound,
                   res.slowdown() / bound});
      }
    }
    t.print(std::cout);
    std::cout << "# ratio flat in n and m: slowdown is Θ(n^2), "
                 "independent of m.\n\n";
  }
  {
    core::Table t("E2b: naive slowdown vs n (d=2, p=1) — Prop. 1",
                  {"n", "Tp/Tn", "bound n^1.5", "ratio"});
    for (std::int64_t side : {8, 16, 32}) {
      std::int64_t n = side * side;
      auto g = workload::make_mix_guest<2>({side, side}, 8, 1, 2);
      auto ref = sim::reference_run<2>(g);
      auto res = sim::simulate_naive<2>(g, spec(2, n, 1, 1));
      bench::require_equivalent<2>(res, ref, "naive d=2");
      double bound = analytic::naive_bound(2, (double)n, 1, 1);
      t.add_row({(long long)n, res.slowdown(), bound,
                 res.slowdown() / bound});
    }
    t.print(std::cout);
    std::cout << "# d=2: slowdown Θ(n^(3/2)).\n\n";
  }
  {
    core::Table t("E2c: naive slowdown vs p (d=1, n=256)",
                  {"p", "Tp/Tn", "bound (n/p)^2", "ratio"});
    std::int64_t n = 256;
    auto g = workload::make_mix_guest<1>({n}, 16, 1, 3);
    auto ref = sim::reference_run<1>(g);
    for (std::int64_t p : {1, 4, 16, 64}) {
      auto res = sim::simulate_naive<1>(g, spec(1, n, p, 1));
      bench::require_equivalent<1>(res, ref, "naive d=1 p");
      double bound = analytic::naive_bound(1, (double)n, 1, (double)p);
      t.add_row({(long long)p, res.slowdown(), bound,
                 res.slowdown() / bound});
    }
    t.print(std::cout);
    std::cout << "# parallel naive: Θ((n/p)^2).\n\n";
  }
}

void BM_naive_d1(benchmark::State& state) {
  std::int64_t n = state.range(0);
  auto g = workload::make_mix_guest<1>({n}, 8, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_naive<1>(g, spec(1, n, 1, 1)));
}
BENCHMARK(BM_naive_d1)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BSMP_BENCH_MAIN(emit)
