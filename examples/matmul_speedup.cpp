// The paper's introductory example: superlinear speedup of the mesh
// over the uniprocessor for matrix multiplication under bounded-speed
// message propagation.
//
// Multiplies two sqrt(n) x sqrt(n) matrices (real values, verified) on:
//   * the sqrt(n) x sqrt(n) mesh (systolic / Cannon): Θ(sqrt(n));
//   * a uniprocessor H-RAM, row-major naive: Θ(n^2);
//   * the same H-RAM with AACS87 recursive blocking: Θ(n^(3/2) log n).
//
//   $ ./matmul_speedup
#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/logmath.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "workload/matmul.hpp"

using namespace bsmp;

int main() {
  core::Table table(
      "matrix multiply under the limiting technology (d=2, m=1)",
      {"n", "mesh", "hram-naive", "hram-blocked", "speedup vs naive",
       "speedup vs blocked", "speedup/n"});
  for (std::int64_t side : {8, 16, 32, 64}) {
    std::int64_t n = side * side;
    core::SplitMix64 rng(7);
    std::vector<hram::Word> a(n), b(n);
    for (auto& v : a) v = rng.next();
    for (auto& v : b) v = rng.next();

    auto mesh = workload::matmul_mesh_systolic(side, a, b);
    auto naive = workload::matmul_hram_naive(side, a, b);
    auto blocked = workload::matmul_hram_blocked(side, a, b);
    if (mesh.c != naive.c || mesh.c != blocked.c) {
      std::cerr << "BUG: products disagree\n";
      return 1;
    }
    double sp_naive = naive.time / mesh.time;
    double sp_blocked = blocked.time / mesh.time;
    table.add_row({(long long)n, mesh.time, naive.time, blocked.time,
                   sp_naive, sp_blocked,
                   sp_blocked / static_cast<double>(n)});
  }
  table.print(std::cout);
  std::cout
      << "\nThe mesh has n processors; its speedup over the *best*\n"
         "uniprocessor grows like n log n — superlinear in n. Under the\n"
         "instantaneous model the same comparison caps at n (Brent).\n";
  return 0;
}
