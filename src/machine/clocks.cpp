#include "machine/clocks.hpp"

#include <algorithm>

#include "core/expect.hpp"

namespace bsmp::machine {

ProcClocks::ProcClocks(std::int64_t p) {
  BSMP_REQUIRE(p >= 1);
  clock_.assign(static_cast<std::size_t>(p), 0.0);
}

void ProcClocks::advance(std::int64_t i, core::Cost c) {
  BSMP_REQUIRE(i >= 0 && i < num_procs());
  BSMP_REQUIRE_MSG(c >= 0.0, "clock cannot go backwards");
  clock_[static_cast<std::size_t>(i)] += c;
  busy_ += c;
}

core::Cost ProcClocks::barrier() {
  core::Cost mx = makespan();
  core::Cost prev_min = *std::min_element(clock_.begin(), clock_.end());
  for (auto& c : clock_) c = mx;
  return mx - prev_min;
}

core::Cost ProcClocks::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

double ProcClocks::utilization() const {
  core::Cost ms = makespan();
  if (ms <= 0.0) return 1.0;
  return busy_ / (static_cast<double>(num_procs()) * ms);
}

core::Cost ProcClocks::clock(std::int64_t i) const {
  BSMP_REQUIRE(i >= 0 && i < num_procs());
  return clock_[static_cast<std::size_t>(i)];
}

}  // namespace bsmp::machine
