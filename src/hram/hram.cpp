#include "hram/hram.hpp"

#include "core/expect.hpp"

namespace bsmp::hram {

HRam::HRam(std::size_t size, AccessFn f, bool pipelined)
    : mem_(size, 0), f_(f), pipelined_(pipelined) {
  BSMP_REQUIRE(size >= 1);
}

void HRam::note_addr(std::size_t addr) {
  BSMP_REQUIRE_MSG(addr < mem_.size(),
                   "H-RAM address " << addr << " out of range (size "
                                    << mem_.size() << ")");
  if (addr > peak_addr_) peak_addr_ = addr;
}

Word HRam::read(std::size_t addr) {
  note_addr(addr);
  ledger_.charge(core::CostKind::kLocalAccess, f_(addr));
  return mem_[addr];
}

void HRam::write(std::size_t addr, Word value) {
  note_addr(addr);
  ledger_.charge(core::CostKind::kLocalAccess, f_(addr));
  mem_[addr] = value;
}

core::Cost HRam::touch(std::size_t addr) {
  note_addr(addr);
  core::Cost c = f_(addr);
  ledger_.charge(core::CostKind::kLocalAccess, c);
  return c;
}

core::Cost HRam::touch_block(std::size_t max_addr, std::size_t len) {
  if (len == 0) return 0.0;
  note_addr(max_addr);
  core::Cost c = pipelined_ ? f_.block_pipelined(max_addr, len)
                            : f_.block(max_addr, len);
  ledger_.charge(core::CostKind::kBlockMove, c, len);
  return c;
}

void HRam::block_copy(std::size_t src, std::size_t dst, std::size_t len) {
  if (len == 0) return;
  note_addr(src + len - 1);
  note_addr(dst + len - 1);
  std::size_t max_addr = std::max(src, dst) + len - 1;
  core::Cost c = pipelined_ ? 2.0 * f_.block_pipelined(max_addr, len)
                            : 2.0 * f_.block(max_addr, len);
  ledger_.charge(core::CostKind::kBlockMove, c, len);
  for (std::size_t i = 0; i < len; ++i) mem_[dst + i] = mem_[src + i];
}

}  // namespace bsmp::hram
