#include "sep/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bsmp::sep::simd {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("BSMP_SIMD");
    if (env == nullptr) return true;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
           std::strcmp(env, "scalar") != 0;
  }();
  return flag;
}

/// Best ISA among the compiled kernel clones that this CPU supports.
/// Mirrors the loader's IFUNC resolution: the GCC clone list tops out
/// at x86-64-v4, clang's at AVX2, and a -DBSMP_SIMD=OFF build has no
/// clones at all.
const char* detect_isa() {
#if !BSMP_SIMD_ENABLED
  return "scalar";
#elif defined(__x86_64__)
  __builtin_cpu_init();
#if defined(__GNUC__) && !defined(__clang__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl"))
    return "avx512";
#endif
  if (__builtin_cpu_supports("avx2")) return "avx2";
  return "sse2";
#elif defined(__aarch64__)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

const char* active_isa() {
  if (!enabled()) return "scalar";
  static const char* isa = detect_isa();
  return isa;
}

int lane_width() {
  const char* isa = active_isa();
  if (std::strcmp(isa, "avx512") == 0) return 8;
  if (std::strcmp(isa, "avx2") == 0) return 4;
  if (std::strcmp(isa, "sse2") == 0 || std::strcmp(isa, "neon") == 0)
    return 2;
  return 1;
}

}  // namespace bsmp::sep::simd
