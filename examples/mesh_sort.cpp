// Shearsort on the mesh, simulated by machines with fewer processors.
//
// Sorting is the classic mesh workload: side x side values sort into
// snake order in Θ(side log side) mesh steps. We run it as a guest
// computation, simulate the guest on hosts with p = 1..n processors,
// verify every host produced the *sorted* result, and compare the
// measured slowdowns with Theorem 1.
//
//   $ ./mesh_sort [side]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analytic/tradeoff.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

int main(int argc, char** argv) {
  std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 8;
  if (side < 2 || !core::is_square(side * side)) {
    std::cerr << "usage: mesh_sort [side >= 2]\n";
    return 2;
  }
  const std::int64_t n = side * side;
  const std::int64_t T = 1 + workload::shearsort_phases(side) * side;

  sep::Guest<2> guest;
  guest.stencil = geom::Stencil<2>{{side, side}, T, 1};
  guest.rule = workload::shearsort_rule(side);
  guest.input = [side](const std::array<int64_t, 2>& x,
                       int64_t) -> sep::Word {
    core::SplitMix64 rng(static_cast<std::uint64_t>(x[0] * side + x[1]));
    return rng.next_below(900) + 100;
  };

  std::vector<sep::Word> want;
  for (std::int64_t r = 0; r < side; ++r)
    for (std::int64_t c = 0; c < side; ++c)
      want.push_back(guest.input({r, c}, 0));
  std::sort(want.begin(), want.end());

  auto sorted_ok = [&](const sep::ValueMap<2>& fin) {
    for (std::int64_t r = 0; r < side; ++r)
      for (std::int64_t c = 0; c < side; ++c) {
        auto rank = workload::snake_rank(side, r, c);
        if (fin.at(geom::Point<2>{{r, c}, T - 1}) != want[rank])
          return false;
      }
    return true;
  };

  std::cout << "shearsort of " << n << " values: " << T - 1
            << " mesh steps (" << workload::shearsort_phases(side)
            << " phases)\n\n";

  core::Table t("simulating the sorting mesh M2(n,n,1) on M2(n,p,1)",
                {"p", "scheme", "Tp/Tn", "bound (n/p)A", "sorted?"});
  for (std::int64_t p = 1; p <= n; p *= 4) {
    machine::MachineSpec host{2, n, p, 1};
    sim::SimResult<2> res;
    std::string scheme;
    if (p == 1) {
      res = sim::simulate_dc_uniproc<2>(guest, host);
      scheme = "D&C (Thm 5)";
    } else if (p == n) {
      res = sim::reference_run<2>(guest);
      scheme = "the mesh itself";
    } else {
      sim::MultiprocConfig cfg;
      cfg.s = std::max<std::int64_t>(1, side / (2 * host.proc_side()));
      res = sim::simulate_multiproc<2>(guest, host, cfg);
      scheme = "2-regime (Thm 1)";
    }
    bool ok = sorted_ok(res.final_values);
    t.add_row({(long long)p, scheme, res.slowdown(),
               analytic::slowdown_bound(2, (double)n, 1, (double)p),
               std::string(ok ? "yes" : "NO — BUG")});
    if (!ok) {
      t.print(std::cout);
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery host sorted the data correctly; fewer processors\n"
               "pay the parallelism factor n/p *and* the locality factor\n"
               "A — the paper's tradeoff, on a real algorithm.\n";
  return 0;
}
