// engine::Metrics — the observability layer under the sweep engine.
//
// The determinism contract (sweep.hpp) makes every table a pure
// function of its parameters; this sink records what the engine *did*
// to produce it — per-point wall clock and queue wait, whole-sweep
// wall clock, pool occupancy, and PlanCache hit/miss/build accounting
// — so the threads=1 vs threads=N speedup and hit-rate story is a
// serialized artifact (`metrics_<name>.json`) next to the tables, not
// a printout. Timing values are observational and vary run to run;
// only the *schema* and the structural fields (labels, point counts,
// pass layout) are stable, and those are what the conformance suite
// pins.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "engine/arena.hpp"
#include "engine/attribution.hpp"
#include "engine/plan_cache.hpp"
#include "engine/task.hpp"
#include "engine/trace.hpp"

namespace bsmp::engine {

/// One sweep point's execution record, stored at the point's index so
/// the vector is in point order regardless of which thread ran what.
struct PointMetric {
  std::size_t index = 0;    ///< the point's position in the sweep
  double queue_wait_s = 0;  ///< sweep submission → point start
  double run_s = 0;         ///< point start → point finish
};

/// Aggregate record of one Sweep::run() call.
struct SweepMetric {
  std::string label;        ///< caller-supplied sweep label (may be empty)
  std::size_t points = 0;   ///< number of sweep points
  int pool_threads = 1;     ///< executors of the pool that ran the sweep
  double wall_s = 0;        ///< whole-sweep wall clock
  /// Fork-join counters attributable to *this* sweep: the scheduler
  /// delta from sweep start to sweep end. Exact when sweeps on one
  /// pool do not overlap (they never do in the emitters); concurrent
  /// sweeps would each absorb the other's forks.
  TaskStats tasks;
  std::vector<PointMetric> per_point;  ///< in point order

  /// Total compute time across points (sum of run_s).
  double busy_s() const;
  /// Fraction of the pool's capacity the sweep kept busy:
  /// busy_s / (wall_s * pool_threads). 1.0 is a perfectly packed pool;
  /// timing noise can push it slightly above.
  double occupancy() const;
};

/// One executor hot-path section: what a simulator's inner loop did —
/// vertices and throughput, peak live staging words, staging slab
/// allocations. Recorded by the simulators (sim/dc_uniproc,
/// sim/multiproc, sim/naive) when handed a Metrics sink; timing fields
/// are observational, the structural fields (label, vertices, words)
/// are deterministic.
struct HotPathMetric {
  std::string label;               ///< caller-supplied section label
  std::int64_t vertices = 0;       ///< dag vertices executed
  double seconds = 0;              ///< wall clock of the section
  std::size_t peak_staging_words = 0;  ///< high-water live staging words
  std::size_t staging_allocs = 0;  ///< staging slab allocations
  /// Scenario lanes carried per charged vertex: sep::kLanes for a
  /// batched guest (bit-sliced or SoA), 1 for a scalar run.
  int lanes = 1;
  /// SIMD leaf-kernel dispatch of the section: the ISA name from
  /// sep::simd::active_isa() ("avx512"/"avx2"/"sse2"/"neon"), or
  /// "scalar" when the section ran the per-vertex loop (no row kernel,
  /// or BSMP_SIMD off). Observational, like the timing fields.
  std::string simd_isa = "scalar";
  /// 64-bit lanes per vector op of simd_isa (sep::simd::lane_width());
  /// 1 for scalar sections. Distinct from `lanes`, which counts
  /// *scenarios* per charged vertex, not words per instruction.
  int simd_lanes = 1;

  /// Throughput; 0 when the section was too fast to time.
  double vertices_per_sec() const {
    return seconds > 0 ? static_cast<double>(vertices) / seconds : 0.0;
  }

  /// Scenario throughput: lanes independent scenarios ride every
  /// charged vertex, so this is lanes * vertices_per_sec.
  double scenarios_per_sec() const {
    return static_cast<double>(lanes) * vertices_per_sec();
  }
};

/// One calibration-grid point's measured per-mechanism decomposition,
/// recorded by tables::calibration and serialized into the metrics-v3
/// `attribution.calibration_points` array so `bsmp-stat fit` can
/// derive per-mechanism constants from the artifact alone. The slow_*
/// fields split the measured slowdown by the virtual-time cost ledger
/// (slow_k = slowdown * cost_k / sum of mechanism costs); the term_*
/// fields are the advisor model's per-mechanism predictor terms at the
/// same (n, m, p). The `range` string names the analytic tradeoff
/// range the point falls in (analytic::classify_range), kept as text
/// so engine stays independent of analytic. Deterministic: the values
/// come from the simulator's cost ledger, not the wall clock.
struct CalibrationSample {
  int n = 0, m = 0, p = 0;  ///< grid point
  double s = 0;             ///< feasible window length the model chose
  std::string range;        ///< analytic tradeoff range ("1".."4")
  bool holdout = false;     ///< excluded from training fits
  double slowdown = 0;      ///< measured time / guest_time
  double slow_reloc = 0;    ///< relocation share of the slowdown
  double slow_exec = 0;     ///< execution (compute+local) share
  double slow_comm = 0;     ///< communication share
  double term_reloc = 0;    ///< model term: (n/p)*A_relocation
  double term_exec = 0;     ///< model term: (n/p)*A_execution
  double term_comm = 0;     ///< model term: (n/p)*A_communication
};

/// Thread-safe sink the engine reports into. Hand one to
/// SweepOptions::metrics (or tables::EngineCtx::metrics) and every
/// sweep that runs appends one SweepMetric; snapshot() hands them back
/// for serialization into a MetricsReport. Simulators additionally
/// append HotPathMetric records via record_hot.
class Metrics {
 public:
  /// Append one sweep record (called by Sweep::run on completion).
  void record(SweepMetric m);

  /// Copy of all records so far, in recording order.
  std::vector<SweepMetric> snapshot() const;

  /// Number of sweeps recorded so far.
  std::size_t num_sweeps() const;

  /// Append one executor hot-path record (called by the simulators).
  void record_hot(HotPathMetric m);

  /// Copy of all hot-path records so far, in recording order.
  std::vector<HotPathMetric> hot_snapshot() const;

  /// Append one calibration-grid decomposition (tables::calibration;
  /// called from the emitter thread after the sweep, in point order,
  /// so the serialized array is deterministic).
  void record_calibration(CalibrationSample s);

  /// Copy of all calibration samples so far, in recording order.
  std::vector<CalibrationSample> calibration_snapshot() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SweepMetric> sweeps_;
  std::vector<HotPathMetric> hot_;
  std::vector<CalibrationSample> calibration_;
};

/// One emitter pass (one thread count, one fresh PlanCache) inside a
/// MetricsReport.
struct MetricsPass {
  int threads = 1;          ///< pool size of the pass
  double seconds = 0;       ///< whole-pass wall clock
  PlanCache::Stats cache;   ///< hit/miss/build/evict accounting of the pass
  TaskStats tasks;          ///< fork-join scheduler counters of the pass
  /// Arena and scratch-pool counter delta across the pass (monotone
  /// fields) with end-of-pass residency gauges — the "mem" block.
  ArenaStats mem;
  std::vector<SweepMetric> sweeps;  ///< every sweep the pass ran
  std::vector<HotPathMetric> hot;   ///< executor hot-path sections
  /// Per-phase span-duration and steal-latency histograms of the pass
  /// (engine::trace delta across the pass); all-zero when tracing is
  /// compiled out or disabled.
  trace::HistSnapshot histograms;
  /// Per-mechanism wall-clock self-time fold of the pass's trace spans
  /// (metrics-v3 `attribution`); empty when tracing is off.
  Attribution attribution;
  /// Calibration-grid per-mechanism decompositions recorded during the
  /// pass (metrics-v3 `attribution.calibration_points`); empty for
  /// non-calibration emitters.
  std::vector<CalibrationSample> calibration;
};

/// The `metrics_<name>.json` artifact: a named sequence of passes
/// (conventionally threads=1 then threads=N) with derived speedup.
/// Schema (stable, versioned by the "schema" field):
///
/// {
///   "schema": "bsmp-metrics-v3",
///   "name": "e6d",
///   "speedup": 1.02,
///   "manifest": { "name": "e6d", "git_sha": "6bd49c5...",
///                 "build_type": "Release", "compiler": "...",
///                 "hardware_threads": 8, "num_cpus": 8,
///                 "hostname": "ci-runner-3", "simd_isa": "avx2",
///                 "trace_compiled": 1,
///                 "trace_enabled": 0, "BSMP_TRACE": "unset", ... },
///   "passes": [
///     { "threads": 1, "seconds": 2.31,
///       "cache": {"hits": 93, "misses": 3, "builds": 3,
///                 "hit_rate": 0.968},
///       "tasks": {"spawned": 96, "inlined": 32, "stolen": 41,
///                 "steal_ops": 12, "join_waits": 7},
///       "sweeps": [
///         { "label": "e6d m=1", "points": 32, "pool_threads": 1,
///           "wall_s": 0.71, "busy_s": 0.70, "occupancy": 0.99,
///           "tasks": {"spawned": 12, "inlined": 4, "stolen": 5,
///                     "steal_ops": 2, "join_waits": 1},
///           "per_point": [ {"index": 0, "queue_wait_s": 0.0,
///                           "run_s": 0.02}, ... ] } ],
///       "hot": [
///         { "label": "dense d=1 w=512", "vertices": 262144,
///           "seconds": 0.05, "vertices_per_sec": 5242880,
///           "peak_staging_words": 1536, "staging_allocs": 514,
///           "lanes": 1, "scenarios_per_sec": 5242880,
///           "simd_isa": "scalar", "simd_lanes": 1 } ],
///       "histograms": {
///         "spans": { "sep-region": [[12, 3], [13, 41]], ... },
///         "steal_latency_ns": [[10, 7], [11, 2]] },
///       "attribution": {
///         "trusted": 1, "dropped": 0, "spans": 412,
///         "total_self_ns": 81234567, "critical_path_ns": 23456789,
///         "mechanisms": {
///           "compute": {"self_ns": 61234567, "spans": 380},
///           "relocation": {"self_ns": 9123456, "spans": 12}, ... },
///         "phases": {
///           "none": {"compute": 1234, ...},
///           "regime1-relocate": {"relocation": 9123456, ...}, ... },
///         "calibration_points": [
///           { "n": 64, "m": 4, "p": 4, "s": 16, "range": "2",
///             "holdout": 0, "slowdown": 81.2, "slow_reloc": 11.0,
///             "slow_exec": 66.1, "slow_comm": 4.1,
///             "term_reloc": 0.12, "term_exec": 0.88,
///             "term_comm": 0.04 } ] } } ]
/// }
///
/// v3 is a strict superset of bsmp-metrics-v2, which is a strict
/// superset of v1: every earlier field keeps its name, position and
/// meaning (pinned by the compat tests in tests/test_metrics.cpp).
/// v3 additions:
///   * manifest "num_cpus", "hostname", "simd_isa" — the hardware
///     identity of the producing host ("num_cpus" mirrors
///     "hardware_threads" under google-benchmark's name for it), so
///     `bsmp-stat diff` refuses cross-hardware comparisons.
///   * per-pass "attribution" — the per-mechanism wall-clock self-time
///     fold of the pass's trace spans (engine/attribution.hpp):
///     "mechanisms" maps mechanism name -> {"self_ns", "spans"}
///     (additive: self_ns sums to "total_self_ns"), "phases" maps
///     engine::ForkPhase name -> per-mechanism self-time of spans
///     under that phase, "critical_path_ns" is the max-duration
///     non-overlapping span chain, "trusted" is 0 when the recorder
///     dropped events during the pass (timeline truncated — consumers
///     must not gate on the numbers), and "calibration_points" (for
///     the `cal` emitter) carries the per-grid-point per-mechanism
///     slowdown decomposition `bsmp-stat fit` trains on. Mechanisms
///     with no spans and all-zero phase rows are omitted; the block
///     itself is omitted when the pass recorded no spans and no
///     calibration points.
/// v2 additions over v1:
///   * "manifest" — the run's provenance (engine::trace::RunManifest):
///     git SHA, build type, compiler, hardware threads, the tracing
///     state, and every BSMP_* env knob that shaped the run.
///   * per-sweep "tasks" — the fork-join counter delta of that sweep
///     alone, so a multi-sweep pass attributes its forks.
///   * per-pass "histograms" — log2-bucketed span-duration counts per
///     trace category plus the steal-latency histogram, as sparse
///     [bucket, count] pairs (bucket b covers [2^(b-1), 2^b) ns).
///     Omitted when tracing recorded nothing during the pass.
///   * per-hot "lanes" and "scenarios_per_sec" — the scenario lanes a
///     batched guest carried per charged vertex (1 for scalar runs)
///     and the derived lanes * vertices_per_sec throughput.
///   * per-hot "simd_isa" and "simd_lanes" — which SIMD dispatch the
///     section's leaf kernels took ("scalar" when the per-vertex loop
///     ran) and the 64-bit lanes per vector op of that ISA.
///   * per-tasks "phases" — the same fork-join counters split by the
///     forking mechanism (engine::ForkPhase: "machine-tile",
///     "regime1-relocate", "regime2-wave", "regime2-subtile",
///     "executor-leaf", "none" for unattributed scopes), each with
///     "spawned", "inlined", "join_waits" and "park_ns" (wall time
///     joins of that phase spent parked). Phases with all-zero
///     counters are omitted; the object itself is omitted when no
///     phase saw activity.
///   * per-cache "evictions" and "bytes" — the PlanCache LRU's
///     evictions during the pass and its resident plan_bytes total at
///     the end of it (BSMP_PLAN_CACHE_BYTES budget).
///   * per-pass "mem" — the engine::Arena delta of the pass:
///     {"cold_allocs", "slab_reuses", "releases", "scratch_checkouts",
///      "scratch_cold"} count slab and scratch-pool traffic,
///     {"bytes_held", "bytes_live", "peak_bytes"} are the end-of-pass
///     residency gauges (free-listed, checked-out, and the process
///     high-water of both). Present in every pass (all-zero when the
///     arena saw no traffic); BSMP_ARENA=off runs show cold_allocs
///     only.
/// The "hot" array carries the executor hot-path sections recorded via
/// Metrics::record_hot; it is empty for passes that ran no simulator
/// with a hot-metrics sink. The pass-level "tasks" object carries the
/// pass's fork-join scheduler counters (engine::TaskStats): tasks
/// pushed to worker deques, tasks executed inline, tasks taken by
/// steals, steal batches, and joins that had to sleep. All zero when
/// nothing forked — the counters are observational, like the timing
/// fields.
struct MetricsReport {
  std::string name;                 ///< emitter / bench name ("e6d")
  std::vector<MetricsPass> passes;  ///< in run order
  trace::RunManifest manifest;      ///< run provenance (v2)

  /// Wall-clock speedup of the last pass over the first (1.0 when
  /// fewer than two passes were recorded).
  double speedup() const;

  /// Serialize the report in the schema above.
  void write_json(std::ostream& os) const;

  /// write_json to `path`; false (no throw) when the file cannot be
  /// opened — metrics must never fail the measurement they observe.
  bool write_json_file(const std::string& path) const;
};

/// The canonical artifact filename for a report: "metrics_<name>.json".
std::string metrics_filename(const std::string& name);

/// Directory every metrics/trace artifact lands in: the BSMP_METRICS_DIR
/// env knob, default "metrics" (relative to the CWD).
std::string metrics_dir();

/// Create metrics_dir() if missing; false (no throw) on failure.
bool ensure_metrics_dir();

/// "<metrics_dir()>/metrics_<name>.json", creating the directory.
std::string metrics_output_path(const std::string& name);

/// "<metrics_dir()>/trace_<name>.json", creating the directory.
std::string trace_output_path(const std::string& name);

}  // namespace bsmp::engine
