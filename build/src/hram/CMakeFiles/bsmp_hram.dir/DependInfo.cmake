
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hram/access_fn.cpp" "src/hram/CMakeFiles/bsmp_hram.dir/access_fn.cpp.o" "gcc" "src/hram/CMakeFiles/bsmp_hram.dir/access_fn.cpp.o.d"
  "/root/repo/src/hram/hram.cpp" "src/hram/CMakeFiles/bsmp_hram.dir/hram.cpp.o" "gcc" "src/hram/CMakeFiles/bsmp_hram.dir/hram.cpp.o.d"
  "/root/repo/src/hram/ram_machine.cpp" "src/hram/CMakeFiles/bsmp_hram.dir/ram_machine.cpp.o" "gcc" "src/hram/CMakeFiles/bsmp_hram.dir/ram_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsmp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
