// The paper's introductory example: multiplying two sqrt(n) x sqrt(n)
// matrices (n elements each) three ways under the limiting technology:
//
//  * on the sqrt(n) x sqrt(n) mesh M2(n,n,1): the classical systolic
//    (Cannon) algorithm, Θ(sqrt(n)) steps, near-neighbor moves only;
//  * on a uniprocessor H-RAM with f(x) = sqrt(x) (d=2, m=1) with the
//    straightforward row-major algorithm: Θ(n^(3/2)) operations, each
//    paying the average memory distance Θ(sqrt(n)) — Θ(n^2) total;
//  * on the same H-RAM with the locality-optimal recursive blocking of
//    [AACS87]: the access overhead shrinks to Θ(log n), Θ(n^(3/2) log n)
//    total.
//
// All three compute real products (verified against each other); the
// mesh speedup over the blocked uniprocessor is Θ(n log n) — superlinear
// in the n processors, the paper's motivating observation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "hram/hram.hpp"

namespace bsmp::workload {

struct MatmulResult {
  std::vector<hram::Word> c;  ///< row-major product (wrap-around uint64)
  core::Cost time = 0;        ///< charged virtual time
};

/// Row-major naive triple loop on an H-RAM with f(x) = sqrt(x).
/// `side` is sqrt(n); a and b are side*side row-major.
MatmulResult matmul_hram_naive(std::int64_t side,
                               const std::vector<hram::Word>& a,
                               const std::vector<hram::Word>& b);

/// Recursive blocked multiply on the same H-RAM: blocks are copied into
/// a scratch arena near the low addresses before being multiplied, so
/// each level's accesses cost O(block side) — the AACS87 scheme.
MatmulResult matmul_hram_blocked(std::int64_t side,
                                 const std::vector<hram::Word>& a,
                                 const std::vector<hram::Word>& b);

/// Cannon's algorithm on the side x side unit-spacing mesh: alignment
/// skews plus side multiply-shift steps, all near-neighbor. Charged one
/// unit per synchronous mesh step.
MatmulResult matmul_mesh_systolic(std::int64_t side,
                                  const std::vector<hram::Word>& a,
                                  const std::vector<hram::Word>& b);

/// Reference product for verification (no cost model).
std::vector<hram::Word> matmul_plain(std::int64_t side,
                                     const std::vector<hram::Word>& a,
                                     const std::vector<hram::Word>& b);

}  // namespace bsmp::workload
