// The H-RAM: a value-carrying memory whose every access is charged
// through an AccessFn into a CostLedger. This is the concrete machine
// node of Definition 2 — a (processing-element, memory-module) pair.
//
// The H-RAM is used two ways:
//  * concretely, by workloads (e.g. the matrix-multiply example of the
//    paper's introduction) that read/write real words at real addresses;
//  * as the cost oracle of the separator executor, which charges block
//    transfers at model addresses without materializing each word.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "hram/access_fn.hpp"

namespace bsmp::hram {

using Word = std::uint64_t;

class HRam {
 public:
  /// An H-RAM with `size` cells, all initially zero. If `pipelined` is
  /// true, block operations use the Section-6 pipelined-memory cost
  /// (latency + one word per unit time) instead of per-word latency.
  HRam(std::size_t size, AccessFn f, bool pipelined = false);

  std::size_t size() const { return mem_.size(); }

  /// Read the word at `addr`, charging f(addr).
  Word read(std::size_t addr);

  /// Write the word at `addr`, charging f(addr).
  void write(std::size_t addr, Word value);

  /// Charge an access to `addr` without touching data (cost-model-only
  /// paths). Returns the charged cost.
  core::Cost touch(std::size_t addr);

  /// Charge a transfer of `len` words whose farthest address is
  /// `max_addr`, without touching data. Honors pipelining.
  core::Cost touch_block(std::size_t max_addr, std::size_t len);

  /// Copy `len` words from `src` to `dst` (non-overlapping), charging
  /// the read block and the write block.
  void block_copy(std::size_t src, std::size_t dst, std::size_t len);

  const AccessFn& access_fn() const { return f_; }
  bool pipelined() const { return pipelined_; }

  core::CostLedger& ledger() { return ledger_; }
  const core::CostLedger& ledger() const { return ledger_; }

  /// Highest address accessed so far (space high-water mark).
  std::size_t peak_addr() const { return peak_addr_; }

 private:
  void note_addr(std::size_t addr);

  std::vector<Word> mem_;
  AccessFn f_;
  bool pipelined_;
  core::CostLedger ledger_;
  std::size_t peak_addr_ = 0;
};

}  // namespace bsmp::hram
