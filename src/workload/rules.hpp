// Guest programs: concrete step rules and input generators.
//
// The theorems hold for arbitrary T-step computations of the network;
// the rules here instantiate them. `mix_rule` is the default workload
// for experiments — it mixes all operands with full avalanche, so a
// simulator that executes any vertex with a wrong operand produces
// detectably wrong final values. `rule110` and `parity_rule` are
// classical cellular automata (the m=1 guests of Theorems 2 and 5 —
// "systolic network or cellular automaton").
#pragma once

#include "core/rng.hpp"
#include "sep/guest.hpp"

namespace bsmp::workload {

/// Avalanche-mixing rule: value = h(self_prev, neighbors, position).
template <int D>
sep::Rule<D> mix_rule();

/// Linear (XOR) rule: parity of self and neighbors, rotated for mixing.
template <int D>
sep::Rule<D> parity_rule();

/// Wolfram's rule 110 on the least-significant bit (D = 1, m = 1).
sep::Rule<1> rule110();

/// Rule 110 applied to *every* bit of the word independently: the
/// bit-sliced batch form (doc/ENGINE.md "Batched guests"). Bit l of
/// each value evolves exactly as rule110() evolves a 0/1-valued
/// scalar run, so one charged pass carries sep::kLanes scenarios.
sep::Rule<1> rule110_lanes();

/// Plain XOR parity of self and neighbors — lane-local on every bit,
/// so it is its own bit-sliced batch form (unlike parity_rule, whose
/// rotations mix bit positions for avalanche).
template <int D>
sep::Rule<D> xor_rule();

/// Integer diffusion: mean of self and neighbors (saturating).
template <int D>
sep::Rule<D> diffusion_rule();

/// Odd-even transposition sort on a linear array of n cells (D = 1,
/// m = 1): the classical systolic sorter. After n steps the array is
/// sorted ascending — simulators are checked to *sort correctly*, not
/// just to match the reference bit-for-bit.
sep::Rule<1> sort_rule(int64_t n);

/// Window maximum: value(x, t) = max over inputs within distance t of
/// x — after T = n steps every node holds the global maximum.
template <int D>
sep::Rule<D> max_rule();

/// Shearsort on a side x side mesh (D = 2, m = 1): alternating phases
/// of snake-wise row sorts and ascending column sorts, each phase
/// `side` steps of odd-even transposition. After shearsort_phases(side)
/// phases the array is sorted in snake order. The canonical
/// mesh-sorting algorithm, expressible exactly as a GT(H) computation.
sep::Rule<2> shearsort_rule(int64_t side);

/// Number of phases that guarantees sortedness (2 ceil(log2 side) + 3,
/// generous; extra phases are no-ops on a sorted mesh). The required
/// horizon is 1 + shearsort_phases(side) * side.
int64_t shearsort_phases(int64_t side);

/// The snake order positions: element (row, col) is the
/// (row*side + (row even ? col : side-1-col))-th smallest when sorted.
int64_t snake_rank(int64_t side, int64_t row, int64_t col);

/// Deterministic pseudo-random inputs from a seed.
template <int D>
sep::InputFn<D> random_input(std::uint64_t seed);

/// All-zero inputs except a single seed cell at the origin.
template <int D>
sep::InputFn<D> point_input(sep::Word value);

/// Convenience: a complete Guest for the mixing workload.
template <int D>
sep::Guest<D> make_mix_guest(std::array<int64_t, D> extent, int64_t horizon,
                             int64_t m, std::uint64_t seed);

}  // namespace bsmp::workload
