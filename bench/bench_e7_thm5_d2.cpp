// E7 — Theorem 5: M2(n,1,1) simulates a Tn-step M2(n,n,1) with
// slowdown O(n log n), via the octahedron/tetrahedron separator in the
// three-dimensional space-time lattice. Tables come from
// tables::e7_tables via the engine harness.
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void BM_dc_thm5(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto g = workload::make_mix_guest<2>({side, side}, side, 1, 10);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_dc_uniproc<2>(g, spec(2, side * side, 1, 1)));
}
BENCHMARK(BM_dc_thm5)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BSMP_BENCH_MAIN("e7")
