file(REMOVE_RECURSE
  "libbsmp_workload.a"
)
